#include "src/proxy/origin_server.h"

#include <algorithm>

#include "src/proxy/proxy_wire.h"
#include "src/trace/causal.h"

namespace tas {

OriginServer::OriginServer(Simulator* sim, Stack* stack, const OriginServerConfig& config)
    : sim_(sim), stack_(stack), config_(config) {}

void OriginServer::Start() {
  stack_->SetHandler(this);
  stack_->Listen(config_.port);
}

uint32_t OriginServer::BodyBytes(uint32_t object_id) const {
  return ProxyObjectBytes(object_id, config_.min_body_bytes, config_.body_spread);
}

void OriginServer::OnAccepted(ConnId conn, uint16_t port) {
  (void)port;
  ++conns_accepted_;
  conns_.emplace(conn, ConnState{});
}

void OriginServer::OnData(ConnId conn, size_t bytes) {
  (void)bytes;
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  ConnState& state = it->second;
  size_t avail = stack_->RecvAvailable(conn);
  while (avail > 0) {
    const size_t old = state.inbuf.size();
    state.inbuf.resize(old + avail);
    const size_t got = stack_->Recv(conn, state.inbuf.data() + old, avail);
    state.inbuf.resize(old + got);
    if (got == 0) {
      break;
    }
    avail = stack_->RecvAvailable(conn);
  }
  size_t off = 0;
  while (!state.closing && state.inbuf.size() - off >= kProxyRequestBytes) {
    const ProxyRequest req = DecodeProxyRequest(state.inbuf.data() + off);
    off += kProxyRequestBytes;
    stack_->ChargeApp(conn, config_.app_cycles_per_request);
    const uint32_t body_len = BodyBytes(req.object_id);
    if (req.trace_id != 0) {
      if (CausalTracer* ct = CausalTracer::Current()) {
        // Request crossed proxy -> origin; serve span parents under the
        // proxy's origin-fetch span carried on the wire.
        ct->Mark(req.trace_id, CausalEdge::kNetToOrigin, sim_->Now());
        const uint32_t span =
            ct->StartSpan(req.trace_id, req.parent_span, CausalSpanKind::kOriginServe,
                          sim_->Now(), req.object_id, req.request_id);
        state.out_msgs.push_back(
            OutMsg{state.outbox.size() + kProxyResponseHeader + body_len, req.trace_id, span});
      }
    }
    const size_t out_off = state.outbox.size();
    state.outbox.resize(out_off + kProxyResponseHeader + body_len);  // Zero body.
    EncodeProxyResponseHeader(
        state.outbox.data() + out_off,
        ProxyResponseHeader{kProxyStatusOk, req.request_id, body_len, req.trace_id});
    ++requests_served_;
    ++state.served;
    if (config_.close_after_requests > 0 && state.served >= config_.close_after_requests) {
      // Quota reached: stop consuming requests (any still buffered are the
      // caller's to re-dispatch) and close once the outbox flushes. The
      // stack's graceful Close sends the FIN only after queued tx drains.
      state.closing = true;
      ++conns_closed_by_quota_;
    }
  }
  if (off > 0) {
    state.inbuf.erase(state.inbuf.begin(), state.inbuf.begin() + static_cast<ptrdiff_t>(off));
  }
  Flush(conn, state);
}

void OriginServer::Flush(ConnId conn, ConnState& state) {
  while (state.outbox_off < state.outbox.size()) {
    const size_t n = stack_->Send(conn, state.outbox.data() + state.outbox_off,
                                  state.outbox.size() - state.outbox_off);
    if (n == 0) {
      break;  // Resume on OnSendSpace.
    }
    state.outbox_off += n;
  }
  // Every traced response whose last byte the stack just accepted is served:
  // close its edge + span (it is "in the network" from here).
  while (!state.out_msgs.empty() && state.outbox_off >= state.out_msgs.front().end_off) {
    const OutMsg& msg = state.out_msgs.front();
    if (CausalTracer* ct = CausalTracer::Current()) {
      ct->Mark(msg.trace, CausalEdge::kOriginServe, sim_->Now());
      ct->EndSpan(msg.trace, msg.span, sim_->Now());
    }
    state.out_msgs.pop_front();
  }
  if (state.outbox_off < state.outbox.size()) {
    return;
  }
  state.outbox.clear();
  state.outbox_off = 0;
  if (state.closing && !state.close_sent) {
    state.close_sent = true;
    stack_->Close(conn);
  }
}

void OriginServer::OnSendSpace(ConnId conn, size_t bytes) {
  (void)bytes;
  auto it = conns_.find(conn);
  if (it != conns_.end()) {
    Flush(conn, it->second);
  }
}

void OriginServer::OnRemoteClosed(ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  // Peer (the proxy pool, typically its idle reaper) is done sending: flush
  // whatever responses are still owed, then close our direction.
  it->second.closing = true;
  Flush(conn, it->second);
}

void OriginServer::OnClosed(ConnId conn) { conns_.erase(conn); }

}  // namespace tas
