// HotObjectCache: the proxy's in-memory hot-object cache — strict LRU over a
// byte budget. Object bodies are synthetic (a deterministic function of the
// object id, see proxy_wire.h), so the cache stores only {id -> body_len}
// and charges its byte budget with the body length; the simulation still
// models the *work* of a hit (response bytes written from proxy memory)
// versus a miss (origin round trip) through the proxy's cycle charges.
#ifndef SRC_PROXY_OBJECT_CACHE_H_
#define SRC_PROXY_OBJECT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace tas {

struct HotObjectCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  // Insert() calls rejected because the object alone exceeds the budget.
  uint64_t oversize_rejects = 0;
};

class HotObjectCache {
 public:
  explicit HotObjectCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  // Looks up `object_id`, refreshing recency on hit. Returns true and fills
  // `*body_len` on a hit; counts the access either way.
  bool Lookup(uint32_t object_id, uint32_t* body_len);

  // Inserts (or refreshes) an object, evicting LRU entries until the byte
  // budget holds. Objects larger than the whole budget are rejected.
  void Insert(uint32_t object_id, uint32_t body_len);

  bool Contains(uint32_t object_id) const { return index_.count(object_id) != 0; }

  size_t bytes() const { return bytes_; }
  size_t entries() const { return lru_.size(); }
  size_t capacity_bytes() const { return capacity_; }
  const HotObjectCacheStats& stats() const { return stats_; }

 private:
  using LruList = std::list<std::pair<uint32_t, uint32_t>>;  // {id, body_len}.

  void EvictOne();

  size_t capacity_;
  size_t bytes_ = 0;
  LruList lru_;  // Front = most recent.
  std::unordered_map<uint32_t, LruList::iterator> index_;
  HotObjectCacheStats stats_;
};

}  // namespace tas

#endif  // SRC_PROXY_OBJECT_CACHE_H_
