// OriginServer: the backing tier behind the reverse proxy. Serves every
// object GET with a deterministic zero-filled body whose size is a pure
// function of the object id (proxy_wire.h), so the proxy cache and the
// client verifier can both predict response sizes without metadata.
//
// Requests on a connection are answered strictly in order — the contract the
// OriginPool's pipelined FIFO matching relies on. With close_after_requests
// set, the origin closes each connection after that many responses (flushing
// them first), forcing pool connection churn for the chaos tests.
#ifndef SRC_PROXY_ORIGIN_SERVER_H_
#define SRC_PROXY_ORIGIN_SERVER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/sim/simulator.h"

namespace tas {

struct OriginServerConfig {
  uint16_t port = 8080;
  uint32_t min_body_bytes = 64;
  uint32_t body_spread = 8 * 1024;  // Body = min + hash(id) % spread.
  uint64_t app_cycles_per_request = 300;
  // >0: close each accepted connection after serving this many requests
  // (responses flush before the FIN — graceful close). 0 = keep-alive.
  uint32_t close_after_requests = 0;
};

class OriginServer : public AppHandler {
 public:
  OriginServer(Simulator* sim, Stack* stack, const OriginServerConfig& config);

  void Start();

  uint64_t requests_served() const { return requests_served_; }
  uint64_t conns_accepted() const { return conns_accepted_; }
  uint64_t conns_closed_by_quota() const { return conns_closed_by_quota_; }
  uint32_t BodyBytes(uint32_t object_id) const;

  // AppHandler:
  void OnAccepted(ConnId conn, uint16_t port) override;
  void OnData(ConnId conn, size_t bytes) override;
  void OnSendSpace(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnClosed(ConnId conn) override;

 private:
  // Causal-trace bookkeeping for one queued response: when `outbox_off`
  // crosses `end_off`, the response has been fully accepted by our stack and
  // the serve span/edge closes (DESIGN.md §12).
  struct OutMsg {
    size_t end_off = 0;
    uint64_t trace = 0;
    uint32_t span = 0;
  };

  struct ConnState {
    std::vector<uint8_t> inbuf;   // Partial request bytes.
    std::vector<uint8_t> outbox;  // Response bytes not yet accepted by the stack.
    size_t outbox_off = 0;
    std::deque<OutMsg> out_msgs;  // Traced responses still in the outbox.
    uint32_t served = 0;
    bool closing = false;     // Quota reached or peer FIN'd; no new requests.
    bool close_sent = false;  // Close() already issued.
  };

  void Flush(ConnId conn, ConnState& state);

  Simulator* sim_;
  Stack* stack_;
  OriginServerConfig config_;
  std::unordered_map<ConnId, ConnState> conns_;
  uint64_t requests_served_ = 0;
  uint64_t conns_accepted_ = 0;
  uint64_t conns_closed_by_quota_ = 0;
};

}  // namespace tas

#endif  // SRC_PROXY_ORIGIN_SERVER_H_
