// ProxyServer: HTTP-style reverse proxy on the Stack interface (DESIGN.md
// §11). Clients connect keep-alive and pipeline fixed-header GET requests;
// the proxy answers each from its HotObjectCache or forwards it to the
// origin tier through a bounded OriginPool.
//
// Per client connection, responses are a FIFO of jobs so pipelined requests
// are answered in request order regardless of cache/origin completion order:
//   - hit:   body synthesized from the cache, buffered, sent (hit cycles).
//   - store: small miss — body copied out of the origin conn, inserted into
//            the cache, then sent like a hit (miss cycles).
//   - splice: large miss — the 12B response header is buffered, but the body
//            is moved client<-origin with Stack::Splice, which on TAS skips
//            the user-space copy charge entirely (the paper's shared payload
//            buffers make forwarding an in-stack pointer move).
//
// Half-close (satellite of this PR): a client that sends its FIN after its
// last request still gets every owed response — the proxy keeps transmitting
// on the half-open connection and closes only once its job queue drains.
#ifndef SRC_PROXY_PROXY_SERVER_H_
#define SRC_PROXY_PROXY_SERVER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/proxy/object_cache.h"
#include "src/proxy/origin_pool.h"
#include "src/sim/simulator.h"
#include "src/trace/causal.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/flow_tracer.h"
#include "src/trace/metric_registry.h"
#include "src/trace/tracer.h"

namespace tas {

struct ProxyServerConfig {
  uint16_t listen_port = 80;
  OriginPoolConfig pool;
  size_t cache_bytes = 1 << 20;
  // Response bodies at least this large are spliced client<-origin and
  // bypass the cache; smaller bodies are copied through, cached, and served
  // from memory next time. 0 splices everything; SIZE_MAX splices nothing.
  uint32_t splice_min_body = 16 * 1024;
  uint64_t hit_app_cycles = 350;   // Parse + lookup + response build.
  uint64_t miss_app_cycles = 800;  // Parse + lookup + origin dispatch + match.
};

// Proxy-tier SLO specs for the watchdog (flight_recorder.h): kMetricValue
// reads of the proxy.* gauges the proxy registers into the fronting TAS
// host's registry. `queued_threshold` bounds the origin-pool overflow queue
// (the injected-stall signature EXPERIMENTS.md's postmortem recipe hunts);
// `abort_threshold` bounds cumulative client aborts. Append to
// WatchdogConfig::slos on the host whose registry carries proxy metrics.
std::vector<SloSpec> ProxySloSpecs(double queued_threshold = 64,
                                   double abort_threshold = 0);

class ProxyServer : public AppHandler {
 public:
  ProxyServer(Simulator* sim, Stack* stack, const ProxyServerConfig& config);

  void Start();

  // Registers proxy.* counters/gauges (cache, pool, splice, requests).
  void RegisterMetrics(MetricRegistry& registry);
  // Optional: emit kProxyRequest/kProxyResponse flow events (client flow id).
  void set_flow_tracer(FlowTracer* tracer) { tracer_ = tracer; }
  // Optional: one span per request on the proxy-requests track.
  void set_span_recorder(SpanRecorder* spans) { spans_ = spans; }

  const HotObjectCache& cache() const { return cache_; }
  const OriginPool& pool() const { return pool_; }
  uint64_t requests() const { return requests_; }
  uint64_t responses() const { return responses_; }
  uint64_t coalesced_requests() const { return coalesced_requests_; }
  uint64_t spliced_bytes() const { return spliced_bytes_; }
  uint64_t aborted_clients() const { return aborted_clients_; }
  uint64_t mismatched_responses() const { return mismatched_responses_; }
  size_t live_clients() const { return clients_.size(); }

  // AppHandler:
  void OnConnected(ConnId conn, bool success) override;
  void OnAccepted(ConnId conn, uint16_t port) override;
  void OnData(ConnId conn, size_t bytes) override;
  void OnSendSpace(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnClosed(ConnId conn) override;

 private:
  // Response path taken, for tracing and the per-path counters.
  enum class Path : uint8_t { kHit = 0, kStore = 1, kSplice = 2 };

  struct Job {
    uint64_t id = 0;
    uint32_t object_id = 0;
    uint32_t request_id = 0;
    bool ready = false;    // Response known (hit, or origin header arrived).
    bool splice = false;   // Body is forwarded via Stack::Splice.
    Path path = Path::kHit;
    ConnId origin = kInvalidConn;  // Splice source while in flight.
    uint32_t body_len = 0;
    uint32_t splice_remaining = 0;
    std::vector<uint8_t> bytes;  // Header (+ body for buffered jobs).
    size_t sent = 0;             // Bytes of `bytes` handed to the stack.
    TimeNs started = 0;
    // Causal tracing (DESIGN.md §12): the request's TraceContext off the
    // wire, this job's span, and whether the response came off someone
    // else's fetch (class "coalesced"; FanOutWaiters resets the flag).
    TraceContext ctx;
    uint32_t span = 0;
    bool was_coalesced = false;
  };

  struct Client {
    std::vector<uint8_t> inbuf;  // Partial request bytes.
    std::deque<Job> jobs;        // FIFO: responses go out in request order.
    bool remote_closed = false;  // Client FIN seen; flush then close.
    bool closing = false;        // We issued Close().
  };

  // Per-origin-connection response reassembly state machine.
  struct OriginRx {
    enum class Mode : uint8_t { kHeader, kStoreBody, kSpliceBody, kDiscardBody };
    Mode mode = Mode::kHeader;
    std::vector<uint8_t> buf;  // Header accumulation, then store body.
    uint32_t body_len = 0;
    uint32_t remaining = 0;  // Body bytes still owed by the origin.
    uint32_t object_id = 0;
    ConnId client = kInvalidConn;
    uint64_t job = 0;
    // False for a splice-class body buffered only to dodge a pipeline
    // deadlock: it must not pollute the cache.
    bool cache_on_store = true;
    bool in_handler = false;  // Re-entrancy guard for HandleOriginData.
  };

  // A request coalesced onto an already-in-flight fetch of the same object
  // (single-flight): it is answered from that fetch's body when it lands.
  struct Waiter {
    ConnId client = kInvalidConn;
    uint64_t job = 0;
  };

  void HandleClientData(ConnId conn, Client& client);
  void HandleOriginData(ConnId conn);
  // Serves every waiter of `object_id` from `body` and retires the fetch.
  // `src_trace`/`src_span` identify the primary fetch that produced the body
  // (Perfetto flow arrows between the primary and its waiters).
  void ServeWaiters(uint32_t object_id, uint32_t body_len, const uint8_t* body,
                    uint64_t src_trace, uint32_t src_span);
  // Splice-class object: waiters cannot share the spliced body — give each
  // its own origin fetch instead.
  void FanOutWaiters(uint32_t object_id);
  // Sends what it can of the client's job queue; closes the conn when the
  // queue drains after a client FIN.
  void PumpClient(ConnId conn, Client& client);
  void FinishJob(ConnId conn, Client& client, Job& job);
  Job* FindJob(Client& client, uint64_t job_id);
  void AbortClient(ConnId conn, Client& client);
  void DetachClientJobs(ConnId conn, Client& client);

  Simulator* sim_;
  Stack* stack_;
  ProxyServerConfig config_;
  HotObjectCache cache_;
  OriginPool pool_;
  std::unordered_map<ConnId, Client> clients_;
  std::unordered_map<ConnId, OriginRx> origin_rx_;
  // object_id -> waiters coalesced onto the in-flight fetch (single-flight:
  // an entry exists exactly while one origin fetch for the object is out).
  std::unordered_map<uint32_t, std::vector<Waiter>> pending_fetch_;
  std::vector<uint8_t> scratch_;
  FlowTracer* tracer_ = nullptr;
  SpanRecorder* spans_ = nullptr;
  int span_track_ = -1;  // Allocated from the SpanRecorder's TrackRegistry.
  uint64_t next_job_id_ = 1;

  uint64_t requests_ = 0;
  uint64_t responses_ = 0;
  uint64_t responses_hit_ = 0;
  uint64_t responses_store_ = 0;
  uint64_t responses_splice_ = 0;
  uint64_t spliced_bytes_ = 0;
  uint64_t coalesced_requests_ = 0;   // Misses folded onto an in-flight fetch.
  uint64_t discarded_responses_ = 0;  // Responses whose client vanished.
  uint64_t aborted_clients_ = 0;      // Mid-splice origin death aborts.
  uint64_t mismatched_responses_ = 0;
};

}  // namespace tas

#endif  // SRC_PROXY_PROXY_SERVER_H_
