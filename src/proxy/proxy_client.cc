#include "src/proxy/proxy_client.h"

#include <algorithm>

#include "src/proxy/proxy_wire.h"
#include "src/util/logging.h"

namespace tas {

ProxyClientGen::ProxyClientGen(Simulator* sim, Stack* stack, const ProxyClientConfig& config)
    : sim_(sim),
      stack_(stack),
      config_(config),
      rng_(config.rng_seed),
      zipf_(config.num_objects, config.zipf_skew) {
  TAS_CHECK(config_.concurrency > 0);
  scratch_.resize(16 * 1024);
  stack_->SetHandler(this);
}

void ProxyClientGen::Start() {
  const size_t initial = config_.total_connections > 0
                             ? std::min(config_.concurrency, config_.total_connections)
                             : config_.concurrency;
  for (size_t i = 0; i < initial; ++i) {
    const TimeNs delay =
        config_.connect_spread > 0
            ? static_cast<TimeNs>(rng_.NextUint64(static_cast<uint64_t>(config_.connect_spread)))
            : 0;
    OpenConnection(delay);
  }
}

void ProxyClientGen::OpenConnection(TimeNs delay) {
  ++conns_opened_;
  if (delay > 0) {
    sim_->After(delay, [this] {
      const ConnId conn = stack_->Connect(config_.proxy_ip, config_.proxy_port);
      conns_.emplace(conn, CState{});
    });
    return;
  }
  const ConnId conn = stack_->Connect(config_.proxy_ip, config_.proxy_port);
  conns_.emplace(conn, CState{});
}

void ProxyClientGen::BeginMeasurement() {
  measuring_ = true;
  measure_start_ = sim_->Now();
  completed_at_measure_start_ = completed_;
  latency_.Clear();
}

double ProxyClientGen::Throughput() const {
  const TimeNs elapsed = sim_->Now() - measure_start_;
  if (elapsed == 0) {
    return 0;
  }
  return static_cast<double>(completed_ - completed_at_measure_start_) * 1e9 /
         static_cast<double>(elapsed);
}

uint32_t ProxyClientGen::ExpectedBody(uint32_t object_id) const {
  return ProxyObjectBytes(object_id, config_.min_body_bytes, config_.body_spread);
}

void ProxyClientGen::OnConnected(ConnId conn, bool success) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  if (!success) {
    ++connect_failures_;
    conns_.erase(it);
    // Keep pressure up: replace the failed attempt (the budget slot was
    // consumed, so hand it back before reopening).
    --conns_opened_;
    OpenConnection(0);
    return;
  }
  it->second.connected = true;
  const TimeNs now = sim_->Now();
  if (config_.first_request_at > now) {
    sim_->At(config_.first_request_at, [this, conn] {
      auto cit = conns_.find(conn);
      if (cit != conns_.end() && cit->second.connected) {
        cit->second.started = true;
        MaybeSend(conn, cit->second);
      }
    });
    return;
  }
  it->second.started = true;
  MaybeSend(conn, it->second);
}

void ProxyClientGen::MaybeSend(ConnId conn, CState& state) {
  if (!state.connected || !state.started || state.fin_sent) {
    return;
  }
  const size_t quota = config_.total_connections > 0 ? config_.requests_per_connection : 0;
  while (state.inflight.size() < config_.pipeline_depth) {
    uint32_t object_id;
    bool is_retry = false;
    if (!retry_queue_.empty()) {
      object_id = retry_queue_.front();
      is_retry = true;
    } else if ((quota == 0 || state.issued < quota) &&
               (config_.total_connections == 0 ||
                issued_ < config_.total_connections * config_.requests_per_connection)) {
      object_id = static_cast<uint32_t>(zipf_.Sample(rng_));
    } else {
      break;
    }
    if (stack_->SendSpace(conn) < kProxyRequestBytes) {
      return;  // Resume on OnSendSpace; retry entry stays queued.
    }
    if (is_retry) {
      retry_queue_.pop_front();
    } else {
      ++state.issued;
      ++issued_;
    }
    const uint32_t request_id = next_request_id_++;
    stack_->ChargeApp(conn, config_.app_cycles_per_request);
    uint64_t trace_id = 0;
    uint32_t root_span = 0;
    if (CausalTracer* ct = CausalTracer::Current()) {
      // Mint the trace here — the client is the causal root; everything
      // downstream parents under root_span via the wire context.
      trace_id = ct->BeginTrace(sim_->Now());
      root_span = ct->StartSpan(trace_id, 0, CausalSpanKind::kRequest, sim_->Now(), object_id,
                                request_id);
    }
    uint8_t buf[kProxyRequestBytes];
    EncodeProxyRequest(buf, ProxyRequest{object_id, request_id, trace_id, root_span});
    const size_t sent = stack_->Send(conn, buf, sizeof(buf));
    TAS_CHECK(sent == sizeof(buf));
    state.inflight.push_back(PendingReq{object_id, request_id, sim_->Now(), trace_id, root_span});
  }
  if (quota > 0 && state.issued >= quota && config_.half_close && !state.fin_sent &&
      retry_queue_.empty()) {
    // All requests written: say goodbye now and collect the owed responses
    // on the half-open connection (the proxy's half-close path).
    state.fin_sent = true;
    stack_->Close(conn);
  }
}

void ProxyClientGen::OnData(ConnId conn, size_t bytes) {
  (void)bytes;
  auto it = conns_.find(conn);
  if (it != conns_.end()) {
    HandleResponseData(conn, it->second);
  }
}

void ProxyClientGen::HandleResponseData(ConnId conn, CState& state) {
  for (;;) {
    if (state.in_body) {
      if (state.body_remaining > 0) {
        const size_t avail = stack_->RecvAvailable(conn);
        if (avail == 0) {
          return;
        }
        const size_t take =
            std::min<size_t>(std::min<size_t>(avail, state.body_remaining), scratch_.size());
        const size_t got = stack_->Recv(conn, scratch_.data(), take);
        state.body_remaining -= static_cast<uint32_t>(got);
        if (state.body_remaining > 0) {
          continue;
        }
      }
      CompleteResponse(conn, state);
      continue;
    }
    const size_t avail = stack_->RecvAvailable(conn);
    if (avail == 0) {
      return;
    }
    const size_t need = kProxyResponseHeader - state.header_have;
    const size_t got =
        stack_->Recv(conn, state.header + state.header_have, std::min(need, avail));
    state.header_have += got;
    if (state.header_have < kProxyResponseHeader) {
      return;
    }
    state.header_have = 0;
    const ProxyResponseHeader hdr = DecodeProxyResponseHeader(state.header);
    if (state.inflight.empty() || state.inflight.front().request_id != hdr.request_id) {
      // Out-of-order or unsolicited response: the conn is unusable.
      ++mismatches_;
      if (!state.fin_sent) {
        state.fin_sent = true;
        stack_->Close(conn);
      }
      return;
    }
    if (hdr.body_len != ExpectedBody(state.inflight.front().object_id)) {
      ++bad_bodies_;
    }
    if (hdr.trace_id != state.inflight.front().trace_id) {
      ++trace_mismatches_;  // Proxy must echo the request's trace id (or 0).
    }
    state.in_body = true;
    state.body_remaining = hdr.body_len;
  }
}

void ProxyClientGen::CompleteResponse(ConnId conn, CState& state) {
  state.in_body = false;
  const PendingReq req = state.inflight.front();
  state.inflight.pop_front();
  if (!responded_.insert(req.request_id).second) {
    ++duplicates_;
  }
  ++completed_;
  if (measuring_) {
    latency_.Add(static_cast<double>(sim_->Now() - req.sent_at));
  }
  if (req.trace_id != 0) {
    if (CausalTracer* ct = CausalTracer::Current()) {
      // Last body byte consumed: the trace is complete end-to-end. Finish
      // appends the final net_response mark and folds the critical path.
      ct->EndSpan(req.trace_id, req.root_span, sim_->Now());
      ct->Finish(req.trace_id, sim_->Now());
    }
  }
  const size_t quota = config_.total_connections > 0 ? config_.requests_per_connection : 0;
  if (quota > 0 && state.issued >= quota && state.inflight.empty() && retry_queue_.empty()) {
    // Conn is done. With half_close the FIN already went out and the proxy
    // closes once it sees our FIN after flushing; otherwise close now.
    if (!state.fin_sent) {
      state.fin_sent = true;
      stack_->Close(conn);
    }
    return;
  }
  MaybeSend(conn, state);
}

void ProxyClientGen::OnSendSpace(ConnId conn, size_t bytes) {
  (void)bytes;
  auto it = conns_.find(conn);
  if (it != conns_.end()) {
    MaybeSend(conn, it->second);
  }
}

void ProxyClientGen::OnRemoteClosed(ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  // The proxy finished its direction (normal after our half-close FIN, or an
  // abort). Answer with our own close if we have not already.
  if (!it->second.fin_sent) {
    it->second.fin_sent = true;
    stack_->Close(conn);
  }
}

void ProxyClientGen::OnClosed(ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  CState dead = std::move(it->second);
  conns_.erase(it);
  RetryInflight(dead);
  // Replace the connection while the churn budget lasts.
  if (config_.total_connections == 0 || conns_opened_ < config_.total_connections) {
    ++reconnects_;
    OpenConnection(0);
  } else if (!retry_queue_.empty() && conns_.empty()) {
    // Budget spent but retries remain and nobody can carry them: correctness
    // beats the budget — open one more conn.
    ++reconnects_;
    OpenConnection(0);
  }
}

void ProxyClientGen::RetryInflight(CState& state) {
  CausalTracer* ct = CausalTracer::Current();
  for (const PendingReq& req : state.inflight) {
    ++retries_;
    if (ct != nullptr && req.trace_id != 0) {
      // The retry is a new logical attempt with a fresh request id; the
      // original trace never completes, so retire it explicitly.
      ct->Abandon(req.trace_id);
    }
    retry_queue_.push_back(req.object_id);
  }
  state.inflight.clear();
  if (retry_queue_.empty()) {
    return;
  }
  // Nudge live conns with headroom to pick the retries up — in id order, so
  // the pick does not depend on hash-map layout (same-seed determinism).
  std::vector<ConnId> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (ConnId id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) {
      continue;
    }
    if (it->second.connected && !it->second.fin_sent) {
      MaybeSend(id, it->second);
      if (retry_queue_.empty()) {
        break;
      }
    }
  }
}

}  // namespace tas
