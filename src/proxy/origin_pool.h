// OriginPool: bounded pool of keep-alive connections from the proxy to the
// origin server, with pipelined request/response matching.
//
// Every proxied request is a Pending entry assigned to one origin connection;
// responses on a connection answer its requests strictly in order (the origin
// serves FIFO), so matching is a per-connection deque — the entry at the
// front is the one the next response header belongs to. When all connections
// are at their pipeline depth and the pool is at its connection bound,
// requests wait in a global overflow queue (its high-water mark is the
// "queued requests" pressure metric).
//
// Connections are retired by an idle reaper (periodic scan, idle_timeout) or
// by origin-side close/failure; requests still unanswered on a dead
// connection are transparently re-dispatched, so connection churn under
// faults never loses a request (the chaos tests pin this down).
//
// The pool is not an AppHandler itself: ProxyServer owns the stack's handler
// slot and relays origin-connection events here.
#ifndef SRC_PROXY_ORIGIN_POOL_H_
#define SRC_PROXY_ORIGIN_POOL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/sim/simulator.h"

namespace tas {

struct OriginPoolConfig {
  IpAddr origin_ip = 0;
  uint16_t origin_port = 8080;
  size_t max_conns = 64;       // Hard bound on pool connections.
  size_t pipeline_depth = 16;  // Max in-flight requests per connection.
  TimeNs idle_timeout = Ms(20);
  TimeNs reap_interval = Ms(5);
};

struct OriginPoolStats {
  uint64_t opened = 0;           // Connect() calls issued.
  uint64_t reused = 0;           // Requests assigned to an already-open conn.
  uint64_t reaped = 0;           // Idle conns closed by the reaper.
  uint64_t retired = 0;          // Conns that died (origin close or failure).
  uint64_t redispatched = 0;     // Requests re-queued after their conn died.
  uint64_t connect_failures = 0;
  uint64_t conns_hw = 0;         // High-water live conns (must stay <= bound).
  uint64_t queued_hw = 0;        // High-water overflow-queued requests.
};

class OriginPool {
 public:
  // One outstanding proxied request. `client`/`job` identify the ProxyServer
  // response job the answer feeds; the pool treats them as opaque. `trace` /
  // `span` are the causal-trace context: span is the origin-fetch span the
  // origin tier parents under (both 0 when tracing is off). A re-dispatched
  // Pending keeps its fetch span — the retry is the same fetch, longer.
  struct Pending {
    uint32_t object_id = 0;
    uint32_t request_id = 0;
    ConnId client = kInvalidConn;
    uint64_t job = 0;
    uint64_t trace = 0;
    uint32_t span = 0;
  };

  OriginPool(Simulator* sim, Stack* stack, const OriginPoolConfig& config);

  // Arms the idle reaper.
  void Start();

  bool Owns(ConnId conn) const { return conns_.count(conn) != 0; }

  // Routes a request to an origin connection: reuse the least-loaded live
  // conn, open a new one while under the bound, or queue.
  void Dispatch(Pending req);

  // The request the next response header on `conn` answers (FIFO), or
  // nullptr if nothing is in flight.
  Pending* Front(ConnId conn);
  // The front request's response has been fully consumed.
  void PopFront(ConnId conn);

  // Event relays from ProxyServer (the stack's AppHandler).
  void HandleConnected(ConnId conn, bool success);
  void HandleSendSpace(ConnId conn);
  void HandleRemoteClosed(ConnId conn);
  void HandleClosed(ConnId conn);

  size_t live_conns() const { return conns_.size(); }
  size_t queued() const { return queue_.size(); }
  const OriginPoolStats& stats() const { return stats_; }

 private:
  struct OriginConn {
    std::deque<Pending> inflight;  // Front = oldest; trailing `unsent` not yet written.
    size_t unsent = 0;
    bool connected = false;
    bool closing = false;  // FIN sent/seen; accepts no new requests.
    TimeNs idle_since = 0;
  };

  void Assign(ConnId id, OriginConn& conn, Pending req);
  // Least-loaded non-closing conn with pipeline headroom (stable tie-break).
  OriginConn* SelectConn(ConnId* best_id);
  ConnId OpenConn();
  void TryWrite(ConnId id, OriginConn& conn);
  void PumpQueue();
  // Collects unanswered requests of a dead conn and re-dispatches them.
  void RedispatchInflight(OriginConn& conn);
  void Reap();

  Simulator* sim_;
  Stack* stack_;
  OriginPoolConfig config_;
  std::unordered_map<ConnId, OriginConn> conns_;
  std::deque<Pending> queue_;  // Overflow: no conn had capacity.
  std::unique_ptr<PeriodicTask> reaper_;
  OriginPoolStats stats_;
};

}  // namespace tas

#endif  // SRC_PROXY_ORIGIN_POOL_H_
