// ProxyClientGen: closed-loop load generator for the reverse-proxy tier.
//
// Drives `concurrency` keep-alive connections, each pipelining GET requests
// for zipf-popular objects (ZipfGenerator). Because body sizes are a pure
// function of the object id, the client verifies every response: request ids
// must come back in per-connection FIFO order, body lengths must match, and
// a global responded-set catches duplicates — together the exactly-once
// check the chaos tests gate on.
//
// Churn mode (total_connections > 0): each connection issues
// requests_per_connection requests and then ends — with half_close set it
// sends its FIN immediately after the last request and keeps reading owed
// responses on the half-open connection (exercising the proxy's graceful
// half-close path); otherwise it closes after the last response. Finished
// connections are replaced until the total budget is spent. Requests
// stranded on a dead connection (proxy abort, faults) are retried with a
// fresh request id, so every logical request eventually completes.
#ifndef SRC_PROXY_PROXY_CLIENT_H_
#define SRC_PROXY_PROXY_CLIENT_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "src/baseline/stack_iface.h"
#include "src/proxy/proxy_wire.h"
#include "src/sim/simulator.h"
#include "src/trace/causal.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/zipf.h"

namespace tas {

struct ProxyClientConfig {
  IpAddr proxy_ip = 0;
  uint16_t proxy_port = 80;
  size_t concurrency = 16;  // Connections open at once.
  // 0 = keep-alive forever (no churn). Otherwise the total connection
  // budget; finished connections are replaced until it is spent.
  size_t total_connections = 0;
  // Requests per connection in churn mode (ignored when total_connections
  // is 0, where connections issue forever).
  size_t requests_per_connection = 8;
  // FIN right after the last request, then read responses half-open.
  bool half_close = true;
  size_t pipeline_depth = 4;  // Requests in flight per connection.
  size_t num_objects = 10000;
  double zipf_skew = 0.9;
  // Must match the origin's body parameters for verification.
  uint32_t min_body_bytes = 64;
  uint32_t body_spread = 8 * 1024;
  uint64_t app_cycles_per_request = 200;
  uint64_t rng_seed = 42;
  TimeNs connect_spread = Ms(1);
  TimeNs first_request_at = 0;  // Hold traffic until this absolute time.
};

class ProxyClientGen : public AppHandler {
 public:
  ProxyClientGen(Simulator* sim, Stack* stack, const ProxyClientConfig& config);

  void Start();
  void BeginMeasurement();

  // Logical requests: retries keep the identity of the request they replace.
  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t retries() const { return retries_; }
  uint64_t reconnects() const { return reconnects_; }
  uint64_t connect_failures() const { return connect_failures_; }
  // Verification failures — all must stay 0 in a healthy run.
  uint64_t duplicates() const { return duplicates_; }
  uint64_t mismatches() const { return mismatches_; }
  uint64_t bad_bodies() const { return bad_bodies_; }
  // Response carried a trace id that does not echo the request's (0 when
  // tracing is off — untraced requests expect an untraced echo too).
  uint64_t trace_mismatches() const { return trace_mismatches_; }
  double Throughput() const;  // Responses/sec since BeginMeasurement().
  const LatencyRecorder& latency() const { return latency_; }

  // AppHandler:
  void OnConnected(ConnId conn, bool success) override;
  void OnData(ConnId conn, size_t bytes) override;
  void OnSendSpace(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnClosed(ConnId conn) override;

 private:
  struct PendingReq {
    uint32_t object_id = 0;
    uint32_t request_id = 0;
    TimeNs sent_at = 0;
    // Causal trace minted for this request (0 when tracing is off).
    uint64_t trace_id = 0;
    uint32_t root_span = 0;
  };

  struct CState {
    std::deque<PendingReq> inflight;  // FIFO; responses answer in order.
    size_t issued = 0;                // Logical requests started on this conn.
    bool connected = false;
    bool fin_sent = false;
    bool started = false;  // Past first_request_at gate.
    // Response parse state.
    uint8_t header[kProxyResponseHeader];
    size_t header_have = 0;
    uint32_t body_remaining = 0;
    bool in_body = false;
  };

  void OpenConnection(TimeNs delay);
  void MaybeSend(ConnId conn, CState& state);
  void HandleResponseData(ConnId conn, CState& state);
  void CompleteResponse(ConnId conn, CState& state);
  // Push a dead connection's unanswered requests onto the retry queue and
  // find (or open) a connection to carry them.
  void RetryInflight(CState& state);
  uint32_t ExpectedBody(uint32_t object_id) const;

  Simulator* sim_;
  Stack* stack_;
  ProxyClientConfig config_;
  Rng rng_;
  ZipfGenerator zipf_;
  std::unordered_map<ConnId, CState> conns_;
  std::deque<uint32_t> retry_queue_;  // Object ids awaiting re-issue.
  std::unordered_set<uint32_t> responded_;  // Exactly-once set (request ids).
  std::vector<uint8_t> scratch_;
  size_t conns_opened_ = 0;
  uint32_t next_request_id_ = 1;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t connect_failures_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t mismatches_ = 0;
  uint64_t bad_bodies_ = 0;
  uint64_t trace_mismatches_ = 0;
  bool measuring_ = false;
  TimeNs measure_start_ = 0;
  uint64_t completed_at_measure_start_ = 0;
  LatencyRecorder latency_;
};

}  // namespace tas

#endif  // SRC_PROXY_PROXY_CLIENT_H_
