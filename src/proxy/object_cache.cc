#include "src/proxy/object_cache.h"

namespace tas {

bool HotObjectCache::Lookup(uint32_t object_id, uint32_t* body_len) {
  auto it = index_.find(object_id);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  *body_len = it->second->second;
  return true;
}

void HotObjectCache::Insert(uint32_t object_id, uint32_t body_len) {
  if (body_len > capacity_) {
    ++stats_.oversize_rejects;
    return;
  }
  auto it = index_.find(object_id);
  if (it != index_.end()) {
    // Refresh: same id, same deterministic size — just bump recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (bytes_ + body_len > capacity_) {
    EvictOne();
  }
  lru_.emplace_front(object_id, body_len);
  index_[object_id] = lru_.begin();
  bytes_ += body_len;
  ++stats_.insertions;
}

void HotObjectCache::EvictOne() {
  const auto& victim = lru_.back();
  bytes_ -= victim.second;
  index_.erase(victim.first);
  lru_.pop_back();
  ++stats_.evictions;
}

}  // namespace tas
