#include "src/proxy/origin_pool.h"

#include <algorithm>

#include "src/proxy/proxy_wire.h"
#include "src/trace/causal.h"
#include "src/util/logging.h"

namespace tas {

OriginPool::OriginPool(Simulator* sim, Stack* stack, const OriginPoolConfig& config)
    : sim_(sim), stack_(stack), config_(config) {
  TAS_CHECK(config_.max_conns > 0);
  TAS_CHECK(config_.pipeline_depth > 0);
}

void OriginPool::Start() {
  if (config_.idle_timeout > 0 && config_.reap_interval > 0) {
    reaper_ = std::make_unique<PeriodicTask>(sim_, config_.reap_interval, [this] { Reap(); });
    reaper_->Start();
  }
}

void OriginPool::Dispatch(Pending req) {
  // Least-loaded live (or still-connecting) conn with pipeline headroom.
  ConnId best_id = kInvalidConn;
  OriginConn* best = SelectConn(&best_id);
  if (best != nullptr && (best->connected || conns_.size() >= config_.max_conns)) {
    if (best->connected) {
      ++stats_.reused;
    }
    Assign(best_id, *best, req);
    return;
  }
  if (conns_.size() < config_.max_conns) {
    const ConnId id = OpenConn();
    Assign(id, conns_.at(id), req);
    return;
  }
  queue_.push_back(req);
  stats_.queued_hw = std::max<uint64_t>(stats_.queued_hw, queue_.size());
}

void OriginPool::Assign(ConnId id, OriginConn& conn, Pending req) {
  if (req.trace != 0) {
    if (CausalTracer* ct = CausalTracer::Current()) {
      // Dispatch -> assigned: zero-width when a conn had headroom, the
      // overflow-queue wait when the request came off `queue_`.
      ct->Mark(req.trace, CausalEdge::kOverflowQueue, sim_->Now());
    }
  }
  conn.inflight.push_back(req);
  ++conn.unsent;
  if (conn.connected) {
    TryWrite(id, conn);
  }
}

ConnId OriginPool::OpenConn() {
  const ConnId id = stack_->Connect(config_.origin_ip, config_.origin_port);
  ++stats_.opened;
  OriginConn conn;
  conn.idle_since = sim_->Now();
  conns_.emplace(id, std::move(conn));
  stats_.conns_hw = std::max<uint64_t>(stats_.conns_hw, conns_.size());
  return id;
}

void OriginPool::TryWrite(ConnId id, OriginConn& conn) {
  while (conn.unsent > 0) {
    if (stack_->SendSpace(id) < kProxyRequestBytes) {
      return;  // Resume on OnSendSpace.
    }
    Pending& req = conn.inflight[conn.inflight.size() - conn.unsent];
    uint8_t buf[kProxyRequestBytes];
    EncodeProxyRequest(buf, ProxyRequest{req.object_id, req.request_id, req.trace, req.span});
    const size_t sent = stack_->Send(id, buf, sizeof(buf));
    TAS_CHECK(sent == sizeof(buf));
    --conn.unsent;
    if (req.trace != 0) {
      if (CausalTracer* ct = CausalTracer::Current()) {
        // Assigned -> accepted by the origin conn (pipeline backpressure).
        ct->Mark(req.trace, CausalEdge::kOriginQueue, sim_->Now());
      }
    }
  }
}

OriginPool::Pending* OriginPool::Front(ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.inflight.empty()) {
    return nullptr;
  }
  // The front entry must have been written for a response to exist.
  return &it->second.inflight.front();
}

void OriginPool::PopFront(ConnId conn) {
  auto it = conns_.find(conn);
  TAS_CHECK(it != conns_.end() && !it->second.inflight.empty());
  const Pending& front = it->second.inflight.front();
  if (front.trace != 0) {
    if (CausalTracer* ct = CausalTracer::Current()) {
      // The fetch is over once its response has been fully consumed (body
      // buffered, spliced through, or discarded).
      ct->EndSpan(front.trace, front.span, sim_->Now());
    }
  }
  it->second.inflight.pop_front();
  if (it->second.inflight.empty()) {
    it->second.idle_since = sim_->Now();
  }
  PumpQueue();
}

void OriginPool::HandleConnected(ConnId conn, bool success) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  if (!success) {
    ++stats_.connect_failures;
    ++stats_.retired;
    OriginConn dead = std::move(it->second);
    conns_.erase(it);
    RedispatchInflight(dead);
    PumpQueue();
    return;
  }
  it->second.connected = true;
  it->second.idle_since = sim_->Now();
  TryWrite(conn, it->second);
  PumpQueue();
}

void OriginPool::HandleSendSpace(ConnId conn) {
  auto it = conns_.find(conn);
  if (it != conns_.end() && it->second.connected && !it->second.closing) {
    TryWrite(conn, it->second);
  }
}

void OriginPool::HandleRemoteClosed(ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  // The origin finished sending: every response it will ever produce has
  // already been drained (data events precede the FIN event), so anything
  // still in flight here is unanswered — move it to a live conn and answer
  // the FIN with our own.
  OriginConn& conn_state = it->second;
  const bool was_closing = conn_state.closing;
  conn_state.closing = true;
  if (!was_closing) {
    ++stats_.retired;  // Reaped conns were already accounted as reaped.
  }
  OriginConn drained;
  drained.inflight = std::move(conn_state.inflight);
  drained.unsent = conn_state.unsent;
  conn_state.inflight.clear();
  conn_state.unsent = 0;
  if (!was_closing) {
    stack_->Close(conn);
  }
  RedispatchInflight(drained);
}

void OriginPool::HandleClosed(ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  OriginConn dead = std::move(it->second);
  conns_.erase(it);
  if (!dead.closing) {
    // Abortive death (reset / failure) — retirement not yet counted.
    ++stats_.retired;
  }
  RedispatchInflight(dead);
  PumpQueue();
}

void OriginPool::RedispatchInflight(OriginConn& conn) {
  for (Pending& req : conn.inflight) {
    ++stats_.redispatched;
    Dispatch(req);
  }
  conn.inflight.clear();
  conn.unsent = 0;
}

OriginPool::OriginConn* OriginPool::SelectConn(ConnId* best_id) {
  // Prefer connected conns over connecting ones, then the emptiest; break
  // remaining ties on the lowest conn id so the pick is independent of
  // unordered_map iteration order (determinism across runs).
  OriginConn* best = nullptr;
  for (auto& [id, conn] : conns_) {
    if (conn.closing || conn.inflight.size() >= config_.pipeline_depth) {
      continue;
    }
    if (best == nullptr || (conn.connected && !best->connected) ||
        (conn.connected == best->connected &&
         (conn.inflight.size() < best->inflight.size() ||
          (conn.inflight.size() == best->inflight.size() && id < *best_id)))) {
      *best_id = id;
      best = &conn;
    }
  }
  return best;
}

void OriginPool::PumpQueue() {
  while (!queue_.empty()) {
    // Same policy as Dispatch, but never re-queue: stop at the first request
    // that finds no capacity.
    ConnId best_id = kInvalidConn;
    OriginConn* best = SelectConn(&best_id);
    if (best == nullptr) {
      if (conns_.size() < config_.max_conns) {
        OpenConn();
        continue;  // The fresh conn is picked up next iteration.
      }
      return;
    }
    if (best->connected) {
      ++stats_.reused;
    }
    Pending req = queue_.front();
    queue_.pop_front();
    Assign(best_id, *best, req);
  }
}

void OriginPool::Reap() {
  const TimeNs now = sim_->Now();
  // Collect then sort: the close order must not depend on hash layout.
  std::vector<ConnId> idle;
  for (auto& [id, conn] : conns_) {
    if (conn.connected && !conn.closing && conn.inflight.empty() &&
        now - conn.idle_since >= config_.idle_timeout) {
      idle.push_back(id);
    }
  }
  std::sort(idle.begin(), idle.end());
  for (ConnId id : idle) {
    conns_.at(id).closing = true;
    ++stats_.reaped;
    stack_->Close(id);
  }
}

}  // namespace tas
