#include "src/proxy/proxy_server.h"

#include <algorithm>

#include "src/proxy/proxy_wire.h"
#include "src/util/logging.h"

namespace tas {

std::vector<SloSpec> ProxySloSpecs(double queued_threshold, double abort_threshold) {
  std::vector<SloSpec> slos;
  SloSpec queued;
  queued.name = "proxy_origin_queue";
  queued.kind = SloKind::kMetricValue;
  queued.threshold = queued_threshold;
  queued.burn_windows = 3;
  queued.min_count = 0;
  queued.metric = "proxy.pool.queued";
  slos.push_back(queued);
  SloSpec aborts;
  aborts.name = "proxy_client_aborts";
  aborts.kind = SloKind::kMetricValue;
  aborts.threshold = abort_threshold;
  aborts.burn_windows = 1;  // Cumulative counter: one breached check suffices.
  aborts.min_count = 0;
  aborts.metric = "proxy.aborted_clients";
  slos.push_back(aborts);
  return slos;
}

ProxyServer::ProxyServer(Simulator* sim, Stack* stack, const ProxyServerConfig& config)
    : sim_(sim),
      stack_(stack),
      config_(config),
      cache_(config.cache_bytes),
      pool_(sim, stack, config.pool) {
  scratch_.resize(16 * 1024);
}

void ProxyServer::Start() {
  stack_->SetHandler(this);
  stack_->Listen(config_.listen_port);
  pool_.Start();
  if (spans_ != nullptr) {
    span_track_ = spans_->RegisterTrack("proxy-requests");
  }
}

void ProxyServer::RegisterMetrics(MetricRegistry& registry) {
  registry.AddCounter("proxy.requests", &requests_);
  registry.AddCounter("proxy.responses", &responses_);
  registry.AddCounter("proxy.responses_hit", &responses_hit_);
  registry.AddCounter("proxy.responses_store", &responses_store_);
  registry.AddCounter("proxy.responses_splice", &responses_splice_);
  registry.AddCounter("proxy.spliced_bytes", &spliced_bytes_);
  registry.AddCounter("proxy.coalesced_requests", &coalesced_requests_);
  registry.AddCounter("proxy.discarded_responses", &discarded_responses_);
  registry.AddCounter("proxy.aborted_clients", &aborted_clients_);
  registry.AddCounter("proxy.mismatched_responses", &mismatched_responses_);
  const HotObjectCacheStats& cs = cache_.stats();
  registry.AddCounter("proxy.cache.hits", &cs.hits);
  registry.AddCounter("proxy.cache.misses", &cs.misses);
  registry.AddCounter("proxy.cache.insertions", &cs.insertions);
  registry.AddCounter("proxy.cache.evictions", &cs.evictions);
  registry.AddGauge("proxy.cache.bytes",
                    [this] { return static_cast<double>(cache_.bytes()); });
  registry.AddGauge("proxy.cache.entries",
                    [this] { return static_cast<double>(cache_.entries()); });
  const OriginPoolStats& ps = pool_.stats();
  registry.AddCounter("proxy.pool.opened", &ps.opened);
  registry.AddCounter("proxy.pool.reused", &ps.reused);
  registry.AddCounter("proxy.pool.reaped", &ps.reaped);
  registry.AddCounter("proxy.pool.retired", &ps.retired);
  registry.AddCounter("proxy.pool.redispatched", &ps.redispatched);
  registry.AddCounter("proxy.pool.connect_failures", &ps.connect_failures);
  registry.AddCounter("proxy.pool.conns_hw", &ps.conns_hw);
  registry.AddCounter("proxy.pool.queued_hw", &ps.queued_hw);
  registry.AddGauge("proxy.pool.conns",
                    [this] { return static_cast<double>(pool_.live_conns()); });
  registry.AddGauge("proxy.pool.queued",
                    [this] { return static_cast<double>(pool_.queued()); });
}

void ProxyServer::OnConnected(ConnId conn, bool success) {
  if (!pool_.Owns(conn)) {
    return;
  }
  if (success) {
    origin_rx_.emplace(conn, OriginRx{});
  }
  pool_.HandleConnected(conn, success);
}

void ProxyServer::OnAccepted(ConnId conn, uint16_t port) {
  (void)port;
  clients_.emplace(conn, Client{});
}

void ProxyServer::OnData(ConnId conn, size_t bytes) {
  (void)bytes;
  if (pool_.Owns(conn)) {
    HandleOriginData(conn);
    return;
  }
  auto it = clients_.find(conn);
  if (it != clients_.end() && !it->second.closing) {
    HandleClientData(conn, it->second);
  }
}

void ProxyServer::OnSendSpace(ConnId conn, size_t bytes) {
  (void)bytes;
  if (pool_.Owns(conn)) {
    pool_.HandleSendSpace(conn);
    return;
  }
  auto it = clients_.find(conn);
  if (it != clients_.end()) {
    PumpClient(conn, it->second);
  }
}

void ProxyServer::OnRemoteClosed(ConnId conn) {
  if (pool_.Owns(conn)) {
    // Data events precede the FIN, so every response the origin flushed has
    // been consumed by now; drain defensively, then deal with truncation.
    HandleOriginData(conn);
    auto it = origin_rx_.find(conn);
    if (it != origin_rx_.end()) {
      OriginRx& rx = it->second;
      if (rx.mode == OriginRx::Mode::kStoreBody) {
        // Truncated buffered body: drop the partial bytes; the pool will
        // re-dispatch the request and the origin re-serves it whole.
        rx.buf.clear();
        rx.remaining = 0;
        rx.mode = OriginRx::Mode::kHeader;
      } else if (rx.mode == OriginRx::Mode::kSpliceBody && rx.remaining > 0) {
        const ConnId client_conn = rx.client;
        auto cit = clients_.find(client_conn);
        Client* client =
            (cit != clients_.end() && !cit->second.closing) ? &cit->second : nullptr;
        Job* job = client != nullptr ? FindJob(*client, rx.job) : nullptr;
        if (job != nullptr && stack_->RecvAvailable(conn) >= rx.remaining) {
          // The rest of the body is fully buffered on our side; the splice is
          // merely stalled on client send space. Fold the remainder into the
          // job so the origin conn can go away underneath it.
          const size_t old = job->bytes.size();
          job->bytes.resize(old + rx.remaining);
          const size_t got = stack_->Recv(conn, job->bytes.data() + old, rx.remaining);
          job->bytes.resize(old + got);
          job->splice = false;
          job->splice_remaining = 0;
          job->origin = kInvalidConn;
          if (pool_.Front(conn) != nullptr) {
            pool_.PopFront(conn);
          }
          rx.remaining = 0;
          rx.mode = OriginRx::Mode::kHeader;
          rx.client = kInvalidConn;
          // Responses queued behind the spliced body are still in the buffer.
          HandleOriginData(conn);
          PumpClient(client_conn, *client);
        } else {
          // True truncation: part of the body already reached the client and
          // the rest never will. Abort the client conn and retire the request
          // so the re-dispatch machinery does not re-fetch it for a dead
          // client.
          if (client != nullptr) {
            AbortClient(client_conn, *client);
          }
          if (pool_.Front(conn) != nullptr) {
            pool_.PopFront(conn);
          }
          rx.remaining = 0;
          rx.mode = OriginRx::Mode::kHeader;
        }
      } else if (rx.mode == OriginRx::Mode::kHeader) {
        rx.buf.clear();
      }
    }
    pool_.HandleRemoteClosed(conn);
    return;
  }
  auto it = clients_.find(conn);
  if (it == clients_.end()) {
    return;
  }
  // Keep-alive client said goodbye (half-close): finish sending every owed
  // response on the half-open connection, then close our direction.
  it->second.remote_closed = true;
  PumpClient(conn, it->second);
}

void ProxyServer::OnClosed(ConnId conn) {
  if (pool_.Owns(conn)) {
    auto it = origin_rx_.find(conn);
    if (it != origin_rx_.end()) {
      OriginRx& rx = it->second;
      if (rx.mode == OriginRx::Mode::kSpliceBody && rx.remaining > 0) {
        auto cit = clients_.find(rx.client);
        if (cit != clients_.end() && !cit->second.closing) {
          AbortClient(rx.client, cit->second);
        }
        if (pool_.Front(conn) != nullptr) {
          pool_.PopFront(conn);
        }
      }
      origin_rx_.erase(it);
    }
    pool_.HandleClosed(conn);
    return;
  }
  auto it = clients_.find(conn);
  if (it == clients_.end()) {
    return;
  }
  it->second.closing = true;
  DetachClientJobs(conn, it->second);
  clients_.erase(it);
}

void ProxyServer::HandleClientData(ConnId conn, Client& client) {
  size_t avail = stack_->RecvAvailable(conn);
  while (avail > 0) {
    const size_t old = client.inbuf.size();
    client.inbuf.resize(old + avail);
    const size_t got = stack_->Recv(conn, client.inbuf.data() + old, avail);
    client.inbuf.resize(old + got);
    if (got == 0) {
      break;
    }
    avail = stack_->RecvAvailable(conn);
  }
  size_t off = 0;
  while (client.inbuf.size() - off >= kProxyRequestBytes) {
    const ProxyRequest req = DecodeProxyRequest(client.inbuf.data() + off);
    off += kProxyRequestBytes;
    ++requests_;
    CausalTracer* ct = req.trace_id != 0 ? CausalTracer::Current() : nullptr;
    Job job;
    job.id = next_job_id_++;
    job.object_id = req.object_id;
    job.request_id = req.request_id;
    job.started = sim_->Now();
    job.ctx = TraceContext{req.trace_id, req.parent_span};
    if (ct != nullptr) {
      // Request crossed client -> proxy; job span parents under the client's
      // root span carried on the wire.
      ct->Mark(req.trace_id, CausalEdge::kNetRequest, sim_->Now());
      job.span = ct->StartSpan(req.trace_id, req.parent_span, CausalSpanKind::kProxyJob,
                               sim_->Now(), req.object_id, req.request_id);
    }
    auto pf = pending_fetch_.find(req.object_id);
    if (pf != pending_fetch_.end()) {
      // Single-flight: a fetch for this object is already on its way to the
      // origin. Ride it instead of consulting the cache (which would count a
      // second cold miss) or issuing a duplicate fetch.
      ++coalesced_requests_;
      stack_->ChargeApp(conn, config_.miss_app_cycles);
      if (tracer_ != nullptr) {
        tracer_->Record(sim_->Now(), conn, FlowEventType::kProxyRequest, req.object_id,
                        req.request_id, 0);
      }
      job.was_coalesced = true;
      const uint64_t job_id = job.id;
      client.jobs.push_back(std::move(job));
      pf->second.push_back(Waiter{conn, job_id});
      continue;
    }
    uint32_t body_len = 0;
    const bool hit = cache_.Lookup(req.object_id, &body_len);
    if (tracer_ != nullptr) {
      tracer_->Record(sim_->Now(), conn, FlowEventType::kProxyRequest, req.object_id,
                      req.request_id, hit ? 1 : 0);
    }
    if (hit) {
      stack_->ChargeApp(conn, config_.hit_app_cycles);
      if (ct != nullptr) {
        // Zero-width at handler granularity: the charged lookup cycles defer
        // downstream events and surface in the proxy_send edge instead.
        ct->Mark(req.trace_id, CausalEdge::kCacheWork, sim_->Now());
      }
      job.ready = true;
      job.path = Path::kHit;
      job.body_len = body_len;
      job.bytes.resize(kProxyResponseHeader + body_len);  // Zero-filled body.
      EncodeProxyResponseHeader(
          job.bytes.data(),
          ProxyResponseHeader{kProxyStatusOk, req.request_id, body_len, req.trace_id});
      client.jobs.push_back(std::move(job));
    } else {
      stack_->ChargeApp(conn, config_.miss_app_cycles);
      uint32_t fetch_span = 0;
      if (ct != nullptr) {
        fetch_span = ct->StartSpan(req.trace_id, job.span, CausalSpanKind::kOriginFetch,
                                   sim_->Now(), req.object_id, req.request_id);
      }
      const uint64_t job_id = job.id;
      client.jobs.push_back(std::move(job));
      pending_fetch_.emplace(req.object_id, std::vector<Waiter>{});
      pool_.Dispatch(OriginPool::Pending{req.object_id, req.request_id, conn, job_id,
                                         req.trace_id, fetch_span});
    }
  }
  if (off > 0) {
    client.inbuf.erase(client.inbuf.begin(),
                       client.inbuf.begin() + static_cast<ptrdiff_t>(off));
  }
  PumpClient(conn, client);
}

void ProxyServer::HandleOriginData(ConnId conn) {
  auto it = origin_rx_.find(conn);
  if (it == origin_rx_.end()) {
    return;
  }
  OriginRx& rx = it->second;
  if (rx.in_handler) {
    return;  // Re-entered via a splice completion; the outer loop continues.
  }
  rx.in_handler = true;
  for (;;) {
    if (rx.mode == OriginRx::Mode::kHeader) {
      const size_t avail = stack_->RecvAvailable(conn);
      if (avail == 0) {
        break;
      }
      const size_t need = kProxyResponseHeader - rx.buf.size();
      const size_t take = std::min(need, avail);
      const size_t old = rx.buf.size();
      rx.buf.resize(old + take);
      const size_t got = stack_->Recv(conn, rx.buf.data() + old, take);
      rx.buf.resize(old + got);
      if (rx.buf.size() < kProxyResponseHeader) {
        break;
      }
      const ProxyResponseHeader hdr = DecodeProxyResponseHeader(rx.buf.data());
      rx.buf.clear();
      OriginPool::Pending* front = pool_.Front(conn);
      if (front == nullptr || front->request_id != hdr.request_id) {
        // Response/request desync on this conn: kill it; the pool
        // re-dispatches whatever was still in flight.
        ++mismatched_responses_;
        stack_->Close(conn);
        break;
      }
      rx.body_len = hdr.body_len;
      rx.remaining = hdr.body_len;
      rx.object_id = front->object_id;
      rx.client = front->client;
      rx.job = front->job;
      const bool splice_class =
          hdr.body_len >= config_.splice_min_body && hdr.body_len > 0;
      if (splice_class) {
        // Spliced bodies move straight to the primary's client and never
        // materialize in proxy memory — coalesced waiters need fetches of
        // their own.
        FanOutWaiters(rx.object_id);
      }
      Client* client = nullptr;
      Job* job = nullptr;
      auto cit = clients_.find(rx.client);
      if (cit != clients_.end() && !cit->second.closing) {
        client = &cit->second;
        job = FindJob(*client, rx.job);
      }
      if (client == nullptr || job == nullptr) {
        // The primary client went away while the origin worked.
        ++discarded_responses_;
        if (rx.remaining == 0) {
          cache_.Insert(rx.object_id, 0);
          ServeWaiters(rx.object_id, 0, nullptr, front->trace, front->span);
          pool_.PopFront(conn);
          continue;
        }
        auto pf = pending_fetch_.find(rx.object_id);
        if (!splice_class && pf != pending_fetch_.end() && !pf->second.empty()) {
          // Waiters still want the body: buffer it for them.
          rx.client = kInvalidConn;
          rx.job = 0;
          rx.mode = OriginRx::Mode::kStoreBody;
          continue;
        }
        if (pf != pending_fetch_.end()) {
          pending_fetch_.erase(pf);  // Nobody left to serve.
        }
        rx.mode = OriginRx::Mode::kDiscardBody;
        continue;
      }
      job->body_len = hdr.body_len;
      job->bytes.resize(kProxyResponseHeader);
      EncodeProxyResponseHeader(job->bytes.data(), hdr);
      if (splice_class) {
        // Splicing parks this origin conn until the job drains to the
        // client, so it is only safe when every job ahead of this one will
        // drain without waiting on another fetch — a not-ready job ahead may
        // have its fetch queued *behind us on this very conn* (coalesced
        // waiters are dispatched late), and splicing would deadlock.
        bool ahead_ready = true;
        for (const Job& j : client->jobs) {
          if (j.id == rx.job) {
            break;
          }
          if (!j.ready) {
            ahead_ready = false;
            break;
          }
        }
        if (!ahead_ready) {
          // Buffer the body instead (still a splice-class response, so keep
          // the path label and keep it out of the cache).
          job->path = Path::kSplice;
          rx.cache_on_store = false;
          rx.mode = OriginRx::Mode::kStoreBody;
          continue;
        }
        // Splice jobs are pumpable immediately: the header goes out from
        // job.bytes and splice_remaining keeps the job open until the body
        // has moved.
        if (job->ctx.trace_id != 0) {
          if (CausalTracer* ct = CausalTracer::Current()) {
            // Header landed; body bytes stream through Splice from here, so
            // origin_serve and proxy_send overlap for this class (the
            // interval-ends-here chain stays exact; see DESIGN.md §12).
            ct->Mark(job->ctx.trace_id, CausalEdge::kNetFromOrigin, sim_->Now());
          }
        }
        job->ready = true;
        job->splice = true;
        job->path = Path::kSplice;
        job->origin = conn;
        job->splice_remaining = hdr.body_len;
        rx.mode = OriginRx::Mode::kSpliceBody;
        PumpClient(rx.client, *client);
        if (rx.mode == OriginRx::Mode::kSpliceBody) {
          break;  // Splice in progress; resumes on origin data / send space.
        }
        continue;
      }
      job->path = Path::kStore;
      if (rx.remaining == 0) {
        if (job->ctx.trace_id != 0) {
          if (CausalTracer* ct = CausalTracer::Current()) {
            ct->Mark(job->ctx.trace_id, CausalEdge::kNetFromOrigin, sim_->Now());
          }
        }
        job->ready = true;
        cache_.Insert(rx.object_id, 0);
        ServeWaiters(rx.object_id, 0, nullptr, front->trace, front->span);
        pool_.PopFront(conn);
        PumpClient(rx.client, *client);
        continue;
      }
      // NOT ready yet: the job must hold the whole body before PumpClient
      // may send it, or a pump triggered elsewhere (send space, another
      // origin conn) would finish the job header-only and desync the client.
      rx.mode = OriginRx::Mode::kStoreBody;
      continue;
    }
    if (rx.mode == OriginRx::Mode::kStoreBody) {
      const size_t avail = stack_->RecvAvailable(conn);
      if (avail == 0) {
        break;
      }
      const size_t take = std::min<size_t>(avail, rx.remaining);
      const size_t old = rx.buf.size();
      rx.buf.resize(old + take);
      const size_t got = stack_->Recv(conn, rx.buf.data() + old, take);
      rx.buf.resize(old + got);
      rx.remaining -= static_cast<uint32_t>(got);
      if (rx.remaining > 0) {
        continue;  // Loop re-checks availability.
      }
      // Whole body buffered: cache it, hand it to the job, send.
      if (rx.cache_on_store) {
        cache_.Insert(rx.object_id, rx.body_len);
      }
      Client* client = nullptr;
      Job* job = nullptr;
      auto cit = clients_.find(rx.client);
      if (cit != clients_.end() && !cit->second.closing) {
        client = &cit->second;
        job = FindJob(*client, rx.job);
      }
      if (client != nullptr && job != nullptr) {
        if (job->ctx.trace_id != 0) {
          if (CausalTracer* ct = CausalTracer::Current()) {
            ct->Mark(job->ctx.trace_id, CausalEdge::kNetFromOrigin, sim_->Now());
          }
        }
        job->bytes.insert(job->bytes.end(), rx.buf.begin(), rx.buf.end());
        job->ready = true;
      } else if (rx.client != kInvalidConn) {
        ++discarded_responses_;  // Primary died mid-body; waiters may remain.
      }
      {
        OriginPool::Pending* front = pool_.Front(conn);
        ServeWaiters(rx.object_id, rx.body_len, rx.buf.data(),
                     front != nullptr ? front->trace : 0,
                     front != nullptr ? front->span : 0);
      }
      rx.buf.clear();
      rx.mode = OriginRx::Mode::kHeader;
      rx.cache_on_store = true;
      pool_.PopFront(conn);
      if (client != nullptr) {
        PumpClient(rx.client, *client);
      }
      continue;
    }
    if (rx.mode == OriginRx::Mode::kSpliceBody) {
      auto cit = clients_.find(rx.client);
      if (cit == clients_.end() || cit->second.closing) {
        rx.mode = OriginRx::Mode::kDiscardBody;
        continue;
      }
      PumpClient(rx.client, cit->second);
      if (rx.mode == OriginRx::Mode::kSpliceBody) {
        break;  // Still blocked on origin bytes or client send space.
      }
      continue;
    }
    // kDiscardBody: read and drop.
    const size_t avail = stack_->RecvAvailable(conn);
    if (avail == 0) {
      break;
    }
    const size_t take = std::min<size_t>(std::min<size_t>(avail, rx.remaining), scratch_.size());
    const size_t got = stack_->Recv(conn, scratch_.data(), take);
    rx.remaining -= static_cast<uint32_t>(got);
    if (rx.remaining == 0) {
      rx.mode = OriginRx::Mode::kHeader;
      pool_.PopFront(conn);
    }
  }
  rx.in_handler = false;
}

void ProxyServer::PumpClient(ConnId conn, Client& client) {
  if (client.closing) {
    return;
  }
  while (!client.jobs.empty()) {
    Job& job = client.jobs.front();
    if (!job.ready) {
      break;  // Head-of-line response still owed by cache-miss machinery.
    }
    if (job.sent < job.bytes.size()) {
      const size_t n =
          stack_->Send(conn, job.bytes.data() + job.sent, job.bytes.size() - job.sent);
      job.sent += n;
      if (job.sent < job.bytes.size()) {
        break;  // Resume on OnSendSpace.
      }
    }
    if (job.splice) {
      if (job.splice_remaining > 0) {
        const size_t moved = stack_->Splice(job.origin, conn, job.splice_remaining);
        if (moved == 0) {
          break;  // No origin bytes buffered or no client send space yet.
        }
        spliced_bytes_ += moved;
        job.splice_remaining -= static_cast<uint32_t>(moved);
        auto oit = origin_rx_.find(job.origin);
        if (oit != origin_rx_.end()) {
          oit->second.remaining -= static_cast<uint32_t>(moved);
        }
        if (job.splice_remaining > 0) {
          break;
        }
      }
      const ConnId origin = job.origin;
      pool_.PopFront(origin);
      auto oit = origin_rx_.find(origin);
      if (oit != origin_rx_.end()) {
        oit->second.mode = OriginRx::Mode::kHeader;
        oit->second.remaining = 0;
        oit->second.client = kInvalidConn;
      }
      FinishJob(conn, client, job);
      client.jobs.pop_front();
      // Further responses may already be buffered behind the spliced body.
      HandleOriginData(origin);
      continue;
    }
    FinishJob(conn, client, job);
    client.jobs.pop_front();
  }
  if (client.jobs.empty() && client.remote_closed && !client.closing) {
    client.closing = true;
    stack_->Close(conn);
  }
}

void ProxyServer::FinishJob(ConnId conn, Client& client, Job& job) {
  (void)client;
  ++responses_;
  switch (job.path) {
    case Path::kHit:
      ++responses_hit_;
      break;
    case Path::kStore:
      ++responses_store_;
      break;
    case Path::kSplice:
      ++responses_splice_;
      break;
  }
  const uint32_t body_len = job.body_len;
  if (tracer_ != nullptr) {
    tracer_->Record(sim_->Now(), conn, FlowEventType::kProxyResponse, job.request_id, body_len,
                    static_cast<uint64_t>(job.path));
  }
  if (spans_ != nullptr && span_track_ >= 0) {
    static const char* kPathNames[] = {"proxy_hit", "proxy_store", "proxy_splice"};
    spans_->Record(span_track_, kPathNames[static_cast<size_t>(job.path)], job.started,
                   sim_->Now());
  }
  if (job.ctx.trace_id != 0) {
    if (CausalTracer* ct = CausalTracer::Current()) {
      // Last response byte accepted by our stack: the proxy's work on this
      // request is over. Class is decided here, once — how the response was
      // finally produced.
      ct->Mark(job.ctx.trace_id, CausalEdge::kProxySend, sim_->Now());
      ct->EndSpan(job.ctx.trace_id, job.span, sim_->Now());
      RequestClass cls = RequestClass::kHit;
      if (job.was_coalesced) {
        cls = RequestClass::kCoalesced;
      } else if (job.path == Path::kStore) {
        cls = RequestClass::kStore;
      } else if (job.path == Path::kSplice) {
        cls = RequestClass::kSplice;
      }
      ct->SetClass(job.ctx.trace_id, cls);
    }
  }
}

void ProxyServer::ServeWaiters(uint32_t object_id, uint32_t body_len, const uint8_t* body,
                               uint64_t src_trace, uint32_t src_span) {
  auto it = pending_fetch_.find(object_id);
  if (it == pending_fetch_.end()) {
    return;
  }
  std::vector<Waiter> waiters = std::move(it->second);
  pending_fetch_.erase(it);
  for (const Waiter& w : waiters) {
    auto cit = clients_.find(w.client);
    if (cit == clients_.end() || cit->second.closing) {
      continue;
    }
    Job* job = FindJob(cit->second, w.job);
    if (job == nullptr) {
      continue;
    }
    if (job->ctx.trace_id != 0) {
      if (CausalTracer* ct = CausalTracer::Current()) {
        // The waiter's wall time since its last mark was spent parked on the
        // primary's fetch; the cross-trace link draws the fan-out arrow.
        ct->Mark(job->ctx.trace_id, CausalEdge::kCoalesceWait, sim_->Now());
        if (src_trace != 0) {
          ct->Link(src_trace, src_span, job->ctx.trace_id, job->span);
        }
      }
    }
    job->path = Path::kStore;
    job->body_len = body_len;
    job->bytes.resize(kProxyResponseHeader + body_len);
    EncodeProxyResponseHeader(
        job->bytes.data(),
        ProxyResponseHeader{kProxyStatusOk, job->request_id, body_len, job->ctx.trace_id});
    if (body_len > 0) {
      std::copy(body, body + body_len, job->bytes.begin() + kProxyResponseHeader);
    }
    job->ready = true;
    PumpClient(w.client, cit->second);
  }
}

void ProxyServer::FanOutWaiters(uint32_t object_id) {
  auto it = pending_fetch_.find(object_id);
  if (it == pending_fetch_.end()) {
    return;
  }
  std::vector<Waiter> waiters = std::move(it->second);
  pending_fetch_.erase(it);
  for (const Waiter& w : waiters) {
    auto cit = clients_.find(w.client);
    if (cit == clients_.end() || cit->second.closing) {
      continue;
    }
    Job* job = FindJob(cit->second, w.job);
    if (job == nullptr) {
      continue;
    }
    uint32_t fetch_span = 0;
    if (job->ctx.trace_id != 0) {
      if (CausalTracer* ct = CausalTracer::Current()) {
        // Waited on the primary fetch until its header revealed a spliced
        // body; from here the request runs its own fetch, so it is a store/
        // splice class request that merely *started* coalesced.
        ct->Mark(job->ctx.trace_id, CausalEdge::kCoalesceWait, sim_->Now());
        fetch_span = ct->StartSpan(job->ctx.trace_id, job->span, CausalSpanKind::kOriginFetch,
                                   sim_->Now(), object_id, job->request_id);
      }
    }
    job->was_coalesced = false;
    pool_.Dispatch(OriginPool::Pending{object_id, job->request_id, w.client, w.job,
                                       job->ctx.trace_id, fetch_span});
  }
}

ProxyServer::Job* ProxyServer::FindJob(Client& client, uint64_t job_id) {
  for (Job& job : client.jobs) {
    if (job.id == job_id) {
      return &job;
    }
  }
  return nullptr;
}

void ProxyServer::AbortClient(ConnId conn, Client& client) {
  client.closing = true;
  ++aborted_clients_;
  stack_->Close(conn);
}

void ProxyServer::DetachClientJobs(ConnId conn, Client& client) {
  (void)conn;
  for (Job& job : client.jobs) {
    if (job.splice && job.splice_remaining > 0 && job.origin != kInvalidConn) {
      auto oit = origin_rx_.find(job.origin);
      if (oit != origin_rx_.end() && oit->second.mode == OriginRx::Mode::kSpliceBody &&
          oit->second.job == job.id) {
        oit->second.mode = OriginRx::Mode::kDiscardBody;
        oit->second.client = kInvalidConn;
        HandleOriginData(job.origin);
      }
    }
  }
  client.jobs.clear();
}

}  // namespace tas
