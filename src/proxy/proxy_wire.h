// Wire format for the reverse-proxy workload tier (DESIGN.md §11).
//
// Requests and responses are fixed-header framed so the proxy can split
// header handling (always copied through user space) from body handling
// (buffered + cached for small objects, spliced client<-origin for large
// ones). Little-endian, like the kv_store format:
//
//   request:  [1B op][3B pad][4B object_id][4B request_id]
//             [8B trace_id][4B parent_span]
//   response: [1B status][3B pad][4B request_id][4B body_len][8B trace_id]
//             [body bytes]
//
// The trace fields carry the causal-tracing context (DESIGN.md §12): the
// client mints a trace id per request and each tier parents its span under
// `parent_span` (client root span on requests to the proxy; the proxy's
// origin-fetch span on requests to the origin). Responses echo the trace id
// so the client can verify it got the response to *its* request. Both
// fields are 0 when tracing is off — the framing never changes, so enabling
// tracing is timing-passive.
//
// Object bodies are synthetic (zero-filled); their size is a pure function
// of the object id so every tier — origin, proxy cache, client verifier —
// agrees on the length without exchanging metadata.
#ifndef SRC_PROXY_PROXY_WIRE_H_
#define SRC_PROXY_PROXY_WIRE_H_

#include <cstdint>
#include <cstring>

namespace tas {

inline constexpr size_t kProxyRequestBytes = 24;
inline constexpr size_t kProxyResponseHeader = 20;

inline constexpr uint8_t kProxyOpGet = 1;
inline constexpr uint8_t kProxyStatusOk = 0;

inline void ProxyPutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
inline uint32_t ProxyGetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void ProxyPutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
inline uint64_t ProxyGetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

struct ProxyRequest {
  uint32_t object_id = 0;
  uint32_t request_id = 0;
  uint64_t trace_id = 0;     // 0 = untraced.
  uint32_t parent_span = 0;  // Span the next tier parents under.
};

inline void EncodeProxyRequest(uint8_t* buf, const ProxyRequest& req) {
  buf[0] = kProxyOpGet;
  buf[1] = buf[2] = buf[3] = 0;
  ProxyPutU32(buf + 4, req.object_id);
  ProxyPutU32(buf + 8, req.request_id);
  ProxyPutU64(buf + 12, req.trace_id);
  ProxyPutU32(buf + 20, req.parent_span);
}

inline ProxyRequest DecodeProxyRequest(const uint8_t* buf) {
  return ProxyRequest{ProxyGetU32(buf + 4), ProxyGetU32(buf + 8), ProxyGetU64(buf + 12),
                      ProxyGetU32(buf + 20)};
}

struct ProxyResponseHeader {
  uint8_t status = kProxyStatusOk;
  uint32_t request_id = 0;
  uint32_t body_len = 0;
  uint64_t trace_id = 0;  // Echo of the request's trace id.
};

inline void EncodeProxyResponseHeader(uint8_t* buf, const ProxyResponseHeader& h) {
  buf[0] = h.status;
  buf[1] = buf[2] = buf[3] = 0;
  ProxyPutU32(buf + 4, h.request_id);
  ProxyPutU32(buf + 8, h.body_len);
  ProxyPutU64(buf + 12, h.trace_id);
}

inline ProxyResponseHeader DecodeProxyResponseHeader(const uint8_t* buf) {
  return ProxyResponseHeader{buf[0], ProxyGetU32(buf + 4), ProxyGetU32(buf + 8),
                             ProxyGetU64(buf + 12)};
}

// Deterministic body size for an object id: `min_bytes` plus a Knuth-hash
// spread over [0, spread). spread == 0 makes every object exactly min_bytes.
inline uint32_t ProxyObjectBytes(uint32_t object_id, uint32_t min_bytes, uint32_t spread) {
  if (spread == 0) {
    return min_bytes;
  }
  return min_bytes + (object_id * 2654435761u) % spread;
}

}  // namespace tas

#endif  // SRC_PROXY_PROXY_WIRE_H_
