// RFC 6298 round-trip-time estimation: SRTT, RTTVAR, and the retransmission
// timeout. TAS's fast path feeds this from TCP timestamps (paper Table 3:
// rtt_est); the slow path uses the RTO for its retransmission-timeout scan,
// and TIMELY consumes raw samples.
#ifndef SRC_TCP_RTT_H_
#define SRC_TCP_RTT_H_

#include "src/util/time.h"

namespace tas {

class RttEstimator {
 public:
  explicit RttEstimator(TimeNs min_rto = Ms(1), TimeNs max_rto = Sec(60));

  // Feeds one RTT measurement.
  void AddSample(TimeNs rtt);

  bool HasSample() const { return has_sample_; }
  TimeNs srtt() const { return srtt_; }
  TimeNs rttvar() const { return rttvar_; }

  // Current retransmission timeout: srtt + 4*rttvar, clamped, with
  // exponential backoff applied per RFC 6298 §5.
  TimeNs Rto() const;

  // Doubles the timeout after an expiry ("timer backoff").
  void Backoff();
  // Resets backoff after new data is acknowledged.
  void ResetBackoff() { backoff_shift_ = 0; }

 private:
  TimeNs min_rto_;
  TimeNs max_rto_;
  bool has_sample_ = false;
  TimeNs srtt_ = 0;
  TimeNs rttvar_ = 0;
  int backoff_shift_ = 0;
};

}  // namespace tas

#endif  // SRC_TCP_RTT_H_
