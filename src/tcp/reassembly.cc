#include "src/tcp/reassembly.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tas {

void ReassemblyBuffer::TouchRecency(uint64_t start) {
  DropRecency(start);
  recency_.insert(recency_.begin(), start);
}

void ReassemblyBuffer::DropRecency(uint64_t start) {
  recency_.erase(std::remove(recency_.begin(), recency_.end(), start), recency_.end());
}

ReassemblyBuffer::InsertResult ReassemblyBuffer::Insert(uint64_t next, uint64_t offset,
                                                        uint64_t len) {
  InsertResult result;
  uint64_t start = std::max(offset, next);
  uint64_t end = offset + len;
  if (end <= start) {
    result.duplicate = true;
    return result;
  }

  // Merge with any overlapping or abutting intervals.
  bool absorbed_new_bytes = false;
  auto it = intervals_.lower_bound(start);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      it = prev;
    }
  }
  uint64_t merged_start = start;
  uint64_t merged_end = end;
  while (it != intervals_.end() && it->first <= merged_end) {
    if (start < it->first || end > it->second) {
      absorbed_new_bytes = true;
    }
    merged_start = std::min(merged_start, it->first);
    merged_end = std::max(merged_end, it->second);
    DropRecency(it->first);
    it = intervals_.erase(it);
  }
  if (merged_start == start && merged_end == end) {
    absorbed_new_bytes = true;  // Fresh interval, no overlap at all.
  }
  result.duplicate = !absorbed_new_bytes && (merged_start < start || merged_end > end);

  if (merged_start <= next) {
    // Contiguous with the stream: everything up to merged_end is in order.
    result.advanced = merged_end - next;
    // Consuming may make further intervals contiguous.
    auto follow = intervals_.begin();
    uint64_t new_next = merged_end;
    while (follow != intervals_.end() && follow->first <= new_next) {
      new_next = std::max(new_next, follow->second);
      DropRecency(follow->first);
      follow = intervals_.erase(follow);
    }
    result.advanced = new_next - next;
    return result;
  }

  intervals_[merged_start] = merged_end;
  TouchRecency(merged_start);
  return result;
}

std::vector<std::pair<uint64_t, uint64_t>> ReassemblyBuffer::SackBlocks(
    size_t max_blocks) const {
  std::vector<std::pair<uint64_t, uint64_t>> blocks;
  for (uint64_t start : recency_) {
    auto it = intervals_.find(start);
    if (it == intervals_.end()) {
      continue;
    }
    blocks.emplace_back(it->first, it->second);
    if (blocks.size() >= max_blocks) {
      break;
    }
  }
  return blocks;
}

std::vector<std::pair<uint64_t, uint64_t>> ReassemblyBuffer::Intervals() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(intervals_.size());
  for (const auto& [start, end] : intervals_) {
    out.emplace_back(start, end);
  }
  return out;
}

uint64_t ReassemblyBuffer::PendingBytes() const {
  uint64_t total = 0;
  for (const auto& [start, end] : intervals_) {
    total += end - start;
  }
  return total;
}

void ReassemblyBuffer::Clear() {
  intervals_.clear();
  recency_.clear();
}

bool SingleIntervalTracker::Add(uint64_t offset, uint64_t len, uint64_t next,
                                uint64_t window) {
  if (len == 0 || offset <= next) {
    return false;
  }
  if (offset + len > next + window) {
    return false;  // Beyond the receive buffer.
  }
  if (len_ == 0) {
    start_ = offset;
    len_ = len;
    return true;
  }
  // Same-interval rule: accept only if it overlaps or abuts [start, start+len).
  const uint64_t cur_end = start_ + len_;
  if (offset > cur_end || offset + len < start_) {
    return false;
  }
  const uint64_t new_start = std::min(start_, offset);
  const uint64_t new_end = std::max(cur_end, offset + len);
  start_ = new_start;
  len_ = new_end - new_start;
  return true;
}

uint64_t SingleIntervalTracker::MergeAt(uint64_t next) {
  if (len_ == 0 || start_ > next) {
    return next;
  }
  const uint64_t end = start_ + len_;
  Reset();
  return std::max(next, end);
}

void SingleIntervalTracker::Reset() {
  start_ = 0;
  len_ = 0;
}

}  // namespace tas
