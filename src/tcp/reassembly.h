// Out-of-order segment tracking, in unwrapped stream-offset space.
//
// Two policies, matching DESIGN.md's ablation:
//  * ReassemblyBuffer  — full multi-interval reassembly with SACK block
//    generation, as a Linux-class stack keeps (paper §5.2: "Linux keeps all
//    received out-of-order segments and also issues selective
//    acknowledgements").
//  * SingleIntervalTracker — the TAS fast path's minimal variant (paper
//    §3.1, Exceptions): track exactly one out-of-order interval, accept only
//    segments that extend it, drop everything else.
//
// Both classes track *bookkeeping only*; payload bytes are placed into the
// flow's receive ByteRing by the caller (ByteRing::WriteAt).
#ifndef SRC_TCP_REASSEMBLY_H_
#define SRC_TCP_REASSEMBLY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace tas {

class ReassemblyBuffer {
 public:
  struct InsertResult {
    // Bytes by which the contiguous stream advanced past `next`.
    uint64_t advanced = 0;
    // True if the segment contributed no new bytes.
    bool duplicate = false;
  };

  // Inserts segment [offset, offset+len). `next` is the current expected
  // stream offset (rcv_nxt); bytes below it are clipped. The caller must
  // have verified the segment fits the receive window.
  InsertResult Insert(uint64_t next, uint64_t offset, uint64_t len);

  // Up to `max_blocks` SACK ranges [start, end), most recently updated
  // first (RFC 2018 ordering).
  std::vector<std::pair<uint64_t, uint64_t>> SackBlocks(size_t max_blocks = 3) const;

  // All intervals in ascending order (sender-side scoreboard walks).
  std::vector<std::pair<uint64_t, uint64_t>> Intervals() const;

  // Total buffered out-of-order bytes.
  uint64_t PendingBytes() const;
  bool Empty() const { return intervals_.empty(); }
  size_t NumIntervals() const { return intervals_.size(); }
  void Clear();

 private:
  std::map<uint64_t, uint64_t> intervals_;  // start -> end, disjoint.
  std::vector<uint64_t> recency_;           // Interval starts, most recent first.

  void TouchRecency(uint64_t start);
  void DropRecency(uint64_t start);
};

class SingleIntervalTracker {
 public:
  // Attempts to record out-of-order segment [offset, offset+len), where
  // offset > next (strictly out of order) and the segment ends within
  // next + window. Accepted iff no interval is tracked yet, or the segment
  // overlaps/abuts the tracked interval (same-interval rule). Returns true
  // if accepted (payload should be placed into the RX ring).
  bool Add(uint64_t offset, uint64_t len, uint64_t next, uint64_t window);

  // Called after in-order data advanced the expected offset to `next`. If
  // the tracked interval is now reachable, returns the new expected offset
  // (>= next) and resets; otherwise returns `next` unchanged.
  uint64_t MergeAt(uint64_t next);

  bool empty() const { return len_ == 0; }
  uint64_t start() const { return start_; }
  uint64_t length() const { return len_; }
  void Reset();

 private:
  uint64_t start_ = 0;
  uint64_t len_ = 0;  // 0 = no interval tracked (ooo_start|len of Table 3).
};

}  // namespace tas

#endif  // SRC_TCP_REASSEMBLY_H_
