// 32-bit TCP sequence-number arithmetic (RFC 793 modular comparisons) and
// unwrapping into 64-bit stream offsets.
//
// Protocol state in this codebase is kept in unwrapped 64-bit stream offsets
// (bytes since the SYN), which removes wraparound hazards from buffer and
// reassembly logic; the wire carries 32-bit sequence numbers derived from an
// initial sequence number (ISN) base. Unwrap() recovers the 64-bit offset of
// an incoming 32-bit sequence relative to the connection's current position.
#ifndef SRC_TCP_SEQ_H_
#define SRC_TCP_SEQ_H_

#include <cstdint>

namespace tas {

// True if a < b in 32-bit wrap-around sequence space.
constexpr bool SeqLt(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) < 0; }
constexpr bool SeqLe(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) <= 0; }
constexpr bool SeqGt(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) > 0; }
constexpr bool SeqGe(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) >= 0; }

// Wire sequence for a 64-bit stream offset, given the connection's ISN.
constexpr uint32_t WrapSeq(uint32_t isn, uint64_t offset) {
  return isn + static_cast<uint32_t>(offset);
}

// Recovers the 64-bit stream offset of wire sequence `seq`, given the ISN
// and a reference offset the value is known to be near (within +/- 2^31).
constexpr uint64_t UnwrapSeq(uint32_t isn, uint32_t seq, uint64_t near_offset) {
  const uint32_t expected_wire = WrapSeq(isn, near_offset);
  const int32_t delta = static_cast<int32_t>(seq - expected_wire);
  return near_offset + static_cast<uint64_t>(static_cast<int64_t>(delta));
}

}  // namespace tas

#endif  // SRC_TCP_SEQ_H_
