#include "src/tcp/rtt.h"

#include <algorithm>

namespace tas {

RttEstimator::RttEstimator(TimeNs min_rto, TimeNs max_rto)
    : min_rto_(min_rto), max_rto_(max_rto) {}

void RttEstimator::AddSample(TimeNs rtt) {
  rtt = std::max<TimeNs>(rtt, 1);
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
    return;
  }
  // alpha = 1/8, beta = 1/4.
  const TimeNs err = rtt - srtt_;
  srtt_ += err / 8;
  rttvar_ += (std::abs(err) - rttvar_) / 4;
}

TimeNs RttEstimator::Rto() const {
  TimeNs rto = has_sample_ ? srtt_ + 4 * rttvar_ : Ms(200);
  rto = std::clamp(rto, min_rto_, max_rto_);
  const int shift = std::min(backoff_shift_, 16);
  rto = std::min(max_rto_, rto << shift);
  return rto;
}

void RttEstimator::Backoff() { ++backoff_shift_; }

}  // namespace tas
