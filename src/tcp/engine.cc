#include "src/tcp/engine.h"

#include <algorithm>

#include "src/cc/newreno.h"
#include "src/tcp/seq.h"
#include "src/util/logging.h"

namespace tas {
namespace {

std::unique_ptr<WindowCc> MakeWindowCc(CcAlgorithm algorithm, const WindowCcConfig& config) {
  switch (algorithm) {
    case CcAlgorithm::kDctcpWindow:
      return std::make_unique<DctcpWindowCc>(config);
    case CcAlgorithm::kNewReno:
      return std::make_unique<NewRenoCc>(config);
    default:
      TAS_LOG(FATAL) << "TcpConnection requires a window-based CC algorithm";
      return nullptr;
  }
}

// TCP timestamps carry microseconds truncated to 32 bits.
uint32_t TsNow(Simulator* sim) { return static_cast<uint32_t>(sim->Now() / kNsPerUs); }

}  // namespace

const char* TcpStateName(TcpConnection::State state) {
  switch (state) {
    case TcpConnection::State::kClosed:
      return "CLOSED";
    case TcpConnection::State::kSynSent:
      return "SYN_SENT";
    case TcpConnection::State::kSynRcvd:
      return "SYN_RCVD";
    case TcpConnection::State::kEstablished:
      return "ESTABLISHED";
    case TcpConnection::State::kFinWait1:
      return "FIN_WAIT_1";
    case TcpConnection::State::kFinWait2:
      return "FIN_WAIT_2";
    case TcpConnection::State::kCloseWait:
      return "CLOSE_WAIT";
    case TcpConnection::State::kClosing:
      return "CLOSING";
    case TcpConnection::State::kLastAck:
      return "LAST_ACK";
    case TcpConnection::State::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(Simulator* sim, TcpEngineHost* host, const TcpConfig& config,
                             IpAddr local_ip, uint16_t local_port, IpAddr remote_ip,
                             uint16_t remote_port, uint32_t isn)
    : sim_(sim),
      host_(host),
      config_(config),
      local_ip_(local_ip),
      local_port_(local_port),
      remote_ip_(remote_ip),
      remote_port_(remote_port),
      iss_(isn),
      tx_ring_(config.tx_buffer_bytes),
      rx_ring_(config.rx_buffer_bytes),
      rto_timer_(sim, [this] { OnRtoExpired(); }),
      time_wait_timer_(sim, [this] { FinalizeClose(); }),
      delayed_ack_timer_(sim, [this] {
        if (state_ != State::kClosed) {
          SendPureAck(false);
        }
      }) {
  cc_ = MakeWindowCc(config.cc, config.window_cc);
}

TcpConnection::~TcpConnection() {
  destroying_ = true;
  rto_timer_.Cancel();
  time_wait_timer_.Cancel();
  delayed_ack_timer_.Cancel();
}

uint64_t TcpConnection::UnwrapRxSeq(uint32_t seq) const {
  return UnwrapSeq(irs_ + 1, seq, rcv_nxt_data_);
}

uint64_t TcpConnection::UnwrapAck(uint32_t ack) const {
  return UnwrapSeq(iss_ + 1, ack, snd_una_data_);
}

uint32_t TcpConnection::CurrentAckField() const {
  uint32_t ack = irs_ + 1 + static_cast<uint32_t>(rcv_nxt_data_);
  if (rcv_fin_seen_ && rcv_nxt_data_ >= rcv_fin_offset_) {
    ack += 1;  // FIN consumed.
  }
  return ack;
}

uint64_t TcpConnection::AdvertisedWindowBytes() const { return rx_ring_.free_space(); }

uint16_t TcpConnection::AdvertisedWindowField() const {
  const uint64_t window = AdvertisedWindowBytes() >> config_.window_scale;
  return static_cast<uint16_t>(std::min<uint64_t>(window, 0xFFFF));
}

PacketPtr TcpConnection::BuildPacket(uint8_t flags, uint64_t seq_data_offset,
                                     std::vector<uint8_t> payload) {
  auto pkt = MakeTcpPacket(local_ip_, local_port_, remote_ip_, remote_port_,
                           TxWireSeq(seq_data_offset), 0, flags, std::move(payload));
  if ((flags & TcpFlags::kAck) != 0) {
    pkt->tcp.ack = CurrentAckField();
  }
  pkt->tcp.window = AdvertisedWindowField();
  if (config_.use_timestamps) {
    pkt->tcp.has_timestamps = true;
    pkt->tcp.ts_val = TsNow(sim_);
    pkt->tcp.ts_ecr = ts_echo_;
  }
  pkt->enqueued_at = sim_->Now();
  return pkt;
}

void TcpConnection::Connect() {
  TAS_CHECK(state_ == State::kClosed);
  state_ = State::kSynSent;
  auto syn = MakeTcpPacket(local_ip_, local_port_, remote_ip_, remote_port_, iss_, 0,
                           TcpFlags::kSyn);
  syn->tcp.has_mss = true;
  syn->tcp.mss = static_cast<uint16_t>(config_.mss);
  syn->tcp.has_wscale = true;
  syn->tcp.wscale = config_.window_scale;
  syn->tcp.window = static_cast<uint16_t>(std::min<uint64_t>(AdvertisedWindowBytes(), 0xFFFF));
  if (config_.use_timestamps) {
    syn->tcp.has_timestamps = true;
    syn->tcp.ts_val = TsNow(sim_);
  }
  syn->enqueued_at = sim_->Now();
  host_->EmitPacket(this, std::move(syn));
  ArmRtoTimer();
}

void TcpConnection::AcceptSyn(const Packet& syn) {
  TAS_CHECK(state_ == State::kClosed);
  TAS_CHECK(syn.tcp.syn());
  irs_ = syn.tcp.seq;
  if (syn.tcp.has_mss) {
    config_.mss = std::min<uint64_t>(config_.mss, syn.tcp.mss);
  }
  peer_wscale_ = syn.tcp.has_wscale ? syn.tcp.wscale : 0;
  peer_rwnd_ = syn.tcp.window;  // SYN windows are unscaled.
  if (syn.tcp.has_timestamps) {
    ts_echo_ = syn.tcp.ts_val;
  }
  state_ = State::kSynRcvd;

  auto synack = MakeTcpPacket(local_ip_, local_port_, remote_ip_, remote_port_, iss_,
                              irs_ + 1, TcpFlags::kSyn | TcpFlags::kAck);
  synack->tcp.has_mss = true;
  synack->tcp.mss = static_cast<uint16_t>(config_.mss);
  synack->tcp.has_wscale = true;
  synack->tcp.wscale = config_.window_scale;
  synack->tcp.window = static_cast<uint16_t>(std::min<uint64_t>(AdvertisedWindowBytes(), 0xFFFF));
  if (config_.use_timestamps) {
    synack->tcp.has_timestamps = true;
    synack->tcp.ts_val = TsNow(sim_);
    synack->tcp.ts_ecr = ts_echo_;
  }
  synack->enqueued_at = sim_->Now();
  host_->EmitPacket(this, std::move(synack));
  ArmRtoTimer();
}

void TcpConnection::Close() {
  switch (state_) {
    case State::kEstablished:
    case State::kCloseWait:
      fin_queued_ = true;
      TryTransmit();
      break;
    case State::kSynSent:
      FinalizeClose();
      break;
    default:
      break;  // Already closing.
  }
}

void TcpConnection::Abort() {
  if (state_ == State::kClosed) {
    return;
  }
  auto rst = BuildPacket(TcpFlags::kRst | TcpFlags::kAck, snd_nxt_data_, {});
  host_->EmitPacket(this, std::move(rst));
  FinalizeClose();
}

size_t TcpConnection::Send(const uint8_t* data, size_t len) {
  if (state_ != State::kEstablished && state_ != State::kCloseWait) {
    return 0;
  }
  if (fin_queued_) {
    return 0;
  }
  const size_t written = tx_ring_.Write(data, len);
  if (written > 0) {
    TryTransmit();
  }
  return written;
}

size_t TcpConnection::Recv(uint8_t* data, size_t len) {
  const size_t to_read = std::min(len, deliverable_);
  if (to_read == 0) {
    return 0;
  }
  const uint64_t window_before = AdvertisedWindowBytes();
  const size_t read = rx_ring_.Read(data, to_read);
  TAS_CHECK(read == to_read);
  deliverable_ -= read;
  // Window update: if the advertised window was effectively closed and
  // draining reopened it, tell the peer so it does not stall.
  if (window_before < config_.mss && AdvertisedWindowBytes() >= config_.mss &&
      (state_ == State::kEstablished || state_ == State::kFinWait1 ||
       state_ == State::kFinWait2)) {
    SendPureAck(false);
  }
  return read;
}

bool TcpConnection::FinOutstanding() const { return fin_sent_ && !fin_acked_; }

void TcpConnection::HandlePacket(const Packet& pkt) {
  if (state_ == State::kClosed) {
    return;
  }
  if (pkt.tcp.rst()) {
    HandleRst();
    return;
  }
  if (pkt.tcp.has_timestamps) {
    ts_echo_ = pkt.tcp.ts_val;
  }
  this_packet_ce_ = pkt.ip.ecn == Ecn::kCe;
  pending_ack_ = false;
  pending_dupack_sack_ = false;
  segments_sent_in_event_ = 0;

  switch (state_) {
    case State::kSynSent: {
      if (pkt.tcp.syn() && pkt.tcp.ack_flag() && pkt.tcp.ack == iss_ + 1) {
        irs_ = pkt.tcp.seq;
        if (pkt.tcp.has_mss) {
          config_.mss = std::min<uint64_t>(config_.mss, pkt.tcp.mss);
        }
        peer_wscale_ = pkt.tcp.has_wscale ? pkt.tcp.wscale : 0;
        peer_rwnd_ = pkt.tcp.window;  // Unscaled in SYN-ACK.
        state_ = State::kEstablished;
        retries_ = 0;
        CancelRtoTimer();
        SendPureAck(false);
        host_->OnConnected(this);
      }
      return;
    }
    case State::kSynRcvd: {
      if (pkt.tcp.ack_flag() && pkt.tcp.ack == iss_ + 1) {
        state_ = State::kEstablished;
        retries_ = 0;
        peer_rwnd_ = static_cast<uint64_t>(pkt.tcp.window) << peer_wscale_;
        CancelRtoTimer();
        host_->OnConnected(this);
        // Fall through to process any piggybacked payload.
        break;
      }
      if (pkt.tcp.syn()) {
        // Duplicate SYN: re-send the SYN-ACK.
        state_ = State::kClosed;
        AcceptSyn(pkt);
      }
      return;
    }
    case State::kTimeWait: {
      if (pkt.tcp.fin()) {
        SendPureAck(false);  // Retransmitted FIN: re-ACK.
      }
      return;
    }
    default:
      break;
  }
  if (state_ == State::kClosed) {
    return;
  }

  if (pkt.tcp.ack_flag()) {
    ProcessAck(pkt);
    if (state_ == State::kClosed) {
      return;
    }
  }

  if (!pkt.payload.empty()) {
    const uint64_t offset = UnwrapRxSeq(pkt.tcp.seq);
    ProcessData(pkt, offset);
  }

  if (pkt.tcp.fin()) {
    const uint64_t fin_offset = UnwrapRxSeq(pkt.tcp.seq) + pkt.payload.size();
    if (!rcv_fin_seen_) {
      rcv_fin_seen_ = true;
      rcv_fin_offset_ = fin_offset;
    }
    if (rcv_nxt_data_ >= rcv_fin_offset_) {
      // FIN is in order: consume it.
      pending_ack_ = true;
      switch (state_) {
        case State::kEstablished:
          state_ = State::kCloseWait;
          host_->OnRemoteClose(this);
          break;
        case State::kFinWait1:
          state_ = fin_acked_ ? State::kTimeWait : State::kClosing;
          if (state_ == State::kTimeWait) {
            EnterTimeWait();
          }
          host_->OnRemoteClose(this);
          break;
        case State::kFinWait2:
          state_ = State::kTimeWait;
          EnterTimeWait();
          host_->OnRemoteClose(this);
          break;
        default:
          break;
      }
    }
  }

  TryTransmit();
  if (pending_ack_ && segments_sent_in_event_ == 0 && state_ != State::kClosed) {
    // Dupacks (fast-retransmit signal), ECN echoes (DCTCP feedback), FIN
    // acknowledgement, and every-2-MSS acks go out immediately; otherwise
    // delay briefly hoping to piggyback on a response segment.
    const bool must_ack_now = pending_dupack_sack_ || this_packet_ce_ ||
                              pkt.tcp.fin() || config_.delayed_ack == 0 ||
                              unacked_rx_bytes_ >= 2 * config_.mss;
    if (must_ack_now) {
      SendPureAck(pending_dupack_sack_);
    } else {
      ArmDelayedAck();
    }
  }
  this_packet_ce_ = false;
  pending_ack_ = false;
}

void TcpConnection::ProcessAck(const Packet& pkt) {
  const uint64_t old_rwnd = peer_rwnd_;
  peer_rwnd_ = static_cast<uint64_t>(pkt.tcp.window) << peer_wscale_;

  uint64_t ack_offset = UnwrapAck(pkt.tcp.ack);
  bool acked_fin = false;
  if (fin_sent_ && ack_offset > snd_max_data_) {
    acked_fin = true;
    ack_offset = snd_max_data_;
  }
  if (ack_offset > snd_max_data_) {
    return;  // Acks data we never sent; ignore.
  }
  // An RTO may have rewound snd_nxt below data the receiver meanwhile acked.
  if (ack_offset > snd_nxt_data_) {
    snd_nxt_data_ = ack_offset;
  }

  // Sender-side SACK scoreboard.
  if (config_.use_sack && pkt.tcp.num_sack > 0) {
    for (uint8_t i = 0; i < pkt.tcp.num_sack; ++i) {
      const uint64_t start = UnwrapSeq(iss_ + 1, pkt.tcp.sack[i].start, snd_una_data_);
      const uint64_t end = UnwrapSeq(iss_ + 1, pkt.tcp.sack[i].end, snd_una_data_);
      if (end > start && start >= snd_una_data_ && end <= snd_nxt_data_) {
        sack_scoreboard_.Insert(snd_una_data_, start, end - start);
      }
    }
  }

  if (ack_offset > snd_una_data_) {
    const uint64_t freed = ack_offset - snd_una_data_;
    tx_ring_.Discard(freed);
    snd_una_data_ = ack_offset;
    dupack_count_ = 0;
    retries_ = 0;
    rtt_.ResetBackoff();

    if (config_.use_timestamps && pkt.tcp.has_timestamps && pkt.tcp.ts_ecr != 0) {
      const TimeNs sample =
          (static_cast<TimeNs>(TsNow(sim_) - pkt.tcp.ts_ecr)) * kNsPerUs;
      if (sample >= 0 && sample < Sec(10)) {
        rtt_.AddSample(sample);
      }
    }
    cc_->OnAck(freed, pkt.tcp.ece(), rtt_.srtt());
    if (pkt.tcp.ece() && config_.ecn_enabled) {
      send_cwr_ = true;
    }
    if (in_recovery_ && snd_una_data_ >= recovery_point_) {
      in_recovery_ = false;
      sack_scoreboard_.Clear();
    } else if (in_recovery_) {
      // NewReno partial ACK: the next hole starts exactly at the new
      // cumulative ACK point; retransmit it immediately.
      retransmit_hole_next_ = snd_una_data_;
      RetransmitHole();
    }
    if (acked_fin) {
      fin_acked_ = true;
    }
    ArmRtoTimer();
    // Coalesce send-space wakeups (kernels do the same for EPOLLOUT): wake
    // the app once a useful chunk is writable, not once per acked MSS.
    sendspace_pending_ += freed;
    const uint64_t threshold =
        std::min<uint64_t>(4 * config_.mss, config_.tx_buffer_bytes / 4);
    if (sendspace_pending_ >= threshold || OutstandingBytes() == 0) {
      const uint64_t notify = sendspace_pending_;
      sendspace_pending_ = 0;
      host_->OnSendSpace(this, notify);
    }
  } else if (ack_offset == snd_una_data_ && (OutstandingBytes() > 0 || FinOutstanding()) &&
             pkt.payload.empty() && !pkt.tcp.syn() && !pkt.tcp.fin() &&
             peer_rwnd_ == old_rwnd) {
    // Duplicate ACK (RFC 5681: same ack, no payload, unchanged window —
    // a changed window makes it a window update, not a loss signal).
    ++dupack_count_;
    if (dupack_count_ == 3) {
      ++fast_retransmits_;
      in_recovery_ = true;
      recovery_point_ = snd_nxt_data_;
      retransmit_hole_next_ = snd_una_data_;
      cc_->OnFastRetransmit();
      RetransmitHole();
    } else if (dupack_count_ > 3 && in_recovery_) {
      RetransmitHole();
    }
  }

  if (acked_fin && !fin_acked_) {
    fin_acked_ = true;
  }

  // Close-sequence state transitions driven by our FIN being acked.
  if (fin_acked_) {
    switch (state_) {
      case State::kFinWait1:
        state_ = State::kFinWait2;
        CancelRtoTimer();
        break;
      case State::kClosing:
        state_ = State::kTimeWait;
        EnterTimeWait();
        break;
      case State::kLastAck:
        FinalizeClose();
        break;
      default:
        break;
    }
  }
}

void TcpConnection::ProcessData(const Packet& pkt, uint64_t payload_data_offset) {
  const uint64_t len = pkt.payload.size();
  const uint64_t end = payload_data_offset + len;
  pending_ack_ = true;
  unacked_rx_bytes_ += len;

  if (end <= rcv_nxt_data_) {
    return;  // Entirely duplicate; the ACK we owe covers it.
  }
  const uint64_t window_end = rx_ring_.tail() + rx_ring_.capacity();
  if (payload_data_offset >= window_end) {
    return;  // Entirely beyond our buffer; drop, ACK restates rcv_nxt.
  }

  // Clip the segment to [rcv_nxt, window_end).
  uint64_t start = std::max(payload_data_offset, rcv_nxt_data_);
  uint64_t clipped_end = std::min(end, window_end);
  const uint8_t* data = pkt.payload.data() + (start - payload_data_offset);
  const uint64_t clipped_len = clipped_end - start;

  if (start <= rcv_nxt_data_) {
    // In-order (possibly with already-buffered continuation).
    TAS_CHECK(rx_ring_.WriteAt(start, data, clipped_len));
    const auto result = reassembly_.Insert(rcv_nxt_data_, start, clipped_len);
    rcv_nxt_data_ += result.advanced;
    const uint64_t merged = single_interval_.empty()
                                ? rcv_nxt_data_
                                : single_interval_.MergeAt(rcv_nxt_data_);
    rcv_nxt_data_ = merged;
    rx_ring_.AdvanceHead(rcv_nxt_data_);
    const size_t newly = static_cast<size_t>(rcv_nxt_data_ - rx_ring_.tail()) - deliverable_;
    deliverable_ += newly;
    if (newly > 0) {
      host_->OnDataAvailable(this, newly);
    }
  } else {
    // Out of order.
    if (config_.use_sack) {
      TAS_CHECK(rx_ring_.WriteAt(start, data, clipped_len));
      reassembly_.Insert(rcv_nxt_data_, start, clipped_len);
      pending_dupack_sack_ = true;
    } else {
      if (single_interval_.Add(start, clipped_len, rcv_nxt_data_,
                               window_end - rcv_nxt_data_)) {
        TAS_CHECK(rx_ring_.WriteAt(start, data, clipped_len));
      }
      // Either way, duplicate-ACK to trigger fast retransmit at the sender.
    }
  }
}

void TcpConnection::RetransmitHole() {
  if (OutstandingBytes() == 0) {
    return;
  }
  uint64_t hole_start = std::max(snd_una_data_, retransmit_hole_next_);
  uint64_t hole_end = snd_nxt_data_;
  if (sack_scoreboard_.Empty() && hole_start > snd_una_data_) {
    // Without SACK there is no evidence of which later segments are missing:
    // blind retransmission wastes capacity (and a single-interval receiver
    // like TAS would discard it). Wait for a partial ACK instead.
    return;
  }
  for (const auto& [s, e] : sack_scoreboard_.Intervals()) {
    if (hole_start >= s && hole_start < e) {
      hole_start = e;  // Already SACKed; move past.
    } else if (s > hole_start) {
      hole_end = std::min(hole_end, s);
      break;
    }
  }
  if (hole_start >= snd_nxt_data_) {
    return;  // Everything outstanding is SACKed; wait for cumulative ACK.
  }
  const uint64_t len = std::min<uint64_t>(config_.mss, hole_end - hole_start);
  SendSegment(hole_start, len, /*is_retransmit=*/true);
  retransmit_hole_next_ = hole_start + len;
}

void TcpConnection::SendSegment(uint64_t data_offset, uint64_t len, bool is_retransmit) {
  TAS_CHECK(len > 0);
  uint8_t flags = TcpFlags::kAck | TcpFlags::kPsh;
  if (send_cwr_ && config_.ecn_enabled) {
    flags |= TcpFlags::kCwr;
    send_cwr_ = false;
  }
  if (this_packet_ce_ && config_.ecn_enabled && pending_ack_) {
    flags |= TcpFlags::kEce;  // ACK piggybacked on data echoes the CE mark.
  }
  // Fill the payload in place: the pooled packet's buffer retains capacity,
  // so this resize allocates nothing in steady state.
  auto pkt = BuildPacket(flags, data_offset, {});
  pkt->payload.resize(len);
  const size_t got = tx_ring_.Peek(data_offset, pkt->payload.data(), len);
  TAS_CHECK(got == len) << "tx ring underrun at offset " << data_offset;
  if (config_.ecn_enabled) {
    pkt->ip.ecn = Ecn::kEct0;
  }
  delayed_ack_timer_.Cancel();  // The segment carries the current ACK.
  unacked_rx_bytes_ = 0;
  host_->EmitPacket(this, std::move(pkt));
  ++segments_sent_in_event_;
  if (!is_retransmit) {
    snd_nxt_data_ = std::max(snd_nxt_data_, data_offset + len);
  }
  snd_max_data_ = std::max(snd_max_data_, data_offset + len);
  ArmRtoTimer();
}

void TcpConnection::ArmDelayedAck() {
  if (delayed_ack_timer_.armed()) {
    return;
  }
  delayed_ack_timer_.Schedule(sim_->Now() + config_.delayed_ack);
}

void TcpConnection::SendPureAck(bool dupack_with_sack) {
  delayed_ack_timer_.Cancel();
  unacked_rx_bytes_ = 0;
  uint8_t flags = TcpFlags::kAck;
  if (this_packet_ce_ && config_.ecn_enabled) {
    flags |= TcpFlags::kEce;  // Per-packet DCTCP-style echo.
  }
  auto pkt = BuildPacket(flags, snd_nxt_data_, {});
  if (dupack_with_sack && config_.use_sack) {
    const auto blocks = reassembly_.SackBlocks(3);
    pkt->tcp.num_sack = static_cast<uint8_t>(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
      pkt->tcp.sack[i].start = irs_ + 1 + static_cast<uint32_t>(blocks[i].first);
      pkt->tcp.sack[i].end = irs_ + 1 + static_cast<uint32_t>(blocks[i].second);
    }
  }
  host_->EmitPacket(this, std::move(pkt));
}

void TcpConnection::TryTransmit() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait &&
      state_ != State::kFinWait1 && state_ != State::kClosing && state_ != State::kLastAck) {
    return;
  }
  for (;;) {
    const uint64_t available = tx_ring_.head() - snd_nxt_data_;
    const uint64_t outstanding = OutstandingBytes();
    const uint64_t cwnd = cc_->cwnd();
    const uint64_t window = std::min<uint64_t>(cwnd, peer_rwnd_);
    if (available == 0 || outstanding >= window) {
      break;
    }
    const uint64_t len =
        std::min({available, static_cast<uint64_t>(config_.mss), window - outstanding});
    if (len == 0) {
      break;
    }
    SendSegment(snd_nxt_data_, len, /*is_retransmit=*/false);
  }

  // FIN once all queued data is out.
  if (fin_queued_ && !fin_sent_ && tx_ring_.head() == snd_nxt_data_) {
    fin_sent_ = true;
    uint8_t flags = TcpFlags::kFin | TcpFlags::kAck;
    auto fin = BuildPacket(flags, snd_nxt_data_, {});
    host_->EmitPacket(this, std::move(fin));
    ++segments_sent_in_event_;
    switch (state_) {
      case State::kEstablished:
        state_ = State::kFinWait1;
        break;
      case State::kCloseWait:
        state_ = State::kLastAck;
        break;
      default:
        break;
    }
    ArmRtoTimer();
  }
}

void TcpConnection::ArmRtoTimer() {
  const bool handshake = state_ == State::kSynSent || state_ == State::kSynRcvd;
  if (!handshake && OutstandingBytes() == 0 && !FinOutstanding()) {
    CancelRtoTimer();
    return;
  }
  rto_timer_.Schedule(sim_->Now() + rtt_.Rto());
}

void TcpConnection::CancelRtoTimer() { rto_timer_.Cancel(); }

void TcpConnection::OnRtoExpired() {
  ++retries_;
  switch (state_) {
    case State::kSynSent: {
      if (retries_ > config_.max_syn_retries) {
        state_ = State::kClosed;
        host_->OnConnectFailed(this);
        return;
      }
      rtt_.Backoff();
      auto syn = MakeTcpPacket(local_ip_, local_port_, remote_ip_, remote_port_, iss_, 0,
                               TcpFlags::kSyn);
      syn->tcp.has_mss = true;
      syn->tcp.mss = static_cast<uint16_t>(config_.mss);
      syn->tcp.has_wscale = true;
      syn->tcp.wscale = config_.window_scale;
      if (config_.use_timestamps) {
        syn->tcp.has_timestamps = true;
        syn->tcp.ts_val = TsNow(sim_);
      }
      syn->enqueued_at = sim_->Now();
      host_->EmitPacket(this, std::move(syn));
      ArmRtoTimer();
      return;
    }
    case State::kSynRcvd: {
      if (retries_ > config_.max_syn_retries) {
        FinalizeClose();
        return;
      }
      rtt_.Backoff();
      auto synack = MakeTcpPacket(local_ip_, local_port_, remote_ip_, remote_port_, iss_,
                                  irs_ + 1, TcpFlags::kSyn | TcpFlags::kAck);
      synack->tcp.has_mss = true;
      synack->tcp.mss = static_cast<uint16_t>(config_.mss);
      synack->tcp.has_wscale = true;
      synack->tcp.wscale = config_.window_scale;
      if (config_.use_timestamps) {
        synack->tcp.has_timestamps = true;
        synack->tcp.ts_val = TsNow(sim_);
        synack->tcp.ts_ecr = ts_echo_;
      }
      synack->enqueued_at = sim_->Now();
      host_->EmitPacket(this, std::move(synack));
      ArmRtoTimer();
      return;
    }
    default:
      break;
  }

  if (retries_ > config_.max_data_retries) {
    Abort();
    return;
  }
  ++timeout_retransmits_;
  cc_->OnTimeout();
  rtt_.Backoff();
  in_recovery_ = false;
  dupack_count_ = 0;
  sack_scoreboard_.Clear();
  // Go-back-N: rewind and resend from the unacknowledged point.
  snd_nxt_data_ = snd_una_data_;
  const uint64_t available = tx_ring_.head() - snd_nxt_data_;
  if (available > 0) {
    SendSegment(snd_nxt_data_, std::min<uint64_t>(config_.mss, available),
                /*is_retransmit=*/false);
  } else if (FinOutstanding()) {
    auto fin = BuildPacket(TcpFlags::kFin | TcpFlags::kAck, snd_nxt_data_, {});
    host_->EmitPacket(this, std::move(fin));
  }
  ArmRtoTimer();
}

void TcpConnection::EnterTimeWait() {
  CancelRtoTimer();
  time_wait_timer_.Schedule(sim_->Now() + config_.time_wait);
}

void TcpConnection::FinalizeClose() {
  if (state_ == State::kClosed) {
    return;
  }
  state_ = State::kClosed;
  CancelRtoTimer();
  time_wait_timer_.Cancel();
  if (!destroying_) {
    // Defer so the host can safely destroy the connection.
    sim_->After(0, [this] { host_->OnClosed(this); });
  }
}

void TcpConnection::HandleRst() {
  if (state_ == State::kSynSent) {
    state_ = State::kClosed;
    host_->OnConnectFailed(this);
    return;
  }
  FinalizeClose();
}

}  // namespace tas
