// Generic TCP connection engine: the full protocol state machine used by the
// baseline stacks (Linux / IX / mTCP models).
//
// This is a real TCP implementation over the simulated network — three-way
// handshake, sliding window with window scaling, per-packet ACKs with SACK,
// fast retransmit on three duplicate ACKs, SACK-driven hole retransmission,
// RTO with exponential backoff, FIN/RST teardown, TCP timestamps for RTT,
// and ECN echo (ECE/CWR) feeding window-based DCTCP. TAS's own fast/slow
// path (src/tas) is an independent implementation; the two interoperate in
// tests and in the Table 4 compatibility experiment.
//
// The engine contains protocol logic only. CPU cycle charging, packet
// demultiplexing and listen sockets live in the owning stack, which talks to
// the engine through TcpEngineHost.
#ifndef SRC_TCP_ENGINE_H_
#define SRC_TCP_ENGINE_H_

#include <cstdint>
#include <memory>

#include "src/cc/cc.h"
#include "src/cc/dctcp_window.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/tcp/reassembly.h"
#include "src/tcp/rtt.h"
#include "src/util/ring_buffer.h"

namespace tas {

class TcpConnection;

// Callbacks from the engine into the owning stack.
class TcpEngineHost {
 public:
  virtual ~TcpEngineHost() = default;

  // Emit a packet toward the NIC (the stack charges TX cycles and may delay).
  virtual void EmitPacket(TcpConnection* conn, PacketPtr pkt) = 0;
  // Handshake completed (either direction).
  virtual void OnConnected(TcpConnection* conn) = 0;
  // Active open failed (timeout or RST in SYN_SENT).
  virtual void OnConnectFailed(TcpConnection* conn) = 0;
  // `bytes` of new in-order payload are readable via Recv().
  virtual void OnDataAvailable(TcpConnection* conn, size_t bytes) = 0;
  // Send-buffer space was reclaimed by an ACK.
  virtual void OnSendSpace(TcpConnection* conn, size_t bytes_freed) = 0;
  // Peer initiated close and all preceding data was delivered.
  virtual void OnRemoteClose(TcpConnection* conn) = 0;
  // Connection fully terminated (TIME_WAIT expired, LAST_ACK done, or RST).
  virtual void OnClosed(TcpConnection* conn) = 0;
};

struct TcpConfig {
  uint64_t mss = 1448;
  size_t tx_buffer_bytes = 128 * 1024;
  size_t rx_buffer_bytes = 128 * 1024;
  uint8_t window_scale = 7;
  bool use_sack = true;        // Full reassembly + SACK (Linux-class).
  bool ecn_enabled = true;     // ECT(0) on data, ECE echo.
  bool use_timestamps = true;
  CcAlgorithm cc = CcAlgorithm::kDctcpWindow;
  WindowCcConfig window_cc;
  TimeNs min_rto = Ms(1);      // Datacenter-tuned.
  TimeNs time_wait = Ms(5);
  // Delayed ACKs (RFC 1122): pure ACKs wait up to this long (or two MSS of
  // unacked data) hoping to piggyback on reverse data. Dupacks, ECN echoes
  // and FIN handling always ACK immediately. 0 = ack every packet.
  TimeNs delayed_ack = Us(100);
  int max_syn_retries = 5;
  int max_data_retries = 15;
};

class TcpConnection {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kClosing,
    kLastAck,
    kTimeWait,
  };

  TcpConnection(Simulator* sim, TcpEngineHost* host, const TcpConfig& config, IpAddr local_ip,
                uint16_t local_port, IpAddr remote_ip, uint16_t remote_port, uint32_t isn);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // --- Open/close ----------------------------------------------------------
  void Connect();                      // Active open: send SYN.
  void AcceptSyn(const Packet& syn);   // Passive open: consume peer SYN, send SYN-ACK.
  void Close();                        // Half-close: FIN after queued data.
  void Abort();                        // RST and drop state.

  // --- Data transfer -------------------------------------------------------
  // Appends to the send buffer; returns bytes accepted. Triggers transmit.
  size_t Send(const uint8_t* data, size_t len);
  // Reads in-order received payload; returns bytes read. May emit a window
  // update if the advertised window had collapsed.
  size_t Recv(uint8_t* data, size_t len);
  size_t RecvAvailable() const { return deliverable_; }
  size_t SendSpace() const { return tx_ring_.free_space(); }

  // --- Packet input (from the stack demux) ----------------------------------
  void HandlePacket(const Packet& pkt);

  // --- Introspection -------------------------------------------------------
  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  IpAddr local_ip() const { return local_ip_; }
  uint16_t local_port() const { return local_port_; }
  IpAddr remote_ip() const { return remote_ip_; }
  uint16_t remote_port() const { return remote_port_; }
  const RttEstimator& rtt() const { return rtt_; }
  uint64_t bytes_sent() const { return snd_nxt_data_; }
  uint64_t bytes_acked() const { return snd_una_data_; }
  uint64_t bytes_received() const { return rcv_nxt_data_; }
  uint32_t fast_retransmits() const { return fast_retransmits_; }
  uint32_t timeout_retransmits() const { return timeout_retransmits_; }
  WindowCc* congestion_control() { return cc_.get(); }

  // Application-defined tag (mirrors TAS's `opaque`).
  uint64_t opaque = 0;

 private:
  // Sequence-space mapping: wire_seq = isn + 1 + data_offset for payload;
  // the SYN occupies isn, the FIN occupies isn + 1 + total_data.
  uint32_t TxWireSeq(uint64_t data_offset) const { return iss_ + 1 + static_cast<uint32_t>(data_offset); }
  uint64_t UnwrapRxSeq(uint32_t seq) const;
  uint64_t UnwrapAck(uint32_t ack) const;
  uint32_t CurrentAckField() const;
  uint16_t AdvertisedWindowField() const;
  uint64_t AdvertisedWindowBytes() const;

  PacketPtr BuildPacket(uint8_t flags, uint64_t seq_data_offset, std::vector<uint8_t> payload);
  void SendSegment(uint64_t data_offset, uint64_t len, bool is_retransmit);
  void SendPureAck(bool dupack_with_sack);
  void ArmDelayedAck();
  void TryTransmit();
  void ProcessAck(const Packet& pkt);
  void ProcessData(const Packet& pkt, uint64_t payload_data_offset);
  void RetransmitHole();
  void ArmRtoTimer();
  void CancelRtoTimer();
  void OnRtoExpired();
  void EnterTimeWait();
  void FinalizeClose();
  void HandleRst();
  uint64_t OutstandingBytes() const { return snd_nxt_data_ - snd_una_data_; }
  bool FinOutstanding() const;

  Simulator* sim_;
  TcpEngineHost* host_;
  TcpConfig config_;
  IpAddr local_ip_;
  uint16_t local_port_;
  IpAddr remote_ip_;
  uint16_t remote_port_;

  State state_ = State::kClosed;
  uint32_t iss_;       // Our initial sequence number.
  uint32_t irs_ = 0;   // Peer's initial sequence number.

  // Send side (64-bit data offsets; ring tail == snd_una_data_).
  ByteRing tx_ring_;
  uint64_t snd_una_data_ = 0;
  uint64_t snd_nxt_data_ = 0;
  uint64_t snd_max_data_ = 0;  // High-water mark (survives RTO rewinds).
  uint64_t peer_rwnd_ = 0;          // Advertised by peer, already descaled.
  uint8_t peer_wscale_ = 0;
  bool fin_queued_ = false;         // App called Close().
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  int dupack_count_ = 0;
  uint64_t recovery_point_ = 0;     // snd_nxt at loss; recovery until acked.
  bool in_recovery_ = false;
  ReassemblyBuffer sack_scoreboard_;  // Peer-SACKed ranges (sender side).
  uint64_t retransmit_hole_next_ = 0;

  // Receive side.
  ByteRing rx_ring_;
  uint64_t rcv_nxt_data_ = 0;
  size_t deliverable_ = 0;          // In-order bytes not yet Recv()'d.
  ReassemblyBuffer reassembly_;     // Out-of-order bookkeeping (SACK mode).
  SingleIntervalTracker single_interval_;  // Used when use_sack == false.
  bool rcv_fin_seen_ = false;
  uint64_t rcv_fin_offset_ = 0;
  bool pending_ack_ = false;        // Data arrived; ACK owed this event.
  bool pending_dupack_sack_ = false;
  bool send_cwr_ = false;           // Echo CWR on next data segment.
  bool this_packet_ce_ = false;     // CE mark on the packet being processed.
  int segments_sent_in_event_ = 0;  // For ACK piggybacking.

  // Timers and estimation. DeadlineTimers: the RTO re-arms on every send
  // and every ACK, and the delayed-ACK timer is usually cancelled by a
  // piggybacked ACK — lazy deadlines keep that churn out of the event heap.
  RttEstimator rtt_;
  DeadlineTimer rto_timer_;
  DeadlineTimer time_wait_timer_;
  DeadlineTimer delayed_ack_timer_;
  uint64_t unacked_rx_bytes_ = 0;  // Data received since our last ACK.
  int retries_ = 0;

  std::unique_ptr<WindowCc> cc_;
  uint32_t fast_retransmits_ = 0;
  uint32_t timeout_retransmits_ = 0;
  uint32_t ts_echo_ = 0;            // Latest peer ts_val to echo.
  uint64_t sendspace_pending_ = 0;  // Freed bytes awaiting app notification.
  bool destroying_ = false;
};

const char* TcpStateName(TcpConnection::State state);

}  // namespace tas

#endif  // SRC_TCP_ENGINE_H_
