// Bounded single-producer/single-consumer queue.
//
// TAS connects its components with "shared memory queues, optimized for
// cache-efficient message passing" (paper §3, citing Barrelfish). This is a
// classic Lamport ring with head/tail indices on separate cache lines so a
// producer thread and a consumer thread never contend on the same line.
// The simulator runs single-threaded, but the structure is a faithful,
// thread-safe implementation and is exercised multi-threaded in tests and
// microbenchmarks.
#ifndef SRC_UTIL_SPSC_QUEUE_H_
#define SRC_UTIL_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

#include "src/util/logging.h"

namespace tas {

inline constexpr size_t kCacheLineSize = 64;

template <typename T>
class SpscQueue {
 public:
  // Capacity is rounded up to a power of two; one slot is reserved to
  // distinguish full from empty.
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity + 1) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  // Producer side. Returns false if the queue is full.
  bool Push(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt if the queue is empty.
  std::optional<T> Pop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    T value = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  // Consumer side peek without consuming.
  const T* Front() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return nullptr;
    }
    return &slots_[tail];
  }

  bool Empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
};

}  // namespace tas

#endif  // SRC_UTIL_SPSC_QUEUE_H_
