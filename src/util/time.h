// Simulation time types and conversions.
//
// All simulation timestamps are signed 64-bit nanosecond counts from the
// start of the simulation. Cycle<->time conversion is parameterized by core
// frequency so that experiments can model the paper's 2.1 GHz server and
// 2.2 GHz client machines.
#ifndef SRC_UTIL_TIME_H_
#define SRC_UTIL_TIME_H_

#include <cstdint>

namespace tas {

// Nanoseconds of simulated time.
using TimeNs = int64_t;

inline constexpr TimeNs kNsPerUs = 1000;
inline constexpr TimeNs kNsPerMs = 1000 * 1000;
inline constexpr TimeNs kNsPerSec = 1000 * 1000 * 1000;

constexpr TimeNs Us(int64_t us) { return us * kNsPerUs; }
constexpr TimeNs Ms(int64_t ms) { return ms * kNsPerMs; }
constexpr TimeNs Sec(int64_t s) { return s * kNsPerSec; }

constexpr double ToUs(TimeNs t) { return static_cast<double>(t) / 1e3; }
constexpr double ToMs(TimeNs t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSec(TimeNs t) { return static_cast<double>(t) / 1e9; }

// Converts a CPU cycle count to nanoseconds at the given core frequency.
constexpr TimeNs CyclesToNs(uint64_t cycles, double ghz) {
  return static_cast<TimeNs>(static_cast<double>(cycles) / ghz);
}

// Converts a duration to CPU cycles at the given core frequency.
constexpr uint64_t NsToCycles(TimeNs ns, double ghz) {
  return static_cast<uint64_t>(static_cast<double>(ns) * ghz);
}

// Time to serialize `bytes` onto a link of `gbps` gigabits per second.
constexpr TimeNs TransmitTimeNs(uint64_t bytes, double gbps) {
  return static_cast<TimeNs>(static_cast<double>(bytes) * 8.0 / gbps);
}

}  // namespace tas

#endif  // SRC_UTIL_TIME_H_
