// Measurement utilities: running moments, latency percentiles, log-scale
// histograms, and windowed rate counters. These back every table and figure
// the benchmark harness regenerates.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace tas {

// Running mean / min / max / variance without storing samples (Welford).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  uint64_t count() const { return count_; }
  double mean() const;
  double min() const;
  double max() const;
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

// Stores samples and answers percentile queries; sorts lazily on query.
// Optionally caps retained samples via uniform reservoir sampling so
// long-running experiments stay memory-bounded.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t max_samples = 1u << 20);

  void Add(double x);
  void Clear();

  // p in [0, 100]. Linear interpolation between closest ranks.
  double Percentile(double p) const;
  double Median() const { return Percentile(50); }
  double Mean() const;
  double Max() const;
  double Min() const;
  uint64_t count() const { return total_count_; }

  // CDF points (value, cumulative fraction) downsampled to at most
  // `max_points` entries, suitable for plotting Figs 9 and 12.
  std::vector<std::pair<double, double>> Cdf(size_t max_points = 200) const;

 private:
  size_t max_samples_;
  uint64_t total_count_ = 0;
  double sum_ = 0;
  uint64_t reservoir_seed_ = 0x853c49e6748fea9bull;
  mutable bool sorted_ = false;
  mutable std::vector<double> samples_;
};

// Power-of-two bucketed histogram for quick distribution summaries.
class LogHistogram {
 public:
  LogHistogram();

  void Add(uint64_t value);
  // Folds another histogram in (bucket-wise sum) — combines per-core or
  // per-stage histograms into one distribution.
  void Merge(const LogHistogram& other);
  // Bucket-wise clamped difference against an earlier snapshot of the same
  // (cumulative, never-reset) histogram: the distribution of samples added
  // since `earlier` was copied. Windowed percentiles — e.g. an SLO watchdog
  // evaluating "p99 over the last interval" — come from
  // cur.DiffSince(prev).ApproxPercentile(p).
  LogHistogram DiffSince(const LogHistogram& earlier) const;
  uint64_t count() const { return count_; }
  // Upper bound of the smallest non-empty bucket whose cumulative count
  // covers p% (p=0 returns the first non-empty bucket's bound; an empty
  // histogram returns 0 for every p).
  uint64_t ApproxPercentile(double p) const;
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
};

// Counts events and reports a rate over the elapsed window.
class RateCounter {
 public:
  void Start(TimeNs now) { start_ = now; }
  void Add(uint64_t n = 1) { count_ += n; }
  void AddBytes(uint64_t b) { bytes_ += b; }

  uint64_t count() const { return count_; }
  uint64_t bytes() const { return bytes_; }
  // Events per second over [start, now].
  double Rate(TimeNs now) const;
  // Bits per second over [start, now].
  double BitRate(TimeNs now) const;

 private:
  TimeNs start_ = 0;
  uint64_t count_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace tas

#endif  // SRC_UTIL_STATS_H_
