// Thread-local island context for the partitioned simulator (DESIGN.md §13).
//
// When SimPartition runs islands on worker threads, each worker announces
// which island it is currently executing before entering that island's epoch
// slice. Subsystems that shard per-island state (PacketPool free lists,
// LatencyTracer/CausalTracer rings) key off this id instead of taking a lock
// on their hot paths. Serial runs never set it, so the default of 0 keeps
// every pre-existing single-threaded path on shard 0 unchanged.
#ifndef SRC_UTIL_ISLAND_H_
#define SRC_UTIL_ISLAND_H_

namespace tas {

namespace internal {
inline thread_local int g_current_island = 0;
}  // namespace internal

// Island whose events the calling thread is currently executing (0 outside a
// partitioned run: the serial simulator and the control island share id 0).
inline int CurrentIslandId() { return internal::g_current_island; }

inline void SetCurrentIslandId(int island) { internal::g_current_island = island; }

}  // namespace tas

#endif  // SRC_UTIL_ISLAND_H_
