#include "src/util/ring_buffer.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tas {

ByteRing::ByteRing(size_t capacity) : data_(capacity) { TAS_CHECK(capacity > 0); }

void ByteRing::CopyIn(uint64_t offset, const uint8_t* src, size_t len) {
  const size_t cap = data_.size();
  size_t pos = static_cast<size_t>(offset % cap);
  const size_t first = std::min(len, cap - pos);
  std::memcpy(data_.data() + pos, src, first);
  if (first < len) {
    std::memcpy(data_.data(), src + first, len - first);
  }
}

void ByteRing::CopyOut(uint64_t offset, uint8_t* dst, size_t len) const {
  const size_t cap = data_.size();
  size_t pos = static_cast<size_t>(offset % cap);
  const size_t first = std::min(len, cap - pos);
  std::memcpy(dst, data_.data() + pos, first);
  if (first < len) {
    std::memcpy(dst + first, data_.data(), len - first);
  }
}

size_t ByteRing::Write(const uint8_t* src, size_t len) {
  const size_t n = std::min(len, free_space());
  if (n == 0) {
    return 0;
  }
  CopyIn(head_, src, n);
  head_ += n;
  return n;
}

bool ByteRing::WriteAt(uint64_t offset, const uint8_t* src, size_t len) {
  if (offset < tail_ || offset + len > tail_ + capacity()) {
    return false;
  }
  if (len > 0) {
    CopyIn(offset, src, len);
  }
  return true;
}

void ByteRing::AdvanceHead(uint64_t offset) {
  TAS_CHECK(offset >= head_);
  TAS_CHECK(offset <= tail_ + capacity());
  head_ = offset;
}

size_t ByteRing::Read(uint8_t* dst, size_t len) {
  const size_t n = std::min(len, used());
  if (n == 0) {
    return 0;
  }
  CopyOut(tail_, dst, n);
  tail_ += n;
  return n;
}

size_t ByteRing::Peek(uint64_t offset, uint8_t* dst, size_t len) const {
  if (offset < tail_ || offset >= head_) {
    return 0;
  }
  const size_t n = std::min<uint64_t>(len, head_ - offset);
  CopyOut(offset, dst, n);
  return n;
}

void ByteRing::Discard(size_t len) {
  TAS_CHECK(len <= used());
  tail_ += len;
}

void ByteRing::Clear() {
  head_ = 0;
  tail_ = 0;
}

}  // namespace tas
