// Minimal leveled logging with stream syntax and fatal assertions.
//
// Usage:
//   TAS_LOG(INFO) << "fast path core " << core << " online";
//   TAS_CHECK(head <= tail) << "buffer corrupt";
//
// Severity is filtered at runtime via SetLogLevel(); FATAL aborts. The
// TAS_LOG_LEVEL environment variable (debug|info|warn|error, or 0-3) sets
// the initial level before main() runs, so examples and benchmarks can turn
// on debug logs without recompiling.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tas {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
};

// Sets the minimum severity that is emitted. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// One log statement. Accumulates the message and flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Discards the streamed expression; used for compiled-out levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns an ostream expression into void so it can sit in a ternary. The `&`
// operator binds looser than `<<` but tighter than `?:`.
class LogVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace tas

#define TAS_LOG_DEBUG ::tas::LogMessage(::tas::LogLevel::kDebug, __FILE__, __LINE__).stream()
#define TAS_LOG_INFO ::tas::LogMessage(::tas::LogLevel::kInfo, __FILE__, __LINE__).stream()
#define TAS_LOG_WARN ::tas::LogMessage(::tas::LogLevel::kWarn, __FILE__, __LINE__).stream()
#define TAS_LOG_ERROR ::tas::LogMessage(::tas::LogLevel::kError, __FILE__, __LINE__).stream()
#define TAS_LOG_FATAL ::tas::LogMessage(::tas::LogLevel::kFatal, __FILE__, __LINE__).stream()
#define TAS_LOG(level) TAS_LOG_##level

// Fatal unless `cond` holds. Always enabled (invariants in a protocol stack
// are cheap relative to simulation work and catch corruption early).
#define TAS_CHECK(cond)                                                              \
  (cond) ? (void)0                                                                   \
         : ::tas::LogVoidify() & ::tas::LogMessage(::tas::LogLevel::kFatal, __FILE__, \
                                                   __LINE__)                          \
                                         .stream()                                   \
                                     << "Check failed: " #cond " "

// Debug-only check: full TAS_CHECK in debug builds, compiled out under
// NDEBUG. The `true || (cond)` form keeps `cond` parsed (no unused-variable
// warnings, no bit-rot) while letting the optimizer delete the evaluation.
#ifdef NDEBUG
#define TAS_DCHECK(cond) TAS_CHECK(true || (cond))
#else
#define TAS_DCHECK(cond) TAS_CHECK(cond)
#endif

#endif  // SRC_UTIL_LOGGING_H_
