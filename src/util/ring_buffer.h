// Fixed-capacity circular byte buffer.
//
// This is the building block for the per-flow RX/TX payload buffers of
// paper §3.1 (rx|tx_start/size/head/tail in Table 3): a contiguous region
// written at `head` and consumed at `tail`, with wraparound. Positions are
// monotonically increasing 64-bit stream offsets; the mapping to the backing
// array is offset % capacity, so callers can reason in stream space.
#ifndef SRC_UTIL_RING_BUFFER_H_
#define SRC_UTIL_RING_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace tas {

class ByteRing {
 public:
  explicit ByteRing(size_t capacity);

  size_t capacity() const { return data_.size(); }
  // Bytes currently stored (head - tail).
  size_t used() const { return static_cast<size_t>(head_ - tail_); }
  size_t free_space() const { return capacity() - used(); }
  bool empty() const { return head_ == tail_; }

  // Stream offset of the next byte to be written / read.
  uint64_t head() const { return head_; }
  uint64_t tail() const { return tail_; }

  // Appends up to `len` bytes at head; returns the number written.
  size_t Write(const uint8_t* src, size_t len);

  // Writes `len` bytes at an absolute stream offset >= tail without moving
  // head past `offset + len` unless needed. Used for out-of-order arrival
  // placement into the RX buffer. Returns false if the range does not fit
  // within [tail, tail + capacity).
  bool WriteAt(uint64_t offset, const uint8_t* src, size_t len);

  // Advances head to `offset` (must be within capacity of tail); bytes in
  // [old_head, offset) must have been placed by WriteAt beforehand.
  void AdvanceHead(uint64_t offset);

  // Copies up to `len` bytes from tail into `dst` and consumes them;
  // returns the number read.
  size_t Read(uint8_t* dst, size_t len);

  // Copies up to `len` bytes starting at absolute offset (>= tail) without
  // consuming. Returns bytes copied (0 if offset >= head).
  size_t Peek(uint64_t offset, uint8_t* dst, size_t len) const;

  // Drops `len` bytes from the tail without copying (transmit buffer space
  // reclamation on ACK, §3.1).
  void Discard(size_t len);

  // Resets to empty with head = tail = 0.
  void Clear();

 private:
  void CopyIn(uint64_t offset, const uint8_t* src, size_t len);
  void CopyOut(uint64_t offset, uint8_t* dst, size_t len) const;

  std::vector<uint8_t> data_;
  uint64_t head_ = 0;  // Next write position (stream offset).
  uint64_t tail_ = 0;  // Next read position (stream offset).
};

}  // namespace tas

#endif  // SRC_UTIL_RING_BUFFER_H_
