// Zipf(s) sampling over {0, ..., n-1} by rejection inversion of the bounding
// integral (Hörmann & Derflinger, "Rejection-inversion to generate variates
// from monotone discrete distributions", 1996): O(1) memory and O(1) expected
// time per sample, unlike the precomputed-CDF approach whose table costs O(n)
// space and O(n) setup — prohibitive for proxy/KV workloads with millions of
// objects. Shared by the KV client and the proxy client generator (the paper
// uses zipf s = 0.9 for key popularity, §5.3).
#ifndef SRC_UTIL_ZIPF_H_
#define SRC_UTIL_ZIPF_H_

#include <cstddef>
#include <vector>

#include "src/util/rng.h"

namespace tas {

class ZipfGenerator {
 public:
  // Distribution over n ranks with skew s > 0 (s = 1 is the classic zipf).
  ZipfGenerator(size_t n, double s);

  // Draws a rank in [0, n); rank 0 is the most popular.
  size_t Sample(Rng& rng) const;

  size_t size() const { return n_; }
  double skew() const { return s_; }

  // Exact probability of rank k (0-indexed). Computes the generalized
  // harmonic normalizer lazily on first use (O(n) once); meant for
  // goodness-of-fit tests and diagnostics, not the sampling hot path.
  double Pmf(size_t k) const;

 private:
  double HIntegral(double x) const;
  double H(double x) const;
  double HIntegralInverse(double x) const;

  size_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_n_;
  double threshold_;  // Acceptance shortcut: k - x <= threshold_.
  mutable double harmonic_ = 0;  // Lazily computed sum_{i=1..n} i^-s.
};

}  // namespace tas

#endif  // SRC_UTIL_ZIPF_H_
