// Deterministic pseudo-random number generation and the workload
// distributions used by the paper's experiments.
//
// The generator is xoshiro256**, seeded by splitmix64, so every experiment is
// reproducible from its seed. Distributions: uniform, exponential (Poisson
// arrivals), and bounded Pareto (flow sizes, Fig 11). Zipf popularity lives
// in src/util/zipf.h (ZipfGenerator).
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace tas {

// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, n).
  uint64_t NextUint64(uint64_t n);

  // Uniform in [lo, hi] (inclusive).
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

  // Exponentially distributed with the given mean.
  double NextExp(double mean);

 private:
  uint64_t s_[4];
};

// Bounded Pareto distribution over [min, max] with shape alpha.
// Used to draw heavy-tailed flow sizes for the congestion experiments.
class BoundedPareto {
 public:
  BoundedPareto(double min, double max, double alpha);

  double Sample(Rng& rng) const;
  double Mean() const;

 private:
  double min_;
  double max_;
  double alpha_;
};

}  // namespace tas

#endif  // SRC_UTIL_RNG_H_
