#include "src/util/logging.h"

#include <atomic>
#include <cstring>

namespace tas {
namespace {

// Initial level from the TAS_LOG_LEVEL environment variable: a name
// (debug|info|warn|error, case-sensitive) or a numeric level 0-3. Unset or
// unparsable values keep the kInfo default.
int InitialLogLevel() {
  const char* env = std::getenv("TAS_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (std::strcmp(env, "debug") == 0) {
    return static_cast<int>(LogLevel::kDebug);
  }
  if (std::strcmp(env, "info") == 0) {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (std::strcmp(env, "warn") == 0) {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (std::strcmp(env, "error") == 0) {
    return static_cast<int>(LogLevel::kError);
  }
  if (env[0] >= '0' && env[0] <= '3' && env[1] == '\0') {
    return env[0] - '0';
  }
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_log_level{InitialLogLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace tas
