#include "src/util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace tas {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

// sum/count instead of the Welford running mean: integer-valued samples
// (every latency is whole nanoseconds) sum exactly in ANY order, so merged
// per-island stats report byte-identical means to a serial run (DESIGN.md
// §13). The Welford mean_ stays maintained for the variance recurrence.
double RunningStats::mean() const {
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}
double RunningStats::min() const { return count_ == 0 ? 0 : min_; }
double RunningStats::max() const { return count_ == 0 ? 0 : max_; }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LatencyRecorder::LatencyRecorder(size_t max_samples) : max_samples_(max_samples) {
  TAS_CHECK(max_samples > 0);
}

void LatencyRecorder::Add(double x) {
  ++total_count_;
  sum_ += x;
  sorted_ = false;
  if (samples_.size() < max_samples_) {
    samples_.push_back(x);
    return;
  }
  // Vitter's algorithm R: replace a uniformly random existing slot.
  reservoir_seed_ = reservoir_seed_ * 6364136223846793005ull + 1442695040888963407ull;
  const uint64_t slot = (reservoir_seed_ >> 16) % total_count_;
  if (slot < max_samples_) {
    samples_[slot] = x;
  }
}

void LatencyRecorder::Clear() {
  total_count_ = 0;
  sum_ = 0;
  samples_.clear();
  sorted_ = false;
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  TAS_CHECK(p >= 0 && p <= 100);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

double LatencyRecorder::Mean() const {
  return total_count_ == 0 ? 0 : sum_ / static_cast<double>(total_count_);
}

double LatencyRecorder::Max() const { return Percentile(100); }
double LatencyRecorder::Min() const { return Percentile(0); }

std::vector<std::pair<double, double>> LatencyRecorder::Cdf(size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) {
    return out;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const size_t n = samples_.size();
  const size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().second < 1.0) {
    out.emplace_back(samples_.back(), 1.0);
  }
  return out;
}

LogHistogram::LogHistogram() = default;

void LogHistogram::Add(uint64_t value) {
  const int bucket = value == 0 ? 0 : 64 - std::countl_zero(value);
  buckets_[std::min(bucket, kBuckets - 1)]++;
  ++count_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
}

LogHistogram LogHistogram::DiffSince(const LogHistogram& earlier) const {
  LogHistogram out;
  for (int i = 0; i < kBuckets; ++i) {
    // Clamped: a shrunken bucket means `earlier` came from a different (or
    // reset) histogram; treat it as an empty window rather than wrapping.
    out.buckets_[i] =
        buckets_[i] >= earlier.buckets_[i] ? buckets_[i] - earlier.buckets_[i] : 0;
    out.count_ += out.buckets_[i];
  }
  return out;
}

uint64_t LogHistogram::ApproxPercentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  // Target at least one sample: p=0 must land on the first NON-EMPTY bucket
  // (a target of 0 would stop at bucket 0 even when it holds nothing and
  // report 0 for a histogram whose smallest sample is large).
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      return i == 0 ? 0 : (1ull << i) - 1;
    }
  }
  return ~0ull;
}

std::string LogHistogram::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] != 0) {
      os << "[" << (i == 0 ? 0 : (1ull << (i - 1))) << "," << ((1ull << i) - 1)
         << "]: " << buckets_[i] << " ";
    }
  }
  return os.str();
}

double RateCounter::Rate(TimeNs now) const {
  const TimeNs elapsed = now - start_;
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(count_) / ToSec(elapsed);
}

double RateCounter::BitRate(TimeNs now) const {
  const TimeNs elapsed = now - start_;
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(bytes_) * 8.0 / ToSec(elapsed);
}

}  // namespace tas
