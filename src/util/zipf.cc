#include "src/util/zipf.h"

#include <cmath>

#include "src/util/logging.h"

namespace tas {
namespace {

// log1p(x)/x, series-expanded near zero where the quotient cancels.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) {
    return std::log1p(x) / x;
  }
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

// expm1(x)/x, series-expanded near zero.
double Helper2(double x) {
  if (std::abs(x) > 1e-8) {
    return std::expm1(x) / x;
  }
  return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + x * 0.25));
}

}  // namespace

ZipfGenerator::ZipfGenerator(size_t n, double s) : n_(n), s_(s) {
  TAS_CHECK(n > 0);
  TAS_CHECK(s > 0);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

// H(x) = Integral of h(t) = t^-s: ((x^(1-s)) - 1) / (1 - s), expressed via
// expm1 so s -> 1 degrades gracefully to log(x).
double ZipfGenerator::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfGenerator::H(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfGenerator::HIntegralInverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) {
    t = -1.0;  // Numerical round-off: clamp to the domain boundary.
  }
  return std::exp(Helper1(t) * x);
}

size_t ZipfGenerator::Sample(Rng& rng) const {
  if (n_ == 1) {
    return 0;
  }
  for (;;) {
    const double u =
        h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(n_)) {
      k = static_cast<double>(n_);
    }
    // Accept k if x lands within the hat's acceptance region: either the
    // cheap distance shortcut or the exact integral comparison.
    if (k - x <= threshold_ || u >= HIntegral(k + 0.5) - H(k)) {
      return static_cast<size_t>(k) - 1;
    }
  }
}

double ZipfGenerator::Pmf(size_t k) const {
  TAS_CHECK(k < n_);
  if (harmonic_ == 0) {
    double sum = 0;
    for (size_t i = 1; i <= n_; ++i) {
      sum += std::exp(-s_ * std::log(static_cast<double>(i)));
    }
    harmonic_ = sum;
  }
  return std::exp(-s_ * std::log(static_cast<double>(k) + 1.0)) / harmonic_;
}

}  // namespace tas
