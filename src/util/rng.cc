#include "src/util/rng.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tas {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  TAS_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TAS_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExp(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

BoundedPareto::BoundedPareto(double min, double max, double alpha)
    : min_(min), max_(max), alpha_(alpha) {
  TAS_CHECK(min > 0 && max > min && alpha > 0);
}

double BoundedPareto::Sample(Rng& rng) const {
  // Inverse-CDF of the bounded Pareto.
  const double u = rng.NextDouble();
  const double la = std::pow(min_, alpha_);
  const double ha = std::pow(max_, alpha_);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(x, -1.0 / alpha_);
}

double BoundedPareto::Mean() const {
  if (alpha_ == 1.0) {
    return min_ * max_ / (max_ - min_) * std::log(max_ / min_);
  }
  const double la = std::pow(min_, alpha_);
  const double ratio = std::pow(min_ / max_, alpha_);
  return la / (1.0 - ratio) * (alpha_ / (alpha_ - 1.0)) *
         (1.0 / std::pow(min_, alpha_ - 1.0) - 1.0 / std::pow(max_, alpha_ - 1.0));
}

}  // namespace tas
