// Stack: the transport interface applications program against.
//
// Every stack in this repository — TAS (via libTAS sockets or the low-level
// API) and the Linux/IX/mTCP baseline models — implements this interface, so
// the example applications and every benchmark workload run unmodified on
// any of them (the paper's "applications do not need to be modified, only
// relinked", §3).
//
// Timing contract: handler callbacks fire on the simulated timeline *after*
// the stack has charged its per-operation CPU costs; an application that
// needs to model its own compute calls ChargeApp() before issuing sends, and
// the effects of those sends are serialized behind the charged work on the
// owning application core.
#ifndef SRC_BASELINE_STACK_IFACE_H_
#define SRC_BASELINE_STACK_IFACE_H_

#include <algorithm>
#include <cstdint>

#include "src/net/packet.h"
#include "src/util/time.h"

namespace tas {

using ConnId = uint64_t;
inline constexpr ConnId kInvalidConn = ~ConnId{0};

class AppHandler {
 public:
  virtual ~AppHandler() = default;

  // Active open finished (success or failure).
  virtual void OnConnected(ConnId conn, bool success) { (void)conn; (void)success; }
  // A new connection was accepted on a listening port.
  virtual void OnAccepted(ConnId conn, uint16_t local_port) { (void)conn; (void)local_port; }
  // `bytes` of new payload are readable via Recv().
  virtual void OnData(ConnId conn, size_t bytes) { (void)conn; (void)bytes; }
  // `bytes` of send-buffer space were reclaimed (payload acknowledged).
  virtual void OnSendSpace(ConnId conn, size_t bytes) { (void)conn; (void)bytes; }
  // The peer closed its direction of the connection.
  virtual void OnRemoteClosed(ConnId conn) { (void)conn; }
  // The connection is fully gone.
  virtual void OnClosed(ConnId conn) { (void)conn; }
};

class Stack {
 public:
  virtual ~Stack() = default;

  virtual void SetHandler(AppHandler* handler) = 0;
  virtual void Listen(uint16_t port) = 0;
  // Returns the connection id immediately; OnConnected reports the result.
  virtual ConnId Connect(IpAddr dst_ip, uint16_t dst_port) = 0;
  // Appends payload to the connection's send buffer; returns bytes accepted.
  virtual size_t Send(ConnId conn, const uint8_t* data, size_t len) = 0;
  // Reads received payload; returns bytes read.
  virtual size_t Recv(ConnId conn, uint8_t* data, size_t len) = 0;
  virtual size_t RecvAvailable(ConnId conn) const = 0;
  virtual size_t SendSpace(ConnId conn) const = 0;
  virtual void Close(ConnId conn) = 0;

  // Moves up to `len` bytes of received payload on `from` into the send
  // buffer of `to` (splice(2)-style forwarding); returns bytes moved. The
  // default bounces through user space and pays the full Recv+Send copy
  // charges, so every stack supports it; stacks with shared-memory payload
  // buffers (TAS) override it with an in-stack path that skips the copies.
  virtual size_t Splice(ConnId from, ConnId to, size_t len) {
    uint8_t buf[4096];
    size_t moved = 0;
    while (moved < len) {
      const size_t want =
          std::min(std::min(len - moved, sizeof(buf)), SendSpace(to));
      if (want == 0) {
        break;
      }
      const size_t got = Recv(from, buf, want);
      if (got == 0) {
        break;
      }
      moved += Send(to, buf, got);
    }
    return moved;
  }

  // Charges application compute on the core owning `conn`, applying the
  // stack's app-interference factor (cache/TLB pollution from sharing cores
  // with the stack, paper Table 1's App row).
  virtual void ChargeApp(ConnId conn, uint64_t cycles) = 0;

  virtual IpAddr local_ip() const = 0;
};

}  // namespace tas

#endif  // SRC_BASELINE_STACK_IFACE_H_
