#include "src/baseline/engine_stack.h"

#include <algorithm>

#include "src/trace/latency.h"

namespace tas {

EngineStack::EngineStack(Simulator* sim, HostPort* port, std::vector<Core*> app_cores,
                         const EngineStackConfig& config)
    : sim_(sim), config_(config), app_cores_(std::move(app_cores)), rng_(config.rng_seed) {
  TAS_CHECK(!app_cores_.empty());
  if (config_.stack_cores > 0) {
    for (int i = 0; i < config_.stack_cores; ++i) {
      owned_stack_cores_.push_back(std::make_unique<Core>(sim, 100 + i, config_.ghz));
      stack_cores_.push_back(owned_stack_cores_.back().get());
    }
  } else {
    stack_cores_ = app_cores_;  // Monolithic / run-to-completion: shared.
  }

  NicConfig nic_config;
  nic_config.num_queues = static_cast<int>(stack_cores_.size());
  nic_ = std::make_unique<SimNic>(sim, port, nic_config);
  for (int q = 0; q < nic_->num_queues(); ++q) {
    nic_->SetRxNotify(q, [this, q] { DrainRxQueue(q); });
  }
  batches_.resize(app_cores_.size());
  rx_queues_.resize(static_cast<size_t>(nic_->num_queues()));
  collected_events_.resize(app_cores_.size());
  collected_done_.resize(app_cores_.size(), 0);
}

EngineStack::~EngineStack() = default;

EngineStack::ConnEntry* EngineStack::Entry(ConnId conn) {
  auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : &it->second;
}

const EngineStack::ConnEntry* EngineStack::Entry(ConnId conn) const {
  auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : &it->second;
}

TcpConnection* EngineStack::connection(ConnId conn) {
  ConnEntry* entry = Entry(conn);
  return entry == nullptr ? nullptr : entry->tcp.get();
}

uint16_t EngineStack::AllocatePort() {
  for (int attempts = 0; attempts < 45000; ++attempts) {
    const uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65000 ? 20000 : next_ephemeral_ + 1;
    if (port_use_count_[port] == 0) {
      return port;
    }
  }
  TAS_LOG(FATAL) << "ephemeral ports exhausted";
  return 0;
}

uint64_t EngineStack::CacheExtraPerPacket() const {
  return config_.costs->cache.ExtraCyclesPerPacket(conns_.size());
}

void EngineStack::Listen(uint16_t port) { listeners_.insert(port); }

ConnId EngineStack::Connect(IpAddr dst_ip, uint16_t dst_port) {
  const uint16_t local_port = AllocatePort();
  const ConnId id = next_conn_++;
  const size_t app_core = next_app_core_rr_++ % app_cores_.size();

  ConnEntry entry;
  entry.app_core = app_core;
  entry.passive = false;
  entry.tcp = std::make_unique<TcpConnection>(sim_, this, config_.tcp, nic_->ip(), local_port,
                                              dst_ip, dst_port,
                                              static_cast<uint32_t>(rng_.Next()));
  entry.tcp->opaque = id;

  // Stack core by (symmetric) flow hash, matching the NIC's RSS steering.
  Packet probe;
  probe.ip.src = dst_ip;
  probe.ip.dst = nic_->ip();
  probe.tcp.src_port = dst_port;
  probe.tcp.dst_port = local_port;
  entry.stack_core = static_cast<size_t>(
      nic_->RedirectionEntryQueue(nic_->RedirectionEntryFor(probe)));

  TcpConnection* tcp = entry.tcp.get();
  demux_[FlowKey{local_port, dst_ip, dst_port}] = id;
  port_use_count_[local_port]++;
  conns_[id] = std::move(entry);

  stack_cores_[conns_[id].stack_core]->Charge(CpuModule::kTcp, config_.costs->connection_setup);
  tcp->Connect();
  return id;
}

size_t EngineStack::Send(ConnId conn, const uint8_t* data, size_t len) {
  ConnEntry* entry = Entry(conn);
  if (entry == nullptr) {
    return 0;
  }
  const size_t accepted = entry->tcp->Send(data, len);
  // Copy cost accrues only for bytes actually taken into the send buffer.
  app_cores_[entry->app_core]->Charge(
      CpuModule::kSockets,
      config_.costs->tx_api + static_cast<uint64_t>(config_.costs->copy_cycles_per_byte *
                                                    static_cast<double>(accepted)));
  return accepted;
}

size_t EngineStack::Recv(ConnId conn, uint8_t* data, size_t len) {
  ConnEntry* entry = Entry(conn);
  if (entry == nullptr) {
    return 0;
  }
  const size_t read = entry->tcp->Recv(data, len);
  app_cores_[entry->app_core]->Charge(
      CpuModule::kSockets, static_cast<uint64_t>(config_.costs->copy_cycles_per_byte *
                                                 static_cast<double>(read)));
  return read;
}

size_t EngineStack::RecvAvailable(ConnId conn) const {
  const ConnEntry* entry = Entry(conn);
  return entry == nullptr ? 0 : entry->tcp->RecvAvailable();
}

size_t EngineStack::SendSpace(ConnId conn) const {
  const ConnEntry* entry = Entry(conn);
  return entry == nullptr ? 0 : entry->tcp->SendSpace();
}

void EngineStack::Close(ConnId conn) {
  ConnEntry* entry = Entry(conn);
  if (entry == nullptr) {
    return;
  }
  stack_cores_[entry->stack_core]->Charge(CpuModule::kTcp,
                                          config_.costs->connection_teardown);
  entry->tcp->Close();
}

void EngineStack::ChargeApp(ConnId conn, uint64_t cycles) {
  ConnEntry* entry = Entry(conn);
  const size_t core = entry == nullptr ? 0 : entry->app_core;
  app_cores_[core]->Charge(
      CpuModule::kApp, static_cast<uint64_t>(static_cast<double>(cycles) *
                                             config_.costs->app_interference_factor));
}

// --- NIC receive path --------------------------------------------------------

void EngineStack::DrainRxQueue(int queue) {
  RxQueueState& rq = rx_queues_[static_cast<size_t>(queue)];
  if (rq.draining) {
    return;  // The pending burst's continuation re-drains.
  }
  Core* core = stack_cores_[static_cast<size_t>(queue)];
  const StackCostModel& costs = *config_.costs;
  const size_t burst = std::max<size_t>(1, config_.rx_burst);
  rq.batch.clear();
  TimeNs done = 0;
  while (rq.batch.size() < burst) {
    PacketPtr pkt = nic_->PopRx(queue);
    if (!pkt) {
      break;
    }
    // Bounded backlog: a real stack's softirq queue overflows under
    // persistent overload.
    if (core->busy_until() - sim_->Now() > config_.max_backlog) {
      ++backlog_drops_;
      if (LatencyTracer* lt = LatencyTracer::Current()) {
        lt->Abandon(pkt->lat_id);
      }
      continue;
    }
    // Pure ACK / control segments take the short header-only path: no
    // socket hand-off, no copy, a fraction of the header processing.
    if (pkt->payload.empty()) {
      core->Charge(CpuModule::kDriver, costs.rx_driver / 2);
      core->Charge(CpuModule::kIp, costs.rx_ip / 4);
      done = core->Charge(CpuModule::kTcp, costs.rx_tcp / 8);
    } else {
      const uint64_t tcp_cycles =
          costs.rx_tcp + CacheExtraPerPacket() +
          static_cast<uint64_t>(costs.copy_cycles_per_byte *
                                static_cast<double>(pkt->payload.size()));
      core->Charge(CpuModule::kDriver, costs.rx_driver);
      core->Charge(CpuModule::kIp, costs.rx_ip);
      done = core->Charge(CpuModule::kTcp, tcp_cycles);
    }
    rq.batch.push_back(std::move(pkt));
  }
  if (rq.batch.empty()) {
    return;
  }
  // Every packet was charged individually above (identical per-packet cost
  // and completion horizon as serial dispatch); the burst retires with ONE
  // aggregated event instead of one per packet. Packets the burst's TCP
  // processing emits are collected and leave as a single transmit burst —
  // the DPDK poll-loop shape the NAPI/mTCP stacks actually have.
  rq.draining = true;
  sim_->At(done, [this, queue] {
    RxQueueState& q = rx_queues_[static_cast<size_t>(queue)];
    tx_collect_ = true;
    collecting_ = true;
    for (PacketPtr& pkt : q.batch) {
      HandlePacket(queue, std::move(pkt));
    }
    q.batch.clear();
    collecting_ = false;
    tx_collect_ = false;
    if (!tx_batch_.empty()) {
      nic_->TransmitBurst(tx_batch_.data(), tx_batch_.size());
      tx_batch_.clear();
    }
    FlushCollectedEvents();
    q.draining = false;
    // The ring may still hold packets: a full burst leaves the remainder
    // behind, and the NIC only notifies on push-to-empty.
    DrainRxQueue(queue);
  });
}

void EngineStack::HandlePacket(int queue, PacketPtr pkt) {
  if (LatencyTracer* lt = LatencyTracer::Current()) {
    // Journey ends at the stack's protocol processing horizon, whether the
    // segment is consumed, accepts a connection, or is dropped as stale.
    lt->Finish(pkt->lat_id, LatencyStage::kFpRx, sim_->Now());
  }
  const FlowKey key{pkt->tcp.dst_port, pkt->ip.src, pkt->tcp.src_port};
  auto it = demux_.find(key);
  if (it != demux_.end()) {
    ConnEntry* entry = Entry(it->second);
    if (entry != nullptr) {
      entry->tcp->HandlePacket(*pkt);
    }
    return;
  }
  // New connection?
  if (pkt->tcp.syn() && !pkt->tcp.ack_flag() &&
      listeners_.count(pkt->tcp.dst_port) != 0) {
    const ConnId id = next_conn_++;
    ConnEntry entry;
    entry.app_core = next_app_core_rr_++ % app_cores_.size();
    entry.stack_core = static_cast<size_t>(queue);
    entry.passive = true;
    entry.tcp = std::make_unique<TcpConnection>(
        sim_, this, config_.tcp, nic_->ip(), pkt->tcp.dst_port, pkt->ip.src,
        pkt->tcp.src_port, static_cast<uint32_t>(rng_.Next()));
    entry.tcp->opaque = id;
    TcpConnection* tcp = entry.tcp.get();
    demux_[key] = id;
    port_use_count_[pkt->tcp.dst_port]++;
    conns_[id] = std::move(entry);
    stack_cores_[static_cast<size_t>(queue)]->Charge(CpuModule::kTcp,
                                                     config_.costs->connection_setup);
    tcp->AcceptSyn(*pkt);
  }
  // Otherwise: stale segment for a dead connection; drop.
}

// --- Engine host callbacks ----------------------------------------------------

void EngineStack::EmitPacket(TcpConnection* conn, PacketPtr pkt) {
  ConnEntry* entry = Entry(IdOf(conn));
  Core* core = stack_cores_[entry == nullptr ? 0 : entry->stack_core];
  const StackCostModel& costs = *config_.costs;
  uint64_t cycles;
  if (pkt->payload.empty()) {
    // Pure ACK / control segment: header-only work.
    cycles = costs.tx_driver + costs.tx_ip + costs.tx_tcp / 4;
  } else {
    cycles = costs.tx_driver + costs.tx_ip + costs.tx_tcp + CacheExtraPerPacket() +
             static_cast<uint64_t>(costs.copy_cycles_per_byte *
                                   static_cast<double>(pkt->payload.size()));
  }
  core->Charge(CpuModule::kDriver, costs.tx_driver);
  const TimeNs done = core->Charge(CpuModule::kTcp, cycles - costs.tx_driver);
  LatencyTracer* lt = LatencyTracer::Current();
  if (tx_collect_) {
    // Inside an RX burst continuation: CPU cost is charged above as usual,
    // but the packet joins the burst's single transmit flush instead of
    // scheduling its own departure event (NIC DMA is asynchronous with the
    // descriptor-write the charge models).
    if (lt != nullptr) {
      // Leaves with the burst flush at this same instant: zero-width fp-tx.
      pkt->lat_id = lt->Begin(sim_->Now());
      lt->Stamp(pkt->lat_id, LatencyStage::kFpTx, sim_->Now());
    }
    tx_batch_.push_back(std::move(pkt));
    return;
  }
  if (lt != nullptr) {
    pkt->lat_id = lt->Begin(sim_->Now());
  }
  sim_->At(done, [this, pkt = std::move(pkt)]() mutable {
    if (LatencyTracer* tracer = LatencyTracer::Current()) {
      // TX-side protocol processing ends when the descriptor hits the NIC.
      tracer->Stamp(pkt->lat_id, LatencyStage::kFpTx, sim_->Now());
    }
    nic_->Transmit(std::move(pkt));
  });
}

void EngineStack::OnConnected(TcpConnection* conn) {
  ConnEntry* entry = Entry(IdOf(conn));
  if (entry == nullptr) {
    return;
  }
  PendingEvent event{entry->passive ? PendingEvent::Kind::kAccepted
                                    : PendingEvent::Kind::kConnected,
                     IdOf(conn)};
  event.port = conn->local_port();
  DeliverEvent(entry->app_core, event, config_.costs->rx_api);
}

void EngineStack::OnConnectFailed(TcpConnection* conn) {
  const ConnId id = IdOf(conn);
  ConnEntry* entry = Entry(id);
  if (entry == nullptr) {
    return;
  }
  demux_.erase(FlowKey{conn->local_port(), conn->remote_ip(), conn->remote_port()});
  port_use_count_[conn->local_port()]--;
  const size_t app_core = entry->app_core;
  // Defer destruction: this callback can arrive from inside the engine.
  std::shared_ptr<TcpConnection> keep_alive(entry->tcp.release());
  conns_.erase(id);
  sim_->After(0, [keep_alive] {});
  PendingEvent event{PendingEvent::Kind::kConnected, id};
  event.ok = false;
  DeliverEvent(app_core, event, config_.costs->rx_api);
}

void EngineStack::OnDataAvailable(TcpConnection* conn, size_t bytes) {
  ConnEntry* entry = Entry(IdOf(conn));
  if (entry == nullptr) {
    return;
  }
  PendingEvent event{PendingEvent::Kind::kData, IdOf(conn)};
  event.bytes = bytes;
  DeliverEvent(entry->app_core, event, config_.costs->rx_api);
}

void EngineStack::OnSendSpace(TcpConnection* conn, size_t bytes) {
  ConnEntry* entry = Entry(IdOf(conn));
  if (entry == nullptr || handler_ == nullptr) {
    return;
  }
  PendingEvent event{PendingEvent::Kind::kSendSpace, IdOf(conn)};
  event.bytes = bytes;
  DeliverEvent(entry->app_core, event, 60);
}

void EngineStack::OnRemoteClose(TcpConnection* conn) {
  ConnEntry* entry = Entry(IdOf(conn));
  if (entry == nullptr) {
    return;
  }
  DeliverEvent(entry->app_core, PendingEvent{PendingEvent::Kind::kRemoteClosed, IdOf(conn)},
               config_.costs->rx_api);
}

void EngineStack::OnClosed(TcpConnection* conn) {
  const ConnId id = IdOf(conn);
  ConnEntry* entry = Entry(id);
  if (entry == nullptr) {
    return;
  }
  demux_.erase(
      FlowKey{conn->local_port(), conn->remote_ip(), conn->remote_port()});
  port_use_count_[conn->local_port()]--;
  const size_t app_core = entry->app_core;
  // Keep the TcpConnection alive until the deferred event dispatch; move it
  // out of the table now so new connections can reuse the 4-tuple.
  auto keep_alive = std::shared_ptr<TcpConnection>(entry->tcp.release());
  conns_.erase(id);
  PendingEvent event{PendingEvent::Kind::kClosed, id};
  DeliverEvent(app_core, event, 60);
  sim_->After(0, [keep_alive] {});  // Destroyed after the current event.
}

// --- Event delivery ------------------------------------------------------------

void EngineStack::DeliverEvent(size_t app_core, PendingEvent event, uint64_t api_cycles) {
  if (config_.event_batch <= 1) {
    const TimeNs done =
        app_cores_[app_core]->Charge(CpuModule::kSockets, api_cycles) + config_.wakeup_latency;
    if (collecting_) {
      // Per-event charges above are unchanged; the whole group raised by one
      // RX burst dispatches together when the last charge retires.
      collected_events_[app_core].push_back(event);
      collected_done_[app_core] = std::max(collected_done_[app_core], done);
      return;
    }
    sim_->At(done, [this, event] { DispatchEvent(event); });
    return;
  }
  // mTCP-style batching: queue and flush on size or timeout.
  Batch& batch = batches_[app_core];
  batch.events.push_back(event);
  if (batch.events.size() >= config_.event_batch) {
    batch.flush_timer.Cancel();
    FlushBatch(app_core);
  } else if (!batch.flush_timer.valid()) {
    batch.flush_timer =
        sim_->After(config_.batch_timeout, [this, app_core] { FlushBatch(app_core); });
  }
}

void EngineStack::FlushCollectedEvents() {
  for (size_t c = 0; c < collected_events_.size(); ++c) {
    if (collected_events_[c].empty()) {
      continue;
    }
    const TimeNs done = collected_done_[c];
    collected_done_[c] = 0;
    // The dispatch continuation runs app callbacks whose Sends emit packets
    // synchronously; collect those too and ship them as one burst.
    sim_->At(done, [this, events = std::move(collected_events_[c])] {
      tx_collect_ = true;
      for (const PendingEvent& e : events) {
        DispatchEvent(e);
      }
      tx_collect_ = false;
      if (!tx_batch_.empty()) {
        nic_->TransmitBurst(tx_batch_.data(), tx_batch_.size());
        tx_batch_.clear();
      }
    });
    collected_events_[c] = std::vector<PendingEvent>();
  }
}

void EngineStack::FlushBatch(size_t app_core) {
  Batch& batch = batches_[app_core];
  Core* core = app_cores_[app_core];
  while (!batch.events.empty()) {
    PendingEvent event = batch.events.front();
    batch.events.pop_front();
    const TimeNs done = core->Charge(CpuModule::kSockets, config_.costs->rx_api);
    sim_->At(done, [this, event] { DispatchEvent(event); });
  }
}

void EngineStack::DispatchEvent(const PendingEvent& event) {
  if (handler_ == nullptr) {
    return;
  }
  switch (event.kind) {
    case PendingEvent::Kind::kData:
      handler_->OnData(event.conn, event.bytes);
      return;
    case PendingEvent::Kind::kSendSpace:
      handler_->OnSendSpace(event.conn, event.bytes);
      return;
    case PendingEvent::Kind::kConnected:
      handler_->OnConnected(event.conn, event.ok);
      return;
    case PendingEvent::Kind::kAccepted:
      handler_->OnAccepted(event.conn, event.port);
      return;
    case PendingEvent::Kind::kRemoteClosed:
      handler_->OnRemoteClosed(event.conn);
      return;
    case PendingEvent::Kind::kClosed:
      handler_->OnClosed(event.conn);
      return;
  }
}

// --- Factories -----------------------------------------------------------------

EngineStackConfig LinuxStackConfig() {
  EngineStackConfig config;
  config.stack_cores = 0;  // In-kernel: shares application cores.
  config.costs = &LinuxCostModel();
  config.tcp.use_sack = true;
  config.tcp.cc = CcAlgorithm::kDctcpWindow;
  config.wakeup_latency = Us(3);  // Softirq + scheduler wakeup.
  return config;
}

EngineStackConfig IxStackConfig() {
  EngineStackConfig config;
  config.stack_cores = 0;  // Run-to-completion on app cores.
  config.costs = &IxCostModel();
  config.tcp.use_sack = true;
  config.tcp.cc = CcAlgorithm::kDctcpWindow;
  config.wakeup_latency = 0;
  return config;
}

EngineStackConfig MtcpStackConfig(int stack_cores) {
  EngineStackConfig config;
  config.stack_cores = stack_cores;  // Dedicated user-level stack cores.
  config.costs = &MtcpCostModel();
  config.tcp.use_sack = true;
  config.tcp.cc = CcAlgorithm::kDctcpWindow;
  config.wakeup_latency = 0;
  config.event_batch = 32;       // Collects packets into large batches
  config.batch_timeout = Us(100);  // (paper §5.4).
  return config;
}

}  // namespace tas
