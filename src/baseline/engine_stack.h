// EngineStack: the baseline TCP stacks (Linux / IX / mTCP models), built on
// the full TCP engine (src/tcp/engine) over the simulated NIC.
//
// One implementation, three architectures, selected by configuration:
//  * Linux  — monolithic in-kernel stack: stack work shares the application
//    cores, heavy per-op costs (syscalls, socket layer), softirq/scheduler
//    wakeup latency, large per-connection state (cache model), window DCTCP,
//    full reassembly + SACK.
//  * IX     — protected kernel bypass: run-to-completion on the app cores,
//    small per-op costs, no wakeup latency, libevent-style API (no POSIX
//    sockets), per-connection state still sizable (cache model).
//  * mTCP   — user-level stack on DEDICATED stack cores with BATCHED event
//    hand-off to application cores (throughput via batching, latency cost).
//
// The factories at the bottom encode the paper-calibrated parameters.
#ifndef SRC_BASELINE_ENGINE_STACK_H_
#define SRC_BASELINE_ENGINE_STACK_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/cpu/core.h"
#include "src/cpu/cost_model.h"
#include "src/nic/nic.h"
#include "src/tcp/engine.h"
#include "src/util/rng.h"

namespace tas {

struct EngineStackConfig {
  // Cores the stack charges protocol work on. 0 = share the app cores
  // (Linux, IX); >0 = dedicated stack cores (mTCP).
  int stack_cores = 0;
  double ghz = 2.1;
  const StackCostModel* costs = &LinuxCostModel();
  TcpConfig tcp;
  // Scheduler/softirq wakeup cost added before app callbacks (Linux).
  TimeNs wakeup_latency = 0;
  // Event batching toward the app (mTCP): deliver when `event_batch` events
  // accumulated or `batch_timeout` elapsed.
  size_t event_batch = 1;
  TimeNs batch_timeout = 0;
  // Drop incoming packets when a stack core's backlog exceeds this (models
  // bounded softirq/backlog queues).
  TimeNs max_backlog = Ms(2);
  // Packets drained from a NIC queue per aggregated processing event (the
  // NAPI poll budget / DPDK rx_burst analogue). 1 = packet-serial dispatch.
  size_t rx_burst = 16;
  uint64_t rng_seed = 0xBA5E;
};

class EngineStack : public Stack, public TcpEngineHost {
 public:
  EngineStack(Simulator* sim, HostPort* port, std::vector<Core*> app_cores,
              const EngineStackConfig& config);
  ~EngineStack() override;

  // --- Stack interface -------------------------------------------------------
  void SetHandler(AppHandler* handler) override { handler_ = handler; }
  void Listen(uint16_t port) override;
  ConnId Connect(IpAddr dst_ip, uint16_t dst_port) override;
  size_t Send(ConnId conn, const uint8_t* data, size_t len) override;
  size_t Recv(ConnId conn, uint8_t* data, size_t len) override;
  size_t RecvAvailable(ConnId conn) const override;
  size_t SendSpace(ConnId conn) const override;
  void Close(ConnId conn) override;
  void ChargeApp(ConnId conn, uint64_t cycles) override;
  IpAddr local_ip() const override { return nic_->ip(); }

  // --- Introspection ---------------------------------------------------------
  SimNic* nic() { return nic_.get(); }
  size_t num_connections() const { return conns_.size(); }
  Core* stack_core(size_t i) { return stack_cores_[i]; }
  size_t num_stack_cores() const { return stack_cores_.size(); }
  uint64_t backlog_drops() const { return backlog_drops_; }
  TcpConnection* connection(ConnId conn);

 private:
  struct ConnEntry {
    std::unique_ptr<TcpConnection> tcp;
    size_t app_core = 0;    // Index into app_cores_.
    size_t stack_core = 0;  // Index into stack_cores_.
    bool passive = false;
  };

  struct PendingEvent {
    enum class Kind { kData, kSendSpace, kConnected, kAccepted, kRemoteClosed, kClosed };
    Kind kind;
    ConnId conn;
    size_t bytes = 0;
    bool ok = true;
    uint16_t port = 0;
  };

  // --- TcpEngineHost ---------------------------------------------------------
  void EmitPacket(TcpConnection* conn, PacketPtr pkt) override;
  void OnConnected(TcpConnection* conn) override;
  void OnConnectFailed(TcpConnection* conn) override;
  void OnDataAvailable(TcpConnection* conn, size_t bytes) override;
  void OnSendSpace(TcpConnection* conn, size_t bytes) override;
  void OnRemoteClose(TcpConnection* conn) override;
  void OnClosed(TcpConnection* conn) override;

  void DrainRxQueue(int queue);
  void HandlePacket(int queue, PacketPtr pkt);
  void DeliverEvent(size_t app_core, PendingEvent event, uint64_t api_cycles);
  // Schedules one aggregated dispatch per app core for events gathered while
  // `collecting_` (i.e. during an RX burst continuation).
  void FlushCollectedEvents();
  void FlushBatch(size_t app_core);
  void DispatchEvent(const PendingEvent& event);
  ConnEntry* Entry(ConnId conn);
  const ConnEntry* Entry(ConnId conn) const;
  ConnId IdOf(TcpConnection* conn) const { return conn->opaque; }
  uint16_t AllocatePort();
  uint64_t CacheExtraPerPacket() const;

  Simulator* sim_;
  EngineStackConfig config_;
  std::unique_ptr<SimNic> nic_;
  std::vector<Core*> app_cores_;
  std::vector<std::unique_ptr<Core>> owned_stack_cores_;
  std::vector<Core*> stack_cores_;  // Aliases app_cores_ or owned cores.
  AppHandler* handler_ = nullptr;

  std::unordered_map<ConnId, ConnEntry> conns_;
  std::unordered_map<FlowKey, ConnId, FlowKeyHash> demux_;
  std::unordered_set<uint16_t> listeners_;
  std::vector<uint32_t> port_use_count_ = std::vector<uint32_t>(65536, 0);
  uint16_t next_ephemeral_ = 20000;
  ConnId next_conn_ = 1;
  size_t next_app_core_rr_ = 0;

  // Per-app-core batched event queues (mTCP mode).
  struct Batch {
    std::deque<PendingEvent> events;
    EventHandle flush_timer;
  };
  std::vector<Batch> batches_;

  // Per-NIC-queue RX burst state (gathered by DrainRxQueue, retired by one
  // aggregated event). Buffers keep capacity across bursts.
  struct RxQueueState {
    std::vector<PacketPtr> batch;
    bool draining = false;
  };
  std::vector<RxQueueState> rx_queues_;
  // Packets emitted while a burst retires, flushed as one TransmitBurst.
  std::vector<PacketPtr> tx_batch_;
  bool tx_collect_ = false;
  // App events raised while an RX burst retires: each is charged as it is
  // raised, but a core's whole group dispatches with ONE event at the
  // latest charge horizon (epoll wakes once with many ready events).
  std::vector<std::vector<PendingEvent>> collected_events_;  // Per app core.
  std::vector<TimeNs> collected_done_;                       // Per app core.
  bool collecting_ = false;
  uint64_t backlog_drops_ = 0;
  Rng rng_;
};

// Paper-calibrated factories.
EngineStackConfig LinuxStackConfig();
EngineStackConfig IxStackConfig();
EngineStackConfig MtcpStackConfig(int stack_cores = 1);

}  // namespace tas

#endif  // SRC_BASELINE_ENGINE_STACK_H_
