#include "src/tas/service.h"

#include <algorithm>

#include "src/cc/dctcp_rate.h"
#include "src/net/packet_pool.h"
#include "src/cc/timely.h"
#include "src/tas/fast_path.h"
#include "src/tas/slow_path.h"
#include "src/tas/steering.h"
#include "src/tas/watchdog.h"

namespace tas {
namespace {

std::unique_ptr<RateCc> MakeRateCc(const TasConfig& config) {
  switch (config.cc_algorithm) {
    case CcAlgorithm::kDctcpRate:
      return std::make_unique<DctcpRateCc>(config.dctcp);
    case CcAlgorithm::kTimely:
      return std::make_unique<TimelyCc>();
    default:
      return nullptr;  // Window mode: the flow gets a WindowCc instead.
  }
}

}  // namespace

TasService::TasService(Simulator* sim, HostPort* port, const TasConfig& config)
    : sim_(sim), config_(config), rng_(config.rng_seed) {
  tracer_ = std::make_unique<Tracer>(sim, config.trace);
  if (config.trace.latency_stages && LatencyTracer::Current() == nullptr) {
    // First latency-enabled TAS host wins: packet journeys cross hosts, so
    // every device in the experiment stamps into ONE tracer. Later hosts keep
    // their (empty) per-host tracer; the installer's report holds the data.
    LatencyTracer::Install(&tracer_->latency());
    latency_installed_ = true;
  }
  if (config.trace.causal && CausalTracer::Current() == nullptr) {
    // Same first-host-wins discipline for request-level causal tracing:
    // requests cross the client/proxy/origin hosts, so one tracer observes
    // every span and mark of the path.
    CausalTracer::Install(&tracer_->causal());
    causal_installed_ = true;
  }
  if (config.watchdog.enabled && FlightRecorder::Current() == nullptr) {
    // First watchdog-enabled host owns the process-wide flight recorder
    // (events and latency records cross hosts; one recorder retains them
    // all). Every armed host still runs its own watchdog below.
    recorder_ = std::make_unique<FlightRecorder>(config.watchdog);
    FlightRecorder::Install(recorder_.get());
    recorder_installed_ = true;
  }
  NicConfig nic_config;
  nic_config.num_queues = config.max_fastpath_cores;
  nic_ = std::make_unique<SimNic>(sim, port, nic_config);

  slowpath_core_ = std::make_unique<Core>(sim, 1000, config.core_ghz);
  for (int i = 0; i < config.max_fastpath_cores; ++i) {
    fastpath_cores_.push_back(std::make_unique<Core>(sim, i, config.core_ghz));
    fastpaths_.push_back(std::make_unique<FastPathCore>(this, fastpath_cores_.back().get(), i));
  }
  slow_path_ = std::make_unique<SlowPath>(this, slowpath_core_.get());
  steering_ = std::make_unique<FlowGroupSteering>(this);
  RegisterTraceInstrumentation();
  // The host's access link exports per-direction queue depth/high-water and
  // egress-fault counters into this host's bundle (switches register via the
  // harness; they belong to the network, not any one host).
  if (port->access_link != nullptr) {
    port->access_link->RegisterMetrics(&tracer_->metrics(), "link");
  }
  slow_path_->Start();
  if (config.watchdog.enabled && FlightRecorder::Current() != nullptr) {
    // All flow events (every flow, every host) feed the recorder's rings.
    tracer_->flow_events().SetRecorderTap(true);
    watchdog_ = std::make_unique<SloWatchdog>(this, FlightRecorder::Current());
    watchdog_->Start();
  }

  active_cores_ = config.dynamic_cores ? 1 : config.max_fastpath_cores;
  nic_->SetActiveQueues(active_cores_);
  core_series_->Append(sim->Now(), static_cast<double>(active_cores_));

  for (int i = 0; i < config.max_fastpath_cores; ++i) {
    nic_->SetRxNotify(i, [this, i] { fastpaths_[static_cast<size_t>(i)]->NotifyRx(); });
  }
}

void TasService::RegisterTraceInstrumentation() {
  MetricRegistry& m = tracer_->metrics();
  RegisterSimulatorMetrics(&m, sim_);
  // TasStats stays the storage; the registry holds thin counter views.
  m.AddCounter("tas.fastpath.rx_packets", &stats_.fastpath_rx_packets);
  m.AddCounter("tas.fastpath.tx_packets", &stats_.fastpath_tx_packets);
  m.AddCounter("tas.fastpath.acks_sent", &stats_.fastpath_acks_sent);
  m.AddCounter("tas.fastpath.rx_buffer_drops", &stats_.rx_buffer_drops);
  m.AddCounter("tas.fastpath.ooo_accepted", &stats_.ooo_accepted);
  m.AddCounter("tas.fastpath.ooo_dropped", &stats_.ooo_dropped);
  m.AddCounter("tas.fastpath.fast_retransmits", &stats_.fast_retransmits);
  m.AddCounter("tas.fastpath.exceptions", &stats_.exceptions);
  m.AddCounter("tas.fastpath.cross_core_packets", &stats_.cross_core_packets);
  m.AddCounter("tas.slowpath.packets", &stats_.slowpath_packets);
  m.AddCounter("tas.slowpath.timeout_retransmits", &stats_.timeout_retransmits);
  m.AddCounter("tas.slowpath.handshake_retransmits", &stats_.handshake_retransmits);
  m.AddCounter("tas.slowpath.connections_established", &stats_.connections_established);
  m.AddCounter("tas.slowpath.connections_closed", &stats_.connections_closed);
  m.AddCounterFn("tas.slowpath.control_iterations",
                 [this] { return slow_path_->control_iterations(); });
  m.AddGauge("tas.active_cores", [this] { return static_cast<double>(active_cores_); });
  m.AddGauge("tas.live_flows", [this] { return static_cast<double>(live_flows_); });
  m.AddCounterFn("tas.flow_table.lookups", [this] { return flow_table_.stats().lookups; });
  m.AddCounterFn("tas.flow_table.probes", [this] { return flow_table_.stats().probes; });
  m.AddCounterFn("tas.flow_table.rehashes", [this] { return flow_table_.stats().rehashes; });
  m.AddCounterFn("tas.flow_table.tombstones_reused",
                 [this] { return flow_table_.stats().tombstones_reused; });
  m.AddGauge("tas.flow_table.load_factor", [this] { return flow_table_.LoadFactor(); });
  m.AddGauge("tas.flow_table.tombstones",
             [this] { return static_cast<double>(flow_table_.tombstones()); });
  m.AddGauge("tas.flow_table.avg_probe_len", [this] { return flow_table_.AvgProbeLength(); });
  m.AddGauge("tas.flow_table.max_probe_len",
             [this] { return static_cast<double>(flow_table_.stats().max_probe); });
  // Probe-length distribution (group-probe counts per lookup) as log-bucket
  // percentiles — the gate the million-flow churn bench regresses against.
  m.AddGauge("tas.flow_table.probe_p50", [this] {
    const LogHistogram& h = flow_table_.probe_hist();
    return h.count() == 0 ? 0.0 : static_cast<double>(h.ApproxPercentile(50));
  });
  m.AddGauge("tas.flow_table.probe_p99", [this] {
    const LogHistogram& h = flow_table_.probe_hist();
    return h.count() == 0 ? 0.0 : static_cast<double>(h.ApproxPercentile(99));
  });
  m.AddCounterFn("tas.flow_table.drift_rebuilds",
                 [this] { return flow_table_.stats().drift_rebuilds; });
  m.AddCounterFn("tas.flow_table.relocated", [this] { return flow_table_.stats().relocated; });
  m.AddCounterFn("tas.flow_table.forced_finishes",
                 [this] { return flow_table_.stats().forced_finishes; });
  m.AddCounterFn("tas.steer.migrations", [this] { return steering_->migrations(); });
  m.AddCounterFn("tas.steer.group_moves", [this] { return steering_->group_moves(); });
  m.AddCounterFn("tas.steer.deferred_items", [this] { return steering_->deferred_items(); });
  m.AddCounterFn("tas.steer.rebalances", [this] { return steering_->rebalances(); });
  // Instantaneous migration state (the cumulative counters above can't show a
  // STUCK drain): parked TX items, groups mid-quiesce, and the oldest drain's
  // age — the watchdog's and an operator's view of wedged migrations.
  m.AddGauge("tas.steer.deferred_depth",
             [this] { return static_cast<double>(steering_->DeferredDepth()); });
  m.AddGauge("tas.steer.draining_groups",
             [this] { return static_cast<double>(steering_->DrainingGroups()); });
  m.AddGauge("tas.steer.max_drain_age_ns", [this] {
    return static_cast<double>(steering_->MaxDrainAge(sim_->Now()));
  });
  // Fast-path batching: per-core counters aggregated across cores. The RX
  // occupancy histogram buckets are 0 / 1 / 2 / 3-4 / 5-8 / 9+ packets.
  m.AddCounterFn("tas.fastpath.batches", [this] {
    uint64_t sum = 0;
    for (auto& fp : fastpaths_) sum += fp->batches();
    return sum;
  });
  m.AddCounterFn("tas.fastpath.batch_items", [this] {
    uint64_t sum = 0;
    for (auto& fp : fastpaths_) sum += fp->batch_items();
    return sum;
  });
  static const char* kOccNames[FastPathCore::kOccBuckets] = {"0", "1", "2",
                                                             "4", "8", "9plus"};
  for (size_t b = 0; b < FastPathCore::kOccBuckets; ++b) {
    m.AddCounterFn(std::string("tas.fastpath.rx_batch_occ.") + kOccNames[b], [this, b] {
      uint64_t sum = 0;
      for (auto& fp : fastpaths_) sum += fp->rx_occupancy()[b];
      return sum;
    });
  }
  m.AddCounterFn("tas.contexts.doorbells_coalesced", [this] {
    uint64_t sum = 0;
    for (AppContext* ctx : contexts_) sum += ctx->doorbells_coalesced();
    return sum;
  });
  m.AddCounterFn("tas.contexts.dropped_events", [this] {
    uint64_t sum = 0;
    for (AppContext* ctx : contexts_) sum += ctx->dropped_events();
    return sum;
  });
  // Queue-occupancy high-water marks (latency anatomy: the depth behind each
  // queue-wait stage). Max across contexts / cores — the worst queue is the
  // one that explains the tail.
  m.AddGauge("tas.contexts.rx_queue_hw", [this] {
    size_t hw = 0;
    for (AppContext* ctx : contexts_) hw = std::max(hw, ctx->rx_queue_hw());
    return static_cast<double>(hw);
  });
  m.AddGauge("tas.contexts.tx_queue_hw", [this] {
    size_t hw = 0;
    for (AppContext* ctx : contexts_) hw = std::max(hw, ctx->tx_queue_hw());
    return static_cast<double>(hw);
  });
  m.AddGauge("tas.fastpath.work_queue_hw", [this] {
    size_t hw = 0;
    for (auto& fp : fastpaths_) hw = std::max(hw, fp->work_queue_hw());
    return static_cast<double>(hw);
  });
  if (config_.trace.latency_stages) {
    const LatencyTracer* lat = &tracer_->latency();
    m.AddCounterFn("latency.completed", [lat] { return lat->completed(); });
    m.AddCounterFn("latency.abandoned", [lat] { return lat->abandoned(); });
    m.AddCounterFn("latency.overwritten", [lat] { return lat->overwritten(); });
    m.AddCounterFn("latency.stale", [lat] { return lat->stale(); });
    m.AddCounterFn("latency.partition_mismatches",
                   [lat] { return lat->partition_mismatches(); });
  }
  if (config_.trace.causal) {
    const CausalTracer* ct = &tracer_->causal();
    m.AddCounterFn("causal.completed", [ct] { return ct->completed(); });
    m.AddCounterFn("causal.abandoned", [ct] { return ct->abandoned(); });
    m.AddCounterFn("causal.dropped", [ct] { return ct->dropped(); });
    m.AddCounterFn("causal.stale", [ct] { return ct->stale(); });
    m.AddCounterFn("causal.truncated", [ct] { return ct->truncated(); });
    // Which per-trace cap actually bit (counts capped calls; `truncated`
    // above counts discarded traces) — the signal for resizing kMaxSpans/
    // kMaxMarks/kMaxLinks instead of guessing.
    m.AddCounterFn("causal.truncated_spans", [ct] { return ct->truncated_spans(); });
    m.AddCounterFn("causal.truncated_marks", [ct] { return ct->truncated_marks(); });
    m.AddCounterFn("causal.truncated_links", [ct] { return ct->truncated_links(); });
    m.AddCounterFn("causal.critical_path_mismatches",
                   [ct] { return ct->critical_path_mismatches(); });
  }
  // Ring-overflow visibility for every tracing surface: nonzero means the
  // corresponding export files are missing their oldest records.
  m.AddCounterFn("trace.dropped_spans", [this] { return tracer_->spans().dropped(); });
  m.AddCounterFn("trace.dropped_records", [this] {
    return tracer_->flow_events().overwritten() + tracer_->latency().overwritten() +
           tracer_->causal().dropped();
  });
  // Flow-ring overwrites attributed to the event type that was lost, so a
  // wrapped ring says WHICH stream needs a bigger window. Every type
  // registers; types never overwritten read 0.
  for (int i = 0; i < kNumFlowEventTypes; ++i) {
    const auto type = static_cast<FlowEventType>(i);
    m.AddCounterFn(std::string("trace.dropped.flow.") + FlowEventTypeName(type),
                   [this, type] { return tracer_->flow_events().overwritten_by_type(type); });
  }
  if (config_.watchdog.enabled) {
    m.AddCounterFn("watchdog.checks",
                   [this] { return watchdog_ ? watchdog_->checks() : 0; });
    m.AddCounterFn("watchdog.breached_checks",
                   [this] { return watchdog_ ? watchdog_->breached_checks() : 0; });
    m.AddCounterFn("watchdog.triggers",
                   [this] { return watchdog_ ? watchdog_->triggers_fired() : 0; });
  }
  if (recorder_ != nullptr) {
    for (int s = 0; s < kNumRecorderStreams; ++s) {
      const auto stream = static_cast<RecorderStream>(s);
      const std::string prefix = std::string("recorder.") + RecorderStreamName(stream);
      m.AddCounterFn(prefix + ".recorded",
                     [this, stream] { return recorder_->recorded(stream); });
      m.AddCounterFn(prefix + ".overwritten",
                     [this, stream] { return recorder_->overwritten(stream); });
    }
    m.AddCounterFn("recorder.bundles", [this] {
      return static_cast<uint64_t>(recorder_->bundles_written());
    });
  }
  nic_->RegisterMetrics(&m, "nic");
  PacketPool::Current().RegisterMetrics(&m, "pktpool");

  // Event-driven series behind the Fig 14 proportionality plot. Generous cap:
  // core transitions are rare (one per monitor interval at most).
  core_series_ = &tracer_->sampler().Series("tas.active_cores", 1u << 16);

  if (config_.trace.cpu_spans) {
    SpanRecorder& spans = tracer_->spans();
    const auto listen = [&spans](Core* core) {
      const int track = core->id();
      core->set_span_listener([&spans, track](CpuModule mod, TimeNs start, TimeNs end) {
        spans.Record(track, CpuModuleName(mod), start, end);
      });
    };
    spans.SetTrackName(slowpath_core_->id(), "slowpath-core");
    listen(slowpath_core_.get());
    for (auto& core : fastpath_cores_) {
      spans.SetTrackName(core->id(), "fastpath-core-" + std::to_string(core->id()));
      listen(core.get());
    }
  }

  if (config_.trace.sample_period > 0) {
    TimeSeriesSampler& sampler = tracer_->sampler();
    const size_t max_pts = config_.trace.series_max_points;
    // Per-core utilization over each sample window (fraction busy since the
    // previous sweep). The window state lives in the hook's closure.
    struct UtilWindow {
      std::vector<TimeNs> busy;
      TimeNs last = 0;
    };
    auto win = std::make_shared<UtilWindow>();
    win->busy.resize(fastpath_cores_.size() + 1, 0);
    sampler.AddSweepHook([this, win, max_pts](TimeNs now) {
      TimeSeriesSampler& s = tracer_->sampler();
      const TimeNs window = now - win->last;
      const auto util = [window](TimeNs busy_delta) {
        return window > 0
                   ? std::clamp(static_cast<double>(busy_delta) / static_cast<double>(window),
                                0.0, 1.0)
                   : 0.0;
      };
      for (size_t i = 0; i < fastpath_cores_.size(); ++i) {
        const TimeNs busy = fastpath_cores_[i]->busy_ns();
        s.Series("tas.core." + std::to_string(i) + ".util", max_pts)
            .Append(now, util(busy - win->busy[i]));
        win->busy[i] = busy;
      }
      const TimeNs sp_busy = slowpath_core_->busy_ns();
      s.Series("tas.core.slow.util", max_pts).Append(now, util(sp_busy - win->busy.back()));
      win->busy.back() = sp_busy;
      win->last = now;
    });
    // Flow-table probe percentiles + steering activity as sweep series: the
    // scale-out observability the §3.4 controller and the churn bench read.
    sampler.AddSweepHook([this, max_pts](TimeNs now) {
      TimeSeriesSampler& s = tracer_->sampler();
      const LogHistogram& h = flow_table_.probe_hist();
      if (h.count() > 0) {
        s.Series("tas.flow_table.probe_p50", max_pts)
            .Append(now, static_cast<double>(h.ApproxPercentile(50)));
        s.Series("tas.flow_table.probe_p99", max_pts)
            .Append(now, static_cast<double>(h.ApproxPercentile(99)));
      }
      s.Series("tas.steer.migrations", max_pts)
          .Append(now, static_cast<double>(steering_->migrations()));
      s.Series("tas.steer.group_moves", max_pts)
          .Append(now, static_cast<double>(steering_->group_moves()));
    });
    if (config_.trace.latency_stages) {
      // Per-stage percentile series -> Perfetto counter tracks. Cumulative
      // percentiles (the histograms are never reset), sampled on the sweep.
      sampler.AddSweepHook([this, max_pts](TimeNs now) {
        TimeSeriesSampler& s = tracer_->sampler();
        const LatencyTracer& lat = tracer_->latency();
        if (lat.num_shards() > 1) {
          // Partitioned run: a mid-run merge would read other islands'
          // shards while they are being written. The end-of-run report
          // still carries the full distributions; only this live series is
          // dropped.
          return;
        }
        for (int i = 0; i < kNumLatencyStages; ++i) {
          const auto stage = static_cast<LatencyStage>(i);
          const LogHistogram& h = lat.stage_hist(stage);
          if (h.count() == 0) {
            continue;
          }
          const std::string p = std::string("latency.") + LatencyStageName(stage) + ".";
          s.Series(p + "p50_us", max_pts)
              .Append(now, static_cast<double>(h.ApproxPercentile(50)) / 1000.0);
          s.Series(p + "p99_us", max_pts)
              .Append(now, static_cast<double>(h.ApproxPercentile(99)) / 1000.0);
        }
        if (lat.e2e_hist().count() > 0) {
          s.Series("latency.e2e.p50_us", max_pts)
              .Append(now, static_cast<double>(lat.e2e_hist().ApproxPercentile(50)) / 1000.0);
          s.Series("latency.e2e.p99_us", max_pts)
              .Append(now, static_cast<double>(lat.e2e_hist().ApproxPercentile(99)) / 1000.0);
        }
      });
    }
    if (config_.trace.sample_flows) {
      sampler.AddSweepHook([this, max_pts](TimeNs now) {
        TimeSeriesSampler& s = tracer_->sampler();
        for (uint32_t i = 0; i < flows_.slot_count(); ++i) {
          if (!flows_.SlotLive(i)) {
            continue;
          }
          const Flow* f = &flows_.SlotFlow(i);
          if (f->cstate == ConnState::kFreed) {
            continue;
          }
          const std::string p = "flow." + std::to_string(i) + ".";
          if (f->cc_window > 0) {
            s.Series(p + "cwnd_bytes", max_pts)
                .Append(now, static_cast<double>(f->cc_window));
          } else {
            s.Series(p + "rate_mbps", max_pts).Append(now, f->rate_bps / 1e6);
          }
          s.Series(p + "inflight_bytes", max_pts)
              .Append(now, static_cast<double>(f->fs.tx_sent));
          s.Series(p + "rx_buf_used", max_pts).Append(now, static_cast<double>(f->RxUsed()));
          s.Series(p + "tx_buf_used", max_pts)
              .Append(now, static_cast<double>(f->TxQueued()));
          s.Series(p + "rtt_us", max_pts).Append(now, static_cast<double>(f->fs.rtt_est));
        }
      });
    }
    sampler.Start(config_.trace.sample_period);
  }
}

TasService::~TasService() {
  if (latency_installed_ && LatencyTracer::Current() == &tracer_->latency()) {
    LatencyTracer::Install(nullptr);
  }
  if (causal_installed_ && CausalTracer::Current() == &tracer_->causal()) {
    CausalTracer::Install(nullptr);
  }
  if (recorder_installed_ && FlightRecorder::Current() == recorder_.get()) {
    FlightRecorder::Install(nullptr);
  }
}

IpAddr TasService::local_ip() const { return nic_->ip(); }

Core* TasService::fastpath_cpu(int i) { return fastpath_cores_[static_cast<size_t>(i)].get(); }
Core* TasService::slowpath_cpu() { return slowpath_core_.get(); }
FastPathCore* TasService::fastpath(int i) { return fastpaths_[static_cast<size_t>(i)].get(); }

uint16_t TasService::RegisterContext(AppContext* context) {
  contexts_.push_back(context);
  const uint16_t id = static_cast<uint16_t>(contexts_.size() - 1);
  context->set_fastpath_notify([this, id] { DrainContextCommands(id); });
  return id;
}

void TasService::DrainContextCommands(uint16_t context_id) {
  AppContext* ctx = contexts_[context_id];
  while (auto cmd = ctx->tx().Pop()) {
    Flow* flow = flow_by_id(static_cast<FlowId>(cmd->flow_id));
    if (flow == nullptr || flow->cstate == ConnState::kFreed) {
      continue;
    }
    switch (cmd->type) {
      case TxCommandType::kSend:
        if (flow->FastPathEligible() && flow->TxAvailable() > 0) {
          ScheduleFlowTx(static_cast<FlowId>(cmd->flow_id), flow->next_tx_time);
        }
        break;
      case TxCommandType::kWindowUpdate:
        if (flow->FastPathEligible()) {
          fastpaths_[static_cast<size_t>(CoreForFlow(*flow))]->EnqueueWindowUpdate(
              static_cast<FlowId>(cmd->flow_id));
        }
        break;
    }
  }
}

void TasService::Listen(uint16_t port, uint64_t opaque, uint16_t context) {
  slow_path_->CmdListen(port, opaque, context);
}

FlowId TasService::Connect(IpAddr dst_ip, uint16_t dst_port, uint64_t opaque,
                           uint16_t context) {
  const uint16_t local_port = AllocateEphemeralPort();
  const FlowKey key{local_port, dst_ip, dst_port};
  const FlowId id = AllocateFlow(key);
  Flow& flow = *flow_by_id(id);
  flow.fs.opaque = opaque != 0 ? opaque : id;
  flow.fs.context = context;
  flow.fs.local_port = local_port;
  flow.fs.peer_ip = dst_ip;
  flow.fs.peer_port = dst_port;
  flow.cstate = ConnState::kSynSent;
  slow_path_->CmdConnect(id);
  return id;
}

void TasService::Close(FlowId flow_id) { slow_path_->CmdClose(flow_id); }

Flow* TasService::GetFlow(FlowId flow_id) { return flow_by_id(flow_id); }

Flow* TasService::LookupFlow(const FlowKey& key) {
  const FlowId id = LookupFlowId(key);
  return id == kInvalidFlow ? nullptr : flow_by_id(id);
}

FlowId TasService::LookupFlowId(const FlowKey& key) { return flow_table_.Find(key); }

FlowId TasService::AllocateFlow(const FlowKey& key) {
  TAS_CHECK(flow_table_.Find(key) == kInvalidFlow);
  const FlowId id = flows_.Allocate();
  Flow* flow = flows_.Get(id);
  flow->cold().rx_mem.resize(config_.rx_buffer_bytes);
  flow->cold().tx_mem.resize(config_.tx_buffer_bytes);
  flow->fs.rx_base = flow->cold().rx_mem.data();
  flow->fs.tx_base = flow->cold().tx_mem.data();
  flow->fs.rx_size = config_.rx_buffer_bytes;
  flow->fs.tx_size = config_.tx_buffer_bytes;
  flow->fs.local_port = key.local_port;
  flow->fs.peer_ip = key.peer_ip;
  flow->fs.peer_port = key.peer_port;
  flow->mss = config_.mss;
  if (config_.cc_algorithm == CcAlgorithm::kDctcpWindow) {
    WindowCcConfig wc;
    wc.mss = config_.mss;
    flow->cold().wcc = std::make_unique<DctcpWindowCc>(wc);
    flow->cc_window = flow->cold().wcc->cwnd();
    flow->rate_bps = 100e9;  // Window is the limiter; do not pace.
  } else {
    flow->cold().cc = MakeRateCc(config_);
    flow->rate_bps = flow->cold().cc->rate_bps();
  }

  // Our ISN anchors the transmit positions: the first payload byte is iss+1.
  const uint32_t iss = static_cast<uint32_t>(rng_.Next());
  flow->fs.seq = iss + 1;
  flow->fs.tx_head = iss + 1;
  flow->fs.tx_tail = iss + 1;
  flow->fs.tx_sent = 0;

  flow_table_.Insert(key, id);
  ++port_use_count_[key.local_port];
  ++live_flows_;
  return id;
}

void TasService::FreeFlow(FlowId id) {
  Flow* flow = flow_by_id(id);
  if (flow == nullptr) {
    return;
  }
  flow_table_.Erase(FlowKey{flow->fs.local_port, flow->fs.peer_ip, flow->fs.peer_port});
  --port_use_count_[flow->fs.local_port];
  flows_.Free(id);
  --live_flows_;
}

uint16_t TasService::AllocateEphemeralPort() {
  for (int attempts = 0; attempts < 45000; ++attempts) {
    const uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65000 ? 20000 : next_ephemeral_ + 1;
    if (port_use_count_[port] == 0) {
      return port;
    }
  }
  TAS_LOG(FATAL) << "ephemeral ports exhausted";
  return 0;
}

int TasService::RedirectionEntryForFlow(const Flow& flow) const {
  Packet probe;
  probe.ip.src = flow.fs.peer_ip;
  probe.ip.dst = nic_->ip();
  probe.tcp.src_port = flow.fs.peer_port;
  probe.tcp.dst_port = flow.fs.local_port;
  return nic_->RedirectionEntryFor(probe);
}

int TasService::CoreForFlow(const Flow& flow) const {
  // The redirection table maps the entry to the queue == core index.
  return nic_->RedirectionEntryQueue(RedirectionEntryForFlow(flow));
}

void TasService::ScheduleFlowTx(FlowId id, TimeNs earliest) {
  Flow* flow = flow_by_id(id);
  if (flow == nullptr || flow->tx_pending) {
    return;
  }
  flow->tx_pending = true;
  if (earliest <= sim_->Now()) {
    const int entry = RedirectionEntryForFlow(*flow);
    if (steering_->Draining(entry)) {
      // The flow's group is mid-migration: park the work on the group; the
      // flip re-enqueues it on the target core. tx_pending stays set.
      steering_->DeferFlowTx(entry, id);
      return;
    }
    fastpaths_[static_cast<size_t>(nic_->RedirectionEntryQueue(entry))]->EnqueueFlowTx(id);
    return;
  }
  sim_->At(earliest, [this, id] {
    Flow* f = flow_by_id(id);
    if (f == nullptr || f->cstate == ConnState::kFreed) {
      return;
    }
    const int entry = RedirectionEntryForFlow(*f);
    if (steering_->Draining(entry)) {
      steering_->DeferFlowTx(entry, id);
      return;
    }
    fastpaths_[static_cast<size_t>(nic_->RedirectionEntryQueue(entry))]->EnqueueFlowTx(id);
  });
}

void TasService::MarkFlowDirty(FlowId id) {
  Flow* flow = flow_by_id(id);
  if (flow == nullptr || flow->in_dirty) {
    return;
  }
  flow->in_dirty = true;
  dirty_flows_.push_back(id);
}

void TasService::SetActiveCores(int count) {
  TAS_CHECK(count >= 1 && count <= config_.max_fastpath_cores);
  if (count == active_cores_) {
    return;
  }
  active_cores_ = count;
  // Re-steer via quiesced flow-group migrations (paper §3.4): groups on
  // still-busy source cores drain first, idle ones flip immediately (which is
  // byte-identical to the old eager table rewrite). Outgoing application
  // work re-routes lazily via CoreForFlow on the next scheduling decision.
  steering_->SetActiveCores(count);
  core_series_->Append(sim_->Now(), static_cast<double>(count));
  // Kick newly added cores in case work is already queued for them.
  for (int i = 0; i < count; ++i) {
    fastpaths_[static_cast<size_t>(i)]->MaybeRun();
  }
}

}  // namespace tas
