#include "src/tas/flow_table.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/util/logging.h"

namespace tas {
namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t HashKey(const FlowKey& key) { return FlowKeyHash{}(key); }

constexpr uint64_t kLsbs = 0x0101010101010101ull;
constexpr uint64_t kMsbs = 0x8080808080808080ull;

uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// High bit set in every byte of `w` equal to `b`. May rarely flag a byte
// adjacent to a true match (borrow propagation); callers follow every match
// with a full key compare, so false positives only cost that compare. Never
// flags empty/deleted bytes: their high bit survives the xor (fingerprints
// have it clear), which zeroes the ~x term.
uint64_t MatchByteMask(uint64_t w, uint8_t b) {
  const uint64_t x = w ^ (kLsbs * b);
  return (x - kLsbs) & ~x & kMsbs;
}

// Exact masks over the ctrl special encoding (see header): empty = 0x80 has
// bits 1 and 0 clear, deleted = 0xFE has bit 1 set / bit 0 clear, full bytes
// have bit 7 clear — so one shifted self-AND distinguishes them with no
// false positives (this is why the sentinels are 0x80/0xFE, not 0/1).
uint64_t MaskEmpty(uint64_t w) { return w & ~(w << 6) & kMsbs; }
uint64_t MaskEmptyOrDeleted(uint64_t w) { return w & ~(w << 7) & kMsbs; }

size_t ByteIndex(uint64_t mask) { return static_cast<size_t>(std::countr_zero(mask)) >> 3; }

constexpr size_t kNpos = ~static_cast<size_t>(0);

}  // namespace

FlowTable::FlowTable(size_t initial_capacity) {
  const size_t cap =
      RoundUpPow2(initial_capacity < kGroupSize ? kGroupSize : initial_capacity);
  ctrl_.assign(cap, kEmptyByte);
  entries_.resize(cap);
}

// Shared probe loop: returns the slot index of `key` in one table, or kNpos.
// Triangular probing over groups (cumulative offsets 1, 3, 6, ... visit every
// group exactly once while the group count is a power of two); terminates at
// the first group containing an empty byte.
namespace {

template <typename Entry>
size_t FindSlotIn(const std::vector<uint8_t>& ctrl, const std::vector<Entry>& entries,
                  const FlowKey& key, uint64_t hash, uint64_t* probe) {
  const uint8_t h2 = static_cast<uint8_t>(hash & 0x7F);
  const size_t ngroups = ctrl.size() / FlowTable::kGroupSize;
  const size_t gmask = ngroups - 1;
  size_t g = (hash >> 7) & gmask;
  for (size_t step = 1; step <= ngroups; ++step) {
    ++*probe;
    const uint8_t* gp = ctrl.data() + g * FlowTable::kGroupSize;
    const uint64_t lo = Load64(gp);
    const uint64_t hi = Load64(gp + 8);
    for (uint64_t m = MatchByteMask(lo, h2); m != 0; m &= m - 1) {
      const size_t idx = g * FlowTable::kGroupSize + ByteIndex(m);
      if (entries[idx].key == key) return idx;
    }
    for (uint64_t m = MatchByteMask(hi, h2); m != 0; m &= m - 1) {
      const size_t idx = g * FlowTable::kGroupSize + 8 + ByteIndex(m);
      if (entries[idx].key == key) return idx;
    }
    if ((MaskEmpty(lo) | MaskEmpty(hi)) != 0) return kNpos;
    g = (g + step) & gmask;
  }
  return kNpos;
}

}  // namespace

FlowId FlowTable::FindIn(const std::vector<uint8_t>& ctrl, const std::vector<Entry>& entries,
                         const FlowKey& key, uint64_t hash, uint64_t* probe) const {
  const size_t idx = FindSlotIn(ctrl, entries, key, hash, probe);
  return idx == kNpos ? kInvalidFlow : entries[idx].id;
}

FlowId FlowTable::Find(const FlowKey& key) const {
  ++stats_.lookups;
  const uint64_t hash = HashKey(key);
  uint64_t probe = 0;
  FlowId id = FindIn(ctrl_, entries_, key, hash, &probe);
  if (id == kInvalidFlow && !old_ctrl_.empty()) {
    id = FindIn(old_ctrl_, old_entries_, key, hash, &probe);
  }
  stats_.probes += probe;
  if (probe > stats_.max_probe) stats_.max_probe = probe;
  probe_hist_.Add(probe);
  return id;
}

size_t FlowTable::PlaceInActive(const FlowKey& key, FlowId id, uint64_t hash,
                                bool reuse_tombstones) {
  const uint8_t h2 = static_cast<uint8_t>(hash & 0x7F);
  const size_t ngroups = ctrl_.size() / kGroupSize;
  const size_t gmask = ngroups - 1;
  size_t g = (hash >> 7) & gmask;
  for (size_t step = 1; step <= ngroups; ++step) {
    const uint8_t* gp = ctrl_.data() + g * kGroupSize;
    const uint64_t lo = Load64(gp);
    const uint64_t hi = Load64(gp + 8);
    // The first reusable byte in probe order: a tombstone earlier on the
    // chain is taken before a trailing empty slot, which is what keeps
    // steady-state erase+insert churn from growing occupancy.
    const uint64_t m_lo = reuse_tombstones ? MaskEmptyOrDeleted(lo) : MaskEmpty(lo);
    const uint64_t m_hi = reuse_tombstones ? MaskEmptyOrDeleted(hi) : MaskEmpty(hi);
    if ((m_lo | m_hi) != 0) {
      const size_t byte = m_lo != 0 ? ByteIndex(m_lo) : 8 + ByteIndex(m_hi);
      const size_t idx = g * kGroupSize + byte;
      if (ctrl_[idx] == kDeletedByte) {
        --tombstones_;
        ++stats_.tombstones_reused;
      }
      ctrl_[idx] = h2;
      entries_[idx].key = key;
      entries_[idx].id = id;
      return idx;
    }
    g = (g + step) & gmask;
  }
  TAS_LOG(FATAL) << "flow table full (occupancy bound violated)";
  return kNpos;
}

void FlowTable::Insert(const FlowKey& key, FlowId id) {
  StepRehash(kRehashStrideSlots);
  // Keep live + tombstone occupancy of the active table under 7/8 so probe
  // chains stay short and the empty-group termination is always reachable.
  if ((active_size_ + tombstones_ + 1) * 8 > ctrl_.size() * 7) {
    if (rehash_in_progress()) {
      // Should not happen (see kRehashStrideSlots sizing); finish the drain
      // so the new rehash starts from a single-table state, and count it.
      ++stats_.forced_finishes;
      FinishRehash();
    }
    // If occupancy is mostly tombstones, rebuilding at the same capacity is
    // enough (tombstone drift); only grow when live entries need the room.
    const bool drift = size() * 8 <= ctrl_.size() * 7 / 2;
    if (drift) ++stats_.drift_rebuilds;
    StartRehash(drift ? ctrl_.size() : ctrl_.size() * 2);
  }
  PlaceInActive(key, id, HashKey(key), /*reuse_tombstones=*/true);
  ++active_size_;
}

bool FlowTable::Erase(const FlowKey& key) {
  StepRehash(kRehashStrideSlots);
  const uint64_t hash = HashKey(key);
  uint64_t probe = 0;
  size_t idx = FindSlotIn(ctrl_, entries_, key, hash, &probe);
  if (idx != kNpos) {
    ctrl_[idx] = kDeletedByte;
    ++tombstones_;
    --active_size_;
    return true;
  }
  if (!old_ctrl_.empty()) {
    idx = FindSlotIn(old_ctrl_, old_entries_, key, hash, &probe);
    if (idx != kNpos) {
      // Old-table erases just mark the slot; the drain scan skips it. No
      // tombstone accounting: the old table never takes inserts.
      old_ctrl_[idx] = kDeletedByte;
      --old_live_;
      return true;
    }
  }
  return false;
}

void FlowTable::StartRehash(size_t new_capacity) {
  TAS_DCHECK(old_ctrl_.empty());
  ++stats_.rehashes;
  old_ctrl_ = std::move(ctrl_);
  old_entries_ = std::move(entries_);
  old_live_ = active_size_;
  active_size_ = 0;
  tombstones_ = 0;
  rehash_pos_ = 0;
  if (spare_ctrl_.size() == new_capacity) {
    // Same-capacity rebuild: reuse the retired buffers — no allocation, so
    // steady-state churn with periodic drift rebuilds stays alloc-free.
    ctrl_ = std::move(spare_ctrl_);
    entries_ = std::move(spare_entries_);
    spare_ctrl_.clear();
    spare_entries_.clear();
    std::fill(ctrl_.begin(), ctrl_.end(), kEmptyByte);
  } else {
    ctrl_.assign(new_capacity, kEmptyByte);
    entries_.assign(new_capacity, Entry{});
  }
  // First stride up front: a table that sees no further Insert/Erase traffic
  // still makes progress on the next mutating call, and short drains finish
  // immediately.
  StepRehash(kRehashStrideSlots);
}

void FlowTable::StepRehash(size_t max_slots) {
  if (old_ctrl_.empty()) return;
  const size_t end = old_ctrl_.size();
  size_t scanned = 0;
  while (rehash_pos_ < end && scanned < max_slots) {
    if (IsFull(old_ctrl_[rehash_pos_])) {
      const Entry& e = old_entries_[rehash_pos_];
      // Migration can't overflow the new table: growth sizes it for all old
      // entries plus the inserts that can occur before the drain completes.
      PlaceInActive(e.key, e.id, HashKey(e.key), /*reuse_tombstones=*/true);
      ++active_size_;
      --old_live_;
      ++stats_.relocated;
      old_ctrl_[rehash_pos_] = kDeletedByte;  // Keeps old-table probes valid.
    }
    ++rehash_pos_;
    ++scanned;
  }
  if (scanned > stats_.max_reloc_slots) stats_.max_reloc_slots = scanned;
  if (rehash_pos_ == end) {
    TAS_DCHECK(old_live_ == 0);
    // Retire the drained buffers as spares for the next same-capacity
    // rebuild (moved-from vectors are cleared explicitly: their state is
    // only guaranteed "valid", and empty old_ctrl_ means "no rehash").
    spare_ctrl_ = std::move(old_ctrl_);
    spare_entries_ = std::move(old_entries_);
    old_ctrl_.clear();
    old_entries_.clear();
    rehash_pos_ = 0;
  }
}

void FlowTable::FinishRehash() {
  while (!old_ctrl_.empty()) {
    StepRehash(old_ctrl_.size());
  }
}

FlowSlab::Chunk::Chunk()
    : flows(kChunkSlots),
      cold(kChunkSlots),
      generation(kChunkSlots, 0),
      live(kChunkSlots, 0) {
  for (size_t i = 0; i < kChunkSlots; ++i) {
    flows[i].BindCold(&cold[i]);
  }
}

FlowId FlowSlab::Allocate() {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slot_count_ == capacity_slots()) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    slot = static_cast<uint32_t>(slot_count_++);
    TAS_DCHECK(slot < kFlowSlotMask);  // Slot 0xFFFFF reserved: id != kInvalidFlow.
  }
  Chunk& c = ChunkOf(slot);
  const size_t i = slot % kChunkSlots;
  c.live[i] = 1;
  ++live_;
  return MakeFlowId(slot, c.generation[i]);
}

void FlowSlab::Free(FlowId id) {
  Chunk* c = nullptr;
  size_t i = 0;
  const uint32_t slot = FlowSlotOf(id);
  if (slot < slot_count_) {
    Chunk& cand = ChunkOf(slot);
    i = slot % kChunkSlots;
    if (cand.live[i] && cand.generation[i] == FlowGenOf(id)) c = &cand;
  }
  TAS_DCHECK(c != nullptr);
  if (c == nullptr) return;
  c->flows[i].Reset();
  c->generation[i] = (c->generation[i] + 1) & kFlowGenMask;
  c->live[i] = 0;
  --live_;
  free_slots_.push_back(slot);
}

}  // namespace tas
