#include "src/tas/flow_table.h"

#include "src/util/logging.h"

namespace tas {
namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

size_t HashKey(const FlowKey& key) { return FlowKeyHash{}(key); }

}  // namespace

FlowTable::FlowTable(size_t initial_capacity) {
  const size_t cap = RoundUpPow2(initial_capacity < 16 ? 16 : initial_capacity);
  ctrl_.assign(cap, kEmpty);
  entries_.resize(cap);
}

FlowId FlowTable::Find(const FlowKey& key) const {
  ++stats_.lookups;
  const size_t mask = Mask();
  size_t idx = HashKey(key) & mask;
  uint64_t probe = 1;
  for (size_t step = 1;; ++step) {
    const uint8_t c = ctrl_[idx];
    if (c == kEmpty) break;
    if (c == kOccupied && entries_[idx].key == key) {
      stats_.probes += probe;
      if (probe > stats_.max_probe) stats_.max_probe = probe;
      return entries_[idx].id;
    }
    // Triangular probing: cumulative offsets 1, 3, 6, ... visit every slot
    // exactly once while capacity is a power of two.
    idx = (idx + step) & mask;
    ++probe;
  }
  stats_.probes += probe;
  if (probe > stats_.max_probe) stats_.max_probe = probe;
  return kInvalidFlow;
}

void FlowTable::Insert(const FlowKey& key, FlowId id) {
  // Keep live + tombstone occupancy under 7/8 so probe chains stay short and
  // Find's empty-slot termination is always reachable.
  if ((size_ + tombstones_ + 1) * 8 > ctrl_.size() * 7) {
    Rehash(ctrl_.size() * 2);
  }
  const size_t mask = Mask();
  size_t idx = HashKey(key) & mask;
  size_t first_tombstone = ctrl_.size();  // Sentinel: none seen.
  for (size_t step = 1;; ++step) {
    const uint8_t c = ctrl_[idx];
    if (c == kEmpty) break;
    if (c == kTombstone && first_tombstone == ctrl_.size()) {
      first_tombstone = idx;
    }
    TAS_DCHECK(c != kOccupied || !(entries_[idx].key == key));
    idx = (idx + step) & mask;
  }
  if (first_tombstone != ctrl_.size()) {
    idx = first_tombstone;
    --tombstones_;
    ++stats_.tombstones_reused;
  }
  ctrl_[idx] = kOccupied;
  entries_[idx].key = key;
  entries_[idx].id = id;
  ++size_;
}

bool FlowTable::Erase(const FlowKey& key) {
  const size_t mask = Mask();
  size_t idx = HashKey(key) & mask;
  for (size_t step = 1;; ++step) {
    const uint8_t c = ctrl_[idx];
    if (c == kEmpty) return false;
    if (c == kOccupied && entries_[idx].key == key) {
      ctrl_[idx] = kTombstone;
      ++tombstones_;
      --size_;
      return true;
    }
    idx = (idx + step) & mask;
  }
}

void FlowTable::Rehash(size_t new_capacity) {
  // If the table is mostly tombstones, rebuilding at the same capacity is
  // enough; only grow when live entries actually need the room.
  if (size_ * 8 <= ctrl_.size() * 7 / 2) {
    new_capacity = ctrl_.size();
  }
  std::vector<uint8_t> old_ctrl = std::move(ctrl_);
  std::vector<Entry> old_entries = std::move(entries_);
  ctrl_.assign(new_capacity, kEmpty);
  entries_.resize(new_capacity);
  size_ = 0;
  tombstones_ = 0;
  ++stats_.rehashes;
  const size_t mask = Mask();
  for (size_t i = 0; i < old_ctrl.size(); ++i) {
    if (old_ctrl[i] != kOccupied) continue;
    size_t idx = HashKey(old_entries[i].key) & mask;
    for (size_t step = 1; ctrl_[idx] != kEmpty; ++step) {
      idx = (idx + step) & mask;
    }
    ctrl_[idx] = kOccupied;
    entries_[idx] = old_entries[i];
    ++size_;
  }
}

FlowId FlowSlab::Allocate() {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slot_count_ == capacity_slots()) {
      chunks_.push_back(std::make_unique<Chunk>(kChunkSlots));
    }
    slot = static_cast<uint32_t>(slot_count_++);
    TAS_DCHECK(slot < kFlowSlotMask);  // Slot 0xFFFFF reserved: id != kInvalidFlow.
  }
  Slot& s = SlotAt(slot);
  s.live = true;
  ++live_;
  return MakeFlowId(slot, s.generation);
}

void FlowSlab::Free(FlowId id) {
  Slot* s = nullptr;
  const uint32_t slot = FlowSlotOf(id);
  if (slot < slot_count_) {
    Slot& cand = SlotAt(slot);
    if (cand.live && cand.generation == FlowGenOf(id)) s = &cand;
  }
  TAS_DCHECK(s != nullptr);
  if (s == nullptr) return;
  s->flow.Reset();
  s->generation = (s->generation + 1) & kFlowGenMask;
  s->live = false;
  --live_;
  free_slots_.push_back(slot);
}

}  // namespace tas
