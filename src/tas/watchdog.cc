#include "src/tas/watchdog.h"

#include <algorithm>
#include <sstream>

#include "src/cpu/core.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/tas/fast_path.h"
#include "src/tas/service.h"
#include "src/tas/slow_path.h"
#include "src/tas/steering.h"
#include "src/trace/causal.h"
#include "src/trace/latency.h"
#include "src/trace/metric_registry.h"
#include "src/util/logging.h"

namespace tas {

SloWatchdog::SloWatchdog(TasService* service, FlightRecorder* recorder)
    : service_(service), recorder_(recorder) {
  source_ = "ip" + IpToString(service->local_ip());
  const WatchdogConfig& config = recorder->config();
  specs_ = config.slos.empty() ? DefaultSlos() : config.slos;
  for (const SloSpec& spec : specs_) {
    SloState state;
    state.spec = spec;
    states_.push_back(std::move(state));
  }
}

SloWatchdog::~SloWatchdog() = default;

void SloWatchdog::Start() {
  if (task_ != nullptr) {
    return;
  }
  TimeNs interval = recorder_->config().check_interval;
  if (interval <= 0) {
    interval = service_->config().monitor_interval;
  }
  last_check_ = service_->sim()->Now();
  task_ = std::make_unique<PeriodicTask>(service_->sim(), interval, [this] { Check(); });
  task_->Start();
}

double SloWatchdog::Measure(SloState& state, TimeNs now, TimeNs window_ns,
                            uint64_t* count) {
  *count = 0;
  switch (state.spec.kind) {
    case SloKind::kE2eLatencyP99: {
      LatencyTracer* tracer = LatencyTracer::Current();
      if (tracer == nullptr) {
        return 0;
      }
      // The calling island's shard: the check runs on this service's island
      // thread, so this reads thread-owned memory mid-run.
      const LogHistogram& cur = tracer->LocalE2eHist();
      const LogHistogram window = cur.DiffSince(state.prev_hist);
      state.prev_hist = cur;
      *count = window.count();
      return static_cast<double>(window.ApproxPercentile(99));
    }
    case SloKind::kRetransmitRate: {
      const TasStats& stats = service_->stats();
      const uint64_t total =
          stats.fast_retransmits + stats.timeout_retransmits + stats.handshake_retransmits;
      const uint64_t delta = total - state.prev_counter;
      state.prev_counter = total;
      *count = delta;
      return window_ns <= 0 ? 0 : static_cast<double>(delta) / ToSec(window_ns);
    }
    case SloKind::kSlowPathQueueDepth:
      *count = service_->slow_path()->exception_depth();
      return static_cast<double>(*count);
    case SloKind::kFlowTableProbeP99: {
      const LogHistogram& cur = service_->flow_table().probe_hist();
      const LogHistogram window = cur.DiffSince(state.prev_hist);
      state.prev_hist = cur;
      *count = window.count();
      return static_cast<double>(window.ApproxPercentile(99));
    }
    case SloKind::kCoreImbalance: {
      const int active = service_->active_cores();
      if (state.prev_busy.size() != static_cast<size_t>(service_->max_cores())) {
        state.prev_busy.assign(static_cast<size_t>(service_->max_cores()), 0);
      }
      uint64_t total = 0;
      uint64_t max_delta = 0;
      for (int i = 0; i < service_->max_cores(); ++i) {
        const TimeNs busy = service_->fastpath_cpu(i)->busy_ns();
        const uint64_t delta = static_cast<uint64_t>(busy - state.prev_busy[i]);
        state.prev_busy[i] = busy;
        if (i < active) {
          total += delta;
          max_delta = std::max(max_delta, delta);
        }
      }
      *count = total;
      if (active <= 1 || total == 0) {
        return 1.0;
      }
      const double mean = static_cast<double>(total) / active;
      return static_cast<double>(max_delta) / mean;
    }
    case SloKind::kMetricValue: {
      double value = 0;
      if (!service_->tracer().metrics().ReadValue(state.spec.metric, &value)) {
        return 0;
      }
      *count = ~0ull;  // Instantaneous read: no sample floor applies.
      return value;
    }
  }
  return 0;
}

void SloWatchdog::Check() {
  const TimeNs now = service_->sim()->Now();
  const TimeNs window_ns = now - last_check_;
  last_check_ = now;
  ++checks_;
  const WatchdogConfig& config = recorder_->config();
  for (SloState& state : states_) {
    uint64_t count = 0;
    const double measured = Measure(state, now, window_ns, &count);
    const bool breached = count >= state.spec.min_count && measured > state.spec.threshold;
    recorder_->RecordSlo(now, state.spec.kind, measured, breached);
    if (!breached) {
      state.streak = 0;
      continue;
    }
    ++breached_checks_;
    if (++state.streak < state.spec.burn_windows) {
      continue;
    }
    state.streak = 0;
    if (state.ever_triggered && now - state.last_trigger < config.cooldown) {
      continue;
    }
    state.ever_triggered = true;
    state.last_trigger = now;
    ++triggers_fired_;

    SloTrigger trigger;
    trigger.slo = state.spec.name;
    trigger.kind = state.spec.kind;
    trigger.measured = measured;
    trigger.threshold = state.spec.threshold;
    trigger.burn_windows = state.spec.burn_windows;
    trigger.t = now;
    trigger.window_from = std::max<TimeNs>(0, now - config.recorder_window);
    trigger.window_to = now;
    trigger.source = source_;
    // The context closure runs at serialization time — immediately on the
    // serial executor, at the next epoch boundary when partitioned — so it
    // may take merged reads across islands.
    recorder_->Trigger(std::move(trigger), [this] { return ContextJson(); });
  }
}

std::string SloWatchdog::ContextJson() const {
  std::ostringstream os;
  os << "{\"source\":";
  JsonEscape(source_, os);
  os << ",\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : service_->tracer().metrics().Snapshot()) {
    // The one registered value that varies with thread count; everything
    // else is deterministic, and bundles must byte-match across widths.
    if (s.name == "sim.island.threads") {
      continue;
    }
    if (!first) {
      os << ',';
    }
    first = false;
    os << "{\"name\":";
    JsonEscape(s.name, os);
    os << ",\"kind\":\"" << MetricKindName(s.kind) << "\",\"value\":" << JsonNumber(s.value)
       << '}';
  }
  os << ']';

  const FlowTable& table = service_->flow_table();
  os << ",\"flow_table\":{\"size\":" << table.size() << ",\"capacity\":" << table.capacity()
     << ",\"tombstones\":" << table.tombstones()
     << ",\"load_factor\":" << JsonNumber(table.LoadFactor())
     << ",\"avg_probe\":" << JsonNumber(table.AvgProbeLength())
     << ",\"probe_p50\":" << table.probe_hist().ApproxPercentile(50)
     << ",\"probe_p99\":" << table.probe_hist().ApproxPercentile(99)
     << ",\"rehash_in_progress\":" << (table.rehash_in_progress() ? "true" : "false")
     << '}';

  SlowPath* slow = service_->slow_path();
  os << ",\"slow_path\":{\"exception_depth\":" << slow->exception_depth()
     << ",\"exception_depth_hw\":" << slow->exception_depth_hw() << '}';

  FlowGroupSteering* steering = service_->steering();
  const TimeNs now = service_->sim()->Now();
  os << ",\"steering\":{\"deferred_depth\":" << steering->DeferredDepth()
     << ",\"draining_groups\":" << steering->DrainingGroups()
     << ",\"max_drain_age_ns\":" << steering->MaxDrainAge(now) << ",\"draining\":[";
  first = true;
  for (const FlowGroupSteering::DrainingGroup& g : steering->DrainingState()) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << "{\"entry\":" << g.entry << ",\"source_core\":" << g.source_core
       << ",\"target_core\":" << g.target_core << ",\"drain_target\":" << g.drain_target
       << ",\"deferred\":" << g.deferred << ",\"started\":" << g.started << '}';
  }
  os << "]}";

  if (LatencyTracer* latency = LatencyTracer::Current()) {
    os << ",\"latency\":" << latency->Report().ToJson();
  }
  if (CausalTracer* causal = CausalTracer::Current()) {
    os << ",\"critical_path\":" << causal->Report().ToJson();
  }
  os << '}';
  return os.str();
}

}  // namespace tas
