#include "src/tas/steering.h"

#include "src/nic/nic.h"
#include "src/tas/fast_path.h"
#include "src/tas/service.h"
#include "src/util/logging.h"

namespace tas {

FlowGroupSteering::FlowGroupSteering(TasService* service) : service_(service) {
  groups_.resize(service->nic()->rss_entries());
  hits_snapshot_.assign(groups_.size(), 0);
}

int FlowGroupSteering::CoreOf(int entry) const {
  return service_->nic()->RedirectionEntryQueue(entry);
}

void FlowGroupSteering::DeferFlowTx(int entry, FlowId id) {
  GroupState& g = groups_[static_cast<size_t>(entry)];
  TAS_DCHECK(g.draining);
  g.deferred.push_back(id);
  ++deferred_items_;
}

bool FlowGroupSteering::MigrateGroup(int entry, int target_core) {
  GroupState& g = groups_[static_cast<size_t>(entry)];
  const int current = CoreOf(entry);
  if (g.draining) {
    if (target_core == g.target_core) {
      return false;
    }
    // Retarget the in-flight drain; the source quiesce already underway
    // covers the new destination too.
    g.target_core = target_core;
    return true;
  }
  if (target_core == current) {
    return false;
  }
  FastPathCore* src = service_->fastpath(current);
  const uint64_t backlog =
      src->queued_items() + service_->nic()->RxQueueLen(current);
  g.source_core = current;
  g.target_core = target_core;
  if (backlog == 0) {
    // Source core quiesced already: flip eagerly (identical to the legacy
    // whole-table rewrite for idle transitions).
    Flip(static_cast<size_t>(entry), g);
    return true;
  }
  g.draining = true;
  g.drain_target = src->items_processed() + backlog;
  g.drain_started = service_->sim()->Now();
  ++draining_count_;
  return true;
}

void FlowGroupSteering::SetActiveCores(int active) {
  TAS_DCHECK(active >= 1);
  for (size_t e = 0; e < groups_.size(); ++e) {
    MigrateGroup(static_cast<int>(e), static_cast<int>(e % static_cast<size_t>(active)));
  }
}

void FlowGroupSteering::OnCoreProgress(int core) {
  if (draining_count_ == 0) {
    return;
  }
  const uint64_t processed = service_->fastpath(core)->items_processed();
  for (size_t e = 0; e < groups_.size(); ++e) {
    GroupState& g = groups_[e];
    if (g.draining && g.source_core == core && processed >= g.drain_target) {
      ++migrations_;
      Flip(e, g);
    }
  }
}

void FlowGroupSteering::Flip(size_t entry, GroupState& g) {
  const int target = g.target_core;
  service_->nic()->SetRedirectionEntry(entry, target);
  ++group_moves_;
  if (g.draining) {
    g.draining = false;
    --draining_count_;
  }
  g.source_core = -1;
  g.target_core = -1;
  g.drain_target = 0;
  g.drain_started = 0;
  if (g.deferred.empty()) {
    return;
  }
  // Re-enqueue parked TX work on the new owner. The items kept tx_pending
  // set while parked, so no duplicate enqueue could happen in between.
  std::vector<FlowId> parked;
  parked.swap(g.deferred);
  for (FlowId id : parked) {
    Flow* flow = service_->flow_by_id(id);
    if (flow == nullptr) {
      continue;
    }
    if (!flow->FastPathEligible()) {
      flow->tx_pending = false;
      continue;
    }
    service_->fastpath(target)->EnqueueFlowTx(id);
  }
  // Keep the buffer for the next drain of this group (steady-state
  // migrations allocate only when a drain parks more work than any before).
  parked.clear();
  g.deferred = std::move(parked);
}

int FlowGroupSteering::MaybeRebalance(int active_cores, double imbalance_factor) {
  const std::vector<uint64_t>& hits = service_->nic()->entry_hits();
  // Interval load per core: sum of this interval's per-entry deltas over the
  // entries each core currently owns.
  std::vector<uint64_t> core_load(static_cast<size_t>(service_->max_cores()), 0);
  std::vector<uint64_t> delta(groups_.size(), 0);
  for (size_t e = 0; e < groups_.size(); ++e) {
    delta[e] = hits[e] - hits_snapshot_[e];
    hits_snapshot_[e] = hits[e];
    core_load[static_cast<size_t>(CoreOf(static_cast<int>(e)))] += delta[e];
  }
  int busiest = 0;
  int least = 0;
  for (int c = 1; c < active_cores; ++c) {
    if (core_load[static_cast<size_t>(c)] > core_load[static_cast<size_t>(busiest)]) busiest = c;
    if (core_load[static_cast<size_t>(c)] < core_load[static_cast<size_t>(least)]) least = c;
  }
  if (busiest == least) {
    return 0;
  }
  const double busy_load = static_cast<double>(core_load[static_cast<size_t>(busiest)]);
  const double least_load = static_cast<double>(core_load[static_cast<size_t>(least)]);
  if (busy_load < imbalance_factor * (least_load + 1.0)) {
    return 0;
  }
  // Move the hottest non-draining group off the busiest core — but not one
  // so hot the move would just invert the imbalance.
  const uint64_t gap_half = static_cast<uint64_t>((busy_load - least_load) / 2.0);
  int best_entry = -1;
  uint64_t best_delta = 0;
  for (size_t e = 0; e < groups_.size(); ++e) {
    if (groups_[e].draining || CoreOf(static_cast<int>(e)) != busiest) {
      continue;
    }
    if (delta[e] > best_delta && delta[e] <= gap_half) {
      best_delta = delta[e];
      best_entry = static_cast<int>(e);
    }
  }
  if (best_entry < 0 || best_delta == 0) {
    return 0;
  }
  ++rebalances_;
  return MigrateGroup(best_entry, least) ? 1 : 0;
}

size_t FlowGroupSteering::DeferredDepth() const {
  size_t depth = 0;
  for (const GroupState& g : groups_) {
    depth += g.deferred.size();
  }
  return depth;
}

TimeNs FlowGroupSteering::MaxDrainAge(TimeNs now) const {
  TimeNs max_age = 0;
  for (const GroupState& g : groups_) {
    if (g.draining && now - g.drain_started > max_age) {
      max_age = now - g.drain_started;
    }
  }
  return max_age;
}

std::vector<FlowGroupSteering::DrainingGroup> FlowGroupSteering::DrainingState() const {
  std::vector<DrainingGroup> out;
  for (size_t e = 0; e < groups_.size(); ++e) {
    const GroupState& g = groups_[e];
    if (!g.draining) {
      continue;
    }
    out.push_back(DrainingGroup{static_cast<int>(e), g.source_core, g.target_core,
                                g.drain_target, g.deferred.size(), g.drain_started});
  }
  return out;
}

}  // namespace tas
