#include "src/tas/fast_path.h"

#include <algorithm>

#include "src/tas/slow_path.h"
#include "src/tas/steering.h"
#include "src/tcp/seq.h"
#include "src/trace/latency.h"

namespace tas {
namespace {

uint32_t NowUs(Simulator* sim) { return static_cast<uint32_t>(sim->Now() / kNsPerUs); }

}  // namespace

FastPathCore::FastPathCore(TasService* service, Core* cpu, int index)
    : service_(service), cpu_(cpu), index_(index) {}

void FastPathCore::EnqueueFlowTx(FlowId flow_id) {
  work_.push_back(WorkItem{WorkItem::Type::kFlowTx, flow_id, service_->sim()->Now()});
  work_hw_ = std::max(work_hw_, work_.size());
  MaybeRun();
}

void FastPathCore::EnqueueWindowUpdate(FlowId flow_id) {
  work_.push_back(WorkItem{WorkItem::Type::kWindowUpdate, flow_id, service_->sim()->Now()});
  work_hw_ = std::max(work_hw_, work_.size());
  MaybeRun();
}

void FastPathCore::NotifyRx() { MaybeRun(); }

bool FastPathCore::HasWork() const {
  return !service_->nic()->RxEmpty(index_) || !work_.empty();
}

void FastPathCore::MaybeRun() {
  if (busy_ || !HasWork()) {
    return;
  }
  block_timer_.Cancel();
  if (blocked_) {
    // Blocked cores are woken via kernel notification (eventfd): pay the
    // wake latency before the polling loop resumes (paper §3.4).
    blocked_ = false;
    busy_ = true;
    service_->sim()->After(service_->config().wake_latency, [this] {
      busy_ = false;
      MaybeRun();
    });
    return;
  }
  RunOne();
}

void FastPathCore::RunOne() {
  Simulator* sim = service_->sim();
  const StackCostModel& costs = *service_->config().costs;
  const size_t budget =
      static_cast<size_t>(std::max(1, service_->config().rx_batch_size));

  // Gather a burst: NIC RX has priority, queued TX/command work fills the
  // remaining budget. Each item is charged individually — the core
  // serializes charges, so per-item completion times match serial dispatch
  // exactly — but the whole batch retires with ONE aggregated simulator
  // event instead of one per item (paper §3.1: DPDK-style batching).
  batch_rx_.resize(budget);
  const size_t nrx = service_->nic()->PopRxBurst(index_, batch_rx_.data(), budget);
  batch_rx_.resize(nrx);
  batch_dispatch_ = sim->Now();
  TimeNs done = 0;
  for (const PacketPtr& pkt : batch_rx_) {
    const uint64_t tcp_cycles =
        costs.rx_tcp + service_->ExtraCacheCyclesPerPacket() +
        static_cast<uint64_t>(costs.copy_cycles_per_byte *
                              static_cast<double>(pkt->payload.size()));
    cpu_->Charge(CpuModule::kDriver, costs.rx_driver);
    done = cpu_->Charge(CpuModule::kTcp, tcp_cycles);
  }

  batch_work_.clear();
  while (nrx + batch_work_.size() < budget && !work_.empty()) {
    const WorkItem item = work_.front();
    work_.pop_front();
    uint64_t tcp_cycles = 0;
    if (item.type == WorkItem::Type::kFlowTx) {
      Flow* flow = service_->flow_by_id(item.flow);
      uint64_t len = 0;
      if (flow != nullptr) {
        len = std::min<uint64_t>(flow->TxAvailable(), flow->mss);
      }
      tcp_cycles = costs.tx_tcp + service_->ExtraCacheCyclesPerPacket() +
                   static_cast<uint64_t>(costs.copy_cycles_per_byte * static_cast<double>(len));
      cpu_->Charge(CpuModule::kDriver, costs.tx_driver);
    } else {
      tcp_cycles = costs.tx_ack_cycles;  // Pure window-update ACK.
    }
    done = cpu_->Charge(CpuModule::kTcp, tcp_cycles);
    batch_work_.push_back(item);
  }

  if (nrx == 0 && batch_work_.empty()) {
    // No work: arm the blocking timer.
    idle_since_ = sim->Now();
    if (service_->config().dynamic_cores) {
      block_timer_.Cancel();
      block_timer_ = sim->After(service_->config().block_timeout, [this] {
        if (!busy_ && !HasWork()) {
          blocked_ = true;
        }
      });
    }
    return;
  }

  ++batches_;
  batch_items_ += nrx + batch_work_.size();
  rx_occupancy_[nrx == 0 ? 0
                : nrx <= 2 ? nrx
                : nrx <= 4 ? 3
                : nrx <= 8 ? 4
                           : 5]++;
  busy_ = true;
  sim->At(done, [this] { CloseBatch(); });
}

void FastPathCore::CloseBatch() {
  // busy_ stays true while the batch retires: nested MaybeRun calls from
  // processing (HandleAck -> ScheduleFlowTx -> EnqueueFlowTx) must not
  // re-enter RunOne and clobber the batch buffers. Work enqueued here lands
  // in work_ and is gathered by the next dispatch at this same timestamp.
  // RX-before-TX priority holds within the batch: packets were gathered
  // first and are processed first.
  const uint16_t num_ctx = service_->num_contexts();
  for (uint16_t c = 0; c < num_ctx; ++c) {
    service_->context(c)->BeginNotifyDefer();
  }
  const uint64_t retiring = batch_rx_.size() + batch_work_.size();
  in_batch_ = true;
  for (PacketPtr& pkt : batch_rx_) {
    ProcessPacket(std::move(pkt));
  }
  batch_rx_.clear();
  for (const WorkItem& item : batch_work_) {
    if (item.type == WorkItem::Type::kFlowTx) {
      ProcessFlowTx(item.flow, item.enqueued_at);
    } else {
      SendWindowUpdate(item.flow, item.enqueued_at);
    }
  }
  batch_work_.clear();
  in_batch_ = false;
  if (!batch_tx_.empty()) {
    service_->nic()->TransmitBurst(batch_tx_.data(), batch_tx_.size());
    batch_tx_.clear();
  }
  // One doorbell per context per batch (libTAS queue-doorbell coalescing).
  for (uint16_t c = 0; c < num_ctx; ++c) {
    service_->context(c)->EndNotifyDefer();
  }
  items_processed_ += retiring;
  busy_ = false;
  // Batch retirement is the quiesce clock tick: draining flow groups whose
  // source is this core may now be ready to flip.
  service_->steering()->OnCoreProgress(index_);
  MaybeRun();
}

void FastPathCore::ProcessPacket(PacketPtr pkt) {
  const FlowKey key{pkt->tcp.dst_port, pkt->ip.src, pkt->tcp.src_port};
  const FlowId id = service_->LookupFlowId(key);
  Flow* flow = id == kInvalidFlow ? nullptr : service_->flow_by_id(id);

  constexpr uint8_t kExceptionFlags = TcpFlags::kSyn | TcpFlags::kFin | TcpFlags::kRst;
  if (flow == nullptr || (pkt->tcp.flags & kExceptionFlags) != 0 ||
      !flow->FastPathEligible()) {
    service_->mutable_stats().exceptions++;
    if (LatencyTracer* lt = LatencyTracer::Current()) {
      // The exception path leaves the measured pipeline (and the packet may
      // come back via InjectPacket); close the record and untrack the packet
      // so later stamps don't count as stale.
      lt->Abandon(pkt->lat_id);
      pkt->lat_id = 0;
    }
    service_->slow_path()->EnqueueException(std::move(pkt));
    return;
  }

  service_->mutable_stats().fastpath_rx_packets++;
  if (service_->CoreForFlow(*flow) != index_) {
    service_->mutable_stats().cross_core_packets++;
  }
  FastPathRx(id, *flow, *pkt);
  if (LatencyTracer* lt = LatencyTracer::Current()) {
    // End of the journey: RX processing (and payload delivery to the app
    // context) completes at the batch horizon.
    lt->Finish(pkt->lat_id, LatencyStage::kFpRx, service_->sim()->Now());
  }
}

void FastPathCore::FastPathRx(FlowId flow_id, Flow& flow, const Packet& pkt) {
  if (pkt.tcp.has_timestamps) {
    flow.ts_echo = pkt.tcp.ts_val;
  }
  const bool had_payload = !pkt.payload.empty();
  if (had_payload) {
    HandlePayload(flow_id, flow, pkt);
  }
  if (pkt.tcp.ack_flag()) {
    HandleAck(flow_id, flow, pkt);
  }
  if (had_payload) {
    // Fast path ACKs every received data packet (paper §3.1: important for
    // security, ECN feedback, and RTT timestamps).
    SendAck(flow_id, flow, pkt.ip.ecn == Ecn::kCe);
  }
}

uint32_t FastPathCore::HandlePayload(FlowId flow_id, Flow& flow, const Packet& pkt) {
  FlowState& fs = flow.fs;
  const uint32_t seq = pkt.tcp.seq;
  const uint32_t len = static_cast<uint32_t>(pkt.payload.size());
  TasStats& stats = service_->mutable_stats();
  FlowTracer& trace = service_->flow_trace();
  const TimeNs now = service_->sim()->Now();

  if (seq == fs.ack) {
    // Common case: in-order arrival.
    if (len > flow.RxFree()) {
      // Payload buffer full: drop; TCP flow control makes this rare.
      stats.rx_buffer_drops++;
      trace.Record(now, flow_id, FlowEventType::kRxBufferDrop, seq, len);
      return 0;
    }
    const uint32_t old_ack = fs.ack;
    flow.CopyIntoRx(seq, pkt.payload.data(), len);
    fs.ack += len;
    fs.rx_head += len;
    // Did the new data close the gap to the tracked out-of-order interval?
    if (fs.ooo_len > 0 && SeqLe(fs.ooo_start, fs.ack)) {
      const uint32_t ooo_end = fs.ooo_start + fs.ooo_len;
      if (SeqGt(ooo_end, fs.ack)) {
        const uint32_t extra = ooo_end - fs.ack;
        fs.ack += extra;
        fs.rx_head += extra;
      }
      fs.ooo_len = 0;
      fs.ooo_start = 0;
    }
    const uint32_t advanced = fs.ack - old_ack;
    trace.Record(now, flow_id, FlowEventType::kDataRx, seq, len, advanced);
    service_->context(fs.context)->PushEvent(
        AppEvent{AppEventType::kRxData, fs.opaque, advanced});
    return advanced;
  }

  if (SeqGt(seq, fs.ack)) {
    // Out-of-order arrival: exception handled on the fast path (§3.1).
    if (service_->config().ooo_mode == OooMode::kGoBackN) {
      stats.ooo_dropped++;
      trace.Record(now, flow_id, FlowEventType::kOooDrop, seq, len);
      return 0;
    }
    const uint32_t end = seq + len;
    if (end - fs.ack > flow.RxFree()) {
      stats.ooo_dropped++;  // Does not fit in the receive buffer.
      trace.Record(now, flow_id, FlowEventType::kOooDrop, seq, len);
      return 0;
    }
    if (fs.ooo_len == 0) {
      fs.ooo_start = seq;
      fs.ooo_len = len;
      flow.CopyIntoRx(seq, pkt.payload.data(), len);
      stats.ooo_accepted++;
      trace.Record(now, flow_id, FlowEventType::kOooAccept, seq, len, fs.ooo_len);
    } else {
      // Copy out of the packed struct: a ternary over the raw field yields a
      // misaligned lvalue.
      const uint32_t ooo_start = fs.ooo_start;
      const uint32_t cur_end = ooo_start + fs.ooo_len;
      // Same-interval rule: overlap or abut only.
      if (SeqLe(seq, cur_end) && SeqGe(end, ooo_start)) {
        const uint32_t new_start = SeqLt(seq, ooo_start) ? seq : ooo_start;
        const uint32_t new_end = SeqGt(end, cur_end) ? end : cur_end;
        fs.ooo_start = new_start;
        fs.ooo_len = new_end - new_start;
        flow.CopyIntoRx(seq, pkt.payload.data(), len);
        stats.ooo_accepted++;
        trace.Record(now, flow_id, FlowEventType::kOooAccept, seq, len, fs.ooo_len);
      } else {
        stats.ooo_dropped++;
        trace.Record(now, flow_id, FlowEventType::kOooDrop, seq, len);
      }
    }
    return 0;  // The ACK we send restates fs.ack -> duplicate ACK at sender.
  }

  // Old duplicate; re-ACK.
  trace.Record(now, flow_id, FlowEventType::kDataRx, seq, len, 0);
  return 0;
}

void FastPathCore::HandleAck(FlowId flow_id, Flow& flow, const Packet& pkt) {
  FlowState& fs = flow.fs;
  FlowTracer& trace = service_->flow_trace();
  const TimeNs now = service_->sim()->Now();
  SetPeerWindowBytes(fs, static_cast<uint64_t>(pkt.tcp.window) << flow.peer_wscale);

  // Valid cumulative ACKs fall within the app-written region (tx_tail,
  // tx_head]. After a retransmission reset (tx_sent rewound to 0) the peer
  // may legitimately ack bytes beyond tx_tail + tx_sent from segments sent
  // before the reset.
  const uint32_t acked = pkt.tcp.ack - fs.tx_tail;
  if (acked > 0 && acked <= flow.TxQueued()) {
    fs.tx_tail += acked;
    fs.tx_sent = acked >= fs.tx_sent ? 0 : fs.tx_sent - acked;
    if (SeqLt(fs.seq, fs.tx_tail)) {
      fs.seq = fs.tx_tail;  // Never send bytes already acknowledged.
    }
    fs.cnt_ackb += acked;
    if (pkt.tcp.ece()) {
      fs.cnt_ecnb += acked;
    }
    fs.dupack_cnt = 0;
    if (pkt.tcp.has_timestamps && pkt.tcp.ts_ecr != 0) {
      const uint32_t sample_us = NowUs(service_->sim()) - pkt.tcp.ts_ecr;
      if (sample_us < 10'000'000) {
        fs.rtt_est = fs.rtt_est == 0 ? sample_us : fs.rtt_est - fs.rtt_est / 8 + sample_us / 8;
      }
    }
    trace.Record(now, flow_id, FlowEventType::kAckRx, pkt.tcp.ack, acked,
                 pkt.tcp.ece() ? 1 : 0);
    service_->context(fs.context)->PushEvent(
        AppEvent{AppEventType::kTxDone, fs.opaque, acked});
    service_->MarkFlowDirty(flow_id);
    if (flow.TxAvailable() > 0) {
      service_->ScheduleFlowTx(flow_id, flow.next_tx_time);
    }
    return;
  }

  if (acked == 0 && (fs.tx_sent > 0) && pkt.payload.empty()) {
    // Duplicate ACK. Three trigger fast recovery: reset the sender state as
    // if the unacked segments had not been sent (paper §3.1, exception 1).
    trace.Record(now, flow_id, FlowEventType::kDupAck, fs.dupack_cnt + 1u);
    if (++fs.dupack_cnt >= 3) {
      fs.dupack_cnt = 0;
      if (fs.cnt_frexmits < 0xFF) {
        fs.cnt_frexmits++;
      }
      service_->mutable_stats().fast_retransmits++;
      trace.Record(now, flow_id, FlowEventType::kFastRetransmit, fs.tx_tail);
      fs.seq = fs.tx_tail;
      fs.tx_sent = 0;
      service_->MarkFlowDirty(flow_id);
      service_->ScheduleFlowTx(flow_id, 0);
    }
  }
}

void FastPathCore::SendAck(FlowId flow_id, Flow& flow, bool ecn_echo, TimeNs enqueued_at) {
  FlowState& fs = flow.fs;
  uint8_t flags = TcpFlags::kAck;
  if (ecn_echo) {
    flags |= TcpFlags::kEce;
  }
  auto ack = MakeTcpPacket(service_->local_ip(), fs.local_port, fs.peer_ip, fs.peer_port,
                           fs.seq, fs.ack, flags);
  ack->tcp.window = static_cast<uint16_t>(
      std::min<uint32_t>(flow.RxFree() >> service_->config().window_scale, 0xFFFF));
  ack->tcp.has_timestamps = true;
  ack->tcp.ts_val = NowUs(service_->sim());
  ack->tcp.ts_ecr = flow.ts_echo;
  ack->enqueued_at = service_->sim()->Now();
  OpenTxLatencyRecord(ack.get(), enqueued_at);
  service_->mutable_stats().fastpath_acks_sent++;
  service_->flow_trace().Record(service_->sim()->Now(), flow_id, FlowEventType::kAckTx,
                                fs.ack, ecn_echo ? 1 : 0);
  EmitPacket(std::move(ack));
}

void FastPathCore::OpenTxLatencyRecord(Packet* pkt, TimeNs enqueued_at) {
  LatencyTracer* lt = LatencyTracer::Current();
  if (lt == nullptr) {
    return;
  }
  const TimeNs now = service_->sim()->Now();
  if (enqueued_at == kNoEnqueue) {
    // RX-triggered (ACKs): born at the batch horizon, no queue wait.
    pkt->lat_id = lt->Begin(now);
    return;
  }
  // Work-queue origin: wait in work_ until the gather instant is ctx-queue
  // time; gather -> batch horizon is fast-path TX service.
  const uint64_t id = lt->Begin(enqueued_at);
  lt->Stamp(id, LatencyStage::kCtxQueue, std::max(enqueued_at, batch_dispatch_));
  lt->Stamp(id, LatencyStage::kFpTx, now);
  pkt->lat_id = id;
}

void FastPathCore::EmitPacket(PacketPtr pkt) {
  if (in_batch_) {
    batch_tx_.push_back(std::move(pkt));
  } else {
    service_->nic()->Transmit(std::move(pkt));
  }
}

PacketPtr FastPathCore::BuildDataPacket(Flow& flow, uint32_t wire_seq, uint32_t len) {
  FlowState& fs = flow.fs;
  auto pkt = MakeTcpPacket(service_->local_ip(), fs.local_port, fs.peer_ip, fs.peer_port,
                           wire_seq, fs.ack, TcpFlags::kAck | TcpFlags::kPsh);
  // Fill the payload in place: the pooled packet's buffer retains capacity,
  // so this resize allocates nothing in steady state.
  pkt->payload.resize(len);
  flow.CopyFromTx(wire_seq, pkt->payload.data(), len);
  pkt->ip.ecn = Ecn::kEct0;
  pkt->tcp.window = static_cast<uint16_t>(
      std::min<uint32_t>(flow.RxFree() >> service_->config().window_scale, 0xFFFF));
  pkt->tcp.has_timestamps = true;
  pkt->tcp.ts_val = NowUs(service_->sim());
  pkt->tcp.ts_ecr = flow.ts_echo;
  pkt->enqueued_at = service_->sim()->Now();
  return pkt;
}

void FastPathCore::ProcessFlowTx(FlowId flow_id, TimeNs enqueued_at) {
  Flow* flow = service_->flow_by_id(flow_id);
  if (flow == nullptr) {
    return;
  }
  flow->tx_pending = false;
  if (!flow->FastPathEligible()) {
    return;
  }
  FlowState& fs = flow->fs;
  const uint32_t avail = flow->TxAvailable();
  if (avail == 0) {
    return;
  }
  const uint64_t peer_window = PeerWindowBytes(fs);
  uint64_t allow = peer_window > fs.tx_sent ? peer_window - fs.tx_sent : 0;
  if (flow->cc_window > 0) {
    // Window-mode enforcement: in-flight bytes bounded by the slow path's
    // congestion window.
    const uint64_t cc_allow =
        flow->cc_window > fs.tx_sent ? flow->cc_window - fs.tx_sent : 0;
    allow = std::min(allow, cc_allow);
  }
  const uint32_t len =
      static_cast<uint32_t>(std::min<uint64_t>({avail, flow->mss, allow}));
  if (len == 0) {
    return;  // Window full; the next ACK re-schedules us.
  }

  // Rate enforcement: the per-flow bucket must hold credit for the segment.
  const TimeNs now = service_->sim()->Now();
  const double burst = 2.0 * flow->mss;
  const double tokens = flow->RefillTokens(now, std::max<double>(burst, len));
  if (tokens < len) {
    // Not enough credit: retry when the bucket refills.
    const TimeNs wait =
        static_cast<TimeNs>((static_cast<double>(len) - tokens) * 8e9 / flow->rate_bps) + 1;
    flow->next_tx_time = now + wait;
    service_->ScheduleFlowTx(flow_id, flow->next_tx_time);
    return;
  }
  flow->tx_tokens -= len;

  const uint32_t wire_seq = fs.seq;
  auto pkt = BuildDataPacket(*flow, wire_seq, len);
  OpenTxLatencyRecord(pkt.get(), enqueued_at);
  service_->mutable_stats().fastpath_tx_packets++;
  EmitPacket(std::move(pkt));
  fs.seq += len;
  fs.tx_sent += len;
  service_->flow_trace().Record(now, flow_id, FlowEventType::kDataTx, wire_seq, len,
                                fs.tx_sent);
  service_->MarkFlowDirty(flow_id);
  flow->next_tx_time = now;
  if (flow->TxAvailable() > 0) {
    service_->ScheduleFlowTx(flow_id, now);
  }
}

void FastPathCore::SendWindowUpdate(FlowId flow_id, TimeNs enqueued_at) {
  Flow* flow = service_->flow_by_id(flow_id);
  if (flow == nullptr || !flow->FastPathEligible()) {
    return;
  }
  SendAck(flow_id, *flow, false, enqueued_at);
}

}  // namespace tas
