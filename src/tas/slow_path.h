// The TAS slow path (paper §3.2): connection control (full TCP handshake and
// teardown), the congestion-control policy loop, retransmission timeouts,
// the TCP-stack/context registry, and the workload-proportionality core
// monitor (§3.4). Runs on its own (partially used) core; the fast path
// forwards everything non-common-case here as exceptions.
#ifndef SRC_TAS_SLOW_PATH_H_
#define SRC_TAS_SLOW_PATH_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/tas/flow.h"
#include "src/tas/service.h"

namespace tas {

class SlowPath {
 public:
  SlowPath(TasService* service, Core* cpu);
  ~SlowPath();

  // Starts the periodic congestion-control loop and the core monitor.
  void Start();

  Core* cpu() { return cpu_; }

  // --- Fast path hand-off ----------------------------------------------------
  void EnqueueException(PacketPtr pkt);

  // Exception-queue depth right now, and the deepest it has ever been. The
  // watchdog's slow-path overload SLO reads the depth each check; the
  // high-water mark lands in diagnostic bundles.
  size_t exception_depth() const { return exceptions_.size(); }
  uint64_t exception_depth_hw() const { return exception_depth_hw_; }

  // --- Commands from libTAS (via TasService) ---------------------------------
  void CmdListen(uint16_t port, uint64_t opaque, uint16_t context);
  void CmdConnect(FlowId flow_id);
  void CmdClose(FlowId flow_id);

  uint64_t control_iterations() const { return control_iterations_; }

 private:
  struct Listener {
    uint64_t opaque = 0;
    uint16_t context = 0;
  };

  void MaybeProcess();
  void HandleException(PacketPtr pkt);
  void HandleSyn(const Packet& pkt);
  // Returns true if the packet should be re-injected into the fast path
  // (it carried payload and the flow is now established).
  bool HandleFlowPacket(FlowId flow_id, Flow& flow, const Packet& pkt);
  void HandleFin(FlowId flow_id, Flow& flow, const Packet& pkt);

  void SendSyn(Flow& flow);
  void SendSynAck(Flow& flow);
  void SendFin(Flow& flow);
  void SendControlAck(Flow& flow);
  void Establish(FlowId flow_id, Flow& flow, bool from_listener);
  // Half-close notification (kConnFin): the peer's receive direction ended
  // but ours may keep transmitting. Terminal kConnClosed still follows from
  // NotifyClosed when the flow is released.
  void NotifyRemoteClosed(Flow& flow);
  void NotifyClosed(Flow& flow);
  // Delivers in-order payload that reached the slow path after our FIN
  // (kFinWait1/kFinWait2: the peer half-closed side may still stream data).
  void DeliverPayload(FlowId flow_id, Flow& flow, const Packet& pkt);
  void ReleaseFlow(FlowId flow_id, Flow& flow);
  void AddPending(FlowId flow_id, Flow& flow);
  void TrySendFin(FlowId flow_id, Flow& flow);

  void ControlLoop();
  void RunCongestionControl(FlowId flow_id, Flow& flow);
  void ScanPending();
  void MonitorCores();

  // Records a kConnState flow event for the flow's current state.
  void TraceState(FlowId flow_id, const Flow& flow);

  TasService* service_;
  Core* cpu_;
  std::deque<PacketPtr> exceptions_;
  uint64_t exception_depth_hw_ = 0;
  bool busy_ = false;
  std::unordered_map<uint16_t, Listener> listeners_;
  std::vector<FlowId> pending_;  // Flows in handshake or teardown.
  std::unique_ptr<PeriodicTask> cc_task_;
  std::unique_ptr<PeriodicTask> monitor_task_;
  std::vector<TimeNs> busy_snapshot_;
  uint64_t control_iterations_ = 0;
};

}  // namespace tas

#endif  // SRC_TAS_SLOW_PATH_H_
