// Runtime flow record, split hot/cold for million-flow cache residency
// (paper §3.1, Table 3): `Flow` is the compact record the fast path touches
// per packet — the packed FlowState, negotiated parameters, and transmit
// pacing — while `FlowCold` holds everything only the slow path or libTAS
// setup/teardown touches: payload buffer storage, the congestion-control
// instance, and the connection-FSM bookkeeping. FlowSlab stores the two in
// parallel arrays and wires each Flow to its side record; a standalone Flow
// (tests, scratch use) lazily owns one instead.
#ifndef SRC_TAS_FLOW_H_
#define SRC_TAS_FLOW_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "src/cc/cc.h"
#include "src/cc/dctcp_window.h"
#include "src/tas/flow_state.h"
#include "src/util/time.h"

namespace tas {

// Slow-path connection FSM (the fast path only touches kEstablished flows;
// packets for flows in any other state are exceptions, paper §3.1).
enum class ConnState : uint8_t {
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,   // Our FIN sent, not acked.
  kFinWait2,   // Our FIN acked, waiting for peer FIN.
  kCloseWait,  // Peer FIN consumed, app has not closed yet.
  kLastAck,    // Peer closed first, our FIN sent.
  kTimeWait,
  kFreed,
};

// Cold slow-path side record. Nothing here is read on the fast-path
// per-packet path; keeping it out of Flow keeps the hot array dense.
struct FlowCold {
  // Payload buffer storage. In the real system these arrays live in app
  // shared memory; fs.rx_base/tx_base point at them.
  std::vector<uint8_t> rx_mem;
  std::vector<uint8_t> tx_mem;

  std::unique_ptr<RateCc> cc;     // Rate mode policy...
  std::unique_ptr<WindowCc> wcc;  // ...or window mode policy.
  uint32_t last_seq_sampled = 0;  // RTO detection: seq unchanged across
  int stalled_intervals = 0;      // control intervals with data outstanding.
  bool fin_received = false;      // Peer FIN consumed (ack covers it).
  bool fin_sent = false;
  bool fin_acked = false;
  bool app_closed = false;        // App requested close.
  bool fin_event_sent = false;    // kConnFin (half-close) pushed to the app.
  bool closed_event_sent = false;
  bool in_pending = false;        // On the handshake/teardown scan list.
  int ctrl_retries = 0;           // Handshake / FIN retransmission count.
  TimeNs last_ctrl_send = 0;
  TimeNs timewait_start = 0;
  TimeNs established_at = 0;

  // Returns to freshly-constructed state while retaining the payload buffer
  // capacity, so slab slot recycling stays allocation-free.
  void Reset();
};

struct Flow {
  FlowState fs;

  // Negotiated TCP parameters (slow path writes once at setup).
  uint16_t mss = 1448;
  uint8_t peer_wscale = 0;
  uint32_t ts_echo = 0;  // Peer ts_val to echo (fast path updates).

  // --- Fast-path transmit scheduling ---------------------------------------
  // Rate enforcement via the per-flow bucket (paper §3.1): credit accrues at
  // rate_bps while the flow is idle, capped at a small burst, so an RPC
  // response is never delayed behind a stale pacing gap.
  double rate_bps = 10e6;       // Enforced rate (slow path sets).
  uint64_t cc_window = 0;       // Window-mode limit; 0 = rate mode.
  double tx_tokens = 0;         // Bucket fill, in bytes.
  TimeNs tokens_updated = 0;
  TimeNs next_tx_time = 0;      // Earliest next segment (bucket refill time).
  bool tx_pending = false;      // Work queued or pacing timer armed.
  bool in_dirty = false;        // Queued for the next CC iteration.
  ConnState cstate = ConnState::kSynSent;

  // Refreshes the bucket to `now` and returns the available byte credit.
  double RefillTokens(TimeNs now, double burst_bytes) {
    const double delta = static_cast<double>(now - tokens_updated);
    tx_tokens = std::min(burst_bytes, tx_tokens + rate_bps / 8e9 * delta);
    tokens_updated = now;
    return tx_tokens;
  }

  // --- Cold side record -----------------------------------------------------
  // Slab-resident flows are bound to their chunk's parallel FlowCold array;
  // a standalone Flow allocates an owned record on first access.
  FlowCold& cold() { return cold_ptr_ != nullptr ? *cold_ptr_ : EnsureCold(); }
  const FlowCold& cold() const { return const_cast<Flow*>(this)->cold(); }
  void BindCold(FlowCold* cold_record) { cold_ptr_ = cold_record; }

  // kCloseWait is fast-path eligible too: after the peer's FIN the local
  // direction stays open (half-close), and the remaining transmit stream is
  // exactly the established-flow common case (data out, ACKs in).
  bool FastPathEligible() const {
    return cstate == ConnState::kEstablished || cstate == ConnState::kCloseWait;
  }

  // Returns the record (hot fields and the bound cold record) to
  // freshly-constructed state; allocation-free for slab-resident flows.
  void Reset();

  // --- Buffer arithmetic (all positions are free-running wire sequences) ---
  uint32_t RxUsed() const { return fs.rx_head - fs.rx_tail; }
  uint32_t RxFree() const { return fs.rx_size - RxUsed(); }
  uint32_t TxQueued() const { return fs.tx_head - fs.tx_tail; }
  // Bytes written by the app but not yet sent.
  uint32_t TxAvailable() const { return fs.tx_head - (fs.tx_tail + fs.tx_sent); }

  void CopyIntoRx(uint32_t wire_pos, const uint8_t* src, uint32_t len);
  void CopyFromTx(uint32_t wire_pos, uint8_t* dst, uint32_t len) const;
  // libTAS side: append payload at tx_head / read payload at rx_tail.
  uint32_t AppWriteTx(const uint8_t* src, uint32_t len);
  uint32_t AppReadRx(uint8_t* dst, uint32_t len);

 private:
  FlowCold& EnsureCold();

  FlowCold* cold_ptr_ = nullptr;          // Slab-bound side record, if any.
  std::unique_ptr<FlowCold> owned_cold_;  // Standalone-Flow fallback.
};

const char* ConnStateName(ConnState state);

}  // namespace tas

#endif  // SRC_TAS_FLOW_H_
