// SloWatchdog: declarative SLO evaluation over the flight recorder
// (DESIGN.md §15). One watchdog per armed TAS host, firing on the monitor
// cadence; each check measures every spec against deterministic sim state
// only — island-local latency/probe histograms (windowed via
// LogHistogram::DiffSince), TasStats deltas, slow-path queue depth, per-core
// busy-time deltas, or any registered metric — counts consecutive breaches
// (burn windows), and on a sustained breach hands a SloTrigger plus a
// context closure to the FlightRecorder for bundle serialization. Same seed
// => same measurements => same triggers at every sim_threads width.
#ifndef SRC_TAS_WATCHDOG_H_
#define SRC_TAS_WATCHDOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/trace/flight_recorder.h"
#include "src/util/stats.h"
#include "src/util/time.h"

namespace tas {

class PeriodicTask;
class TasService;

class SloWatchdog {
 public:
  // `recorder` is the process-wide FlightRecorder the service installed (or
  // found installed); the watchdog never owns it.
  SloWatchdog(TasService* service, FlightRecorder* recorder);
  ~SloWatchdog();

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  // Begins periodic checks (config.check_interval, or the service's
  // monitor_interval when 0). Idempotent.
  void Start();

  // Trigger attribution label ("h<i>" from the harness; defaults to
  // "ip<local-ip>"). Part of the deterministic bundle sort key.
  void set_source(std::string source) { source_ = std::move(source); }
  const std::string& source() const { return source_; }

  uint64_t checks() const { return checks_; }
  uint64_t breached_checks() const { return breached_checks_; }
  uint64_t triggers_fired() const { return triggers_fired_; }
  const std::vector<SloSpec>& slos() const { return specs_; }

  // One watchdog check, exposed for tests; normal operation runs it from the
  // periodic task.
  void Check();

  // The bundle "context" object for this host at the current sim time:
  // metrics snapshot (minus width-dependent entries), steering drain state,
  // flow-table occupancy, slow-path queue state, and the latency /
  // critical-path reports when those tracers are installed. Must run
  // single-threaded (serial run, or the epoch boundary).
  std::string ContextJson() const;

 private:
  struct SloState {
    SloSpec spec;
    int streak = 0;
    bool ever_triggered = false;
    TimeNs last_trigger = 0;
    // Windowed baselines, by kind (unused slots stay empty).
    LogHistogram prev_hist;          // e2e / probe-length cumulative snapshot.
    uint64_t prev_counter = 0;       // Retransmit total at the last check.
    std::vector<TimeNs> prev_busy;   // Per-core busy ns at the last check.
  };

  // Measures one spec over the window since its last check. Returns the
  // value compared against the threshold; *count is the evaluation-floor
  // quantity (samples / busy ns) checked against SloSpec::min_count.
  double Measure(SloState& state, TimeNs now, TimeNs window_ns, uint64_t* count);

  TasService* service_;
  FlightRecorder* recorder_;
  std::string source_;
  std::vector<SloSpec> specs_;   // The resolved spec set (config or defaults).
  std::vector<SloState> states_;  // states_[i].spec == specs_[i].
  std::unique_ptr<PeriodicTask> task_;
  TimeNs last_check_ = 0;
  uint64_t checks_ = 0;
  uint64_t breached_checks_ = 0;
  uint64_t triggers_fired_ = 0;
};

}  // namespace tas

#endif  // SRC_TAS_WATCHDOG_H_
