// One TAS fast-path core (paper §3.1): a linear packet-processing pipeline
// that polls its NIC RX queue and a work queue of transmit/command items,
// charges cycles on its simulated core, and blocks after an idle timeout
// (woken by NIC/queue notifications — the workload-proportionality
// mechanism of §3.4).
//
// Fast-path duties implemented here, straight from the paper:
//  * in-order receive: deposit payload into the per-flow RX buffer, advance
//    ack, notify the app context, generate an ACK (with ECN echo and
//    timestamps);
//  * drop when the payload buffer is full;
//  * track ONE out-of-order interval; accept only segments extending it;
//    other out-of-order arrivals are dropped and re-ACKed (triggering fast
//    retransmit at the peer);
//  * count duplicate ACKs and trigger fast recovery after three by rewinding
//    tx_sent (go-back-N resend), bumping cnt_frexmits for the slow path;
//  * transmit: segment payload from the TX buffer at the slow-path-set rate
//    (token-less pacing: one segment per rate-spaced slot), reclaim the
//    buffer on ACKs, and hand flow statistics to the slow path;
//  * forward everything else (SYN/FIN/RST, unknown flows, non-established
//    flows) to the slow path as exceptions.
#ifndef SRC_TAS_FAST_PATH_H_
#define SRC_TAS_FAST_PATH_H_

#include <array>
#include <deque>
#include <vector>

#include "src/tas/flow.h"
#include "src/tas/service.h"

namespace tas {

class FastPathCore {
 public:
  FastPathCore(TasService* service, Core* cpu, int index);

  int index() const { return index_; }
  Core* cpu() { return cpu_; }
  bool blocked() const { return blocked_; }

  // Work injection.
  void EnqueueFlowTx(FlowId flow_id);
  void EnqueueWindowUpdate(FlowId flow_id);
  void NotifyRx();  // NIC enqueued a packet on this core's queue.

  // Kicks the service loop (idempotent).
  void MaybeRun();

  // Slow-path hand-back: process a packet that raced establishment. The CPU
  // cost was already charged by the slow path's exception handling.
  void InjectPacket(PacketPtr pkt) { ProcessPacket(std::move(pkt)); }

  // Batch observability (aggregated across cores by TasService's metrics).
  // RX occupancy histogram buckets: 0, 1, 2, 3-4, 5-8, 9+ packets gathered.
  static constexpr size_t kOccBuckets = 6;
  const std::array<uint64_t, kOccBuckets>& rx_occupancy() const { return rx_occupancy_; }
  uint64_t batches() const { return batches_; }
  uint64_t batch_items() const { return batch_items_; }
  // Items RETIRED (batch fully processed), as opposed to gathered: the
  // monotonic progress clock flow-group quiesce drains compare against.
  uint64_t items_processed() const { return items_processed_; }
  // Work currently in flight on this core: queued + gathered-but-unretired.
  // A flow group whose source core shows zero here can migrate immediately.
  uint64_t queued_items() const {
    return work_.size() + batch_rx_.size() + batch_work_.size();
  }
  // High-water occupancy of the TX/command work queue (latency anatomy).
  size_t work_queue_hw() const { return work_hw_; }

 private:
  struct WorkItem {
    enum class Type { kFlowTx, kWindowUpdate } type;
    FlowId flow = kInvalidFlow;
    TimeNs enqueued_at = 0;  // When the item entered work_ (ctx-queue stage).
  };

  bool HasWork() const;
  void RunOne();
  void CloseBatch();
  void ProcessPacket(PacketPtr pkt);
  // enqueued_at: when the originating work item entered work_ (charges the
  // ctx-queue latency stage); kNoEnqueue for packets not born from the work
  // queue (RX-triggered ACKs).
  static constexpr TimeNs kNoEnqueue = -1;
  void ProcessFlowTx(FlowId flow_id, TimeNs enqueued_at);
  void SendWindowUpdate(FlowId flow_id, TimeNs enqueued_at);
  // Routes outgoing packets: collected for the batch-close TransmitBurst
  // while a batch retires, transmitted directly otherwise.
  void EmitPacket(PacketPtr pkt);

  // Receive-side helpers.
  void FastPathRx(FlowId flow_id, Flow& flow, const Packet& pkt);
  void HandleAck(FlowId flow_id, Flow& flow, const Packet& pkt);
  uint32_t HandlePayload(FlowId flow_id, Flow& flow, const Packet& pkt);
  void SendAck(FlowId flow_id, Flow& flow, bool ecn_echo, TimeNs enqueued_at = kNoEnqueue);
  PacketPtr BuildDataPacket(Flow& flow, uint32_t wire_seq, uint32_t len);
  // Opens a latency record for an outgoing packet and charges the ctx-queue
  // and fp-tx stages (no-op when tracing is off).
  void OpenTxLatencyRecord(Packet* pkt, TimeNs enqueued_at);

  TasService* service_;
  Core* cpu_;
  int index_;
  std::deque<WorkItem> work_;
  bool busy_ = false;
  bool blocked_ = false;
  TimeNs idle_since_ = 0;
  EventHandle block_timer_;

  // In-flight batch (gathered by RunOne, retired by CloseBatch). The buffers
  // keep their capacity across batches, so steady state allocates nothing.
  std::vector<PacketPtr> batch_rx_;
  std::vector<WorkItem> batch_work_;
  std::vector<PacketPtr> batch_tx_;
  bool in_batch_ = false;
  // Gather instant of the in-flight batch: the boundary between an item's
  // ctx-queue wait and its fast-path service time.
  TimeNs batch_dispatch_ = 0;
  std::array<uint64_t, kOccBuckets> rx_occupancy_{};
  uint64_t batches_ = 0;
  uint64_t batch_items_ = 0;
  uint64_t items_processed_ = 0;
  size_t work_hw_ = 0;
};

}  // namespace tas

#endif  // SRC_TAS_FAST_PATH_H_
