// Flat flow-state storage: SwissTable-style group-probed 4-tuple hash table
// + dense slab of hot/cold-split Flow slots with generation-checked ids.
//
// The paper's capacity argument (§3.1, Table 3) is that per-flow state is
// small enough to keep huge flow counts cache-resident. At the million-flow
// scale the lookup structure itself becomes the bottleneck (FlexTOE,
// Laminar), so the table probes 16-byte control groups: one cache line of
// ctrl bytes answers "which of these 16 slots might hold the key" with a
// handful of 64-bit SWAR ops before any Entry is touched.
//
// FlowTable
//   Power-of-two capacity in 16-slot groups. Each ctrl byte is either
//   kEmptyByte (0x80), kDeletedByte (0xFE), or a 7-bit H2 fingerprint of the
//   key's hash (high bit clear). Lookups triangular-probe across groups —
//   match H2 within the group, confirm on the full key, stop at the first
//   group containing an empty byte.
//
//   Resizes are INCREMENTAL: a rehash allocates the new arrays and then
//   relocates a bounded number of old-table slots per Insert/Erase
//   (kRehashStrideSlots), so a 1M-entry resize never stalls the fast path
//   behind a multi-millisecond table rebuild. While a rehash is draining,
//   Find probes the new table first and falls back to the old one; migrated
//   old slots become deleted so old-table probe chains stay terminated.
//   Erase tombstones its slot; Insert reuses the first tombstone on its
//   probe path. When tombstones (not live entries) drive occupancy over the
//   7/8 bound, the rebuild keeps the same capacity (tombstone drift, counted
//   in stats().drift_rebuilds). Steady state — capacity stable, no rehash in
//   flight — performs zero allocations; bench/micro_alloc audits this, and
//   completed rehashes park their old arrays as spares so same-capacity
//   drift rebuilds reuse them instead of allocating.
//
// FlowSlab
//   Fixed 512-slot chunks so Flow addresses are stable across growth (the
//   fast path holds `Flow&` across calls and fs.rx_base points into the
//   flow's rx buffer). Each chunk stores the compact hot Flow records in one
//   contiguous array and their cold slow-path side records (FlowCold:
//   payload buffers, CC instances, teardown FSM bookkeeping) in a parallel
//   array, so the fast path's working set per flow is the hot struct only.
//   Slots are recycled through a free list; each slot carries a generation
//   that is bumped on Free, and FlowIds encode (generation << 20 | slot), so
//   a stale id held by the slow path's pending scan or an app resolves to
//   nullptr instead of a recycled flow.
#ifndef SRC_TAS_FLOW_TABLE_H_
#define SRC_TAS_FLOW_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/packet.h"
#include "src/tas/flow.h"
#include "src/tas/flow_state.h"
#include "src/util/stats.h"

namespace tas {

// FlowId bit layout. 20 bits of slot index (1M concurrent flows, the ROADMAP
// scale target) and 12 bits of generation. All valid ids differ from
// kInvalidFlow (~0) because the slab never reaches slot 0xFFFFF.
inline constexpr int kFlowSlotBits = 20;
inline constexpr uint32_t kFlowSlotMask = (1u << kFlowSlotBits) - 1;
inline constexpr uint32_t kFlowGenMask = (1u << (32 - kFlowSlotBits)) - 1;

inline uint32_t FlowSlotOf(FlowId id) { return id & kFlowSlotMask; }
inline uint32_t FlowGenOf(FlowId id) { return (id >> kFlowSlotBits) & kFlowGenMask; }
inline FlowId MakeFlowId(uint32_t slot, uint32_t generation) {
  return ((generation & kFlowGenMask) << kFlowSlotBits) | (slot & kFlowSlotMask);
}

// Probe / occupancy statistics the MetricRegistry exports (tas.flow_table.*).
// `probes` counts GROUPS examined (16 slots per step), not individual slots.
struct FlowTableStats {
  uint64_t lookups = 0;           // Find calls (hit or miss).
  uint64_t probes = 0;            // Total group-probe steps across lookups.
  uint64_t max_probe = 0;         // Longest single lookup, in groups.
  uint64_t rehashes = 0;          // Rebuilds started (growth + drift).
  uint64_t drift_rebuilds = 0;    // Same-capacity rebuilds (tombstone drift).
  uint64_t tombstones_reused = 0;
  uint64_t relocated = 0;         // Entries moved old table -> new table.
  uint64_t max_reloc_slots = 0;   // Largest single relocation step (slots).
  uint64_t forced_finishes = 0;   // Rehashes force-completed (should be 0).
};

class FlowTable {
 public:
  static constexpr size_t kGroupSize = 16;
  // Old-table slots scanned per Insert/Erase while a rehash is draining.
  // Sized so any rehash completes long before occupancy can trigger the
  // next one (capacity/kStride steps available vs >= capacity*7/16 ops).
  static constexpr size_t kRehashStrideSlots = 64;

  explicit FlowTable(size_t initial_capacity = 1024);

  // Returns the stored id, or kInvalidFlow. Records probe-length stats.
  FlowId Find(const FlowKey& key) const;
  // Inserts a new key (must not be present); reuses the first tombstone on
  // the probe path. Advances any in-flight rehash by one bounded step; may
  // start a rehash (the only allocating operation).
  void Insert(const FlowKey& key, FlowId id);
  // Marks the key's slot as a tombstone. Returns false if absent. Advances
  // any in-flight rehash by one bounded step.
  bool Erase(const FlowKey& key);

  // Live entries across both tables while a rehash drains.
  size_t size() const { return active_size_ + old_live_; }
  size_t capacity() const { return ctrl_.size(); }
  size_t tombstones() const { return tombstones_; }
  double LoadFactor() const {
    return ctrl_.empty() ? 0.0 : static_cast<double>(size()) / static_cast<double>(ctrl_.size());
  }
  const FlowTableStats& stats() const { return stats_; }
  double AvgProbeLength() const {
    return stats_.lookups == 0
               ? 0.0
               : static_cast<double>(stats_.probes) / static_cast<double>(stats_.lookups);
  }
  // Probe-length distribution (groups per Find); exported as p50/p99 gauges.
  const LogHistogram& probe_hist() const { return probe_hist_; }

  bool rehash_in_progress() const { return !old_ctrl_.empty(); }
  size_t rehash_remaining_slots() const {
    return old_ctrl_.empty() ? 0 : old_ctrl_.size() - rehash_pos_;
  }

 private:
  // Ctrl byte encoding (absl-style): full slots hold the 7-bit H2
  // fingerprint (high bit clear); specials have the high bit set and are
  // distinguished by low bits so SWAR masks stay exact (no false positives).
  static constexpr uint8_t kEmptyByte = 0x80;    // 0b1000'0000
  static constexpr uint8_t kDeletedByte = 0xFE;  // 0b1111'1110

  struct Entry {
    FlowKey key;
    FlowId id;
  };

  static bool IsFull(uint8_t c) { return (c & 0x80) == 0; }

  FlowId FindIn(const std::vector<uint8_t>& ctrl, const std::vector<Entry>& entries,
                const FlowKey& key, uint64_t hash, uint64_t* probe) const;
  // Places the key in the active table (no growth check; capacity is chosen
  // so relocation can never overflow it). Returns the slot index used.
  size_t PlaceInActive(const FlowKey& key, FlowId id, uint64_t hash, bool reuse_tombstones);
  // Begins an incremental rehash: active arrays become the draining old
  // table; fresh (or spare) arrays of `new_capacity` become active.
  void StartRehash(size_t new_capacity);
  // Scans up to `max_slots` old-table slots, migrating live entries into the
  // active table; retires the old table when the scan completes.
  void StepRehash(size_t max_slots);
  void FinishRehash();

  std::vector<uint8_t> ctrl_;        // Active table: ctrl bytes ...
  std::vector<Entry> entries_;       // ... and key/id slots.
  std::vector<uint8_t> old_ctrl_;    // Draining table (empty = no rehash).
  std::vector<Entry> old_entries_;
  std::vector<uint8_t> spare_ctrl_;  // Retired buffers kept for reuse.
  std::vector<Entry> spare_entries_;
  size_t rehash_pos_ = 0;            // Next old-table slot to scan.
  size_t active_size_ = 0;           // Live entries in the active table.
  size_t old_live_ = 0;              // Live entries still in the old table.
  size_t tombstones_ = 0;            // Deleted slots in the active table.
  mutable FlowTableStats stats_;
  mutable LogHistogram probe_hist_;
};

// Cold slow-path side record: everything a million cache-resident flows do
// NOT need per fast-path packet. Declared in flow.h; stored here in a
// parallel per-chunk array so hot Flow records stay contiguous.
class FlowSlab {
 public:
  static constexpr size_t kChunkSlots = 512;

  // Takes a slot from the free list (or appends one) and returns its current
  // id. The Flow in the slot is in freshly Reset() state.
  FlowId Allocate();
  // Resets the flow, bumps the slot generation (staling outstanding ids) and
  // recycles the slot. `id` must be live.
  void Free(FlowId id);

  // Generation-checked resolve: nullptr for stale or out-of-range ids.
  Flow* Get(FlowId id) {
    const uint32_t slot = FlowSlotOf(id);
    if (slot >= slot_count_) return nullptr;
    Chunk& c = ChunkOf(slot);
    const size_t i = slot % kChunkSlots;
    if (!c.live[i] || c.generation[i] != FlowGenOf(id)) return nullptr;
    return &c.flows[i];
  }
  const Flow* Get(FlowId id) const { return const_cast<FlowSlab*>(this)->Get(id); }

  // Iteration support for samplers / debug dumps.
  size_t slot_count() const { return slot_count_; }
  bool SlotLive(uint32_t slot) const {
    return slot < slot_count_ && ChunkOf(slot).live[slot % kChunkSlots] != 0;
  }
  Flow& SlotFlow(uint32_t slot) { return ChunkOf(slot).flows[slot % kChunkSlots]; }
  FlowId SlotId(uint32_t slot) const {
    return MakeFlowId(slot, ChunkOf(slot).generation[slot % kChunkSlots]);
  }

  size_t live() const { return live_; }
  size_t capacity_slots() const { return chunks_.size() * kChunkSlots; }

 private:
  // Hot Flow records and cold side records live in parallel arrays: the fast
  // path walks `flows` without pulling buffer vectors / CC state / teardown
  // bookkeeping into cache. Both arrays are sized once at chunk creation and
  // never move, so slot recycling stays allocation-free and Flow&/FlowCold&
  // stay stable for the lifetime of the slab.
  struct Chunk {
    Chunk();
    std::vector<Flow> flows;
    std::vector<FlowCold> cold;
    std::vector<uint32_t> generation;
    std::vector<uint8_t> live;
  };

  Chunk& ChunkOf(uint32_t slot) { return *chunks_[slot / kChunkSlots]; }
  const Chunk& ChunkOf(uint32_t slot) const { return *chunks_[slot / kChunkSlots]; }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<uint32_t> free_slots_;
  size_t slot_count_ = 0;
  size_t live_ = 0;
};

}  // namespace tas

#endif  // SRC_TAS_FLOW_TABLE_H_
