// Flat flow-state storage: open-addressing 4-tuple hash table + dense slab
// of inline Flow slots with generation-checked ids.
//
// The paper's capacity argument (§3.1, Table 3) is that per-flow state is
// small enough to keep tens of thousands of flows cache-resident. The
// original `unordered_map<FlowKey, FlowId>` over `vector<unique_ptr<Flow>>`
// costs three dependent pointer hops per packet (bucket node -> id ->
// heap-allocated Flow); the layout here costs two contiguous touches: a probe
// over a flat ctrl-byte/entry array, then an index into an inline Flow slot.
//
// FlowTable
//   Power-of-two capacity, triangular probing (i-th step advances by i, which
//   visits every slot exactly once when capacity is a power of two),
//   tombstone-marking erase with tombstone reuse on insert, rehash at 7/8
//   occupancy (live + tombstones). Steady state — capacity stable — performs
//   zero allocations; bench/micro_alloc audits this.
//
// FlowSlab
//   Fixed 512-slot chunks so Flow addresses are stable across growth (the
//   fast path holds `Flow&` across calls and fs.rx_base points into
//   flow->rx_mem). Slots are recycled through a free list; each slot carries
//   a generation that is bumped on Free, and FlowIds encode
//   (generation << 20 | slot), so a stale id held by the slow path's pending
//   scan or an app resolves to nullptr instead of a recycled flow.
#ifndef SRC_TAS_FLOW_TABLE_H_
#define SRC_TAS_FLOW_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/packet.h"
#include "src/tas/flow.h"
#include "src/tas/flow_state.h"

namespace tas {

// FlowId bit layout. 20 bits of slot index (1M concurrent flows, far beyond
// the paper's per-core capacity claims) and 12 bits of generation. All valid
// ids differ from kInvalidFlow (~0) because the slab never reaches slot
// 0xFFFFF.
inline constexpr int kFlowSlotBits = 20;
inline constexpr uint32_t kFlowSlotMask = (1u << kFlowSlotBits) - 1;
inline constexpr uint32_t kFlowGenMask = (1u << (32 - kFlowSlotBits)) - 1;

inline uint32_t FlowSlotOf(FlowId id) { return id & kFlowSlotMask; }
inline uint32_t FlowGenOf(FlowId id) { return (id >> kFlowSlotBits) & kFlowGenMask; }
inline FlowId MakeFlowId(uint32_t slot, uint32_t generation) {
  return ((generation & kFlowGenMask) << kFlowSlotBits) | (slot & kFlowSlotMask);
}

// Probe / occupancy statistics the MetricRegistry exports (tas.flow_table.*).
struct FlowTableStats {
  uint64_t lookups = 0;       // Find calls (hit or miss).
  uint64_t probes = 0;        // Total probe steps across all lookups.
  uint64_t max_probe = 0;     // Longest single lookup's probe length.
  uint64_t rehashes = 0;
  uint64_t tombstones_reused = 0;
};

class FlowTable {
 public:
  explicit FlowTable(size_t initial_capacity = 1024);

  // Returns the stored id, or kInvalidFlow. Records probe-length stats.
  FlowId Find(const FlowKey& key) const;
  // Inserts a new key (must not be present); reuses the first tombstone on
  // the probe path. May rehash (the only allocating operation).
  void Insert(const FlowKey& key, FlowId id);
  // Marks the key's slot as a tombstone. Returns false if absent.
  bool Erase(const FlowKey& key);

  size_t size() const { return size_; }
  size_t capacity() const { return ctrl_.size(); }
  size_t tombstones() const { return tombstones_; }
  double LoadFactor() const {
    return ctrl_.empty() ? 0.0 : static_cast<double>(size_) / static_cast<double>(ctrl_.size());
  }
  const FlowTableStats& stats() const { return stats_; }
  double AvgProbeLength() const {
    return stats_.lookups == 0
               ? 0.0
               : static_cast<double>(stats_.probes) / static_cast<double>(stats_.lookups);
  }

 private:
  enum Ctrl : uint8_t { kEmpty = 0, kTombstone = 1, kOccupied = 2 };
  struct Entry {
    FlowKey key;
    FlowId id;
  };

  size_t Mask() const { return ctrl_.size() - 1; }
  void Rehash(size_t new_capacity);

  std::vector<uint8_t> ctrl_;
  std::vector<Entry> entries_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
  mutable FlowTableStats stats_;
};

class FlowSlab {
 public:
  static constexpr size_t kChunkSlots = 512;

  // Takes a slot from the free list (or appends one) and returns its current
  // id. The Flow in the slot is in freshly Reset() state.
  FlowId Allocate();
  // Resets the flow, bumps the slot generation (staling outstanding ids) and
  // recycles the slot. `id` must be live.
  void Free(FlowId id);

  // Generation-checked resolve: nullptr for stale or out-of-range ids.
  Flow* Get(FlowId id) {
    const uint32_t slot = FlowSlotOf(id);
    if (slot >= slot_count_) return nullptr;
    Slot& s = SlotAt(slot);
    if (!s.live || s.generation != FlowGenOf(id)) return nullptr;
    return &s.flow;
  }
  const Flow* Get(FlowId id) const { return const_cast<FlowSlab*>(this)->Get(id); }

  // Iteration support for samplers / debug dumps.
  size_t slot_count() const { return slot_count_; }
  bool SlotLive(uint32_t slot) const { return slot < slot_count_ && SlotAt(slot).live; }
  Flow& SlotFlow(uint32_t slot) { return SlotAt(slot).flow; }
  FlowId SlotId(uint32_t slot) const {
    return MakeFlowId(slot, SlotAt(slot).generation);
  }

  size_t live() const { return live_; }
  size_t capacity_slots() const { return chunks_.size() * kChunkSlots; }

 private:
  struct Slot {
    Flow flow;
    uint32_t generation = 0;
    bool live = false;
  };
  using Chunk = std::vector<Slot>;  // Always kChunkSlots entries; never moves.

  Slot& SlotAt(uint32_t slot) {
    return (*chunks_[slot / kChunkSlots])[slot % kChunkSlots];
  }
  const Slot& SlotAt(uint32_t slot) const {
    return (*chunks_[slot / kChunkSlots])[slot % kChunkSlots];
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<uint32_t> free_slots_;
  size_t slot_count_ = 0;
  size_t live_ = 0;
};

}  // namespace tas

#endif  // SRC_TAS_FLOW_TABLE_H_
