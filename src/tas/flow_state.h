// Per-flow fast-path state, mirroring paper Table 3.
//
// This struct is the operational state the fast path reads and writes for
// every packet — the paper's central capacity claim ("102 bytes of per-flow
// state ... more than 20,000 active flows per core in L2/L3 cache") rests on
// it staying tiny. The layout below follows Table 3 field-for-field with the
// same widths; our packed size is 103 bytes because dupack_cnt occupies a
// full byte where the paper packs it into 4 bits.
//
// Positions (rx|tx head/tail, tx_sent) are 32-bit offsets in wire-sequence
// space, exactly like the original C implementation: all comparisons are
// modular (src/tcp/seq.h). Buffer memory lives in the untrusted app library
// (libTAS owns the payload arrays); rx_base/tx_base point into it.
#ifndef SRC_TAS_FLOW_STATE_H_
#define SRC_TAS_FLOW_STATE_H_

#include <cstdint>

#include "src/net/packet.h"

namespace tas {

using FlowId = uint32_t;
inline constexpr FlowId kInvalidFlow = ~FlowId{0};

#pragma pack(push, 1)
struct FlowState {
  // --- Identification and steering ----------------------------------------
  uint64_t opaque = 0;        // Application-defined flow identifier.
  uint16_t context = 0;       // RX/TX context queue number.
  uint8_t bucket[3] = {};     // Rate bucket number (24 bits).

  // --- Payload buffers (owned by untrusted user space) ---------------------
  uint8_t* rx_base = nullptr;  // rx_start (Table 3).
  uint8_t* tx_base = nullptr;  // tx_start.
  uint32_t rx_size = 0;
  uint32_t tx_size = 0;
  // rx_head: next write position (== bytes received, mod 2^32, offset from
  // irs+1). rx_tail: app read position, advanced by libTAS.
  uint32_t rx_head = 0;
  uint32_t rx_tail = 0;
  // tx_head: app write position, advanced by libTAS. tx_tail: first
  // unacknowledged byte (fast path reclaims on ACK).
  uint32_t tx_head = 0;
  uint32_t tx_tail = 0;
  uint32_t tx_sent = 0;       // Sent-but-unacked bytes beyond tx_tail.

  // --- TCP state ------------------------------------------------------------
  uint32_t seq = 0;           // Wire seq of the next NEW payload byte to send.
  uint32_t ack = 0;           // Next expected peer wire seq (rcv_nxt).
  uint16_t window = 0;        // Peer receive window, already descaled, in KB
                              // granules (see kWindowGranule) to fit 16 bits.
  uint8_t dupack_cnt = 0;     // Paper packs this into 4 bits.
  uint16_t local_port = 0;
  uint32_t peer_ip = 0;
  uint16_t peer_port = 0;
  uint8_t peer_mac[6] = {};   // For header generation (segmentation).
  uint32_t ooo_start = 0;     // Out-of-order interval start (wire seq).
  uint32_t ooo_len = 0;       // 0 = no interval tracked.

  // --- Congestion feedback for the slow path -------------------------------
  uint32_t cnt_ackb = 0;      // Bytes acked since last control iteration.
  uint32_t cnt_ecnb = 0;      // Of those, bytes carrying ECN echo.
  uint8_t cnt_frexmits = 0;   // Fast retransmits triggered.
  uint32_t rtt_est = 0;       // Microseconds (EWMA).
};
#pragma pack(pop)

static_assert(sizeof(FlowState) == 103,
              "FlowState must stay within one byte of the paper's 102 bytes");

// Peer window granularity: stored window = bytes >> kWindowGranuleShift, so
// 16 bits cover 4 GB-scaled windows after window scaling.
inline constexpr int kWindowGranuleShift = 7;

inline uint64_t PeerWindowBytes(const FlowState& fs) {
  return static_cast<uint64_t>(fs.window) << kWindowGranuleShift;
}

inline void SetPeerWindowBytes(FlowState& fs, uint64_t bytes) {
  const uint64_t granules = bytes >> kWindowGranuleShift;
  fs.window = static_cast<uint16_t>(granules > 0xFFFF ? 0xFFFF : granules);
}

inline uint32_t BucketOf(const FlowState& fs) {
  return static_cast<uint32_t>(fs.bucket[0]) | (static_cast<uint32_t>(fs.bucket[1]) << 8) |
         (static_cast<uint32_t>(fs.bucket[2]) << 16);
}

inline void SetBucket(FlowState& fs, uint32_t bucket) {
  fs.bucket[0] = static_cast<uint8_t>(bucket);
  fs.bucket[1] = static_cast<uint8_t>(bucket >> 8);
  fs.bucket[2] = static_cast<uint8_t>(bucket >> 16);
}

}  // namespace tas

#endif  // SRC_TAS_FLOW_STATE_H_
