// Flow-group steering (paper §3.4 at million-flow scale): the NIC RSS
// redirection table is the flow -> core map, and each redirection entry is a
// FLOW GROUP — the unit the scaling controller moves between fast-path
// cores. This replaces per-flow modulo placement: migrating a group is one
// redirection-entry write plus a quiesce of the source core, no matter how
// many of the million flows hash into the group.
//
// Quiesce protocol (preserves determinism and the latency partition):
//   1. A migration request records the source core's in-flight backlog
//      (gathered batch + work queue + NIC ring) as a drain target over the
//      core's retired-items counter. New TX work for the group's flows is
//      deferred on the group instead of enqueued.
//   2. Every fast-path batch retirement reports progress; when the source
//      core's retired counter passes the target, the redirection entry is
//      flipped to the target core.
//   3. Deferred flow-TX work is re-enqueued on the target core.
// If the source core is idle at request time the flip happens immediately,
// which makes the §3.4 scale-up/down transitions byte-identical to the old
// eager table rewrite whenever the affected cores are quiesced already.
//
// All decisions read deterministic simulator state (per-entry NIC packet
// counts, per-core retired counters), so same-seed runs migrate identically.
#ifndef SRC_TAS_STEERING_H_
#define SRC_TAS_STEERING_H_

#include <cstdint>
#include <vector>

#include "src/tas/flow_state.h"
#include "src/util/time.h"

namespace tas {

class TasService;

class FlowGroupSteering {
 public:
  explicit FlowGroupSteering(TasService* service);

  FlowGroupSteering(const FlowGroupSteering&) = delete;
  FlowGroupSteering& operator=(const FlowGroupSteering&) = delete;

  size_t num_groups() const { return groups_.size(); }
  // Current owning core of a group == its NIC redirection entry's queue.
  int CoreOf(int entry) const;
  bool Draining(int entry) const { return groups_[static_cast<size_t>(entry)].draining; }

  // Parks a flow's TX enqueue while its group drains; re-enqueued on the
  // target core when the entry flips. The flow keeps tx_pending set.
  void DeferFlowTx(int entry, FlowId id);

  // Requests a quiesce migration of `entry` to `target_core`. Returns false
  // for no-ops (already owned by the target / already draining there).
  // Retargets an in-flight drain instead of stacking a second one.
  bool MigrateGroup(int entry, int target_core);

  // Applies the §3.4 controller layout — entry i -> i % active, matching the
  // NIC's round-robin SetActiveQueues spread — via quiesce migrations.
  void SetActiveCores(int active);

  // Fast-path batch-retirement hook: flips every draining group whose source
  // core has passed its drain target.
  void OnCoreProgress(int core);

  // Load-aware migration: moves the hottest group from the busiest active
  // core to the least-busy one when the interval's per-core packet loads
  // diverge past the configured imbalance factor. Called from the slow
  // path's MonitorCores interval; returns migrations requested (0 or 1 — one
  // group per interval keeps the control loop stable).
  int MaybeRebalance(int active_cores, double imbalance_factor);

  uint64_t migrations() const { return migrations_; }      // Drains completed.
  uint64_t group_moves() const { return group_moves_; }    // Entries flipped.
  uint64_t deferred_items() const { return deferred_items_; }
  uint64_t rebalances() const { return rebalances_; }

  // --- Instantaneous drain state (gauges + diagnostic bundles) ---------------
  // Flows currently parked across all draining groups.
  size_t DeferredDepth() const;
  int DrainingGroups() const { return draining_count_; }
  // Age of the oldest in-flight drain, 0 when none — a large value means a
  // stuck migration (the source core stopped retiring items).
  TimeNs MaxDrainAge(TimeNs now) const;

  // Snapshot of every draining group, entry order (bundle context).
  struct DrainingGroup {
    int entry = -1;
    int source_core = -1;
    int target_core = -1;
    uint64_t drain_target = 0;
    size_t deferred = 0;
    TimeNs started = 0;
  };
  std::vector<DrainingGroup> DrainingState() const;

 private:
  struct GroupState {
    bool draining = false;
    int source_core = -1;
    int target_core = -1;
    uint64_t drain_target = 0;  // Source core's items_processed() threshold.
    TimeNs drain_started = 0;   // Sim time the quiesce was requested.
    std::vector<FlowId> deferred;
  };

  void Flip(size_t entry, GroupState& g);

  TasService* service_;
  std::vector<GroupState> groups_;
  std::vector<uint64_t> hits_snapshot_;  // Per-entry NIC counts, last interval.
  int draining_count_ = 0;
  uint64_t migrations_ = 0;
  uint64_t group_moves_ = 0;
  uint64_t deferred_items_ = 0;
  uint64_t rebalances_ = 0;
};

}  // namespace tas

#endif  // SRC_TAS_STEERING_H_
