#include "src/tas/slow_path.h"

#include <algorithm>

#include "src/cc/dctcp_rate.h"
#include "src/cc/timely.h"
#include "src/tas/fast_path.h"
#include "src/tas/steering.h"
#include "src/tcp/seq.h"

namespace tas {
namespace {

// Slow-path CPU costs (cycles). These are deliberately heavy relative to the
// fast path: connection control involves the slow path and the application
// several times per handshake (paper §5.1, short-lived connections).
constexpr uint64_t kExceptionCycles = 600;
constexpr uint64_t kCcIterationCycles = 120;

// Synthetic span track for control-loop iterations (distinct from the
// slow-path core's Charge track so iteration boundaries stay visible).
constexpr int kControlLoopTrack = 1001;

uint32_t NowUs(Simulator* sim) { return static_cast<uint32_t>(sim->Now() / kNsPerUs); }

}  // namespace

SlowPath::SlowPath(TasService* service, Core* cpu) : service_(service), cpu_(cpu) {}

SlowPath::~SlowPath() = default;

void SlowPath::Start() {
  if (service_->tracer().spans().enabled()) {
    service_->tracer().spans().SetTrackName(kControlLoopTrack, "slowpath-control");
  }
  cc_task_ = std::make_unique<PeriodicTask>(service_->sim(), service_->config().control_interval,
                                            [this] { ControlLoop(); });
  cc_task_->Start();
  if (service_->config().dynamic_cores || service_->config().group_migration) {
    // group_migration needs the monitor interval even with a fixed core
    // count: MonitorCores is where load-aware group rebalancing runs.
    monitor_task_ = std::make_unique<PeriodicTask>(
        service_->sim(), service_->config().monitor_interval, [this] { MonitorCores(); });
    monitor_task_->Start();
  }
}

void SlowPath::EnqueueException(PacketPtr pkt) {
  exceptions_.push_back(std::move(pkt));
  if (exceptions_.size() > exception_depth_hw_) {
    exception_depth_hw_ = exceptions_.size();
  }
  MaybeProcess();
}

void SlowPath::MaybeProcess() {
  if (busy_ || exceptions_.empty()) {
    return;
  }
  PacketPtr pkt = std::move(exceptions_.front());
  exceptions_.pop_front();
  const TimeNs done = cpu_->Charge(CpuModule::kTcp, kExceptionCycles);
  busy_ = true;
  service_->sim()->At(done, [this, pkt = std::move(pkt)]() mutable {
    busy_ = false;
    HandleException(std::move(pkt));
    MaybeProcess();
  });
}

void SlowPath::HandleException(PacketPtr pkt) {
  service_->mutable_stats().slowpath_packets++;
  const FlowKey key{pkt->tcp.dst_port, pkt->ip.src, pkt->tcp.src_port};
  const FlowId id = service_->LookupFlowId(key);

  if (pkt->tcp.syn() && !pkt->tcp.ack_flag()) {
    if (id != kInvalidFlow) {
      // Retransmitted SYN for a half-open flow: re-send the SYN-ACK.
      Flow* flow = service_->flow_by_id(id);
      if (flow != nullptr && flow->cstate == ConnState::kSynRcvd) {
        SendSynAck(*flow);
      }
      return;
    }
    HandleSyn(*pkt);
    return;
  }

  if (id == kInvalidFlow) {
    return;  // Unknown flow (stale segment after teardown): drop.
  }
  Flow* flow = service_->flow_by_id(id);
  if (flow == nullptr) {
    return;
  }
  if (HandleFlowPacket(id, *flow, *pkt)) {
    // The packet raced connection establishment (e.g. payload piggybacked on
    // the handshake-completing ACK): hand it to the fast path now that the
    // flow is eligible. The exception charge already covered the CPU work.
    service_->fastpath(service_->CoreForFlow(*flow))->InjectPacket(std::move(pkt));
  }
}

void SlowPath::HandleSyn(const Packet& pkt) {
  auto listener_it = listeners_.find(pkt.tcp.dst_port);
  if (listener_it == listeners_.end()) {
    return;  // No listener: drop (a full stack would send RST).
  }
  const Listener& listener = listener_it->second;

  const FlowKey key{pkt.tcp.dst_port, pkt.ip.src, pkt.tcp.src_port};
  const FlowId id = service_->AllocateFlow(key);
  Flow& flow = *service_->flow_by_id(id);
  // The flow id is the event identity from the first byte on; libTAS keys
  // its connection table by it. The listener's opaque rides only on the
  // kAcceptable notification.
  flow.fs.opaque = id;
  flow.fs.context = listener.context;
  flow.fs.local_port = pkt.tcp.dst_port;
  flow.fs.peer_ip = pkt.ip.src;
  flow.fs.peer_port = pkt.tcp.src_port;

  // Peer's ISN anchors the receive positions.
  const uint32_t irs = pkt.tcp.seq;
  flow.fs.ack = irs + 1;
  flow.fs.rx_head = irs + 1;
  flow.fs.rx_tail = irs + 1;
  if (pkt.tcp.has_mss) {
    flow.mss = std::min<uint16_t>(flow.mss, pkt.tcp.mss);
  }
  flow.peer_wscale = pkt.tcp.has_wscale ? pkt.tcp.wscale : 0;
  SetPeerWindowBytes(flow.fs, pkt.tcp.window);  // SYN windows are unscaled.
  if (pkt.tcp.has_timestamps) {
    flow.ts_echo = pkt.tcp.ts_val;
  }
  flow.cstate = ConnState::kSynRcvd;
  service_->flow_trace().Record(service_->sim()->Now(), id, FlowEventType::kSynRx, irs);
  TraceState(id, flow);
  // Charge the heavier half of connection setup on the passive side.
  cpu_->Charge(CpuModule::kTcp, service_->config().costs->connection_setup / 2);
  SendSynAck(flow);
  service_->flow_trace().Record(service_->sim()->Now(), id, FlowEventType::kSynTx, 1);
  AddPending(id, flow);
}

bool SlowPath::HandleFlowPacket(FlowId flow_id, Flow& flow, const Packet& pkt) {
  if (pkt.tcp.has_timestamps) {
    flow.ts_echo = pkt.tcp.ts_val;
  }
  if (pkt.tcp.rst()) {
    service_->flow_trace().Record(service_->sim()->Now(), flow_id, FlowEventType::kRstRx);
    if (flow.cstate == ConnState::kSynSent) {
      service_->context(flow.fs.context)
          ->PushEvent(AppEvent{AppEventType::kConnOpenFailed, flow.fs.opaque, flow_id});
      flow.cold().closed_event_sent = true;
    }
    ReleaseFlow(flow_id, flow);
    return false;
  }
  const bool payload_for_fastpath = !pkt.payload.empty() && !pkt.tcp.syn() && !pkt.tcp.fin();

  switch (flow.cstate) {
    case ConnState::kSynSent: {
      if (pkt.tcp.syn() && pkt.tcp.ack_flag() && pkt.tcp.ack == flow.fs.seq) {
        const uint32_t irs = pkt.tcp.seq;
        service_->flow_trace().Record(service_->sim()->Now(), flow_id,
                                      FlowEventType::kSynRx, irs);
        flow.fs.ack = irs + 1;
        flow.fs.rx_head = irs + 1;
        flow.fs.rx_tail = irs + 1;
        if (pkt.tcp.has_mss) {
          flow.mss = std::min<uint16_t>(flow.mss, pkt.tcp.mss);
        }
        flow.peer_wscale = pkt.tcp.has_wscale ? pkt.tcp.wscale : 0;
        SetPeerWindowBytes(flow.fs, pkt.tcp.window);
        SendControlAck(flow);
        Establish(flow_id, flow, /*from_listener=*/false);
        return payload_for_fastpath;
      }
      return false;
    }
    case ConnState::kSynRcvd: {
      if (pkt.tcp.ack_flag() && pkt.tcp.ack == flow.fs.seq) {
        SetPeerWindowBytes(flow.fs,
                           static_cast<uint64_t>(pkt.tcp.window) << flow.peer_wscale);
        Establish(flow_id, flow, /*from_listener=*/true);
        return payload_for_fastpath;
      }
      return false;
    }
    case ConnState::kEstablished:
    case ConnState::kCloseWait: {
      if (pkt.tcp.syn()) {
        // Retransmitted SYN-ACK: our handshake-completing ACK was lost.
        SendControlAck(flow);
        return false;
      }
      if (pkt.tcp.fin()) {
        HandleFin(flow_id, flow, pkt);
        return false;
      }
      // Data or ACK for a fast-path-eligible flow reached the slow path
      // (e.g. a race with core re-steering): bounce it back to the fast
      // path. kCloseWait is eligible too — the local direction still streams.
      return true;
    }
    case ConnState::kFinWait1: {
      if (pkt.tcp.ack_flag() && pkt.tcp.ack == flow.fs.seq + 1) {
        flow.cold().fin_acked = true;
      }
      if (pkt.tcp.fin()) {
        HandleFin(flow_id, flow, pkt);
        return false;
      }
      // The peer's direction is still open: a half-closed peer (e.g. a proxy
      // flushing a response after our FIN) may keep streaming payload.
      DeliverPayload(flow_id, flow, pkt);
      if (flow.cold().fin_acked) {
        flow.cstate = flow.cold().fin_received ? ConnState::kTimeWait : ConnState::kFinWait2;
        if (flow.cstate == ConnState::kTimeWait) {
          flow.cold().timewait_start = service_->sim()->Now();
        }
        TraceState(flow_id, flow);
      }
      return false;
    }
    case ConnState::kFinWait2: {
      if (pkt.tcp.fin()) {
        HandleFin(flow_id, flow, pkt);
      } else {
        DeliverPayload(flow_id, flow, pkt);
      }
      return false;
    }
    case ConnState::kLastAck: {
      if (pkt.tcp.ack_flag() && pkt.tcp.ack == flow.fs.seq + 1) {
        ReleaseFlow(flow_id, flow);
      }
      return false;
    }
    case ConnState::kTimeWait: {
      if (pkt.tcp.fin()) {
        SendControlAck(flow);  // Retransmitted FIN: re-ACK.
      }
      return false;
    }
    case ConnState::kFreed:
      return false;
  }
  return false;
}

void SlowPath::DeliverPayload(FlowId flow_id, Flow& flow, const Packet& pkt) {
  if (pkt.payload.empty()) {
    return;
  }
  const uint32_t len = static_cast<uint32_t>(pkt.payload.size());
  if (pkt.tcp.seq == flow.fs.ack && len <= flow.RxFree()) {
    flow.CopyIntoRx(pkt.tcp.seq, pkt.payload.data(), len);
    flow.fs.ack += len;
    flow.fs.rx_head += len;
    service_->flow_trace().Record(service_->sim()->Now(), flow_id, FlowEventType::kDataRx,
                                  pkt.tcp.seq, len, len);
    service_->context(flow.fs.context)
        ->PushEvent(AppEvent{AppEventType::kRxData, flow.fs.opaque, len});
  }
  // In-order: ack advanced past the segment. Out-of-order or overflow: the
  // duplicate ACK below makes the peer retransmit.
  SendControlAck(flow);
}

void SlowPath::HandleFin(FlowId flow_id, Flow& flow, const Packet& pkt) {
  service_->flow_trace().Record(service_->sim()->Now(), flow_id, FlowEventType::kFinRx,
                                pkt.tcp.seq);
  // Deliver any payload riding with the FIN if it is in order.
  uint32_t fin_seq = pkt.tcp.seq;
  if (!pkt.payload.empty()) {
    const uint32_t len = static_cast<uint32_t>(pkt.payload.size());
    if (pkt.tcp.seq == flow.fs.ack && len <= flow.RxFree()) {
      flow.CopyIntoRx(pkt.tcp.seq, pkt.payload.data(), len);
      flow.fs.ack += len;
      flow.fs.rx_head += len;
      service_->context(flow.fs.context)
          ->PushEvent(AppEvent{AppEventType::kRxData, flow.fs.opaque, len});
    }
    fin_seq += len;
  }
  if (fin_seq != flow.fs.ack) {
    SendControlAck(flow);  // Out-of-order FIN: duplicate ACK, peer resends.
    return;
  }
  flow.fs.ack += 1;  // Consume the FIN.
  flow.cold().fin_received = true;
  SendControlAck(flow);

  NotifyRemoteClosed(flow);

  switch (flow.cstate) {
    case ConnState::kEstablished:
      flow.cstate = ConnState::kCloseWait;
      TraceState(flow_id, flow);
      AddPending(flow_id, flow);
      break;
    case ConnState::kFinWait1:
      flow.cstate = flow.cold().fin_acked ? ConnState::kTimeWait : ConnState::kFinWait1;
      if (flow.cstate == ConnState::kTimeWait) {
        flow.cold().timewait_start = service_->sim()->Now();
        TraceState(flow_id, flow);
      }
      break;
    case ConnState::kFinWait2:
      flow.cstate = ConnState::kTimeWait;
      flow.cold().timewait_start = service_->sim()->Now();
      TraceState(flow_id, flow);
      break;
    default:
      break;
  }
}

void SlowPath::CmdListen(uint16_t port, uint64_t opaque, uint16_t context) {
  listeners_[port] = Listener{opaque, context};
}

void SlowPath::CmdConnect(FlowId flow_id) {
  Flow* flow = service_->flow_by_id(flow_id);
  TAS_CHECK(flow != nullptr);
  TraceState(flow_id, *flow);  // kSynSent (TasService::Connect set it).
  cpu_->Charge(CpuModule::kTcp, service_->config().costs->connection_setup / 2);
  SendSyn(*flow);
  service_->flow_trace().Record(service_->sim()->Now(), flow_id, FlowEventType::kSynTx, 0);
  AddPending(flow_id, *flow);
}

void SlowPath::CmdClose(FlowId flow_id) {
  Flow* flow = service_->flow_by_id(flow_id);
  if (flow == nullptr || flow->cstate == ConnState::kFreed) {
    return;
  }
  flow->cold().app_closed = true;
  cpu_->Charge(CpuModule::kTcp, service_->config().costs->connection_teardown / 2);
  TrySendFin(flow_id, *flow);
  AddPending(flow_id, *flow);
}

void SlowPath::TrySendFin(FlowId flow_id, Flow& flow) {
  if (flow.cold().fin_sent || !flow.cold().app_closed) {
    return;
  }
  if (flow.cstate != ConnState::kEstablished && flow.cstate != ConnState::kCloseWait) {
    return;
  }
  // Wait until all queued payload is sent and acknowledged.
  if (flow.TxQueued() > 0) {
    AddPending(flow_id, flow);
    return;
  }
  flow.cold().fin_sent = true;
  flow.cstate =
      flow.cstate == ConnState::kEstablished ? ConnState::kFinWait1 : ConnState::kLastAck;
  TraceState(flow_id, flow);
  SendFin(flow);
  service_->flow_trace().Record(service_->sim()->Now(), flow_id, FlowEventType::kFinTx,
                                flow.fs.seq);
}

void SlowPath::SendSyn(Flow& flow) {
  auto syn = MakeTcpPacket(service_->local_ip(), flow.fs.local_port, flow.fs.peer_ip,
                           flow.fs.peer_port, flow.fs.seq - 1, 0, TcpFlags::kSyn);
  syn->tcp.has_mss = true;
  syn->tcp.mss = flow.mss;
  syn->tcp.has_wscale = true;
  syn->tcp.wscale = service_->config().window_scale;
  // Copy out first: fs is packed, and std::min would bind a reference to the
  // misaligned field.
  const uint32_t rx_size = flow.fs.rx_size;
  syn->tcp.window = static_cast<uint16_t>(std::min<uint32_t>(rx_size, 0xFFFF));
  syn->tcp.has_timestamps = true;
  syn->tcp.ts_val = NowUs(service_->sim());
  syn->enqueued_at = service_->sim()->Now();
  flow.cold().last_ctrl_send = service_->sim()->Now();
  service_->nic()->Transmit(std::move(syn));
}

void SlowPath::SendSynAck(Flow& flow) {
  auto synack =
      MakeTcpPacket(service_->local_ip(), flow.fs.local_port, flow.fs.peer_ip,
                    flow.fs.peer_port, flow.fs.seq - 1, flow.fs.ack,
                    TcpFlags::kSyn | TcpFlags::kAck);
  synack->tcp.has_mss = true;
  synack->tcp.mss = flow.mss;
  synack->tcp.has_wscale = true;
  synack->tcp.wscale = service_->config().window_scale;
  const uint32_t rx_size = flow.fs.rx_size;  // Packed field; see SendSyn.
  synack->tcp.window = static_cast<uint16_t>(std::min<uint32_t>(rx_size, 0xFFFF));
  synack->tcp.has_timestamps = true;
  synack->tcp.ts_val = NowUs(service_->sim());
  synack->tcp.ts_ecr = flow.ts_echo;
  synack->enqueued_at = service_->sim()->Now();
  flow.cold().last_ctrl_send = service_->sim()->Now();
  service_->nic()->Transmit(std::move(synack));
}

void SlowPath::SendFin(Flow& flow) {
  auto fin = MakeTcpPacket(service_->local_ip(), flow.fs.local_port, flow.fs.peer_ip,
                           flow.fs.peer_port, flow.fs.seq, flow.fs.ack,
                           TcpFlags::kFin | TcpFlags::kAck);
  fin->tcp.window = static_cast<uint16_t>(
      std::min<uint32_t>(flow.RxFree() >> service_->config().window_scale, 0xFFFF));
  fin->tcp.has_timestamps = true;
  fin->tcp.ts_val = NowUs(service_->sim());
  fin->tcp.ts_ecr = flow.ts_echo;
  fin->enqueued_at = service_->sim()->Now();
  flow.cold().last_ctrl_send = service_->sim()->Now();
  service_->nic()->Transmit(std::move(fin));
}

void SlowPath::SendControlAck(Flow& flow) {
  auto ack = MakeTcpPacket(service_->local_ip(), flow.fs.local_port, flow.fs.peer_ip,
                           flow.fs.peer_port, flow.fs.seq + (flow.cold().fin_sent ? 1 : 0),
                           flow.fs.ack, TcpFlags::kAck);
  ack->tcp.window = static_cast<uint16_t>(
      std::min<uint32_t>(flow.RxFree() >> service_->config().window_scale, 0xFFFF));
  ack->tcp.has_timestamps = true;
  ack->tcp.ts_val = NowUs(service_->sim());
  ack->tcp.ts_ecr = flow.ts_echo;
  ack->enqueued_at = service_->sim()->Now();
  service_->nic()->Transmit(std::move(ack));
}

void SlowPath::Establish(FlowId flow_id, Flow& flow, bool from_listener) {
  flow.cstate = ConnState::kEstablished;
  flow.cold().established_at = service_->sim()->Now();
  flow.cold().ctrl_retries = 0;
  service_->mutable_stats().connections_established++;
  TraceState(flow_id, flow);
  if (from_listener) {
    service_->context(flow.fs.context)
        ->PushEvent(AppEvent{AppEventType::kAcceptable, flow.fs.opaque, flow_id});
  } else {
    service_->context(flow.fs.context)
        ->PushEvent(AppEvent{AppEventType::kConnOpened, flow.fs.opaque, flow_id});
  }
  // The app may already have queued payload (unusual); kick transmit.
  if (flow.TxAvailable() > 0) {
    service_->ScheduleFlowTx(flow_id, 0);
  }
}

void SlowPath::NotifyRemoteClosed(Flow& flow) {
  if (flow.cold().fin_event_sent) {
    return;
  }
  flow.cold().fin_event_sent = true;
  service_->context(flow.fs.context)
      ->PushEvent(AppEvent{AppEventType::kConnFin, flow.fs.opaque, 0});
}

void SlowPath::NotifyClosed(Flow& flow) {
  if (flow.cold().closed_event_sent) {
    return;
  }
  flow.cold().closed_event_sent = true;
  service_->context(flow.fs.context)
      ->PushEvent(AppEvent{AppEventType::kConnClosed, flow.fs.opaque, 0});
}

void SlowPath::ReleaseFlow(FlowId flow_id, Flow& flow) {
  if (flow.cstate == ConnState::kFreed) {
    return;
  }
  NotifyClosed(flow);
  flow.cstate = ConnState::kFreed;
  TraceState(flow_id, flow);
  service_->mutable_stats().connections_closed++;
  service_->FreeFlow(flow_id);
}

void SlowPath::TraceState(FlowId flow_id, const Flow& flow) {
  service_->flow_trace().Record(service_->sim()->Now(), flow_id, FlowEventType::kConnState,
                                static_cast<uint64_t>(flow.cstate));
}

void SlowPath::AddPending(FlowId flow_id, Flow& flow) {
  if (flow.cold().in_pending) {
    return;
  }
  flow.cold().in_pending = true;
  pending_.push_back(flow_id);
}

void SlowPath::ControlLoop() {
  const TimeNs busy_before = cpu_->busy_until();
  // Congestion control for flows with recent activity (paper: the slow path
  // runs a control-loop iteration per flow every control interval; flows
  // without feedback and without outstanding data have nothing to update).
  std::vector<FlowId> dirty;
  dirty.swap(service_->dirty_flows());
  for (FlowId id : dirty) {
    Flow* flow = service_->flow_by_id(id);
    if (flow == nullptr || flow->cstate == ConnState::kFreed) {
      continue;
    }
    flow->in_dirty = false;
    RunCongestionControl(id, *flow);
  }
  ScanPending();
  SpanRecorder& spans = service_->tracer().spans();
  if (spans.enabled()) {
    // The iteration's charges occupy [max(now, prior busy), new busy front).
    const TimeNs start = std::max(service_->sim()->Now(), busy_before);
    const TimeNs end = cpu_->busy_until();
    if (end > start) {
      spans.Record(kControlLoopTrack, "control_loop", start, end);
    }
  }
}

void SlowPath::RunCongestionControl(FlowId flow_id, Flow& flow) {
  ++control_iterations_;
  cpu_->Charge(CpuModule::kTcp, kCcIterationCycles);
  const TimeNs interval = service_->config().control_interval;

  CcFeedback feedback;
  feedback.acked_bytes = flow.fs.cnt_ackb;
  feedback.ecn_bytes = flow.fs.cnt_ecnb;
  feedback.retransmits = flow.fs.cnt_frexmits;
  feedback.rtt = static_cast<TimeNs>(flow.fs.rtt_est) * kNsPerUs;
  feedback.actual_tx_bps =
      static_cast<double>(flow.fs.cnt_ackb) * 8.0 / ToSec(interval);
  feedback.app_limited = flow.TxAvailable() == 0;

  // Retransmission timeout detection (paper §3.2): outstanding data with no
  // ACK progress across control intervals triggers a fast-path reset. The
  // timer is armed by the oldest unacked byte — transmitting *new* data does
  // not rearm it (RFC 6298 §5.1), so a sender trickling fresh segments into a
  // black hole still times out. The seq-unchanged fallback applies only to
  // flows with no RTT sample yet (first window still in flight), where the
  // 4*RTT guard below cannot protect a long path from a spurious reset.
  bool timed_out = false;
  if (flow.fs.tx_sent > 0 && flow.fs.cnt_ackb == 0 &&
      (flow.fs.rtt_est > 0 || flow.fs.seq == flow.cold().last_seq_sampled)) {
    const TimeNs rtt = static_cast<TimeNs>(flow.fs.rtt_est) * kNsPerUs;
    const TimeNs stall_ns =
        std::max(service_->config().min_rto,
                 static_cast<TimeNs>(service_->config().rto_stall_intervals) * interval);
    const int required = std::max<int>(
        static_cast<int>(stall_ns / std::max<TimeNs>(interval, 1)),
        static_cast<int>(4 * rtt / std::max<TimeNs>(interval, 1)) + 1);
    if (++flow.cold().stalled_intervals >= required) {
      timed_out = true;
      flow.cold().stalled_intervals = 0;
    }
  } else {
    flow.cold().stalled_intervals = 0;
  }
  flow.cold().last_seq_sampled = flow.fs.seq;
  if (timed_out) {
    service_->mutable_stats().timeout_retransmits++;
    feedback.retransmits += 1;
    // Instruct the fast path to reset and retransmit.
    flow.fs.seq = flow.fs.tx_tail;
    flow.fs.tx_sent = 0;
    service_->flow_trace().Record(service_->sim()->Now(), flow_id,
                                  FlowEventType::kTimeoutRetransmit, flow.fs.tx_tail,
                                  static_cast<uint64_t>(service_->config().rto_stall_intervals));
    service_->ScheduleFlowTx(flow_id, 0);
  }

  if (flow.cold().wcc != nullptr) {
    // Window mode: feed the window controller and publish the new window.
    if (feedback.acked_bytes > 0) {
      flow.cold().wcc->OnAck(feedback.acked_bytes, feedback.ecn_bytes > 0, feedback.rtt);
    }
    if (timed_out) {
      flow.cold().wcc->OnTimeout();
    } else if (flow.fs.cnt_frexmits > 0) {
      flow.cold().wcc->OnFastRetransmit();
    }
    flow.cc_window = flow.cold().wcc->cwnd();
  } else {
    flow.rate_bps = flow.cold().cc->Update(feedback);
  }
  if (service_->flow_trace().enabled(flow_id)) {
    // ECN fraction of acked bytes in parts per million (fits the integer slot).
    const uint64_t ecn_ppm =
        feedback.acked_bytes > 0
            ? feedback.ecn_bytes * 1'000'000u / feedback.acked_bytes
            : 0;
    const uint64_t limit = flow.cold().wcc != nullptr
                               ? flow.cc_window
                               : static_cast<uint64_t>(flow.rate_bps);
    service_->flow_trace().Record(service_->sim()->Now(), flow_id,
                                  FlowEventType::kCcUpdate, limit, ecn_ppm,
                                  static_cast<uint64_t>(flow.fs.rtt_est));
  }
  flow.fs.cnt_ackb = 0;
  flow.fs.cnt_ecnb = 0;
  flow.fs.cnt_frexmits = 0;

  // Keep watching flows with outstanding data (for RTO detection).
  if (flow.fs.tx_sent > 0 || flow.TxAvailable() > 0) {
    service_->MarkFlowDirty(flow_id);
  }
}

void SlowPath::ScanPending() {
  const TimeNs now = service_->sim()->Now();
  const TasConfig& config = service_->config();
  std::vector<FlowId> keep;
  for (FlowId id : pending_) {
    Flow* fp = service_->flow_by_id(id);
    if (fp == nullptr || fp->cstate == ConnState::kFreed) {
      continue;
    }
    Flow& flow = *fp;
    bool still_pending = true;
    switch (flow.cstate) {
      case ConnState::kSynSent:
      case ConnState::kSynRcvd: {
        const TimeNs rto = config.handshake_rto << std::min(flow.cold().ctrl_retries, 6);
        if (now - flow.cold().last_ctrl_send >= rto) {
          if (++flow.cold().ctrl_retries > config.max_handshake_retries) {
            if (flow.cstate == ConnState::kSynSent) {
              service_->context(flow.fs.context)
                  ->PushEvent(AppEvent{AppEventType::kConnOpenFailed, flow.fs.opaque, id});
              flow.cold().closed_event_sent = true;
            }
            ReleaseFlow(id, flow);
            still_pending = false;
          } else if (flow.cstate == ConnState::kSynSent) {
            service_->mutable_stats().handshake_retransmits++;
            service_->flow_trace().Record(now, id, FlowEventType::kHandshakeRetransmit, 1);
            SendSyn(flow);
          } else {
            service_->mutable_stats().handshake_retransmits++;
            service_->flow_trace().Record(now, id, FlowEventType::kHandshakeRetransmit, 2);
            SendSynAck(flow);
          }
        }
        break;
      }
      case ConnState::kEstablished:
      case ConnState::kCloseWait: {
        if (flow.cold().app_closed && !flow.cold().fin_sent) {
          TrySendFin(id, flow);
        } else if (!flow.cold().app_closed) {
          still_pending = false;
        }
        break;
      }
      case ConnState::kFinWait1:
      case ConnState::kLastAck: {
        const TimeNs rto = config.handshake_rto << std::min(flow.cold().ctrl_retries, 6);
        if (now - flow.cold().last_ctrl_send >= rto) {
          if (++flow.cold().ctrl_retries > config.max_handshake_retries) {
            ReleaseFlow(id, flow);
            still_pending = false;
          } else {
            service_->flow_trace().Record(now, id, FlowEventType::kHandshakeRetransmit, 3);
            SendFin(flow);
          }
        }
        break;
      }
      case ConnState::kFinWait2:
        break;  // Waiting for the peer's FIN; no retransmission needed.
      case ConnState::kTimeWait: {
        if (now - flow.cold().timewait_start >= config.time_wait) {
          ReleaseFlow(id, flow);
          still_pending = false;
        }
        break;
      }
      case ConnState::kFreed:
        still_pending = false;
        break;
    }
    // Re-look the flow up: ReleaseFlow above frees it, leaving `fp` dangling.
    Flow* cur = service_->flow_by_id(id);
    if (cur == nullptr || cur->cstate == ConnState::kFreed) {
      continue;
    }
    if (still_pending) {
      keep.push_back(id);
    } else {
      cur->cold().in_pending = false;
    }
  }
  pending_.swap(keep);
}

void SlowPath::MonitorCores() {
  const int max_cores = service_->max_cores();
  if (busy_snapshot_.empty()) {
    busy_snapshot_.resize(static_cast<size_t>(max_cores), 0);
  }
  const TimeNs window = service_->config().monitor_interval;
  const int active = service_->active_cores();

  double idle_total = 0;
  for (int i = 0; i < active; ++i) {
    Core* core = service_->fastpath_cpu(i);
    const TimeNs busy = core->busy_ns() - busy_snapshot_[i];
    const double util =
        std::clamp(static_cast<double>(busy) / static_cast<double>(window), 0.0, 1.0);
    idle_total += 1.0 - util;
  }
  for (int i = 0; i < max_cores; ++i) {
    busy_snapshot_[i] = service_->fastpath_cpu(i)->busy_ns();
  }

  if (service_->config().dynamic_cores && idle_total > service_->config().idle_remove_threshold &&
      active > 1) {
    service_->SetActiveCores(active - 1);
  } else if (service_->config().dynamic_cores &&
             idle_total < service_->config().idle_add_threshold && active < max_cores) {
    service_->SetActiveCores(active + 1);
  } else if (service_->config().group_migration && active > 1) {
    // Stable core count this interval: spend it on load balancing instead.
    // One flow-group migration per interval keeps the controller stable.
    service_->steering()->MaybeRebalance(active, service_->config().migrate_imbalance);
  }
}

}  // namespace tas
