// TasService: the TAS process (paper §4) — owns the NIC, a configurable
// maximum number of fast-path cores, the slow path, the flow table, and the
// per-application context queues. libTAS (src/libtas) talks to it the way
// the real libTAS talks to TAS: commands and payload via shared-memory
// queues and buffers, connection control via the slow path.
#ifndef SRC_TAS_SERVICE_H_
#define SRC_TAS_SERVICE_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/cc/dctcp_rate.h"
#include "src/cpu/core.h"
#include "src/cpu/cost_model.h"
#include "src/nic/nic.h"
#include "src/shm/context_queue.h"
#include "src/tas/flow.h"
#include "src/tas/flow_table.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/tracer.h"
#include "src/util/rng.h"

namespace tas {

class FastPathCore;
class FlowGroupSteering;
class SloWatchdog;
class SlowPath;

// How the fast path handles out-of-order arrivals (Fig 7 ablation).
enum class OooMode {
  kSingleInterval,  // Paper default: track one interval.
  kGoBackN,         // "TAS simple recovery": drop all out-of-order data.
};

struct TasConfig {
  int max_fastpath_cores = 4;
  double core_ghz = 2.1;
  // Workload proportionality (paper §3.4). When false, all cores stay active.
  bool dynamic_cores = false;
  TimeNs monitor_interval = Ms(1);
  double idle_remove_threshold = 1.25;  // Aggregate idle cores to drop one.
  double idle_add_threshold = 0.2;      // Aggregate idle cores to add one.
  TimeNs block_timeout = Ms(10);        // Poll idle time before blocking.
  TimeNs wake_latency = Us(5);          // eventfd wake + reschedule cost.
  // Load-aware flow-group migration (§3.4 at million-flow scale): each
  // monitor interval the controller may move the hottest RSS flow group from
  // the busiest active core to the least busy one, when the interval packet
  // loads diverge past migrate_imbalance. Off by default: the round-robin
  // group layout is the baseline and migration perturbs steering history.
  bool group_migration = false;
  double migrate_imbalance = 2.0;

  // Congestion control (slow path policy). Rate-based algorithms pace via
  // per-flow buckets; kDctcpWindow makes the fast path enforce a window
  // (tx_sent <= cc window) instead — paper §3.2 supports both.
  CcAlgorithm cc_algorithm = CcAlgorithm::kDctcpRate;
  DctcpRateConfig dctcp;
  TimeNs control_interval = Us(50);     // tau; paper default 2 RTTs.
  int rto_stall_intervals = 2;          // Intervals without progress -> rexmit.
  // Floor on the data-path retransmission timeout (RFC 6298 clamps RTO from
  // below; datacenter stacks use low-millisecond floors). Guards flows whose
  // RTT estimate is missing or stale-low against spurious resets when
  // queueing or batched delivery delays an ACK past a few control intervals.
  TimeNs min_rto = Ms(1);

  // Connection parameters.
  uint16_t mss = 1448;
  uint8_t window_scale = 7;
  uint32_t rx_buffer_bytes = 64 * 1024;
  uint32_t tx_buffer_bytes = 64 * 1024;
  TimeNs handshake_rto = Ms(20);  // SYN/FIN retransmission (doubles per retry).
  int max_handshake_retries = 8;
  TimeNs time_wait = Ms(1);
  OooMode ooo_mode = OooMode::kSingleInterval;

  // Fast-path batching (paper §3.1: DPDK-style bursts). Each RunOne()
  // dispatch drains up to this many RX packets plus queued TX/window-update
  // work and retires them with a single aggregated completion event.
  // 1 reproduces the pre-batching packet-serial semantics exactly.
  int rx_batch_size = 16;
  // libTAS-side analogue: events drained from a context queue per app
  // wakeup (mTCP-style batched event delivery).
  int app_event_batch = 16;

  // CPU cost model for the fast path side.
  const StackCostModel* costs = &TasSocketsCostModel();

  // Observability (src/trace): flow-event tracing, CPU spans, periodic
  // sampling. Everything defaults to off; the metric registry is always on
  // (it only holds pointers into the stats structs).
  TraceConfig trace;

  // Flight recorder + SLO watchdog (DESIGN.md §15). When enabled, the first
  // such host installs the process-wide FlightRecorder and every armed host
  // runs an SloWatchdog on the monitor cadence; a sustained breach serializes
  // a diagnostic bundle. Off by default — and costs nothing off.
  WatchdogConfig watchdog;

  uint64_t rng_seed = 0x7A5;

  // Parallel simulation (DESIGN.md §13): worker threads for the
  // island-partitioned event loop. 0 = unset (the exact serial simulator);
  // the Experiment builders take the max across host specs, and the
  // TAS_SIM_THREADS environment variable overrides everything. Any explicit
  // value >= 1 partitions the topology into islands — the partitioned
  // schedule is identical for every thread count (1 included), so thread
  // sweeps hold the workload results fixed while varying parallelism.
  int sim_threads = 0;
};

struct TasStats {
  uint64_t fastpath_rx_packets = 0;
  uint64_t fastpath_tx_packets = 0;
  uint64_t fastpath_acks_sent = 0;
  uint64_t rx_buffer_drops = 0;   // Payload buffer full (paper: just drop).
  uint64_t ooo_accepted = 0;
  uint64_t ooo_dropped = 0;
  uint64_t fast_retransmits = 0;
  uint64_t timeout_retransmits = 0;
  uint64_t handshake_retransmits = 0;  // SYN/SYN-ACK resends by the slow path.
  uint64_t exceptions = 0;
  uint64_t cross_core_packets = 0;
  uint64_t slowpath_packets = 0;
  uint64_t connections_established = 0;
  uint64_t connections_closed = 0;
};

class TasService {
 public:
  TasService(Simulator* sim, HostPort* port, const TasConfig& config);
  ~TasService();

  TasService(const TasService&) = delete;
  TasService& operator=(const TasService&) = delete;

  // --- libTAS-facing API ----------------------------------------------------
  // Registers an application context queue pair; returns the context id.
  uint16_t RegisterContext(AppContext* context);
  // Starts a passive listener; incoming connections are announced on the
  // registered context as kAcceptable events carrying the new flow id.
  void Listen(uint16_t port, uint64_t opaque, uint16_t context);
  // Starts an active open. The flow id is allocated synchronously; the
  // handshake completes asynchronously and is announced with kConnOpened.
  FlowId Connect(IpAddr dst_ip, uint16_t dst_port, uint64_t opaque, uint16_t context);
  // Graceful close (FIN after pending data drains).
  void Close(FlowId flow_id);
  // Shared-memory view of the flow (libTAS reads/writes payload buffers).
  Flow* GetFlow(FlowId flow_id);

  // --- Introspection ---------------------------------------------------------
  Simulator* sim() const { return sim_; }
  SimNic* nic() { return nic_.get(); }
  const TasConfig& config() const { return config_; }
  const TasStats& stats() const { return stats_; }
  TasStats& mutable_stats() { return stats_; }
  int active_cores() const { return active_cores_; }
  int max_cores() const { return config_.max_fastpath_cores; }
  Core* fastpath_cpu(int i);
  Core* slowpath_cpu();
  SlowPath* slow_path() { return slow_path_.get(); }
  FastPathCore* fastpath(int i);
  size_t num_flows() const { return live_flows_; }
  IpAddr local_ip() const;
  // The host's observability bundle: metric registry, flow-event tracer,
  // time-series sampler, CPU span recorder, exporters (src/trace).
  Tracer& tracer() { return *tracer_; }
  const Tracer& tracer() const { return *tracer_; }
  // Shorthand the fast/slow paths use on their emission sites.
  FlowTracer& flow_trace() { return tracer_->flow_events(); }
  // (time, active core count) series for the Fig 14 proportionality plot —
  // an event-driven TimeSeries ("tas.active_cores") in the unified sampler.
  const TimeSeries& core_trace() const { return *core_series_; }

  // --- Internal API shared by fast path / slow path / libtas ----------------
  AppContext* context(uint16_t id) { return contexts_[id]; }
  uint16_t num_contexts() const { return static_cast<uint16_t>(contexts_.size()); }
  Flow* LookupFlow(const FlowKey& key);
  FlowId LookupFlowId(const FlowKey& key);
  // Read-only view of the lookup structure (bench occupancy/probe reports).
  const FlowTable& flow_table() const { return flow_table_; }
  // Generation-checked: a stale id (slot recycled since) yields nullptr.
  Flow* flow_by_id(FlowId id) { return flows_.Get(id); }
  FlowId AllocateFlow(const FlowKey& key);
  void FreeFlow(FlowId id);
  uint16_t AllocateEphemeralPort();
  // Which fast-path core currently owns packets of this flow (RSS steering).
  int CoreForFlow(const Flow& flow) const;
  // The flow's RSS redirection entry == its flow group (steering unit).
  int RedirectionEntryForFlow(const Flow& flow) const;
  FlowGroupSteering* steering() { return steering_.get(); }
  // This host's SLO watchdog (null unless config.watchdog.enabled).
  SloWatchdog* watchdog() { return watchdog_.get(); }
  // The FlightRecorder this host owns and installed (null unless it was the
  // first watchdog-enabled host; use FlightRecorder::Current() for the
  // process-wide instance).
  FlightRecorder* owned_recorder() { return recorder_.get(); }
  // Queues transmit work for a flow on its owning core.
  void ScheduleFlowTx(FlowId id, TimeNs earliest);
  // Marks a flow for the slow path's next congestion-control iteration.
  void MarkFlowDirty(FlowId id);
  void SetActiveCores(int count);
  Rng& rng() { return rng_; }
  uint64_t ExtraCacheCyclesPerPacket() const {
    return config_.costs->cache.ExtraCyclesPerPacket(live_flows_);
  }
  std::vector<FlowId>& dirty_flows() { return dirty_flows_; }

 private:
  void DrainContextCommands(uint16_t context_id);
  // Wires every subsystem into the tracer: metric registration, CPU span
  // listeners, per-core / per-flow sampling probes. Runs once from the ctor.
  void RegisterTraceInstrumentation();

  Simulator* sim_;
  TasConfig config_;
  // Declared before the subsystems whose gauges/listeners reference it.
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<SimNic> nic_;
  std::unique_ptr<Core> slowpath_core_;
  std::vector<std::unique_ptr<Core>> fastpath_cores_;
  std::vector<std::unique_ptr<FastPathCore>> fastpaths_;
  std::unique_ptr<FlowGroupSteering> steering_;
  std::unique_ptr<SlowPath> slow_path_;
  std::vector<AppContext*> contexts_;

  FlowSlab flows_;
  FlowTable flow_table_;
  std::vector<FlowId> dirty_flows_;
  size_t live_flows_ = 0;
  uint16_t next_ephemeral_ = 20000;
  std::vector<uint32_t> port_use_count_ = std::vector<uint32_t>(65536, 0);
  int active_cores_ = 1;
  // True if this service installed its tracer's LatencyTracer as the global
  // stamp sink (first latency-enabled host); the dtor uninstalls it.
  bool latency_installed_ = false;
  // Same for the global CausalTracer (request-level causal tracing).
  bool causal_installed_ = false;
  // Owned + installed process-wide by the first watchdog-enabled host.
  std::unique_ptr<FlightRecorder> recorder_;
  bool recorder_installed_ = false;
  std::unique_ptr<SloWatchdog> watchdog_;
  TimeSeries* core_series_ = nullptr;  // Owned by tracer_->sampler().
  TasStats stats_;
  Rng rng_;
};

}  // namespace tas

#endif  // SRC_TAS_SERVICE_H_
