#include "src/tas/flow.h"

#include <algorithm>
#include <cstring>

#include "src/util/logging.h"

namespace tas {

const char* ConnStateName(ConnState state) {
  switch (state) {
    case ConnState::kSynSent:
      return "SYN_SENT";
    case ConnState::kSynRcvd:
      return "SYN_RCVD";
    case ConnState::kEstablished:
      return "ESTABLISHED";
    case ConnState::kFinWait1:
      return "FIN_WAIT_1";
    case ConnState::kFinWait2:
      return "FIN_WAIT_2";
    case ConnState::kCloseWait:
      return "CLOSE_WAIT";
    case ConnState::kLastAck:
      return "LAST_ACK";
    case ConnState::kTimeWait:
      return "TIME_WAIT";
    case ConnState::kFreed:
      return "FREED";
  }
  return "?";
}

namespace {

// Copies len bytes to/from a ring at a free-running position.
void RingCopyIn(uint8_t* base, uint32_t size, uint32_t pos, const uint8_t* src, uint32_t len) {
  const uint32_t at = pos % size;
  const uint32_t first = std::min(len, size - at);
  std::memcpy(base + at, src, first);
  if (first < len) {
    std::memcpy(base, src + first, len - first);
  }
}

void RingCopyOut(const uint8_t* base, uint32_t size, uint32_t pos, uint8_t* dst, uint32_t len) {
  const uint32_t at = pos % size;
  const uint32_t first = std::min(len, size - at);
  std::memcpy(dst, base + at, first);
  if (first < len) {
    std::memcpy(dst + first, base, len - first);
  }
}

}  // namespace

void FlowCold::Reset() {
  rx_mem.clear();  // clear() keeps capacity; the next resize() reuses it.
  tx_mem.clear();
  cc.reset();
  wcc.reset();
  last_seq_sampled = 0;
  stalled_intervals = 0;
  fin_received = false;
  fin_sent = false;
  fin_acked = false;
  app_closed = false;
  fin_event_sent = false;
  closed_event_sent = false;
  in_pending = false;
  ctrl_retries = 0;
  last_ctrl_send = 0;
  timewait_start = 0;
  established_at = 0;
}

FlowCold& Flow::EnsureCold() {
  owned_cold_ = std::make_unique<FlowCold>();
  cold_ptr_ = owned_cold_.get();
  return *cold_ptr_;
}

void Flow::Reset() {
  fs = FlowState{};
  mss = 1448;
  peer_wscale = 0;
  ts_echo = 0;
  rate_bps = 10e6;
  cc_window = 0;
  tx_tokens = 0;
  tokens_updated = 0;
  next_tx_time = 0;
  tx_pending = false;
  in_dirty = false;
  cstate = ConnState::kSynSent;
  if (cold_ptr_ != nullptr) {
    cold_ptr_->Reset();
  }
}

void Flow::CopyIntoRx(uint32_t wire_pos, const uint8_t* src, uint32_t len) {
  if (len == 0) {
    return;
  }
  RingCopyIn(fs.rx_base, fs.rx_size, wire_pos, src, len);
}

void Flow::CopyFromTx(uint32_t wire_pos, uint8_t* dst, uint32_t len) const {
  if (len == 0) {
    return;
  }
  RingCopyOut(fs.tx_base, fs.tx_size, wire_pos, dst, len);
}

uint32_t Flow::AppWriteTx(const uint8_t* src, uint32_t len) {
  const uint32_t free_space = fs.tx_size - TxQueued();
  const uint32_t n = std::min(len, free_space);
  if (n == 0) {
    return 0;
  }
  RingCopyIn(fs.tx_base, fs.tx_size, fs.tx_head, src, n);
  fs.tx_head += n;
  return n;
}

uint32_t Flow::AppReadRx(uint8_t* dst, uint32_t len) {
  const uint32_t n = std::min(len, RxUsed());
  if (n == 0) {
    return 0;
  }
  RingCopyOut(fs.rx_base, fs.rx_size, fs.rx_tail, dst, n);
  fs.rx_tail += n;
  return n;
}

}  // namespace tas
