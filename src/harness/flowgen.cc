#include "src/harness/flowgen.h"

#include <algorithm>

namespace tas {

FlowSource::FlowSource(Simulator* sim, Stack* stack, const FlowGenConfig& config)
    : sim_(sim),
      stack_(stack),
      config_(config),
      rng_(config.rng_seed),
      sizes_(config.pareto_min_bytes, config.pareto_max_bytes, config.pareto_alpha),
      chunk_(8192, 0x42) {}

void FlowSource::Start() {
  stack_->SetHandler(this);
  ArrivalTick();
}

void FlowSource::AlsoSink(uint16_t port) { stack_->Listen(port); }

void FlowSource::OnData(ConnId conn, size_t bytes) {
  // Sink role: drain payload of accepted flows.
  size_t remaining = bytes;
  while (remaining > 0) {
    const size_t n = stack_->Recv(conn, chunk_.data(), std::min(remaining, chunk_.size()));
    if (n == 0) {
      break;
    }
    remaining -= n;
  }
}

void FlowSource::BeginMeasurement() {
  measuring_ = true;
  fct_all_.Clear();
  fct_short_.Clear();
  fct_long_.Clear();
}

void FlowSource::ArrivalTick() {
  sim_->After(static_cast<TimeNs>(
                  rng_.NextExp(static_cast<double>(config_.mean_interarrival))),
              [this] {
                if (flows_.size() < config_.max_concurrent) {
                  StartFlow();
                }
                ArrivalTick();
              });
}

void FlowSource::StartFlow() {
  const auto& dst =
      config_.destinations[rng_.NextUint64(config_.destinations.size())];
  const ConnId conn = stack_->Connect(dst.first, dst.second);
  FlowRec rec;
  rec.size = static_cast<size_t>(sizes_.Sample(rng_));
  rec.started_at = sim_->Now();
  flows_[conn] = rec;
  ++started_;
}

void FlowSource::OnConnected(ConnId conn, bool success) {
  auto it = flows_.find(conn);
  if (it == flows_.end()) {
    return;
  }
  if (!success) {
    flows_.erase(it);
    return;
  }
  PumpFlow(conn, it->second);
}

void FlowSource::PumpFlow(ConnId conn, FlowRec& rec) {
  while (rec.queued < rec.size) {
    const size_t want = std::min(chunk_.size(), rec.size - rec.queued);
    const size_t sent = stack_->Send(conn, chunk_.data(), want);
    rec.queued += sent;
    if (sent < want) {
      break;  // Send buffer full; OnSendSpace resumes.
    }
  }
}

void FlowSource::OnSendSpace(ConnId conn, size_t bytes) {
  auto it = flows_.find(conn);
  if (it == flows_.end()) {
    return;
  }
  FlowRec& rec = it->second;
  rec.acked += bytes;
  if (rec.queued < rec.size) {
    PumpFlow(conn, rec);
  }
  if (rec.acked >= rec.size) {
    // Flow complete: all bytes delivered and acknowledged.
    const double fct_ms = ToMs(sim_->Now() - rec.started_at);
    if (measuring_) {
      fct_all_.Add(fct_ms);
      // Short/long split at 50 packets of 1448 B (paper Fig 12).
      if (rec.size <= 50 * 1448) {
        fct_short_.Add(fct_ms);
      } else {
        fct_long_.Add(fct_ms);
      }
    }
    ++completed_;
    flows_.erase(it);
    stack_->Close(conn);
  }
}

void FlowSource::OnClosed(ConnId conn) { flows_.erase(conn); }

void FlowSource::OnRemoteClosed(ConnId conn) {
  flows_.erase(conn);
  stack_->Close(conn);
}

FlowSink::FlowSink(Simulator* sim, Stack* stack, uint16_t port)
    : sim_(sim), stack_(stack), port_(port), scratch_(64 * 1024) {}

void FlowSink::Start() {
  stack_->SetHandler(this);
  stack_->Listen(port_);
}

void FlowSink::OnData(ConnId conn, size_t bytes) {
  size_t remaining = bytes;
  while (remaining > 0) {
    const size_t n =
        stack_->Recv(conn, scratch_.data(), std::min(remaining, scratch_.size()));
    if (n == 0) {
      break;
    }
    bytes_ += n;
    remaining -= n;
  }
}

void FlowSink::OnRemoteClosed(ConnId conn) { stack_->Close(conn); }

}  // namespace tas
