#include "src/harness/experiment.h"

#include <algorithm>
#include <cstdlib>

#include "src/tas/watchdog.h"
#include "src/trace/causal.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/latency.h"
#include "src/util/island.h"

namespace tas {

const char* StackKindName(StackKind kind) {
  switch (kind) {
    case StackKind::kTas:
      return "TAS";
    case StackKind::kTasLowLevel:
      return "TAS LL";
    case StackKind::kLinux:
      return "Linux";
    case StackKind::kIx:
      return "IX";
    case StackKind::kMtcp:
      return "mTCP";
  }
  return "?";
}

SimHost::SimHost(Simulator* sim, HostPort* port, const HostSpec& spec)
    : spec_(spec), ip_(port->ip) {
  for (int i = 0; i < spec.app_cores; ++i) {
    app_cores_.push_back(std::make_unique<Core>(sim, 2000 + i, spec.ghz));
  }

  switch (spec.stack) {
    case StackKind::kTas:
    case StackKind::kTasLowLevel: {
      TasConfig config = spec.tas_overridden ? spec.tas : TasConfig{};
      if (!spec.tas_overridden) {
        config.max_fastpath_cores = spec.stack_cores;
        config.core_ghz = spec.ghz;
      }
      if (TraceOutPrefix() != nullptr) {
        // The env knob turns on everything; the per-host bundles are dumped
        // by Experiment::MaybeWriteTraces on teardown.
        config.trace.flow_events = true;
        config.trace.cpu_spans = true;
        config.trace.sample_flows = true;
        config.trace.latency_stages = true;
        config.trace.causal = true;
        if (config.trace.sample_period == 0) {
          config.trace.sample_period = Us(100);
        }
      }
      if (const char* wd = WatchdogOutPrefix()) {
        config.watchdog.enabled = true;
        if (std::string(wd) != "-") {
          config.watchdog.bundle_prefix = wd;
        }
      }
      const StackCostModel* api = spec.stack == StackKind::kTas
                                      ? &TasSocketsCostModel()
                                      : &TasLowLevelCostModel();
      if (spec.stack == StackKind::kTasLowLevel && !spec.tas_overridden) {
        config.costs = &TasLowLevelCostModel();
      }
      tas_ = std::make_unique<TasService>(sim, port, config);
      stack_ = std::make_unique<TasStack>(tas_.get(), AppCorePtrs(), api);
      break;
    }
    case StackKind::kLinux:
    case StackKind::kIx:
    case StackKind::kMtcp: {
      EngineStackConfig config;
      if (spec.engine_overridden) {
        config = spec.engine;
      } else if (spec.stack == StackKind::kLinux) {
        config = LinuxStackConfig();
      } else if (spec.stack == StackKind::kIx) {
        config = IxStackConfig();
      } else {
        config = MtcpStackConfig(spec.stack_cores);
      }
      config.ghz = spec.ghz;
      auto engine = std::make_unique<EngineStack>(sim, port, AppCorePtrs(), config);
      engine_ = engine.get();
      stack_ = std::move(engine);
      break;
    }
  }
}

std::vector<Core*> SimHost::AppCorePtrs() {
  std::vector<Core*> out;
  out.reserve(app_cores_.size());
  for (auto& core : app_cores_) {
    out.push_back(core.get());
  }
  return out;
}

uint64_t SimHost::TotalCycles(CpuModule module) const {
  uint64_t total = 0;
  for (const auto& core : app_cores_) {
    total += core->cycles(module);
  }
  if (tas_ != nullptr) {
    for (int i = 0; i < tas_->max_cores(); ++i) {
      total += const_cast<TasService*>(tas_.get())->fastpath_cpu(i)->cycles(module);
    }
    total += const_cast<TasService*>(tas_.get())->slowpath_cpu()->cycles(module);
  }
  if (engine_ != nullptr) {
    auto* engine = const_cast<EngineStack*>(engine_);
    // Dedicated stack cores only; shared cores are already counted above.
    if (engine->stack_core(0) != app_cores_.front().get()) {
      for (size_t i = 0; i < engine->num_stack_cores(); ++i) {
        total += engine->stack_core(i)->cycles(module);
      }
    }
  }
  return total;
}

uint64_t SimHost::TotalCycles() const {
  uint64_t total = 0;
  for (int m = 0; m < kNumCpuModules; ++m) {
    total += TotalCycles(static_cast<CpuModule>(m));
  }
  return total;
}

int Experiment::ResolveSimThreads(const std::vector<HostSpec>& specs) {
  // Returns 0 when nobody asked for the partitioned executor (the default
  // serial path). An explicit 1 — env or config — still builds the partition
  // with one worker: the partitioned schedule is canonical and identical for
  // every thread count, so thread sweeps compare like with like.
  const char* env = std::getenv("TAS_SIM_THREADS");
  if (env != nullptr && *env != '\0') {
    const int v = std::atoi(env);
    if (v >= 1) {
      return v;
    }
    TAS_LOG(WARN) << "ignoring TAS_SIM_THREADS=" << env << " (need an integer >= 1)";
  }
  int threads = 0;
  for (const HostSpec& spec : specs) {
    threads = std::max(threads, spec.tas.sim_threads);
  }
  return threads;
}

void Experiment::EnablePartition(int threads) {
  if (threads < 1) {
    sim_threads_ = 1;  // Unset: today's serial single-heap path, untouched.
    return;
  }
  sim_threads_ = threads;
  partition_ = std::make_unique<SimPartition>(threads);
  partition_->AdoptControl(&sim_);
}

void Experiment::FinishPartitionSetup() {
  // Watchdog sources carry the harness host index ("h0", "h1", ...) so
  // trigger records are topology-stable across IP assignment changes. This
  // runs in every mode, serial included.
  for (size_t i = 0; i < hosts_.size(); ++i) {
    TasService* tas = hosts_[i]->tas();
    if (tas != nullptr && tas->watchdog() != nullptr) {
      tas->watchdog()->set_source("h" + std::to_string(i));
    }
  }
  if (partition_ == nullptr) {
    return;
  }
  const int islands = partition_->num_islands();
  // One packet pool per island, all in one group: packets cross islands, so
  // only the aggregate balance is meaningful (checked when the last pool
  // dies). Island 0 (control) keeps using the experiment pool.
  auto group = std::make_shared<std::atomic<int64_t>>(0);
  packet_pool_.set_group(group);
  for (int i = 1; i < islands; ++i) {
    island_pools_.push_back(std::make_unique<PacketPool>());
    island_pools_.back()->set_group(group);
  }
  partition_->SetIslandEnterHook([this](int island) {
    SetCurrentIslandId(island);
    PacketPool::SetThreadOverride(island == 0 ? nullptr
                                              : island_pools_[island - 1].get());
  });
  // Shard the global tracers by island so stamp sites write race-free.
  if (LatencyTracer* lat = LatencyTracer::Current()) {
    lat->EnableShards(islands);
  }
  if (CausalTracer* causal = CausalTracer::Current()) {
    causal->EnableShards(islands);
  }
  // Shard the flight recorder and defer bundle serialization to the epoch
  // boundary, where exactly one thread runs while workers are parked — the
  // only race-free point for merged window reads and file writes mid-run.
  if (FlightRecorder* recorder = FlightRecorder::Current()) {
    recorder->EnableShards(islands);
    partition_->SetEpochHook([recorder](TimeNs bound) { recorder->OnEpochBound(bound); });
  }
  // Executor counters land in the first TAS host's registry, next to the
  // switch metrics (the bundle WriteTraces dumps).
  for (auto& host : hosts_) {
    TasService* tas = host->tas();
    if (tas == nullptr) {
      continue;
    }
    MetricRegistry& metrics = tas->tracer().metrics();
    SimPartition* p = partition_.get();
    metrics.AddCounterFn("sim.island.epochs", [p] { return p->epochs(); });
    metrics.AddCounterFn("sim.island.cross_posts", [p] { return p->cross_posts(); });
    metrics.AddCounterFn("sim.island.cross_items", [p] { return p->cross_items(); });
    metrics.AddCounterFn("sim.island.events", [p] { return p->events_executed(); });
    metrics.AddGauge("sim.island.count",
                     [p] { return static_cast<double>(p->num_islands()); });
    metrics.AddGauge("sim.island.threads",
                     [p] { return static_cast<double>(p->threads()); });
    metrics.AddGauge("sim.island.lookahead_ns",
                     [p] { return static_cast<double>(p->lookahead()); });
    break;
  }
}

std::unique_ptr<Experiment> Experiment::Star(const std::vector<HostSpec>& specs,
                                             const std::vector<LinkConfig>& links,
                                             TimeNs switch_latency) {
  auto exp = std::make_unique<Experiment>();
  exp->EnablePartition(ResolveSimThreads(specs));
  std::vector<LinkConfig> host_links;
  for (size_t i = 0; i < specs.size(); ++i) {
    host_links.push_back(links.size() == 1 ? links[0] : links[i]);
  }
  exp->net_ = MakeStar(&exp->sim_, host_links, switch_latency, exp->partition_.get());
  for (size_t i = 0; i < specs.size(); ++i) {
    exp->hosts_.push_back(std::make_unique<SimHost>(exp->net_->host_sim(i),
                                                    &exp->net_->host(i), specs[i]));
  }
  exp->RegisterSwitchMetrics();
  exp->FinishPartitionSetup();
  return exp;
}

std::unique_ptr<Experiment> Experiment::PointToPoint(const HostSpec& a, const HostSpec& b,
                                                     const LinkConfig& link) {
  auto exp = std::make_unique<Experiment>();
  exp->EnablePartition(ResolveSimThreads({a, b}));
  exp->net_ = MakePointToPoint(&exp->sim_, link, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2),
                               exp->partition_.get());
  exp->hosts_.push_back(
      std::make_unique<SimHost>(exp->net_->host_sim(0), &exp->net_->host(0), a));
  exp->hosts_.push_back(
      std::make_unique<SimHost>(exp->net_->host_sim(1), &exp->net_->host(1), b));
  exp->FinishPartitionSetup();
  return exp;
}

std::unique_ptr<Experiment> Experiment::Custom(
    const std::function<std::unique_ptr<Network>(Simulator*, SimPartition*)>& build,
    const std::vector<HostSpec>& specs) {
  auto exp = std::make_unique<Experiment>();
  exp->EnablePartition(ResolveSimThreads(specs));
  exp->net_ = build(&exp->sim_, exp->partition_.get());
  TAS_CHECK(!specs.empty());
  for (size_t i = 0; i < exp->net_->num_hosts(); ++i) {
    exp->hosts_.push_back(std::make_unique<SimHost>(
        exp->net_->host_sim(i), &exp->net_->host(i), specs[i % specs.size()]));
  }
  exp->RegisterSwitchMetrics();
  exp->FinishPartitionSetup();
  return exp;
}

PacketPoolStats Experiment::pool_stats() const {
  PacketPoolStats total = packet_pool_.stats();
  for (const auto& pool : island_pools_) {
    const PacketPoolStats s = pool->stats();
    total.allocated += s.allocated;
    total.reused += s.reused;
    total.released += s.released;
    total.unpooled += s.unpooled;
    total.free_size += s.free_size;
    total.outstanding += s.outstanding;
  }
  return total;
}

uint64_t Experiment::events_executed() const {
  return partition_ != nullptr ? partition_->events_executed() : sim_.events_executed();
}

void Experiment::RegisterSwitchMetrics() {
  for (auto& host : hosts_) {
    TasService* tas = host->tas();
    if (tas == nullptr) {
      continue;
    }
    for (size_t s = 0; s < net_->num_switches(); ++s) {
      Switch* sw = net_->switch_at(s);
      sw->RegisterMetrics(&tas->tracer().metrics(), "switch." + sw->name());
    }
    return;
  }
}

Experiment::Experiment() { pool_scope_.previous = PacketPool::Install(&packet_pool_); }

Experiment::~Experiment() {
  MaybeWriteTraces();
  // pool_scope_ restores the previously installed pool once the partition and
  // simulator (and their in-flight packets) are gone.
}

size_t Experiment::WriteTraces(const std::string& prefix) {
  size_t written = 0;
  for (size_t i = 0; i < hosts_.size(); ++i) {
    TasService* tas = hosts_[i]->tas();
    if (tas == nullptr) {
      continue;
    }
    const std::string host_prefix = prefix + ".h" + std::to_string(i);
    if (tas->tracer().WriteAll(host_prefix)) {
      TAS_LOG(INFO) << "wrote trace bundle " << host_prefix << ".{metrics,flow_events,"
                    << "timeseries}.jsonl + .perfetto.json";
      ++written;
    } else {
      TAS_LOG(WARN) << "failed to write trace bundle under " << host_prefix;
    }
  }
  return written;
}

void Experiment::MaybeWriteTraces() {
  const char* prefix = TraceOutPrefix();
  if (prefix != nullptr) {
    WriteTraces(prefix);
  }
}

bool FullScale() {
  const char* env = std::getenv("TAS_SCALE");
  return env != nullptr && std::string(env) == "full";
}

size_t ScalePick(size_t reduced, size_t full) { return FullScale() ? full : reduced; }

const char* TraceOutPrefix() {
  const char* env = std::getenv("TAS_TRACE_OUT");
  return (env != nullptr && *env != '\0') ? env : nullptr;
}

const char* WatchdogOutPrefix() {
  const char* env = std::getenv("TAS_WATCHDOG");
  return (env != nullptr && *env != '\0') ? env : nullptr;
}

}  // namespace tas
