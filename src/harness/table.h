// Aligned-column table printing for the paper-figure regenerators: every
// bench binary prints the rows/series the paper reports through this.
#ifndef SRC_HARNESS_TABLE_H_
#define SRC_HARNESS_TABLE_H_

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace tas {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  // Variadic row: each cell is streamed to a string.
  template <typename... Cells>
  void AddRow(const Cells&... cells) {
    std::vector<std::string> row;
    (row.push_back(ToCell(cells)), ...);
    rows_.push_back(std::move(row));
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) {
      widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    PrintRow(os, headers_, widths);
    std::string sep;
    for (size_t i = 0; i < widths.size(); ++i) {
      sep += std::string(widths[i] + 2, '-');
    }
    os << sep << "\n";
    for (const auto& row : rows_) {
      PrintRow(os, row, widths);
    }
  }

 private:
  template <typename T>
  static std::string ToCell(const T& value) {
    std::ostringstream os;
    if constexpr (std::is_floating_point_v<T>) {
      os << std::fixed << std::setprecision(2) << value;
    } else {
      os << value;
    }
    return os.str();
  }

  static void PrintRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision (for cells where the default
// 2-digit formatting is wrong).
inline std::string Fmt(double value, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace tas

#endif  // SRC_HARNESS_TABLE_H_
