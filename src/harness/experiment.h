// Experiment harness: wires simulated hosts (CPU cores + NIC + one of the
// five stacks) onto a network topology, so each benchmark reads like the
// paper's testbed setup: "one 24-core server with a 40G NIC, six 6-core
// clients with 10G NICs, all on one switch".
#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/engine_stack.h"
#include "src/baseline/stack_iface.h"
#include "src/fault/injector.h"
#include "src/libtas/tas_stack.h"
#include "src/net/packet_pool.h"
#include "src/net/topology.h"
#include "src/sim/parallel.h"
#include "src/tas/service.h"

namespace tas {

enum class StackKind {
  kTas,          // TAS with POSIX sockets ("TAS SO").
  kTasLowLevel,  // TAS with the low-level API ("TAS LL").
  kLinux,
  kIx,
  kMtcp,
};

const char* StackKindName(StackKind kind);

struct HostSpec {
  StackKind stack = StackKind::kLinux;
  int app_cores = 1;
  // TAS: maximum fast-path cores. mTCP: dedicated stack cores. Ignored by
  // Linux/IX (stack shares app cores).
  int stack_cores = 2;
  double ghz = 2.1;
  // Optional overrides; when unset the kind's calibrated defaults are used.
  TasConfig tas;
  bool tas_overridden = false;
  EngineStackConfig engine;
  bool engine_overridden = false;
};

// A host instantiated on the network: its application cores, its stack, and
// (for TAS hosts) the TAS service process.
class SimHost {
 public:
  SimHost(Simulator* sim, HostPort* port, const HostSpec& spec);

  Stack* stack() { return stack_.get(); }
  TasService* tas() { return tas_.get(); }            // Null for baselines.
  EngineStack* engine() { return engine_; }           // Null for TAS hosts.
  Core* app_core(size_t i) { return app_cores_[i].get(); }
  size_t num_app_cores() const { return app_cores_.size(); }
  std::vector<Core*> AppCorePtrs();
  IpAddr ip() const { return ip_; }
  const HostSpec& spec() const { return spec_; }

  // Total cycles burned across app + stack cores, by module.
  uint64_t TotalCycles(CpuModule module) const;
  uint64_t TotalCycles() const;

 private:
  HostSpec spec_;
  IpAddr ip_;
  std::vector<std::unique_ptr<Core>> app_cores_;
  std::unique_ptr<TasService> tas_;
  std::unique_ptr<Stack> stack_;
  EngineStack* engine_ = nullptr;  // Aliases stack_ when baseline.
};

// A full experiment: simulator + topology + hosts.
class Experiment {
 public:
  // Installs the experiment's packet pool as PacketPool::Current() so all
  // allocation during the run (and its pool counters) is scoped to this
  // simulation — two same-seed experiments in one process see identical
  // pktpool metrics.
  Experiment();
  // Auto-dumps traces when TAS_TRACE_OUT is set (see MaybeWriteTraces) and
  // restores the previously installed packet pool.
  ~Experiment();

  PacketPool& packet_pool() { return packet_pool_; }
  // Pool stats summed across the control pool and every island pool (equal
  // to packet_pool().stats() in a serial experiment).
  PacketPoolStats pool_stats() const;
  // Events executed across all islands (or the control simulator when
  // serial). Benches report this instead of sim().events_executed(), which
  // only covers island 0 under the partitioned executor.
  uint64_t events_executed() const;

  Simulator& sim() { return sim_; }
  Network* net() { return net_.get(); }
  SimHost& host(size_t i) { return *hosts_[i]; }
  size_t num_hosts() const { return hosts_.size(); }

  // The island simulator host i's stack and applications run on. In a serial
  // experiment (sim_threads unset) this is the control simulator — identical
  // to &sim(). Apps must schedule their events here so they execute on the
  // host's island thread (DESIGN.md §13).
  Simulator* host_sim(size_t i) { return net_->host_sim(i); }
  // Non-null when the experiment runs the island-partitioned executor (any
  // explicitly requested sim_threads, including 1 — the partitioned schedule
  // is identical for every thread count, so sweeps compare like with like).
  SimPartition* partition() { return partition_.get(); }
  // Worker threads the event loop runs on (>= 1). Resolved from
  // TAS_SIM_THREADS (wins) or the max HostSpec::tas.sim_threads.
  int sim_threads() const { return sim_threads_; }

  // Host i's access link — the usual fault-schedule target.
  Link* host_link(size_t i) { return net_->host(i).access_link; }
  // The experiment's fault injector (created on first use). Typical scenario:
  //   FaultSchedule chaos;
  //   chaos.LinkFlap(Ms(50), Ms(10), exp->host_link(2));
  //   exp->faults().Install(std::move(chaos));
  FaultInjector& faults() {
    if (faults_ == nullptr) {
      faults_ = std::make_unique<FaultInjector>(&sim_);
    }
    return *faults_;
  }

  // Writes every TAS host's trace bundle (metrics / flow events / time
  // series JSONL + Perfetto JSON) to "<prefix>.h<i>.*". Returns the number
  // of hosts written.
  size_t WriteTraces(const std::string& prefix);
  // Env-var knob: when TAS_TRACE_OUT=<prefix> is set, dumps traces there.
  // No-op otherwise. Runs automatically from the destructor.
  void MaybeWriteTraces();

  // Hosts around one switch. specs[i] uses links[i] (or links[0] if only one
  // link config is given).
  static std::unique_ptr<Experiment> Star(const std::vector<HostSpec>& specs,
                                          const std::vector<LinkConfig>& links,
                                          TimeNs switch_latency = 500);

  // Two hosts, one link.
  static std::unique_ptr<Experiment> PointToPoint(const HostSpec& a, const HostSpec& b,
                                                  const LinkConfig& link);

  // Hosts on a custom topology: `build` constructs the network on the
  // experiment's simulator (e.g. MakeFatTree), threading the partition (null
  // in serial experiments) through to the topology builder; host i of the
  // network gets specs[i % specs.size()].
  static std::unique_ptr<Experiment> Custom(
      const std::function<std::unique_ptr<Network>(Simulator*, SimPartition*)>& build,
      const std::vector<HostSpec>& specs);

 private:
  // Switches belong to the network, not any host, so the harness exports
  // their counters (forwarded, pending_hw, per-port queue depth) into the
  // first TAS host's metric registry — the bundle WriteTraces dumps.
  void RegisterSwitchMetrics();

  // TAS_SIM_THREADS env (>= 1) wins; else the max HostSpec::tas.sim_threads;
  // else 0 — unset, meaning the exact serial simulator.
  static int ResolveSimThreads(const std::vector<HostSpec>& specs);
  // Creates the SimPartition (threads >= 1) and adopts sim_ as island 0. Must
  // run before the topology is built so hosts/switches land on islands.
  void EnablePartition(int threads);
  // After hosts exist: watchdog source naming (every mode), then — for
  // partitioned runs only — per-island packet pools sharing one
  // group-balance cell, the island-enter hook (thread-local island id +
  // pool override), tracer/recorder sharding, the epoch-boundary bundle
  // hook, and the sim.island.* metrics.
  void FinishPartitionSetup();

  // Declared before sim_ (and before partition_, which owns the island
  // simulators) so the pools are destroyed last: tearing down a simulator
  // destroys pending event closures, whose captured PacketPtrs must still
  // have a live pool to return to.
  PacketPool packet_pool_;
  std::vector<std::unique_ptr<PacketPool>> island_pools_;
  // Restores the previously installed pool *after* partition_/sim_ teardown
  // (reverse member order), so packets disposed from undrained mailboxes
  // still release into this experiment's pool group — keeping the group
  // balance check exact — and *before* the pools above die.
  struct PoolScope {
    PacketPool* previous = nullptr;
    ~PoolScope() { PacketPool::Install(previous); }
  };
  PoolScope pool_scope_;
  std::unique_ptr<SimPartition> partition_;
  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::unique_ptr<FaultInjector> faults_;
  int sim_threads_ = 1;
};

// Scale control: benches run reduced configurations by default on this
// 1-CPU machine; TAS_SCALE=full runs closer to paper scale.
bool FullScale();
// Returns `full` when TAS_SCALE=full, otherwise `reduced`.
size_t ScalePick(size_t reduced, size_t full);

// Trace control: TAS_TRACE_OUT=<path-prefix> enables full tracing (flow
// events, CPU spans, periodic sampling) on every TAS host the harness builds
// and makes Experiment dump per-host trace bundles under the prefix on
// teardown. Returns nullptr when unset.
const char* TraceOutPrefix();

// Watchdog control: TAS_WATCHDOG=<path-prefix> arms the flight recorder +
// SLO watchdog on every TAS host the harness builds; triggered diagnostic
// bundles land under the prefix. The special value "-" arms in-memory only
// (triggers are recorded, no files are written). Returns nullptr when unset.
const char* WatchdogOutPrefix();

}  // namespace tas

#endif  // SRC_HARNESS_EXPERIMENT_H_
