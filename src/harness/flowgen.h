// Flow-level workload generation for the congestion-control experiments
// (paper Figs 11 and 12, replacing the authors' ns-3 simulations): Poisson
// flow arrivals with Pareto-distributed sizes at a target utilization, each
// flow a real TCP connection that opens, transfers, and closes, with flow
// completion time recorded at the sender.
#ifndef SRC_HARNESS_FLOWGEN_H_
#define SRC_HARNESS_FLOWGEN_H_

#include <unordered_map>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace tas {

struct FlowGenConfig {
  // Destination pool: a flow picks uniformly among these.
  std::vector<std::pair<IpAddr, uint16_t>> destinations;
  // Mean flow interarrival (Poisson). Compute from target load:
  //   interarrival = mean_flow_bytes * 8 / (link_bps * load).
  TimeNs mean_interarrival = Us(100);
  // Pareto flow sizes in bytes.
  double pareto_min_bytes = 1448;
  double pareto_max_bytes = 2e6;
  double pareto_alpha = 1.05;
  uint64_t rng_seed = 99;
  size_t max_concurrent = 512;  // Safety valve on open flows.
};

// Drives flows out of one host. Sender-side FCT: Connect() to final byte
// acknowledged.
class FlowSource : public AppHandler {
 public:
  FlowSource(Simulator* sim, Stack* stack, const FlowGenConfig& config);

  void Start();
  // Additionally accept and drain incoming flows on `port` (all-to-all
  // traffic patterns where every host is both source and sink).
  void AlsoSink(uint16_t port);
  void BeginMeasurement();

  uint64_t flows_completed() const { return completed_; }
  uint64_t flows_started() const { return started_; }
  const LatencyRecorder& fct_ms_all() const { return fct_all_; }
  const LatencyRecorder& fct_ms_short() const { return fct_short_; }  // <= 50 pkts
  const LatencyRecorder& fct_ms_long() const { return fct_long_; }    // > 50 pkts

  // AppHandler:
  void OnConnected(ConnId conn, bool success) override;
  void OnSendSpace(ConnId conn, size_t bytes) override;
  void OnClosed(ConnId conn) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnData(ConnId conn, size_t bytes) override;  // Sink side.

 private:
  struct FlowRec {
    size_t size = 0;
    size_t queued = 0;  // Bytes handed to the stack.
    size_t acked = 0;
    TimeNs started_at = 0;
  };

  void ArrivalTick();
  void StartFlow();
  void PumpFlow(ConnId conn, FlowRec& rec);

  Simulator* sim_;
  Stack* stack_;
  FlowGenConfig config_;
  Rng rng_;
  BoundedPareto sizes_;
  std::unordered_map<ConnId, FlowRec> flows_;
  std::vector<uint8_t> chunk_;
  uint64_t started_ = 0;
  uint64_t completed_ = 0;
  bool measuring_ = false;
  LatencyRecorder fct_all_;
  LatencyRecorder fct_short_;
  LatencyRecorder fct_long_;
};

// Accepts flows and drains them; closes when the peer closes.
class FlowSink : public AppHandler {
 public:
  FlowSink(Simulator* sim, Stack* stack, uint16_t port);

  void Start();
  uint64_t bytes_received() const { return bytes_; }

  // AppHandler:
  void OnData(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;

 private:
  Simulator* sim_;
  Stack* stack_;
  uint16_t port_;
  std::vector<uint8_t> scratch_;
  uint64_t bytes_ = 0;
};

}  // namespace tas

#endif  // SRC_HARNESS_FLOWGEN_H_
