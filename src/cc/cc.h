// Congestion-control interfaces.
//
// TAS separates congestion-control *policy* (slow path, per control
// interval) from *enforcement* (fast path rate buckets / windows). The slow
// path drives a RateCc per flow from fast-path feedback counters (paper
// §3.2, Table 3: cnt_ackb, cnt_ecnb, cnt_frexmits, rtt_est). The baseline
// stacks (Linux/IX/mTCP) run a WindowCc per ACK inside the TCP engine.
#ifndef SRC_CC_CC_H_
#define SRC_CC_CC_H_

#include <cstdint>
#include <memory>

#include "src/util/time.h"

namespace tas {

// Feedback for one control-loop iteration of a flow.
struct CcFeedback {
  uint64_t acked_bytes = 0;    // Bytes newly acknowledged this interval.
  uint64_t ecn_bytes = 0;      // Of those, bytes that were ECN marked.
  uint32_t retransmits = 0;    // Fast retransmits + timeouts this interval.
  TimeNs rtt = 0;              // Current RTT estimate.
  double actual_tx_bps = 0;    // Measured send rate over the interval.
  // True if the application had no queued payload at sampling time: the
  // flow's rate is bounded by the app, not by congestion control.
  bool app_limited = false;
};

// Rate-based congestion control, evaluated by the TAS slow path.
class RateCc {
 public:
  virtual ~RateCc() = default;

  // Runs one control-loop iteration; returns the new rate in bits/sec.
  virtual double Update(const CcFeedback& feedback) = 0;

  virtual double rate_bps() const = 0;
  virtual void Reset(double initial_bps) = 0;
};

// Window-based congestion control, evaluated per ACK by the TCP engine.
class WindowCc {
 public:
  virtual ~WindowCc() = default;

  // `acked` bytes were cumulatively acknowledged; `ecn_echo` is the ECE bit.
  virtual void OnAck(uint64_t acked_bytes, bool ecn_echo, TimeNs rtt) = 0;
  // Triple-dupack loss signal.
  virtual void OnFastRetransmit() = 0;
  // RTO expiry.
  virtual void OnTimeout() = 0;

  virtual uint64_t cwnd() const = 0;
};

enum class CcAlgorithm {
  kDctcpRate,   // TAS default (paper §3.2).
  kTimely,      // TAS alternative.
  kDctcpWindow, // Baselines with DCTCP.
  kNewReno,     // Plain TCP baseline (Fig 11 "TCP").
};

}  // namespace tas

#endif  // SRC_CC_CC_H_
