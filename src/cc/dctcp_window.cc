#include "src/cc/dctcp_window.h"

#include <algorithm>

namespace tas {

DctcpWindowCc::DctcpWindowCc(const WindowCcConfig& config)
    : config_(config),
      cwnd_(config.mss * config.initial_cwnd_segments),
      ssthresh_(config.max_cwnd_bytes) {
  window_target_ = cwnd_;
}

void DctcpWindowCc::EndObservationWindow() {
  const double fraction =
      window_acked_ == 0
          ? 0.0
          : static_cast<double>(window_marked_) / static_cast<double>(window_acked_);
  alpha_ = (1 - config_.dctcp_gain) * alpha_ + config_.dctcp_gain * fraction;
  if (window_marked_ > 0) {
    // One multiplicative decrease per window.
    cwnd_ = static_cast<uint64_t>(static_cast<double>(cwnd_) * (1 - alpha_ / 2));
    cwnd_ = std::max(cwnd_, config_.mss * config_.min_cwnd_segments);
    ssthresh_ = cwnd_;
  }
  window_acked_ = 0;
  window_marked_ = 0;
  window_target_ = cwnd_;
}

void DctcpWindowCc::OnAck(uint64_t acked_bytes, bool ecn_echo, TimeNs rtt) {
  (void)rtt;
  window_acked_ += acked_bytes;
  if (ecn_echo) {
    window_marked_ += acked_bytes;
  }

  if (cwnd_ < ssthresh_) {
    cwnd_ += acked_bytes;  // Slow start.
  } else {
    // Additive increase: one MSS per cwnd of acked data.
    cwnd_ += std::max<uint64_t>(1, config_.mss * acked_bytes / std::max<uint64_t>(cwnd_, 1));
  }
  cwnd_ = std::min(cwnd_, config_.max_cwnd_bytes);

  if (window_acked_ >= window_target_) {
    EndObservationWindow();
  }
}

void DctcpWindowCc::OnFastRetransmit() {
  ssthresh_ = std::max(cwnd_ / 2, config_.mss * config_.min_cwnd_segments);
  cwnd_ = ssthresh_;
  window_acked_ = 0;
  window_marked_ = 0;
  window_target_ = cwnd_;
}

void DctcpWindowCc::OnTimeout() {
  ssthresh_ = std::max(cwnd_ / 2, config_.mss * config_.min_cwnd_segments);
  cwnd_ = config_.mss * config_.min_cwnd_segments;
  window_acked_ = 0;
  window_marked_ = 0;
  window_target_ = cwnd_;
}

}  // namespace tas
