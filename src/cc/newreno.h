// TCP NewReno window congestion control (RFC 5681/6582 behaviour at the
// granularity this simulator needs): slow start, congestion avoidance,
// halving on fast retransmit, collapse to one segment on timeout. This is
// the "TCP" baseline of paper Fig 11.
#ifndef SRC_CC_NEWRENO_H_
#define SRC_CC_NEWRENO_H_

#include "src/cc/cc.h"
#include "src/cc/dctcp_window.h"

namespace tas {

class NewRenoCc : public WindowCc {
 public:
  explicit NewRenoCc(const WindowCcConfig& config = {});

  void OnAck(uint64_t acked_bytes, bool ecn_echo, TimeNs rtt) override;
  void OnFastRetransmit() override;
  void OnTimeout() override;
  uint64_t cwnd() const override { return cwnd_; }
  uint64_t ssthresh() const { return ssthresh_; }

 private:
  WindowCcConfig config_;
  uint64_t cwnd_;
  uint64_t ssthresh_;
};

}  // namespace tas

#endif  // SRC_CC_NEWRENO_H_
