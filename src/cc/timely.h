// TIMELY rate control (Mittal et al., SIGCOMM 2015), adapted for TCP by
// adding slow start as the paper describes (§1: "TIMELY (adapted for TCP by
// adding slow-start)").
//
// TIMELY is RTT-gradient based: below Tlow it increases additively, above
// Thigh it decreases multiplicatively, and in between it reacts to the
// normalized RTT gradient — negative gradient earns (possibly hyperactive)
// additive increase, positive gradient a proportional decrease.
#ifndef SRC_CC_TIMELY_H_
#define SRC_CC_TIMELY_H_

#include "src/cc/cc.h"

namespace tas {

struct TimelyConfig {
  double initial_bps = 10e6;
  double min_bps = 1e6;
  double max_bps = 100e9;
  double additive_step_bps = 10e6;
  double beta = 0.8;              // Multiplicative decrease factor weight.
  double ewma_alpha = 0.3;        // RTT-difference EWMA gain.
  TimeNs t_low = Us(50);
  TimeNs t_high = Us(500);
  TimeNs min_rtt = Us(20);
  int hai_threshold = 5;          // Completions before hyper-active increase.
};

class TimelyCc : public RateCc {
 public:
  explicit TimelyCc(const TimelyConfig& config = {});

  double Update(const CcFeedback& feedback) override;
  double rate_bps() const override { return rate_bps_; }
  void Reset(double initial_bps) override;

  bool in_slow_start() const { return slow_start_; }

 private:
  TimelyConfig config_;
  double rate_bps_;
  TimeNs prev_rtt_ = 0;
  double rtt_diff_ = 0;
  int negative_gradient_count_ = 0;
  bool slow_start_ = true;
};

}  // namespace tas

#endif  // SRC_CC_TIMELY_H_
