#include "src/cc/timely.h"

#include <algorithm>

namespace tas {

TimelyCc::TimelyCc(const TimelyConfig& config)
    : config_(config), rate_bps_(config.initial_bps) {}

void TimelyCc::Reset(double initial_bps) {
  rate_bps_ = initial_bps;
  prev_rtt_ = 0;
  rtt_diff_ = 0;
  negative_gradient_count_ = 0;
  slow_start_ = true;
}

double TimelyCc::Update(const CcFeedback& feedback) {
  if (feedback.actual_tx_bps > 0) {
    rate_bps_ = std::min(rate_bps_, feedback.actual_tx_bps * 1.2);
    rate_bps_ = std::max(rate_bps_, config_.min_bps);
  }
  const TimeNs rtt = feedback.rtt;
  if (rtt <= 0) {
    return rate_bps_;
  }

  if (slow_start_) {
    if (rtt < config_.t_high && feedback.retransmits == 0) {
      if (feedback.acked_bytes > 0) {
        rate_bps_ *= 2;
      }
      rate_bps_ = std::clamp(rate_bps_, config_.min_bps, config_.max_bps);
      prev_rtt_ = rtt;
      return rate_bps_;
    }
    slow_start_ = false;
  }

  const TimeNs new_rtt_diff = prev_rtt_ == 0 ? 0 : rtt - prev_rtt_;
  prev_rtt_ = rtt;
  rtt_diff_ = (1 - config_.ewma_alpha) * rtt_diff_ +
              config_.ewma_alpha * static_cast<double>(new_rtt_diff);
  const double gradient = rtt_diff_ / static_cast<double>(config_.min_rtt);

  if (feedback.retransmits > 0) {
    rate_bps_ /= 2;
  } else if (rtt < config_.t_low) {
    rate_bps_ += config_.additive_step_bps;
    negative_gradient_count_ = 0;
  } else if (rtt > config_.t_high) {
    rate_bps_ *= 1 - config_.beta * (1 - static_cast<double>(config_.t_high) /
                                             static_cast<double>(rtt));
    negative_gradient_count_ = 0;
  } else if (gradient <= 0) {
    ++negative_gradient_count_;
    const int n = negative_gradient_count_ >= config_.hai_threshold ? 5 : 1;
    rate_bps_ += n * config_.additive_step_bps;
  } else {
    negative_gradient_count_ = 0;
    rate_bps_ *= 1 - config_.beta * std::min(gradient, 1.0);
  }

  rate_bps_ = std::clamp(rate_bps_, config_.min_bps, config_.max_bps);
  return rate_bps_;
}

}  // namespace tas
