// Rate-based DCTCP, the TAS slow-path default (paper §3.2).
//
// The DCTCP control law (rate decrease proportional to the fraction of ECN
// marked bytes) applied to flow rates instead of windows:
//  * slow start: double the rate every control interval until congestion;
//  * congestion: rate *= (1 - alpha/2), alpha = EWMA of the marked fraction;
//  * additive increase: add a configurable step (10 Mbps default);
//  * retransmissions halve the rate (loss is a stronger signal than ECN);
//  * to prevent unbounded growth while the flow is application-limited, the
//    rate is clamped to at most 20% above the measured send rate.
#ifndef SRC_CC_DCTCP_RATE_H_
#define SRC_CC_DCTCP_RATE_H_

#include "src/cc/cc.h"

namespace tas {

struct DctcpRateConfig {
  double initial_bps = 10e6;
  double min_bps = 1e6;
  double max_bps = 100e9;
  double additive_step_bps = 10e6;  // Paper: 10 mbps by default.
  double ewma_gain = 1.0 / 16.0;    // DCTCP g.
  double rate_cap_headroom = 1.2;   // "no more than 20% higher than send rate".
  // The app-limited clamp never pushes the rate below this: request-response
  // flows with tiny average throughput must still burst a response promptly.
  double rate_cap_floor_bps = 100e6;
};

class DctcpRateCc : public RateCc {
 public:
  explicit DctcpRateCc(const DctcpRateConfig& config = {});

  double Update(const CcFeedback& feedback) override;
  double rate_bps() const override { return rate_bps_; }
  void Reset(double initial_bps) override;

  double alpha() const { return alpha_; }
  bool in_slow_start() const { return slow_start_; }

 private:
  DctcpRateConfig config_;
  double rate_bps_;
  double alpha_ = 0;
  bool slow_start_ = true;
};

}  // namespace tas

#endif  // SRC_CC_DCTCP_RATE_H_
