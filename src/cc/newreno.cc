#include "src/cc/newreno.h"

#include <algorithm>

namespace tas {

NewRenoCc::NewRenoCc(const WindowCcConfig& config)
    : config_(config),
      cwnd_(config.mss * config.initial_cwnd_segments),
      ssthresh_(config.max_cwnd_bytes) {}

void NewRenoCc::OnAck(uint64_t acked_bytes, bool ecn_echo, TimeNs rtt) {
  (void)rtt;
  (void)ecn_echo;  // NewReno ignores ECN (the Fig 11 "TCP" baseline).
  if (cwnd_ < ssthresh_) {
    cwnd_ += acked_bytes;
  } else {
    cwnd_ += std::max<uint64_t>(1, config_.mss * acked_bytes / std::max<uint64_t>(cwnd_, 1));
  }
  cwnd_ = std::min(cwnd_, config_.max_cwnd_bytes);
}

void NewRenoCc::OnFastRetransmit() {
  ssthresh_ = std::max(cwnd_ / 2, config_.mss * config_.min_cwnd_segments);
  cwnd_ = ssthresh_;
}

void NewRenoCc::OnTimeout() {
  ssthresh_ = std::max(cwnd_ / 2, config_.mss * config_.min_cwnd_segments);
  cwnd_ = config_.mss;
}

}  // namespace tas
