// Window-based DCTCP (Alizadeh et al., SIGCOMM 2010), used by the baseline
// stacks: cwnd decrease proportional to the EWMA fraction of ECN-marked
// bytes, at most once per window of data; slow start and additive increase
// otherwise, as in NewReno.
#ifndef SRC_CC_DCTCP_WINDOW_H_
#define SRC_CC_DCTCP_WINDOW_H_

#include "src/cc/cc.h"

namespace tas {

struct WindowCcConfig {
  uint64_t mss = 1448;
  uint64_t initial_cwnd_segments = 10;
  uint64_t min_cwnd_segments = 2;
  uint64_t max_cwnd_bytes = 1ull << 30;
  double dctcp_gain = 1.0 / 16.0;
};

class DctcpWindowCc : public WindowCc {
 public:
  explicit DctcpWindowCc(const WindowCcConfig& config = {});

  void OnAck(uint64_t acked_bytes, bool ecn_echo, TimeNs rtt) override;
  void OnFastRetransmit() override;
  void OnTimeout() override;
  uint64_t cwnd() const override { return cwnd_; }

  double alpha() const { return alpha_; }

 private:
  void EndObservationWindow();

  WindowCcConfig config_;
  uint64_t cwnd_;
  uint64_t ssthresh_;
  // Per-observation-window (one RTT of data) ECN accounting.
  uint64_t window_acked_ = 0;
  uint64_t window_marked_ = 0;
  uint64_t window_target_ = 0;
  double alpha_ = 0;
};

}  // namespace tas

#endif  // SRC_CC_DCTCP_WINDOW_H_
