#include "src/cc/dctcp_rate.h"

#include <algorithm>

namespace tas {

DctcpRateCc::DctcpRateCc(const DctcpRateConfig& config)
    : config_(config), rate_bps_(config.initial_bps) {}

void DctcpRateCc::Reset(double initial_bps) {
  rate_bps_ = initial_bps;
  alpha_ = 0;
  slow_start_ = true;
}

double DctcpRateCc::Update(const CcFeedback& feedback) {
  // Clamp to 20% above the measured send rate first (paper: "we ensure at
  // the beginning of the control loop that the rate is no more than 20%
  // higher than the flow's send rate"). Applied only to app-limited flows
  // (for a backlogged flow the measured rate IS the enforced rate, and
  // per-interval MSS quantization would pin it); not during slow start; and
  // never below the cap floor, so request/response flows burst promptly.
  if (feedback.actual_tx_bps > 0 && feedback.app_limited && !slow_start_) {
    const double cap = std::max(feedback.actual_tx_bps * config_.rate_cap_headroom,
                                config_.rate_cap_floor_bps);
    rate_bps_ = std::min(rate_bps_, cap);
    rate_bps_ = std::max(rate_bps_, config_.min_bps);
  }

  const bool have_acks = feedback.acked_bytes > 0;
  const double fraction =
      have_acks ? static_cast<double>(feedback.ecn_bytes) /
                      static_cast<double>(feedback.acked_bytes)
                : 0.0;
  alpha_ = (1 - config_.ewma_gain) * alpha_ + config_.ewma_gain * fraction;

  const bool congested = fraction > 0 || feedback.retransmits > 0;
  if (slow_start_) {
    if (!congested) {
      if (have_acks) {
        rate_bps_ *= 2;
      }
    } else {
      slow_start_ = false;
      rate_bps_ *= (1 - alpha_ / 2);
    }
  } else if (feedback.retransmits > 0) {
    rate_bps_ /= 2;
  } else if (fraction > 0) {
    rate_bps_ *= (1 - alpha_ / 2);
  } else if (have_acks) {
    // Additive increase only on intervals with feedback: an idle or
    // ack-starved flow must not ratchet its rate upward.
    rate_bps_ += config_.additive_step_bps;
  }

  rate_bps_ = std::clamp(rate_bps_, config_.min_bps, config_.max_bps);
  return rate_bps_;
}

}  // namespace tas
