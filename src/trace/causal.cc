#include "src/trace/causal.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "src/sim/parallel.h"
#include "src/trace/flight_recorder.h"
#include "src/util/island.h"
#include "src/util/logging.h"

namespace tas {

CausalTracer* CausalTracer::current_ = nullptr;

const char* CausalEdgeName(CausalEdge edge) {
  switch (edge) {
    case CausalEdge::kNetRequest:
      return "net_request";
    case CausalEdge::kCacheWork:
      return "cache_work";
    case CausalEdge::kCoalesceWait:
      return "coalesce_wait";
    case CausalEdge::kOverflowQueue:
      return "overflow_queue";
    case CausalEdge::kOriginQueue:
      return "origin_queue";
    case CausalEdge::kNetToOrigin:
      return "net_to_origin";
    case CausalEdge::kOriginServe:
      return "origin_serve";
    case CausalEdge::kNetFromOrigin:
      return "net_from_origin";
    case CausalEdge::kProxySend:
      return "proxy_send";
    case CausalEdge::kNetResponse:
      return "net_response";
  }
  return "?";
}

const char* CausalEdgeClass(CausalEdge edge) {
  switch (edge) {
    case CausalEdge::kNetRequest:
    case CausalEdge::kNetToOrigin:
    case CausalEdge::kNetFromOrigin:
    case CausalEdge::kNetResponse:
      return "network";
    case CausalEdge::kCoalesceWait:
    case CausalEdge::kOverflowQueue:
    case CausalEdge::kOriginQueue:
      return "wait";
    case CausalEdge::kCacheWork:
    case CausalEdge::kOriginServe:
    case CausalEdge::kProxySend:
      return "service";
  }
  return "?";
}

const char* RequestClassName(RequestClass cls) {
  switch (cls) {
    case RequestClass::kHit:
      return "hit";
    case RequestClass::kStore:
      return "store";
    case RequestClass::kSplice:
      return "splice";
    case RequestClass::kCoalesced:
      return "coalesced";
  }
  return "?";
}

const char* CausalSpanKindName(CausalSpanKind kind) {
  switch (kind) {
    case CausalSpanKind::kRequest:
      return "request";
    case CausalSpanKind::kProxyJob:
      return "proxy_job";
    case CausalSpanKind::kOriginFetch:
      return "origin_fetch";
    case CausalSpanKind::kOriginServe:
      return "origin_serve";
  }
  return "?";
}

SpanTree AssembleSpanTree(const std::vector<CausalSpan>& spans) {
  SpanTree tree;
  tree.nodes.resize(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    tree.nodes[i].span = i;
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    const CausalSpan& s = spans[i];
    if (s.parent == 0) {
      if (tree.root == SIZE_MAX) {
        tree.root = i;
      }
      continue;
    }
    size_t parent = SIZE_MAX;
    for (size_t j = 0; j < spans.size(); ++j) {
      if (spans[j].id == s.parent) {
        parent = j;
        break;
      }
    }
    if (parent == SIZE_MAX) {
      // Parent missing (capacity cap or a tier that died): attach to the
      // root so the tree stays renderable, and count the degradation.
      tree.nodes[i].orphan = true;
      ++tree.orphans;
      if (tree.root != SIZE_MAX && tree.root != i) {
        tree.nodes[tree.root].children.push_back(i);
      }
      continue;
    }
    tree.nodes[parent].children.push_back(i);
  }
  // Orphans seen before the root was found still need a home.
  if (tree.root != SIZE_MAX) {
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      if (tree.nodes[i].orphan) {
        std::vector<size_t>& kids = tree.nodes[tree.root].children;
        if (std::find(kids.begin(), kids.end(), i) == kids.end()) {
          kids.push_back(i);
        }
      }
    }
  }
  return tree;
}

bool ExtractCriticalPath(TimeNs start, TimeNs end, const std::vector<CausalMark>& marks,
                         std::vector<CriticalPathEdge>* out) {
  out->clear();
  if (marks.empty() || marks.front().t < start || marks.back().t != end) {
    return false;
  }
  TimeNs prev = start;
  for (const CausalMark& m : marks) {
    if (m.t < prev) {
      return false;  // Non-monotone chain: a stamp site regressed.
    }
    const TimeNs dur = m.t - prev;
    prev = m.t;
    bool merged = false;
    for (CriticalPathEdge& e : *out) {
      if (e.edge == m.edge) {
        e.duration += dur;  // Repeated edge (re-dispatch): accumulate.
        merged = true;
        break;
      }
    }
    if (!merged) {
      out->push_back(CriticalPathEdge{m.edge, dur});
    }
  }
  return true;
}

CausalTracer::CausalTracer(size_t trace_capacity, size_t exemplars_per_class)
    : exemplars_per_class_(exemplars_per_class) {
  size_t cap = 1;
  while (cap < trace_capacity) {
    cap <<= 1;
  }
  mask_ = cap - 1;
  shards_.resize(1);
  shards_[0].ring.resize(cap);
}

CausalTracer* CausalTracer::Install(CausalTracer* tracer) {
  TAS_CHECK(!SimPartition::AnyRunActive())
      << "CausalTracer::Install during a partitioned run";
  CausalTracer* previous = current_;
  current_ = tracer;
  return previous;
}

void CausalTracer::EnableShards(int num_shards) {
  TAS_CHECK(num_shards >= 1);
  TAS_CHECK(!SimPartition::AnyRunActive())
      << "CausalTracer::EnableShards during a partitioned run";
  shards_.assign(static_cast<size_t>(num_shards), Shard{});
  for (Shard& s : shards_) {
    s.ring.resize(mask_ + 1);
  }
}

CausalTracer::Shard& CausalTracer::CurShard() {
  const size_t island = static_cast<size_t>(CurrentIslandId());
  return shards_[island < shards_.size() ? island : 0];
}

uint64_t CausalTracer::BeginTrace(TimeNs start) {
  Shard& shard = CurShard();
  const size_t shard_index = static_cast<size_t>(&shard - shards_.data());
  const uint64_t id =
      (static_cast<uint64_t>(shard_index) << kTraceShardShift) | shard.next_trace_id++;
  TraceRec& r = shard.ring[id & mask_];
  if (r.id != 0) {
    // Ring wrapped onto a live trace: the oldest in-flight trace is dropped;
    // its late stamps fail the id check (stale).
    ++shard.dropped;
  }
  r.id = id;
  r.start = start;
  r.has_class = false;
  r.truncated = false;
  r.spans.clear();
  r.marks.clear();
  r.links.clear();
  return id;
}

CausalTracer::TraceRec* CausalTracer::Slot(uint64_t id) {
  if (id == 0) {
    return nullptr;
  }
  // Ring shard from the id's high bits (the island that opened the trace);
  // staleness is charged to the calling island's shard.
  const size_t shard_index = id >> kTraceShardShift;
  TraceRec& r = shards_[shard_index < shards_.size() ? shard_index : 0].ring[id & mask_];
  if (r.id != id) {
    ++CurShard().stale;
    return nullptr;
  }
  return &r;
}

uint32_t CausalTracer::StartSpan(uint64_t trace, uint32_t parent, CausalSpanKind kind,
                                 TimeNs start, uint32_t object_id, uint32_t request_id) {
  TraceRec* r = Slot(trace);
  if (r == nullptr) {
    return 0;
  }
  if (r->spans.size() >= kMaxSpans) {
    r->truncated = true;
    ++CurShard().truncated_spans;
    return 0;
  }
  Shard& shard = CurShard();
  const size_t shard_index = static_cast<size_t>(&shard - shards_.data());
  const uint32_t id = (static_cast<uint32_t>(shard_index) << kSpanShardShift) |
                      shard.next_span_id++;
  CausalSpan span;
  span.id = id;
  span.parent = parent;
  span.kind = kind;
  span.start = start;
  span.object_id = object_id;
  span.request_id = request_id;
  r->spans.push_back(span);
  return id;
}

void CausalTracer::EndSpan(uint64_t trace, uint32_t span, TimeNs end) {
  if (span == 0) {
    return;
  }
  TraceRec* r = Slot(trace);
  if (r == nullptr) {
    return;
  }
  for (CausalSpan& s : r->spans) {
    if (s.id == span) {
      s.end = end;
      return;
    }
  }
}

void CausalTracer::Mark(uint64_t trace, CausalEdge edge, TimeNs now) {
  TraceRec* r = Slot(trace);
  if (r == nullptr) {
    return;
  }
  if (r->marks.size() >= kMaxMarks) {
    r->truncated = true;
    ++CurShard().truncated_marks;
    return;
  }
  r->marks.push_back(CausalMark{now, edge});
}

void CausalTracer::SetClass(uint64_t trace, RequestClass cls) {
  TraceRec* r = Slot(trace);
  if (r == nullptr) {
    return;
  }
  r->cls = cls;
  r->has_class = true;
}

void CausalTracer::Link(uint64_t from_trace, uint32_t from_span, uint64_t to_trace,
                        uint32_t to_span) {
  TraceRec* r = Slot(to_trace);
  if (r == nullptr) {
    return;
  }
  if (r->links.size() >= kMaxLinks) {
    r->truncated = true;
    ++CurShard().truncated_links;
    return;
  }
  r->links.push_back(CausalLink{from_trace, from_span, to_span});
}

void CausalTracer::Finish(uint64_t trace, TimeNs end) {
  TraceRec* r = Slot(trace);
  if (r == nullptr) {
    return;
  }
  // Statistics fold into the CALLING island's shard (thread-owned memory);
  // the record may live in another island's ring.
  Shard& shard = CurShard();
  if (r->truncated) {
    ++shard.truncated;
    r->id = 0;
    return;
  }
  // The client completing the response IS the final edge.
  r->marks.push_back(CausalMark{end, CausalEdge::kNetResponse});

  std::vector<CriticalPathEdge> path;
  const bool ok = r->has_class && ExtractCriticalPath(r->start, end, r->marks, &path);
  if (!ok) {
    ++shard.critical_path_mismatches;
    r->id = 0;
    return;
  }
  const size_t ci = static_cast<size_t>(r->cls);
  for (const CriticalPathEdge& e : path) {
    const size_t idx = Idx(r->cls, e.edge);
    shard.edge_hist[idx].Add(static_cast<uint64_t>(e.duration));
    shard.edge_stats[idx].Add(static_cast<double>(e.duration));
  }
  const uint64_t e2e = static_cast<uint64_t>(end - r->start);
  shard.e2e_hist[ci].Add(e2e);
  shard.e2e_stats[ci].Add(static_cast<double>(e2e));
  ++shard.completed;
  MaybeRetainExemplar(*r, end);
  if (FlightRecorder* recorder = FlightRecorder::Current()) {
    recorder->RecordCausal(end, r->id, static_cast<uint8_t>(r->cls), e2e);
  }
  r->id = 0;
}

void CausalTracer::MaybeRetainExemplar(const TraceRec& rec, TimeNs end) {
  if (exemplars_per_class_ == 0) {
    return;
  }
  std::vector<TraceExemplar>& pool = CurShard().exemplars[static_cast<size_t>(rec.cls)];
  const TimeNs e2e = end - rec.start;
  if (pool.size() >= exemplars_per_class_ && e2e <= pool.back().end - pool.back().start) {
    return;
  }
  TraceExemplar ex;
  ex.trace_id = rec.id;
  ex.cls = rec.cls;
  ex.start = rec.start;
  ex.end = end;
  ex.spans = rec.spans;
  ex.marks = rec.marks;
  ex.links = rec.links;
  // Insert sorted, worst (largest e2e) first; ties keep the earlier trace.
  auto it = pool.begin();
  while (it != pool.end() && (it->end - it->start) >= e2e) {
    ++it;
  }
  pool.insert(it, std::move(ex));
  if (pool.size() > exemplars_per_class_) {
    pool.pop_back();
  }
}

void CausalTracer::Abandon(uint64_t trace) {
  if (trace == 0) {
    return;
  }
  const size_t shard_index = trace >> kTraceShardShift;
  TraceRec& r =
      shards_[shard_index < shards_.size() ? shard_index : 0].ring[trace & mask_];
  if (r.id != trace) {
    return;  // Already gone; double-abandon is not an error.
  }
  r.id = 0;
  ++CurShard().abandoned;
}

void CausalTracer::Clear() {
  for (Shard& shard : shards_) {
    shard = Shard{};
    shard.ring.resize(mask_ + 1);
  }
  for (auto& pool : exemplar_cache_) {
    pool.clear();
  }
}

LogHistogram CausalTracer::edge_hist(RequestClass cls, CausalEdge edge) const {
  LogHistogram h;
  for (const Shard& s : shards_) {
    h.Merge(s.edge_hist[Idx(cls, edge)]);
  }
  return h;
}

RunningStats CausalTracer::edge_stats(RequestClass cls, CausalEdge edge) const {
  RunningStats st;
  for (const Shard& s : shards_) {
    st.Merge(s.edge_stats[Idx(cls, edge)]);
  }
  return st;
}

LogHistogram CausalTracer::e2e_hist(RequestClass cls) const {
  LogHistogram h;
  for (const Shard& s : shards_) {
    h.Merge(s.e2e_hist[static_cast<size_t>(cls)]);
  }
  return h;
}

RunningStats CausalTracer::e2e_stats(RequestClass cls) const {
  RunningStats st;
  for (const Shard& s : shards_) {
    st.Merge(s.e2e_stats[static_cast<size_t>(cls)]);
  }
  return st;
}

const std::vector<TraceExemplar>& CausalTracer::exemplars(RequestClass cls) const {
  // Global top-k from the union of per-shard top-k pools. Each pool is
  // already worst-first; a stable sort keeps intra-shard completion order
  // and island order on exact ties, so one shard reproduces the old serial
  // order byte-for-byte.
  std::vector<TraceExemplar>& merged = exemplar_cache_[static_cast<size_t>(cls)];
  merged.clear();
  for (const Shard& s : shards_) {
    const auto& pool = s.exemplars[static_cast<size_t>(cls)];
    merged.insert(merged.end(), pool.begin(), pool.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceExemplar& a, const TraceExemplar& b) {
                     return (a.end - a.start) > (b.end - b.start);
                   });
  if (merged.size() > exemplars_per_class_) {
    merged.resize(exemplars_per_class_);
  }
  return merged;
}

namespace {

CriticalPathEdgeSummary SummarizeEdge(const std::string& name, const std::string& cls,
                                      const LogHistogram& hist, const RunningStats& stats,
                                      double e2e_sum) {
  CriticalPathEdgeSummary s;
  s.edge = name;
  s.cls = cls;
  s.count = stats.count();
  s.mean_ns = stats.mean();
  s.max_ns = stats.max();
  s.p50_ns = hist.ApproxPercentile(50);
  s.p90_ns = hist.ApproxPercentile(90);
  s.p99_ns = hist.ApproxPercentile(99);
  s.p999_ns = hist.ApproxPercentile(99.9);
  const double sum = stats.mean() * static_cast<double>(stats.count());
  s.share = e2e_sum > 0 ? sum / e2e_sum : 0;
  return s;
}

}  // namespace

CriticalPathReport CausalTracer::Report() const {
  CriticalPathReport report;
  report.completed = completed();
  report.abandoned = abandoned();
  report.dropped = dropped();
  report.stale = stale();
  report.truncated = truncated();
  report.mismatches = critical_path_mismatches();
  for (int c = 0; c < kNumRequestClasses; ++c) {
    const RequestClass cls = static_cast<RequestClass>(c);
    const RunningStats e2e = e2e_stats(cls);
    if (e2e.count() == 0) {
      continue;
    }
    CriticalPathClassSummary cs;
    cs.request_class = RequestClassName(cls);
    cs.count = e2e.count();
    const double e2e_sum = e2e.mean() * static_cast<double>(e2e.count());
    cs.edges.push_back(SummarizeEdge("e2e", "total", e2e_hist(cls), e2e, e2e_sum));
    for (int e = 0; e < kNumCausalEdges; ++e) {
      const CausalEdge edge = static_cast<CausalEdge>(e);
      const RunningStats es = edge_stats(cls, edge);
      if (es.count() == 0) {
        continue;
      }
      cs.edges.push_back(SummarizeEdge(CausalEdgeName(edge), CausalEdgeClass(edge),
                                       edge_hist(cls, edge), es, e2e_sum));
    }
    report.classes.push_back(std::move(cs));
  }
  return report;
}

const CriticalPathEdgeSummary* CriticalPathClassSummary::Find(const std::string& edge) const {
  for (const CriticalPathEdgeSummary& e : edges) {
    if (e.edge == edge) {
      return &e;
    }
  }
  return nullptr;
}

const CriticalPathClassSummary* CriticalPathReport::Find(
    const std::string& request_class) const {
  for (const CriticalPathClassSummary& c : classes) {
    if (c.request_class == request_class) {
      return &c;
    }
  }
  return nullptr;
}

std::string CriticalPathReport::ToJson() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "{\"report\":\"critical_path\""
     << ",\"completed\":" << completed << ",\"abandoned\":" << abandoned
     << ",\"dropped\":" << dropped << ",\"stale\":" << stale << ",\"truncated\":" << truncated
     << ",\"mismatches\":" << mismatches << ",\"classes\":[";
  for (size_t c = 0; c < classes.size(); ++c) {
    const CriticalPathClassSummary& cs = classes[c];
    if (c > 0) {
      os << ",";
    }
    os << "{\"request_class\":\"" << cs.request_class << "\",\"count\":" << cs.count
       << ",\"edges\":[";
    for (size_t i = 0; i < cs.edges.size(); ++i) {
      const CriticalPathEdgeSummary& e = cs.edges[i];
      if (i > 0) {
        os << ",";
      }
      os << "{\"edge\":\"" << e.edge << "\",\"class\":\"" << e.cls << "\""
         << ",\"count\":" << e.count << ",\"mean_ns\":" << e.mean_ns
         << ",\"max_ns\":" << e.max_ns << ",\"p50_ns\":" << e.p50_ns
         << ",\"p90_ns\":" << e.p90_ns << ",\"p99_ns\":" << e.p99_ns
         << ",\"p999_ns\":" << e.p999_ns << ",\"share\":" << std::setprecision(4) << e.share
         << std::setprecision(1) << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string CriticalPathReport::ToTable() const {
  std::ostringstream os;
  os << "completed=" << completed << " abandoned=" << abandoned << " dropped=" << dropped
     << " stale=" << stale << " truncated=" << truncated << " mismatches=" << mismatches
     << "\n";
  for (const CriticalPathClassSummary& cs : classes) {
    os << "\n[" << cs.request_class << "] n=" << cs.count << "\n";
    os << std::left << std::setw(16) << "edge" << std::setw(9) << "class" << std::right
       << std::setw(9) << "count" << std::setw(11) << "mean_us" << std::setw(10) << "p50_us"
       << std::setw(10) << "p99_us" << std::setw(11) << "max_us" << std::setw(8) << "share"
       << "\n";
    os << std::string(84, '-') << "\n";
    os << std::fixed;
    for (const CriticalPathEdgeSummary& e : cs.edges) {
      os << std::left << std::setw(16) << e.edge << std::setw(9) << e.cls << std::right
         << std::setw(9) << e.count << std::setw(11) << std::setprecision(2)
         << e.mean_ns / 1000.0 << std::setw(10)
         << static_cast<double>(e.p50_ns) / 1000.0 << std::setw(10)
         << static_cast<double>(e.p99_ns) / 1000.0 << std::setw(11) << e.max_ns / 1000.0
         << std::setw(8) << std::setprecision(3) << e.share << "\n";
    }
  }
  return os.str();
}

namespace {

// Minimal scanner for the exact shape ToJson emits (latency.cc idiom, with
// one nesting level: class objects contain flat edge objects).
size_t FindValue(const std::string& text, size_t from, size_t to, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle, from);
  if (pos == std::string::npos || pos >= to) {
    return std::string::npos;
  }
  return pos + needle.size();
}

double NumberAt(const std::string& text, size_t from, size_t to, const std::string& key,
                bool* ok) {
  const size_t pos = FindValue(text, from, to, key);
  if (pos == std::string::npos) {
    *ok = false;
    return 0;
  }
  return std::strtod(text.c_str() + pos, nullptr);
}

std::string StringAt(const std::string& text, size_t from, size_t to,
                     const std::string& key, bool* ok) {
  size_t pos = FindValue(text, from, to, key);
  if (pos == std::string::npos || pos >= text.size() || text[pos] != '"') {
    *ok = false;
    return "";
  }
  ++pos;
  const size_t end = text.find('"', pos);
  if (end == std::string::npos || end > to) {
    *ok = false;
    return "";
  }
  return text.substr(pos, end - pos);
}

}  // namespace

CriticalPathReport ParseCriticalPathReportJson(const std::string& json, bool* ok) {
  bool good = true;
  CriticalPathReport report;
  const size_t classes_pos = json.find("\"classes\":[");
  if (classes_pos == std::string::npos) {
    if (ok != nullptr) {
      *ok = false;
    }
    return CriticalPathReport{};
  }
  report.completed =
      static_cast<uint64_t>(NumberAt(json, 0, classes_pos, "completed", &good));
  report.abandoned =
      static_cast<uint64_t>(NumberAt(json, 0, classes_pos, "abandoned", &good));
  report.dropped = static_cast<uint64_t>(NumberAt(json, 0, classes_pos, "dropped", &good));
  report.stale = static_cast<uint64_t>(NumberAt(json, 0, classes_pos, "stale", &good));
  report.truncated =
      static_cast<uint64_t>(NumberAt(json, 0, classes_pos, "truncated", &good));
  report.mismatches =
      static_cast<uint64_t>(NumberAt(json, 0, classes_pos, "mismatches", &good));

  // Class blocks are delimited by their "request_class" keys; edge objects
  // inside each block are flat.
  size_t class_pos = json.find("\"request_class\":", classes_pos);
  while (good && class_pos != std::string::npos) {
    const size_t next_class = json.find("\"request_class\":", class_pos + 1);
    const size_t block_end = next_class != std::string::npos ? next_class : json.size();
    CriticalPathClassSummary cs;
    cs.request_class = StringAt(json, class_pos, block_end, "request_class", &good);
    cs.count = static_cast<uint64_t>(NumberAt(json, class_pos, block_end, "count", &good));
    const size_t edges_pos = FindValue(json, class_pos, block_end, "edges");
    if (edges_pos == std::string::npos) {
      good = false;
      break;
    }
    size_t pos = edges_pos;
    while (good) {
      const size_t open = json.find('{', pos);
      const size_t close = json.find('}', open);
      if (open == std::string::npos || close == std::string::npos || open >= block_end) {
        break;
      }
      const size_t bracket = json.find(']', pos);
      if (bracket != std::string::npos && bracket < open) {
        break;  // End of this class's edges array.
      }
      CriticalPathEdgeSummary e;
      e.edge = StringAt(json, open, close, "edge", &good);
      e.cls = StringAt(json, open, close, "class", &good);
      e.count = static_cast<uint64_t>(NumberAt(json, open, close, "count", &good));
      e.mean_ns = NumberAt(json, open, close, "mean_ns", &good);
      e.max_ns = NumberAt(json, open, close, "max_ns", &good);
      e.p50_ns = static_cast<uint64_t>(NumberAt(json, open, close, "p50_ns", &good));
      e.p90_ns = static_cast<uint64_t>(NumberAt(json, open, close, "p90_ns", &good));
      e.p99_ns = static_cast<uint64_t>(NumberAt(json, open, close, "p99_ns", &good));
      e.p999_ns = static_cast<uint64_t>(NumberAt(json, open, close, "p999_ns", &good));
      e.share = NumberAt(json, open, close, "share", &good);
      if (good) {
        cs.edges.push_back(std::move(e));
      }
      pos = close + 1;
    }
    if (good && !cs.edges.empty()) {
      report.classes.push_back(std::move(cs));
    } else if (good) {
      good = false;
    }
    class_pos = next_class;
  }
  if (report.classes.empty()) {
    good = false;
  }
  if (ok != nullptr) {
    *ok = good;
  }
  return good ? report : CriticalPathReport{};
}

std::vector<CriticalPathRegression> CompareCriticalPathReports(
    const CriticalPathReport& baseline, const CriticalPathReport& current, double tolerance,
    uint64_t min_count) {
  std::vector<CriticalPathRegression> violations;
  for (const CriticalPathClassSummary& base_cls : baseline.classes) {
    if (base_cls.count < min_count) {
      continue;  // Too few samples to gate on.
    }
    const CriticalPathClassSummary* cur_cls = current.Find(base_cls.request_class);
    if (cur_cls == nullptr) {
      violations.push_back(CriticalPathRegression{base_cls.request_class, "e2e", "count",
                                                  static_cast<double>(base_cls.count), 0, 0});
      continue;
    }
    const auto check = [&](const CriticalPathEdgeSummary& base, const char* metric,
                           double base_v, double cur_v) {
      if (base_v <= 0) {
        return;
      }
      if (cur_v > base_v * (1.0 + tolerance)) {
        violations.push_back(CriticalPathRegression{base_cls.request_class, base.edge, metric,
                                                    base_v, cur_v, cur_v / base_v});
      }
    };
    for (const CriticalPathEdgeSummary& base : base_cls.edges) {
      if (base.count < min_count) {
        continue;
      }
      const CriticalPathEdgeSummary* cur = cur_cls->Find(base.edge);
      if (cur == nullptr) {
        continue;  // Edge vanished from the path — strictly an improvement.
      }
      check(base, "mean_ns", base.mean_ns, cur->mean_ns);
      check(base, "p99_ns", static_cast<double>(base.p99_ns),
            static_cast<double>(cur->p99_ns));
    }
  }
  return violations;
}

}  // namespace tas
