// Per-packet latency anatomy (paper Table 1 / Fig 9): stage-stamp records
// that decompose a packet's lifetime into queue-wait and service intervals —
// context-queue wait, fast-path TX service, egress-buffer wait, wire time,
// switch queueing, NIC RX ring wait, and receive-side processing.
//
// Records live in a side ring keyed by a generation id the packet carries
// (Packet::lat_id), NOT in Packet itself: pooled packets stay small, and an
// overflowing ring overwrites the oldest record without corrupting newer
// ones (the id check rejects stale stamps). Stamp sites take the current
// simulation time explicitly, so this module depends only on src/util and
// sits below src/net in the link order; devices reach the active tracer via
// the process-wide Install/Current pattern PacketPool established. When no
// tracer is installed every instrumentation site costs one load + branch.
//
// Stage accounting is interval-ends-here: each Stamp(stage, now) charges
// [last_stamp, now) to `stage` and advances the cursor, so a packet crossing
// two links accumulates both egress waits into the same stage bucket and the
// per-stage values of a finished record always sum exactly to its
// end-to-end time.
#ifndef SRC_TRACE_LATENCY_H_
#define SRC_TRACE_LATENCY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/stats.h"
#include "src/util/time.h"

namespace tas {

// Lifecycle stages, in the order a data packet traverses them. Queue stages
// measure time spent waiting in a buffer; service stages measure active
// processing or wire occupancy (DESIGN.md §10 maps each to its stamp sites).
enum class LatencyStage : uint8_t {
  kCtxQueue = 0,  // App send enqueued -> fast-path batch dispatched it.
  kFpTx,          // Dispatch -> segment built and handed to the NIC.
  kLinkQueue,     // Egress buffer admit -> wire serialization start (per hop).
  kLinkWire,      // Serialization start -> delivered at the far end (per hop).
  kSwitchQueue,   // Switch ingress -> forwarded out of the pending queue.
  kNicRxRing,     // RX ring deposit -> host polled it off the ring.
  kFpRx,          // Poll -> consumed (payload delivered / ACK processed).
};
inline constexpr int kNumLatencyStages = 7;

const char* LatencyStageName(LatencyStage stage);
// Queue-wait stages wait on a resource; the rest are service time.
bool LatencyStageIsQueue(LatencyStage stage);

// Summary row of a LatencyReport: one stage, or one of the synthetic rows
// ("e2e" per-record totals, "queue_wait"/"service" per-record class totals).
struct LatencyStageSummary {
  std::string stage;
  std::string cls;  // "queue", "service", or "total".
  uint64_t count = 0;
  double mean_ns = 0;
  double max_ns = 0;
  // Log-bucketed (power-of-two upper bound) percentiles.
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

struct LatencyReport {
  uint64_t completed = 0;
  uint64_t abandoned = 0;    // Dropped / exception packets.
  uint64_t overwritten = 0;  // Ring wrapped over an unfinished record.
  uint64_t stale = 0;        // Stamps that arrived after overwrite/finish.
  std::vector<LatencyStageSummary> stages;

  const LatencyStageSummary* Find(const std::string& stage) const;
  // Single-line JSON object (the PERF_LATENCY_JSON payload and the
  // <prefix>.latency.json file format).
  std::string ToJson() const;
  // Fixed-width text table for terminal output.
  std::string ToTable() const;
};

// Parses a report previously produced by LatencyReport::ToJson. Sets *ok to
// false (and returns an empty report) on malformed input.
LatencyReport ParseLatencyReportJson(const std::string& json, bool* ok = nullptr);

// One comparator violation: `metric` of `stage` regressed past tolerance.
struct LatencyRegression {
  std::string stage;
  std::string metric;  // "mean_ns" or "p99_ns".
  double baseline = 0;
  double current = 0;
  double ratio = 0;  // current / baseline.
};

// CI regression gate: flags stages whose mean or p99 grew beyond
// baseline * (1 + tolerance). Stages with fewer than `min_count` baseline
// samples are skipped (too noisy to gate on); improvements always pass.
std::vector<LatencyRegression> CompareLatencyReports(const LatencyReport& baseline,
                                                     const LatencyReport& current,
                                                     double tolerance,
                                                     uint64_t min_count = 50);

// Sharded for partitioned runs (DESIGN.md §13): one shard per island, with
// the shard id encoded in the record id's high bits. Begin allocates from
// the calling island's shard ring; Stamp/Finish locate the record through
// the id (the packet handoff that carried the id across islands is ordered
// by the partition's epoch barrier, so the record's fields are race-free)
// and fold statistics/counters into the CALLING island's shard, so every
// write in steady state touches thread-owned memory. Report() and the
// aggregate accessors merge shards in island order; because the merged
// surfaces are exact integer sums (histograms, counters, sum/count means),
// they are byte-identical to an unsharded serial run. Serial mode is one
// shard and behaves exactly as before.
class LatencyTracer {
 public:
  explicit LatencyTracer(size_t ring_capacity = 1u << 12);

  // Process-wide active tracer (PacketPool::Install pattern). The TAS host
  // whose TraceConfig enables latency_stages installs its tracer; every
  // stamp site in every device then feeds it, so a record follows the packet
  // across hosts. Returns the previously installed tracer. Rejected while a
  // partitioned run is executing (it would race with worker threads).
  static LatencyTracer* Install(LatencyTracer* tracer);
  static LatencyTracer* Current() { return current_; }

  // Sizes the shard table for a partitioned run (one shard per island).
  // Must be called before any record is opened; resets all state.
  void EnableShards(int num_shards);
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Opens a record whose clock starts at `start` (ids are never 0, so a
  // Packet::lat_id of 0 means "untracked"). If the ring slot still holds an
  // unfinished record, that oldest record is dropped and counted.
  uint64_t Begin(TimeNs start);
  // Charges [last stamp, now) to `stage`. Ignores id 0 and stale ids.
  void Stamp(uint64_t id, LatencyStage stage, TimeNs now);
  // Final stamp: charges the last interval to `stage`, folds every touched
  // stage into the per-stage histograms, and retires the record.
  void Finish(uint64_t id, LatencyStage stage, TimeNs now);
  // Retires a record without folding it (packet dropped / exception path).
  void Abandon(uint64_t id);

  // Aggregates over all shards. Safe between runs (or any time in serial
  // mode); mid-run reads from a partitioned worker would race with other
  // islands' shard writes.
  uint64_t completed() const { return SumCounter(&Shard::completed); }
  uint64_t abandoned() const { return SumCounter(&Shard::abandoned); }
  uint64_t overwritten() const { return SumCounter(&Shard::overwritten); }
  uint64_t stale() const { return SumCounter(&Shard::stale); }
  // Records whose folded stage intervals failed to sum to their end-to-end
  // time — always 0 unless a stamp site regresses (latency_test asserts it).
  uint64_t partition_mismatches() const {
    return SumCounter(&Shard::partition_mismatches);
  }

  // Merged (shard-summed) distribution views, by value.
  LogHistogram stage_hist(LatencyStage stage) const;
  RunningStats stage_stats(LatencyStage stage) const;
  LogHistogram e2e_hist() const;
  RunningStats e2e_stats() const;

  // The CALLING island's e2e histogram, by reference: safe to read mid-run
  // from a worker (thread-owned memory, unlike the merged views above). The
  // watchdog's windowed p99 snapshots this each check.
  const LogHistogram& LocalE2eHist() { return CurShard().e2e_hist; }

  LatencyReport Report() const;
  void Clear();

 private:
  struct Record {
    uint64_t id = 0;  // 0 = slot free.
    TimeNs start = 0;
    TimeNs last = 0;
    uint32_t touched = 0;  // Bitmask of stamped stages.
    std::array<uint64_t, kNumLatencyStages> stage_ns{};
  };

  struct Shard {
    std::vector<Record> ring;
    uint64_t next_id = 1;

    std::array<LogHistogram, kNumLatencyStages> stage_hist;
    std::array<RunningStats, kNumLatencyStages> stage_stats;
    LogHistogram e2e_hist;
    RunningStats e2e_stats;
    // Per-record totals over the queue-wait / service stage classes.
    LogHistogram queue_wait_hist;
    RunningStats queue_wait_stats;
    LogHistogram service_hist;
    RunningStats service_stats;

    uint64_t completed = 0;
    uint64_t abandoned = 0;
    uint64_t overwritten = 0;
    uint64_t stale = 0;
    uint64_t partition_mismatches = 0;
  };

  // Record ids: [shard | per-shard sequence]. 16 bits of shard leaves 48
  // bits of sequence per island — no experiment gets close to either bound.
  static constexpr int kShardShift = 48;

  // The calling island's shard (stats/counter writes, Begin allocation).
  Shard& CurShard();
  // The shard whose ring holds `id`, from the id's high bits.
  Record* Slot(uint64_t id);

  uint64_t SumCounter(uint64_t Shard::* counter) const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.*counter;
    }
    return sum;
  }

  static LatencyTracer* current_;

  size_t mask_;
  std::vector<Shard> shards_;
};

}  // namespace tas

#endif  // SRC_TRACE_LATENCY_H_
