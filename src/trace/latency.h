// Per-packet latency anatomy (paper Table 1 / Fig 9): stage-stamp records
// that decompose a packet's lifetime into queue-wait and service intervals —
// context-queue wait, fast-path TX service, egress-buffer wait, wire time,
// switch queueing, NIC RX ring wait, and receive-side processing.
//
// Records live in a side ring keyed by a generation id the packet carries
// (Packet::lat_id), NOT in Packet itself: pooled packets stay small, and an
// overflowing ring overwrites the oldest record without corrupting newer
// ones (the id check rejects stale stamps). Stamp sites take the current
// simulation time explicitly, so this module depends only on src/util and
// sits below src/net in the link order; devices reach the active tracer via
// the process-wide Install/Current pattern PacketPool established. When no
// tracer is installed every instrumentation site costs one load + branch.
//
// Stage accounting is interval-ends-here: each Stamp(stage, now) charges
// [last_stamp, now) to `stage` and advances the cursor, so a packet crossing
// two links accumulates both egress waits into the same stage bucket and the
// per-stage values of a finished record always sum exactly to its
// end-to-end time.
#ifndef SRC_TRACE_LATENCY_H_
#define SRC_TRACE_LATENCY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/stats.h"
#include "src/util/time.h"

namespace tas {

// Lifecycle stages, in the order a data packet traverses them. Queue stages
// measure time spent waiting in a buffer; service stages measure active
// processing or wire occupancy (DESIGN.md §10 maps each to its stamp sites).
enum class LatencyStage : uint8_t {
  kCtxQueue = 0,  // App send enqueued -> fast-path batch dispatched it.
  kFpTx,          // Dispatch -> segment built and handed to the NIC.
  kLinkQueue,     // Egress buffer admit -> wire serialization start (per hop).
  kLinkWire,      // Serialization start -> delivered at the far end (per hop).
  kSwitchQueue,   // Switch ingress -> forwarded out of the pending queue.
  kNicRxRing,     // RX ring deposit -> host polled it off the ring.
  kFpRx,          // Poll -> consumed (payload delivered / ACK processed).
};
inline constexpr int kNumLatencyStages = 7;

const char* LatencyStageName(LatencyStage stage);
// Queue-wait stages wait on a resource; the rest are service time.
bool LatencyStageIsQueue(LatencyStage stage);

// Summary row of a LatencyReport: one stage, or one of the synthetic rows
// ("e2e" per-record totals, "queue_wait"/"service" per-record class totals).
struct LatencyStageSummary {
  std::string stage;
  std::string cls;  // "queue", "service", or "total".
  uint64_t count = 0;
  double mean_ns = 0;
  double max_ns = 0;
  // Log-bucketed (power-of-two upper bound) percentiles.
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

struct LatencyReport {
  uint64_t completed = 0;
  uint64_t abandoned = 0;    // Dropped / exception packets.
  uint64_t overwritten = 0;  // Ring wrapped over an unfinished record.
  uint64_t stale = 0;        // Stamps that arrived after overwrite/finish.
  std::vector<LatencyStageSummary> stages;

  const LatencyStageSummary* Find(const std::string& stage) const;
  // Single-line JSON object (the PERF_LATENCY_JSON payload and the
  // <prefix>.latency.json file format).
  std::string ToJson() const;
  // Fixed-width text table for terminal output.
  std::string ToTable() const;
};

// Parses a report previously produced by LatencyReport::ToJson. Sets *ok to
// false (and returns an empty report) on malformed input.
LatencyReport ParseLatencyReportJson(const std::string& json, bool* ok = nullptr);

// One comparator violation: `metric` of `stage` regressed past tolerance.
struct LatencyRegression {
  std::string stage;
  std::string metric;  // "mean_ns" or "p99_ns".
  double baseline = 0;
  double current = 0;
  double ratio = 0;  // current / baseline.
};

// CI regression gate: flags stages whose mean or p99 grew beyond
// baseline * (1 + tolerance). Stages with fewer than `min_count` baseline
// samples are skipped (too noisy to gate on); improvements always pass.
std::vector<LatencyRegression> CompareLatencyReports(const LatencyReport& baseline,
                                                     const LatencyReport& current,
                                                     double tolerance,
                                                     uint64_t min_count = 50);

class LatencyTracer {
 public:
  explicit LatencyTracer(size_t ring_capacity = 1u << 12);

  // Process-wide active tracer (PacketPool::Install pattern). The TAS host
  // whose TraceConfig enables latency_stages installs its tracer; every
  // stamp site in every device then feeds it, so a record follows the packet
  // across hosts. Returns the previously installed tracer.
  static LatencyTracer* Install(LatencyTracer* tracer);
  static LatencyTracer* Current() { return current_; }

  // Opens a record whose clock starts at `start` (ids are never 0, so a
  // Packet::lat_id of 0 means "untracked"). If the ring slot still holds an
  // unfinished record, that oldest record is dropped and counted.
  uint64_t Begin(TimeNs start);
  // Charges [last stamp, now) to `stage`. Ignores id 0 and stale ids.
  void Stamp(uint64_t id, LatencyStage stage, TimeNs now);
  // Final stamp: charges the last interval to `stage`, folds every touched
  // stage into the per-stage histograms, and retires the record.
  void Finish(uint64_t id, LatencyStage stage, TimeNs now);
  // Retires a record without folding it (packet dropped / exception path).
  void Abandon(uint64_t id);

  uint64_t completed() const { return completed_; }
  uint64_t abandoned() const { return abandoned_; }
  uint64_t overwritten() const { return overwritten_; }
  uint64_t stale() const { return stale_; }
  // Records whose folded stage intervals failed to sum to their end-to-end
  // time — always 0 unless a stamp site regresses (latency_test asserts it).
  uint64_t partition_mismatches() const { return partition_mismatches_; }

  const LogHistogram& stage_hist(LatencyStage stage) const {
    return stage_hist_[static_cast<size_t>(stage)];
  }
  const RunningStats& stage_stats(LatencyStage stage) const {
    return stage_stats_[static_cast<size_t>(stage)];
  }
  const LogHistogram& e2e_hist() const { return e2e_hist_; }
  const RunningStats& e2e_stats() const { return e2e_stats_; }

  LatencyReport Report() const;
  void Clear();

 private:
  struct Record {
    uint64_t id = 0;  // 0 = slot free.
    TimeNs start = 0;
    TimeNs last = 0;
    uint32_t touched = 0;  // Bitmask of stamped stages.
    std::array<uint64_t, kNumLatencyStages> stage_ns{};
  };

  Record* Slot(uint64_t id);

  static LatencyTracer* current_;

  std::vector<Record> ring_;
  size_t mask_;
  uint64_t next_id_ = 1;

  std::array<LogHistogram, kNumLatencyStages> stage_hist_;
  std::array<RunningStats, kNumLatencyStages> stage_stats_;
  LogHistogram e2e_hist_;
  RunningStats e2e_stats_;
  // Per-record totals over the queue-wait / service stage classes.
  LogHistogram queue_wait_hist_;
  RunningStats queue_wait_stats_;
  LogHistogram service_hist_;
  RunningStats service_stats_;

  uint64_t completed_ = 0;
  uint64_t abandoned_ = 0;
  uint64_t overwritten_ = 0;
  uint64_t stale_ = 0;
  uint64_t partition_mismatches_ = 0;
};

}  // namespace tas

#endif  // SRC_TRACE_LATENCY_H_
