#include "src/trace/latency.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "src/sim/parallel.h"
#include "src/trace/flight_recorder.h"
#include "src/util/island.h"
#include "src/util/logging.h"

namespace tas {

LatencyTracer* LatencyTracer::current_ = nullptr;

const char* LatencyStageName(LatencyStage stage) {
  switch (stage) {
    case LatencyStage::kCtxQueue:
      return "ctx_queue";
    case LatencyStage::kFpTx:
      return "fp_tx";
    case LatencyStage::kLinkQueue:
      return "link_queue";
    case LatencyStage::kLinkWire:
      return "link_wire";
    case LatencyStage::kSwitchQueue:
      return "switch_queue";
    case LatencyStage::kNicRxRing:
      return "nic_rx_ring";
    case LatencyStage::kFpRx:
      return "fp_rx";
  }
  return "?";
}

bool LatencyStageIsQueue(LatencyStage stage) {
  switch (stage) {
    case LatencyStage::kCtxQueue:
    case LatencyStage::kLinkQueue:
    case LatencyStage::kSwitchQueue:
    case LatencyStage::kNicRxRing:
      return true;
    case LatencyStage::kFpTx:
    case LatencyStage::kLinkWire:
    case LatencyStage::kFpRx:
      return false;
  }
  return false;
}

LatencyTracer::LatencyTracer(size_t ring_capacity) {
  size_t cap = 1;
  while (cap < ring_capacity) {
    cap <<= 1;
  }
  mask_ = cap - 1;
  shards_.resize(1);
  shards_[0].ring.resize(cap);
}

LatencyTracer* LatencyTracer::Install(LatencyTracer* tracer) {
  TAS_CHECK(!SimPartition::AnyRunActive())
      << "LatencyTracer::Install during a partitioned run";
  LatencyTracer* previous = current_;
  current_ = tracer;
  return previous;
}

void LatencyTracer::EnableShards(int num_shards) {
  TAS_CHECK(num_shards >= 1);
  TAS_CHECK(!SimPartition::AnyRunActive())
      << "LatencyTracer::EnableShards during a partitioned run";
  shards_.assign(static_cast<size_t>(num_shards), Shard{});
  for (Shard& s : shards_) {
    s.ring.resize(mask_ + 1);
  }
}

LatencyTracer::Shard& LatencyTracer::CurShard() {
  const size_t island = static_cast<size_t>(CurrentIslandId());
  return shards_[island < shards_.size() ? island : 0];
}

uint64_t LatencyTracer::Begin(TimeNs start) {
  Shard& shard = CurShard();
  const size_t shard_index = static_cast<size_t>(&shard - shards_.data());
  const uint64_t id =
      (static_cast<uint64_t>(shard_index) << kShardShift) | shard.next_id++;
  Record& r = shard.ring[id & mask_];
  if (r.id != 0) {
    // Ring wrapped onto a record that never finished: the oldest in-flight
    // record is dropped; its late stamps will fail the id check (stale).
    ++shard.overwritten;
  }
  r.id = id;
  r.start = start;
  r.last = start;
  r.touched = 0;
  r.stage_ns.fill(0);
  return id;
}

LatencyTracer::Record* LatencyTracer::Slot(uint64_t id) {
  // The ring that holds the record is the shard of the island that OPENED it
  // (high id bits); it may differ from the calling island when the packet
  // crossed a link. The stale counter is charged to the caller's shard.
  const size_t shard_index = id >> kShardShift;
  Record& r = shards_[shard_index < shards_.size() ? shard_index : 0].ring[id & mask_];
  if (r.id != id) {
    ++CurShard().stale;
    return nullptr;
  }
  return &r;
}

void LatencyTracer::Stamp(uint64_t id, LatencyStage stage, TimeNs now) {
  if (id == 0) {
    return;
  }
  Record* r = Slot(id);
  if (r == nullptr) {
    return;
  }
  const size_t i = static_cast<size_t>(stage);
  r->stage_ns[i] += static_cast<uint64_t>(now - r->last);
  r->last = now;
  r->touched |= 1u << i;
}

void LatencyTracer::Finish(uint64_t id, LatencyStage stage, TimeNs now) {
  if (id == 0) {
    return;
  }
  Record* r = Slot(id);
  if (r == nullptr) {
    return;
  }
  const size_t fi = static_cast<size_t>(stage);
  r->stage_ns[fi] += static_cast<uint64_t>(now - r->last);
  r->touched |= 1u << fi;

  // Fold into the CALLING island's shard (thread-owned), not the ring
  // shard: the record travelled with the packet, the statistics stay home.
  Shard& shard = CurShard();
  uint64_t total = 0;
  uint64_t queue_ns = 0;
  uint64_t service_ns = 0;
  for (int i = 0; i < kNumLatencyStages; ++i) {
    if ((r->touched & (1u << i)) == 0) {
      continue;
    }
    const uint64_t ns = r->stage_ns[static_cast<size_t>(i)];
    shard.stage_hist[static_cast<size_t>(i)].Add(ns);
    shard.stage_stats[static_cast<size_t>(i)].Add(static_cast<double>(ns));
    total += ns;
    if (LatencyStageIsQueue(static_cast<LatencyStage>(i))) {
      queue_ns += ns;
    } else {
      service_ns += ns;
    }
  }
  const uint64_t e2e = static_cast<uint64_t>(now - r->start);
  if (total != e2e) {
    // Every interval between Begin and Finish must be attributed to exactly
    // one stage; a mismatch means a stamp site double-charged or skipped.
    ++shard.partition_mismatches;
  }
  shard.e2e_hist.Add(e2e);
  shard.e2e_stats.Add(static_cast<double>(e2e));
  shard.queue_wait_hist.Add(queue_ns);
  shard.queue_wait_stats.Add(static_cast<double>(queue_ns));
  shard.service_hist.Add(service_ns);
  shard.service_stats.Add(static_cast<double>(service_ns));
  ++shard.completed;
  r->id = 0;

  if (FlightRecorder* recorder = FlightRecorder::Current()) {
    recorder->RecordLatency(now, e2e, queue_ns, service_ns);
  }
}

void LatencyTracer::Abandon(uint64_t id) {
  if (id == 0) {
    return;
  }
  const size_t shard_index = id >> kShardShift;
  Record& r = shards_[shard_index < shards_.size() ? shard_index : 0].ring[id & mask_];
  if (r.id != id) {
    return;  // Already gone; dropping a dead record twice is not an error.
  }
  r.id = 0;
  ++CurShard().abandoned;
}

void LatencyTracer::Clear() {
  for (Shard& shard : shards_) {
    shard = Shard{};
    shard.ring.resize(mask_ + 1);
  }
}

LogHistogram LatencyTracer::stage_hist(LatencyStage stage) const {
  LogHistogram h;
  for (const Shard& s : shards_) {
    h.Merge(s.stage_hist[static_cast<size_t>(stage)]);
  }
  return h;
}

RunningStats LatencyTracer::stage_stats(LatencyStage stage) const {
  RunningStats st;
  for (const Shard& s : shards_) {
    st.Merge(s.stage_stats[static_cast<size_t>(stage)]);
  }
  return st;
}

LogHistogram LatencyTracer::e2e_hist() const {
  LogHistogram h;
  for (const Shard& s : shards_) {
    h.Merge(s.e2e_hist);
  }
  return h;
}

RunningStats LatencyTracer::e2e_stats() const {
  RunningStats st;
  for (const Shard& s : shards_) {
    st.Merge(s.e2e_stats);
  }
  return st;
}

namespace {

LatencyStageSummary Summarize(const std::string& name, const std::string& cls,
                              const LogHistogram& hist, const RunningStats& stats) {
  LatencyStageSummary s;
  s.stage = name;
  s.cls = cls;
  s.count = stats.count();
  s.mean_ns = stats.mean();
  s.max_ns = stats.max();
  s.p50_ns = hist.ApproxPercentile(50);
  s.p90_ns = hist.ApproxPercentile(90);
  s.p99_ns = hist.ApproxPercentile(99);
  s.p999_ns = hist.ApproxPercentile(99.9);
  return s;
}

}  // namespace

LatencyReport LatencyTracer::Report() const {
  LatencyReport report;
  report.completed = completed();
  report.abandoned = abandoned();
  report.overwritten = overwritten();
  report.stale = stale();
  for (int i = 0; i < kNumLatencyStages; ++i) {
    const LatencyStage stage = static_cast<LatencyStage>(i);
    report.stages.push_back(Summarize(LatencyStageName(stage),
                                      LatencyStageIsQueue(stage) ? "queue" : "service",
                                      stage_hist(stage), stage_stats(stage)));
  }
  // Class totals, merged across shards in island order.
  LogHistogram queue_wait_hist;
  RunningStats queue_wait_stats;
  LogHistogram service_hist;
  RunningStats service_stats;
  for (const Shard& s : shards_) {
    queue_wait_hist.Merge(s.queue_wait_hist);
    queue_wait_stats.Merge(s.queue_wait_stats);
    service_hist.Merge(s.service_hist);
    service_stats.Merge(s.service_stats);
  }
  report.stages.push_back(Summarize("queue_wait", "total", queue_wait_hist,
                                    queue_wait_stats));
  report.stages.push_back(Summarize("service", "total", service_hist, service_stats));
  report.stages.push_back(Summarize("e2e", "total", e2e_hist(), e2e_stats()));
  return report;
}

const LatencyStageSummary* LatencyReport::Find(const std::string& stage) const {
  for (const LatencyStageSummary& s : stages) {
    if (s.stage == stage) {
      return &s;
    }
  }
  return nullptr;
}

std::string LatencyReport::ToJson() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "{\"report\":\"latency\""
     << ",\"completed\":" << completed << ",\"abandoned\":" << abandoned
     << ",\"overwritten\":" << overwritten << ",\"stale\":" << stale << ",\"stages\":[";
  for (size_t i = 0; i < stages.size(); ++i) {
    const LatencyStageSummary& s = stages[i];
    if (i > 0) {
      os << ",";
    }
    os << "{\"stage\":\"" << s.stage << "\",\"class\":\"" << s.cls << "\""
       << ",\"count\":" << s.count << ",\"mean_ns\":" << s.mean_ns
       << ",\"max_ns\":" << s.max_ns << ",\"p50_ns\":" << s.p50_ns
       << ",\"p90_ns\":" << s.p90_ns << ",\"p99_ns\":" << s.p99_ns
       << ",\"p999_ns\":" << s.p999_ns << "}";
  }
  os << "]}";
  return os.str();
}

std::string LatencyReport::ToTable() const {
  std::ostringstream os;
  os << std::left << std::setw(14) << "stage" << std::setw(9) << "class" << std::right
     << std::setw(10) << "count" << std::setw(12) << "mean_us" << std::setw(10) << "p50_us"
     << std::setw(10) << "p90_us" << std::setw(10) << "p99_us" << std::setw(11)
     << "p99.9_us" << std::setw(11) << "max_us" << "\n";
  os << std::string(97, '-') << "\n";
  os << std::fixed;
  for (const LatencyStageSummary& s : stages) {
    os << std::left << std::setw(14) << s.stage << std::setw(9) << s.cls << std::right
       << std::setw(10) << s.count << std::setw(12) << std::setprecision(2)
       << s.mean_ns / 1000.0 << std::setw(10) << std::setprecision(2)
       << static_cast<double>(s.p50_ns) / 1000.0 << std::setw(10)
       << static_cast<double>(s.p90_ns) / 1000.0 << std::setw(10)
       << static_cast<double>(s.p99_ns) / 1000.0 << std::setw(11)
       << static_cast<double>(s.p999_ns) / 1000.0 << std::setw(11)
       << s.max_ns / 1000.0 << "\n";
  }
  return os.str();
}

namespace {

// Minimal scanner for the exact flat shape ToJson emits. Finds `"key":` in
// text[from, to) and returns the index just past the colon, or npos.
size_t FindValue(const std::string& text, size_t from, size_t to, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle, from);
  if (pos == std::string::npos || pos >= to) {
    return std::string::npos;
  }
  return pos + needle.size();
}

double NumberAt(const std::string& text, size_t from, size_t to, const std::string& key,
                bool* ok) {
  const size_t pos = FindValue(text, from, to, key);
  if (pos == std::string::npos) {
    *ok = false;
    return 0;
  }
  return std::strtod(text.c_str() + pos, nullptr);
}

std::string StringAt(const std::string& text, size_t from, size_t to,
                     const std::string& key, bool* ok) {
  size_t pos = FindValue(text, from, to, key);
  if (pos == std::string::npos || pos >= text.size() || text[pos] != '"') {
    *ok = false;
    return "";
  }
  ++pos;
  const size_t end = text.find('"', pos);
  if (end == std::string::npos || end > to) {
    *ok = false;
    return "";
  }
  return text.substr(pos, end - pos);
}

}  // namespace

LatencyReport ParseLatencyReportJson(const std::string& json, bool* ok) {
  bool good = true;
  LatencyReport report;
  const size_t stages_pos = json.find("\"stages\":[");
  if (stages_pos == std::string::npos) {
    if (ok != nullptr) {
      *ok = false;
    }
    return LatencyReport{};
  }
  report.completed =
      static_cast<uint64_t>(NumberAt(json, 0, stages_pos, "completed", &good));
  report.abandoned =
      static_cast<uint64_t>(NumberAt(json, 0, stages_pos, "abandoned", &good));
  report.overwritten =
      static_cast<uint64_t>(NumberAt(json, 0, stages_pos, "overwritten", &good));
  report.stale = static_cast<uint64_t>(NumberAt(json, 0, stages_pos, "stale", &good));

  // Stage objects are flat (no nested braces): walk { ... } pairs.
  size_t pos = stages_pos + 10;
  while (good) {
    const size_t open = json.find('{', pos);
    const size_t close = json.find('}', open);
    if (open == std::string::npos || close == std::string::npos) {
      break;
    }
    // Stop at the array's closing bracket.
    const size_t bracket = json.find(']', pos);
    if (bracket != std::string::npos && bracket < open) {
      break;
    }
    LatencyStageSummary s;
    s.stage = StringAt(json, open, close, "stage", &good);
    s.cls = StringAt(json, open, close, "class", &good);
    s.count = static_cast<uint64_t>(NumberAt(json, open, close, "count", &good));
    s.mean_ns = NumberAt(json, open, close, "mean_ns", &good);
    s.max_ns = NumberAt(json, open, close, "max_ns", &good);
    s.p50_ns = static_cast<uint64_t>(NumberAt(json, open, close, "p50_ns", &good));
    s.p90_ns = static_cast<uint64_t>(NumberAt(json, open, close, "p90_ns", &good));
    s.p99_ns = static_cast<uint64_t>(NumberAt(json, open, close, "p99_ns", &good));
    s.p999_ns = static_cast<uint64_t>(NumberAt(json, open, close, "p999_ns", &good));
    if (good) {
      report.stages.push_back(std::move(s));
    }
    pos = close + 1;
  }
  if (report.stages.empty()) {
    good = false;
  }
  if (ok != nullptr) {
    *ok = good;
  }
  return good ? report : LatencyReport{};
}

std::vector<LatencyRegression> CompareLatencyReports(const LatencyReport& baseline,
                                                     const LatencyReport& current,
                                                     double tolerance,
                                                     uint64_t min_count) {
  std::vector<LatencyRegression> violations;
  const auto check = [&](const LatencyStageSummary& base, const LatencyStageSummary* cur,
                         const char* metric, double base_v, double cur_v) {
    if (cur == nullptr || base_v <= 0) {
      return;
    }
    if (cur_v > base_v * (1.0 + tolerance)) {
      violations.push_back(LatencyRegression{base.stage, metric, base_v, cur_v,
                                             cur_v / base_v});
    }
  };
  for (const LatencyStageSummary& base : baseline.stages) {
    if (base.count < min_count) {
      continue;  // Too few samples to gate on.
    }
    const LatencyStageSummary* cur = current.Find(base.stage);
    check(base, cur, "mean_ns", base.mean_ns,
          cur != nullptr ? cur->mean_ns : 0);
    check(base, cur, "p99_ns", static_cast<double>(base.p99_ns),
          cur != nullptr ? static_cast<double>(cur->p99_ns) : 0);
  }
  return violations;
}

}  // namespace tas
