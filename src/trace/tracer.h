// Tracer: the per-host observability bundle — a MetricRegistry every
// subsystem registers into, a FlowTracer for per-flow protocol events, a
// TimeSeriesSampler for plot-ready series, and a SpanRecorder for CPU busy
// intervals — plus the exporters: JSONL dumps for metrics / flow events /
// time series, and a Chrome trace-event JSON (load in https://ui.perfetto.dev
// or chrome://tracing) that renders fast-path core busy spans, slow-path
// control iterations, per-flow event tracks, and time-series counter tracks
// on one timeline.
#ifndef SRC_TRACE_TRACER_H_
#define SRC_TRACE_TRACER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/trace/causal.h"
#include "src/trace/flow_tracer.h"
#include "src/trace/latency.h"
#include "src/trace/metric_registry.h"
#include "src/trace/timeseries.h"

namespace tas {

// Knobs carried by TasConfig::trace (and usable standalone). Everything is
// off by default; a default-constructed Tracer costs one branch per
// instrumentation site.
struct TraceConfig {
  // Per-flow protocol events for ALL flows (FlowTracer::EnableFlow opts in
  // individual flows when this is false).
  bool flow_events = false;
  size_t flow_event_capacity = 1u << 16;
  // CPU busy spans (per-core Charge intervals + slow-path control loops).
  bool cpu_spans = false;
  size_t span_capacity = 1u << 16;
  // Periodic sampling of registered probes; 0 disables the sweep task.
  TimeNs sample_period = 0;
  // Also sample per-flow cc rate/window, bytes in flight, and buffer
  // occupancy into one series per live flow (needs sample_period > 0).
  bool sample_flows = false;
  size_t series_max_points = 4096;
  // Per-packet latency anatomy (src/trace/latency): stage stamps in a side
  // ring, folded into per-stage histograms. The first TasService constructed
  // with this on installs its host's LatencyTracer as the global stamp sink
  // (packet journeys cross hosts, so one tracer observes the whole path).
  bool latency_stages = false;
  size_t latency_ring_capacity = 1u << 12;
  // Request-level causal tracing (src/trace/causal, DESIGN.md §12). Install
  // discipline mirrors latency_stages: the first causal-enabled TasService
  // installs its CausalTracer process-wide.
  bool causal = false;
  size_t causal_trace_capacity = 1u << 13;
  size_t causal_exemplars = 3;  // Slowest trace trees kept per request class.
};

// One contiguous busy interval on a track (track = simulated core id, or a
// synthetic id for logical tracks like the slow-path control loop).
struct TraceSpan {
  int track = 0;
  const char* name = "";  // Must point at static storage.
  TimeNs start = 0;
  TimeNs end = 0;
};

// Allocates synthetic track ids for logical tracks (request spans, exemplar
// trace trees, ...). Simulated core ids and the slow-path control track are
// assigned statically below kFirstTrack, so registered tracks never collide
// with them; every registered track gets thread-name metadata in the
// Perfetto export.
class TrackRegistry {
 public:
  static constexpr int kFirstTrack = 2000;

  int Register(std::string name) {
    const int track = next_track_++;
    names_.emplace(track, std::move(name));
    return track;
  }

  const std::map<int, std::string>& names() const { return names_; }

 private:
  int next_track_ = kFirstTrack;
  std::map<int, std::string> names_;  // Ordered for deterministic export.
};

class SpanRecorder {
 public:
  explicit SpanRecorder(size_t capacity = 1u << 16) : capacity_(capacity) {}

  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(int track, const char* name, TimeNs start, TimeNs end) {
    if (!enabled_) {
      return;
    }
    if (spans_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    spans_.push_back(TraceSpan{track, name, start, end});
  }

  // Human-readable track label for the Perfetto thread-name metadata (static
  // tracks: core ids, the slow-path control loop).
  void SetTrackName(int track, std::string name) { track_names_[track] = std::move(name); }

  // Allocates a fresh synthetic track and names it. Use instead of a
  // hardcoded track constant so logical tracks cannot collide.
  int RegisterTrack(std::string name) {
    const int track = registry_.Register(name);
    track_names_[track] = std::move(name);
    return track;
  }

  const TrackRegistry& registry() const { return registry_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::map<int, std::string>& track_names() const { return track_names_; }
  uint64_t dropped() const { return dropped_; }
  void Clear() {
    spans_.clear();
    dropped_ = 0;
  }

 private:
  bool enabled_ = false;
  size_t capacity_;
  TrackRegistry registry_;
  std::vector<TraceSpan> spans_;
  std::map<int, std::string> track_names_;  // Ordered for deterministic export.
  uint64_t dropped_ = 0;
};

class Tracer {
 public:
  explicit Tracer(Simulator* sim, const TraceConfig& config = TraceConfig{});

  const TraceConfig& config() const { return config_; }
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  FlowTracer& flow_events() { return flow_events_; }
  const FlowTracer& flow_events() const { return flow_events_; }
  TimeSeriesSampler& sampler() { return sampler_; }
  const TimeSeriesSampler& sampler() const { return sampler_; }
  SpanRecorder& spans() { return spans_; }
  const SpanRecorder& spans() const { return spans_; }
  LatencyTracer& latency() { return latency_; }
  const LatencyTracer& latency() const { return latency_; }
  CausalTracer& causal() { return causal_; }
  const CausalTracer& causal() const { return causal_; }

  // --- Exporters ------------------------------------------------------------
  void WriteMetricsJsonl(std::ostream& os) const { metrics_.WriteJsonl(os); }
  void WriteFlowEventsJsonl(std::ostream& os) const { flow_events_.WriteJsonl(os); }
  void WriteTimeSeriesJsonl(std::ostream& os) const { sampler_.WriteJsonl(os); }
  // Chrome trace-event format: CPU spans as complete events ("ph":"X"),
  // flow events as instants on per-flow tracks, time series as counters.
  void WritePerfettoJson(std::ostream& os) const;

  // Writes <prefix>.metrics.jsonl, <prefix>.flow_events.jsonl,
  // <prefix>.timeseries.jsonl and <prefix>.perfetto.json — plus
  // <prefix>.latency.json when latency_stages is on and
  // <prefix>.critical_path.json when causal is on. Warns (TAS_LOG) when any
  // ring overflowed and the export is therefore truncated. Returns false if
  // any file could not be opened.
  bool WriteAll(const std::string& prefix) const;

 private:
  TraceConfig config_;
  MetricRegistry metrics_;
  FlowTracer flow_events_;
  TimeSeriesSampler sampler_;
  SpanRecorder spans_;
  LatencyTracer latency_;
  CausalTracer causal_;
  // Track ids for exemplar trace trees, indexed cls * causal_exemplars + i.
  std::vector<int> exemplar_tracks_;
};

// Registers the simulator's dispatch metrics (events executed, pending
// events, pending high-water mark) under the "sim." prefix.
void RegisterSimulatorMetrics(MetricRegistry* registry, const Simulator* sim,
                              const std::string& prefix = "sim");

}  // namespace tas

#endif  // SRC_TRACE_TRACER_H_
