#include "src/trace/metric_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "src/util/logging.h"

namespace tas {

const char* MetricKindName(MetricKind kind) {
  return kind == MetricKind::kCounter ? "counter" : "gauge";
}

void MetricRegistry::Add(Entry entry) {
  TAS_CHECK(!entry.name.empty());
  TAS_CHECK(!Has(entry.name)) << "duplicate metric " << entry.name;
  entries_.push_back(std::move(entry));
}

void MetricRegistry::AddCounter(std::string name, const uint64_t* value) {
  TAS_CHECK(value != nullptr);
  Entry e;
  e.name = std::move(name);
  e.kind = MetricKind::kCounter;
  e.counter = value;
  Add(std::move(e));
}

void MetricRegistry::AddCounterFn(std::string name, std::function<uint64_t()> fn) {
  TAS_CHECK(fn != nullptr);
  Entry e;
  e.name = std::move(name);
  e.kind = MetricKind::kCounter;
  e.counter_fn = std::move(fn);
  Add(std::move(e));
}

void MetricRegistry::AddGauge(std::string name, std::function<double()> fn) {
  TAS_CHECK(fn != nullptr);
  Entry e;
  e.name = std::move(name);
  e.kind = MetricKind::kGauge;
  e.gauge_fn = std::move(fn);
  Add(std::move(e));
}

bool MetricRegistry::Has(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return true;
    }
  }
  return false;
}

bool MetricRegistry::ReadValue(const std::string& name, double* out) const {
  for (const Entry& e : entries_) {
    if (e.name != name) {
      continue;
    }
    if (e.kind == MetricKind::kCounter) {
      *out = static_cast<double>(e.counter != nullptr ? *e.counter : e.counter_fn());
    } else {
      *out = e.gauge_fn();
    }
    return true;
  }
  return false;
}

MetricSnapshot MetricRegistry::Snapshot() const {
  MetricSnapshot out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    double value = 0;
    if (e.kind == MetricKind::kCounter) {
      value = static_cast<double>(e.counter != nullptr ? *e.counter : e.counter_fn());
    } else {
      value = e.gauge_fn();
    }
    out.push_back(MetricSample{e.name, e.kind, value});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

MetricSnapshot MetricRegistry::Diff(const MetricSnapshot& before,
                                    const MetricSnapshot& after) {
  MetricSnapshot out;
  out.reserve(after.size());
  size_t bi = 0;
  for (const MetricSample& a : after) {
    while (bi < before.size() && before[bi].name < a.name) {
      ++bi;
    }
    MetricSample s = a;
    if (a.kind == MetricKind::kCounter && bi < before.size() && before[bi].name == a.name) {
      s.value = a.value - before[bi].value;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricRegistry::WriteJsonl(const MetricSnapshot& snapshot, std::ostream& os) {
  for (const MetricSample& s : snapshot) {
    os << "{\"name\":";
    JsonEscape(s.name, os);
    os << ",\"kind\":\"" << MetricKindName(s.kind) << "\",\"value\":" << JsonNumber(s.value)
       << "}\n";
  }
}

void JsonEscape(const std::string& s, std::ostream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string JsonNumber(double v) {
  char buf[32];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  } else {
    // JSON has no inf/nan; clamp to null-adjacent sentinel 0 rather than emit
    // an invalid document.
    std::snprintf(buf, sizeof(buf), "0");
  }
  return buf;
}

}  // namespace tas
