#include "src/trace/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "src/sim/parallel.h"
#include "src/trace/causal.h"
#include "src/trace/metric_registry.h"
#include "src/util/island.h"
#include "src/util/logging.h"

namespace tas {
namespace {

// Mirrors tracer.cc: microsecond timestamps with fixed three-decimal
// nanosecond precision, so Perfetto output is byte-stable across runs.
std::string TsUs(TimeNs t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  return buf;
}

constexpr int kPid = 1;
// Recorder tracks sit above the flow tracks of the full-trace bundle
// (kFlowTrackBase = 1<<20 there); one track per island per stream.
constexpr uint64_t kIslandTrackBase = 1u << 22;
constexpr uint64_t kIslandTrackStride = 8;

uint64_t IslandTrack(uint32_t island, RecorderStream stream) {
  return kIslandTrackBase + island * kIslandTrackStride + static_cast<uint64_t>(stream);
}

size_t RingCapacity(const WatchdogConfig& config, RecorderStream stream) {
  switch (stream) {
    case RecorderStream::kFlow:
      return config.flow_ring_capacity;
    case RecorderStream::kLatency:
      return config.latency_ring_capacity;
    case RecorderStream::kCausal:
      return config.causal_ring_capacity;
    case RecorderStream::kSlo:
      return config.slo_ring_capacity;
  }
  return 1;
}

}  // namespace

FlightRecorder* FlightRecorder::current_ = nullptr;

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kE2eLatencyP99:
      return "e2e_latency_p99";
    case SloKind::kRetransmitRate:
      return "retransmit_rate";
    case SloKind::kSlowPathQueueDepth:
      return "slowpath_queue_depth";
    case SloKind::kFlowTableProbeP99:
      return "flow_table_probe_p99";
    case SloKind::kCoreImbalance:
      return "core_imbalance";
    case SloKind::kMetricValue:
      return "metric_value";
  }
  return "?";
}

const char* RecorderStreamName(RecorderStream stream) {
  switch (stream) {
    case RecorderStream::kFlow:
      return "flow";
    case RecorderStream::kLatency:
      return "latency";
    case RecorderStream::kCausal:
      return "causal";
    case RecorderStream::kSlo:
      return "slo";
  }
  return "?";
}

std::vector<SloSpec> DefaultSlos() {
  // Conservative: a healthy run (perf_smoke's clean RPC workload, the churn
  // bench's steady state) stays far below every threshold; CI hard-fails on
  // a false positive, so these err loose. Chaos/bench scenarios that want
  // sharp triggers set explicit specs.
  std::vector<SloSpec> slos;
  slos.push_back({"e2e_p99", SloKind::kE2eLatencyP99,
                  static_cast<double>(Ms(50)), 3, 64, ""});
  slos.push_back({"retransmit_rate", SloKind::kRetransmitRate, 1000.0, 3, 0, ""});
  slos.push_back({"slowpath_queue_depth", SloKind::kSlowPathQueueDepth, 128.0, 3, 0, ""});
  slos.push_back({"flow_table_probe_p99", SloKind::kFlowTableProbeP99, 64.0, 3, 64, ""});
  slos.push_back({"core_imbalance", SloKind::kCoreImbalance, 16.0, 3,
                  static_cast<uint64_t>(Us(100)), ""});
  return slos;
}

FlightRecorder::FlightRecorder(const WatchdogConfig& config) : config_(config) {
  shards_.push_back(std::make_unique<Shard>());
  for (int s = 0; s < kNumRecorderStreams; ++s) {
    const size_t cap = RingCapacity(config_, static_cast<RecorderStream>(s));
    shards_[0]->streams[static_cast<size_t>(s)].ring.resize(cap > 0 ? cap : 1);
  }
}

FlightRecorder* FlightRecorder::Install(FlightRecorder* recorder) {
  TAS_CHECK(!SimPartition::AnyRunActive())
      << "FlightRecorder::Install during a partitioned run";
  FlightRecorder* previous = current_;
  current_ = recorder;
  return previous;
}

void FlightRecorder::EnableShards(int num_shards) {
  TAS_CHECK(num_shards >= 1);
  TAS_CHECK(!SimPartition::AnyRunActive())
      << "FlightRecorder::EnableShards during a partitioned run";
  shards_.clear();
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    for (int s = 0; s < kNumRecorderStreams; ++s) {
      const size_t cap = RingCapacity(config_, static_cast<RecorderStream>(s));
      shards_.back()->streams[static_cast<size_t>(s)].ring.resize(cap > 0 ? cap : 1);
    }
  }
  // Partitioned: bundle serialization needs merged reads and must wait for
  // the epoch boundary, where exactly one thread runs.
  deferred_ = num_shards > 1;
}

FlightRecorder::Shard& FlightRecorder::CurShard() {
  const size_t island = static_cast<size_t>(CurrentIslandId());
  return *shards_[island < shards_.size() ? island : 0];
}

void FlightRecorder::Append(RecorderStream stream, RecorderRecord rec) {
  Shard& shard = CurShard();
  StreamRing& r = shard.streams[static_cast<size_t>(stream)];
  rec.seq = shard.next_seq++;
  rec.island = static_cast<uint32_t>(
      std::min<size_t>(static_cast<size_t>(CurrentIslandId()), shards_.size() - 1));
  rec.stream = stream;
  r.ring[r.head] = rec;
  r.head = r.head + 1 == r.ring.size() ? 0 : r.head + 1;
  if (r.size < r.ring.size()) {
    ++r.size;
  }
  ++r.recorded;
}

void FlightRecorder::RecordFlowEvent(const FlowEvent& e) {
  RecorderRecord rec;
  rec.t = e.t;
  rec.type = static_cast<uint8_t>(e.type);
  rec.a = e.flow;
  rec.b = e.a;
  rec.c = e.b;
  rec.d = e.c;
  Append(RecorderStream::kFlow, rec);
}

void FlightRecorder::RecordLatency(TimeNs t, uint64_t e2e_ns, uint64_t queue_ns,
                                   uint64_t service_ns) {
  RecorderRecord rec;
  rec.t = t;
  rec.a = e2e_ns;
  rec.b = queue_ns;
  rec.c = service_ns;
  Append(RecorderStream::kLatency, rec);
}

void FlightRecorder::RecordCausal(TimeNs t, uint64_t trace_id, uint8_t request_class,
                                  uint64_t e2e_ns) {
  RecorderRecord rec;
  rec.t = t;
  rec.type = request_class;
  rec.a = trace_id;
  rec.b = e2e_ns;
  Append(RecorderStream::kCausal, rec);
}

void FlightRecorder::RecordSlo(TimeNs t, SloKind kind, double measured, bool breached) {
  RecorderRecord rec;
  rec.t = t;
  rec.type = static_cast<uint8_t>(kind);
  rec.a = breached ? 1 : 0;
  rec.v = measured;
  Append(RecorderStream::kSlo, rec);
}

std::vector<RecorderRecord> FlightRecorder::CaptureWindow(TimeNs from, TimeNs to) const {
  std::vector<RecorderRecord> out;
  for (const auto& shard : shards_) {
    for (const StreamRing& r : shard->streams) {
      const size_t start = r.size == r.ring.size() ? r.head : 0;
      for (size_t i = 0; i < r.size; ++i) {
        const RecorderRecord& rec = r.ring[(start + i) % r.ring.size()];
        if (rec.t >= from && rec.t <= to) {
          out.push_back(rec);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const RecorderRecord& x, const RecorderRecord& y) {
    if (x.t != y.t) return x.t < y.t;
    if (x.island != y.island) return x.island < y.island;
    return x.seq < y.seq;
  });
  return out;
}

uint64_t FlightRecorder::recorded(RecorderStream stream) const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->streams[static_cast<size_t>(stream)].recorded;
  }
  return sum;
}

uint64_t FlightRecorder::overwritten(RecorderStream stream) const {
  uint64_t sum = 0;
  for (const auto& shard : shards_) {
    const StreamRing& r = shard->streams[static_cast<size_t>(stream)];
    sum += r.recorded - r.size;
  }
  return sum;
}

void FlightRecorder::Trigger(SloTrigger trigger, std::function<std::string()> context_json) {
  if (deferred_) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.push_back(PendingTrigger{std::move(trigger), std::move(context_json)});
    return;
  }
  // Serial executor: the single simulation thread is already the only one
  // touching recorder state — serialize at the breach point.
  PendingTrigger pending{std::move(trigger), std::move(context_json)};
  Serialize(pending);
}

void FlightRecorder::OnEpochBound(TimeNs) {
  std::vector<PendingTrigger> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_.empty()) {
      return;
    }
    batch.swap(pending_);
  }
  // Several hosts can breach inside one epoch, each from its own island
  // thread: impose the workload-defined order, not the queueing order.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const PendingTrigger& x, const PendingTrigger& y) {
                     if (x.trigger.t != y.trigger.t) return x.trigger.t < y.trigger.t;
                     if (x.trigger.source != y.trigger.source)
                       return x.trigger.source < y.trigger.source;
                     return x.trigger.slo < y.trigger.slo;
                   });
  for (PendingTrigger& pending : batch) {
    Serialize(pending);
  }
}

void FlightRecorder::Serialize(PendingTrigger& pending) {
  SloTrigger& trigger = pending.trigger;
  const bool write = !config_.bundle_prefix.empty() && bundles_written_ < config_.max_bundles;
  trigger.bundle = write ? bundles_written_ : -1;
  if (write) {
    const std::vector<RecorderRecord> records =
        CaptureWindow(trigger.window_from, trigger.window_to);
    const std::string base =
        config_.bundle_prefix + ".bundle" + std::to_string(bundles_written_);
    {
      std::ofstream os(base + ".json");
      os << "{\"trigger\":" << SloTriggerToJson(trigger)
         << ",\"records\":" << records.size() << ",\"context\":"
         << (pending.context_json ? pending.context_json() : std::string("{}")) << "}\n";
    }
    {
      std::ofstream os(base + ".jsonl");
      WriteBundleJsonl(records, os);
    }
    {
      std::ofstream os(base + ".perfetto.json");
      WriteBundlePerfetto(trigger, records, os);
    }
    ++bundles_written_;
    TAS_LOG(INFO) << "watchdog breach '" << trigger.slo << "' at t=" << trigger.t
                  << "ns: wrote " << base << ".{json,jsonl,perfetto.json} ("
                  << records.size() << " records)";
  }
  triggers_.push_back(trigger);
}

void FlightRecorder::WriteBundleJsonl(const std::vector<RecorderRecord>& records,
                                      std::ostream& os) const {
  for (const RecorderRecord& rec : records) {
    os << "{\"t\":" << rec.t << ",\"island\":" << rec.island << ",\"seq\":" << rec.seq
       << ",\"stream\":\"" << RecorderStreamName(rec.stream) << '"';
    switch (rec.stream) {
      case RecorderStream::kFlow: {
        const auto type = static_cast<FlowEventType>(rec.type);
        os << ",\"type\":\"" << FlowEventTypeName(type) << "\",\"flow\":" << rec.a;
        const char* an;
        const char* bn;
        const char* cn;
        FlowEventArgNames(type, &an, &bn, &cn);
        if (an[0] != '\0') os << ",\"" << an << "\":" << rec.b;
        if (bn[0] != '\0') os << ",\"" << bn << "\":" << rec.c;
        if (cn[0] != '\0') os << ",\"" << cn << "\":" << rec.d;
        break;
      }
      case RecorderStream::kLatency:
        os << ",\"e2e_ns\":" << rec.a << ",\"queue_ns\":" << rec.b
           << ",\"service_ns\":" << rec.c;
        break;
      case RecorderStream::kCausal:
        os << ",\"class\":\"" << RequestClassName(static_cast<RequestClass>(rec.type))
           << "\",\"trace\":" << rec.a << ",\"e2e_ns\":" << rec.b;
        break;
      case RecorderStream::kSlo:
        os << ",\"slo\":\"" << SloKindName(static_cast<SloKind>(rec.type))
           << "\",\"measured\":" << JsonNumber(rec.v) << ",\"breached\":" << rec.a;
        break;
    }
    os << "}\n";
  }
}

void FlightRecorder::WriteBundlePerfetto(const SloTrigger& trigger,
                                         const std::vector<RecorderRecord>& records,
                                         std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kPid
     << ",\"args\":{\"name\":\"flight-recorder\"}}";
  // Name one track per (island, stream) that actually has records.
  std::vector<uint64_t> named;
  for (const RecorderRecord& rec : records) {
    const uint64_t track = IslandTrack(rec.island, rec.stream);
    if (std::find(named.begin(), named.end(), track) == named.end()) {
      named.push_back(track);
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid
         << ",\"tid\":" << track << ",\"args\":{\"name\":\"island-" << rec.island << '-'
         << RecorderStreamName(rec.stream) << "\"}}";
    }
  }
  // The evidence window as one span on the trigger's own track, so the
  // breach context frames everything else.
  sep();
  os << "{\"name\":\"" << trigger.slo << "\",\"cat\":\"slo\",\"ph\":\"X\",\"ts\":"
     << TsUs(trigger.window_from) << ",\"dur\":"
     << TsUs(trigger.window_to - trigger.window_from) << ",\"pid\":" << kPid
     << ",\"tid\":" << kIslandTrackBase - 1 << ",\"args\":{\"measured\":"
     << JsonNumber(trigger.measured) << ",\"threshold\":" << JsonNumber(trigger.threshold)
     << "}}";
  sep();
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid
     << ",\"tid\":" << kIslandTrackBase - 1 << ",\"args\":{\"name\":\"slo-trigger\"}}";
  for (const RecorderRecord& rec : records) {
    const uint64_t track = IslandTrack(rec.island, rec.stream);
    switch (rec.stream) {
      case RecorderStream::kFlow:
        sep();
        os << "{\"name\":\"" << FlowEventTypeName(static_cast<FlowEventType>(rec.type))
           << "\",\"cat\":\"flow\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << TsUs(rec.t)
           << ",\"pid\":" << kPid << ",\"tid\":" << track << ",\"args\":{\"flow\":" << rec.a
           << "}}";
        break;
      case RecorderStream::kLatency:
        // Packet e2e latency as a counter track (µs).
        sep();
        os << "{\"name\":\"e2e_us\",\"cat\":\"latency\",\"ph\":\"C\",\"ts\":" << TsUs(rec.t)
           << ",\"pid\":" << kPid << ",\"tid\":" << track << ",\"args\":{\"e2e_us\":"
           << JsonNumber(static_cast<double>(rec.a) / 1000.0) << "}}";
        break;
      case RecorderStream::kCausal:
        sep();
        os << "{\"name\":\"" << RequestClassName(static_cast<RequestClass>(rec.type))
           << "\",\"cat\":\"causal\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << TsUs(rec.t)
           << ",\"pid\":" << kPid << ",\"tid\":" << track
           << ",\"args\":{\"e2e_us\":"
           << JsonNumber(static_cast<double>(rec.b) / 1000.0) << "}}";
        break;
      case RecorderStream::kSlo:
        sep();
        os << "{\"name\":\"" << SloKindName(static_cast<SloKind>(rec.type))
           << "\",\"cat\":\"slo\",\"ph\":\"C\",\"ts\":" << TsUs(rec.t)
           << ",\"pid\":" << kPid << ",\"tid\":" << track << ",\"args\":{\"measured\":"
           << JsonNumber(rec.v) << "}}";
        break;
    }
  }
  os << "\n]}\n";
}

std::string SloTriggerToJson(const SloTrigger& trigger) {
  std::ostringstream os;
  os << "{\"slo\":";
  JsonEscape(trigger.slo, os);
  os << ",\"kind\":\"" << SloKindName(trigger.kind) << "\",\"measured\":"
     << JsonNumber(trigger.measured) << ",\"threshold\":" << JsonNumber(trigger.threshold)
     << ",\"burn_windows\":" << trigger.burn_windows << ",\"t\":" << trigger.t
     << ",\"window_from\":" << trigger.window_from << ",\"window_to\":" << trigger.window_to
     << ",\"source\":";
  JsonEscape(trigger.source, os);
  os << ",\"bundle\":" << trigger.bundle << "}";
  return os.str();
}

}  // namespace tas
