#include "src/trace/timeseries.h"

#include "src/trace/metric_registry.h"
#include "src/util/logging.h"

namespace tas {

TimeSeries::TimeSeries(std::string name, size_t max_points)
    : name_(std::move(name)), max_points_(max_points < 4 ? 4 : max_points) {
  points_.reserve(max_points_);
}

void TimeSeries::Append(TimeNs t, double v) {
  // Once decimated, accept only every stride_-th append so the series keeps
  // thinning at the same rate it did when it overflowed.
  if (appended_++ % stride_ != 0) {
    return;
  }
  points_.emplace_back(t, v);
  if (points_.size() >= max_points_) {
    // Drop every second point (keep the first) and double the stride.
    size_t w = 0;
    for (size_t r = 0; r < points_.size(); r += 2) {
      points_[w++] = points_[r];
    }
    points_.resize(w);
    stride_ *= 2;
  }
}

TimeSeries& TimeSeriesSampler::Series(const std::string& name, size_t max_points) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return *it->second;
  }
  series_.push_back(std::make_unique<TimeSeries>(name, max_points));
  TimeSeries* s = series_.back().get();
  by_name_[name] = s;
  return *s;
}

TimeSeries* TimeSeriesSampler::Find(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const TimeSeries* TimeSeriesSampler::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

void TimeSeriesSampler::AddProbe(const std::string& name, std::function<double()> fn,
                                 size_t max_points) {
  TAS_CHECK(fn != nullptr);
  probes_.push_back(Probe{&Series(name, max_points), std::move(fn)});
}

void TimeSeriesSampler::AddSweepHook(std::function<void(TimeNs)> hook) {
  TAS_CHECK(hook != nullptr);
  hooks_.push_back(std::move(hook));
}

void TimeSeriesSampler::Start(TimeNs period) {
  TAS_CHECK(period > 0);
  task_ = std::make_unique<PeriodicTask>(sim_, period, [this] { SampleNow(); });
  task_->Start();
}

void TimeSeriesSampler::Stop() {
  if (task_ != nullptr) {
    task_->Stop();
  }
}

void TimeSeriesSampler::SampleNow() {
  const TimeNs now = sim_->Now();
  ++sweeps_;
  for (Probe& probe : probes_) {
    probe.series->Append(now, probe.fn());
  }
  for (auto& hook : hooks_) {
    hook(now);
  }
}

void TimeSeriesSampler::WriteJsonl(std::ostream& os) const {
  for (const auto& series : series_) {
    os << "{\"name\":";
    JsonEscape(series->name(), os);
    os << ",\"points\":[";
    bool first = true;
    for (const auto& [t, v] : series->points()) {
      if (!first) {
        os << ',';
      }
      first = false;
      os << '[' << t << ',' << JsonNumber(v) << ']';
    }
    os << "]}\n";
  }
}

}  // namespace tas
