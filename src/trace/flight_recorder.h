// Always-on flight recorder + diagnostic bundles (DESIGN.md §15).
//
// A production TCP service needs a black box: when a p99 SLO burns or
// retransmits spike, operators must get the evidence *window* without
// re-running with full tracing on. The FlightRecorder continuously retains
// the last W ms of four record streams — flow events, latency-anatomy
// completions, causal-trace completions, and the watchdog's per-check SLO
// measurements — in bounded per-island rings using the PR 5/7 discipline:
// fixed-capacity rings of POD records, overwrite-oldest, per-stream drop
// counters. Every tap is a plain array write into thread-owned (per-island)
// memory; the armed-but-untriggered cost is a null/flag check per site plus
// that write, and nothing on the simulation side changes (no CPU charges, no
// RNG draws, no packets) — armed runs are timing-passive.
//
// On a watchdog breach (src/tas/watchdog) the recorder serializes a
// *diagnostic bundle*: the window's merged records (JSONL + Perfetto), a full
// metrics snapshot of the breaching host, steering / flow-table / slow-path
// state, and a machine-readable trigger record (which SLO, evidence window,
// measured vs threshold). Triggers read only deterministic sim state and
// bundles are serialized at deterministic points (the epoch boundary under
// the partitioned executor, where exactly one thread runs), so same-seed
// runs produce byte-identical bundles at every sim_threads width.
//
// Reached through the process-wide Install/Current pattern (LatencyTracer
// precedent): the first watchdog-enabled TAS host installs the recorder;
// every tap site in every host then feeds it.
#ifndef SRC_TRACE_FLIGHT_RECORDER_H_
#define SRC_TRACE_FLIGHT_RECORDER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/trace/flow_tracer.h"
#include "src/util/time.h"

namespace tas {

// --- SLO specification (the watchdog's declarative input) -------------------

enum class SloKind : uint8_t {
  kE2eLatencyP99 = 0,    // Windowed packet e2e p99 [ns] (island-local shard).
  kRetransmitRate,       // Retransmits per second over the check window.
  kSlowPathQueueDepth,   // Exception-queue depth at check time [packets].
  kFlowTableProbeP99,    // Windowed flow-table probe-length p99 [groups].
  kCoreImbalance,        // Busiest active core's share of the window's
                         // fast-path busy time, normalized: max/mean in
                         // [1, active_cores].
  kMetricValue,          // Any registered gauge/counter by name (SloSpec::
                         // metric) at check time — proxy SLOs use this.
};
inline constexpr int kNumSloKinds = 6;

const char* SloKindName(SloKind kind);

struct SloSpec {
  std::string name;       // Stable identifier used in triggers and bundles.
  SloKind kind = SloKind::kE2eLatencyP99;
  double threshold = 0;   // Breach when measured > threshold.
  int burn_windows = 3;   // Consecutive breached checks before triggering.
  // Evaluation floor: percentile kinds need this many window samples;
  // kCoreImbalance needs this many busy ns in the window. Below it the check
  // records its measurement but cannot breach (idle windows are not anomalies).
  uint64_t min_count = 16;
  std::string metric;     // kMetricValue: registered metric name to read.
};

// TasConfig::watchdog — arms the recorder + watchdog on a TAS host.
struct WatchdogConfig {
  bool enabled = false;
  // SLO evaluation cadence; 0 = the service's monitor_interval.
  TimeNs check_interval = 0;
  // Evidence window: a trigger captures [breach - recorder_window, breach].
  TimeNs recorder_window = Ms(50);
  // Per-island ring capacities, one ring per stream.
  size_t flow_ring_capacity = 1u << 14;
  size_t latency_ring_capacity = 1u << 14;
  size_t causal_ring_capacity = 1u << 13;
  size_t slo_ring_capacity = 1u << 12;
  // Empty = DefaultSlos() (conservative thresholds that never fire on a
  // healthy run; see flight_recorder.cc).
  std::vector<SloSpec> slos;
  // Bundle file prefix; files are "<prefix>.bundle<k>.{json,jsonl,
  // perfetto.json}". Empty = armed in-memory only (triggers still recorded).
  std::string bundle_prefix;
  int max_bundles = 4;         // Further triggers are recorded, not serialized.
  TimeNs cooldown = Ms(20);    // Per-SLO quiet period after a trigger.
};

// Returns the conservative default SLO set (used when WatchdogConfig::slos
// is empty): generous thresholds on e2e p99, retransmit rate, slow-path
// queue depth, flow-table probe p99, and core imbalance.
std::vector<SloSpec> DefaultSlos();

// --- Recorder records --------------------------------------------------------

enum class RecorderStream : uint8_t { kFlow = 0, kLatency, kCausal, kSlo };
inline constexpr int kNumRecorderStreams = 4;

const char* RecorderStreamName(RecorderStream stream);

// One retained record. POD: ring writes never allocate. The payload slots are
// stream-typed:
//   kFlow:    type = FlowEventType, a = flow id, b/c/d = event args a/b/c.
//   kLatency: a = e2e ns, b = queue-wait ns, c = service ns.
//   kCausal:  type = RequestClass, a = trace id, b = e2e ns.
//   kSlo:     type = SloKind, v = measured value (a = 1 if breached).
struct RecorderRecord {
  TimeNs t = 0;
  uint64_t seq = 0;    // Per-island append order (total order with t+island).
  uint32_t island = 0;
  RecorderStream stream = RecorderStream::kFlow;
  uint8_t type = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
  double v = 0;
};

// --- Trigger record ----------------------------------------------------------

// Machine-readable description of one watchdog breach.
struct SloTrigger {
  std::string slo;        // SloSpec::name.
  SloKind kind = SloKind::kE2eLatencyP99;
  double measured = 0;
  double threshold = 0;
  int burn_windows = 0;   // Consecutive breached checks that armed this.
  TimeNs t = 0;           // Breach (check) time.
  TimeNs window_from = 0; // Evidence window [window_from, window_to] ==
  TimeNs window_to = 0;   //   [t - recorder_window, t].
  std::string source;     // Breaching host, e.g. "h1".
  int bundle = -1;        // Bundle index, or -1 if not serialized (no prefix
                          // or max_bundles exhausted).
};

// --- FlightRecorder ----------------------------------------------------------

class FlightRecorder {
 public:
  explicit FlightRecorder(const WatchdogConfig& config);

  // Process-wide active recorder (LatencyTracer::Install pattern). Rejected
  // while a partitioned run is executing.
  static FlightRecorder* Install(FlightRecorder* recorder);
  static FlightRecorder* Current() { return current_; }

  // Sizes the per-island shard table for a partitioned run and switches
  // bundle serialization to deferred mode (triggers queue; OnEpochBound
  // serializes them single-threaded). Must run before any record is appended.
  void EnableShards(int num_shards);
  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool deferred() const { return deferred_; }

  const WatchdogConfig& config() const { return config_; }

  // --- Taps (called from the owning island's thread; ring write only) -------
  void RecordFlowEvent(const FlowEvent& e);
  void RecordLatency(TimeNs t, uint64_t e2e_ns, uint64_t queue_ns, uint64_t service_ns);
  void RecordCausal(TimeNs t, uint64_t trace_id, uint8_t request_class, uint64_t e2e_ns);
  void RecordSlo(TimeNs t, SloKind kind, double measured, bool breached);

  // --- Window capture (merged; single-threaded contexts only) ---------------
  // All retained records with t in [from, to], merged across islands and
  // streams, sorted by (t, island, seq) — a total order fixed by the workload,
  // not by thread count.
  std::vector<RecorderRecord> CaptureWindow(TimeNs from, TimeNs to) const;

  // Per-stream retention counters, summed over shards (read between runs or
  // at an epoch boundary; a mid-run merged read from a worker would race).
  uint64_t recorded(RecorderStream stream) const;
  uint64_t overwritten(RecorderStream stream) const;

  // --- Triggers & bundles ----------------------------------------------------
  // Queues a breach for serialization. `context_json` is invoked at
  // serialization time (single-threaded) and returns the bundle's "context"
  // object: metrics snapshot, steering/flow-table/slow-path state. In
  // deferred mode the bundle is written by the next OnEpochBound; in serial
  // mode it is written immediately.
  void Trigger(SloTrigger trigger, std::function<std::string()> context_json);

  // Epoch-boundary hook (SimPartition::SetEpochHook): exactly one thread
  // executes this while all workers are parked, so merged reads and file
  // writes are race-free. Serializes every queued trigger in (t, source, slo)
  // order.
  void OnEpochBound(TimeNs bound);

  // All triggers so far, in serialization order (benches and tests assert on
  // these without touching the filesystem). Same single-threaded-read rule.
  const std::vector<SloTrigger>& triggers() const { return triggers_; }
  int bundles_written() const { return bundles_written_; }

 private:
  struct StreamRing {
    std::vector<RecorderRecord> ring;
    size_t head = 0;  // Next write slot.
    size_t size = 0;  // Valid records (<= capacity).
    uint64_t recorded = 0;
  };

  struct Shard {
    std::array<StreamRing, kNumRecorderStreams> streams;
    uint64_t next_seq = 0;
  };

  struct PendingTrigger {
    SloTrigger trigger;
    std::function<std::string()> context_json;
  };

  Shard& CurShard();
  void Append(RecorderStream stream, RecorderRecord rec);
  void Serialize(PendingTrigger& pending);
  void WriteBundleJsonl(const std::vector<RecorderRecord>& records, std::ostream& os) const;
  void WriteBundlePerfetto(const SloTrigger& trigger,
                           const std::vector<RecorderRecord>& records,
                           std::ostream& os) const;

  static FlightRecorder* current_;

  WatchdogConfig config_;
  bool deferred_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Breaches queue from island threads (several can breach inside one epoch);
  // the mutex guards only this handoff, never a tap.
  std::mutex pending_mu_;
  std::vector<PendingTrigger> pending_;

  std::vector<SloTrigger> triggers_;
  int bundles_written_ = 0;
};

// Serializes a trigger as a single-line JSON object (the bundle's "trigger"
// field and the WATCHDOG JSON lines benches emit).
std::string SloTriggerToJson(const SloTrigger& trigger);

}  // namespace tas

#endif  // SRC_TRACE_FLIGHT_RECORDER_H_
