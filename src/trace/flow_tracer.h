// Per-flow event tracer: a bounded ring of typed records stamped with
// simulator time and flow id. The fast and slow paths emit one record per
// interesting protocol event (handshake transitions, data/ACK tx+rx,
// dupacks, retransmits, out-of-order handling, congestion-control updates);
// the ring overwrites its oldest records when full, so a long run keeps the
// most recent window at fixed memory cost.
//
// Tracing is off by default. It can be enabled for every flow (global) or
// per flow id; the disabled-path cost is one inline branch per call site.
#ifndef SRC_TRACE_FLOW_TRACER_H_
#define SRC_TRACE_FLOW_TRACER_H_

#include <array>
#include <cstdint>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "src/util/time.h"

namespace tas {

inline constexpr int kNumFlowEventTypes = 20;

enum class FlowEventType : uint8_t {
  kConnState,           // a = ConnState enum value after the transition.
  kSynTx,               // a = 1 if SYN-ACK, 0 if SYN.
  kSynRx,               // a = peer ISN.
  kFinTx,               // a = wire seq of the FIN.
  kFinRx,               // a = wire seq of the FIN.
  kRstRx,
  kDataTx,              // a = wire seq, b = len, c = tx_sent after send.
  kDataRx,              // a = wire seq, b = len, c = bytes delivered (0 = dup).
  kAckTx,               // a = ack, b = 1 if ECN echo set.
  kAckRx,               // a = ack, b = newly acked bytes, c = 1 if ECE.
  kDupAck,              // a = duplicate-ack count.
  kFastRetransmit,      // a = rewind-to seq (tx_tail).
  kTimeoutRetransmit,   // a = rewind-to seq, b = stalled interval count.
  kHandshakeRetransmit, // a = 1 SYN, 2 SYN-ACK, 3 FIN.
  kOooAccept,           // a = wire seq, b = len, c = interval length after.
  kOooDrop,             // a = wire seq, b = len.
  kRxBufferDrop,        // a = wire seq, b = len.
  kCcUpdate,            // a = rate [bps] or cwnd [bytes], b = ECN ppm, c = rtt us.
  // Application-level proxy events (src/proxy), recorded with the client
  // connection's flow id.
  kProxyRequest,        // a = object id, b = request id, c = 1 if cache hit.
  kProxyResponse,       // a = request id, b = body bytes, c = path (0 hit, 1 store, 2 splice).
};

// Stable lower_snake name used in JSONL/Perfetto output.
const char* FlowEventTypeName(FlowEventType type);
// Names for the generic a/b/c payload slots of this event type.
void FlowEventArgNames(FlowEventType type, const char** a, const char** b, const char** c);

struct FlowEvent {
  TimeNs t = 0;
  uint64_t flow = 0;
  FlowEventType type = FlowEventType::kConnState;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};

class FlowTracer {
 public:
  explicit FlowTracer(size_t capacity = 1u << 16);

  // Global switch: record events for every flow.
  void SetGlobal(bool enabled) { global_ = enabled; }
  bool global() const { return global_; }
  // Per-flow opt-in (effective when the global switch is off).
  void EnableFlow(uint64_t flow) { per_flow_.insert(flow); }
  void DisableFlow(uint64_t flow) { per_flow_.erase(flow); }

  // Forward every event to the process-wide FlightRecorder (flight_recorder.h)
  // in addition to (and independent of) this tracer's own ring. The recorder
  // tap sees all flows even when neither global nor per-flow tracing is on.
  void SetRecorderTap(bool enabled) { recorder_tap_ = enabled; }
  bool recorder_tap() const { return recorder_tap_; }

  // True if any Record call could store something — call sites may use this
  // to skip argument marshalling, but Record itself is safe to call always.
  bool active() const { return global_ || recorder_tap_ || !per_flow_.empty(); }
  bool enabled(uint64_t flow) const {
    return global_ || (!per_flow_.empty() && per_flow_.count(flow) != 0);
  }

  void Record(TimeNs t, uint64_t flow, FlowEventType type, uint64_t a = 0, uint64_t b = 0,
              uint64_t c = 0) {
    if (!global_ && !recorder_tap_ && per_flow_.empty()) {
      return;
    }
    RecordSlow(t, flow, type, a, b, c);
  }

  // Records currently retained, oldest first (ring order).
  std::vector<FlowEvent> Events() const;
  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  uint64_t recorded() const { return recorded_; }
  // Records overwritten because the ring wrapped.
  uint64_t overwritten() const { return recorded_ - size_; }
  // Overwrites attributed to the event type that was LOST (the overwritten
  // record's type, not the incoming one) — tells ring-sizing which stream
  // actually overflowed.
  uint64_t overwritten_by_type(FlowEventType type) const {
    return overwritten_by_type_[static_cast<size_t>(type)];
  }
  void Clear();

  // One JSON object per line, typed arg names:
  //   {"t":1234,"flow":0,"type":"data_tx","seq":17,"len":1448,"tx_sent":2896}
  void WriteJsonl(std::ostream& os) const;

 private:
  void RecordSlow(TimeNs t, uint64_t flow, FlowEventType type, uint64_t a, uint64_t b,
                  uint64_t c);

  bool global_ = false;
  bool recorder_tap_ = false;
  std::unordered_set<uint64_t> per_flow_;
  std::vector<FlowEvent> ring_;
  size_t head_ = 0;  // Next write slot.
  size_t size_ = 0;  // Valid records (<= capacity).
  uint64_t recorded_ = 0;
  std::array<uint64_t, kNumFlowEventTypes> overwritten_by_type_ = {};
};

}  // namespace tas

#endif  // SRC_TRACE_FLOW_TRACER_H_
