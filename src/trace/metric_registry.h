// MetricRegistry: one named namespace for every counter and gauge in the
// system. Subsystems keep owning their stats storage (TasStats, LinkStats,
// per-Core cycle arrays stay exactly where they are) and register *views*
// here — a pointer for monotone counters, a callback for gauges — so a
// snapshot walks live values without copying anything on the hot path.
//
// Naming scheme (DESIGN.md §7): dot-separated, lower_snake leaf, e.g.
//   tas.fastpath.rx_packets     nic.rx_drops        link.h0.d0.tx_bytes
//   sim.max_pending_events      tas.core.2.busy_ns  tas.slowpath.control_iterations
// Prefixes identify the owning component instance; registries are per-host
// (TasService) or per-experiment, so prefixes only need local uniqueness.
#ifndef SRC_TRACE_METRIC_REGISTRY_H_
#define SRC_TRACE_METRIC_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace tas {

enum class MetricKind : uint8_t {
  kCounter,  // Monotone event count; snapshot diffs subtract.
  kGauge,    // Point-in-time level; snapshot diffs keep the newer value.
};

const char* MetricKindName(MetricKind kind);

// One metric's value at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;
};

// A point-in-time capture of every registered metric, sorted by name.
using MetricSnapshot = std::vector<MetricSample>;

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Registers a counter backed by caller-owned storage. The pointer must
  // outlive the registry (stats structs and the registry share an owner in
  // practice: the service or the experiment).
  void AddCounter(std::string name, const uint64_t* value);
  // Counter whose value is computed on demand (e.g. Simulator accessors).
  void AddCounterFn(std::string name, std::function<uint64_t()> fn);
  // Gauge sampled via callback at snapshot time.
  void AddGauge(std::string name, std::function<double()> fn);

  bool Has(const std::string& name) const;
  size_t size() const { return entries_.size(); }

  // Reads one metric's current value by name (linear scan; fine at the
  // watchdog's check cadence). Returns false if the name is not registered.
  // kMetricValue SLOs evaluate through this.
  bool ReadValue(const std::string& name, double* out) const;

  MetricSnapshot Snapshot() const;
  // Counters: after - before (new entries keep their value). Gauges: the
  // `after` value. Entries only in `before` are dropped.
  static MetricSnapshot Diff(const MetricSnapshot& before, const MetricSnapshot& after);

  // One JSON object per line: {"name":"...","kind":"counter","value":123}.
  static void WriteJsonl(const MetricSnapshot& snapshot, std::ostream& os);
  void WriteJsonl(std::ostream& os) const { WriteJsonl(Snapshot(), os); }

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    const uint64_t* counter = nullptr;      // kCounter, pointer-backed.
    std::function<uint64_t()> counter_fn;   // kCounter, computed.
    std::function<double()> gauge_fn;       // kGauge.
  };

  void Add(Entry entry);

  std::vector<Entry> entries_;
};

// Writes a JSON-escaped string literal (including the quotes).
void JsonEscape(const std::string& s, std::ostream& os);
// Formats a double compactly and deterministically: integral values print as
// integers, everything else with enough digits to round-trip visually.
std::string JsonNumber(double v);

}  // namespace tas

#endif  // SRC_TRACE_METRIC_REGISTRY_H_
