#include "src/trace/flow_tracer.h"

#include "src/trace/flight_recorder.h"
#include "src/trace/metric_registry.h"
#include "src/util/logging.h"

namespace tas {
namespace {

struct TypeInfo {
  const char* name;
  const char* a;
  const char* b;
  const char* c;
};

const TypeInfo& InfoFor(FlowEventType type) {
  static const TypeInfo kInfo[] = {
      {"conn_state", "state", "", ""},
      {"syn_tx", "is_synack", "", ""},
      {"syn_rx", "peer_isn", "", ""},
      {"fin_tx", "seq", "", ""},
      {"fin_rx", "seq", "", ""},
      {"rst_rx", "", "", ""},
      {"data_tx", "seq", "len", "tx_sent"},
      {"data_rx", "seq", "len", "delivered"},
      {"ack_tx", "ack", "ecn_echo", ""},
      {"ack_rx", "ack", "acked", "ece"},
      {"dup_ack", "count", "", ""},
      {"fast_retransmit", "rewind_seq", "", ""},
      {"timeout_retransmit", "rewind_seq", "stalled_intervals", ""},
      {"handshake_retransmit", "kind", "", ""},
      {"ooo_accept", "seq", "len", "interval_len"},
      {"ooo_drop", "seq", "len", ""},
      {"rx_buffer_drop", "seq", "len", ""},
      {"cc_update", "rate_or_cwnd", "ecn_ppm", "rtt_us"},
      {"proxy_request", "object_id", "request_id", "hit"},
      {"proxy_response", "request_id", "body_len", "path"},
  };
  const size_t index = static_cast<size_t>(type);
  TAS_CHECK(index < sizeof(kInfo) / sizeof(kInfo[0]));
  return kInfo[index];
}

}  // namespace

const char* FlowEventTypeName(FlowEventType type) { return InfoFor(type).name; }

void FlowEventArgNames(FlowEventType type, const char** a, const char** b, const char** c) {
  const TypeInfo& info = InfoFor(type);
  *a = info.a;
  *b = info.b;
  *c = info.c;
}

FlowTracer::FlowTracer(size_t capacity) : ring_(capacity > 0 ? capacity : 1) {}

void FlowTracer::RecordSlow(TimeNs t, uint64_t flow, FlowEventType type, uint64_t a,
                            uint64_t b, uint64_t c) {
  if (recorder_tap_) {
    if (FlightRecorder* recorder = FlightRecorder::Current()) {
      recorder->RecordFlowEvent(FlowEvent{t, flow, type, a, b, c});
    }
  }
  if (!enabled(flow)) {
    return;
  }
  if (size_ == ring_.size()) {
    // Ring full: this write evicts the oldest record — charge ITS type.
    ++overwritten_by_type_[static_cast<size_t>(ring_[head_].type)];
  }
  ring_[head_] = FlowEvent{t, flow, type, a, b, c};
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) {
    ++size_;
  }
  ++recorded_;
}

std::vector<FlowEvent> FlowTracer::Events() const {
  std::vector<FlowEvent> out;
  out.reserve(size_);
  // Oldest record: head_ when the ring wrapped, slot 0 otherwise.
  const size_t start = size_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlowTracer::Clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  overwritten_by_type_.fill(0);
}

void FlowTracer::WriteJsonl(std::ostream& os) const {
  for (const FlowEvent& e : Events()) {
    const TypeInfo& info = InfoFor(e.type);
    os << "{\"t\":" << e.t << ",\"flow\":" << e.flow << ",\"type\":\"" << info.name << '"';
    if (info.a[0] != '\0') {
      os << ",\"" << info.a << "\":" << e.a;
    }
    if (info.b[0] != '\0') {
      os << ",\"" << info.b << "\":" << e.b;
    }
    if (info.c[0] != '\0') {
      os << ",\"" << info.c << "\":" << e.c;
    }
    os << "}\n";
  }
}

}  // namespace tas
