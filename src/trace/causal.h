// Request-level causal tracing with critical-path analysis (DESIGN.md §12).
//
// Dapper-style: the workload tier (ProxyClientGen) mints a TraceContext —
// a trace id plus the id of the span the next hop should parent under — and
// carries it on every wire message. Each tier that touches the request opens
// a span (client request, proxy job, origin fetch, origin serve), so a
// finished trace holds a span *tree* spanning hosts. Alongside the tree,
// tiers drop critical-path *marks*: interval-ends-here edge stamps (the
// LatencyTracer discipline from PR 5, lifted from packets to requests) where
// Mark(edge, now) charges [previous mark, now) to `edge`. Because every tier
// marks exactly the moment the request stopped waiting on it, the mark chain
// IS the blocking chain — extracting the critical path is a linear walk, and
// the per-edge durations of a finished trace always sum exactly to its
// end-to-end time (`critical_path_mismatches` counts violations, mirroring
// PR 5's partition invariant).
//
// Records live in a ring keyed by `trace_id & mask` with stale-id rejection,
// reached through the process-wide Install/Current pattern (first
// causal-enabled TAS host installs its tracer; requests cross hosts, so one
// tracer observes the whole path). A null Current() costs each
// instrumentation site one load + branch, and trace ids on the wire are 0 —
// tracing off changes no message size and no behavior.
#ifndef SRC_TRACE_CAUSAL_H_
#define SRC_TRACE_CAUSAL_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/stats.h"
#include "src/util/time.h"

namespace tas {

// Carried on wire messages: which trace this request belongs to and which
// span the receiving tier should parent its own span under. trace_id 0 means
// "untraced" (tracing disabled or ring slot recycled).
struct TraceContext {
  uint64_t trace_id = 0;
  uint32_t parent_span = 0;
};

// Critical-path edge classes: what the request was waiting on during each
// interval of its life. Network edges cover whole packet journeys (PR 5's
// per-packet stages decompose them further); wait edges are proxy-level
// queues invisible to per-packet histograms; service edges are tier compute.
enum class CausalEdge : uint8_t {
  kNetRequest = 0,  // Client wrote request -> proxy parsed it.
  kCacheWork,       // Proxy parse -> cache hit ready (hit path only).
  kCoalesceWait,    // Coalesced miss parked -> primary fetch landed/fanned out.
  kOverflowQueue,   // Pool dispatch -> assigned to an origin connection.
  kOriginQueue,     // Assigned -> request bytes accepted by the origin conn.
  kNetToOrigin,     // Written -> origin parsed the request.
  kOriginServe,     // Origin parsed -> response fully accepted by its stack.
  kNetFromOrigin,   // Origin response in flight -> proxy job ready.
  kProxySend,       // Proxy parse/ready -> last response byte accepted.
  kNetResponse,     // Proxy finished -> client consumed the full response.
};
inline constexpr int kNumCausalEdges = 10;

const char* CausalEdgeName(CausalEdge edge);
// "network", "wait", or "service" — the report's class column.
const char* CausalEdgeClass(CausalEdge edge);

// How the request was ultimately served. A coalesced waiter that got fanned
// out to its own fetch counts as its final path (store/splice), not
// coalesced; its coalesce_wait edge still shows the time parked.
enum class RequestClass : uint8_t { kHit = 0, kStore, kSplice, kCoalesced };
inline constexpr int kNumRequestClasses = 4;

const char* RequestClassName(RequestClass cls);

enum class CausalSpanKind : uint8_t { kRequest = 0, kProxyJob, kOriginFetch, kOriginServe };

const char* CausalSpanKindName(CausalSpanKind kind);

// One node of a request's span tree. `parent` 0 = root. `end` 0 = the span
// was never closed (its tier died mid-request; the request completed via a
// re-dispatched attempt).
struct CausalSpan {
  uint32_t id = 0;
  uint32_t parent = 0;
  CausalSpanKind kind = CausalSpanKind::kRequest;
  TimeNs start = 0;
  TimeNs end = 0;
  uint32_t object_id = 0;
  uint32_t request_id = 0;
};

// Interval-ends-here stamp: charges [previous mark, t) to `edge`.
struct CausalMark {
  TimeNs t = 0;
  CausalEdge edge = CausalEdge::kNetRequest;
};

// Cross-trace causality: the primary fetch's span unblocked a coalesced
// waiter's job span (rendered as a Perfetto flow arrow between exemplars).
struct CausalLink {
  uint64_t from_trace = 0;
  uint32_t from_span = 0;
  uint32_t to_span = 0;  // Belongs to the trace the link is recorded on.
};

// A finished trace retained whole (top-k slowest per class).
struct TraceExemplar {
  uint64_t trace_id = 0;
  RequestClass cls = RequestClass::kHit;
  TimeNs start = 0;
  TimeNs end = 0;
  std::vector<CausalSpan> spans;
  std::vector<CausalMark> marks;  // Final kNetResponse mark included.
  std::vector<CausalLink> links;
};

// --- Span-tree assembly -----------------------------------------------------

// Tree over indices into the input span vector. Spans whose parent id is
// missing (dropped by a capacity cap or a tier that died) attach under the
// root and are counted — an orphan is a degraded tree, not an error.
struct SpanTree {
  struct Node {
    size_t span = 0;  // Index into the input vector.
    std::vector<size_t> children;  // Node indices, in input order.
    bool orphan = false;  // Parent id was nonzero but not present.
  };
  std::vector<Node> nodes;  // nodes[i] describes spans[i].
  size_t root = SIZE_MAX;   // Node index of the first parentless span.
  size_t orphans = 0;
};

SpanTree AssembleSpanTree(const std::vector<CausalSpan>& spans);

// --- Critical-path extraction ----------------------------------------------

struct CriticalPathEdge {
  CausalEdge edge = CausalEdge::kNetRequest;
  TimeNs duration = 0;
};

// Walks the mark chain of a trace spanning [start, end] and accumulates one
// duration per touched edge (in first-touched order). Returns false — and
// leaves *out partial — if the chain cannot partition [start, end]: no
// marks, a non-monotone timestamp, a first mark before start, or a last mark
// that is not exactly `end`.
bool ExtractCriticalPath(TimeNs start, TimeNs end, const std::vector<CausalMark>& marks,
                         std::vector<CriticalPathEdge>* out);

// --- Report -----------------------------------------------------------------

// One row: an edge of one request class, or the synthetic "e2e" row.
struct CriticalPathEdgeSummary {
  std::string edge;
  std::string cls;  // "network", "wait", "service", or "total" for e2e.
  uint64_t count = 0;  // Traces of this class whose path touched the edge.
  double mean_ns = 0;
  double max_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  // This edge's share of the class's summed end-to-end time (0..1).
  double share = 0;
};

struct CriticalPathClassSummary {
  std::string request_class;
  uint64_t count = 0;  // Completed traces of this class.
  std::vector<CriticalPathEdgeSummary> edges;  // "e2e" row first.

  const CriticalPathEdgeSummary* Find(const std::string& edge) const;
};

struct CriticalPathReport {
  uint64_t completed = 0;
  uint64_t abandoned = 0;
  uint64_t dropped = 0;    // Ring wrapped over a live trace.
  uint64_t stale = 0;      // Stamps after drop/finish.
  uint64_t truncated = 0;  // Per-trace span/mark caps hit.
  uint64_t mismatches = 0;  // critical_path_mismatches.
  std::vector<CriticalPathClassSummary> classes;  // Only classes with traffic.

  const CriticalPathClassSummary* Find(const std::string& request_class) const;
  // Single-line JSON (the PROXY_CRITPATH_JSON payload and the
  // <prefix>.critical_path.json file format).
  std::string ToJson() const;
  // Fixed-width text table for terminal output.
  std::string ToTable() const;
};

// Parses a report previously produced by CriticalPathReport::ToJson. Sets
// *ok to false (and returns an empty report) on malformed input.
CriticalPathReport ParseCriticalPathReportJson(const std::string& json, bool* ok = nullptr);

// One comparator violation: `metric` of (`request_class`, `edge`) regressed.
struct CriticalPathRegression {
  std::string request_class;
  std::string edge;
  std::string metric;  // "mean_ns" or "p99_ns".
  double baseline = 0;
  double current = 0;
  double ratio = 0;  // current / baseline.
};

// CI gate: flags (class, edge) rows — including "e2e" — whose mean or p99
// grew beyond baseline * (1 + tolerance). Rows with fewer than `min_count`
// baseline samples are skipped; improvements always pass. A class present in
// the baseline but absent from `current` is itself a violation (the workload
// lost a whole request class).
std::vector<CriticalPathRegression> CompareCriticalPathReports(
    const CriticalPathReport& baseline, const CriticalPathReport& current, double tolerance,
    uint64_t min_count = 50);

// --- Tracer -----------------------------------------------------------------

// Sharded for partitioned runs exactly like LatencyTracer (DESIGN.md §13):
// one shard per island, trace ids carry the opening island's shard in their
// high bits, span ids in bits [24, 32). Trace records are reached through
// the id (cross-island access is ordered by the epoch barrier that carried
// the request's packet); statistics, counters, and exemplar retention fold
// into the CALLING island's shard. Report() and the aggregate accessors
// merge shards in island order — exact integer sums, so merged output is
// byte-identical to an unsharded serial run. Serial mode is one shard.
class CausalTracer {
 public:
  explicit CausalTracer(size_t trace_capacity = 1u << 13, size_t exemplars_per_class = 3);

  // Process-wide active tracer (LatencyTracer pattern). Returns the
  // previously installed tracer. Rejected mid-partitioned-run.
  static CausalTracer* Install(CausalTracer* tracer);
  static CausalTracer* Current() { return current_; }

  // Sizes the shard table for a partitioned run (one shard per island).
  // Must be called before any trace is opened; resets all state.
  void EnableShards(int num_shards);
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Opens a trace whose clock starts at `start`; ids are never 0. If the
  // ring slot still holds a live trace, that oldest trace is dropped.
  uint64_t BeginTrace(TimeNs start);
  // Adds a span under `parent` (0 = root). Returns the span id (0 if the
  // trace is gone or its span cap is hit — safe to carry on the wire).
  uint32_t StartSpan(uint64_t trace, uint32_t parent, CausalSpanKind kind, TimeNs start,
                     uint32_t object_id = 0, uint32_t request_id = 0);
  void EndSpan(uint64_t trace, uint32_t span, TimeNs end);
  // Charges [previous mark, now) on the trace's critical path to `edge`.
  void Mark(uint64_t trace, CausalEdge edge, TimeNs now);
  // Records how the request was served (the proxy decides at response time).
  void SetClass(uint64_t trace, RequestClass cls);
  // Cross-trace arrow: `from` (usually the primary fetch span) unblocked
  // `to_span` of `to_trace`.
  void Link(uint64_t from_trace, uint32_t from_span, uint64_t to_trace, uint32_t to_span);
  // Completes the trace at `end`: appends the final kNetResponse mark,
  // verifies the chain partitions [start, end], folds per-(class, edge)
  // histograms, and retains the trace as an exemplar if it is among the k
  // slowest of its class.
  void Finish(uint64_t trace, TimeNs end);
  // Retires a trace without folding it (request retried / client died).
  void Abandon(uint64_t trace);

  // Aggregates over all shards; safe between runs (any time in serial mode).
  uint64_t completed() const { return SumCounter(&Shard::completed); }
  uint64_t abandoned() const { return SumCounter(&Shard::abandoned); }
  uint64_t dropped() const { return SumCounter(&Shard::dropped); }
  uint64_t stale() const { return SumCounter(&Shard::stale); }
  uint64_t truncated() const { return SumCounter(&Shard::truncated); }
  // Truncation attributed to the cap that was hit — which stream overflowed
  // (the satellite fix to the single opaque `truncated` counter). One trace
  // can charge several caps; the per-site counters count capped *calls*, the
  // aggregate above counts discarded *traces*.
  uint64_t truncated_spans() const { return SumCounter(&Shard::truncated_spans); }
  uint64_t truncated_marks() const { return SumCounter(&Shard::truncated_marks); }
  uint64_t truncated_links() const { return SumCounter(&Shard::truncated_links); }
  // Finished traces whose mark chain failed to partition end-to-end time, or
  // that never got a class — 0 unless a stamp site regresses.
  uint64_t critical_path_mismatches() const {
    return SumCounter(&Shard::critical_path_mismatches);
  }

  // Merged (shard-summed) distribution views, by value.
  LogHistogram edge_hist(RequestClass cls, CausalEdge edge) const;
  RunningStats edge_stats(RequestClass cls, CausalEdge edge) const;
  LogHistogram e2e_hist(RequestClass cls) const;
  RunningStats e2e_stats(RequestClass cls) const;
  // Slowest finished traces of `cls`, worst first (global top-k: each shard
  // retains its own top-k, the union's top-k is re-selected on read). The
  // reference stays valid until the next exemplars() call for the same class.
  const std::vector<TraceExemplar>& exemplars(RequestClass cls) const;

  CriticalPathReport Report() const;
  void Clear();

 private:
  // Per-trace caps: a request touches a handful of spans/marks; re-dispatch
  // storms under faults may repeat queue edges, so leave headroom. A capped
  // trace is counted `truncated` and excluded from folding, never silently
  // mis-attributed.
  static constexpr size_t kMaxSpans = 16;
  static constexpr size_t kMaxMarks = 48;
  static constexpr size_t kMaxLinks = 8;

  struct TraceRec {
    uint64_t id = 0;  // 0 = slot free.
    TimeNs start = 0;
    RequestClass cls = RequestClass::kHit;
    bool has_class = false;
    bool truncated = false;
    std::vector<CausalSpan> spans;
    std::vector<CausalMark> marks;
    std::vector<CausalLink> links;
  };

  struct Shard {
    std::vector<TraceRec> ring;
    uint64_t next_trace_id = 1;
    uint32_t next_span_id = 1;

    std::array<LogHistogram, kNumRequestClasses * kNumCausalEdges> edge_hist;
    std::array<RunningStats, kNumRequestClasses * kNumCausalEdges> edge_stats;
    std::array<LogHistogram, kNumRequestClasses> e2e_hist;
    std::array<RunningStats, kNumRequestClasses> e2e_stats;
    std::array<std::vector<TraceExemplar>, kNumRequestClasses> exemplars;

    uint64_t completed = 0;
    uint64_t abandoned = 0;
    uint64_t dropped = 0;
    uint64_t stale = 0;
    uint64_t truncated = 0;
    uint64_t truncated_spans = 0;
    uint64_t truncated_marks = 0;
    uint64_t truncated_links = 0;
    uint64_t critical_path_mismatches = 0;
  };

  // Trace ids: [shard | per-shard sequence]. Span ids are uint32 and travel
  // on the wire, so their shard tag sits at bit 24 (16M spans per island).
  static constexpr int kTraceShardShift = 48;
  static constexpr int kSpanShardShift = 24;

  static size_t Idx(RequestClass cls, CausalEdge edge) {
    return static_cast<size_t>(cls) * kNumCausalEdges + static_cast<size_t>(edge);
  }

  Shard& CurShard();
  TraceRec* Slot(uint64_t id);
  void MaybeRetainExemplar(const TraceRec& rec, TimeNs end);

  uint64_t SumCounter(uint64_t Shard::* counter) const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.*counter;
    }
    return sum;
  }

  static CausalTracer* current_;

  size_t mask_;
  size_t exemplars_per_class_;
  std::vector<Shard> shards_;
  // Lazily rebuilt per-class merge of the shards' exemplar pools, so
  // exemplars() can keep returning a reference.
  mutable std::array<std::vector<TraceExemplar>, kNumRequestClasses> exemplar_cache_;
};

}  // namespace tas

#endif  // SRC_TRACE_CAUSAL_H_
