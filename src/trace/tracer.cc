#include "src/trace/tracer.h"

#include <cstdio>
#include <fstream>

#include "src/util/logging.h"

namespace tas {
namespace {

// Chrome trace-event timestamps are microseconds; keep nanosecond precision
// with three decimals. Fixed-format so output is byte-stable across runs.
std::string TsUs(TimeNs t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  return buf;
}

constexpr int kPid = 1;
// Flow tracks sit far above any simulated core id.
constexpr uint64_t kFlowTrackBase = 1u << 20;

}  // namespace

Tracer::Tracer(Simulator* sim, const TraceConfig& config)
    : config_(config),
      flow_events_(config.flow_event_capacity),
      sampler_(sim),
      spans_(config.span_capacity),
      latency_(config.latency_ring_capacity),
      causal_(config.causal_trace_capacity, config.causal_exemplars) {
  flow_events_.SetGlobal(config.flow_events);
  spans_.SetEnabled(config.cpu_spans);
  if (config.causal) {
    // Pre-register one track per retained exemplar slot so the slowest trace
    // trees land on stable, named Perfetto tracks.
    exemplar_tracks_.reserve(kNumRequestClasses * config.causal_exemplars);
    for (int cls = 0; cls < kNumRequestClasses; ++cls) {
      for (size_t i = 0; i < config.causal_exemplars; ++i) {
        exemplar_tracks_.push_back(spans_.RegisterTrack(
            "critpath-" + std::string(RequestClassName(static_cast<RequestClass>(cls))) + "-" +
            std::to_string(i)));
      }
    }
  }
}

void Tracer::WritePerfettoJson(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };

  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kPid
     << ",\"args\":{\"name\":\"tas\"}}";

  for (const auto& [track, name] : spans_.track_names()) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid << ",\"tid\":" << track
       << ",\"args\":{\"name\":";
    JsonEscape(name, os);
    os << "}}";
  }

  // CPU busy spans as complete ("X") events.
  for (const TraceSpan& span : spans_.spans()) {
    sep();
    os << "{\"name\":\"" << span.name << "\",\"cat\":\"cpu\",\"ph\":\"X\",\"ts\":"
       << TsUs(span.start) << ",\"dur\":" << TsUs(span.end - span.start)
       << ",\"pid\":" << kPid << ",\"tid\":" << span.track << "}";
  }

  // Flow events as instant ("i") events, one synthetic track per flow.
  std::vector<uint64_t> named_flows;
  for (const FlowEvent& e : flow_events_.Events()) {
    const uint64_t track = kFlowTrackBase + e.flow;
    bool seen = false;
    for (uint64_t f : named_flows) {
      if (f == e.flow) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      named_flows.push_back(e.flow);
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid << ",\"tid\":" << track
         << ",\"args\":{\"name\":\"flow-" << e.flow << "\"}}";
    }
    sep();
    os << "{\"name\":\"" << FlowEventTypeName(e.type)
       << "\",\"cat\":\"flow\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << TsUs(e.t)
       << ",\"pid\":" << kPid << ",\"tid\":" << track << ",\"args\":{\"flow\":" << e.flow;
    const char* an;
    const char* bn;
    const char* cn;
    FlowEventArgNames(e.type, &an, &bn, &cn);
    if (an[0] != '\0') {
      os << ",\"" << an << "\":" << e.a;
    }
    if (bn[0] != '\0') {
      os << ",\"" << bn << "\":" << e.b;
    }
    if (cn[0] != '\0') {
      os << ",\"" << cn << "\":" << e.c;
    }
    os << "}}";
  }

  // Loss-recovery flow arrows: pair each retransmit with the first ACK that
  // moves snd_una afterwards and draw an "s" -> "t" arrow across the
  // recovery window (plus an "X" slice so the arrow endpoints have a slice
  // to bind to). Only the FIRST unrecovered retransmit per flow is kept —
  // later retransmits of the same loss episode extend the same window.
  {
    std::map<uint64_t, TimeNs> pending_retx;  // flow -> retransmit time.
    uint64_t arrow_id = 1;
    for (const FlowEvent& e : flow_events_.Events()) {
      if (e.type == FlowEventType::kFastRetransmit ||
          e.type == FlowEventType::kTimeoutRetransmit) {
        pending_retx.emplace(e.flow, e.t);  // First retx of the episode wins.
        continue;
      }
      if (e.type != FlowEventType::kAckRx || e.b == 0) {
        continue;
      }
      auto it = pending_retx.find(e.flow);
      if (it == pending_retx.end()) {
        continue;
      }
      const TimeNs start = it->second;
      pending_retx.erase(it);
      const uint64_t track = kFlowTrackBase + e.flow;
      sep();
      os << "{\"name\":\"loss_recovery\",\"cat\":\"recovery\",\"ph\":\"X\",\"ts\":"
         << TsUs(start) << ",\"dur\":" << TsUs(e.t - start) << ",\"pid\":" << kPid
         << ",\"tid\":" << track << "}";
      sep();
      os << "{\"name\":\"retx_recovery\",\"cat\":\"recovery\",\"ph\":\"s\",\"id\":" << arrow_id
         << ",\"ts\":" << TsUs(start) << ",\"pid\":" << kPid << ",\"tid\":" << track << "}";
      sep();
      os << "{\"name\":\"retx_recovery\",\"cat\":\"recovery\",\"ph\":\"t\",\"id\":" << arrow_id
         << ",\"ts\":" << TsUs(e.t) << ",\"pid\":" << kPid << ",\"tid\":" << track << "}";
      ++arrow_id;
    }
  }

  // Exemplar trace trees (slowest requests per class) as nested "X" slices
  // on their pre-registered tracks, with cross-trace coalescing links drawn
  // as flow arrows when both endpoints were exported.
  if (config_.causal && !exemplar_tracks_.empty()) {
    std::map<uint64_t, size_t> exported;  // trace id -> exemplar track index.
    for (int cls = 0; cls < kNumRequestClasses; ++cls) {
      const auto& exs = causal_.exemplars(static_cast<RequestClass>(cls));
      for (size_t i = 0; i < exs.size() && i < config_.causal_exemplars; ++i) {
        const size_t slot = static_cast<size_t>(cls) * config_.causal_exemplars + i;
        exported.emplace(exs[i].trace_id, slot);
        const int track = exemplar_tracks_[slot];
        for (const CausalSpan& span : exs[i].spans) {
          // A span that was never closed (its tier died) renders to the
          // trace end so the hole is visible rather than zero-width.
          const TimeNs end = span.end != 0 ? span.end : exs[i].end;
          sep();
          os << "{\"name\":\"" << CausalSpanKindName(span.kind)
             << "\",\"cat\":\"critpath\",\"ph\":\"X\",\"ts\":" << TsUs(span.start)
             << ",\"dur\":" << TsUs(end - span.start) << ",\"pid\":" << kPid
             << ",\"tid\":" << track << ",\"args\":{\"trace\":" << exs[i].trace_id
             << ",\"span\":" << span.id << ",\"object\":" << span.object_id
             << ",\"request\":" << span.request_id << (span.end == 0 ? ",\"open\":1" : "")
             << "}}";
        }
        for (const CausalMark& mark : exs[i].marks) {
          sep();
          os << "{\"name\":\"" << CausalEdgeName(mark.edge)
             << "\",\"cat\":\"critpath\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << TsUs(mark.t)
             << ",\"pid\":" << kPid << ",\"tid\":" << track << "}";
        }
      }
    }
    uint64_t link_id = 1u << 20;  // Distinct id space from the retx arrows.
    for (const auto& [trace_id, slot] : exported) {
      const auto& exs =
          causal_.exemplars(static_cast<RequestClass>(slot / config_.causal_exemplars));
      const TraceExemplar& ex = exs[slot % config_.causal_exemplars];
      for (const CausalLink& link : ex.links) {
        auto from = exported.find(link.from_trace);
        if (from == exported.end()) {
          continue;  // Primary's trace was not retained; no arrow.
        }
        // The arrow fires when the primary fetch landed = the moment the
        // waiter's coalesce_wait edge ended. Find that mark on the waiter.
        TimeNs when = ex.end;
        for (const CausalMark& mark : ex.marks) {
          if (mark.edge == CausalEdge::kCoalesceWait) {
            when = mark.t;
            break;
          }
        }
        sep();
        os << "{\"name\":\"coalesced_from\",\"cat\":\"critpath\",\"ph\":\"s\",\"id\":" << link_id
           << ",\"ts\":" << TsUs(when) << ",\"pid\":" << kPid
           << ",\"tid\":" << exemplar_tracks_[from->second] << "}";
        sep();
        os << "{\"name\":\"coalesced_from\",\"cat\":\"critpath\",\"ph\":\"t\",\"id\":" << link_id
           << ",\"ts\":" << TsUs(when) << ",\"pid\":" << kPid
           << ",\"tid\":" << exemplar_tracks_[slot] << "}";
        ++link_id;
      }
    }
  }

  // Time series as counter ("C") tracks.
  for (const auto& series : sampler_.series()) {
    for (const auto& [t, v] : series->points()) {
      sep();
      os << "{\"name\":";
      JsonEscape(series->name(), os);
      os << ",\"ph\":\"C\",\"ts\":" << TsUs(t) << ",\"pid\":" << kPid
         << ",\"args\":{\"value\":" << JsonNumber(v) << "}}";
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool Tracer::WriteAll(const std::string& prefix) const {
  struct Out {
    const char* suffix;
    void (Tracer::*write)(std::ostream&) const;
  };
  const Out outs[] = {
      {".metrics.jsonl", &Tracer::WriteMetricsJsonl},
      {".flow_events.jsonl", &Tracer::WriteFlowEventsJsonl},
      {".timeseries.jsonl", &Tracer::WriteTimeSeriesJsonl},
      {".perfetto.json", &Tracer::WritePerfettoJson},
  };
  for (const Out& out : outs) {
    std::ofstream os(prefix + out.suffix);
    if (!os) {
      return false;
    }
    (this->*out.write)(os);
  }
  if (config_.latency_stages) {
    std::ofstream os(prefix + ".latency.json");
    if (!os) {
      return false;
    }
    os << latency_.Report().ToJson() << "\n";
  }
  if (config_.causal) {
    std::ofstream os(prefix + ".critical_path.json");
    if (!os) {
      return false;
    }
    os << causal_.Report().ToJson() << "\n";
  }
  // A wrapped ring means the files above silently miss the oldest records —
  // say so once per export instead of letting a reader chase ghosts.
  const uint64_t lost_records =
      flow_events_.overwritten() + latency_.overwritten() + causal_.dropped();
  if (spans_.dropped() > 0 || lost_records > 0) {
    TAS_LOG_WARN << "trace export truncated: " << spans_.dropped() << " spans dropped, "
                 << lost_records
                 << " records overwritten (raise the trace ring capacities to keep them)";
  }
  return true;
}

void RegisterSimulatorMetrics(MetricRegistry* registry, const Simulator* sim,
                              const std::string& prefix) {
  registry->AddCounterFn(prefix + ".events_executed", [sim] { return sim->events_executed(); });
  registry->AddGauge(prefix + ".pending_events",
                     [sim] { return static_cast<double>(sim->pending_events()); });
  registry->AddGauge(prefix + ".max_pending_events",
                     [sim] { return static_cast<double>(sim->max_pending_events()); });
  // Allocator-pressure view (DESIGN.md §8): cancellation traffic and event
  // slab occupancy, so Perfetto traces show hot-path memory discipline.
  registry->AddCounterFn(prefix + ".cancelled_events",
                         [sim] { return sim->cancelled_events(); });
  registry->AddCounterFn(prefix + ".cancelled_popped",
                         [sim] { return sim->cancelled_popped(); });
  registry->AddGauge(prefix + ".event_nodes_total",
                     [sim] { return static_cast<double>(sim->event_nodes_total()); });
  registry->AddGauge(prefix + ".event_nodes_free",
                     [sim] { return static_cast<double>(sim->event_nodes_free()); });
}

}  // namespace tas
