#include "src/trace/tracer.h"

#include <cstdio>
#include <fstream>

namespace tas {
namespace {

// Chrome trace-event timestamps are microseconds; keep nanosecond precision
// with three decimals. Fixed-format so output is byte-stable across runs.
std::string TsUs(TimeNs t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  return buf;
}

constexpr int kPid = 1;
// Flow tracks sit far above any simulated core id.
constexpr uint64_t kFlowTrackBase = 1u << 20;

}  // namespace

Tracer::Tracer(Simulator* sim, const TraceConfig& config)
    : config_(config),
      flow_events_(config.flow_event_capacity),
      sampler_(sim),
      spans_(config.span_capacity),
      latency_(config.latency_ring_capacity) {
  flow_events_.SetGlobal(config.flow_events);
  spans_.SetEnabled(config.cpu_spans);
}

void Tracer::WritePerfettoJson(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };

  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kPid
     << ",\"args\":{\"name\":\"tas\"}}";

  for (const auto& [track, name] : spans_.track_names()) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid << ",\"tid\":" << track
       << ",\"args\":{\"name\":";
    JsonEscape(name, os);
    os << "}}";
  }

  // CPU busy spans as complete ("X") events.
  for (const TraceSpan& span : spans_.spans()) {
    sep();
    os << "{\"name\":\"" << span.name << "\",\"cat\":\"cpu\",\"ph\":\"X\",\"ts\":"
       << TsUs(span.start) << ",\"dur\":" << TsUs(span.end - span.start)
       << ",\"pid\":" << kPid << ",\"tid\":" << span.track << "}";
  }

  // Flow events as instant ("i") events, one synthetic track per flow.
  std::vector<uint64_t> named_flows;
  for (const FlowEvent& e : flow_events_.Events()) {
    const uint64_t track = kFlowTrackBase + e.flow;
    bool seen = false;
    for (uint64_t f : named_flows) {
      if (f == e.flow) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      named_flows.push_back(e.flow);
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid << ",\"tid\":" << track
         << ",\"args\":{\"name\":\"flow-" << e.flow << "\"}}";
    }
    sep();
    os << "{\"name\":\"" << FlowEventTypeName(e.type)
       << "\",\"cat\":\"flow\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << TsUs(e.t)
       << ",\"pid\":" << kPid << ",\"tid\":" << track << ",\"args\":{\"flow\":" << e.flow;
    const char* an;
    const char* bn;
    const char* cn;
    FlowEventArgNames(e.type, &an, &bn, &cn);
    if (an[0] != '\0') {
      os << ",\"" << an << "\":" << e.a;
    }
    if (bn[0] != '\0') {
      os << ",\"" << bn << "\":" << e.b;
    }
    if (cn[0] != '\0') {
      os << ",\"" << cn << "\":" << e.c;
    }
    os << "}}";
  }

  // Time series as counter ("C") tracks.
  for (const auto& series : sampler_.series()) {
    for (const auto& [t, v] : series->points()) {
      sep();
      os << "{\"name\":";
      JsonEscape(series->name(), os);
      os << ",\"ph\":\"C\",\"ts\":" << TsUs(t) << ",\"pid\":" << kPid
         << ",\"args\":{\"value\":" << JsonNumber(v) << "}}";
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool Tracer::WriteAll(const std::string& prefix) const {
  struct Out {
    const char* suffix;
    void (Tracer::*write)(std::ostream&) const;
  };
  const Out outs[] = {
      {".metrics.jsonl", &Tracer::WriteMetricsJsonl},
      {".flow_events.jsonl", &Tracer::WriteFlowEventsJsonl},
      {".timeseries.jsonl", &Tracer::WriteTimeSeriesJsonl},
      {".perfetto.json", &Tracer::WritePerfettoJson},
  };
  for (const Out& out : outs) {
    std::ofstream os(prefix + out.suffix);
    if (!os) {
      return false;
    }
    (this->*out.write)(os);
  }
  if (config_.latency_stages) {
    std::ofstream os(prefix + ".latency.json");
    if (!os) {
      return false;
    }
    os << latency_.Report().ToJson() << "\n";
  }
  return true;
}

void RegisterSimulatorMetrics(MetricRegistry* registry, const Simulator* sim,
                              const std::string& prefix) {
  registry->AddCounterFn(prefix + ".events_executed", [sim] { return sim->events_executed(); });
  registry->AddGauge(prefix + ".pending_events",
                     [sim] { return static_cast<double>(sim->pending_events()); });
  registry->AddGauge(prefix + ".max_pending_events",
                     [sim] { return static_cast<double>(sim->max_pending_events()); });
  // Allocator-pressure view (DESIGN.md §8): cancellation traffic and event
  // slab occupancy, so Perfetto traces show hot-path memory discipline.
  registry->AddCounterFn(prefix + ".cancelled_events",
                         [sim] { return sim->cancelled_events(); });
  registry->AddCounterFn(prefix + ".cancelled_popped",
                         [sim] { return sim->cancelled_popped(); });
  registry->AddGauge(prefix + ".event_nodes_total",
                     [sim] { return static_cast<double>(sim->event_nodes_total()); });
  registry->AddGauge(prefix + ".event_nodes_free",
                     [sim] { return static_cast<double>(sim->event_nodes_free()); });
}

}  // namespace tas
