// Downsampled time series and the periodic sampler that fills them.
//
// A TimeSeries holds (time, value) points with a hard point cap: when the
// cap is hit the series decimates itself (drops every second point and
// doubles its accept stride), so arbitrarily long runs produce bounded,
// plot-ready output while keeping full resolution for short runs. The
// decimation is purely deterministic.
//
// A TimeSeriesSampler owns named series. Series fill two ways:
//  * probes — callbacks swept by a PeriodicTask every sample period
//    (per-core utilization, buffer occupancy, queue depth);
//  * event-driven appends — the owner pushes points when the value changes
//    (active fast-path core count, Fig 14).
#ifndef SRC_TRACE_TIMESERIES_H_
#define SRC_TRACE_TIMESERIES_H_

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace tas {

class TimeSeries {
 public:
  explicit TimeSeries(std::string name, size_t max_points = 4096);

  const std::string& name() const { return name_; }
  void Append(TimeNs t, double v);
  const std::vector<std::pair<TimeNs, double>>& points() const { return points_; }
  size_t max_points() const { return max_points_; }
  // Total Append calls, including ones decimation skipped or removed.
  uint64_t appended() const { return appended_; }

 private:
  std::string name_;
  size_t max_points_;
  uint64_t stride_ = 1;  // Accept every stride_-th append once decimated.
  uint64_t appended_ = 0;
  std::vector<std::pair<TimeNs, double>> points_;
};

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(Simulator* sim) : sim_(sim) {}

  // Find-or-create a series for event-driven appends.
  TimeSeries& Series(const std::string& name, size_t max_points = 4096);
  TimeSeries* Find(const std::string& name);
  const TimeSeries* Find(const std::string& name) const;

  // Registers a probe sampled into `name` on every sweep.
  void AddProbe(const std::string& name, std::function<double()> fn,
                size_t max_points = 4096);
  // Registers a callback invoked once per sweep, for owners that append to a
  // dynamic set of series (e.g. one series per live flow).
  void AddSweepHook(std::function<void(TimeNs)> hook);

  // Starts periodic sweeps; idempotent restart with a new period is allowed.
  void Start(TimeNs period);
  void Stop();
  bool running() const { return task_ != nullptr && task_->running(); }
  // Runs one sweep immediately (also what the periodic task calls).
  void SampleNow();

  const std::vector<std::unique_ptr<TimeSeries>>& series() const { return series_; }
  uint64_t sweeps() const { return sweeps_; }

  // One JSON object per line:
  //   {"name":"tas.core.0.util","points":[[1000,0.5],[2000,0.75]]}
  void WriteJsonl(std::ostream& os) const;

 private:
  struct Probe {
    TimeSeries* series;
    std::function<double()> fn;
  };

  Simulator* sim_;
  std::vector<std::unique_ptr<TimeSeries>> series_;
  std::unordered_map<std::string, TimeSeries*> by_name_;
  std::vector<Probe> probes_;
  std::vector<std::function<void(TimeNs)>> hooks_;
  std::unique_ptr<PeriodicTask> task_;
  uint64_t sweeps_ = 0;
};

}  // namespace tas

#endif  // SRC_TRACE_TIMESERIES_H_
