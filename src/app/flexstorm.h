// FlexStorm: the real-time analytics pipeline of paper §5.4.
//
// Each node runs a demultiplexer thread that fans incoming tuples out to
// worker threads, and a multiplexer thread that batches outgoing tuples
// before emission (up to 10 ms in the Linux/mTCP configurations — the source
// of the paper's multi-millisecond output queueing; TAS needs no batching).
// Tuples hop node -> node -> node over TCP; after `hops_per_tuple` hops the
// tuple completes and its end-to-end latency is recorded. Per-stage times
// (input queueing, processing, output queueing) reproduce Table 8.
#ifndef SRC_APP_FLEXSTORM_H_
#define SRC_APP_FLEXSTORM_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/cpu/core.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace tas {

struct FlexStormConfig {
  size_t tuple_bytes = 128;
  uint64_t demux_cycles = 150;
  uint64_t worker_cycles = 760;  // ~0.36 us at 2.1 GHz (Table 8 Processing).
  uint64_t mux_cycles = 200;
  size_t num_workers = 2;
  // Output batching: flush when this many tuples accumulated or the timeout
  // expires. timeout=0 disables batching (the TAS configuration).
  size_t mux_batch_tuples = 10000;
  TimeNs mux_batch_timeout = Ms(10);
  // Bound on tuples queued toward the multiplexer (drop-on-overflow keeps
  // the pipeline in steady state under overload).
  size_t mux_queue_limit = 20000;
  // Spout: offered load generated at this node (tuples/sec); 0 = no spout.
  double spout_rate_tps = 0;
  int hops_per_tuple = 3;
  uint16_t port = 8800;
  uint64_t rng_seed = 7;
};

class FlexStormNode : public AppHandler {
 public:
  // `cores`: [0] demux, [1..num_workers] workers, [last] mux. The same cores
  // must back the Stack's app-core set so charges serialize consistently.
  FlexStormNode(Simulator* sim, Stack* stack, std::vector<Core*> cores,
                const FlexStormConfig& config);

  // `next_ip` is the downstream node (0 = this node is never a forwarder).
  void Start(IpAddr next_ip);

  uint64_t completed() const { return completed_; }
  uint64_t spout_drops() const { return spout_drops_; }
  uint64_t overflow_drops() const { return overflow_drops_; }
  double Throughput() const;
  void BeginMeasurement();

  const RunningStats& input_wait_us() const { return input_wait_us_; }
  const RunningStats& processing_us() const { return processing_us_; }
  const RunningStats& output_wait_us() const { return output_wait_us_; }
  const LatencyRecorder& tuple_latency_us() const { return tuple_latency_us_; }

  // AppHandler:
  void OnConnected(ConnId conn, bool success) override;
  void OnAccepted(ConnId conn, uint16_t port) override;
  void OnData(ConnId conn, size_t bytes) override;
  void OnSendSpace(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnClosed(ConnId conn) override;

 private:
  struct Tuple {
    TimeNs created = 0;
    int hops = 0;
    TimeNs worker_done = 0;  // For output-wait accounting.
  };

  void SpoutTick();
  void HandleTuple(Tuple tuple, TimeNs arrival);
  void EnqueueMux(Tuple tuple);
  void FlushMux();
  void EmitTuple(const Tuple& tuple);
  void TrySendOut();
  void CompleteTuple(const Tuple& tuple);

  Simulator* sim_;
  Stack* stack_;
  FlexStormConfig config_;
  Core* demux_core_;
  std::vector<Core*> worker_cores_;
  Core* mux_core_;
  Rng rng_;

  ConnId out_conn_ = kInvalidConn;
  bool out_connected_ = false;
  std::unordered_map<ConnId, std::vector<uint8_t>> rx_bufs_;
  std::deque<Tuple> mux_queue_;
  std::deque<std::vector<uint8_t>> out_queue_;  // Serialized, awaiting TX space.
  EventHandle mux_timer_;
  size_t next_worker_ = 0;

  uint64_t completed_ = 0;
  uint64_t spout_drops_ = 0;
  uint64_t overflow_drops_ = 0;
  bool measuring_ = false;
  TimeNs measure_start_ = 0;
  uint64_t completed_at_start_ = 0;
  RunningStats input_wait_us_;
  RunningStats processing_us_;
  RunningStats output_wait_us_;
  LatencyRecorder tuple_latency_us_;
};

}  // namespace tas

#endif  // SRC_APP_FLEXSTORM_H_
