// RPC echo benchmark applications (paper §5.1).
//
// EchoServer answers fixed-size RPCs after an optional simulated app-compute
// delay; it can also run one-directional for the pipelined RX/TX experiment
// (Fig 6: server only receives, or only transmits). EchoClient drives it
// closed-loop with a configurable pipeline depth per connection, optional
// short-lived-connection mode (reconnect after N messages, Fig 5), and
// records per-RPC latency.
#ifndef SRC_APP_RPC_ECHO_H_
#define SRC_APP_RPC_ECHO_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"

namespace tas {

struct EchoServerConfig {
  uint16_t port = 7777;
  size_t request_bytes = 64;
  size_t response_bytes = 64;
  uint64_t app_cycles = 680;  // Per-request compute (Table 1 App row basis).
  // Fig 6 modes: kEcho answers each request; kRxOnly consumes without
  // replying; kTxOnly streams responses continuously without requests.
  enum class Mode { kEcho, kRxOnly, kTxOnly } mode = Mode::kEcho;
};

class EchoServer : public AppHandler {
 public:
  EchoServer(Simulator* sim, Stack* stack, const EchoServerConfig& config);

  void Start();

  uint64_t requests_served() const { return requests_served_; }

  // AppHandler:
  void OnAccepted(ConnId conn, uint16_t port) override;
  void OnData(ConnId conn, size_t bytes) override;
  void OnSendSpace(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnClosed(ConnId conn) override;

 private:
  void PumpTx(ConnId conn);

  Simulator* sim_;
  Stack* stack_;
  EchoServerConfig config_;
  uint64_t requests_served_ = 0;
  std::unordered_map<ConnId, size_t> pending_bytes_;
  std::vector<uint8_t> scratch_;
};

struct EchoClientConfig {
  IpAddr server_ip = 0;
  uint16_t server_port = 7777;
  size_t num_connections = 1;
  size_t request_bytes = 64;
  size_t response_bytes = 64;
  size_t pipeline_depth = 1;  // Requests in flight per connection.
  uint64_t app_cycles = 0;    // Client-side compute per response.
  // Short-lived connections (Fig 5): close and reconnect after this many
  // request/response exchanges. 0 = connections live forever.
  size_t messages_per_connection = 0;
  // Fig 6 one-directional modes must match the server's.
  EchoServerConfig::Mode mode = EchoServerConfig::Mode::kEcho;
  // Ramp connection establishment to avoid a SYN storm at t=0.
  TimeNs connect_spread = Ms(1);
  // Absolute sim time before which connections stay quiet after opening
  // (lets large experiments pre-establish connections without simulating
  // hours of warmup traffic). 0 = send immediately on connect.
  TimeNs first_request_at = 0;
};

class EchoClient : public AppHandler {
 public:
  EchoClient(Simulator* sim, Stack* stack, const EchoClientConfig& config);

  void Start();
  // Starts/zeroes measurement counters (call after warmup).
  void BeginMeasurement();

  uint64_t completed() const { return completed_; }
  double Throughput() const;  // Operations/sec since BeginMeasurement.
  const LatencyRecorder& latency() const { return latency_; }
  uint64_t reconnects() const { return reconnects_; }

  // AppHandler:
  void OnConnected(ConnId conn, bool success) override;
  void OnData(ConnId conn, size_t bytes) override;
  void OnSendSpace(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnClosed(ConnId conn) override;

 private:
  struct ConnState {
    size_t received = 0;             // Bytes toward the current response.
    size_t messages_done = 0;
    std::deque<TimeNs> send_times;   // Outstanding request timestamps.
  };

  void OpenConnection();
  void SendRequest(ConnId conn);
  void Reconnect(ConnId conn);

  Simulator* sim_;
  Stack* stack_;
  EchoClientConfig config_;
  std::unordered_map<ConnId, ConnState> conns_;
  std::vector<uint8_t> request_;
  uint64_t completed_ = 0;
  uint64_t reconnects_ = 0;
  bool measuring_ = false;
  TimeNs measure_start_ = 0;
  uint64_t completed_at_measure_start_ = 0;
  LatencyRecorder latency_;
};

}  // namespace tas

#endif  // SRC_APP_RPC_ECHO_H_
