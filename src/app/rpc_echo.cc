#include "src/app/rpc_echo.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tas {

EchoServer::EchoServer(Simulator* sim, Stack* stack, const EchoServerConfig& config)
    : sim_(sim), stack_(stack), config_(config),
      scratch_(std::max(config.request_bytes, config.response_bytes)) {}

void EchoServer::Start() {
  stack_->SetHandler(this);
  stack_->Listen(config_.port);
}

void EchoServer::OnAccepted(ConnId conn, uint16_t port) {
  (void)port;
  pending_bytes_[conn] = 0;
  if (config_.mode == EchoServerConfig::Mode::kTxOnly) {
    PumpTx(conn);
  }
}

void EchoServer::OnData(ConnId conn, size_t bytes) {
  auto it = pending_bytes_.find(conn);
  if (it == pending_bytes_.end()) {
    return;
  }
  it->second += bytes;
  while (it->second >= config_.request_bytes) {
    it->second -= config_.request_bytes;
    const size_t got = stack_->Recv(conn, scratch_.data(), config_.request_bytes);
    TAS_CHECK(got == config_.request_bytes);
    ++requests_served_;
    if (config_.app_cycles > 0) {
      stack_->ChargeApp(conn, config_.app_cycles);
    }
    if (config_.mode == EchoServerConfig::Mode::kEcho) {
      stack_->Send(conn, scratch_.data(), config_.response_bytes);
    }
  }
}

void EchoServer::OnSendSpace(ConnId conn, size_t bytes) {
  (void)bytes;
  if (config_.mode == EchoServerConfig::Mode::kTxOnly) {
    PumpTx(conn);
  }
}

void EchoServer::PumpTx(ConnId conn) {
  // Stream responses continuously, one app-compute charge per message.
  while (stack_->SendSpace(conn) >= config_.response_bytes) {
    if (config_.app_cycles > 0) {
      stack_->ChargeApp(conn, config_.app_cycles);
    }
    const size_t sent = stack_->Send(conn, scratch_.data(), config_.response_bytes);
    if (sent < config_.response_bytes) {
      break;
    }
    ++requests_served_;
  }
}

void EchoServer::OnRemoteClosed(ConnId conn) {
  stack_->Close(conn);
}

void EchoServer::OnClosed(ConnId conn) { pending_bytes_.erase(conn); }

EchoClient::EchoClient(Simulator* sim, Stack* stack, const EchoClientConfig& config)
    : sim_(sim), stack_(stack), config_(config), request_(config.request_bytes, 0xAB) {}

void EchoClient::Start() {
  stack_->SetHandler(this);
  for (size_t i = 0; i < config_.num_connections; ++i) {
    const TimeNs jitter =
        config_.connect_spread > 0
            ? static_cast<TimeNs>(i) * config_.connect_spread /
                  static_cast<TimeNs>(config_.num_connections)
            : 0;
    sim_->After(jitter, [this] { OpenConnection(); });
  }
}

void EchoClient::OpenConnection() {
  const ConnId conn = stack_->Connect(config_.server_ip, config_.server_port);
  conns_[conn] = ConnState{};
}

void EchoClient::BeginMeasurement() {
  measuring_ = true;
  measure_start_ = sim_->Now();
  completed_at_measure_start_ = completed_;
  latency_.Clear();
}

double EchoClient::Throughput() const {
  const TimeNs elapsed = sim_->Now() - measure_start_;
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(completed_ - completed_at_measure_start_) / ToSec(elapsed);
}

void EchoClient::OnConnected(ConnId conn, bool success) {
  if (!success) {
    conns_.erase(conn);
    // Retry (transient handshake failure under load).
    sim_->After(Ms(1), [this] { OpenConnection(); });
    return;
  }
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  if (sim_->Now() < config_.first_request_at) {
    sim_->At(config_.first_request_at, [this, conn] { OnConnected(conn, true); });
    return;
  }
  if (config_.mode == EchoServerConfig::Mode::kTxOnly) {
    return;  // Server streams; we only consume.
  }
  if (config_.mode == EchoServerConfig::Mode::kRxOnly) {
    // Server never replies: keep the pipe full from send-space feedback.
    while (stack_->SendSpace(conn) >= config_.request_bytes) {
      if (stack_->Send(conn, request_.data(), request_.size()) < request_.size()) {
        break;
      }
      ++completed_;
    }
    return;
  }
  for (size_t i = 0; i < config_.pipeline_depth; ++i) {
    SendRequest(conn);
  }
}

void EchoClient::SendRequest(ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  it->second.send_times.push_back(sim_->Now());
  stack_->Send(conn, request_.data(), request_.size());
}

void EchoClient::OnData(ConnId conn, size_t bytes) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  ConnState& state = it->second;
  state.received += bytes;
  const size_t message = config_.response_bytes;
  while (state.received >= message) {
    state.received -= message;
    std::vector<uint8_t> buf(message);
    stack_->Recv(conn, buf.data(), message);
    ++completed_;
    ++state.messages_done;
    if (config_.app_cycles > 0) {
      stack_->ChargeApp(conn, config_.app_cycles);
    }
    if (!state.send_times.empty()) {
      const TimeNs sent_at = state.send_times.front();
      state.send_times.pop_front();
      if (measuring_) {
        latency_.Add(ToUs(sim_->Now() - sent_at));
      }
    }
    if (config_.mode == EchoServerConfig::Mode::kTxOnly) {
      continue;  // Pure consumption.
    }
    if (config_.messages_per_connection > 0 &&
        state.messages_done >= config_.messages_per_connection) {
      Reconnect(conn);
      return;
    }
    SendRequest(conn);
  }
}

void EchoClient::OnSendSpace(ConnId conn, size_t bytes) {
  (void)bytes;
  if (config_.mode != EchoServerConfig::Mode::kRxOnly) {
    return;
  }
  while (stack_->SendSpace(conn) >= config_.request_bytes) {
    if (stack_->Send(conn, request_.data(), request_.size()) < request_.size()) {
      break;
    }
    ++completed_;
  }
}

void EchoClient::Reconnect(ConnId conn) {
  conns_.erase(conn);
  stack_->Close(conn);
  ++reconnects_;
  OpenConnection();
}

void EchoClient::OnRemoteClosed(ConnId conn) {
  conns_.erase(conn);
  stack_->Close(conn);
}

void EchoClient::OnClosed(ConnId conn) { conns_.erase(conn); }

}  // namespace tas
