// Bulk transfer applications: N flows pushing data as fast as flow/congestion
// control allows. Used by the Table 4 interoperability matrix, the Fig 7
// packet-loss experiment, and the Fig 13 incast fairness experiment (which
// needs the receiver's per-connection byte counts over 100 ms windows).
#ifndef SRC_APP_BULK_H_
#define SRC_APP_BULK_H_

#include <unordered_map>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace tas {

struct BulkSenderConfig {
  IpAddr server_ip = 0;
  uint16_t server_port = 9000;
  size_t num_flows = 100;
  size_t chunk_bytes = 16 * 1024;  // Per Send() call.
  TimeNs connect_spread = Ms(1);
};

class BulkSender : public AppHandler {
 public:
  BulkSender(Simulator* sim, Stack* stack, const BulkSenderConfig& config);

  void Start();
  uint64_t bytes_sent() const { return bytes_sent_; }
  size_t connected() const { return connected_; }

  // AppHandler:
  void OnConnected(ConnId conn, bool success) override;
  void OnSendSpace(ConnId conn, size_t bytes) override;

 private:
  void Pump(ConnId conn);

  Simulator* sim_;
  Stack* stack_;
  BulkSenderConfig config_;
  std::vector<uint8_t> chunk_;
  uint64_t bytes_sent_ = 0;
  size_t connected_ = 0;
};

struct BulkReceiverConfig {
  uint16_t port = 9000;
  // Record per-connection byte counts every interval (0 = disabled). Used by
  // the incast fairness experiment (Fig 13).
  TimeNs sample_interval = 0;
};

class BulkReceiver : public AppHandler {
 public:
  BulkReceiver(Simulator* sim, Stack* stack, const BulkReceiverConfig& config);

  void Start();
  void BeginMeasurement();
  uint64_t bytes_received() const { return bytes_received_; }
  double ThroughputBps() const;
  // All (connection, bytes-in-window) samples collected since measurement
  // began, across connections and windows.
  const std::vector<uint64_t>& window_samples() const { return window_samples_; }

  // AppHandler:
  void OnAccepted(ConnId conn, uint16_t port) override;
  void OnData(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnClosed(ConnId conn) override;

 private:
  void SampleWindows();

  Simulator* sim_;
  Stack* stack_;
  BulkReceiverConfig config_;
  std::unordered_map<ConnId, uint64_t> window_bytes_;
  std::vector<uint64_t> window_samples_;
  std::vector<uint8_t> scratch_;
  uint64_t bytes_received_ = 0;
  bool measuring_ = false;
  TimeNs measure_start_ = 0;
  uint64_t bytes_at_start_ = 0;
};

}  // namespace tas

#endif  // SRC_APP_BULK_H_
