#include "src/app/kv_store.h"

#include <algorithm>
#include <cstring>

#include "src/util/logging.h"

namespace tas {
namespace {

void Put32At(std::vector<uint8_t>& buf, size_t at, uint32_t v) {
  std::memcpy(buf.data() + at, &v, 4);
}

uint32_t Get32At(const uint8_t* buf) {
  uint32_t v;
  std::memcpy(&v, buf, 4);
  return v;
}

void Put16At(std::vector<uint8_t>& buf, size_t at, uint16_t v) {
  std::memcpy(buf.data() + at, &v, 2);
}

uint16_t Get16At(const uint8_t* buf) {
  uint16_t v;
  std::memcpy(&v, buf, 2);
  return v;
}

constexpr uint8_t kOpGet = 1;
constexpr uint8_t kOpSet = 2;

}  // namespace

KvServer::KvServer(Simulator* sim, Stack* stack, const KvServerConfig& config)
    : sim_(sim), stack_(stack), config_(config) {
  const size_t n = config_.contended ? 1 : config_.num_keys;
  values_.assign(n, std::string(config_.value_bytes, 'v'));
  if (config_.contended) {
    TAS_CHECK(config_.lock_core != nullptr);
  }
}

void KvServer::Start() {
  stack_->SetHandler(this);
  stack_->Listen(config_.port);
}

void KvServer::OnAccepted(ConnId conn, uint16_t port) {
  (void)port;
  conns_[conn];
}

void KvServer::OnData(ConnId conn, size_t bytes) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  ConnBuf& state = it->second;
  const size_t old = state.buf.size();
  state.buf.resize(old + bytes);
  const size_t got = stack_->Recv(conn, state.buf.data() + old, bytes);
  state.buf.resize(old + got);
  ProcessRequests(conn, state);
}

void KvServer::ProcessRequests(ConnId conn, ConnBuf& state) {
  size_t offset = 0;
  while (state.buf.size() - offset >= kKvRequestHeader + config_.key_bytes) {
    const uint8_t* req = state.buf.data() + offset;
    const uint8_t op = req[0];
    const uint32_t key_id = Get32At(req + 4);
    const uint16_t value_len = Get16At(req + 8);
    const size_t req_bytes =
        kKvRequestHeader + config_.key_bytes + (op == kOpSet ? value_len : 0);
    if (state.buf.size() - offset < req_bytes) {
      break;  // Wait for the rest of this request.
    }

    stack_->ChargeApp(conn, config_.app_cycles_per_op);
    const size_t index = config_.contended ? 0 : key_id % values_.size();
    if (config_.contended) {
      // Updates (and contended reads) serialize on a single lock. The lock
      // is modeled as work on one shared core; the requesting thread spins
      // for the wait + hold time, so lock throughput caps the server.
      const TimeNs now = sim_->Now();
      const TimeNs unlocked = config_.lock_core->Charge(CpuModule::kApp,
                                                        config_.lock_hold_cycles);
      if (unlocked > now) {
        stack_->ChargeApp(conn, NsToCycles(unlocked - now, 2.1));
      }
    }

    std::vector<uint8_t> resp;
    if (op == kOpGet) {
      ++gets_;
      const std::string& value = values_[index];
      resp.resize(kKvResponseHeader + value.size());
      resp[0] = 0;  // Status OK.
      Put16At(resp, 2, static_cast<uint16_t>(value.size()));
      std::memcpy(resp.data() + kKvResponseHeader, value.data(), value.size());
    } else {
      ++sets_;
      values_[index].assign(reinterpret_cast<const char*>(req + req_bytes - value_len),
                            value_len);
      resp.resize(kKvResponseHeader);
      resp[0] = 0;
      Put16At(resp, 2, 0);
    }
    stack_->Send(conn, resp.data(), resp.size());
    offset += req_bytes;
  }
  if (offset > 0) {
    state.buf.erase(state.buf.begin(), state.buf.begin() + static_cast<long>(offset));
  }
}

void KvServer::OnRemoteClosed(ConnId conn) { stack_->Close(conn); }

void KvServer::OnClosed(ConnId conn) { conns_.erase(conn); }

KvClient::KvClient(Simulator* sim, Stack* stack, const KvClientConfig& config)
    : sim_(sim),
      stack_(stack),
      config_(config),
      rng_(config.rng_seed),
      zipf_(config.num_keys, config.zipf_skew) {}

KvClient::~KvClient() { tick_.Cancel(); }

void KvClient::Start() {
  stack_->SetHandler(this);
  for (size_t i = 0; i < config_.num_connections; ++i) {
    const TimeNs jitter = config_.connect_spread > 0
                              ? static_cast<TimeNs>(i) * config_.connect_spread /
                                    static_cast<TimeNs>(config_.num_connections)
                              : 0;
    sim_->After(jitter, [this] {
      const ConnId conn = stack_->Connect(config_.server_ip, config_.server_port);
      conns_[conn] = ConnState{};
    });
  }
  if (config_.target_ops_per_sec > 0) {
    OpenLoopTick();
  }
}

void KvClient::BeginMeasurement() {
  measuring_ = true;
  measure_start_ = sim_->Now();
  completed_at_start_ = completed_;
  latency_.Clear();
}

double KvClient::Throughput() const {
  const TimeNs elapsed = sim_->Now() - measure_start_;
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(completed_ - completed_at_start_) / ToSec(elapsed);
}

size_t KvClient::RequestBytes(bool is_set) const {
  return kKvRequestHeader + config_.key_bytes + (is_set ? config_.value_bytes : 0);
}

void KvClient::OnConnected(ConnId conn, bool success) {
  if (!success) {
    conns_.erase(conn);
    return;
  }
  if (config_.target_ops_per_sec > 0) {
    ready_conns_.push_back(conn);
    return;
  }
  if (sim_->Now() < config_.first_request_at) {
    sim_->At(config_.first_request_at, [this, conn] {
      if (conns_.count(conn) != 0) {
        SendRequest(conn);
      }
    });
    return;
  }
  SendRequest(conn);  // Closed loop: one request in flight per connection.
}

void KvClient::SendRequest(ConnId conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.in_flight) {
    return;
  }
  const bool is_set = !rng_.NextBool(config_.get_fraction);
  const uint32_t key_id = static_cast<uint32_t>(zipf_.Sample(rng_));

  std::vector<uint8_t> req(RequestBytes(is_set), 0);
  req[0] = is_set ? 2 : 1;
  Put32At(req, 4, key_id);
  Put16At(req, 8, is_set ? static_cast<uint16_t>(config_.value_bytes) : 0);

  if (config_.app_cycles_per_op > 0) {
    stack_->ChargeApp(conn, config_.app_cycles_per_op);
  }
  ConnState& state = it->second;
  state.in_flight = true;
  state.sent_at = sim_->Now();
  state.expected =
      kKvResponseHeader + (is_set ? 0 : config_.value_bytes);
  state.received = 0;
  stack_->Send(conn, req.data(), req.size());
}

void KvClient::OpenLoopTick() {
  // Poisson arrivals at the target rate; each arrival uses an idle conn.
  const double mean_gap_ns = 1e9 / config_.target_ops_per_sec;
  tick_ = sim_->After(static_cast<TimeNs>(rng_.NextExp(mean_gap_ns)), [this] {
    if (!ready_conns_.empty()) {
      const size_t pick = rng_.NextUint64(ready_conns_.size());
      const ConnId conn = ready_conns_[pick];
      ready_conns_[pick] = ready_conns_.back();
      ready_conns_.pop_back();
      SendRequest(conn);
    }
    OpenLoopTick();
  });
}

void KvClient::OnData(ConnId conn, size_t bytes) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  ConnState& state = it->second;
  state.received += bytes;
  if (!state.in_flight || state.received < state.expected) {
    return;
  }
  std::vector<uint8_t> buf(state.expected);
  stack_->Recv(conn, buf.data(), state.expected);
  state.received -= state.expected;
  state.in_flight = false;
  ++completed_;
  if (measuring_) {
    latency_.Add(ToUs(sim_->Now() - state.sent_at));
  }
  if (config_.app_cycles_per_op > 0) {
    stack_->ChargeApp(conn, config_.app_cycles_per_op);
  }
  if (config_.target_ops_per_sec > 0) {
    ready_conns_.push_back(conn);
  } else {
    SendRequest(conn);
  }
}

void KvClient::OnRemoteClosed(ConnId conn) {
  conns_.erase(conn);
  stack_->Close(conn);
}

void KvClient::OnClosed(ConnId conn) { conns_.erase(conn); }

}  // namespace tas
