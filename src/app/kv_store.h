// In-memory key-value store and load generator, modeled after memcached and
// memslap (paper §5.3): fixed-format GET/SET requests over TCP, zipf key
// popularity, 90/10 GET/SET mix, and a deliberately non-scalable contended
// mode (single key behind a lock) for the Table 7 experiment.
//
// Wire format (little-endian):
//   request:  [1B op][3B pad][4B key_id][2B value_len][2B pad][key padding]
//             [value bytes for SET]
//   response: [1B status][1B pad][2B value_len][4B pad][value bytes]
#ifndef SRC_APP_KV_STORE_H_
#define SRC_APP_KV_STORE_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/cpu/core.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"
#include "src/util/stats.h"

namespace tas {

inline constexpr size_t kKvRequestHeader = 12;
inline constexpr size_t kKvResponseHeader = 8;

struct KvServerConfig {
  uint16_t port = 11211;
  size_t num_keys = 100000;
  size_t key_bytes = 32;
  size_t value_bytes = 64;
  uint64_t app_cycles_per_op = 680;  // Hashing + lookup + response build.
  // Non-scalable mode (Table 7): every update serializes on a single lock.
  bool contended = false;
  Core* lock_core = nullptr;     // Required when contended.
  uint64_t lock_hold_cycles = 400;
};

class KvServer : public AppHandler {
 public:
  KvServer(Simulator* sim, Stack* stack, const KvServerConfig& config);

  void Start();
  uint64_t gets() const { return gets_; }
  uint64_t sets() const { return sets_; }

  // AppHandler:
  void OnAccepted(ConnId conn, uint16_t port) override;
  void OnData(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnClosed(ConnId conn) override;

 private:
  struct ConnBuf {
    std::vector<uint8_t> buf;  // Partially received request bytes.
  };

  void ProcessRequests(ConnId conn, ConnBuf& state);

  Simulator* sim_;
  Stack* stack_;
  KvServerConfig config_;
  std::vector<std::string> values_;
  std::unordered_map<ConnId, ConnBuf> conns_;
  uint64_t gets_ = 0;
  uint64_t sets_ = 0;
};

struct KvClientConfig {
  IpAddr server_ip = 0;
  uint16_t server_port = 11211;
  size_t num_connections = 64;
  size_t num_keys = 100000;
  size_t key_bytes = 32;
  size_t value_bytes = 64;
  double zipf_skew = 0.9;     // Paper: zipf, s = 0.9.
  double get_fraction = 0.9;  // Paper: 90% GET / 10% SET.
  // 0 = closed loop at max rate (one request in flight per connection);
  // >0 = open loop at this many total operations/sec (latency experiments).
  double target_ops_per_sec = 0;
  uint64_t app_cycles_per_op = 300;  // Client-side request build/parse.
  uint64_t rng_seed = 42;
  TimeNs connect_spread = Ms(1);
  // Hold traffic until this absolute sim time (0 = start immediately).
  TimeNs first_request_at = 0;
};

class KvClient : public AppHandler {
 public:
  KvClient(Simulator* sim, Stack* stack, const KvClientConfig& config);
  ~KvClient() override;

  void Start();
  void BeginMeasurement();

  uint64_t completed() const { return completed_; }
  double Throughput() const;
  const LatencyRecorder& latency() const { return latency_; }

  // AppHandler:
  void OnConnected(ConnId conn, bool success) override;
  void OnData(ConnId conn, size_t bytes) override;
  void OnRemoteClosed(ConnId conn) override;
  void OnClosed(ConnId conn) override;

 private:
  struct ConnState {
    size_t received = 0;
    size_t expected = 0;     // Response bytes for the in-flight request.
    bool in_flight = false;
    TimeNs sent_at = 0;
  };

  void SendRequest(ConnId conn);
  void OpenLoopTick();
  size_t RequestBytes(bool is_set) const;

  Simulator* sim_;
  Stack* stack_;
  KvClientConfig config_;
  Rng rng_;
  ZipfGenerator zipf_;
  std::unordered_map<ConnId, ConnState> conns_;
  std::vector<ConnId> ready_conns_;  // Idle connections (open-loop mode).
  uint64_t completed_ = 0;
  EventHandle tick_;  // Open-loop arrival timer (cancelled on destruction).
  bool measuring_ = false;
  TimeNs measure_start_ = 0;
  uint64_t completed_at_start_ = 0;
  LatencyRecorder latency_;
};

}  // namespace tas

#endif  // SRC_APP_KV_STORE_H_
