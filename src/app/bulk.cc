#include "src/app/bulk.h"

namespace tas {

BulkSender::BulkSender(Simulator* sim, Stack* stack, const BulkSenderConfig& config)
    : sim_(sim), stack_(stack), config_(config), chunk_(config.chunk_bytes, 0x55) {}

void BulkSender::Start() {
  stack_->SetHandler(this);
  for (size_t i = 0; i < config_.num_flows; ++i) {
    const TimeNs jitter = config_.connect_spread > 0
                              ? static_cast<TimeNs>(i) * config_.connect_spread /
                                    static_cast<TimeNs>(config_.num_flows)
                              : 0;
    sim_->After(jitter,
                [this] { stack_->Connect(config_.server_ip, config_.server_port); });
  }
}

void BulkSender::OnConnected(ConnId conn, bool success) {
  if (!success) {
    // Transient handshake failure (e.g. SYN storm): retry.
    sim_->After(Ms(10),
                [this] { stack_->Connect(config_.server_ip, config_.server_port); });
    return;
  }
  ++connected_;
  Pump(conn);
}

void BulkSender::OnSendSpace(ConnId conn, size_t bytes) {
  (void)bytes;
  Pump(conn);
}

void BulkSender::Pump(ConnId conn) {
  // Byte-stream transfer: partial writes are fine, keep the buffer full.
  for (;;) {
    const size_t sent = stack_->Send(conn, chunk_.data(), chunk_.size());
    bytes_sent_ += sent;
    if (sent < chunk_.size()) {
      break;
    }
  }
}

BulkReceiver::BulkReceiver(Simulator* sim, Stack* stack, const BulkReceiverConfig& config)
    : sim_(sim), stack_(stack), config_(config), scratch_(64 * 1024) {}

void BulkReceiver::Start() {
  stack_->SetHandler(this);
  stack_->Listen(config_.port);
  if (config_.sample_interval > 0) {
    sim_->After(config_.sample_interval, [this] { SampleWindows(); });
  }
}

void BulkReceiver::BeginMeasurement() {
  measuring_ = true;
  measure_start_ = sim_->Now();
  bytes_at_start_ = bytes_received_;
  window_samples_.clear();
  for (auto& [conn, bytes] : window_bytes_) {
    bytes = 0;
  }
}

double BulkReceiver::ThroughputBps() const {
  const TimeNs elapsed = sim_->Now() - measure_start_;
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(bytes_received_ - bytes_at_start_) * 8.0 / ToSec(elapsed);
}

void BulkReceiver::OnAccepted(ConnId conn, uint16_t port) {
  (void)port;
  window_bytes_[conn] = 0;
}

void BulkReceiver::OnData(ConnId conn, size_t bytes) {
  size_t remaining = bytes;
  while (remaining > 0) {
    const size_t n = stack_->Recv(conn, scratch_.data(),
                                  std::min(remaining, scratch_.size()));
    if (n == 0) {
      break;
    }
    remaining -= n;
    bytes_received_ += n;
    window_bytes_[conn] += n;
  }
}

void BulkReceiver::SampleWindows() {
  if (measuring_) {
    for (auto& [conn, bytes] : window_bytes_) {
      window_samples_.push_back(bytes);
      bytes = 0;
    }
  } else {
    for (auto& [conn, bytes] : window_bytes_) {
      bytes = 0;
    }
  }
  sim_->After(config_.sample_interval, [this] { SampleWindows(); });
}

void BulkReceiver::OnRemoteClosed(ConnId conn) { stack_->Close(conn); }

void BulkReceiver::OnClosed(ConnId conn) { window_bytes_.erase(conn); }

}  // namespace tas
