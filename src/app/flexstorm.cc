#include "src/app/flexstorm.h"

#include <algorithm>
#include <cstring>

#include "src/util/logging.h"

namespace tas {

FlexStormNode::FlexStormNode(Simulator* sim, Stack* stack, std::vector<Core*> cores,
                             const FlexStormConfig& config)
    : sim_(sim), stack_(stack), config_(config), rng_(config.rng_seed) {
  TAS_CHECK(cores.size() >= config.num_workers + 2);
  demux_core_ = cores.front();
  for (size_t i = 0; i < config.num_workers; ++i) {
    worker_cores_.push_back(cores[1 + i]);
  }
  mux_core_ = cores[1 + config.num_workers];
}

void FlexStormNode::Start(IpAddr next_ip) {
  stack_->SetHandler(this);
  stack_->Listen(config_.port);
  if (next_ip != 0) {
    out_conn_ = stack_->Connect(next_ip, config_.port);
  }
  if (config_.spout_rate_tps > 0) {
    SpoutTick();
  }
}

void FlexStormNode::BeginMeasurement() {
  measuring_ = true;
  measure_start_ = sim_->Now();
  completed_at_start_ = completed_;
}

double FlexStormNode::Throughput() const {
  const TimeNs elapsed = sim_->Now() - measure_start_;
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(completed_ - completed_at_start_) / ToSec(elapsed);
}

void FlexStormNode::OnConnected(ConnId conn, bool success) {
  if (conn == out_conn_ && success) {
    out_connected_ = true;
  }
}

void FlexStormNode::OnAccepted(ConnId conn, uint16_t port) {
  (void)port;
  rx_bufs_[conn];
}

void FlexStormNode::SpoutTick() {
  const double mean_gap_ns = 1e9 / config_.spout_rate_tps;
  sim_->After(static_cast<TimeNs>(rng_.NextExp(mean_gap_ns)), [this] {
    Tuple tuple;
    tuple.created = sim_->Now();
    tuple.hops = 0;
    tuple.worker_done = sim_->Now();
    if (out_connected_ && out_queue_.size() < config_.mux_queue_limit / 2 &&
        mux_queue_.size() < config_.mux_queue_limit / 2) {
      EnqueueMux(tuple);
    } else {
      ++spout_drops_;  // Backpressure: the topology is saturated.
    }
    SpoutTick();
  });
}

void FlexStormNode::OnData(ConnId conn, size_t bytes) {
  auto it = rx_bufs_.find(conn);
  if (it == rx_bufs_.end()) {
    it = rx_bufs_.emplace(conn, std::vector<uint8_t>{}).first;
  }
  std::vector<uint8_t>& buf = it->second;
  const size_t old = buf.size();
  buf.resize(old + bytes);
  const size_t got = stack_->Recv(conn, buf.data() + old, bytes);
  buf.resize(old + got);

  const TimeNs arrival = sim_->Now();
  size_t offset = 0;
  while (buf.size() - offset >= config_.tuple_bytes) {
    Tuple tuple;
    std::memcpy(&tuple.created, buf.data() + offset, sizeof(tuple.created));
    std::memcpy(&tuple.hops, buf.data() + offset + 8, sizeof(tuple.hops));
    offset += config_.tuple_bytes;
    HandleTuple(tuple, arrival);
  }
  if (offset > 0) {
    buf.erase(buf.begin(), buf.begin() + static_cast<long>(offset));
  }
}

void FlexStormNode::HandleTuple(Tuple tuple, TimeNs arrival) {
  // Demultiplexer: route the tuple to a worker.
  const TimeNs demux_done = demux_core_->Charge(CpuModule::kApp, config_.demux_cycles);
  Core* worker = worker_cores_[next_worker_++ % worker_cores_.size()];
  sim_->At(demux_done, [this, tuple, arrival, worker]() mutable {
    const TimeNs start = std::max(sim_->Now(), worker->busy_until());
    const TimeNs done = worker->Charge(CpuModule::kApp, config_.worker_cycles);
    if (measuring_) {
      input_wait_us_.Add(ToUs(start - arrival));
      processing_us_.Add(ToUs(done - start));
    }
    tuple.worker_done = done;
    sim_->At(done, [this, tuple] {
      Tuple t = tuple;
      t.hops += 1;
      if (t.hops >= config_.hops_per_tuple) {
        CompleteTuple(t);
      } else {
        EnqueueMux(t);
      }
    });
  });
}

void FlexStormNode::EnqueueMux(Tuple tuple) {
  if (mux_queue_.size() >= config_.mux_queue_limit) {
    ++overflow_drops_;
    return;
  }
  mux_queue_.push_back(tuple);
  if (mux_queue_.size() >= config_.mux_batch_tuples || config_.mux_batch_timeout == 0) {
    mux_timer_.Cancel();
    FlushMux();
  } else if (!mux_timer_.valid()) {
    mux_timer_ = sim_->After(config_.mux_batch_timeout, [this] { FlushMux(); });
  }
}

void FlexStormNode::FlushMux() {
  while (!mux_queue_.empty()) {
    Tuple tuple = mux_queue_.front();
    mux_queue_.pop_front();
    const TimeNs done = mux_core_->Charge(CpuModule::kApp, config_.mux_cycles);
    sim_->At(done, [this, tuple] { EmitTuple(tuple); });
  }
}

void FlexStormNode::EmitTuple(const Tuple& tuple) {
  if (!out_connected_) {
    return;  // Downstream not up yet; drop (startup only).
  }
  if (measuring_) {
    output_wait_us_.Add(ToUs(sim_->Now() - tuple.worker_done));
  }
  std::vector<uint8_t> buf(config_.tuple_bytes, 0);
  std::memcpy(buf.data(), &tuple.created, sizeof(tuple.created));
  std::memcpy(buf.data() + 8, &tuple.hops, sizeof(tuple.hops));
  if (out_queue_.size() >= config_.mux_queue_limit) {
    ++overflow_drops_;
    return;
  }
  out_queue_.push_back(std::move(buf));
  TrySendOut();
}

void FlexStormNode::TrySendOut() {
  // Tuples must be written whole or the downstream framing breaks; wait for
  // send-buffer space otherwise (TCP backpressure).
  while (!out_queue_.empty() &&
         stack_->SendSpace(out_conn_) >= out_queue_.front().size()) {
    const std::vector<uint8_t>& buf = out_queue_.front();
    const size_t sent = stack_->Send(out_conn_, buf.data(), buf.size());
    TAS_CHECK(sent == buf.size());
    out_queue_.pop_front();
  }
}

void FlexStormNode::OnSendSpace(ConnId conn, size_t bytes) {
  (void)bytes;
  if (conn == out_conn_) {
    TrySendOut();
  }
}

void FlexStormNode::CompleteTuple(const Tuple& tuple) {
  ++completed_;
  if (measuring_) {
    tuple_latency_us_.Add(ToUs(sim_->Now() - tuple.created));
  }
}

void FlexStormNode::OnRemoteClosed(ConnId conn) { stack_->Close(conn); }

void FlexStormNode::OnClosed(ConnId conn) { rx_bufs_.erase(conn); }

}  // namespace tas
