// EventFn: a move-only callable for simulator events with small-buffer
// inline capture storage.
//
// std::function costs a heap allocation for any capture larger than two
// pointers and requires copyable captures, which forced packet-delivery
// events to smuggle PacketPtrs through shared_ptr holders. EventFn stores
// captures up to kInlineBytes directly inside the event node (sized for the
// largest hot-path closure: this + queue index + a 16-byte pooled PacketPtr)
// and accepts move-only captures, so in-flight packets are owned by the
// event itself. Oversized captures spill to the heap (cold paths only;
// heap_allocated() exposes the spill for tests).
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tas {

class EventFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT: implicit by design, mirrors std::function.
    if constexpr (kStoredInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }
  // True when the capture spilled to the heap instead of the inline buffer.
  bool heap_allocated() const noexcept { return ops_ != nullptr && ops_->heap; }

  // Destroys the stored callable (releasing captured resources, e.g. pooled
  // packets) and returns to the empty state.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*move)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  // Inline storage also requires nothrow move: event nodes are recycled and
  // the slab must be able to shuffle closures without exception paths.
  template <typename D>
  static constexpr bool kStoredInline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
      false,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* s) noexcept { delete *reinterpret_cast<D**>(s); },
      true,
  };

  void MoveFrom(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace tas

#endif  // SRC_SIM_EVENT_FN_H_
