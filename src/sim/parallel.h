// Conservative parallel DES executor (DESIGN.md §13).
//
// The topology is partitioned into *islands* — one simulator (heap + event
// slab + clock) per host and per switch, assigned by src/net/topology — and
// the islands advance in lockstep epochs. Link propagation delay is the
// conservative lookahead: an event executing at time t on one island can
// only affect another island at t + delay of the connecting link, so with
// W = min over all cross-island edges of that delay, every island may safely
// execute all events with timestamp below the epoch bound
//
//   T_end = min(T_next + W, until),   T_next = global min pending timestamp
//
// without ever seeing a message from the "past". Cross-island packet
// handoffs travel as CrossArrivals through per-(src,dst) mailboxes that are
// written only by the source island's thread during the compute phase and
// drained only by the destination island's owner after the barrier, so the
// mailboxes need no locks — the epoch barrier is the synchronization.
//
// Determinism: the epoch sequence depends only on event timestamps and W,
// never on thread scheduling; each island executes its heap in the
// provenance order of Simulator::QueueEntry; and every cross-island arrival
// carries its transmit site's (sent, sched chain, island, post-seq) into the
// destination heap's sort key, so its position among same-timestamp events
// is fixed by the workload alone — not by mailbox drain order or by how
// islands are spread over threads. Same seed + same topology =>
// byte-identical results for any thread count (1 included).
#ifndef SRC_SIM_PARALLEL_H_
#define SRC_SIM_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/cross_arrival.h"
#include "src/util/time.h"

namespace tas {

class Simulator;

class SimPartition {
 public:
  // `threads` is the number of OS threads used for epoch compute phases
  // (>= 1; the calling thread doubles as worker 0). Islands are assigned to
  // workers round-robin.
  explicit SimPartition(int threads);
  ~SimPartition();

  SimPartition(const SimPartition&) = delete;
  SimPartition& operator=(const SimPartition&) = delete;

  // Registers `sim` (owned by the caller, e.g. the Experiment's control
  // simulator) as island 0. Island 0 typically has no in-edges, so it never
  // constrains the epoch window. Must be called before NewIsland().
  void AdoptControl(Simulator* sim);

  // Creates a new island simulator owned by the partition.
  Simulator* NewIsland();

  int num_islands() const { return static_cast<int>(islands_.size()); }
  int threads() const { return threads_; }
  Simulator* island(int id) const { return islands_[id]; }

  // Declares that events on `src` may hand off to `dst` no earlier than
  // `delay` after their own timestamp (a link direction). The minimum over
  // all edges becomes the conservative epoch window.
  void AddEdge(int src_island, int dst_island, TimeNs delay);

  // Posts a cross-island handoff. Must be called from the thread currently
  // executing `src_island` (i.e. from inside one of its events).
  void Post(int src_island, int dst_island, CrossArrival arrival);

  // Runs every island to `until` (inclusive, like Simulator::RunUntil) in
  // lockstep epochs. Returns the number of events executed across all
  // islands during this call.
  uint64_t RunUntil(TimeNs until);

  // Runs until every island's queue drains (Simulator::Run equivalent).
  uint64_t RunAll();

  // True while RunUntil is executing epochs; Simulator::RunUntil uses this
  // to tell a top-level call (delegate to the partition) from the
  // partition's own per-island epoch slices.
  bool InRun() const { return in_run_; }

  // Safe from any thread: all islands stop at the next epoch boundary.
  void RequestStop() { stop_requested_.store(true, std::memory_order_relaxed); }

  // Called on the executing thread right before an island's epoch slice (and
  // before its mailbox drain). The harness uses it to point thread-local
  // island context (CurrentIslandId, per-island PacketPool) at the island.
  void SetIslandEnterHook(std::function<void(int island)> hook) {
    enter_hook_ = std::move(hook);
  }

  // Called at every epoch boundary with the bound that just completed, on the
  // single thread that runs Decide() while all other workers are parked at
  // the drain barrier — the one mid-run point where merged reads across
  // islands and file writes are race-free. The harness points this at
  // FlightRecorder::OnEpochBound so queued diagnostic bundles serialize
  // deterministically. Fires before the stop/final-window check, so the last
  // epoch of a run is covered too.
  void SetEpochHook(std::function<void(TimeNs bound)> hook) {
    epoch_hook_ = std::move(hook);
  }

  // --- Introspection (read between runs; not thread-safe mid-run) ----------
  TimeNs lookahead() const { return lookahead_; }
  uint64_t epochs() const { return epochs_; }
  uint64_t cross_posts() const;    // CrossArrivals posted across islands.
  uint64_t cross_items() const;    // Items (packets) carried by those posts.
  uint64_t events_executed() const;  // Sum over all islands.
  uint64_t cancelled_events() const;   // Sum over all islands.
  uint64_t cancelled_popped() const;   // Sum over all islands.
  size_t max_pending_events() const;   // Sum of per-island high-water marks.
  size_t event_nodes_total() const;    // Sum of per-island slab sizes.

  // True while any SimPartition::RunUntil is executing on this process.
  // Install/Current singletons assert on this to reject installs that would
  // race with worker threads.
  static bool AnyRunActive();

 private:
  struct IslandBox {
    // Outgoing mailboxes indexed by destination island; written only by this
    // island's executing thread during compute, drained by the destination's
    // owner after the barrier.
    std::vector<std::vector<CrossArrival>> outbox;
    uint64_t post_seq = 0;     // Canonical per-source drain order.
    uint64_t posts = 0;
    uint64_t items = 0;
    TimeNs next_pending = 0;   // Published at the drain barrier.
    bool has_pending = false;
    // Reused gather buffer for this island's drains (owner thread only).
    std::vector<CrossArrival> inbox_scratch;
  };

  void WorkerLoop(int worker);
  void DrainInbox(int dst);
  // Epoch decision, run by exactly one thread between barriers: finishes the
  // run after the final window (or a stop request), else picks the next one.
  void Decide();
  // Computes the next (bound, inclusive) window from the published per-island
  // next-pending times.
  void ComputeWindow();

  const int threads_;
  std::vector<std::unique_ptr<Simulator>> owned_;
  std::vector<Simulator*> islands_;  // [0] = control, then owned islands.
  std::vector<std::unique_ptr<IslandBox>> boxes_;
  TimeNs lookahead_ = 0;  // 0 until the first edge; then min edge delay.
  std::function<void(int)> enter_hook_;
  std::function<void(TimeNs)> epoch_hook_;

  // --- Per-run state (set up by RunUntil, read by workers) -----------------
  TimeNs until_ = 0;
  TimeNs bound_ = 0;
  bool inclusive_ = false;
  bool done_ = false;
  bool in_run_ = false;
  std::atomic<bool> stop_requested_{false};
  uint64_t epochs_ = 0;

  // Sense-reversing barrier: one count+phase pair reused for both the
  // post-compute and post-drain rendezvous. Waiters block on the phase word
  // (futex via std::atomic::wait) after a short spin, so an oversubscribed
  // machine degrades to sleeping instead of burning the timeslice.
  struct Barrier {
    std::atomic<int> count{0};
    std::atomic<uint32_t> phase{0};
  };
  Barrier compute_barrier_;
  Barrier drain_barrier_;
  void Await(Barrier* b, const std::function<void()>& completion);
};

}  // namespace tas

#endif  // SRC_SIM_PARALLEL_H_
