#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "src/sim/parallel.h"

namespace tas {

void Simulator::QueuePush(const QueueEntry& entry) {
  // Hole-sift: bubble the insertion point up, then write the entry once.
  size_t i = queue_.size();
  queue_.push_back(entry);
  while (i > 0) {
    const size_t parent = (i - 1) / kHeapArity;
    if (!EntryLess(entry, queue_[parent])) {
      break;
    }
    queue_[i] = queue_[parent];
    i = parent;
  }
  queue_[i] = entry;
}

void Simulator::QueuePopTop() {
  const QueueEntry last = queue_.back();
  queue_.pop_back();
  if (!queue_.empty()) {
    SiftDown(0, last);
  }
}

void Simulator::SiftDown(size_t i, const QueueEntry& value) {
  const size_t n = queue_.size();
  for (;;) {
    const size_t first = i * kHeapArity + 1;
    if (first >= n) {
      break;
    }
    const size_t limit = std::min(first + kHeapArity, n);
    size_t best = first;
    for (size_t c = first + 1; c < limit; ++c) {
      if (EntryLess(queue_[c], queue_[best])) {
        best = c;
      }
    }
    if (!EntryLess(queue_[best], value)) {
      break;
    }
    queue_[i] = queue_[best];
    i = best;
  }
  queue_[i] = value;
}

void Simulator::PurgeStaleEntries() {
  size_t kept = 0;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const QueueEntry e = queue_[i];
    if (HandleArmed(e.node, e.generation)) {
      queue_[kept++] = e;
    }
  }
  cancelled_popped_ += queue_.size() - kept;  // Retired here instead of at pop.
  queue_.resize(kept);
  stale_entries_ = 0;
  if (kept > 1) {
    for (size_t i = (kept - 2) / kHeapArity + 1; i-- > 0;) {
      const QueueEntry e = queue_[i];  // Copy: SiftDown writes through slot i.
      SiftDown(i, e);
    }
  }
}

uint32_t Simulator::AcquireNode() {
  if (free_head_ != kNoNode) {
    const uint32_t index = free_head_;
    free_head_ = nodes_[index].next_free;
    nodes_[index].next_free = kNoNode;
    --free_count_;
    return index;
  }
  nodes_.emplace_back();
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void Simulator::ReleaseNode(uint32_t index) {
  EventNode& node = nodes_[index];
  node.fn.reset();  // Destroys captures now (returns pooled packets etc).
  ++node.generation;
  node.armed = false;
  node.next_free = free_head_;
  free_head_ = index;
  ++free_count_;
}

EventHandle Simulator::At(TimeNs when, EventFn fn) {
  TAS_CHECK(when >= now_);
  const uint32_t index = AcquireNode();
  EventNode& node = nodes_[index];
  node.fn = std::move(fn);
  node.armed = true;
  QueueEntry entry;
  entry.when_key = static_cast<uint64_t>(when);
  entry.sched_key = static_cast<uint64_t>(now_);
  FillChildChain(entry.chain);
  entry.tie_key = NextTie();
  entry.node = index;
  entry.generation = node.generation;
  QueuePush(entry);
  NoteScheduled();
  return EventHandle(this, index, node.generation);
}

EventHandle Simulator::AtSequenced(TimeNs when, TimeNs sched,
                                   const TimeNs (&chain)[kSchedChainLen],
                                   uint32_t src_island, uint64_t src_seq, EventFn fn) {
  TAS_CHECK(when >= now_);
  const uint32_t index = AcquireNode();
  EventNode& node = nodes_[index];
  node.fn = std::move(fn);
  node.armed = true;
  QueueEntry entry;
  entry.when_key = static_cast<uint64_t>(when);
  entry.sched_key = static_cast<uint64_t>(sched);
  for (int i = 0; i < kSchedChainLen; ++i) {
    entry.chain[i] = static_cast<uint64_t>(chain[i]);
  }
  entry.tie_key = (static_cast<uint64_t>(src_island) << kTieIslandShift) | src_seq;
  entry.node = index;
  entry.generation = node.generation;
  QueuePush(entry);
  NoteScheduled();
  return EventHandle(this, index, node.generation);
}

EventHandle Simulator::RearmCurrent(TimeNs when) {
  TAS_CHECK(current_node_ != kNoNode) << "RearmCurrent outside event dispatch";
  TAS_CHECK(!current_rearmed_) << "RearmCurrent called twice in one dispatch";
  TAS_CHECK(when >= now_);
  EventNode& node = nodes_[current_node_];
  current_rearmed_ = true;
  node.armed = true;
  QueueEntry entry;
  entry.when_key = static_cast<uint64_t>(when);
  entry.sched_key = static_cast<uint64_t>(now_);
  FillChildChain(entry.chain);
  entry.tie_key = NextTie();
  entry.node = current_node_;
  entry.generation = node.generation;
  QueuePush(entry);
  NoteScheduled();
  return EventHandle(this, current_node_, node.generation);
}

void Simulator::CancelEvent(uint32_t index, uint32_t generation) {
  if (index >= nodes_.size()) {
    return;
  }
  EventNode& node = nodes_[index];
  if (node.generation != generation || !node.armed) {
    return;
  }
  node.armed = false;
  ++cancelled_events_;
  if (index == current_node_) {
    // Cancelling a just-rearmed node from inside its own callback: the
    // dispatch loop still owns the closure, so only invalidate the queue
    // entry here and let Dispatch() release the node after fn returns.
    ++node.generation;
    current_rearmed_ = false;
  } else {
    ReleaseNode(index);
  }
  ++stale_entries_;  // The heap entry is now a tombstone.
  if (stale_entries_ * 2 > queue_.size() && queue_.size() >= kPurgeMinEntries) {
    PurgeStaleEntries();
  }
}

void Simulator::Dispatch(const QueueEntry& top) {
  const uint32_t index = top.node;
  EventNode& node = nodes_[index];  // Deque: stable across mid-dispatch growth.
  node.armed = false;
  ++node.generation;  // Fired: handles must report not-pending.
  current_node_ = index;
  current_rearmed_ = false;
  current_sched_ = top.sched_key;
  for (int i = 0; i < kSchedChainLen; ++i) {
    current_chain_[i] = top.chain[i];
  }
  node.fn();
  if (!current_rearmed_) {
    ReleaseNode(index);
  }
  current_node_ = kNoNode;
  ++events_executed_;
}

uint64_t Simulator::RunUntil(TimeNs until) {
  if (partition_ != nullptr && !partition_->InRun()) {
    // Top-level call on a partitioned simulator: drive every island in
    // lockstep so callers (tests, benches) keep their serial call sites.
    return partition_->RunUntil(until);
  }
  stopped_.store(false, std::memory_order_relaxed);
  uint64_t executed = 0;
  while (!queue_.empty() && !stopped_.load(std::memory_order_relaxed)) {
    const QueueEntry top = queue_.front();
    if (top.when() > until) {
      break;
    }
    QueuePopTop();
    now_ = top.when();
    const EventNode& node = nodes_[top.node];
    if (node.generation != top.generation || !node.armed) {
      ++cancelled_popped_;  // Lazy deletion: cancelled or recycled entry.
      --stale_entries_;
      continue;
    }
    Dispatch(top);
    ++executed;
  }
  if (now_ < until && !stopped_.load(std::memory_order_relaxed)) {
    now_ = until;
  }
  return executed;
}

uint64_t Simulator::Run() {
  if (partition_ != nullptr && !partition_->InRun()) {
    return partition_->RunAll();
  }
  stopped_.store(false, std::memory_order_relaxed);
  uint64_t executed = 0;
  while (!queue_.empty() && !stopped_.load(std::memory_order_relaxed)) {
    const QueueEntry top = queue_.front();
    QueuePopTop();
    now_ = top.when();
    const EventNode& node = nodes_[top.node];
    if (node.generation != top.generation || !node.armed) {
      ++cancelled_popped_;
      --stale_entries_;
      continue;
    }
    Dispatch(top);
    ++executed;
  }
  return executed;
}

uint64_t Simulator::RunEpoch(TimeNs bound, bool inclusive) {
  // Deliberately no stopped_ reset here: a Stop() that lands mid-run must
  // keep this island quiet until the partition finishes the run.
  uint64_t executed = 0;
  while (!queue_.empty() && !stopped_.load(std::memory_order_relaxed)) {
    const QueueEntry top = queue_.front();
    if (inclusive ? top.when() > bound : top.when() >= bound) {
      break;
    }
    QueuePopTop();
    now_ = top.when();
    const EventNode& node = nodes_[top.node];
    if (node.generation != top.generation || !node.armed) {
      ++cancelled_popped_;
      --stale_entries_;
      continue;
    }
    Dispatch(top);
    ++executed;
  }
  if (now_ < bound && !stopped_.load(std::memory_order_relaxed)) {
    now_ = bound;
  }
  return executed;
}

void Simulator::Stop() {
  stopped_.store(true, std::memory_order_relaxed);
  if (partition_ != nullptr) {
    partition_->RequestStop();
  }
}

void Simulator::PostCross(int dst_island, CrossArrival arrival) {
  TAS_CHECK(partition_ != nullptr);
  // Stamp the provenance the delivery would have carried had the posting
  // event scheduled it on its own heap: post time plus ancestry chain.
  arrival.sent = now_;
  uint64_t chain[kSchedChainLen];
  FillChildChain(chain);
  for (int i = 0; i < kSchedChainLen; ++i) {
    arrival.chain[i] = static_cast<TimeNs>(chain[i]);
  }
  partition_->Post(island_id_, dst_island, std::move(arrival));
}

DeadlineTimer::~DeadlineTimer() {
  armed_ = false;
  if (event_live_) {
    event_.Cancel();  // The pending closure captures `this`; kill it now.
    event_live_ = false;
  }
}

void DeadlineTimer::Schedule(TimeNs deadline) {
  if (deadline < sim_->Now()) {
    deadline = sim_->Now();
  }
  deadline_ = deadline;
  armed_ = true;
  if (event_live_) {
    if (event_at_ <= deadline) {
      return;  // The event fires early and re-arms itself to deadline_.
    }
    event_.Cancel();  // Deadline moved earlier: rare, pay the tombstone.
  }
  event_ = sim_->At(deadline, [this] { Fire(); });
  event_at_ = deadline;
  event_live_ = true;
}

void DeadlineTimer::Fire() {
  event_live_ = false;
  if (!armed_) {
    return;  // Lazily cancelled; the event dies out here.
  }
  if (sim_->Now() < deadline_) {
    // Deadline moved later since this event was scheduled: chase it without
    // building a new closure.
    event_ = sim_->RearmCurrent(deadline_);
    event_at_ = deadline_;
    event_live_ = true;
    return;
  }
  armed_ = false;
  fn_();
}

PeriodicTask::PeriodicTask(Simulator* sim, TimeNs period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  TAS_CHECK(period > 0);
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  next_ = sim_->After(period_, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  running_ = false;
  next_.Cancel();
}

void PeriodicTask::Fire() {
  if (!running_) {
    return;
  }
  fn_();
  if (running_) {
    // Re-arm the pooled node in place instead of building a fresh closure
    // every period (zero allocations in steady state).
    next_ = sim_->RearmCurrent(sim_->Now() + period_);
  }
}

}  // namespace tas
