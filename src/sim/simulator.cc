#include "src/sim/simulator.h"

namespace tas {

EventHandle Simulator::At(TimeNs when, std::function<void()> fn) {
  TAS_CHECK(when >= now_);
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  if (queue_.size() > max_pending_events_) {
    max_pending_events_ = queue_.size();
  }
  return EventHandle(std::move(cancelled));
}

uint64_t Simulator::RunUntil(TimeNs until) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.when > until) {
      break;
    }
    // Move the event out before popping so the callback can schedule more.
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    now_ = ev.when;
    if (!*ev.cancelled) {
      *ev.cancelled = true;  // Fired: handles must report not-pending.
      ev.fn();
      ++executed;
      ++events_executed_;
    }
  }
  if (now_ < until && !stopped_) {
    now_ = until;
  }
  return executed;
}

uint64_t Simulator::Run() {
  stopped_ = false;
  uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    if (!*ev.cancelled) {
      *ev.cancelled = true;  // Fired: handles must report not-pending.
      ev.fn();
      ++executed;
      ++events_executed_;
    }
  }
  return executed;
}

PeriodicTask::PeriodicTask(Simulator* sim, TimeNs period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  TAS_CHECK(period > 0);
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  next_ = sim_->After(period_, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  running_ = false;
  next_.Cancel();
}

void PeriodicTask::Fire() {
  if (!running_) {
    return;
  }
  fn_();
  if (running_) {
    next_ = sim_->After(period_, [this] { Fire(); });
  }
}

}  // namespace tas
