#include "src/sim/parallel.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "src/sim/simulator.h"
#include "src/util/logging.h"

namespace tas {

namespace {

std::atomic<int> g_active_runs{0};

// Holder for an in-flight CrossArrival: the delivery event owns it, and if
// the event never fires (simulator torn down mid-flight) the destructor
// routes the items through dispose() instead of leaking them.
struct PendingArrival {
  CrossArrival a;
  bool delivered = false;

  explicit PendingArrival(CrossArrival&& arrival) : a(std::move(arrival)) {}
  PendingArrival(const PendingArrival&) = delete;
  PendingArrival& operator=(const PendingArrival&) = delete;
  ~PendingArrival() {
    if (!delivered && a.dispose != nullptr) {
      a.dispose(a.ctx, a.items, a.n);
    }
  }

  void Fire() {
    delivered = true;
    if (a.deliver != nullptr) {
      a.deliver(a.ctx, a.when, a.items, a.n);
    }
  }
};

}  // namespace

bool SimPartition::AnyRunActive() {
  return g_active_runs.load(std::memory_order_acquire) > 0;
}

SimPartition::SimPartition(int threads) : threads_(threads) {
  TAS_CHECK(threads >= 1);
}

SimPartition::~SimPartition() {
  TAS_CHECK(!in_run_);
  // Undrained mailboxes dispose their cargo (CrossArrival itself does not own
  // anything; PendingArrival-style cleanup applies only to posted-but-never-
  // drained arrivals, which can exist if a run stopped at an epoch boundary).
  for (auto& box : boxes_) {
    for (auto& out : box->outbox) {
      for (auto& a : out) {
        if (a.dispose != nullptr) {
          a.dispose(a.ctx, a.items, a.n);
        }
      }
      out.clear();
    }
  }
}

void SimPartition::AdoptControl(Simulator* sim) {
  TAS_CHECK(islands_.empty()) << "control island must be registered first";
  islands_.push_back(sim);
  boxes_.push_back(std::make_unique<IslandBox>());
  sim->SetPartition(this, 0);
  for (auto& box : boxes_) {
    box->outbox.resize(islands_.size());
  }
}

Simulator* SimPartition::NewIsland() {
  TAS_CHECK(!islands_.empty()) << "AdoptControl before NewIsland";
  owned_.push_back(std::make_unique<Simulator>());
  Simulator* sim = owned_.back().get();
  const int id = static_cast<int>(islands_.size());
  islands_.push_back(sim);
  boxes_.push_back(std::make_unique<IslandBox>());
  sim->SetPartition(this, id);
  for (auto& box : boxes_) {
    box->outbox.resize(islands_.size());
  }
  return sim;
}

void SimPartition::AddEdge(int src_island, int dst_island, TimeNs delay) {
  TAS_CHECK(src_island >= 0 && src_island < num_islands());
  TAS_CHECK(dst_island >= 0 && dst_island < num_islands());
  if (src_island == dst_island) {
    return;  // Intra-island edges impose no lookahead constraint.
  }
  TAS_CHECK(delay > 0) << "cross-island edges need positive propagation delay "
                          "(zero-lookahead endpoints must share an island)";
  if (lookahead_ == 0 || delay < lookahead_) {
    lookahead_ = delay;
  }
}

void SimPartition::Post(int src_island, int dst_island, CrossArrival arrival) {
  IslandBox& box = *boxes_[src_island];
  arrival.src_island = static_cast<uint32_t>(src_island);
  arrival.seq = box.post_seq++;
  ++box.posts;
  box.items += static_cast<uint64_t>(arrival.n);
  box.outbox[dst_island].push_back(std::move(arrival));
}

uint64_t SimPartition::cross_posts() const {
  uint64_t total = 0;
  for (const auto& box : boxes_) {
    total += box->posts;
  }
  return total;
}

uint64_t SimPartition::cross_items() const {
  uint64_t total = 0;
  for (const auto& box : boxes_) {
    total += box->items;
  }
  return total;
}

uint64_t SimPartition::events_executed() const {
  uint64_t total = 0;
  for (Simulator* sim : islands_) {
    total += sim->events_executed();
  }
  return total;
}

uint64_t SimPartition::cancelled_events() const {
  uint64_t total = 0;
  for (Simulator* sim : islands_) {
    total += sim->cancelled_events();
  }
  return total;
}

uint64_t SimPartition::cancelled_popped() const {
  uint64_t total = 0;
  for (Simulator* sim : islands_) {
    total += sim->cancelled_popped();
  }
  return total;
}

size_t SimPartition::max_pending_events() const {
  size_t total = 0;
  for (Simulator* sim : islands_) {
    total += sim->max_pending_events();
  }
  return total;
}

size_t SimPartition::event_nodes_total() const {
  size_t total = 0;
  for (Simulator* sim : islands_) {
    total += sim->event_nodes_total();
  }
  return total;
}

void SimPartition::DrainInbox(int dst) {
  IslandBox& box = *boxes_[dst];
  auto& in = box.inbox_scratch;
  in.clear();
  for (int src = 0; src < num_islands(); ++src) {
    auto& out = boxes_[src]->outbox[dst];
    if (!out.empty()) {
      in.insert(in.end(), std::make_move_iterator(out.begin()),
                std::make_move_iterator(out.end()));
      out.clear();
    }
  }
  if (in.empty()) {
    return;
  }
  // Each delivery carries its (sent, chain, src_island, post-seq) provenance
  // into the destination heap's sort key, so its position among
  // same-timestamp events is fixed by the workload alone — independent of
  // drain order and of how islands are spread over threads.
  for (auto& a : in) {
    const TimeNs when = a.when;
    const TimeNs sent = a.sent;
    TimeNs chain[kSchedChainLen];
    for (int i = 0; i < kSchedChainLen; ++i) {
      chain[i] = a.chain[i];
    }
    const uint32_t src = a.src_island;
    const uint64_t seq = a.seq;
    islands_[dst]->AtSequenced(
        when, sent, chain, src, seq,
        [p = std::make_unique<PendingArrival>(std::move(a))] { p->Fire(); });
  }
  in.clear();
}

void SimPartition::Await(Barrier* b, const std::function<void()>& completion) {
  const uint32_t old_phase = b->phase.load(std::memory_order_acquire);
  const int arrived = b->count.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (arrived == threads_) {
    if (completion) {
      completion();
    }
    b->count.store(0, std::memory_order_relaxed);
    b->phase.store(old_phase + 1, std::memory_order_release);
    b->phase.notify_all();
    return;
  }
  // Short spin for the dense-epoch case, then block: a machine with fewer
  // cores than threads must not burn its timeslice at every barrier.
  for (int spin = 0; spin < 128; ++spin) {
    if (b->phase.load(std::memory_order_acquire) != old_phase) {
      return;
    }
  }
  while (b->phase.load(std::memory_order_acquire) == old_phase) {
    b->phase.wait(old_phase, std::memory_order_acquire);
  }
}

void SimPartition::Decide() {
  ++epochs_;
  if (epoch_hook_) {
    // Exactly one thread is here; every worker is parked at the drain
    // barrier. Fire before the final-window check so the run's last epoch
    // (where a late breach may have queued a bundle) is covered.
    epoch_hook_(bound_);
  }
  if (stop_requested_.load(std::memory_order_relaxed) || inclusive_) {
    // inclusive_ marks the final window: every event <= until has executed
    // and all arrivals posted during it land strictly beyond until (they were
    // produced by events at t >= T_next with T_next + W > until).
    done_ = true;
    return;
  }
  ComputeWindow();
}

void SimPartition::ComputeWindow() {
  TimeNs t_next = 0;
  bool any = false;
  for (const auto& box : boxes_) {
    if (box->has_pending && (!any || box->next_pending < t_next)) {
      t_next = box->next_pending;
      any = true;
    }
  }
  if (!any || t_next > until_ || lookahead_ == 0 || t_next > until_ - lookahead_) {
    // Nothing pending inside the horizon, or the window reaches past it
    // (also the no-cross-edges case: W is effectively infinite).
    bound_ = until_;
    inclusive_ = true;
    return;
  }
  bound_ = t_next + lookahead_;
  inclusive_ = false;
}

void SimPartition::WorkerLoop(int worker) {
  for (;;) {
    for (int i = worker; i < num_islands(); i += threads_) {
      if (enter_hook_) {
        enter_hook_(i);
      }
      islands_[i]->RunEpoch(bound_, inclusive_);
    }
    Await(&compute_barrier_, nullptr);  // All cross posts now visible.
    for (int i = worker; i < num_islands(); i += threads_) {
      if (enter_hook_) {
        enter_hook_(i);
      }
      DrainInbox(i);
      boxes_[i]->has_pending = islands_[i]->PeekNext(&boxes_[i]->next_pending);
    }
    Await(&drain_barrier_, [this] { Decide(); });
    if (done_) {
      return;
    }
  }
}

uint64_t SimPartition::RunUntil(TimeNs until) {
  TAS_CHECK(!in_run_) << "re-entrant SimPartition::RunUntil";
  TAS_CHECK(!islands_.empty());
  const uint64_t before = events_executed();
  stop_requested_.store(false, std::memory_order_relaxed);
  for (Simulator* sim : islands_) {
    sim->ResetStopped();
  }
  // Flush anything posted outside a run (setup code sending before the first
  // RunUntil) so the initial window sees it as pending work.
  for (int i = 0; i < num_islands(); ++i) {
    DrainInbox(i);
  }
  until_ = until;
  done_ = false;
  // Initial window, computed serially before workers exist.
  for (int i = 0; i < num_islands(); ++i) {
    boxes_[i]->has_pending = islands_[i]->PeekNext(&boxes_[i]->next_pending);
  }
  ComputeWindow();

  in_run_ = true;
  g_active_runs.fetch_add(1, std::memory_order_acq_rel);
  std::vector<std::thread> workers;
  workers.reserve(threads_ - 1);
  for (int w = 1; w < threads_; ++w) {
    workers.emplace_back([this, w] { WorkerLoop(w); });
  }
  WorkerLoop(0);
  for (auto& t : workers) {
    t.join();
  }
  g_active_runs.fetch_sub(1, std::memory_order_acq_rel);
  in_run_ = false;
  if (enter_hook_) {
    enter_hook_(0);  // Main thread context back to the control island.
  }
  return events_executed() - before;
}

uint64_t SimPartition::RunAll() {
  uint64_t total = 0;
  for (;;) {
    TimeNs horizon = 0;
    bool any = false;
    for (Simulator* sim : islands_) {
      TimeNs t = 0;
      if (sim->PeekNext(&t)) {
        if (!any || t > horizon) {
          horizon = t;
        }
        any = true;
      }
    }
    if (!any) {
      return total;
    }
    total += RunUntil(horizon);
  }
}

}  // namespace tas
