// Discrete-event simulation core.
//
// The paper evaluates TAS on a physical cluster plus ns-3 simulations; here
// every experiment runs on this event simulator. Events are (time, key,
// callback) entries in a 4-ary min-heap; same-time ties break by scheduling
// provenance (equivalent to insertion order on a single heap, and identical
// across thread counts when partitioned — see QueueEntry), so runs are fully
// deterministic.
//
// Hot-path memory discipline (DESIGN.md §8): closures live in a slab of
// pooled event nodes (EventFn keeps captures inline), the heap orders
// compact POD entries, and cancellation is a generation bump — steady-state
// scheduling performs zero heap allocations.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/sim/cross_arrival.h"
#include "src/sim/event_fn.h"
#include "src/util/logging.h"
#include "src/util/time.h"

namespace tas {

class Simulator;
class SimPartition;

// Handle for cancelling a scheduled event. Names a pooled event node by
// (index, generation); firing, cancelling, or recycling a node bumps its
// generation, so a stale handle reports invalid instead of aliasing the
// node's next tenant (ABA-safe without a per-event shared_ptr flag).
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is still pending (not fired, not cancelled).
  bool valid() const;
  // Cancels the event if it has not fired yet. The closure (and anything it
  // owns, e.g. an in-flight packet) is destroyed immediately; the heap entry
  // is lazily skipped when popped.
  void Cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, uint32_t node, uint32_t generation)
      : sim_(sim), node_(node), generation_(generation) {}
  Simulator* sim_ = nullptr;
  uint32_t node_ = 0;
  uint32_t generation_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()).
  EventHandle At(TimeNs when, EventFn fn);

  // Schedules `fn` to run `delay` after Now().
  EventHandle After(TimeNs delay, EventFn fn) { return At(now_ + delay, std::move(fn)); }

  // Like At(), but a `when` that already passed runs at Now() instead of
  // failing. Fault schedules installed mid-run rely on this: events whose
  // time predates installation apply immediately, in schedule order.
  EventHandle AtClamped(TimeNs when, EventFn fn) {
    return At(when < now_ ? now_ : when, std::move(fn));
  }

  // Re-arms the event currently being dispatched at a new time, reusing its
  // node and closure (zero allocation; PeriodicTask re-arms this way every
  // period). Only valid inside an event callback, at most once per dispatch.
  EventHandle RearmCurrent(TimeNs when);

  // Runs events until the queue empties or `until` is reached (whichever is
  // first). Returns the number of events executed. On a partitioned
  // simulator (DESIGN.md §13) a top-level call runs ALL islands in lockstep
  // epochs via the partition, so harness code can keep driving any island's
  // simulator directly.
  uint64_t RunUntil(TimeNs until);

  // Runs until the event queue drains completely (all islands' queues when
  // partitioned).
  uint64_t Run();

  // Stops the current Run/RunUntil after the in-flight event completes.
  // Safe from any thread: the flag is atomic, and on a partitioned run every
  // island stops at the next epoch boundary (this island additionally stops
  // after its in-flight event).
  void Stop();

  // --- Island context (set by SimPartition; 0 / null when serial) ----------
  int island_id() const { return island_id_; }
  SimPartition* partition() const { return partition_; }
  // Posts a cross-island handoff from this island's currently-executing
  // event to `dst_island`'s mailbox. Only meaningful when partitioned.
  void PostCross(int dst_island, CrossArrival arrival);

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }
  // High-water mark of pending_events() over the run (updated at schedule
  // time; a cheap dispatch-pressure metric for the trace layer).
  size_t max_pending_events() const { return max_pending_events_; }

  // --- Allocator-pressure counters (DESIGN.md §8) ---------------------------
  // Events disarmed via EventHandle::Cancel().
  uint64_t cancelled_events() const { return cancelled_events_; }
  // Stale heap entries retired: popped and skipped (lazy deletion catching
  // up) or dropped by a tombstone purge.
  uint64_t cancelled_popped() const { return cancelled_popped_; }
  // Event-node slab occupancy: total nodes ever created and how many sit on
  // the free list right now.
  size_t event_nodes_total() const { return nodes_.size(); }
  size_t event_nodes_free() const { return free_count_; }

 private:
  friend class EventHandle;
  friend class SimPartition;

  // --- SimPartition plumbing (DESIGN.md §13) --------------------------------
  void SetPartition(SimPartition* partition, int island_id) {
    partition_ = partition;
    island_id_ = island_id;
  }
  // Peeks the earliest pending timestamp (tombstones included: stale entries
  // only make the epoch window conservative, never unsafe).
  bool PeekNext(TimeNs* when) const {
    if (queue_.empty()) {
      return false;
    }
    *when = queue_.front().when();
    return true;
  }
  // Runs one epoch slice: events with when < bound (<= when inclusive), then
  // advances the clock to the bound. Called from this island's worker thread.
  uint64_t RunEpoch(TimeNs bound, bool inclusive);
  void ResetStopped() { stopped_.store(false, std::memory_order_relaxed); }
  // Schedules `fn` at `when` carrying explicit provenance (a cross-island
  // arrival's transmit time + ancestry chain / source island / per-source
  // post sequence) instead of this heap's own clock and counter. Used by the
  // partition's mailbox drain so deliveries sort as if the sender had
  // scheduled them directly on this heap.
  EventHandle AtSequenced(TimeNs when, TimeNs sched,
                          const TimeNs (&chain)[kSchedChainLen], uint32_t src_island,
                          uint64_t src_seq, EventFn fn);

  // Island tag bits of QueueEntry::tie_key.
  static constexpr int kTieIslandShift = 48;
  uint64_t NextTie() {
    return (static_cast<uint64_t>(static_cast<uint32_t>(island_id_)) << kTieIslandShift) |
           next_seq_++;
  }

  static constexpr uint32_t kNoNode = 0xFFFFFFFFu;

  // One slab slot. Lives in a deque so addresses stay stable while the slab
  // grows mid-dispatch; recycled through an intrusive free list.
  struct EventNode {
    EventFn fn;
    uint32_t generation = 0;
    uint32_t next_free = kNoNode;
    bool armed = false;  // In the heap and not cancelled.
  };

  // What the heap orders: a 56-byte POD that names its node. Entries are
  // never removed early; a generation mismatch at pop time means the event
  // was cancelled (or the node recycled) and the entry is skipped.
  //
  // The sort key is (when, sched, chain..., tie) — `when` is non-negative, so
  // unsigned lexicographic order matches the signed time order. `sched` is
  // the clock at scheduling time, `chain` holds the scheduling ancestry's
  // times (parent's sched, grandparent's sched, ...: copied+shifted from the
  // event executing at schedule time), and `tie` packs (scheduling island
  // << 48) | per-island sequence.
  //
  // On a single heap this order is IDENTICAL to the historical (when, seq)
  // order: seq is handed out in increasing Now() order, so within equal
  // `when`, sched is non-decreasing in seq; within equal (when, sched) the
  // schedulers executed at one instant in seq order, so (inductively, one
  // ancestry level up) every chain word is also non-decreasing in seq, and
  // seq itself finishes the key. The provenance exists for partitioned runs
  // (DESIGN.md §13): a cross-island delivery carries the transmit site's
  // (sent, chain, island, post-seq), which slots it among the destination's
  // same-timestamp events by scheduling provenance, not mailbox-drain order
  // — a key computed identically for every thread count, and equal to the
  // serial single-heap order whenever the chain disambiguates the tie (it
  // cannot when two events' ancestries are time-identical deeper than the
  // chain reaches; there the island tag decides, deterministically). 48 bits
  // of seq (~2.8e14 events per island) outlast any simulation by orders of
  // magnitude.
  struct QueueEntry {
    uint64_t when_key;  // static_cast<uint64_t>(when)
    uint64_t sched_key;  // Clock at scheduling time (provenance, see above).
    uint64_t chain[kSchedChainLen];  // Ancestor sched times, nearest first.
    uint64_t tie_key;    // (island << 48) | seq.
    uint32_t node;
    uint32_t generation;

    TimeNs when() const { return static_cast<TimeNs>(when_key); }
  };

  // (when, sched, chain, tie) is a strict total order — tie is unique within
  // one heap (local events and per-source arrivals draw from disjoint island
  // tags) — so pop order does not depend on the heap shape and the 4-ary
  // layout below is free to differ from std::priority_queue's binary one.
  static bool EntryLess(const QueueEntry& a, const QueueEntry& b) {
    if (a.when_key != b.when_key) {
      return a.when_key < b.when_key;
    }
    if (a.sched_key != b.sched_key) {
      return a.sched_key < b.sched_key;
    }
    for (int i = 0; i < kSchedChainLen; ++i) {
      if (a.chain[i] != b.chain[i]) {
        return a.chain[i] < b.chain[i];
      }
    }
    return a.tie_key < b.tie_key;
  }

  // 4-ary min-heap: shallower than a binary heap and the four children sit
  // in adjacent cache lines, which is where RunUntil spends its time.
  static constexpr size_t kHeapArity = 4;
  // Below this size lazy deletion is cheap enough that compaction is not
  // worth the rebuild (also keeps small unit tests on the documented
  // pop-and-skip path).
  static constexpr size_t kPurgeMinEntries = 64;
  void QueuePush(const QueueEntry& entry);
  // Removes queue_.front(); the caller reads it first.
  void QueuePopTop();
  // Sifts `value` down from slot `i` (the slot is treated as a hole).
  void SiftDown(size_t i, const QueueEntry& value);
  // Drops every tombstone and re-heapifies (Floyd, O(n)). Cancellation-heavy
  // runs otherwise grow the heap several times past its live size, and sift
  // cost follows the total size, stale or not.
  void PurgeStaleEntries();

  // Writes the sched-chain a child scheduled *now* would carry: the
  // currently-dispatched event's own sched time followed by its chain,
  // shifted one slot (zeros outside dispatch, i.e. setup-time scheduling).
  void FillChildChain(uint64_t (&out)[kSchedChainLen]) const {
    if (current_node_ == kNoNode) {
      for (int i = 0; i < kSchedChainLen; ++i) {
        out[i] = 0;
      }
      return;
    }
    out[0] = current_sched_;
    for (int i = 1; i < kSchedChainLen; ++i) {
      out[i] = current_chain_[i - 1];
    }
  }

  uint32_t AcquireNode();
  void ReleaseNode(uint32_t index);
  void Dispatch(const QueueEntry& top);
  bool HandleArmed(uint32_t node, uint32_t generation) const {
    return node < nodes_.size() && nodes_[node].generation == generation &&
           nodes_[node].armed;
  }
  void CancelEvent(uint32_t node, uint32_t generation);
  void NoteScheduled() {
    if (queue_.size() > max_pending_events_) {
      max_pending_events_ = queue_.size();
    }
  }

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t cancelled_events_ = 0;
  uint64_t cancelled_popped_ = 0;
  size_t max_pending_events_ = 0;
  size_t stale_entries_ = 0;  // Tombstones currently sitting in the heap.
  size_t free_count_ = 0;
  uint32_t free_head_ = kNoNode;
  uint32_t current_node_ = kNoNode;  // Node being dispatched right now.
  bool current_rearmed_ = false;
  // Provenance of the event being dispatched (its heap entry's sched + chain);
  // children scheduled from inside the callback inherit it, shifted.
  uint64_t current_sched_ = 0;
  uint64_t current_chain_[kSchedChainLen] = {};
  // Atomic so harness watchdogs may call Stop() from another thread; the run
  // loops read it relaxed (a one-event delay in observing it is fine).
  std::atomic<bool> stopped_{false};
  SimPartition* partition_ = nullptr;
  int island_id_ = 0;
  std::deque<EventNode> nodes_;
  std::vector<QueueEntry> queue_;  // 4-ary min-heap ordered by EntryLess.
};

inline bool EventHandle::valid() const {
  return sim_ != nullptr && sim_->HandleArmed(node_, generation_);
}

inline void EventHandle::Cancel() {
  if (sim_ != nullptr) {
    sim_->CancelEvent(node_, generation_);
  }
}

// A one-shot timer whose deadline is cheap to move: re-arming to a later
// time or cancelling is a field write, not a heap operation. One pooled
// event rides in the queue; if it fires before the logical deadline it
// re-arms itself in place (RearmCurrent), and a cancelled timer's event
// simply dies out when popped. Built for TCP retransmission timers, which
// classically move forward on every ACK — the cancel+reschedule pattern
// would otherwise fill the heap with tombstones.
//
// `fn` runs only when the logical deadline is reached while armed. It must
// not destroy the timer (defer destruction with After(0, ...) instead).
class DeadlineTimer {
 public:
  DeadlineTimer(Simulator* sim, std::function<void()> fn)
      : sim_(sim), fn_(std::move(fn)) {}
  ~DeadlineTimer();

  DeadlineTimer(const DeadlineTimer&) = delete;
  DeadlineTimer& operator=(const DeadlineTimer&) = delete;

  // Arms the timer (or moves its deadline) to fire at `deadline`; clamped
  // to Now() if already past.
  void Schedule(TimeNs deadline);
  // Disarms. The in-queue event, if any, is skipped when it pops.
  void Cancel() { armed_ = false; }
  bool armed() const { return armed_; }

 private:
  void Fire();

  Simulator* sim_;
  std::function<void()> fn_;
  TimeNs deadline_ = 0;   // When fn_ should logically run.
  TimeNs event_at_ = 0;   // When the in-queue event actually pops.
  EventHandle event_;
  bool armed_ = false;
  bool event_live_ = false;
};

// Repeats a callback at a fixed period until cancelled. Used for control
// loops (slow-path congestion control every tau, utilization monitoring).
// Steady-state firing re-arms the same pooled event node in place, so a
// running task costs no allocations after Start().
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, TimeNs period, std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }
  void set_period(TimeNs period) { period_ = period; }

 private:
  void Fire();

  Simulator* sim_;
  TimeNs period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventHandle next_;
};

}  // namespace tas

#endif  // SRC_SIM_SIMULATOR_H_
