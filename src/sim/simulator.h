// Discrete-event simulation core.
//
// The paper evaluates TAS on a physical cluster plus ns-3 simulations; here
// every experiment runs on this event simulator. Events are (time, sequence,
// callback) triples in a 4-ary min-heap; ties break by insertion order so
// runs are fully deterministic.
//
// Hot-path memory discipline (DESIGN.md §8): closures live in a slab of
// pooled event nodes (EventFn keeps captures inline), the heap orders
// 24-byte POD entries, and cancellation is a generation bump — steady-state
// scheduling performs zero heap allocations.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/util/logging.h"
#include "src/util/time.h"

namespace tas {

class Simulator;

// Handle for cancelling a scheduled event. Names a pooled event node by
// (index, generation); firing, cancelling, or recycling a node bumps its
// generation, so a stale handle reports invalid instead of aliasing the
// node's next tenant (ABA-safe without a per-event shared_ptr flag).
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is still pending (not fired, not cancelled).
  bool valid() const;
  // Cancels the event if it has not fired yet. The closure (and anything it
  // owns, e.g. an in-flight packet) is destroyed immediately; the heap entry
  // is lazily skipped when popped.
  void Cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, uint32_t node, uint32_t generation)
      : sim_(sim), node_(node), generation_(generation) {}
  Simulator* sim_ = nullptr;
  uint32_t node_ = 0;
  uint32_t generation_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()).
  EventHandle At(TimeNs when, EventFn fn);

  // Schedules `fn` to run `delay` after Now().
  EventHandle After(TimeNs delay, EventFn fn) { return At(now_ + delay, std::move(fn)); }

  // Like At(), but a `when` that already passed runs at Now() instead of
  // failing. Fault schedules installed mid-run rely on this: events whose
  // time predates installation apply immediately, in schedule order.
  EventHandle AtClamped(TimeNs when, EventFn fn) {
    return At(when < now_ ? now_ : when, std::move(fn));
  }

  // Re-arms the event currently being dispatched at a new time, reusing its
  // node and closure (zero allocation; PeriodicTask re-arms this way every
  // period). Only valid inside an event callback, at most once per dispatch.
  EventHandle RearmCurrent(TimeNs when);

  // Runs events until the queue empties or `until` is reached (whichever is
  // first). Returns the number of events executed.
  uint64_t RunUntil(TimeNs until);

  // Runs until the event queue drains completely.
  uint64_t Run();

  // Stops the current Run/RunUntil after the in-flight event completes.
  void Stop() { stopped_ = true; }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }
  // High-water mark of pending_events() over the run (updated at schedule
  // time; a cheap dispatch-pressure metric for the trace layer).
  size_t max_pending_events() const { return max_pending_events_; }

  // --- Allocator-pressure counters (DESIGN.md §8) ---------------------------
  // Events disarmed via EventHandle::Cancel().
  uint64_t cancelled_events() const { return cancelled_events_; }
  // Stale heap entries retired: popped and skipped (lazy deletion catching
  // up) or dropped by a tombstone purge.
  uint64_t cancelled_popped() const { return cancelled_popped_; }
  // Event-node slab occupancy: total nodes ever created and how many sit on
  // the free list right now.
  size_t event_nodes_total() const { return nodes_.size(); }
  size_t event_nodes_free() const { return free_count_; }

 private:
  friend class EventHandle;

  static constexpr uint32_t kNoNode = 0xFFFFFFFFu;

  // One slab slot. Lives in a deque so addresses stay stable while the slab
  // grows mid-dispatch; recycled through an intrusive free list.
  struct EventNode {
    EventFn fn;
    uint32_t generation = 0;
    uint32_t next_free = kNoNode;
    bool armed = false;  // In the heap and not cancelled.
  };

  // What the heap orders: a 24-byte POD that names its node. Entries are
  // never removed early; a generation mismatch at pop time means the event
  // was cancelled (or the node recycled) and the entry is skipped. The sort
  // key is (when, seq) as two u64 words — `when` is non-negative, so
  // unsigned lexicographic order matches the signed time order. Two u64s
  // beat one __int128: same compare, but no 16-byte alignment padding, so
  // four children span 96 bytes instead of 128.
  struct QueueEntry {
    uint64_t when_key;  // static_cast<uint64_t>(when)
    uint64_t seq_key;
    uint32_t node;
    uint32_t generation;

    TimeNs when() const { return static_cast<TimeNs>(when_key); }
  };

  // (when, seq) is a strict total order — seq is unique — so pop order does
  // not depend on the heap shape and the 4-ary layout below is free to
  // differ from std::priority_queue's binary one.
  static bool EntryLess(const QueueEntry& a, const QueueEntry& b) {
    return a.when_key != b.when_key ? a.when_key < b.when_key : a.seq_key < b.seq_key;
  }

  // 4-ary min-heap: shallower than a binary heap and the four children sit
  // in adjacent cache lines, which is where RunUntil spends its time.
  static constexpr size_t kHeapArity = 4;
  // Below this size lazy deletion is cheap enough that compaction is not
  // worth the rebuild (also keeps small unit tests on the documented
  // pop-and-skip path).
  static constexpr size_t kPurgeMinEntries = 64;
  void QueuePush(const QueueEntry& entry);
  // Removes queue_.front(); the caller reads it first.
  void QueuePopTop();
  // Sifts `value` down from slot `i` (the slot is treated as a hole).
  void SiftDown(size_t i, const QueueEntry& value);
  // Drops every tombstone and re-heapifies (Floyd, O(n)). Cancellation-heavy
  // runs otherwise grow the heap several times past its live size, and sift
  // cost follows the total size, stale or not.
  void PurgeStaleEntries();

  uint32_t AcquireNode();
  void ReleaseNode(uint32_t index);
  void Dispatch(uint32_t index);
  bool HandleArmed(uint32_t node, uint32_t generation) const {
    return node < nodes_.size() && nodes_[node].generation == generation &&
           nodes_[node].armed;
  }
  void CancelEvent(uint32_t node, uint32_t generation);
  void NoteScheduled() {
    if (queue_.size() > max_pending_events_) {
      max_pending_events_ = queue_.size();
    }
  }

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t cancelled_events_ = 0;
  uint64_t cancelled_popped_ = 0;
  size_t max_pending_events_ = 0;
  size_t stale_entries_ = 0;  // Tombstones currently sitting in the heap.
  size_t free_count_ = 0;
  uint32_t free_head_ = kNoNode;
  uint32_t current_node_ = kNoNode;  // Node being dispatched right now.
  bool current_rearmed_ = false;
  bool stopped_ = false;
  std::deque<EventNode> nodes_;
  std::vector<QueueEntry> queue_;  // 4-ary min-heap ordered by EntryLess.
};

inline bool EventHandle::valid() const {
  return sim_ != nullptr && sim_->HandleArmed(node_, generation_);
}

inline void EventHandle::Cancel() {
  if (sim_ != nullptr) {
    sim_->CancelEvent(node_, generation_);
  }
}

// A one-shot timer whose deadline is cheap to move: re-arming to a later
// time or cancelling is a field write, not a heap operation. One pooled
// event rides in the queue; if it fires before the logical deadline it
// re-arms itself in place (RearmCurrent), and a cancelled timer's event
// simply dies out when popped. Built for TCP retransmission timers, which
// classically move forward on every ACK — the cancel+reschedule pattern
// would otherwise fill the heap with tombstones.
//
// `fn` runs only when the logical deadline is reached while armed. It must
// not destroy the timer (defer destruction with After(0, ...) instead).
class DeadlineTimer {
 public:
  DeadlineTimer(Simulator* sim, std::function<void()> fn)
      : sim_(sim), fn_(std::move(fn)) {}
  ~DeadlineTimer();

  DeadlineTimer(const DeadlineTimer&) = delete;
  DeadlineTimer& operator=(const DeadlineTimer&) = delete;

  // Arms the timer (or moves its deadline) to fire at `deadline`; clamped
  // to Now() if already past.
  void Schedule(TimeNs deadline);
  // Disarms. The in-queue event, if any, is skipped when it pops.
  void Cancel() { armed_ = false; }
  bool armed() const { return armed_; }

 private:
  void Fire();

  Simulator* sim_;
  std::function<void()> fn_;
  TimeNs deadline_ = 0;   // When fn_ should logically run.
  TimeNs event_at_ = 0;   // When the in-queue event actually pops.
  EventHandle event_;
  bool armed_ = false;
  bool event_live_ = false;
};

// Repeats a callback at a fixed period until cancelled. Used for control
// loops (slow-path congestion control every tau, utilization monitoring).
// Steady-state firing re-arms the same pooled event node in place, so a
// running task costs no allocations after Start().
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, TimeNs period, std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }
  void set_period(TimeNs period) { period_ = period; }

 private:
  void Fire();

  Simulator* sim_;
  TimeNs period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventHandle next_;
};

}  // namespace tas

#endif  // SRC_SIM_SIMULATOR_H_
