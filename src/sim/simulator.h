// Discrete-event simulation core.
//
// The paper evaluates TAS on a physical cluster plus ns-3 simulations; here
// every experiment runs on this event simulator. Events are (time, sequence,
// callback) triples in a binary heap; ties break by insertion order so runs
// are fully deterministic.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/util/logging.h"
#include "src/util/time.h"

namespace tas {

// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is still pending (not fired, not cancelled).
  bool valid() const { return cancel_ != nullptr && !*cancel_; }
  // Cancels the event if it has not fired yet.
  void Cancel() {
    if (cancel_ != nullptr) {
      *cancel_ = true;
    }
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancel) : cancel_(std::move(cancel)) {}
  std::shared_ptr<bool> cancel_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()).
  EventHandle At(TimeNs when, std::function<void()> fn);

  // Schedules `fn` to run `delay` after Now().
  EventHandle After(TimeNs delay, std::function<void()> fn) { return At(now_ + delay, std::move(fn)); }

  // Like At(), but a `when` that already passed runs at Now() instead of
  // failing. Fault schedules installed mid-run rely on this: events whose
  // time predates installation apply immediately, in schedule order.
  EventHandle AtClamped(TimeNs when, std::function<void()> fn) {
    return At(when < now_ ? now_ : when, std::move(fn));
  }

  // Runs events until the queue empties or `until` is reached (whichever is
  // first). Returns the number of events executed.
  uint64_t RunUntil(TimeNs until);

  // Runs until the event queue drains completely.
  uint64_t Run();

  // Stops the current Run/RunUntil after the in-flight event completes.
  void Stop() { stopped_ = true; }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }
  // High-water mark of pending_events() over the run (updated at schedule
  // time; a cheap dispatch-pressure metric for the trace layer).
  size_t max_pending_events() const { return max_pending_events_; }

 private:
  struct Event {
    TimeNs when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  size_t max_pending_events_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

// Repeats a callback at a fixed period until cancelled. Used for control
// loops (slow-path congestion control every tau, utilization monitoring).
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, TimeNs period, std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }
  void set_period(TimeNs period) { period_ = period; }

 private:
  void Fire();

  Simulator* sim_;
  TimeNs period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventHandle next_;
};

}  // namespace tas

#endif  // SRC_SIM_SIMULATOR_H_
