// Cross-island handoff message for the partitioned simulator (DESIGN.md §13).
//
// When a link's two endpoints live on different islands, the sender cannot
// schedule the delivery event on the receiver's heap directly (that heap
// belongs to another thread). Instead it posts a CrossArrival into the
// partition's per-(src,dst) mailbox; the receiver drains its mailboxes at the
// next epoch barrier and schedules one local delivery event per arrival,
// carrying the (sent, chain, src_island, seq) provenance into the heap key
// so the delivery sorts by scheduling provenance — identically for every
// thread count (Simulator::QueueEntry). The struct
// is deliberately flat — function pointers plus a small inline array of
// opaque item pointers — so src/sim stays independent of src/net: the link
// layer stuffs raw Packet*s into items[] and supplies deliver/dispose
// callbacks that re-wrap them on the far side.
#ifndef SRC_SIM_CROSS_ARRIVAL_H_
#define SRC_SIM_CROSS_ARRIVAL_H_

#include <cstdint>

#include "src/util/time.h"

namespace tas {

// Length of the scheduling-ancestry chain carried in heap sort keys (see
// Simulator::QueueEntry): sched itself plus this many ancestor sched times.
inline constexpr int kSchedChainLen = 3;

struct CrossArrival {
  // Matches Link's default burst cap; bursts larger than this are split into
  // consecutive-seq arrivals at the same timestamp, which the canonical drain
  // order keeps adjacent and in-order.
  static constexpr int kMaxItems = 16;

  TimeNs when = 0;        // Delivery time on the destination island.
  TimeNs sent = 0;        // Source-island clock at post time (provenance key).
  TimeNs chain[kSchedChainLen] = {};  // Posting event's ancestor sched times.
  uint32_t src_island = 0;
  uint64_t seq = 0;       // Per-source post order; filled in by SimPartition::Post.

  // Runs on the destination island's thread at `when`. Ownership of items[]
  // transfers to the callback.
  void (*deliver)(void* ctx, TimeNs when, void** items, int n) = nullptr;
  // Teardown path: frees items[] when the delivery event never fires (the
  // destination simulator is destroyed with the event still pending).
  void (*dispose)(void* ctx, void** items, int n) = nullptr;
  void* ctx = nullptr;

  int n = 0;
  void* items[kMaxItems] = {};
};

}  // namespace tas

#endif  // SRC_SIM_CROSS_ARRIVAL_H_
