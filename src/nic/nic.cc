#include "src/nic/nic.h"

#include <algorithm>

#include "src/net/packet_pool.h"
#include "src/trace/latency.h"

namespace tas {

SimNic::SimNic(Simulator* sim, HostPort* port, const NicConfig& config)
    : sim_(sim), tx_end_(port->end), ip_(port->ip), mac_(port->mac), config_(config),
      rng_(config.rng_seed) {
  TAS_CHECK(config.num_queues >= 1);
  TAS_CHECK(config.rss_table_entries >= 1);
  for (int i = 0; i < config.num_queues; ++i) {
    rings_.emplace_back(std::make_unique<Ring>());
  }
  redirection_.resize(config.rss_table_entries);
  entry_hits_.assign(config.rss_table_entries, 0);
  SetActiveQueues(config.num_queues);
  rx_pipeline_.AddAll(config.rx_faults);
  port->end.Attach(this);
}

int SimNic::RedirectionEntryFor(const Packet& pkt) const {
  const uint32_t hash =
      config_.symmetric_rss
          ? SymmetricFlowHash(pkt.ip.src, pkt.tcp.src_port, pkt.ip.dst, pkt.tcp.dst_port)
          : FlowHash(pkt.ip.src, pkt.tcp.src_port, pkt.ip.dst, pkt.tcp.dst_port);
  return static_cast<int>(hash % redirection_.size());
}

void SimNic::Receive(PacketPtr pkt) {
  ++rx_packets_;
  // Hardware checksum verification: frames a corruption impairment damaged
  // never reach the host (the byte-honest path, LinkConfig::
  // validate_wire_format, flips and rejects the actual wire bits instead).
  if (pkt->corrupt_flips > 0) {
    ++rx_checksum_drops_;
    if (LatencyTracer* lt = LatencyTracer::Current()) {
      lt->Abandon(pkt->lat_id);
    }
    return;
  }
  if (!rx_pipeline_.empty()) {
    const ImpairmentDecision decision = rx_pipeline_.Apply(*pkt, rng_);
    if (decision.drop) {
      ++rx_fault_drops_;
      if (LatencyTracer* lt = LatencyTracer::Current()) {
        lt->Abandon(pkt->lat_id);
      }
      return;
    }
    if (decision.duplicate) {
      DeliverToRing(PacketPool::Current().Clone(*pkt));
    }
    if (decision.extra_delay > 0) {
      sim_->After(decision.extra_delay, [this, pkt = std::move(pkt)]() mutable {
        DeliverToRing(std::move(pkt));
      });
      return;
    }
  }
  DeliverToRing(std::move(pkt));
}

void SimNic::DeliverToRing(PacketPtr pkt) {
  const size_t entry = static_cast<size_t>(RedirectionEntryFor(*pkt));
  ++entry_hits_[entry];
  Ring& ring = *rings_[static_cast<size_t>(redirection_[entry])];
  if (ring.pkts.size() >= config_.ring_entries) {
    ++rx_drops_;
    if (LatencyTracer* lt = LatencyTracer::Current()) {
      lt->Abandon(pkt->lat_id);
    }
    return;
  }
  const bool was_empty = ring.pkts.empty();
  ring.pkts.push_back(std::move(pkt));
  ring.depth_hw = std::max(ring.depth_hw, ring.pkts.size());
  if (was_empty && ring.notify) {
    ring.notify();
  }
}

void SimNic::Transmit(PacketPtr pkt) {
  ++tx_packets_;
  tx_end_.Send(std::move(pkt));
}

PacketPtr SimNic::PopRx(int queue) {
  Ring& ring = *rings_[static_cast<size_t>(queue)];
  if (ring.pkts.empty()) {
    return nullptr;
  }
  PacketPtr pkt = std::move(ring.pkts.front());
  ring.pkts.pop_front();
  if (LatencyTracer* lt = LatencyTracer::Current()) {
    lt->Stamp(pkt->lat_id, LatencyStage::kNicRxRing, sim_->Now());
  }
  return pkt;
}

size_t SimNic::PopRxBurst(int queue, PacketPtr* out, size_t max) {
  Ring& ring = *rings_[static_cast<size_t>(queue)];
  const size_t n = std::min(max, ring.pkts.size());
  LatencyTracer* lt = LatencyTracer::Current();
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::move(ring.pkts.front());
    ring.pkts.pop_front();
    if (lt != nullptr) {
      // Each burst member's ring wait ends at this gather instant; later
      // stamps charge the batch processing separately (kFpRx).
      lt->Stamp(out[i]->lat_id, LatencyStage::kNicRxRing, sim_->Now());
    }
  }
  return n;
}

void SimNic::TransmitBurst(PacketPtr* pkts, size_t count) {
  // Admit the whole ring's worth before the wire starts: the burst leaves as
  // one serialized train with one delivery event (DPDK tx-burst analogue).
  tx_end_.BeginAdmit();
  for (size_t i = 0; i < count; ++i) {
    Transmit(std::move(pkts[i]));
  }
  tx_end_.EndAdmit();
}

void SimNic::SetRxNotify(int queue, std::function<void()> fn) {
  rings_[static_cast<size_t>(queue)]->notify = std::move(fn);
}

void SimNic::SetRedirectionEntry(size_t entry, int queue) {
  TAS_CHECK(entry < redirection_.size());
  TAS_CHECK(queue >= 0 && queue < num_queues());
  redirection_[entry] = queue;
}

void SimNic::SetActiveQueues(int active_queues) {
  TAS_CHECK(active_queues >= 1 && active_queues <= num_queues());
  for (size_t i = 0; i < redirection_.size(); ++i) {
    redirection_[i] = static_cast<int>(i % static_cast<size_t>(active_queues));
  }
}

void SimNic::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  registry->AddCounter(prefix + ".rx_packets", &rx_packets_);
  registry->AddCounter(prefix + ".tx_packets", &tx_packets_);
  registry->AddCounter(prefix + ".rx_drops", &rx_drops_);
  registry->AddCounter(prefix + ".rx_checksum_drops", &rx_checksum_drops_);
  registry->AddCounter(prefix + ".rx_fault_drops", &rx_fault_drops_);
  for (int q = 0; q < num_queues(); ++q) {
    registry->AddGauge(prefix + ".ring." + std::to_string(q) + ".depth",
                       [this, q] { return static_cast<double>(RxQueueLen(q)); });
    registry->AddGauge(prefix + ".ring." + std::to_string(q) + ".depth_hw", [this, q] {
      return static_cast<double>(rings_[static_cast<size_t>(q)]->depth_hw);
    });
  }
  // Device-level RX fault pipeline totals. Function-backed (not pointer
  // views): FaultInjector adds and removes impairments mid-run, and removal
  // folds the retiree's stats into the pipeline's retired accumulator.
  registry->AddCounterFn(prefix + ".rx_fault.processed",
                         [this] { return rx_pipeline_.TotalProcessed(); });
  registry->AddCounterFn(prefix + ".rx_fault.dropped",
                         [this] { return rx_pipeline_.TotalDropped(); });
  registry->AddCounterFn(prefix + ".rx_fault.corrupted",
                         [this] { return rx_pipeline_.TotalCorrupted(); });
  registry->AddCounterFn(prefix + ".rx_fault.reordered",
                         [this] { return rx_pipeline_.TotalReordered(); });
  registry->AddCounterFn(prefix + ".rx_fault.duplicated",
                         [this] { return rx_pipeline_.TotalDuplicated(); });
}

}  // namespace tas
