// Simulated multi-queue NIC with receive-side scaling.
//
// Models what TAS needs from an XL710-class adapter (paper §3.4, §4):
// multiple RX descriptor rings, an RSS redirection table steering flows to
// rings by hash, drop-on-full rings, and an eventfd-like notification that
// wakes a blocked polling core when a packet lands on an empty ring. The
// slow path rewrites the redirection table during core scale up/down.
#ifndef SRC_NIC_NIC_H_
#define SRC_NIC_NIC_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/fault/impairment.h"
#include "src/net/link.h"
#include "src/net/topology.h"
#include "src/trace/metric_registry.h"

namespace tas {

struct NicConfig {
  int num_queues = 1;
  size_t ring_entries = 1024;  // Per-RX-queue capacity.
  // RSS redirection table size (XL710 uses 512, 82599 uses 128).
  size_t rss_table_entries = 128;
  // Use the symmetric hash so both directions of a flow hit one queue.
  bool symmetric_rss = true;
  // Device-level RX faults (stalls, PCIe drops): applied to each received
  // frame after the checksum check, before RSS ring placement.
  FaultConfig rx_faults;
  // Seed for the NIC's fault RNG (all NICs share the default deterministically).
  uint64_t rng_seed = 0x71C0;
};

class SimNic : public NetDevice {
 public:
  // Attaches to the host port's link end; all received frames flow into the
  // RSS-selected ring.
  SimNic(Simulator* sim, HostPort* port, const NicConfig& config);

  IpAddr ip() const { return ip_; }
  MacAddr mac() const { return mac_; }
  int num_queues() const { return static_cast<int>(rings_.size()); }

  // --- Wire side -----------------------------------------------------------
  void Receive(PacketPtr pkt) override;
  void Transmit(PacketPtr pkt);

  // --- Fault-injection hooks -------------------------------------------------
  // RX-side impairment pipeline (device stalls/drops); mutable mid-run.
  Impairment* AddRxImpairment(const ImpairmentSpec& spec) { return rx_pipeline_.Add(spec); }
  bool RemoveRxImpairment(const Impairment* impairment) {
    return rx_pipeline_.Remove(impairment);
  }
  ImpairmentPipeline& rx_pipeline() { return rx_pipeline_; }

  // --- Host side -----------------------------------------------------------
  PacketPtr PopRx(int queue);
  // DPDK rte_eth_rx_burst-style descriptor-array receive: moves up to `max`
  // packets from the ring into `out` and returns how many were taken.
  size_t PopRxBurst(int queue, PacketPtr* out, size_t max);
  // Transmit a descriptor array; entries are consumed (left null).
  void TransmitBurst(PacketPtr* pkts, size_t count);
  size_t RxQueueLen(int queue) const { return rings_[queue]->pkts.size(); }
  bool RxEmpty(int queue) const { return rings_[queue]->pkts.empty(); }

  // Notification fired when a packet is enqueued while the ring was empty
  // (models the eventfd wakeup for blocked fast-path cores).
  void SetRxNotify(int queue, std::function<void()> fn);

  // --- RSS control (trusted control plane) ----------------------------------
  void SetRedirectionEntry(size_t entry, int queue);
  // Spreads all table entries round-robin over queues [0, active_queues).
  void SetActiveQueues(int active_queues);
  int RedirectionEntryFor(const Packet& pkt) const;
  int RedirectionEntryQueue(int entry) const { return redirection_[static_cast<size_t>(entry)]; }
  size_t rss_entries() const { return redirection_.size(); }
  // Per-redirection-entry RX packet counts (the flow-group load signal the
  // §3.4 scaling controller's migration policy consumes).
  const std::vector<uint64_t>& entry_hits() const { return entry_hits_; }

  uint64_t rx_drops() const { return rx_drops_; }
  uint64_t rx_packets() const { return rx_packets_; }
  uint64_t tx_packets() const { return tx_packets_; }
  // Frames the (modeled) hardware checksum verification discarded because a
  // corruption impairment damaged them on the wire.
  uint64_t rx_checksum_drops() const { return rx_checksum_drops_; }
  // Frames discarded by the RX fault pipeline (device-level faults).
  uint64_t rx_fault_drops() const { return rx_fault_drops_; }

  // Registers device counters and per-ring occupancy gauges under "<prefix>.".
  void RegisterMetrics(MetricRegistry* registry, const std::string& prefix);

 private:
  struct Ring {
    std::deque<PacketPtr> pkts;
    std::function<void()> notify;
    size_t depth_hw = 0;  // High-water occupancy (latency-anatomy gauge).
  };

  void DeliverToRing(PacketPtr pkt);

  Simulator* sim_;
  LinkEnd tx_end_;
  IpAddr ip_;
  MacAddr mac_;
  NicConfig config_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<int> redirection_;      // Entry -> queue.
  std::vector<uint64_t> entry_hits_;  // Entry -> RX packets delivered.
  ImpairmentPipeline rx_pipeline_;
  Rng rng_;
  uint64_t rx_drops_ = 0;
  uint64_t rx_packets_ = 0;
  uint64_t tx_packets_ = 0;
  uint64_t rx_checksum_drops_ = 0;
  uint64_t rx_fault_drops_ = 0;
};

}  // namespace tas

#endif  // SRC_NIC_NIC_H_
