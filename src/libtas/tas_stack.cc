#include "src/libtas/tas_stack.h"

#include <algorithm>

namespace tas {

TasStack::TasStack(TasService* service, std::vector<Core*> app_cores,
                   const StackCostModel* api_costs)
    : service_(service), costs_(api_costs) {
  TAS_CHECK(!app_cores.empty());
  contexts_.reserve(app_cores.size());
  for (size_t i = 0; i < app_cores.size(); ++i) {
    Context ctx;
    ctx.queues = std::make_unique<AppContext>();
    ctx.core = app_cores[i];
    ctx.id = service_->RegisterContext(ctx.queues.get());
    contexts_.push_back(std::move(ctx));
  }
  for (size_t i = 0; i < contexts_.size(); ++i) {
    contexts_[i].queues->set_app_notify([this, i] { DrainEvents(i); });
  }
}

TasStack::~TasStack() = default;

TasStack::Conn* TasStack::GetConn(ConnId id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

const TasStack::Conn* TasStack::GetConn(ConnId id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

void TasStack::AtCoreHorizon(Core* core, std::function<void()> fn) {
  if (defer_pushes_) {
    deferred_pushes_.push_back(std::move(fn));
    return;
  }
  const TimeNs when = std::max(service_->sim()->Now(), core->busy_until());
  service_->sim()->At(when, std::move(fn));
}

void TasStack::Listen(uint16_t port) {
  // The listener's opaque carries the port; accepted flows are re-tagged
  // with their connection id in DispatchEvent (libTAS owns `opaque`).
  service_->Listen(port, port, contexts_[0].id);
}

ConnId TasStack::Connect(IpAddr dst_ip, uint16_t dst_port) {
  const size_t ctx_index = next_context_rr_++ % contexts_.size();
  // The flow id doubles as the connection id; the service tags fs.opaque
  // with it so every event identifies the connection directly.
  const FlowId flow = service_->Connect(dst_ip, dst_port, 0, contexts_[ctx_index].id);
  conns_[flow] = Conn{flow, ctx_index, 0, false, false};
  return flow;
}

size_t TasStack::Send(ConnId conn, const uint8_t* data, size_t len) {
  Conn* c = GetConn(conn);
  if (c == nullptr || c->tx_closed) {
    return 0;
  }
  Flow* flow = service_->GetFlow(c->flow);
  if (flow == nullptr || flow->cstate == ConnState::kFreed) {
    return 0;
  }
  Core* core = contexts_[c->context].core;
  const uint32_t written = flow->AppWriteTx(data, static_cast<uint32_t>(len));
  core->Charge(CpuModule::kSockets,
               costs_->tx_api + static_cast<uint64_t>(costs_->copy_cycles_per_byte *
                                                      static_cast<double>(written)));
  if (written > 0) {
    const FlowId flow_id = c->flow;
    const size_t ctx_index = c->context;
    AtCoreHorizon(core, [this, ctx_index, flow_id, written] {
      contexts_[ctx_index].queues->PushCommand(
          TxCommand{TxCommandType::kSend, flow_id, written});
    });
  }
  return written;
}

size_t TasStack::Recv(ConnId conn, uint8_t* data, size_t len) {
  Conn* c = GetConn(conn);
  if (c == nullptr) {
    return 0;
  }
  Flow* flow = service_->GetFlow(c->flow);
  if (flow == nullptr) {
    return 0;
  }
  Core* core = contexts_[c->context].core;
  const uint32_t mss = flow->mss;
  const bool was_closed = flow->RxFree() < mss;
  const uint32_t read = flow->AppReadRx(data, static_cast<uint32_t>(len));
  core->Charge(CpuModule::kSockets,
               static_cast<uint64_t>(costs_->copy_cycles_per_byte * static_cast<double>(read)));
  c->deliverable -= std::min<size_t>(c->deliverable, read);
  if (was_closed && flow->RxFree() >= mss && flow->FastPathEligible()) {
    const FlowId flow_id = c->flow;
    const size_t ctx_index = c->context;
    AtCoreHorizon(core, [this, ctx_index, flow_id] {
      contexts_[ctx_index].queues->PushCommand(
          TxCommand{TxCommandType::kWindowUpdate, flow_id, 0});
    });
  }
  return read;
}

size_t TasStack::RecvAvailable(ConnId conn) const {
  const Conn* c = GetConn(conn);
  if (c == nullptr) {
    return 0;
  }
  const Flow* flow = const_cast<TasService*>(service_)->GetFlow(c->flow);
  return flow == nullptr ? 0 : flow->RxUsed();
}

size_t TasStack::SendSpace(ConnId conn) const {
  const Conn* c = GetConn(conn);
  if (c == nullptr) {
    return 0;
  }
  const Flow* flow = const_cast<TasService*>(service_)->GetFlow(c->flow);
  return flow == nullptr ? 0 : flow->fs.tx_size - flow->TxQueued();
}

size_t TasStack::Splice(ConnId from, ConnId to, size_t len) {
  Conn* src = GetConn(from);
  Conn* dst = GetConn(to);
  if (src == nullptr || dst == nullptr || dst->tx_closed) {
    return 0;
  }
  Flow* fsrc = service_->GetFlow(src->flow);
  Flow* fdst = service_->GetFlow(dst->flow);
  if (fsrc == nullptr || fdst == nullptr || fdst->cstate == ConnState::kFreed) {
    return 0;
  }
  uint32_t n = static_cast<uint32_t>(
      std::min<size_t>(len, std::min<uint32_t>(fsrc->RxUsed(),
                                               fdst->fs.tx_size - fdst->TxQueued())));
  if (n == 0) {
    return 0;
  }
  // Both payload rings live in shared memory, so the stack moves descriptors
  // plus one in-stack copy — no per-byte crossing of the app boundary. The
  // simulation still memcpys through a bounce buffer; the *modeled* cost is
  // the splice charge below instead of two copy_cycles_per_byte passes.
  if (splice_buf_.size() < n) {
    splice_buf_.resize(n);
  }
  const uint32_t mss = fsrc->mss;
  const bool was_closed = fsrc->RxFree() < mss;
  fsrc->AppReadRx(splice_buf_.data(), n);
  fdst->AppWriteTx(splice_buf_.data(), n);
  src->deliverable -= std::min<size_t>(src->deliverable, n);
  Core* core = contexts_[src->context].core;
  core->Charge(CpuModule::kSockets,
               costs_->tx_api + static_cast<uint64_t>(costs_->splice_cycles_per_byte *
                                                      static_cast<double>(n)));
  if (was_closed && fsrc->RxFree() >= mss && fsrc->FastPathEligible()) {
    const FlowId src_flow = src->flow;
    const size_t src_ctx = src->context;
    AtCoreHorizon(core, [this, src_ctx, src_flow] {
      contexts_[src_ctx].queues->PushCommand(
          TxCommand{TxCommandType::kWindowUpdate, src_flow, 0});
    });
  }
  const FlowId dst_flow = dst->flow;
  const size_t dst_ctx = dst->context;
  AtCoreHorizon(core, [this, dst_ctx, dst_flow, n] {
    contexts_[dst_ctx].queues->PushCommand(TxCommand{TxCommandType::kSend, dst_flow, n});
  });
  return n;
}

void TasStack::Close(ConnId conn) {
  Conn* c = GetConn(conn);
  if (c == nullptr || c->tx_closed) {
    return;
  }
  c->tx_closed = true;
  contexts_[c->context].core->Charge(CpuModule::kSockets, 200);
  service_->Close(c->flow);
}

void TasStack::ChargeApp(ConnId conn, uint64_t cycles) {
  Conn* c = GetConn(conn);
  const size_t ctx = c == nullptr ? 0 : c->context;
  contexts_[ctx].core->Charge(
      CpuModule::kApp,
      static_cast<uint64_t>(static_cast<double>(cycles) * costs_->app_interference_factor));
}

void TasStack::DrainEvents(size_t context_index) {
  Context& ctx = contexts_[context_index];
  if (ctx.draining) {
    return;
  }
  // One doorbell drains a batch of events (mTCP-style batched delivery).
  // Each event is still one poll iteration on the app thread — epoll/recv in
  // sockets mode, a direct queue read in low-level mode — so every event is
  // charged individually: data events pay the full receive-API cost,
  // bookkeeping events (tx-done, conn control) a cheap queue read. The
  // batch then retires with a single aggregated dispatch.
  const size_t budget =
      static_cast<size_t>(std::max(1, service_->config().app_event_batch));
  ctx.batch.clear();
  TimeNs done = 0;
  while (ctx.batch.size() < budget) {
    auto event = ctx.queues->rx().Pop();
    if (!event) {
      break;
    }
    const uint64_t cycles = event->type == AppEventType::kRxData ? costs_->rx_api : 60;
    done = ctx.core->Charge(CpuModule::kSockets, cycles);
    ctx.batch.push_back(*event);
  }
  if (ctx.batch.empty()) {
    return;
  }
  ctx.draining = true;
  service_->sim()->At(done, [this, context_index] {
    Context& c = contexts_[context_index];
    // draining stays set through dispatch: handlers may push commands whose
    // completion notifies this context again, and a nested drain would
    // clobber the batch being iterated.
    defer_pushes_ = true;
    for (const AppEvent& e : c.batch) {
      DispatchEvent(context_index, e);
    }
    defer_pushes_ = false;
    if (!deferred_pushes_.empty()) {
      // All callbacks above charged c.core; their queue pushes ride one
      // aggregated event at the batch's final work horizon instead of one
      // each (each push would have been at or before this horizon).
      const TimeNs when =
          std::max(service_->sim()->Now(), c.core->busy_until());
      service_->sim()->At(when, [fns = std::move(deferred_pushes_)] {
        for (const auto& fn : fns) {
          fn();
        }
      });
      deferred_pushes_ = std::vector<std::function<void()>>();
    }
    c.draining = false;
    DrainEvents(context_index);
  });
}

void TasStack::DispatchEvent(size_t /*context_index*/, const AppEvent& event) {
  switch (event.type) {
    case AppEventType::kRxData: {
      Conn* c = GetConn(event.opaque);
      if (c != nullptr && handler_ != nullptr) {
        c->deliverable += event.bytes;
        handler_->OnData(event.opaque, event.bytes);
      }
      return;
    }
    case AppEventType::kTxDone: {
      if (GetConn(event.opaque) != nullptr && handler_ != nullptr) {
        handler_->OnSendSpace(event.opaque, event.bytes);
      }
      return;
    }
    case AppEventType::kConnOpened: {
      if (handler_ != nullptr) {
        handler_->OnConnected(event.opaque, true);
      }
      return;
    }
    case AppEventType::kConnOpenFailed: {
      if (handler_ != nullptr) {
        handler_->OnConnected(event.opaque, false);
      }
      conns_.erase(event.opaque);
      return;
    }
    case AppEventType::kConnFin: {
      Conn* c = GetConn(event.opaque);
      if (c == nullptr || c->rx_closed) {
        return;
      }
      c->rx_closed = true;
      // Delivered even after a local Close() — like read() returning EOF on
      // a shutdown(WR) socket — so an actively half-closing app still learns
      // when the peer finishes its direction.
      if (handler_ != nullptr) {
        handler_->OnRemoteClosed(event.opaque);
      }
      return;
    }
    case AppEventType::kConnClosed: {
      Conn* c = GetConn(event.opaque);
      if (c == nullptr) {
        return;
      }
      // Abortive teardown (reset, retry exhaustion) can land here without a
      // preceding kConnFin; surface the half-close first so handlers always
      // observe OnRemoteClosed before OnClosed on a peer-initiated death.
      if (!c->rx_closed && handler_ != nullptr) {
        c->rx_closed = true;
        handler_->OnRemoteClosed(event.opaque);
        c = GetConn(event.opaque);
        if (c == nullptr) {
          return;
        }
      }
      if (handler_ != nullptr) {
        handler_->OnClosed(event.opaque);
      }
      conns_.erase(event.opaque);
      return;
    }
    case AppEventType::kAcceptable: {
      // event.opaque = listening port, event.bytes = flow id.
      const FlowId flow_id = event.bytes;
      Flow* flow = service_->GetFlow(flow_id);
      if (flow == nullptr || flow->cstate == ConnState::kFreed) {
        return;
      }
      const size_t ctx_index = next_context_rr_++ % contexts_.size();
      conns_[flow_id] = Conn{flow_id, ctx_index, 0, false, false};
      // Route future events to the context (and app core) owning this conn;
      // the event identity (fs.opaque == flow id) never changes.
      flow->fs.context = contexts_[ctx_index].id;
      if (handler_ != nullptr) {
        handler_->OnAccepted(flow_id, static_cast<uint16_t>(event.opaque));
      }
      return;
    }
  }
}

}  // namespace tas
