// libTAS: the untrusted per-application user-space stack (paper §3.3).
//
// Implements the Stack interface on top of TAS context queues and per-flow
// payload buffers. Two flavours, selected by the API cost model:
//  * POSIX sockets emulation ("TAS SO"): the default, applications remain
//    unmodified; costs from TasSocketsCostModel().
//  * low-level context-queue API ("TAS LL"): events pass straight from the
//    context RX queue to the application; costs from TasLowLevelCostModel().
//
// One context is allocated per application core ("typically stacks allocate
// one context per application thread for scalability", §3.3); connections
// are bound to the context — and therefore the application core — that
// created or accepted them.
#ifndef SRC_LIBTAS_TAS_STACK_H_
#define SRC_LIBTAS_TAS_STACK_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/baseline/stack_iface.h"
#include "src/tas/service.h"

namespace tas {

class TasStack : public Stack {
 public:
  // `app_cores` are the CPU cores application callbacks execute on (owned by
  // the caller). `api_costs` selects sockets vs low-level pricing.
  TasStack(TasService* service, std::vector<Core*> app_cores,
           const StackCostModel* api_costs = &TasSocketsCostModel());
  ~TasStack() override;

  void SetHandler(AppHandler* handler) override { handler_ = handler; }
  void Listen(uint16_t port) override;
  ConnId Connect(IpAddr dst_ip, uint16_t dst_port) override;
  size_t Send(ConnId conn, const uint8_t* data, size_t len) override;
  size_t Recv(ConnId conn, uint8_t* data, size_t len) override;
  size_t RecvAvailable(ConnId conn) const override;
  size_t SendSpace(ConnId conn) const override;
  size_t Splice(ConnId from, ConnId to, size_t len) override;
  void Close(ConnId conn) override;
  void ChargeApp(ConnId conn, uint64_t cycles) override;
  IpAddr local_ip() const override { return service_->local_ip(); }

  TasService* service() { return service_; }
  size_t num_contexts() const { return contexts_.size(); }

 private:
  struct Conn {
    FlowId flow = kInvalidFlow;
    size_t context = 0;       // Index into contexts_ == app core index.
    size_t deliverable = 0;   // Bytes announced via kRxData, not yet Recv'd.
    // Half-close is per direction: tx_closed when the app called Close()
    // (no more Sends), rx_closed when the peer's FIN arrived (no more data).
    // The entry lives until the terminal kConnClosed event.
    bool tx_closed = false;
    bool rx_closed = false;
  };

  struct Context {
    std::unique_ptr<AppContext> queues;
    uint16_t id = 0;       // TAS-side context id.
    Core* core = nullptr;  // App core this context's thread runs on.
    bool draining = false;
    // Events gathered for the current aggregated dispatch; keeps its
    // capacity across drains.
    std::vector<AppEvent> batch;
  };

  void DrainEvents(size_t context_index);
  void DispatchEvent(size_t context_index, const AppEvent& event);
  Conn* GetConn(ConnId id);
  const Conn* GetConn(ConnId id) const;
  // Schedules `fn` at the app core's current work horizon (post-charge).
  // During a batched event dispatch the pushes are deferred instead and
  // flushed as ONE event at the batch's final horizon (the app thread rings
  // its doorbells once per wakeup, not once per callback).
  void AtCoreHorizon(Core* core, std::function<void()> fn);

  TasService* service_;
  const StackCostModel* costs_;
  AppHandler* handler_ = nullptr;
  std::vector<Context> contexts_;
  std::unordered_map<ConnId, Conn> conns_;  // Keyed by flow id.
  size_t next_context_rr_ = 0;  // Round-robin for accepted/united conns.
  // AtCoreHorizon deferral state; only set inside a DrainEvents dispatch
  // continuation (all callbacks there run on one context's core).
  bool defer_pushes_ = false;
  std::vector<std::function<void()>> deferred_pushes_;
  std::vector<uint8_t> splice_buf_;  // Ring-to-ring bounce storage for Splice.
};

}  // namespace tas

#endif  // SRC_LIBTAS_TAS_STACK_H_
