#include "src/cpu/core.h"

#include <algorithm>

namespace tas {

const char* CpuModuleName(CpuModule m) {
  switch (m) {
    case CpuModule::kDriver:
      return "Driver";
    case CpuModule::kIp:
      return "IP";
    case CpuModule::kTcp:
      return "TCP";
    case CpuModule::kSockets:
      return "Sockets/IX";
    case CpuModule::kOther:
      return "Other";
    case CpuModule::kApp:
      return "App";
  }
  return "?";
}

Core::Core(Simulator* sim, int id, double ghz) : sim_(sim), id_(id), ghz_(ghz) {
  TAS_CHECK(ghz > 0);
}

TimeNs Core::Charge(CpuModule module, uint64_t cycles) {
  const TimeNs start = std::max(sim_->Now(), busy_until_);
  const TimeNs duration = CyclesToTime(cycles);
  busy_until_ = start + duration;
  busy_ns_ += duration;
  cycles_[static_cast<size_t>(module)] += cycles;
  if (span_listener_) {
    span_listener_(module, start, busy_until_);
  }
  return busy_until_;
}

void Core::Account(CpuModule module, uint64_t cycles) {
  cycles_[static_cast<size_t>(module)] += cycles;
}

double Core::Utilization(TimeNs busy_ns_at_start, TimeNs window_start, TimeNs now) const {
  const TimeNs window = now - window_start;
  if (window <= 0) {
    return 0;
  }
  const TimeNs busy = busy_ns_ - busy_ns_at_start;
  return std::clamp(static_cast<double>(busy) / static_cast<double>(window), 0.0, 1.0);
}

uint64_t Core::total_cycles() const {
  uint64_t total = 0;
  for (uint64_t c : cycles_) {
    total += c;
  }
  return total;
}

void Core::ResetAccounting() {
  cycles_.fill(0);
  busy_ns_ = 0;
}

}  // namespace tas
