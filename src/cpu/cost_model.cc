#include "src/cpu/cost_model.h"

#include <algorithm>

namespace tas {

uint64_t CacheModel::ExtraCyclesPerPacket(uint64_t connections) const {
  if (per_connection_state_bytes <= 0 || state_lines_per_packet <= 0) {
    return 0;
  }
  const double footprint = static_cast<double>(connections) * per_connection_state_bytes;
  if (footprint <= effective_cache_bytes) {
    return 0;
  }
  const double miss_prob = 1.0 - effective_cache_bytes / footprint;
  return static_cast<uint64_t>(state_lines_per_packet * miss_penalty_cycles * miss_prob);
}

uint64_t StackCostModel::RequestCycles() const {
  return rx_driver + rx_ip + rx_tcp + tx_driver + tx_ip + tx_tcp + rx_api + tx_api +
         other_per_request;
}

const StackCostModel& LinuxCostModel() {
  static const StackCostModel kModel = [] {
    StackCostModel m;
    m.rx_driver = 400;
    m.tx_driver = 330;
    m.rx_ip = 800;
    m.tx_ip = 730;
    m.rx_tcp = 2100;
    m.tx_tcp = 1820;
    m.rx_api = 4200;  // epoll_wait + recv, incl. syscall crossings.
    m.tx_api = 3800;  // send, incl. syscall crossing and skb setup.
    m.other_per_request = 1500;
    m.copy_cycles_per_byte = 0.5;  // Two copies: wire<->kernel<->user.
    m.connection_setup = 12000;
    m.connection_teardown = 8000;
    m.app_interference_factor = 1.57;  // Table 1: app 1070 vs TAS 680.
    m.cache.per_connection_state_bytes = 2048;
    m.cache.state_lines_per_packet = 40;
    return m;
  }();
  return kModel;
}

const StackCostModel& IxCostModel() {
  static const StackCostModel kModel = [] {
    StackCostModel m;
    m.rx_driver = 30;
    m.tx_driver = 20;
    m.rx_ip = 60;
    m.tx_ip = 60;
    m.rx_tcp = 550;
    m.tx_tcp = 500;
    m.rx_api = 400;  // libevent-style event delivery, no syscall.
    m.tx_api = 360;
    m.other_per_request = 0;
    m.copy_cycles_per_byte = 0.25;
    m.connection_setup = 9000;
    m.connection_teardown = 6000;
    m.app_interference_factor = 1.12;  // Table 1: app 760 vs TAS 680.
    m.cache.per_connection_state_bytes = 1024;
    m.cache.state_lines_per_packet = 28;
    return m;
  }();
  return kModel;
}

const StackCostModel& TasSocketsCostModel() {
  static const StackCostModel kModel = [] {
    StackCostModel m;
    m.rx_driver = 50;
    m.tx_driver = 40;
    m.rx_ip = 0;  // Folded into the fast-path TCP pipeline.
    m.tx_ip = 0;
    m.rx_tcp = 430;
    m.tx_tcp = 380;
    m.rx_api = 330;  // libTAS sockets emulation (Table 1: 620/request).
    m.tx_api = 290;
    m.other_per_request = 0;
    m.copy_cycles_per_byte = 0.25;
    // Connection setup bounces app <-> slow path <-> fast path several times
    // (paper §5.1 short-lived connections: TAS loses below ~4 RPCs/conn).
    // Charged half on each endpoint's slow path.
    m.connection_setup = 90000;
    m.connection_teardown = 60000;
    m.app_interference_factor = 1.0;  // Fast path is isolated from the app.
    // 102 B flow state + context queue slots + buffer descriptors.
    m.cache.per_connection_state_bytes = 256;
    m.cache.state_lines_per_packet = 2;
    m.cache.effective_cache_bytes = 16.0 * 1024 * 1024;
    return m;
  }();
  return kModel;
}

const StackCostModel& TasLowLevelCostModel() {
  static const StackCostModel kModel = [] {
    StackCostModel m = TasSocketsCostModel();
    // Table 2: frontend overhead drops to 168 cycles/request with the
    // low-level interface.
    m.rx_api = 90;
    m.tx_api = 78;
    return m;
  }();
  return kModel;
}

const StackCostModel& MtcpCostModel() {
  static const StackCostModel kModel = [] {
    StackCostModel m;
    m.rx_driver = 40;
    m.tx_driver = 30;
    m.rx_ip = 120;
    m.tx_ip = 100;
    m.rx_tcp = 900;
    m.tx_tcp = 800;
    m.rx_api = 500;  // mTCP API with inter-thread queueing.
    m.tx_api = 450;
    m.other_per_request = 300;
    m.copy_cycles_per_byte = 0.25;
    m.connection_setup = 14000;
    m.connection_teardown = 9000;
    m.app_interference_factor = 1.05;  // Stack on its own core.
    m.cache.per_connection_state_bytes = 1024;
    m.cache.state_lines_per_packet = 30;
    return m;
  }();
  return kModel;
}

const StackCostModel& MinimalCostModel() {
  static const StackCostModel kModel = [] {
    StackCostModel m;
    m.rx_driver = 10;
    m.tx_driver = 10;
    m.rx_tcp = 20;
    m.tx_tcp = 20;
    m.rx_api = 10;
    m.tx_api = 10;
    m.connection_setup = 100;
    m.connection_teardown = 100;
    return m;
  }();
  return kModel;
}

}  // namespace tas
