// Per-stack CPU cost models, calibrated against the paper's measurements.
//
// Paper Table 1 (cycles per KV request, 8-core server, 32K connections):
//
//              Linux     IX      TAS
//   Driver      730       50      90
//   IP         1530      120       0
//   TCP        3920     1050     810
//   Sockets/IX 8000      760     620
//   Other      1500        0       0
//   App        1070      760     680
//   Total     16750     2730    2570
//
// A "request" is one received request packet plus one transmitted response
// packet plus the socket-layer receive and send operations, so the per-packet
// and per-operation constants below are calibrated to sum to the table.
//
// The connection-scalability effect (paper Fig 4: at 64K connections IX loses
// up to 60% of peak throughput, Linux 40%, TAS 7%) is modeled as extra TCP
// cycles per packet from last-level-cache misses on per-connection state:
//
//   footprint   = connections * per_connection_state_bytes
//   miss_prob   = max(0, 1 - effective_cache_bytes / footprint)
//   extra       = state_lines_per_packet * miss_penalty_cycles * miss_prob
//
// TAS keeps 102 bytes of fast-path state per flow (Table 3), so its
// footprint stays cache-resident at 64K connections while Linux (~2 KB
// scattered state) and IX (~1 KB) thrash.
#ifndef SRC_CPU_COST_MODEL_H_
#define SRC_CPU_COST_MODEL_H_

#include <cstdint>

namespace tas {

struct CacheModel {
  double per_connection_state_bytes = 0;
  double effective_cache_bytes = 33.0 * 1024 * 1024;  // Paper server: 33 MB aggregate.
  double state_lines_per_packet = 0;
  double miss_penalty_cycles = 150;

  // Extra cycles charged per data packet at the given connection count.
  uint64_t ExtraCyclesPerPacket(uint64_t connections) const;
};

// Costs for one stack, in CPU cycles.
struct StackCostModel {
  // Per received data packet.
  uint64_t rx_driver = 0;
  uint64_t rx_ip = 0;
  uint64_t rx_tcp = 0;
  // Per transmitted data packet (including segmentation and header build).
  uint64_t tx_driver = 0;
  uint64_t tx_ip = 0;
  uint64_t tx_tcp = 0;
  // Per pure-ACK transmission without payload work (window-update ACKs).
  // Defaults to the TAS fast-path measurement so Table 1 ablations cover it;
  // none of the calibrated models override it.
  uint64_t tx_ack_cycles = 120;
  // Per application receive operation (epoll wakeup + recv or equivalent).
  uint64_t rx_api = 0;
  // Per application send operation.
  uint64_t tx_api = 0;
  // Per request, unattributable glue (softirq scheduling, skb management...).
  uint64_t other_per_request = 0;
  // Per-byte copy cost (both directions), cycles per byte. Models memory
  // copying dominating large-RPC cost (paper Fig 6 discussion).
  double copy_cycles_per_byte = 0;
  // Per-byte cost of an in-stack splice (Stack::Splice): payload moves
  // between two connections' buffers without crossing the app boundary, so
  // only descriptor/ring bookkeeping is charged — no user-space copy.
  double splice_cycles_per_byte = 0.05;
  // Connection setup/teardown handling (slow path / kernel).
  uint64_t connection_setup = 0;
  uint64_t connection_teardown = 0;
  // Multiplier on application cycles from sharing cores/caches with the
  // stack (1.0 = no interference; Linux > 1 models cache/TLB pollution).
  double app_interference_factor = 1.0;

  CacheModel cache;

  // Convenience: total stack cycles for a one-packet-in/one-packet-out
  // request, excluding app cycles and cache effects.
  uint64_t RequestCycles() const;
};

// Calibrated models. Each returns the same struct every call.
const StackCostModel& LinuxCostModel();
const StackCostModel& IxCostModel();
// TAS fast-path packet costs plus libTAS POSIX sockets layer.
const StackCostModel& TasSocketsCostModel();
// TAS with the low-level context-queue API (paper "TAS LL").
const StackCostModel& TasLowLevelCostModel();
// mTCP: kernel-bypass with batching; costs between Linux and IX.
const StackCostModel& MtcpCostModel();
// Near-zero costs for protocol-only simulations (the congestion-control
// experiments, Figs 11-13, where CPU time is not the quantity under test).
const StackCostModel& MinimalCostModel();

}  // namespace tas

#endif  // SRC_CPU_COST_MODEL_H_
