// Simulated CPU cores with cycle accounting.
//
// Every piece of stack and application work charges cycles on a core. A core
// serializes its work: a charge starts no earlier than the core's previous
// work finished, so saturation, queueing delay and core sharing fall out
// naturally. Charges are tagged with the module breakdown the paper uses in
// Table 1 (Driver / IP / TCP / Sockets / Other / App) so the table can be
// regenerated from measured simulation cycles.
#ifndef SRC_CPU_CORE_H_
#define SRC_CPU_CORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace tas {

enum class CpuModule : int {
  kDriver = 0,
  kIp = 1,
  kTcp = 2,
  kSockets = 3,
  kOther = 4,
  kApp = 5,
};
inline constexpr int kNumCpuModules = 6;

const char* CpuModuleName(CpuModule m);

class Core {
 public:
  Core(Simulator* sim, int id, double ghz);

  int id() const { return id_; }
  double ghz() const { return ghz_; }

  TimeNs CyclesToTime(uint64_t cycles) const { return CyclesToNs(cycles, ghz_); }

  // Charges `cycles` of serialized work: the work starts at
  // max(now, busy_until) and the function returns its completion time.
  // Callers schedule downstream effects (packet send, app notification) at
  // the returned time.
  TimeNs Charge(CpuModule module, uint64_t cycles);

  // Accounts cycles without occupying the core timeline (e.g. work already
  // covered by an enclosing Charge but attributed to a different module).
  void Account(CpuModule module, uint64_t cycles);

  // Time at which previously charged work completes.
  TimeNs busy_until() const { return busy_until_; }
  bool IdleAt(TimeNs t) const { return busy_until_ <= t; }

  // Cumulative busy nanoseconds (sum of charged durations).
  TimeNs busy_ns() const { return busy_ns_; }

  // Busy fraction over (window_start, now], using the caller's snapshot of
  // busy_ns() at window_start.
  double Utilization(TimeNs busy_ns_at_start, TimeNs window_start, TimeNs now) const;

  uint64_t cycles(CpuModule module) const {
    return cycles_[static_cast<size_t>(module)];
  }
  uint64_t total_cycles() const;
  void ResetAccounting();

  // Observer for the trace layer: called once per Charge with the busy
  // interval [start, end) it occupied. Unset (the default) costs one branch.
  using SpanListener = std::function<void(CpuModule, TimeNs start, TimeNs end)>;
  void set_span_listener(SpanListener listener) { span_listener_ = std::move(listener); }

 private:
  Simulator* sim_;
  int id_;
  double ghz_;
  TimeNs busy_until_ = 0;
  TimeNs busy_ns_ = 0;
  std::array<uint64_t, kNumCpuModules> cycles_ = {};
  SpanListener span_listener_;
};

}  // namespace tas

#endif  // SRC_CPU_CORE_H_
