// Fault-injection impairments: a pluggable pipeline of network misbehaviors
// (Bernoulli loss, Gilbert-Elliott burst loss, corruption, reordering,
// duplication, administrative link down) applied at Link egress and SimNic RX.
//
// Everything is deterministic: impairments draw from the Rng their owner
// passes in (the Link's / NIC's seeded generator), so the same seed and fault
// schedule reproduce the same packet-level outcome byte-for-byte. Impairments
// never schedule events themselves — they return a decision (drop / extra
// delay / duplicate) and the owning device, which holds the Simulator,
// executes it. That keeps this module below src/net in the dependency order
// so Link and SimNic can embed pipelines directly.
#ifndef SRC_FAULT_IMPAIRMENT_H_
#define SRC_FAULT_IMPAIRMENT_H_

#include <memory>
#include <vector>

#include "src/net/packet.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace tas {

enum class ImpairmentKind {
  kBernoulliLoss,   // Drop each packet independently with probability `rate`.
  kGilbertElliott,  // Two-state Markov (good/bad) burst loss.
  kCorrupt,         // Flip wire bits; the checksum path must reject the frame.
  kReorder,         // Hold a packet back so later packets overtake it.
  kDuplicate,       // Deliver an extra copy.
  kLinkDown,        // Administrative gate: drop everything while down.
};

const char* ImpairmentKindName(ImpairmentKind kind);

// Declarative description of one impairment; what harness scenario configs
// carry (LinkConfig::faults, NicConfig::rx_faults) and what the FaultInjector
// instantiates for timed fault windows.
struct ImpairmentSpec {
  ImpairmentKind kind = ImpairmentKind::kBernoulliLoss;
  // Per-packet probability of the effect (loss / corruption / reorder /
  // duplication). Ignored by kGilbertElliott and kLinkDown.
  double rate = 0.0;

  // Gilbert-Elliott parameters (per-packet transition probabilities).
  double ge_enter_bad = 0.0;  // P(good -> bad).
  double ge_exit_bad = 0.0;   // P(bad -> good).
  double ge_loss_good = 0.0;  // Loss probability while in the good state.
  double ge_loss_bad = 1.0;   // Loss probability while in the bad state.

  // kCorrupt: wire bits flipped per corrupted packet.
  uint32_t corrupt_bits = 1;

  // kReorder: extra delay drawn uniformly from [min, max].
  TimeNs reorder_delay_min = Us(50);
  TimeNs reorder_delay_max = Us(200);

  // kLinkDown: initial gate state.
  bool initially_down = true;
};

// Spec builders, so call sites read like the fault they inject.
ImpairmentSpec BernoulliLoss(double rate);
ImpairmentSpec GilbertElliottLoss(double enter_bad, double exit_bad, double loss_bad,
                                  double loss_good = 0.0);
ImpairmentSpec Corruption(double rate, uint32_t bits = 1);
ImpairmentSpec Reordering(double rate, TimeNs delay_min, TimeNs delay_max);
ImpairmentSpec Duplication(double rate);

// An ordered set of impairments for one attachment point (one link direction,
// one NIC RX side). Scenario configs embed this.
struct FaultConfig {
  std::vector<ImpairmentSpec> impairments;

  bool enabled() const { return !impairments.empty(); }
  FaultConfig& Add(const ImpairmentSpec& spec) {
    impairments.push_back(spec);
    return *this;
  }
};

struct ImpairmentStats {
  uint64_t processed = 0;   // Packets this impairment saw.
  uint64_t dropped = 0;     // Packets it discarded.
  uint64_t corrupted = 0;   // Packets it marked for wire-bit corruption.
  uint64_t reordered = 0;   // Packets it held back.
  uint64_t duplicated = 0;  // Packets it cloned.
};

// What the owning device must do with the packet after the pipeline ran.
struct ImpairmentDecision {
  bool drop = false;
  bool duplicate = false;
  TimeNs extra_delay = 0;
  // Which impairment dropped the packet (for stats attribution); null if none.
  const class Impairment* dropped_by = nullptr;
};

class Impairment {
 public:
  virtual ~Impairment() = default;

  // Inspects (and for corruption, marks) the packet, folding its effect into
  // `decision`. Must not be called after `decision.drop` is set.
  virtual void Apply(Packet& pkt, Rng& rng, ImpairmentDecision& decision) = 0;

  ImpairmentKind kind() const { return kind_; }
  const char* Name() const { return ImpairmentKindName(kind_); }
  const ImpairmentStats& stats() const { return stats_; }

 protected:
  explicit Impairment(ImpairmentKind kind) : kind_(kind) {}
  ImpairmentStats stats_;

 private:
  ImpairmentKind kind_;
};

// The administrative up/down gate is the one impairment callers toggle at
// runtime (link flaps), so its concrete type is public.
class LinkDownImpairment : public Impairment {
 public:
  explicit LinkDownImpairment(bool down = true)
      : Impairment(ImpairmentKind::kLinkDown), down_(down) {}

  void Apply(Packet& pkt, Rng& rng, ImpairmentDecision& decision) override;
  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

 private:
  bool down_ = true;
};

std::unique_ptr<Impairment> MakeImpairment(const ImpairmentSpec& spec);

// Runs packets through its impairments in order. A drop short-circuits the
// walk (later impairments never see a packet an earlier element discarded,
// as on a real chain of lossy components); extra delays accumulate and
// duplication latches.
class ImpairmentPipeline {
 public:
  ImpairmentPipeline() = default;
  ImpairmentPipeline(const ImpairmentPipeline&) = delete;
  ImpairmentPipeline& operator=(const ImpairmentPipeline&) = delete;

  // Takes ownership; returns a non-owning handle usable with Remove().
  Impairment* Add(std::unique_ptr<Impairment> impairment);
  Impairment* Add(const ImpairmentSpec& spec) { return Add(MakeImpairment(spec)); }
  // Gates belong ahead of probabilistic elements so their stats only count
  // packets that were actually offered to the wire.
  Impairment* AddFront(std::unique_ptr<Impairment> impairment);
  void AddAll(const FaultConfig& config);
  // Removes (and destroys) the impairment; returns false if not present.
  // Its stats are folded into the retired accumulator first, so pipeline
  // totals keep counting it (FaultInjector windows remove impairments
  // mid-run; metric counters must stay monotone).
  bool Remove(const Impairment* impairment);
  void Clear() { impairments_.clear(); }

  bool empty() const { return impairments_.empty(); }
  size_t size() const { return impairments_.size(); }
  Impairment* at(size_t i) { return impairments_[i].get(); }
  const Impairment* at(size_t i) const { return impairments_[i].get(); }

  ImpairmentDecision Apply(Packet& pkt, Rng& rng);

  // Totals across all impairments, live and retired (link-down gates
  // included).
  uint64_t TotalProcessed() const;
  uint64_t TotalDropped() const;
  uint64_t TotalCorrupted() const;
  uint64_t TotalReordered() const;
  uint64_t TotalDuplicated() const;

 private:
  std::vector<std::unique_ptr<Impairment>> impairments_;
  ImpairmentStats retired_;  // Summed stats of removed impairments.
};

}  // namespace tas

#endif  // SRC_FAULT_IMPAIRMENT_H_
