#include "src/fault/impairment.h"

#include "src/util/logging.h"

namespace tas {

const char* ImpairmentKindName(ImpairmentKind kind) {
  switch (kind) {
    case ImpairmentKind::kBernoulliLoss:
      return "bernoulli-loss";
    case ImpairmentKind::kGilbertElliott:
      return "gilbert-elliott";
    case ImpairmentKind::kCorrupt:
      return "corrupt";
    case ImpairmentKind::kReorder:
      return "reorder";
    case ImpairmentKind::kDuplicate:
      return "duplicate";
    case ImpairmentKind::kLinkDown:
      return "link-down";
  }
  return "?";
}

ImpairmentSpec BernoulliLoss(double rate) {
  ImpairmentSpec spec;
  spec.kind = ImpairmentKind::kBernoulliLoss;
  spec.rate = rate;
  return spec;
}

ImpairmentSpec GilbertElliottLoss(double enter_bad, double exit_bad, double loss_bad,
                                  double loss_good) {
  ImpairmentSpec spec;
  spec.kind = ImpairmentKind::kGilbertElliott;
  spec.ge_enter_bad = enter_bad;
  spec.ge_exit_bad = exit_bad;
  spec.ge_loss_bad = loss_bad;
  spec.ge_loss_good = loss_good;
  return spec;
}

ImpairmentSpec Corruption(double rate, uint32_t bits) {
  ImpairmentSpec spec;
  spec.kind = ImpairmentKind::kCorrupt;
  spec.rate = rate;
  spec.corrupt_bits = bits;
  return spec;
}

ImpairmentSpec Reordering(double rate, TimeNs delay_min, TimeNs delay_max) {
  ImpairmentSpec spec;
  spec.kind = ImpairmentKind::kReorder;
  spec.rate = rate;
  spec.reorder_delay_min = delay_min;
  spec.reorder_delay_max = delay_max;
  return spec;
}

ImpairmentSpec Duplication(double rate) {
  ImpairmentSpec spec;
  spec.kind = ImpairmentKind::kDuplicate;
  spec.rate = rate;
  return spec;
}

void LinkDownImpairment::Apply(Packet& pkt, Rng& rng, ImpairmentDecision& decision) {
  (void)pkt;
  (void)rng;
  ++stats_.processed;
  if (down_) {
    ++stats_.dropped;
    decision.drop = true;
    decision.dropped_by = this;
  }
}

namespace {

class BernoulliLossImpairment : public Impairment {
 public:
  explicit BernoulliLossImpairment(double rate)
      : Impairment(ImpairmentKind::kBernoulliLoss), rate_(rate) {
    TAS_CHECK(rate >= 0.0 && rate <= 1.0);
  }

  void Apply(Packet& pkt, Rng& rng, ImpairmentDecision& decision) override {
    (void)pkt;
    ++stats_.processed;
    if (rng.NextBool(rate_)) {
      ++stats_.dropped;
      decision.drop = true;
      decision.dropped_by = this;
    }
  }

 private:
  double rate_;
};

// Gilbert-Elliott burst loss: a two-state Markov chain stepped per packet.
// The good state is (near) lossless; the bad state drops most packets, so
// loss arrives in bursts whose mean length is 1/exit_bad packets.
class GilbertElliottImpairment : public Impairment {
 public:
  explicit GilbertElliottImpairment(const ImpairmentSpec& spec)
      : Impairment(ImpairmentKind::kGilbertElliott),
        enter_bad_(spec.ge_enter_bad),
        exit_bad_(spec.ge_exit_bad),
        loss_good_(spec.ge_loss_good),
        loss_bad_(spec.ge_loss_bad) {}

  void Apply(Packet& pkt, Rng& rng, ImpairmentDecision& decision) override {
    (void)pkt;
    ++stats_.processed;
    // Step the chain, then apply the (possibly new) state's loss rate. Both
    // draws happen unconditionally so the rng stream shape is data-independent.
    const bool transition = rng.NextBool(bad_ ? exit_bad_ : enter_bad_);
    if (transition) {
      bad_ = !bad_;
    }
    if (rng.NextBool(bad_ ? loss_bad_ : loss_good_)) {
      ++stats_.dropped;
      decision.drop = true;
      decision.dropped_by = this;
    }
  }

  bool in_bad_state() const { return bad_; }

 private:
  double enter_bad_;
  double exit_bad_;
  double loss_good_;
  double loss_bad_;
  bool bad_ = false;
};

// Marks the packet for wire-bit corruption. The flips themselves happen where
// bytes exist: the Link's validate_wire_format round-trip flips real bits and
// lets the internet checksum reject the frame; otherwise the receiving NIC
// models its hardware checksum verification by discarding marked frames.
class CorruptImpairment : public Impairment {
 public:
  CorruptImpairment(double rate, uint32_t bits)
      : Impairment(ImpairmentKind::kCorrupt), rate_(rate), bits_(bits) {
    TAS_CHECK(bits >= 1);
  }

  void Apply(Packet& pkt, Rng& rng, ImpairmentDecision& decision) override {
    (void)decision;
    ++stats_.processed;
    if (rng.NextBool(rate_)) {
      ++stats_.corrupted;
      pkt.corrupt_flips += bits_;
    }
  }

 private:
  double rate_;
  uint32_t bits_;
};

class ReorderImpairment : public Impairment {
 public:
  ReorderImpairment(double rate, TimeNs delay_min, TimeNs delay_max)
      : Impairment(ImpairmentKind::kReorder),
        rate_(rate),
        delay_min_(delay_min),
        delay_max_(delay_max) {
    TAS_CHECK(delay_min >= 0 && delay_max >= delay_min);
  }

  void Apply(Packet& pkt, Rng& rng, ImpairmentDecision& decision) override {
    (void)pkt;
    ++stats_.processed;
    if (rng.NextBool(rate_)) {
      ++stats_.reordered;
      decision.extra_delay += delay_min_ == delay_max_
                                  ? delay_min_
                                  : rng.NextInt(delay_min_, delay_max_);
    }
  }

 private:
  double rate_;
  TimeNs delay_min_;
  TimeNs delay_max_;
};

class DuplicateImpairment : public Impairment {
 public:
  explicit DuplicateImpairment(double rate)
      : Impairment(ImpairmentKind::kDuplicate), rate_(rate) {}

  void Apply(Packet& pkt, Rng& rng, ImpairmentDecision& decision) override {
    (void)pkt;
    ++stats_.processed;
    if (rng.NextBool(rate_)) {
      ++stats_.duplicated;
      decision.duplicate = true;
    }
  }

 private:
  double rate_;
};

}  // namespace

std::unique_ptr<Impairment> MakeImpairment(const ImpairmentSpec& spec) {
  switch (spec.kind) {
    case ImpairmentKind::kBernoulliLoss:
      return std::make_unique<BernoulliLossImpairment>(spec.rate);
    case ImpairmentKind::kGilbertElliott:
      return std::make_unique<GilbertElliottImpairment>(spec);
    case ImpairmentKind::kCorrupt:
      return std::make_unique<CorruptImpairment>(spec.rate, spec.corrupt_bits);
    case ImpairmentKind::kReorder:
      return std::make_unique<ReorderImpairment>(spec.rate, spec.reorder_delay_min,
                                                 spec.reorder_delay_max);
    case ImpairmentKind::kDuplicate:
      return std::make_unique<DuplicateImpairment>(spec.rate);
    case ImpairmentKind::kLinkDown:
      return std::make_unique<LinkDownImpairment>(spec.initially_down);
  }
  TAS_CHECK(false) << "unknown impairment kind";
  return nullptr;
}

Impairment* ImpairmentPipeline::Add(std::unique_ptr<Impairment> impairment) {
  impairments_.push_back(std::move(impairment));
  return impairments_.back().get();
}

Impairment* ImpairmentPipeline::AddFront(std::unique_ptr<Impairment> impairment) {
  impairments_.insert(impairments_.begin(), std::move(impairment));
  return impairments_.front().get();
}

void ImpairmentPipeline::AddAll(const FaultConfig& config) {
  for (const ImpairmentSpec& spec : config.impairments) {
    Add(spec);
  }
}

bool ImpairmentPipeline::Remove(const Impairment* impairment) {
  for (auto it = impairments_.begin(); it != impairments_.end(); ++it) {
    if (it->get() == impairment) {
      const ImpairmentStats& s = (*it)->stats();
      retired_.processed += s.processed;
      retired_.dropped += s.dropped;
      retired_.corrupted += s.corrupted;
      retired_.reordered += s.reordered;
      retired_.duplicated += s.duplicated;
      impairments_.erase(it);
      return true;
    }
  }
  return false;
}

ImpairmentDecision ImpairmentPipeline::Apply(Packet& pkt, Rng& rng) {
  ImpairmentDecision decision;
  for (auto& impairment : impairments_) {
    impairment->Apply(pkt, rng, decision);
    if (decision.drop) {
      break;
    }
  }
  return decision;
}

uint64_t ImpairmentPipeline::TotalProcessed() const {
  uint64_t total = retired_.processed;
  for (const auto& impairment : impairments_) {
    total += impairment->stats().processed;
  }
  return total;
}

uint64_t ImpairmentPipeline::TotalDropped() const {
  uint64_t total = retired_.dropped;
  for (const auto& impairment : impairments_) {
    total += impairment->stats().dropped;
  }
  return total;
}

uint64_t ImpairmentPipeline::TotalCorrupted() const {
  uint64_t total = retired_.corrupted;
  for (const auto& impairment : impairments_) {
    total += impairment->stats().corrupted;
  }
  return total;
}

uint64_t ImpairmentPipeline::TotalReordered() const {
  uint64_t total = retired_.reordered;
  for (const auto& impairment : impairments_) {
    total += impairment->stats().reordered;
  }
  return total;
}

uint64_t ImpairmentPipeline::TotalDuplicated() const {
  uint64_t total = retired_.duplicated;
  for (const auto& impairment : impairments_) {
    total += impairment->stats().duplicated;
  }
  return total;
}

}  // namespace tas
