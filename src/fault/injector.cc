#include "src/fault/injector.h"

#include <algorithm>
#include <utility>

namespace tas {

FaultSchedule& FaultSchedule::At(TimeNs t, std::string description,
                                 std::function<void()> apply) {
  events_.push_back(FaultEvent{t, std::move(description), std::move(apply)});
  return *this;
}

FaultSchedule& FaultSchedule::LinkDownAt(TimeNs t, Link* link) {
  return At(t, "link down", [link] { link->SetDown(true); });
}

FaultSchedule& FaultSchedule::LinkUpAt(TimeNs t, Link* link) {
  return At(t, "link up", [link] { link->SetDown(false); });
}

FaultSchedule& FaultSchedule::LinkFlap(TimeNs t, TimeNs duration, Link* link) {
  LinkDownAt(t, link);
  return LinkUpAt(t + duration, link);
}

FaultSchedule& FaultSchedule::ImpairmentWindow(TimeNs from, TimeNs to, Link* link, int side,
                                               const ImpairmentSpec& spec) {
  TAS_CHECK(to >= from);
  // The handle is produced when the window opens, so the open/close thunks
  // share it through one cell.
  auto handle = std::make_shared<Impairment*>(nullptr);
  const std::string name = ImpairmentKindName(spec.kind);
  At(from, name + " window opens",
     [link, side, spec, handle] { *handle = link->AddImpairment(side, spec); });
  At(to, name + " window closes", [link, side, handle] {
    if (*handle != nullptr) {
      link->RemoveImpairment(side, *handle);
      *handle = nullptr;
    }
  });
  return *this;
}

FaultSchedule& FaultSchedule::ImpairmentWindowBoth(TimeNs from, TimeNs to, Link* link,
                                                   const ImpairmentSpec& spec) {
  ImpairmentWindow(from, to, link, 0, spec);
  return ImpairmentWindow(from, to, link, 1, spec);
}

void FaultInjector::Install(FaultSchedule schedule) {
  for (const FaultEvent& event : schedule.events()) {
    ++pending_;
    auto apply = std::make_shared<FaultEvent>(event);
    sim_->AtClamped(apply->at, [this, apply] {
      log_.push_back(LogEntry{sim_->Now(), apply->description});
      apply->apply();
      --pending_;
    });
  }
}

}  // namespace tas
