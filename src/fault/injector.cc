#include "src/fault/injector.h"

#include <algorithm>
#include <utility>

namespace tas {

FaultSchedule& FaultSchedule::At(TimeNs t, std::string description,
                                 std::function<void()> apply) {
  FaultEvent e;
  e.at = t;
  e.description = std::move(description);
  e.apply = std::move(apply);
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::LinkDownAt(TimeNs t, Link* link) {
  FaultEvent e;
  e.at = t;
  e.description = "link down";
  e.link = link;
  e.apply_side = [](Link* l, int side) { l->SetDownSide(side, true); };
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::LinkUpAt(TimeNs t, Link* link) {
  FaultEvent e;
  e.at = t;
  e.description = "link up";
  e.link = link;
  e.apply_side = [](Link* l, int side) { l->SetDownSide(side, false); };
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::LinkFlap(TimeNs t, TimeNs duration, Link* link) {
  LinkDownAt(t, link);
  return LinkUpAt(t + duration, link);
}

FaultSchedule& FaultSchedule::ImpairmentWindow(TimeNs from, TimeNs to, Link* link, int side,
                                               const ImpairmentSpec& spec) {
  TAS_CHECK(to >= from);
  // The handle is produced when the window opens, so the open/close thunks
  // share it through one cell. Both run on the targeted side's island.
  auto handle = std::make_shared<Impairment*>(nullptr);
  const std::string name = ImpairmentKindName(spec.kind);
  FaultEvent open;
  open.at = from;
  open.description = name + " window opens";
  open.link = link;
  open.side = side;
  open.apply_side = [spec, handle](Link* l, int s) { *handle = l->AddImpairment(s, spec); };
  events_.push_back(std::move(open));
  FaultEvent close;
  close.at = to;
  close.description = name + " window closes";
  close.link = link;
  close.side = side;
  close.apply_side = [handle](Link* l, int s) {
    if (*handle != nullptr) {
      l->RemoveImpairment(s, *handle);
      *handle = nullptr;
    }
  };
  events_.push_back(std::move(close));
  return *this;
}

FaultSchedule& FaultSchedule::ImpairmentWindowBoth(TimeNs from, TimeNs to, Link* link,
                                                   const ImpairmentSpec& spec) {
  ImpairmentWindow(from, to, link, 0, spec);
  return ImpairmentWindow(from, to, link, 1, spec);
}

void FaultInjector::Append(TimeNs at, const std::string& description) {
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back(LogEntry{at, description});
}

void FaultInjector::Install(FaultSchedule schedule) {
  for (const FaultEvent& event : schedule.events()) {
    auto apply = std::make_shared<FaultEvent>(event);
    if (apply->link == nullptr || !apply->apply_side) {
      // Plain thunk: runs on the control simulator.
      ++pending_;
      sim_->AtClamped(apply->at, [this, apply] {
        Append(sim_->Now(), apply->description);
        apply->apply();
        pending_.fetch_sub(1, std::memory_order_relaxed);
      });
      continue;
    }
    // Link-targeted event: one sim event per targeted side, each on the
    // island owning that side's state. The first side's event carries the
    // log entry, so a both-sides mutation still logs once. In serial mode
    // every side_sim is the control simulator and the per-side events run
    // back to back at the same instant — the pre-split behavior.
    const int first = apply->side >= 0 ? apply->side : 0;
    const int last = apply->side >= 0 ? apply->side : 1;
    for (int s = first; s <= last; ++s) {
      ++pending_;
      Simulator* target = apply->link->side_sim(s);
      const bool log_this = s == first;
      target->AtClamped(apply->at, [this, apply, target, s, log_this] {
        if (log_this) {
          Append(target->Now(), apply->description);
        }
        apply->apply_side(apply->link, s);
        pending_.fetch_sub(1, std::memory_order_relaxed);
      });
    }
  }
}

}  // namespace tas
