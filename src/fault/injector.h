// Scripted fault timelines: a FaultSchedule declares "what goes wrong when"
// (link flaps, timed loss/corruption/reorder windows, arbitrary thunks) and a
// FaultInjector executes it on simulator time, keeping a log of every applied
// event. Harness scenarios, benches, and the chaos tests build reproducible
// misbehavior from these instead of hand-rolling sim->At calls.
#ifndef SRC_FAULT_INJECTOR_H_
#define SRC_FAULT_INJECTOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/fault/impairment.h"
#include "src/net/link.h"
#include "src/sim/simulator.h"

namespace tas {

struct FaultEvent {
  TimeNs at = 0;
  std::string description;
  // Plain thunk, applied on the injector's (control) simulator.
  std::function<void()> apply;
  // Link-targeted alternative (DESIGN.md §13): applied as one event per
  // targeted side, each scheduled on the island that owns that side's
  // egress state, so a partitioned run mutates link state without crossing
  // islands. `side` -1 targets both sides; the event is logged once either
  // way. Exactly one of `apply` / `apply_side` is set.
  Link* link = nullptr;
  int side = -1;
  std::function<void(Link*, int)> apply_side;
};

class FaultSchedule {
 public:
  // The escape hatch: run any thunk at `t` under the injector's log.
  FaultSchedule& At(TimeNs t, std::string description, std::function<void()> apply);

  // --- Link conveniences ----------------------------------------------------
  // "At 50 ms, flap host 2's link for 10 ms."
  FaultSchedule& LinkDownAt(TimeNs t, Link* link);
  FaultSchedule& LinkUpAt(TimeNs t, Link* link);
  FaultSchedule& LinkFlap(TimeNs t, TimeNs duration, Link* link);

  // "From 100-200 ms, 5% burst loss on the switch uplink": installs the
  // impairment on one direction (or both) of `link` at `from`, removes it at
  // `to`. The impairment's stats live as long as the window does, so read
  // them from inside the window or use the link's aggregate counters.
  FaultSchedule& ImpairmentWindow(TimeNs from, TimeNs to, Link* link, int side,
                                  const ImpairmentSpec& spec);
  FaultSchedule& ImpairmentWindowBoth(TimeNs from, TimeNs to, Link* link,
                                      const ImpairmentSpec& spec);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

class FaultInjector {
 public:
  explicit FaultInjector(Simulator* sim) : sim_(sim) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every event of `schedule`. Events whose time already passed
  // fire at the current simulator time, in schedule order. May be called
  // repeatedly to layer additional chaos (mid-run layering is a serial-mode
  // feature; partitioned runs install schedules before RunUntil, so the
  // per-side events land on their islands' heaps race-free).
  void Install(FaultSchedule schedule);

  struct LogEntry {
    TimeNs at = 0;
    std::string description;
  };
  // Applied events, in execution order; the reproducibility record. In a
  // partitioned run, same-instant events on different islands may log in
  // either order (the mutex only protects memory); per-island order and the
  // set of entries stay deterministic.
  const std::vector<LogEntry>& log() const { return log_; }
  size_t pending() const { return pending_.load(std::memory_order_relaxed); }
  Simulator* sim() const { return sim_; }

 private:
  void Append(TimeNs at, const std::string& description);

  Simulator* sim_;
  std::mutex log_mu_;
  std::vector<LogEntry> log_;
  std::atomic<size_t> pending_{0};
};

}  // namespace tas

#endif  // SRC_FAULT_INJECTOR_H_
