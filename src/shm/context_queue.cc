#include "src/shm/context_queue.h"

namespace tas {

AppContext::AppContext(size_t queue_entries) : rx_(queue_entries), tx_(queue_entries) {}

bool AppContext::PushEvent(const AppEvent& event) {
  const bool was_empty = rx_.Empty();
  if (!rx_.Push(event)) {
    ++dropped_events_;
    return false;
  }
  if (was_empty && app_notify_) {
    app_notify_();
  }
  return true;
}

bool AppContext::PushCommand(const TxCommand& command) {
  const bool was_empty = tx_.Empty();
  if (!tx_.Push(command)) {
    return false;
  }
  if (was_empty && fastpath_notify_) {
    fastpath_notify_();
  }
  return true;
}

}  // namespace tas
