#include "src/shm/context_queue.h"

namespace tas {

AppContext::AppContext(size_t queue_entries) : rx_(queue_entries), tx_(queue_entries) {}

bool AppContext::PushEvent(const AppEvent& event) {
  const bool was_empty = rx_.Empty();
  if (!rx_.Push(event)) {
    ++dropped_events_;
    return false;
  }
  rx_hw_ = rx_.SizeApprox() > rx_hw_ ? rx_.SizeApprox() : rx_hw_;
  if (defer_depth_ > 0) {
    // Every push after the first in a defer window would have rung its own
    // doorbell in the synchronous-drain world (the app empties the queue on
    // each wakeup); count those as coalesced.
    if (pending_notify_) {
      ++doorbells_coalesced_;
    } else if (was_empty) {
      pending_notify_ = true;
    }
  } else if (was_empty && app_notify_) {
    app_notify_();
  }
  return true;
}

void AppContext::EndNotifyDefer() {
  if (--defer_depth_ > 0) {
    return;
  }
  if (pending_notify_) {
    pending_notify_ = false;
    if (app_notify_) {
      app_notify_();
    }
  }
}

bool AppContext::PushCommand(const TxCommand& command) {
  const bool was_empty = tx_.Empty();
  if (!tx_.Push(command)) {
    return false;
  }
  tx_hw_ = tx_.SizeApprox() > tx_hw_ ? tx_.SizeApprox() : tx_hw_;
  if (was_empty && fastpath_notify_) {
    fastpath_notify_();
  }
  return true;
}

}  // namespace tas
