// Shared-memory context queues connecting libTAS, the fast path, and the
// slow path (paper §3, Figures 1-3).
//
// A context is the unit an application thread polls: it owns one RX queue
// (fast path -> app: payload-arrival, tx-done, and connection notifications)
// and one TX queue (app -> fast path: send commands). Connection control
// commands travel on a separate slow-path queue pair. All queues are
// fixed-size SPSC rings.
#ifndef SRC_SHM_CONTEXT_QUEUE_H_
#define SRC_SHM_CONTEXT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/util/spsc_queue.h"

namespace tas {

// Fast path -> application notifications (the "context RX queue").
enum class AppEventType : uint8_t {
  // `bytes` of new in-order payload are available in the flow's RX buffer.
  kRxData,
  // `bytes` of previously sent payload were acknowledged; TX buffer space
  // was reclaimed (paper: "transmit payload buffer space reclamation").
  kTxDone,
  // Outgoing connection is established (slow path completed the handshake).
  kConnOpened,
  // Outgoing connection attempt failed.
  kConnOpenFailed,
  // The peer's FIN was consumed: no more data will arrive, but the local
  // direction stays open (half-close; libTAS surfaces OnRemoteClosed).
  kConnFin,
  // The connection is fully terminated (both directions down or reset); the
  // flow id is about to be recycled.
  kConnClosed,
  // An incoming connection landed on a listener (slow path notification).
  kAcceptable,
};

struct AppEvent {
  AppEventType type = AppEventType::kRxData;
  // Application-defined flow identifier (the `opaque` field of Table 3);
  // for kAcceptable it carries the listener's opaque value.
  uint64_t opaque = 0;
  uint32_t bytes = 0;
};

// Application -> fast path commands (the "context TX queue").
enum class TxCommandType : uint8_t {
  // `bytes` of new payload were appended to the flow's TX buffer.
  kSend,
  // The app drained its RX buffer after the advertised window had collapsed;
  // the fast path should emit a window-update ACK.
  kWindowUpdate,
};

struct TxCommand {
  TxCommandType type = TxCommandType::kSend;
  uint64_t flow_id = 0;
  uint32_t bytes = 0;
};

// One application context: the queue pair an app thread polls, plus wakeup
// hooks (eventfd-like) in both directions.
class AppContext {
 public:
  explicit AppContext(size_t queue_entries = 4096);

  SpscQueue<AppEvent>& rx() { return rx_; }
  SpscQueue<TxCommand>& tx() { return tx_; }

  // Invoked when an event is pushed to an empty RX queue (wakes the app).
  void set_app_notify(std::function<void()> fn) { app_notify_ = std::move(fn); }
  // Invoked when a command is pushed to an empty TX queue (wakes a fast
  // path thread; paper: "wakes a waiting fast path thread").
  void set_fastpath_notify(std::function<void()> fn) { fastpath_notify_ = std::move(fn); }

  // Pushes an event; returns false if the queue is full (the fast path then
  // defers notification until the app drains, paper §3.1).
  bool PushEvent(const AppEvent& event);
  bool PushCommand(const TxCommand& command);

  // Doorbell coalescing (libTAS queue-doorbell behavior): between
  // BeginNotifyDefer and EndNotifyDefer, app wakeups requested by PushEvent
  // are latched instead of fired; EndNotifyDefer rings at most one doorbell
  // for the whole window. The fast path brackets each batch with these.
  void BeginNotifyDefer() { ++defer_depth_; }
  void EndNotifyDefer();

  uint64_t dropped_events() const { return dropped_events_; }
  // Doorbells suppressed by coalescing (notify requests beyond the first in
  // a defer window).
  uint64_t doorbells_coalesced() const { return doorbells_coalesced_; }
  // High-water occupancy of each queue, observed at push (latency anatomy).
  size_t rx_queue_hw() const { return rx_hw_; }
  size_t tx_queue_hw() const { return tx_hw_; }

 private:
  SpscQueue<AppEvent> rx_;
  SpscQueue<TxCommand> tx_;
  std::function<void()> app_notify_;
  std::function<void()> fastpath_notify_;
  size_t rx_hw_ = 0;
  size_t tx_hw_ = 0;
  uint64_t dropped_events_ = 0;
  int defer_depth_ = 0;
  bool pending_notify_ = false;
  uint64_t doorbells_coalesced_ = 0;
};

}  // namespace tas

#endif  // SRC_SHM_CONTEXT_QUEUE_H_
