// Full-duplex point-to-point link with per-direction FIFO queues, DCTCP-style
// ECN marking at a configurable instantaneous queue threshold, drop-tail
// overflow, and optional induced random loss (the packet-loss experiment,
// paper Fig 7).
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <deque>

#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace tas {

// Anything that can accept a delivered packet.
class NetDevice {
 public:
  virtual ~NetDevice() = default;
  virtual void Receive(PacketPtr pkt) = 0;
};

struct LinkConfig {
  double gbps = 10.0;
  TimeNs propagation_delay = Us(1);
  size_t queue_limit_pkts = 1024;
  // Mark CE on ECT packets when the queue holds >= this many packets at
  // enqueue. 0 disables marking. The paper's switch marks at 65 packets.
  size_t ecn_threshold_pkts = 0;
  // Probability of dropping each packet (induced loss, Fig 7).
  double drop_rate = 0.0;
  // Debug/validation mode: round-trip every packet through the byte-level
  // wire encoding (Serialize -> Parse, including checksums) and deliver the
  // parsed copy. Slow; catches any header field the stacks forget to set.
  bool validate_wire_format = false;
};

struct LinkStats {
  uint64_t tx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t drops_overflow = 0;
  uint64_t drops_induced = 0;
  uint64_t ecn_marks = 0;
  RunningStats queue_pkts;  // Queue occupancy sampled at each enqueue.
};

class Link {
 public:
  Link(Simulator* sim, const LinkConfig& config);

  // side is 0 or 1. A packet sent from side s is delivered to the device
  // attached at side 1-s.
  void Attach(int side, NetDevice* device);

  void Send(int from_side, PacketPtr pkt);

  size_t QueueLen(int from_side) const { return dir_[from_side].queue.size(); }
  const LinkStats& stats(int from_side) const { return dir_[from_side].stats; }
  const LinkConfig& config() const { return config_; }
  void set_drop_rate(double rate) { config_.drop_rate = rate; }

 private:
  struct Direction {
    std::deque<PacketPtr> queue;
    bool transmitting = false;
    NetDevice* dst = nullptr;
    LinkStats stats;
  };

  void StartTransmit(int dir_index);

  Simulator* sim_;
  LinkConfig config_;
  Direction dir_[2];
  Rng rng_;
};

// A (link, side) pair: the plug a NIC or switch port transmits into.
struct LinkEnd {
  Link* link = nullptr;
  int side = 0;

  void Send(PacketPtr pkt) const { link->Send(side, std::move(pkt)); }
  void Attach(NetDevice* device) const { link->Attach(side, device); }
  bool valid() const { return link != nullptr; }
};

}  // namespace tas

#endif  // SRC_NET_LINK_H_
