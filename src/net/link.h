// Full-duplex point-to-point link with per-direction FIFO queues, DCTCP-style
// ECN marking at a configurable instantaneous queue threshold, drop-tail
// overflow, and a per-direction fault-injection pipeline (src/fault): loss
// (Bernoulli or Gilbert-Elliott bursts), corruption, reordering, duplication,
// and administrative link down/up — the substrate behind the packet-loss
// experiment (paper Fig 7) and the chaos test suite.
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <deque>
#include <memory>

#include "src/fault/impairment.h"
#include "src/net/packet.h"
#include "src/net/pcap.h"
#include "src/sim/simulator.h"
#include "src/trace/metric_registry.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace tas {

// Anything that can accept a delivered packet.
class NetDevice {
 public:
  virtual ~NetDevice() = default;
  virtual void Receive(PacketPtr pkt) = 0;
};

struct LinkConfig {
  double gbps = 10.0;
  TimeNs propagation_delay = Us(1);
  size_t queue_limit_pkts = 1024;
  // Mark CE on ECT packets when the queue holds >= this many packets at
  // enqueue. 0 disables marking. The paper's switch marks at 65 packets.
  size_t ecn_threshold_pkts = 0;
  // Legacy shim for induced uniform loss (Fig 7): instantiated as a
  // BernoulliLoss impairment in each direction. New code should declare the
  // loss in `faults` instead.
  double drop_rate = 0.0;
  // Egress impairments, instantiated per direction (each direction gets its
  // own instances, so burst-loss state and stats stay independent).
  FaultConfig faults;
  // Seed for the link's fault/validation RNG. 0 (the default) derives the
  // seed from the link's endpoint identities as the topology attaches them
  // (Link::MixDefaultSeed), so equal topologies get equal seeds regardless of
  // how many links other experiments in the process created before. Set
  // explicitly only when a scenario must decorrelate otherwise-identical
  // links (e.g. two parallel paths between the same endpoints).
  uint64_t rng_seed = 0;
  // Debug/validation mode: round-trip every packet through the byte-level
  // wire encoding (Serialize -> Parse, including checksums) and deliver the
  // parsed copy. Slow; catches any header field the stacks forget to set,
  // and is where corruption impairments flip real wire bits.
  bool validate_wire_format = false;
  // Frames serialized back-to-back per transmit continuation and delivered
  // by ONE event at the last frame's arrival (the receive-side completion
  // batching real NICs do). 1 = per-frame delivery events (pre-batching
  // behavior). Per-frame serialization cost and FIFO order are unchanged;
  // only the delivery instant of leading frames moves, by at most the
  // burst's wire time (bounded below).
  size_t burst_pkts = 16;
  // Upper bound on one burst's total serialization time, so large frames
  // don't defer delivery far (a 64B RPC burst spans ~1.5us at 10G; bulk
  // 1448B frames cut over to 1-2 per burst).
  TimeNs burst_max_ns = Us(2);
};

struct LinkStats {
  uint64_t tx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t drops_overflow = 0;
  uint64_t drops_induced = 0;  // Dropped by loss impairments (incl. drop_rate).
  uint64_t drops_down = 0;     // Dropped while administratively down.
  uint64_t drops_corrupt = 0;  // Corrupted frames the wire checksum rejected.
  uint64_t corrupt_marked = 0; // Frames a corruption impairment damaged.
  uint64_t duplicated = 0;     // Extra copies injected.
  uint64_t reordered = 0;      // Frames held back to overtake.
  uint64_t ecn_marks = 0;
  RunningStats queue_pkts;  // Queue occupancy sampled at each enqueue.
  size_t queue_hw_pkts = 0;  // High-water occupancy (including the admit).
};

class Link {
 public:
  Link(Simulator* sim, const LinkConfig& config);

  // side is 0 or 1. A packet sent from side s is delivered to the device
  // attached at side 1-s.
  void Attach(int side, NetDevice* device);

  // Folds an endpoint identity (host IP, switch index) into the default RNG
  // seed and re-derives both directions' streams. The topology calls this as
  // it wires each endpoint, making default link seeds a pure function of the
  // topology instead of process-global link creation order. XOR-commutative,
  // so the two endpoints may mix in either order. No-op when the config set
  // an explicit rng_seed. Must not be called after traffic starts.
  void MixDefaultSeed(uint64_t identity);

  // Island assignment (DESIGN.md §13): side s's egress state runs on
  // `side<s>`'s simulator and deliveries toward side s land there too. Call
  // before traffic starts; defaults to the construction simulator (serial).
  void SetSideSims(Simulator* side0, Simulator* side1) {
    side_sim_[0] = side0;
    side_sim_[1] = side1;
  }
  Simulator* side_sim(int side) const { return side_sim_[side]; }

  void Send(int from_side, PacketPtr pkt);

  // Same-instant burst admission (NIC TX rings and switch flushes hand the
  // wire several frames in one call): between BeginAdmit and EndAdmit,
  // admitted frames do not start the transmitter; EndAdmit starts it once,
  // so the whole wave serializes as one burst with one delivery event
  // instead of the first frame leaving alone. Purely an event-count
  // optimization — admission order, occupancy, and wire timing are those of
  // back-to-back Send calls. Nestable.
  void BeginAdmit(int from_side) { ++dir_[from_side].admit_depth; }
  void EndAdmit(int from_side) {
    Direction& d = dir_[from_side];
    if (--d.admit_depth == 0) {
      MaybeStartTransmit(from_side);
    }
  }

  // Egress buffer occupancy: waiting frames plus burst-admitted frames whose
  // wire serialization has not started yet (at most burst_pkts - 1).
  size_t QueueLen(int from_side) const {
    const Direction& d = dir_[from_side];
    size_t unserialized = 0;
    for (auto it = d.pending_serialize.rbegin();
         it != d.pending_serialize.rend() && *it > side_sim_[from_side]->Now(); ++it) {
      ++unserialized;
    }
    return d.queue.size() + unserialized;
  }
  const LinkStats& stats(int from_side) const { return dir_[from_side].stats; }
  const LinkConfig& config() const { return config_; }

  // Registers both directions' counters and a live queue-depth gauge under
  // "<prefix>.d0." / "<prefix>.d1." (DESIGN.md §7 naming).
  void RegisterMetrics(MetricRegistry* registry, const std::string& prefix);

  // --- Fault-injection hooks -------------------------------------------------
  // Adds an impairment to one direction's egress pipeline; the returned
  // handle stays valid until RemoveImpairment. Safe mid-run (FaultInjector
  // windows use exactly this).
  Impairment* AddImpairment(int side, const ImpairmentSpec& spec) {
    return dir_[side].pipeline.Add(spec);
  }
  Impairment* AddImpairment(int side, std::unique_ptr<Impairment> impairment) {
    return dir_[side].pipeline.Add(std::move(impairment));
  }
  bool RemoveImpairment(int side, const Impairment* impairment) {
    return dir_[side].pipeline.Remove(impairment);
  }
  ImpairmentPipeline& pipeline(int side) { return dir_[side].pipeline; }

  // Administrative link state; affects both directions. Packets already on
  // the wire still arrive (they left before the cut); packets queued behind
  // the gate are dropped at Send time with stats attribution.
  void SetDown(bool down) {
    SetDownSide(0, down);
    SetDownSide(1, down);
  }
  // One direction's gate. On a partitioned topology each side's state is
  // owned by that side's island, so the fault injector cuts a link with two
  // per-side events, each on its owner island, instead of one cross-island
  // mutation (DESIGN.md §13).
  void SetDownSide(int side, bool down) {
    Direction& d = dir_[side];
    if (d.down_gate == nullptr) {
      d.down_gate = static_cast<LinkDownImpairment*>(
          d.pipeline.AddFront(std::make_unique<LinkDownImpairment>(down)));
    } else {
      d.down_gate->SetDown(down);
    }
  }
  bool down() const {
    return dir_[0].down_gate != nullptr && dir_[0].down_gate->down();
  }

  // Legacy shim: replaces the per-direction Bernoulli loss installed by
  // LinkConfig::drop_rate (or installs one).
  void set_drop_rate(double rate);

  // Attaches a trace writer to one direction; every frame put on the wire is
  // recorded at transmit time. Pass nullptr to detach.
  void AttachPcap(int from_side, PcapWriter* pcap) { dir_[from_side].pcap = pcap; }

 private:
  struct Direction {
    std::deque<PacketPtr> queue;
    // True while a StartTransmit continuation is scheduled or running. When
    // the queue drains the transmitter goes idle WITHOUT scheduling a
    // serialize-done event; busy_until records when the wire frees up and
    // the next Enqueue re-arms at that time (saves one event per packet on
    // non-saturated links).
    bool transmitting = false;
    TimeNs busy_until = 0;
    // Frames on the wire, FIFO: each delivery event pops its burst's count
    // off the front. Owned here so sim teardown recycles them via the pool.
    std::deque<PacketPtr> wire;
    // Wire-start times of admitted-but-not-yet-serialized frames. They still
    // occupy the egress buffer physically, so occupancy-driven decisions
    // (drop-tail, ECN, queue stats) count them; drained lazily at Enqueue.
    std::deque<TimeNs> pending_serialize;
    int admit_depth = 0;  // >0: hold transmitter start until EndAdmit.
    NetDevice* dst = nullptr;
    LinkStats stats;
    ImpairmentPipeline pipeline;
    LinkDownImpairment* down_gate = nullptr;   // Owned by pipeline.
    Impairment* legacy_bernoulli = nullptr;    // Owned by pipeline (drop_rate shim).
    PcapWriter* pcap = nullptr;                // Not owned.
    // Per-direction fault/validation RNG: the two directions are owned by
    // (potentially) different islands, so they cannot share a stream.
    Rng rng;
  };

  // Re-creates both directions' RNGs from base_seed_ (construction and each
  // MixDefaultSeed call).
  void ReseedDirections();
  // FIFO admission after impairments: occupancy sampling, overflow drop, ECN
  // marking, optional wire-format validation.
  void Enqueue(int from_side, PacketPtr pkt);
  // Kicks the transmitter if it is idle and frames are waiting (immediately,
  // or at busy_until while the wire finishes the previous serialization).
  void MaybeStartTransmit(int from_side);
  void StartTransmit(int dir_index);
  // Delivery callback for a cross-island burst (runs on the receiver's
  // island at the wire-arrival instant).
  static void DeliverCross(void* ctx, TimeNs when, void** items, int n);
  static void DisposeCross(void* ctx, void** items, int n);

  Simulator* sim_;  // Construction-time simulator (control island when partitioned).
  // Simulator owning each side's state: side s's egress direction dir_[s]
  // runs its queue/transmitter/rng on side_sim_[s]; deliveries land on
  // side_sim_[1-s]. Both default to sim_; the topology rewires them when it
  // assigns the endpoints to islands (DESIGN.md §13).
  Simulator* side_sim_[2];
  LinkConfig config_;
  uint64_t base_seed_;
  bool explicit_seed_;
  Direction dir_[2];
};

// A (link, side) pair: the plug a NIC or switch port transmits into.
struct LinkEnd {
  Link* link = nullptr;
  int side = 0;

  void Send(PacketPtr pkt) const { link->Send(side, std::move(pkt)); }
  void BeginAdmit() const { link->BeginAdmit(side); }
  void EndAdmit() const { link->EndAdmit(side); }
  void Attach(NetDevice* device) const { link->Attach(side, device); }
  bool valid() const { return link != nullptr; }
};

}  // namespace tas

#endif  // SRC_NET_LINK_H_
