#include "src/net/packet.h"

#include <cstring>
#include <sstream>

#include "src/net/packet_pool.h"
#include "src/util/logging.h"

namespace tas {
namespace {

constexpr size_t kEthHeaderBytes = 14;
constexpr size_t kIpv4HeaderBytes = 20;
constexpr size_t kTcpBaseHeaderBytes = 20;
// Preamble + SFD + FCS + min IFG are ignored: links charge header+payload.

void Put16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void Put32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

uint16_t Get16(const uint8_t* p) { return static_cast<uint16_t>((p[0] << 8) | p[1]); }

uint32_t Get32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::string IpToString(IpAddr ip) {
  std::ostringstream os;
  os << ((ip >> 24) & 0xFF) << "." << ((ip >> 16) & 0xFF) << "." << ((ip >> 8) & 0xFF) << "."
     << (ip & 0xFF);
  return os.str();
}

size_t TcpHeader::OptionBytes() const {
  size_t n = 0;
  if (has_mss) {
    n += 4;
  }
  if (has_wscale) {
    n += 3;
  }
  if (has_timestamps) {
    n += 10;
  }
  if (num_sack > 0) {
    n += 2 + static_cast<size_t>(num_sack) * 8;
  }
  // Pad to 4-byte multiple with NOPs.
  return (n + 3) & ~size_t{3};
}

size_t Packet::WireBytes() const {
  return kEthHeaderBytes + kIpv4HeaderBytes + kTcpBaseHeaderBytes + tcp.OptionBytes() +
         payload.size();
}

std::string Packet::Describe() const {
  std::ostringstream os;
  os << IpToString(ip.src) << ":" << tcp.src_port << " > " << IpToString(ip.dst) << ":"
     << tcp.dst_port;
  if (tcp.syn()) {
    os << " SYN";
  }
  if (tcp.fin()) {
    os << " FIN";
  }
  if (tcp.rst()) {
    os << " RST";
  }
  if (tcp.ack_flag()) {
    os << " ACK=" << tcp.ack;
  }
  os << " seq=" << tcp.seq << " len=" << payload.size();
  if (ip.ecn == Ecn::kCe) {
    os << " CE";
  }
  if (tcp.ece()) {
    os << " ECE";
  }
  return os.str();
}

PacketPtr MakeTcpPacket(IpAddr src_ip, uint16_t src_port, IpAddr dst_ip, uint16_t dst_port,
                        uint32_t seq, uint32_t ack, uint8_t flags,
                        std::vector<uint8_t> payload) {
  PacketPtr pkt = PacketPool::Current().Acquire();
  pkt->ip.src = src_ip;
  pkt->ip.dst = dst_ip;
  pkt->tcp.src_port = src_port;
  pkt->tcp.dst_port = dst_port;
  pkt->tcp.seq = seq;
  pkt->tcp.ack = ack;
  pkt->tcp.flags = flags;
  if (!payload.empty()) {
    pkt->payload = std::move(payload);
  }
  return pkt;
}

uint16_t InternetChecksum(const uint8_t* data, size_t len) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<uint64_t>(Get16(data + i));
  }
  if (i < len) {
    sum += static_cast<uint64_t>(data[i]) << 8;
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

std::vector<uint8_t> Serialize(const Packet& pkt) {
  std::vector<uint8_t> out;
  out.reserve(pkt.WireBytes());

  // Ethernet.
  for (int i = 5; i >= 0; --i) {
    out.push_back(static_cast<uint8_t>(pkt.eth.dst >> (8 * i)));
  }
  for (int i = 5; i >= 0; --i) {
    out.push_back(static_cast<uint8_t>(pkt.eth.src >> (8 * i)));
  }
  Put16(out, pkt.eth.ethertype);

  // IPv4.
  const size_t tcp_len = kTcpBaseHeaderBytes + pkt.tcp.OptionBytes() + pkt.payload.size();
  const size_t ip_start = out.size();
  out.push_back(0x45);  // Version 4, IHL 5.
  out.push_back(static_cast<uint8_t>((pkt.ip.dscp << 2) | static_cast<uint8_t>(pkt.ip.ecn)));
  Put16(out, static_cast<uint16_t>(kIpv4HeaderBytes + tcp_len));
  Put16(out, 0);       // Identification.
  Put16(out, 0x4000);  // Flags: DF (datacenter packets are never fragmented).
  out.push_back(pkt.ip.ttl);
  out.push_back(pkt.ip.protocol);
  Put16(out, 0);  // Checksum placeholder.
  Put32(out, pkt.ip.src);
  Put32(out, pkt.ip.dst);
  const uint16_t ip_csum = InternetChecksum(out.data() + ip_start, kIpv4HeaderBytes);
  out[ip_start + 10] = static_cast<uint8_t>(ip_csum >> 8);
  out[ip_start + 11] = static_cast<uint8_t>(ip_csum);

  // TCP.
  const size_t tcp_start = out.size();
  const size_t data_offset_words = (kTcpBaseHeaderBytes + pkt.tcp.OptionBytes()) / 4;
  Put16(out, pkt.tcp.src_port);
  Put16(out, pkt.tcp.dst_port);
  Put32(out, pkt.tcp.seq);
  Put32(out, pkt.tcp.ack);
  out.push_back(static_cast<uint8_t>(data_offset_words << 4));
  out.push_back(pkt.tcp.flags);
  Put16(out, pkt.tcp.window);
  Put16(out, 0);  // Checksum placeholder.
  Put16(out, 0);  // Urgent pointer.

  // Options.
  size_t opt_bytes = 0;
  if (pkt.tcp.has_mss) {
    out.push_back(2);
    out.push_back(4);
    Put16(out, pkt.tcp.mss);
    opt_bytes += 4;
  }
  if (pkt.tcp.has_wscale) {
    out.push_back(3);
    out.push_back(3);
    out.push_back(pkt.tcp.wscale);
    opt_bytes += 3;
  }
  if (pkt.tcp.has_timestamps) {
    out.push_back(8);
    out.push_back(10);
    Put32(out, pkt.tcp.ts_val);
    Put32(out, pkt.tcp.ts_ecr);
    opt_bytes += 10;
  }
  if (pkt.tcp.num_sack > 0) {
    out.push_back(5);
    out.push_back(static_cast<uint8_t>(2 + pkt.tcp.num_sack * 8));
    for (uint8_t i = 0; i < pkt.tcp.num_sack; ++i) {
      Put32(out, pkt.tcp.sack[i].start);
      Put32(out, pkt.tcp.sack[i].end);
    }
    opt_bytes += 2 + static_cast<size_t>(pkt.tcp.num_sack) * 8;
  }
  while (opt_bytes % 4 != 0) {
    out.push_back(1);  // NOP padding.
    ++opt_bytes;
  }

  // Payload.
  out.insert(out.end(), pkt.payload.begin(), pkt.payload.end());

  // TCP checksum over pseudo-header + segment.
  std::vector<uint8_t> pseudo;
  Put32(pseudo, pkt.ip.src);
  Put32(pseudo, pkt.ip.dst);
  pseudo.push_back(0);
  pseudo.push_back(pkt.ip.protocol);
  Put16(pseudo, static_cast<uint16_t>(tcp_len));
  pseudo.insert(pseudo.end(), out.begin() + static_cast<long>(tcp_start), out.end());
  const uint16_t tcp_csum = InternetChecksum(pseudo.data(), pseudo.size());
  out[tcp_start + 16] = static_cast<uint8_t>(tcp_csum >> 8);
  out[tcp_start + 17] = static_cast<uint8_t>(tcp_csum);

  return out;
}

std::optional<Packet> Parse(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kEthHeaderBytes + kIpv4HeaderBytes + kTcpBaseHeaderBytes) {
    return std::nullopt;
  }
  Packet pkt;
  const uint8_t* p = bytes.data();
  for (int i = 0; i < 6; ++i) {
    pkt.eth.dst = (pkt.eth.dst << 8) | p[i];
  }
  for (int i = 6; i < 12; ++i) {
    pkt.eth.src = (pkt.eth.src << 8) | p[i];
  }
  pkt.eth.ethertype = Get16(p + 12);

  const uint8_t* ip = p + kEthHeaderBytes;
  if ((ip[0] >> 4) != 4 || (ip[0] & 0x0F) != 5) {
    return std::nullopt;
  }
  if (InternetChecksum(ip, kIpv4HeaderBytes) != 0) {
    return std::nullopt;
  }
  pkt.ip.dscp = static_cast<uint8_t>(ip[1] >> 2);
  pkt.ip.ecn = static_cast<Ecn>(ip[1] & 0x3);
  const uint16_t total_len = Get16(ip + 2);
  pkt.ip.ttl = ip[8];
  pkt.ip.protocol = ip[9];
  pkt.ip.src = Get32(ip + 12);
  pkt.ip.dst = Get32(ip + 16);
  if (total_len < kIpv4HeaderBytes + kTcpBaseHeaderBytes ||
      kEthHeaderBytes + total_len > bytes.size()) {
    return std::nullopt;
  }

  const uint8_t* tcp = ip + kIpv4HeaderBytes;
  const size_t tcp_len = total_len - kIpv4HeaderBytes;
  pkt.tcp.src_port = Get16(tcp);
  pkt.tcp.dst_port = Get16(tcp + 2);
  pkt.tcp.seq = Get32(tcp + 4);
  pkt.tcp.ack = Get32(tcp + 8);
  const size_t data_offset = static_cast<size_t>(tcp[12] >> 4) * 4;
  pkt.tcp.flags = tcp[13];
  pkt.tcp.window = Get16(tcp + 14);
  if (data_offset < kTcpBaseHeaderBytes || data_offset > tcp_len) {
    return std::nullopt;
  }

  // Verify TCP checksum over pseudo-header + segment.
  std::vector<uint8_t> pseudo;
  Put32(pseudo, pkt.ip.src);
  Put32(pseudo, pkt.ip.dst);
  pseudo.push_back(0);
  pseudo.push_back(pkt.ip.protocol);
  Put16(pseudo, static_cast<uint16_t>(tcp_len));
  pseudo.insert(pseudo.end(), tcp, tcp + tcp_len);
  if (InternetChecksum(pseudo.data(), pseudo.size()) != 0) {
    return std::nullopt;
  }

  // Options.
  size_t off = kTcpBaseHeaderBytes;
  while (off < data_offset) {
    const uint8_t kind = tcp[off];
    if (kind == 0) {  // End of options.
      break;
    }
    if (kind == 1) {  // NOP.
      ++off;
      continue;
    }
    if (off + 1 >= data_offset) {
      return std::nullopt;
    }
    const uint8_t len = tcp[off + 1];
    if (len < 2 || off + len > data_offset) {
      return std::nullopt;
    }
    switch (kind) {
      case 2:
        if (len == 4) {
          pkt.tcp.has_mss = true;
          pkt.tcp.mss = Get16(tcp + off + 2);
        }
        break;
      case 3:
        if (len == 3) {
          pkt.tcp.has_wscale = true;
          pkt.tcp.wscale = tcp[off + 2];
        }
        break;
      case 8:
        if (len == 10) {
          pkt.tcp.has_timestamps = true;
          pkt.tcp.ts_val = Get32(tcp + off + 2);
          pkt.tcp.ts_ecr = Get32(tcp + off + 6);
        }
        break;
      case 5: {
        const uint8_t blocks = static_cast<uint8_t>((len - 2) / 8);
        pkt.tcp.num_sack = std::min<uint8_t>(blocks, 3);
        for (uint8_t i = 0; i < pkt.tcp.num_sack; ++i) {
          pkt.tcp.sack[i].start = Get32(tcp + off + 2 + i * 8);
          pkt.tcp.sack[i].end = Get32(tcp + off + 6 + i * 8);
        }
        break;
      }
      default:
        break;  // Unknown options are skipped (fast path treats as exception).
    }
    off += len;
  }

  pkt.payload.assign(tcp + data_offset, tcp + tcp_len);
  return pkt;
}

uint32_t FlowHash(IpAddr src_ip, uint16_t src_port, IpAddr dst_ip, uint16_t dst_port) {
  uint64_t k = (static_cast<uint64_t>(src_ip) << 32) | dst_ip;
  uint64_t k2 = (static_cast<uint64_t>(src_port) << 16) | dst_port;
  return static_cast<uint32_t>(Mix64(k ^ Mix64(k2)));
}

uint32_t SymmetricFlowHash(IpAddr a_ip, uint16_t a_port, IpAddr b_ip, uint16_t b_port) {
  // Order the endpoints so both directions produce identical input.
  const uint64_t ea = (static_cast<uint64_t>(a_ip) << 16) | a_port;
  const uint64_t eb = (static_cast<uint64_t>(b_ip) << 16) | b_port;
  const uint64_t lo = ea < eb ? ea : eb;
  const uint64_t hi = ea < eb ? eb : ea;
  return static_cast<uint32_t>(Mix64(lo ^ Mix64(hi)));
}

}  // namespace tas
