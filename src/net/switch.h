// Output-queued Ethernet switch with destination-IP forwarding and ECMP.
//
// Queueing, ECN marking and drops happen in the attached Links' egress
// queues (the standard output-queued switch model); the switch itself adds a
// fixed forwarding latency. ECMP picks among equal-cost next hops by flow
// hash, which keeps a connection on a stable path — the in-order delivery
// assumption TAS relies on (paper §3.1).
#ifndef SRC_NET_SWITCH_H_
#define SRC_NET_SWITCH_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/link.h"
#include "src/sim/simulator.h"

namespace tas {

class Switch {
 public:
  Switch(Simulator* sim, std::string name, TimeNs forwarding_latency = 500);
  ~Switch();  // Out of line: Port is an implementation detail.

  const std::string& name() const { return name_; }
  // The simulator (island) this switch's forwarding pipeline runs on.
  Simulator* sim() const { return sim_; }

  // Connects a new port to the given link end; returns the port index.
  int AddPort(LinkEnd end);
  size_t num_ports() const { return ports_.size(); }
  // The egress plug of a port — the handle fault schedules use to impair or
  // flap a specific switch uplink (port_end(p).link).
  LinkEnd port_end(int port) const;

  // Declares that `dst` is reachable via `port` (equal cost with any ports
  // already registered for `dst`).
  void AddRoute(IpAddr dst, int port);
  void ClearRoutes() { routes_.clear(); }

  uint64_t forwarded() const { return forwarded_; }
  uint64_t no_route_drops() const { return no_route_drops_; }

  // Registers forwarding counters plus one egress queue-depth gauge per port
  // under "<prefix>." (queue depth lives in the attached link's egress FIFO).
  void RegisterMetrics(MetricRegistry* registry, const std::string& prefix);

 private:
  class Port;

  void HandlePacket(PacketPtr pkt);
  void Flush();

  Simulator* sim_;
  std::string name_;
  TimeNs forwarding_latency_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<IpAddr, std::vector<int>> routes_;
  // Routed packets awaiting their forwarding-latency expiry, FIFO by due
  // time. One flush event per distinct arrival instant forwards every packet
  // due at that moment — a burst delivered by a link shares one event while
  // per-packet timing stays exact.
  struct Pending {
    TimeNs due;
    int port;
    PacketPtr pkt;
  };
  std::deque<Pending> pending_;
  size_t pending_hw_ = 0;  // High-water of the forwarding-pipeline queue.
  bool flush_scheduled_ = false;
  std::vector<int> touched_ports_;  // Ports burst-admitted by the running Flush.
  uint64_t forwarded_ = 0;
  uint64_t no_route_drops_ = 0;
};

}  // namespace tas

#endif  // SRC_NET_SWITCH_H_
