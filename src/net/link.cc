#include "src/net/link.h"

#include "src/net/packet_pool.h"
#include "src/trace/latency.h"

namespace tas {
namespace {

// splitmix64 finalizer: spreads endpoint identities (small IPs, switch
// indices) over the full seed space before they are XOR-folded together.
uint64_t MixIdentity(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Corruption damages bits the checksums actually cover: anywhere past the
// Ethernet header (IPv4 header -> IP checksum, TCP header/payload -> TCP
// checksum). Flipping unprotected Ethernet bytes would let a "corrupted"
// frame parse cleanly, which is not the fault being modeled.
constexpr size_t kEthernetHeaderBytes = 14;

void FlipWireBits(std::vector<uint8_t>& bytes, uint32_t flips, Rng& rng) {
  if (bytes.size() <= kEthernetHeaderBytes) {
    return;
  }
  const uint64_t protected_bits = (bytes.size() - kEthernetHeaderBytes) * 8;
  for (uint32_t i = 0; i < flips; ++i) {
    const uint64_t bit = rng.NextUint64(protected_bits);
    bytes[kEthernetHeaderBytes + bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

}  // namespace

Link::Link(Simulator* sim, const LinkConfig& config)
    : sim_(sim), side_sim_{sim, sim}, config_(config) {
  TAS_CHECK(config.gbps > 0);
  explicit_seed_ = config.rng_seed != 0;
  base_seed_ = explicit_seed_ ? config.rng_seed : 0xC0FFEEull;
  ReseedDirections();
  for (int side = 0; side < 2; ++side) {
    Direction& d = dir_[side];
    // The legacy drop_rate shim goes first so its rng draws match the
    // pre-impairment implementation packet for packet.
    if (config_.drop_rate > 0) {
      d.legacy_bernoulli = d.pipeline.Add(BernoulliLoss(config_.drop_rate));
    }
    d.pipeline.AddAll(config_.faults);
  }
}

void Link::ReseedDirections() {
  for (int side = 0; side < 2; ++side) {
    // Each direction owns its stream: the two sides may execute on different
    // islands, so sharing one Rng would race (and entangle their draws).
    dir_[side].rng =
        Rng(base_seed_ + static_cast<uint64_t>(side) * 0x632BE59BD9B4E019ull);
  }
}

void Link::MixDefaultSeed(uint64_t identity) {
  if (explicit_seed_) {
    return;
  }
  base_seed_ ^= MixIdentity(identity);
  ReseedDirections();
}

void Link::set_drop_rate(double rate) {
  config_.drop_rate = rate;
  for (Direction& d : dir_) {
    if (d.legacy_bernoulli != nullptr) {
      d.pipeline.Remove(d.legacy_bernoulli);
      d.legacy_bernoulli = nullptr;
    }
    if (rate > 0) {
      d.legacy_bernoulli = d.pipeline.Add(BernoulliLoss(rate));
    }
  }
}

void Link::Attach(int side, NetDevice* device) {
  TAS_CHECK(side == 0 || side == 1);
  // The device at side s receives packets sent from side 1-s.
  dir_[1 - side].dst = device;
}

void Link::Send(int from_side, PacketPtr pkt) {
  TAS_CHECK(from_side == 0 || from_side == 1);
  Direction& d = dir_[from_side];

  if (!d.pipeline.empty()) {
    const ImpairmentDecision decision = d.pipeline.Apply(*pkt, d.rng);
    if (decision.drop) {
      if (decision.dropped_by != nullptr &&
          decision.dropped_by->kind() == ImpairmentKind::kLinkDown) {
        d.stats.drops_down++;
      } else {
        d.stats.drops_induced++;
      }
      if (LatencyTracer* lt = LatencyTracer::Current()) {
        lt->Abandon(pkt->lat_id);
      }
      return;
    }
    if (pkt->corrupt_flips > 0) {
      d.stats.corrupt_marked++;
    }
    if (decision.duplicate) {
      d.stats.duplicated++;
      Enqueue(from_side, PacketPool::Current().Clone(*pkt));
    }
    if (decision.extra_delay > 0) {
      // Hold the packet out of the FIFO so later sends overtake it, then
      // re-admit directly (held packets are not re-impaired). The event node
      // owns the packet while in flight; events still pending when the
      // simulator is destroyed return it to the pool.
      d.stats.reordered++;
      side_sim_[from_side]->After(decision.extra_delay,
                                  [this, from_side, pkt = std::move(pkt)]() mutable {
                                    Enqueue(from_side, std::move(pkt));
                                  });
      return;
    }
  }
  Enqueue(from_side, std::move(pkt));
}

void Link::Enqueue(int from_side, PacketPtr pkt) {
  Direction& d = dir_[from_side];
  Simulator* sim = side_sim_[from_side];
  // Frames whose serialization started are truly gone from the buffer.
  while (!d.pending_serialize.empty() && d.pending_serialize.front() <= sim->Now()) {
    d.pending_serialize.pop_front();
  }
  // Occupancy counts waiting frames plus admitted-but-unserialized burst
  // frames: burst delivery must not make the buffer look emptier than the
  // per-frame transmitter would (drop-tail and ECN depend on it).
  const size_t occupancy = d.queue.size() + d.pending_serialize.size();
  d.stats.queue_pkts.Add(static_cast<double>(occupancy));
  if (occupancy >= config_.queue_limit_pkts) {
    d.stats.drops_overflow++;
    if (LatencyTracer* lt = LatencyTracer::Current()) {
      lt->Abandon(pkt->lat_id);
    }
    return;
  }
  d.stats.queue_hw_pkts = std::max(d.stats.queue_hw_pkts, occupancy + 1);
  if (config_.ecn_threshold_pkts > 0 && occupancy >= config_.ecn_threshold_pkts &&
      pkt->ip.ecn != Ecn::kNotEct) {
    pkt->ip.ecn = Ecn::kCe;
    d.stats.ecn_marks++;
  }
  if (config_.validate_wire_format) {
    auto bytes = Serialize(*pkt);
    if (pkt->corrupt_flips > 0) {
      FlipWireBits(bytes, pkt->corrupt_flips, d.rng);
    }
    auto parsed = Parse(bytes);
    if (!parsed.has_value()) {
      // Only injected corruption may fail the round-trip; anything else is a
      // stack bug the validation mode exists to catch.
      TAS_CHECK(pkt->corrupt_flips > 0)
          << "packet failed wire round-trip: " << pkt->Describe();
      d.stats.drops_corrupt++;
      if (LatencyTracer* lt = LatencyTracer::Current()) {
        lt->Abandon(pkt->lat_id);
      }
      return;
    }
    parsed->enqueued_at = pkt->enqueued_at;
    parsed->ingress_port = pkt->ingress_port;
    // Survived the checksums despite flips (possible: a flip pair can cancel
    // in the ones'-complement sum); keep the mark so the NIC model drops it.
    parsed->corrupt_flips = pkt->corrupt_flips;
    parsed->lat_id = pkt->lat_id;  // Sim metadata, not wire bytes.
    PacketPtr reparsed = PacketPool::Current().Acquire();
    *reparsed = std::move(*parsed);
    pkt = std::move(reparsed);
  }
  d.queue.push_back(std::move(pkt));
  if (d.admit_depth == 0) {
    MaybeStartTransmit(from_side);
  }
}

void Link::MaybeStartTransmit(int from_side) {
  Direction& d = dir_[from_side];
  if (d.transmitting || d.queue.empty()) {
    return;
  }
  Simulator* sim = side_sim_[from_side];
  if (sim->Now() >= d.busy_until) {
    StartTransmit(from_side);
  } else {
    // Wire still serializing the previous burst; wake up when it frees.
    d.transmitting = true;
    sim->At(d.busy_until, [this, from_side] { StartTransmit(from_side); });
  }
}

void Link::DeliverCross(void* ctx, TimeNs when, void** items, int n) {
  auto* d = static_cast<Direction*>(ctx);
  LatencyTracer* tracer = LatencyTracer::Current();
  for (int i = 0; i < n; ++i) {
    // Re-wrap on the receiving island: Current() resolves to its pool, so
    // the packet recycles where it is consumed.
    PacketPtr pkt = PacketPool::Current().Adopt(static_cast<Packet*>(items[i]));
    if (tracer != nullptr) {
      tracer->Stamp(pkt->lat_id, LatencyStage::kLinkWire, when);
    }
    if (d->dst != nullptr) {
      d->dst->Receive(std::move(pkt));
    }
  }
}

void Link::DisposeCross(void* /*ctx*/, void** items, int n) {
  for (int i = 0; i < n; ++i) {
    // Wrap-and-drop: routes the packet back to a pool (teardown path).
    PacketPool::Current().Adopt(static_cast<Packet*>(items[i]));
  }
}

void Link::StartTransmit(int dir_index) {
  Direction& d = dir_[dir_index];
  if (d.queue.empty()) {
    d.transmitting = false;
    return;
  }
  // Serialize up to burst_pkts frames back to back (time-bounded so large
  // frames don't defer delivery far) and deliver them with ONE event when
  // the last frame lands. Per-frame wire time, FIFO order, and the
  // transmitter-busy window are identical to per-frame dispatch; only the
  // delivery instant of leading frames moves, by less than burst_max_ns.
  const size_t max_burst = std::max<size_t>(1, config_.burst_pkts);
  Simulator* sim = side_sim_[dir_index];
  Simulator* dst_sim = side_sim_[1 - dir_index];
  LatencyTracer* lt = LatencyTracer::Current();
  size_t n = 0;
  TimeNs serialize_total = 0;
  while (n < max_burst && !d.queue.empty()) {
    const TimeNs serialize = TransmitTimeNs(d.queue.front()->WireBytes(), config_.gbps);
    if (n > 0 && serialize_total + serialize > config_.burst_max_ns) {
      break;
    }
    PacketPtr pkt = std::move(d.queue.front());
    d.queue.pop_front();
    d.stats.tx_packets++;
    d.stats.tx_bytes += pkt->WireBytes();
    if (d.pcap != nullptr) {
      // Stamp each frame at its own wire-start time, as before.
      d.pcap->Record(sim->Now() + serialize_total, *pkt);
    }
    if (lt != nullptr) {
      // Queue wait ends at this frame's own wire-start instant (same clock
      // the pcap uses); the remainder until delivery is kLinkWire.
      lt->Stamp(pkt->lat_id, LatencyStage::kLinkQueue, sim->Now() + serialize_total);
    }
    if (n > 0) {
      d.pending_serialize.push_back(sim->Now() + serialize_total);
    }
    serialize_total += serialize;
    d.wire.push_back(std::move(pkt));
    ++n;
  }
  d.busy_until = sim->Now() + serialize_total;
  if (dst_sim == sim) {
    sim->After(serialize_total + config_.propagation_delay, [this, dir_index, n] {
      Direction& dd = dir_[dir_index];
      LatencyTracer* tracer = LatencyTracer::Current();
      for (size_t i = 0; i < n && !dd.wire.empty(); ++i) {
        PacketPtr pkt = std::move(dd.wire.front());
        dd.wire.pop_front();
        if (tracer != nullptr) {
          // Serialize + propagation (plus any burst-mate deferral) charged to
          // the wire stage; accumulates across hops on multi-link paths.
          tracer->Stamp(pkt->lat_id, LatencyStage::kLinkWire, side_sim_[dir_index]->Now());
        }
        if (dd.dst != nullptr) {
          dd.dst->Receive(std::move(pkt));
        }
      }
    });
  } else {
    // Receiver lives on another island: the burst's packets travel inside a
    // CrossArrival through the partition mailbox instead of d.wire, and the
    // delivery event is scheduled by the receiver when it drains the mailbox
    // at the epoch barrier (propagation_delay >= the partition lookahead
    // guarantees the arrival lands in a future epoch). Oversized bursts
    // split into consecutive-seq arrivals at the same instant.
    const TimeNs arrive = sim->Now() + serialize_total + config_.propagation_delay;
    while (!d.wire.empty()) {
      CrossArrival a;
      a.when = arrive;
      a.ctx = &d;
      a.deliver = &Link::DeliverCross;
      a.dispose = &Link::DisposeCross;
      while (a.n < CrossArrival::kMaxItems && !d.wire.empty()) {
        a.items[a.n++] = d.wire.front().release();
        d.wire.pop_front();
      }
      sim->PostCross(dst_sim->island_id(), std::move(a));
    }
  }
  if (d.queue.empty()) {
    d.transmitting = false;  // Idle; Enqueue re-arms at busy_until if needed.
  } else {
    d.transmitting = true;
    sim->After(serialize_total, [this, dir_index] { StartTransmit(dir_index); });
  }
}

void Link::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  for (int side = 0; side < 2; ++side) {
    const std::string p = prefix + ".d" + std::to_string(side) + ".";
    const LinkStats& s = dir_[side].stats;
    registry->AddCounter(p + "tx_packets", &s.tx_packets);
    registry->AddCounter(p + "tx_bytes", &s.tx_bytes);
    registry->AddCounter(p + "drops_overflow", &s.drops_overflow);
    registry->AddCounter(p + "drops_induced", &s.drops_induced);
    registry->AddCounter(p + "drops_down", &s.drops_down);
    registry->AddCounter(p + "drops_corrupt", &s.drops_corrupt);
    registry->AddCounter(p + "corrupt_marked", &s.corrupt_marked);
    registry->AddCounter(p + "duplicated", &s.duplicated);
    registry->AddCounter(p + "reordered", &s.reordered);
    registry->AddCounter(p + "ecn_marks", &s.ecn_marks);
    registry->AddGauge(p + "queue_pkts",
                       [this, side] { return static_cast<double>(QueueLen(side)); });
    registry->AddGauge(p + "queue_hw_pkts", [this, side] {
      return static_cast<double>(dir_[side].stats.queue_hw_pkts);
    });
    // Egress fault pipeline totals (survive mid-run impairment removal via
    // the pipeline's retired accumulator).
    ImpairmentPipeline* pl = &dir_[side].pipeline;
    registry->AddCounterFn(p + "fault.processed", [pl] { return pl->TotalProcessed(); });
    registry->AddCounterFn(p + "fault.dropped", [pl] { return pl->TotalDropped(); });
    registry->AddCounterFn(p + "fault.corrupted", [pl] { return pl->TotalCorrupted(); });
    registry->AddCounterFn(p + "fault.reordered", [pl] { return pl->TotalReordered(); });
    registry->AddCounterFn(p + "fault.duplicated", [pl] { return pl->TotalDuplicated(); });
  }
}

}  // namespace tas
