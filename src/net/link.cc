#include "src/net/link.h"

#include <atomic>

namespace tas {
namespace {

// Deterministic per-link seeds: simulations must be reproducible run-to-run.
std::atomic<uint64_t> g_link_counter{1};

}  // namespace

Link::Link(Simulator* sim, const LinkConfig& config)
    : sim_(sim), config_(config), rng_(0xC0FFEEull ^ (g_link_counter.fetch_add(1) * 0x9E37ull)) {
  TAS_CHECK(config.gbps > 0);
}

void Link::Attach(int side, NetDevice* device) {
  TAS_CHECK(side == 0 || side == 1);
  // The device at side s receives packets sent from side 1-s.
  dir_[1 - side].dst = device;
}

void Link::Send(int from_side, PacketPtr pkt) {
  TAS_CHECK(from_side == 0 || from_side == 1);
  Direction& d = dir_[from_side];

  if (config_.drop_rate > 0 && rng_.NextBool(config_.drop_rate)) {
    d.stats.drops_induced++;
    return;
  }
  d.stats.queue_pkts.Add(static_cast<double>(d.queue.size()));
  if (d.queue.size() >= config_.queue_limit_pkts) {
    d.stats.drops_overflow++;
    return;
  }
  if (config_.ecn_threshold_pkts > 0 && d.queue.size() >= config_.ecn_threshold_pkts &&
      pkt->ip.ecn != Ecn::kNotEct) {
    pkt->ip.ecn = Ecn::kCe;
    d.stats.ecn_marks++;
  }
  if (config_.validate_wire_format) {
    auto parsed = Parse(Serialize(*pkt));
    TAS_CHECK(parsed.has_value()) << "packet failed wire round-trip: " << pkt->Describe();
    parsed->enqueued_at = pkt->enqueued_at;
    parsed->ingress_port = pkt->ingress_port;
    pkt = std::make_unique<Packet>(std::move(*parsed));
  }
  d.queue.push_back(std::move(pkt));
  if (!d.transmitting) {
    StartTransmit(from_side);
  }
}

void Link::StartTransmit(int dir_index) {
  Direction& d = dir_[dir_index];
  if (d.queue.empty()) {
    d.transmitting = false;
    return;
  }
  d.transmitting = true;
  PacketPtr pkt = std::move(d.queue.front());
  d.queue.pop_front();
  const TimeNs serialize = TransmitTimeNs(pkt->WireBytes(), config_.gbps);
  d.stats.tx_packets++;
  d.stats.tx_bytes += pkt->WireBytes();

  // Deliver after serialization + propagation; free the transmitter after
  // serialization only, so back-to-back packets pipeline onto the wire.
  auto* raw = pkt.release();
  sim_->After(serialize + config_.propagation_delay, [this, dir_index, raw] {
    PacketPtr p(raw);
    Direction& dd = dir_[dir_index];
    if (dd.dst != nullptr) {
      dd.dst->Receive(std::move(p));
    }
  });
  sim_->After(serialize, [this, dir_index] { StartTransmit(dir_index); });
}

}  // namespace tas
