#include "src/net/pcap.h"

namespace tas {

PcapWriter::PcapWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  // Classic pcap global header: magic (us precision), v2.4, LINKTYPE_ETHERNET.
  Put32(0xA1B2C3D4);
  Put16(2);
  Put16(4);
  Put32(0);        // thiszone.
  Put32(0);        // sigfigs.
  Put32(65535);    // snaplen.
  Put32(1);        // LINKTYPE_ETHERNET.
}

PcapWriter::~PcapWriter() = default;

void PcapWriter::Put32(uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), 4);
}

void PcapWriter::Put16(uint16_t v) {
  out_.write(reinterpret_cast<const char*>(&v), 2);
}

void PcapWriter::Record(TimeNs now, const Packet& pkt) {
  const std::vector<uint8_t> bytes = Serialize(pkt);
  Put32(static_cast<uint32_t>(now / kNsPerSec));
  Put32(static_cast<uint32_t>((now % kNsPerSec) / kNsPerUs));
  Put32(static_cast<uint32_t>(bytes.size()));
  Put32(static_cast<uint32_t>(bytes.size()));
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  ++packets_written_;
}

}  // namespace tas
