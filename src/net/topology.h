// Network container and topology builders: point-to-point, star (the paper's
// testbed: clients + server on one switch), dumbbell, and 3-level FatTree
// with configurable oversubscription (the paper's large-cluster simulation,
// Fig 12). ComputeRoutes() installs ECMP next-hop sets on every switch.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/link.h"
#include "src/net/switch.h"

namespace tas {

class SimPartition;

// Where a host NIC plugs in: the transmit end of its access link plus its
// assigned addresses. The NIC attaches itself as the receiving NetDevice.
struct HostPort {
  LinkEnd end;
  Link* access_link = nullptr;
  IpAddr ip = 0;
  MacAddr mac = 0;
  // Island this host's stack runs on: its own island when the access link has
  // positive propagation delay, the switch's island when the delay is zero
  // (zero-lookahead fallback, DESIGN.md §13), or the control simulator in
  // serial mode.
  Simulator* sim = nullptr;
};

class Network {
 public:
  // With a partition, the builders assign one island per switch and one per
  // host (hosts on zero-delay access links collapse into their switch's
  // island) and register every cross-island link direction as a lookahead
  // edge. Without one, everything runs on `sim` exactly as before.
  explicit Network(Simulator* sim, SimPartition* partition = nullptr)
      : sim_(sim), partition_(partition) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator* sim() const { return sim_; }
  SimPartition* partition() const { return partition_; }
  // The island host i's stack should be built on (control sim when serial).
  Simulator* host_sim(size_t i) const {
    return hosts_[i].sim != nullptr ? hosts_[i].sim : sim_;
  }

  Link* AddLink(const LinkConfig& config);
  Switch* AddSwitch(const std::string& name, TimeNs forwarding_latency = 500);

  // Creates a host with a dedicated access link to `sw`. Returns host index.
  int AttachHost(IpAddr ip, Switch* sw, const LinkConfig& config);

  // Creates a host on one end of a bare link (no switch). Both hosts of a
  // point-to-point topology are created this way on the same link.
  int AttachHostToLink(IpAddr ip, Link* link, int side);

  void ConnectSwitches(Switch* a, Switch* b, const LinkConfig& config);

  // Installs ECMP shortest-path routes for every host IP on every switch.
  void ComputeRoutes();

  HostPort& host(size_t i) { return hosts_[i]; }
  size_t num_hosts() const { return hosts_.size(); }
  size_t num_switches() const { return switches_.size(); }
  Switch* switch_at(size_t i) { return switches_[i].get(); }
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  // --- Fault-schedule targeting ----------------------------------------------
  // Host i's access link ("flap host 2's link").
  Link* host_link(size_t i) { return hosts_[i].access_link; }
  // The link joining two switches ("the switch uplink"); null if not adjacent.
  Link* SwitchLink(const Switch* a, const Switch* b) const;

 private:
  struct SwitchEdge {
    size_t a;        // Switch index.
    size_t b;        // Switch index.
    int port_on_a;
    int port_on_b;
    Link* link;
  };
  struct HostEdge {
    size_t host;
    size_t sw;
    int port_on_sw;
  };

  // Registers the partition lookahead edge for a link whose two sides landed
  // on different islands (both directions, delay = propagation_delay).
  void RegisterIslandEdges(Link* link);

  Simulator* sim_;
  SimPartition* partition_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<HostPort> hosts_;
  std::vector<SwitchEdge> switch_edges_;
  std::vector<HostEdge> host_edges_;
};

// Two hosts, one link, no switch. With a partition each host gets its own
// island when the link has positive propagation delay.
std::unique_ptr<Network> MakePointToPoint(Simulator* sim, const LinkConfig& config,
                                          IpAddr ip_a = MakeIp(10, 0, 0, 1),
                                          IpAddr ip_b = MakeIp(10, 0, 0, 2),
                                          SimPartition* partition = nullptr);

// N hosts around a single switch; per-host link configs allow mixing the
// paper's 40G server with 10G clients. Host i gets IP 10.0.0.(i+1).
std::unique_ptr<Network> MakeStar(Simulator* sim, const std::vector<LinkConfig>& host_links,
                                  TimeNs switch_latency = 500,
                                  SimPartition* partition = nullptr);

// n_left + n_right hosts on two switches joined by a bottleneck link.
std::unique_ptr<Network> MakeDumbbell(Simulator* sim, size_t n_left, size_t n_right,
                                      const LinkConfig& host_link,
                                      const LinkConfig& bottleneck,
                                      SimPartition* partition = nullptr);

struct FatTreeConfig {
  // k-ary fat tree: k pods, k/2 edge + k/2 aggregation switches per pod,
  // (k/2)^2 core switches. k must be even.
  int k = 4;
  // Hosts attached to each edge switch. hosts_per_edge == k/2 is full
  // bisection; k/2 * 4 gives the paper's 1:4 oversubscription.
  int hosts_per_edge = 2;
  LinkConfig host_link;
  LinkConfig fabric_link;  // Edge<->agg and agg<->core links.
  TimeNs switch_latency = 500;
};

std::unique_ptr<Network> MakeFatTree(Simulator* sim, const FatTreeConfig& config,
                                     SimPartition* partition = nullptr);

}  // namespace tas

#endif  // SRC_NET_TOPOLOGY_H_
