#include "src/net/packet_pool.h"

#include <cstdlib>

#include "src/sim/parallel.h"
#include "src/util/logging.h"

namespace tas {
namespace {

bool& PoolingFlag() {
  static bool enabled = std::getenv("TAS_NO_POOL") == nullptr;
  return enabled;
}

// Clears a recycled packet back to default state while keeping the payload
// buffer's capacity (the whole point of pooling: the next tenant's resize
// is a length update, not an allocation).
void ResetPacket(Packet* pkt) {
  std::vector<uint8_t> payload = std::move(pkt->payload);
  payload.clear();
  *pkt = Packet{};
  pkt->payload = std::move(payload);
}

}  // namespace

namespace {
// Per-thread island pool (DESIGN.md §13). Plain thread_local pointer: each
// partition worker thread points it at the island it is executing; the main
// thread leaves it null outside partitioned runs.
thread_local PacketPool* g_thread_pool = nullptr;
}  // namespace

void PacketDeleter::operator()(Packet* pkt) const noexcept {
  // Pooled packets recycle onto the CURRENT thread's island pool when one is
  // active: the island that consumed the packet keeps it, so island free
  // lists stay lock-free. Serial runs never set the override, so this is the
  // captured pool, unchanged.
  if (pool_ != nullptr) {
    PacketPool* target = g_thread_pool != nullptr ? g_thread_pool : pool_;
    target->Release(pkt);
  } else {
    delete pkt;
  }
}

PacketPool* PacketPool::ThreadOverride() { return g_thread_pool; }

void PacketPool::SetThreadOverride(PacketPool* pool) { g_thread_pool = pool; }

PacketPool::~PacketPool() {
  // Destroying a pool with packets still out would leave their deleters
  // dangling; local pools (tests, benchmarks) must drain first. The default
  // pool is leaked and never gets here. Grouped (per-island) pools trade
  // packets with their siblings, so only the group aggregate is checkable —
  // the Experiment verifies it before the members die.
  TAS_CHECK(grouped_ || outstanding() == 0)
      << "PacketPool destroyed with " << outstanding() << " packets outstanding";
  if (group_ != nullptr) {
    const int64_t total =
        group_->fetch_add(balance(), std::memory_order_acq_rel) + balance();
    if (group_.use_count() == 1) {
      TAS_CHECK(total == 0) << "island pool group leaked " << total << " packets";
    }
  }
  for (Packet* pkt : free_) {
    delete pkt;
  }
}

PacketPtr PacketPool::Acquire() {
  if (!PoolingEnabled()) {
    ++unpooled_;
    return PacketPtr(new Packet(), PacketDeleter(nullptr));
  }
  Packet* pkt;
  if (free_.empty()) {
    pkt = new Packet();
    ++allocated_;
  } else {
    pkt = free_.back();
    free_.pop_back();
    ++reused_;
    ResetPacket(pkt);
  }
  return PacketPtr(pkt, PacketDeleter(this));
}

PacketPtr PacketPool::Clone(const Packet& src) {
  PacketPtr dst = Acquire();
  // Copy-assignment reuses the retained payload capacity (vector::operator=
  // copies into the existing buffer when it fits).
  *dst = src;
  // A clone is a new journey: it must not stamp into the original's latency
  // record (a duplicate finishing first would retire it out from under the
  // real packet).
  dst->lat_id = 0;
  return dst;
}

PacketPtr PacketPool::Adopt(Packet* pkt) {
  if (!PoolingEnabled()) {
    return PacketPtr(pkt, PacketDeleter(nullptr));
  }
  return PacketPtr(pkt, PacketDeleter(this));
}

void PacketPool::Release(Packet* pkt) noexcept {
  ++released_;
  if (free_.size() >= max_free_) {
    delete pkt;
    return;
  }
  free_.push_back(pkt);
}

PacketPoolStats PacketPool::stats() const {
  PacketPoolStats s;
  s.allocated = allocated_;
  s.reused = reused_;
  s.released = released_;
  s.unpooled = unpooled_;
  s.free_size = free_.size();
  s.outstanding = outstanding();
  return s;
}

void PacketPool::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) const {
  registry->AddCounter(prefix + ".allocated", &allocated_);
  registry->AddCounter(prefix + ".reused", &reused_);
  registry->AddCounter(prefix + ".released", &released_);
  registry->AddCounter(prefix + ".unpooled", &unpooled_);
  registry->AddGauge(prefix + ".free",
                     [this] { return static_cast<double>(free_.size()); });
  registry->AddGauge(prefix + ".outstanding",
                     [this] { return static_cast<double>(outstanding()); });
}

namespace {
PacketPool* g_installed_pool = nullptr;
}  // namespace

PacketPool& PacketPool::Current() {
  if (g_thread_pool != nullptr) {
    return *g_thread_pool;
  }
  if (g_installed_pool != nullptr) {
    return *g_installed_pool;
  }
  static PacketPool* fallback = new PacketPool();  // Leaked on purpose; see header.
  return *fallback;
}

PacketPool* PacketPool::Install(PacketPool* pool) {
  // Swapping the process-wide pool while partition workers run would race
  // with every island's acquire path; experiments install before running.
  TAS_CHECK(!SimPartition::AnyRunActive())
      << "PacketPool::Install during a partitioned run";
  PacketPool* previous = g_installed_pool;
  g_installed_pool = pool;
  return previous;
}

bool PacketPool::PoolingEnabled() { return PoolingFlag(); }

void PacketPool::SetPoolingEnabled(bool enabled) { PoolingFlag() = enabled; }

}  // namespace tas
