// Packet representation: Ethernet/IPv4/TCP headers, ECN codepoints, TCP
// options (MSS, window scale, timestamps, SACK), and payload bytes.
//
// Inside the simulator packets travel as structured objects for speed; the
// wire encoding (Serialize/Parse, internet checksum) is implemented and
// unit-tested so the header layout is honest, but the hot path does not
// round-trip through bytes (see DESIGN.md §5).
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace tas {

using IpAddr = uint32_t;
using MacAddr = uint64_t;  // Lower 48 bits significant.

constexpr IpAddr MakeIp(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<IpAddr>(a) << 24) | (static_cast<IpAddr>(b) << 16) |
         (static_cast<IpAddr>(c) << 8) | static_cast<IpAddr>(d);
}

std::string IpToString(IpAddr ip);

// RFC 3168 ECN codepoints (2 bits of the IP TOS byte).
enum class Ecn : uint8_t {
  kNotEct = 0,
  kEct1 = 1,
  kEct0 = 2,
  kCe = 3,
};

// TCP flag bits, matching the wire layout.
struct TcpFlags {
  static constexpr uint8_t kFin = 0x01;
  static constexpr uint8_t kSyn = 0x02;
  static constexpr uint8_t kRst = 0x04;
  static constexpr uint8_t kPsh = 0x08;
  static constexpr uint8_t kAck = 0x10;
  static constexpr uint8_t kUrg = 0x20;
  static constexpr uint8_t kEce = 0x40;
  static constexpr uint8_t kCwr = 0x80;
};

struct EthernetHeader {
  MacAddr dst = 0;
  MacAddr src = 0;
  uint16_t ethertype = 0x0800;  // IPv4.
};

struct Ipv4Header {
  uint8_t dscp = 0;
  Ecn ecn = Ecn::kNotEct;
  uint8_t ttl = 64;
  uint8_t protocol = 6;  // TCP.
  IpAddr src = 0;
  IpAddr dst = 0;
  // total_length and checksum are computed during serialization.
};

// One SACK block: [start, end) in sequence space.
struct SackBlock {
  uint32_t start = 0;
  uint32_t end = 0;
};

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint16_t window = 0;

  // Options. has_* gates inclusion on the wire.
  bool has_mss = false;
  uint16_t mss = 0;
  bool has_wscale = false;
  uint8_t wscale = 0;
  bool has_timestamps = false;
  uint32_t ts_val = 0;
  uint32_t ts_ecr = 0;
  uint8_t num_sack = 0;
  std::array<SackBlock, 3> sack = {};

  bool syn() const { return (flags & TcpFlags::kSyn) != 0; }
  bool ack_flag() const { return (flags & TcpFlags::kAck) != 0; }
  bool fin() const { return (flags & TcpFlags::kFin) != 0; }
  bool rst() const { return (flags & TcpFlags::kRst) != 0; }
  bool ece() const { return (flags & TcpFlags::kEce) != 0; }
  bool cwr() const { return (flags & TcpFlags::kCwr) != 0; }

  // Bytes the options occupy on the wire (padded to 4-byte multiple).
  size_t OptionBytes() const;
};

struct Packet {
  EthernetHeader eth;
  Ipv4Header ip;
  TcpHeader tcp;
  std::vector<uint8_t> payload;

  // Simulation metadata (not on the wire).
  TimeNs enqueued_at = 0;  // When the sender handed it to the NIC.
  uint32_t ingress_port = 0;
  // Fault injection: wire bits to flip (src/fault corruption impairment).
  // Where real bytes exist (validate_wire_format) the flips are applied and
  // the internet checksum rejects the frame; otherwise the receiving NIC
  // models its hardware checksum check by discarding marked frames.
  uint32_t corrupt_flips = 0;
  // Latency-anatomy record id (src/trace/latency): keys the side ring where
  // this packet's stage stamps accumulate. 0 = untracked (tracing off, or a
  // control packet nobody opened a record for). Pool recycling resets it;
  // clones start untracked so duplicates cannot corrupt the original's
  // record.
  uint64_t lat_id = 0;

  size_t payload_size() const { return payload.size(); }
  // Total bytes on the wire, including Ethernet framing.
  size_t WireBytes() const;

  // Human-readable one-liner for logs ("10.0.0.1:80 > 10.0.0.2:5000 SYN ...").
  std::string Describe() const;
};

class PacketPool;

// Deleter riding inside PacketPtr: returns pooled packets to their owning
// pool (payload capacity retained), plain-deletes unpooled ones. Default
// state (null pool) means plain delete, so PacketPtr(new Packet) stays legal.
class PacketDeleter {
 public:
  PacketDeleter() = default;
  explicit PacketDeleter(PacketPool* pool) : pool_(pool) {}
  void operator()(Packet* pkt) const noexcept;
  PacketPool* pool() const { return pool_; }

 private:
  PacketPool* pool_ = nullptr;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

// Convenience constructor for a TCP packet with common fields filled in.
// Allocates from the default PacketPool (see src/net/packet_pool.h), so the
// steady-state cost is a free-list pop, not a heap allocation. Prefer
// filling `payload` in place on the returned packet (its pooled buffer
// retains capacity); the by-value parameter replaces the pooled buffer.
PacketPtr MakeTcpPacket(IpAddr src_ip, uint16_t src_port, IpAddr dst_ip, uint16_t dst_port,
                        uint32_t seq, uint32_t ack, uint8_t flags,
                        std::vector<uint8_t> payload = {});

// RFC 1071 internet checksum over a byte range.
uint16_t InternetChecksum(const uint8_t* data, size_t len);

// Serializes the full frame (Ethernet + IPv4 + TCP + payload) with valid
// IPv4 and TCP checksums.
std::vector<uint8_t> Serialize(const Packet& pkt);

// Parses a frame produced by Serialize. Returns nullopt on malformed input
// or checksum mismatch.
std::optional<Packet> Parse(const std::vector<uint8_t>& bytes);

// Connection lookup key for per-host flow/connection tables: a host owns one
// local IP, so (local_port, peer_ip, peer_port) identifies a connection.
struct FlowKey {
  uint16_t local_port = 0;
  IpAddr peer_ip = 0;
  uint16_t peer_port = 0;

  bool operator==(const FlowKey&) const = default;
};

struct FlowKeyHash {
  size_t operator()(const FlowKey& key) const {
    uint64_t x = (static_cast<uint64_t>(key.peer_ip) << 32) |
                 (static_cast<uint64_t>(key.local_port) << 16) | key.peer_port;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 29;
    return static_cast<size_t>(x);
  }
};

// Flow hash over the 4-tuple (direction-sensitive), used for ECMP.
uint32_t FlowHash(IpAddr src_ip, uint16_t src_port, IpAddr dst_ip, uint16_t dst_port);

// Symmetric variant: both directions of a connection hash identically.
// The NIC RSS uses this (mTCP depends on symmetric RSS; paper §5.4).
uint32_t SymmetricFlowHash(IpAddr a_ip, uint16_t a_port, IpAddr b_ip, uint16_t b_port);

}  // namespace tas

#endif  // SRC_NET_PACKET_H_
