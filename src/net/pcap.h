// Minimal PCAP (libpcap classic format) trace writer: attach one to a link
// direction or call Record() from any vantage point, then open the file in
// Wireshark/tcpdump. Packets are serialized through the real wire encoder,
// so traces show valid checksums, options, and payload.
#ifndef SRC_NET_PCAP_H_
#define SRC_NET_PCAP_H_

#include <fstream>
#include <string>

#include "src/net/packet.h"
#include "src/util/time.h"

namespace tas {

class PcapWriter {
 public:
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  bool ok() const { return out_.good(); }
  uint64_t packets_written() const { return packets_written_; }

  // Serializes `pkt` and appends a capture record stamped `now`.
  void Record(TimeNs now, const Packet& pkt);

 private:
  void Put32(uint32_t v);
  void Put16(uint16_t v);

  std::ofstream out_;
  uint64_t packets_written_ = 0;
};

}  // namespace tas

#endif  // SRC_NET_PCAP_H_
