#include "src/net/topology.h"

#include <deque>
#include <limits>

#include "src/sim/parallel.h"

namespace tas {

Link* Network::AddLink(const LinkConfig& config) {
  links_.push_back(std::make_unique<Link>(sim_, config));
  return links_.back().get();
}

Switch* Network::AddSwitch(const std::string& name, TimeNs forwarding_latency) {
  Simulator* sim = partition_ != nullptr ? partition_->NewIsland() : sim_;
  switches_.push_back(std::make_unique<Switch>(sim, name, forwarding_latency));
  return switches_.back().get();
}

void Network::RegisterIslandEdges(Link* link) {
  Simulator* s0 = link->side_sim(0);
  Simulator* s1 = link->side_sim(1);
  if (partition_ == nullptr || s0 == s1) {
    return;
  }
  const TimeNs delay = link->config().propagation_delay;
  partition_->AddEdge(s0->island_id(), s1->island_id(), delay);
  partition_->AddEdge(s1->island_id(), s0->island_id(), delay);
}

int Network::AttachHost(IpAddr ip, Switch* sw, const LinkConfig& config) {
  Link* link = AddLink(config);
  const int port = sw->AddPort(LinkEnd{link, 1});
  // Island assignment: the host gets its own island when the access link's
  // propagation delay can serve as lookahead; a zero-delay link would force
  // the epoch window to zero, so such hosts collapse into the switch's
  // island and the pair runs serially relative to each other.
  Simulator* host_sim = sim_;
  if (partition_ != nullptr) {
    host_sim = config.propagation_delay > 0 ? partition_->NewIsland() : sw->sim();
    link->SetSideSims(host_sim, sw->sim());
    RegisterIslandEdges(link);
  }

  size_t sw_index = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < switches_.size(); ++i) {
    if (switches_[i].get() == sw) {
      sw_index = i;
      break;
    }
  }
  TAS_CHECK(sw_index != std::numeric_limits<size_t>::max());

  // Default link seed = f(endpoint identities): host IP and switch index,
  // tagged so the two identity spaces cannot collide.
  link->MixDefaultSeed((1ull << 40) | ip);
  link->MixDefaultSeed((2ull << 40) | sw_index);

  HostPort hp;
  hp.end = LinkEnd{link, 0};
  hp.access_link = link;
  hp.ip = ip;
  hp.mac = 0x020000000000ull | (hosts_.size() + 1);
  hp.sim = host_sim;
  hosts_.push_back(hp);
  host_edges_.push_back(HostEdge{hosts_.size() - 1, sw_index, port});
  return static_cast<int>(hosts_.size()) - 1;
}

int Network::AttachHostToLink(IpAddr ip, Link* link, int side) {
  // Point-to-point attachment: with a partition and positive propagation
  // delay each host gets its own island; the shared link's edge registers
  // once the second side's island is known. A zero-delay link leaves both
  // hosts on the control simulator (no parallelism to extract).
  Simulator* host_sim = sim_;
  if (partition_ != nullptr && link->config().propagation_delay > 0) {
    host_sim = partition_->NewIsland();
    Simulator* s0 = side == 0 ? host_sim : link->side_sim(0);
    Simulator* s1 = side == 1 ? host_sim : link->side_sim(1);
    link->SetSideSims(s0, s1);
    if (s0 != sim_ && s1 != sim_) {
      RegisterIslandEdges(link);
    }
  }
  link->MixDefaultSeed((1ull << 40) | ip);
  HostPort hp;
  hp.end = LinkEnd{link, side};
  hp.access_link = link;
  hp.ip = ip;
  hp.mac = 0x020000000000ull | (hosts_.size() + 1);
  hp.sim = host_sim;
  hosts_.push_back(hp);
  return static_cast<int>(hosts_.size()) - 1;
}

void Network::ConnectSwitches(Switch* a, Switch* b, const LinkConfig& config) {
  Link* link = AddLink(config);
  const int port_a = a->AddPort(LinkEnd{link, 0});
  const int port_b = b->AddPort(LinkEnd{link, 1});
  if (partition_ != nullptr) {
    // Switch islands always exist; a zero-delay inter-switch link would make
    // the conservative window zero, so it is rejected up front.
    TAS_CHECK(config.propagation_delay > 0)
        << "partitioned inter-switch links need positive propagation delay";
    link->SetSideSims(a->sim(), b->sim());
    RegisterIslandEdges(link);
  }

  size_t ia = std::numeric_limits<size_t>::max();
  size_t ib = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < switches_.size(); ++i) {
    if (switches_[i].get() == a) {
      ia = i;
    }
    if (switches_[i].get() == b) {
      ib = i;
    }
  }
  TAS_CHECK(ia != std::numeric_limits<size_t>::max() && ib != std::numeric_limits<size_t>::max());
  link->MixDefaultSeed((2ull << 40) | ia);
  link->MixDefaultSeed((2ull << 40) | ib);
  switch_edges_.push_back(SwitchEdge{ia, ib, port_a, port_b, link});
}

Link* Network::SwitchLink(const Switch* a, const Switch* b) const {
  for (const SwitchEdge& e : switch_edges_) {
    const Switch* ea = switches_[e.a].get();
    const Switch* eb = switches_[e.b].get();
    if ((ea == a && eb == b) || (ea == b && eb == a)) {
      return e.link;
    }
  }
  return nullptr;
}

void Network::ComputeRoutes() {
  const size_t n = switches_.size();
  // Adjacency: for each switch, (neighbor switch, local port).
  std::vector<std::vector<std::pair<size_t, int>>> adj(n);
  for (const SwitchEdge& e : switch_edges_) {
    adj[e.a].emplace_back(e.b, e.port_on_a);
    adj[e.b].emplace_back(e.a, e.port_on_b);
  }
  for (auto& sw : switches_) {
    sw->ClearRoutes();
  }

  // For each host: BFS over the switch graph from its attachment switch,
  // then install all equal-cost next hops toward it on every switch.
  for (const HostEdge& he : host_edges_) {
    const IpAddr dst = hosts_[he.host].ip;
    std::vector<int> dist(n, -1);
    std::deque<size_t> frontier;
    dist[he.sw] = 0;
    frontier.push_back(he.sw);
    while (!frontier.empty()) {
      const size_t u = frontier.front();
      frontier.pop_front();
      for (const auto& [v, port] : adj[u]) {
        (void)port;
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          frontier.push_back(v);
        }
      }
    }
    switches_[he.sw]->AddRoute(dst, he.port_on_sw);
    for (size_t u = 0; u < n; ++u) {
      if (u == he.sw || dist[u] < 0) {
        continue;
      }
      for (const auto& [v, port] : adj[u]) {
        if (dist[v] == dist[u] - 1) {
          switches_[u]->AddRoute(dst, port);
        }
      }
    }
  }
}

std::unique_ptr<Network> MakePointToPoint(Simulator* sim, const LinkConfig& config, IpAddr ip_a,
                                          IpAddr ip_b, SimPartition* partition) {
  auto net = std::make_unique<Network>(sim, partition);
  Link* link = net->AddLink(config);
  net->AttachHostToLink(ip_a, link, 0);
  net->AttachHostToLink(ip_b, link, 1);
  return net;
}

std::unique_ptr<Network> MakeStar(Simulator* sim, const std::vector<LinkConfig>& host_links,
                                  TimeNs switch_latency, SimPartition* partition) {
  auto net = std::make_unique<Network>(sim, partition);
  Switch* sw = net->AddSwitch("tor", switch_latency);
  for (size_t i = 0; i < host_links.size(); ++i) {
    net->AttachHost(MakeIp(10, 0, 0, static_cast<uint8_t>(i + 1)), sw, host_links[i]);
  }
  net->ComputeRoutes();
  return net;
}

std::unique_ptr<Network> MakeDumbbell(Simulator* sim, size_t n_left, size_t n_right,
                                      const LinkConfig& host_link, const LinkConfig& bottleneck,
                                      SimPartition* partition) {
  auto net = std::make_unique<Network>(sim, partition);
  Switch* left = net->AddSwitch("left");
  Switch* right = net->AddSwitch("right");
  net->ConnectSwitches(left, right, bottleneck);
  for (size_t i = 0; i < n_left; ++i) {
    net->AttachHost(MakeIp(10, 0, 1, static_cast<uint8_t>(i + 1)), left, host_link);
  }
  for (size_t i = 0; i < n_right; ++i) {
    net->AttachHost(MakeIp(10, 0, 2, static_cast<uint8_t>(i + 1)), right, host_link);
  }
  net->ComputeRoutes();
  return net;
}

std::unique_ptr<Network> MakeFatTree(Simulator* sim, const FatTreeConfig& config,
                                     SimPartition* partition) {
  const int k = config.k;
  TAS_CHECK(k >= 2 && k % 2 == 0);
  const int half = k / 2;
  auto net = std::make_unique<Network>(sim, partition);

  // Core switches: half*half of them.
  std::vector<Switch*> core;
  for (int i = 0; i < half * half; ++i) {
    core.push_back(net->AddSwitch("core" + std::to_string(i), config.switch_latency));
  }

  int host_counter = 0;
  for (int pod = 0; pod < k; ++pod) {
    std::vector<Switch*> edge;
    std::vector<Switch*> agg;
    for (int i = 0; i < half; ++i) {
      edge.push_back(net->AddSwitch("p" + std::to_string(pod) + "e" + std::to_string(i),
                                    config.switch_latency));
      agg.push_back(net->AddSwitch("p" + std::to_string(pod) + "a" + std::to_string(i),
                                   config.switch_latency));
    }
    // Edge <-> agg full mesh within the pod.
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        net->ConnectSwitches(edge[e], agg[a], config.fabric_link);
      }
    }
    // Agg a connects to core switches [a*half, (a+1)*half).
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        net->ConnectSwitches(agg[a], core[a * half + c], config.fabric_link);
      }
    }
    // Hosts on edge switches.
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < config.hosts_per_edge; ++h) {
        ++host_counter;
        const IpAddr ip = MakeIp(10, static_cast<uint8_t>(host_counter >> 16),
                                 static_cast<uint8_t>(host_counter >> 8),
                                 static_cast<uint8_t>(host_counter));
        net->AttachHost(ip, edge[e], config.host_link);
      }
    }
  }
  net->ComputeRoutes();
  return net;
}

}  // namespace tas
