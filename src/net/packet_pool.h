// PacketPool: free-list recycling for simulated packets.
//
// TAS's data path avoids per-packet memory management (the paper's fast path
// touches only preallocated flow state and buffers); the simulator mirrors
// that discipline. Every simulated packet-hop used to cost a heap-allocated
// Packet plus a payload vector; the pool hands out cleared packets whose
// payload buffers retain their capacity, so steady-state traffic allocates
// nothing. PacketPtr's deleter routes destruction back here from anywhere —
// including event closures destroyed at simulator teardown, which is what
// keeps LeakSanitizer clean with packets in flight.
//
// Set TAS_NO_POOL=1 (or PacketPool::SetPoolingEnabled(false)) to fall back
// to plain new/delete; same-seed runs are byte-identical either way (the
// pool only changes where packets live, never what the simulation does).
#ifndef SRC_NET_PACKET_POOL_H_
#define SRC_NET_PACKET_POOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/trace/metric_registry.h"

namespace tas {

struct PacketPoolStats {
  uint64_t allocated = 0;  // Fresh heap packets created through the pool.
  uint64_t reused = 0;     // Acquires served from the free list.
  uint64_t released = 0;   // Packets handed back (kept or, past cap, freed).
  uint64_t unpooled = 0;   // Acquires that bypassed pooling (TAS_NO_POOL).
  size_t free_size = 0;    // Free-list occupancy right now.
  size_t outstanding = 0;  // Pool-owned packets currently live.
};

class PacketPool {
 public:
  // Free-list cap: beyond this, returned packets are freed for real. High
  // enough that no experiment in bench/ ever trims in steady state.
  static constexpr size_t kDefaultMaxFree = 1 << 16;

  explicit PacketPool(size_t max_free = kDefaultMaxFree) : max_free_(max_free) {}
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Returns a packet with default-initialized headers and an empty payload
  // whose buffer keeps its previous capacity. Falls back to plain new (null
  // pool deleter) when pooling is disabled.
  PacketPtr Acquire();

  // Pooled copy of `src` (headers, payload bytes, simulation metadata).
  PacketPtr Clone(const Packet& src);

  // Deleter hook; not for direct use.
  void Release(Packet* pkt) noexcept;

  PacketPoolStats stats() const;
  size_t free_size() const { return free_.size(); }
  size_t outstanding() const { return allocated_ + reused_ - released_; }

  // Registers pool counters/gauges under "<prefix>." (DESIGN.md §7 naming).
  void RegisterMetrics(MetricRegistry* registry, const std::string& prefix) const;

  // The pool MakeTcpPacket and the packet-duplication paths draw from:
  // the installed pool if any, else a process-wide fallback. The fallback is
  // intentionally leaked (never destroyed): packets captured in
  // static-storage objects may be released arbitrarily late at exit, and a
  // reachable pool is invisible to LeakSanitizer.
  static PacketPool& Current();

  // Installs `pool` as Current() (nullptr restores the process fallback);
  // returns the previously installed pool. Experiment scopes a fresh pool
  // per simulation this way, so pool counters are deterministic per run.
  // Release always routes through the deleter's own pool, so packets from a
  // previous install drain correctly regardless.
  static PacketPool* Install(PacketPool* pool);

  // Escape hatch (TAS_NO_POOL=1 env or runtime toggle): future Acquires
  // bypass the free list. Outstanding pooled packets are unaffected.
  static bool PoolingEnabled();
  static void SetPoolingEnabled(bool enabled);

 private:
  std::vector<Packet*> free_;
  size_t max_free_;
  uint64_t allocated_ = 0;
  uint64_t reused_ = 0;
  uint64_t released_ = 0;
  uint64_t unpooled_ = 0;
};

}  // namespace tas

#endif  // SRC_NET_PACKET_POOL_H_
