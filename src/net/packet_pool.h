// PacketPool: free-list recycling for simulated packets.
//
// TAS's data path avoids per-packet memory management (the paper's fast path
// touches only preallocated flow state and buffers); the simulator mirrors
// that discipline. Every simulated packet-hop used to cost a heap-allocated
// Packet plus a payload vector; the pool hands out cleared packets whose
// payload buffers retain their capacity, so steady-state traffic allocates
// nothing. PacketPtr's deleter routes destruction back here from anywhere —
// including event closures destroyed at simulator teardown, which is what
// keeps LeakSanitizer clean with packets in flight.
//
// Set TAS_NO_POOL=1 (or PacketPool::SetPoolingEnabled(false)) to fall back
// to plain new/delete; same-seed runs are byte-identical either way (the
// pool only changes where packets live, never what the simulation does).
#ifndef SRC_NET_PACKET_POOL_H_
#define SRC_NET_PACKET_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/trace/metric_registry.h"

namespace tas {

struct PacketPoolStats {
  uint64_t allocated = 0;  // Fresh heap packets created through the pool.
  uint64_t reused = 0;     // Acquires served from the free list.
  uint64_t released = 0;   // Packets handed back (kept or, past cap, freed).
  uint64_t unpooled = 0;   // Acquires that bypassed pooling (TAS_NO_POOL).
  size_t free_size = 0;    // Free-list occupancy right now.
  size_t outstanding = 0;  // Pool-owned packets currently live.
};

class PacketPool {
 public:
  // Free-list cap: beyond this, returned packets are freed for real. High
  // enough that no experiment in bench/ ever trims in steady state.
  static constexpr size_t kDefaultMaxFree = 1 << 16;

  explicit PacketPool(size_t max_free = kDefaultMaxFree) : max_free_(max_free) {}
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Returns a packet with default-initialized headers and an empty payload
  // whose buffer keeps its previous capacity. Falls back to plain new (null
  // pool deleter) when pooling is disabled.
  PacketPtr Acquire();

  // Pooled copy of `src` (headers, payload bytes, simulation metadata).
  PacketPtr Clone(const Packet& src);

  // Wraps a raw packet that is already accounted for (it was Acquired from
  // some pool in this pool group and released raw for a cross-island hop)
  // with this pool's deleter. No counters change: the acquire was counted at
  // the source pool and the eventual release is counted wherever the deleter
  // fires. With pooling disabled the wrap uses the plain-delete deleter.
  PacketPtr Adopt(Packet* pkt);

  // Deleter hook; not for direct use.
  void Release(Packet* pkt) noexcept;

  PacketPoolStats stats() const;
  size_t free_size() const { return free_.size(); }
  size_t outstanding() const { return allocated_ + reused_ - released_; }

  // Registers pool counters/gauges under "<prefix>." (DESIGN.md §7 naming).
  void RegisterMetrics(MetricRegistry* registry, const std::string& prefix) const;

  // The pool MakeTcpPacket and the packet-duplication paths draw from:
  // the installed pool if any, else a process-wide fallback. The fallback is
  // intentionally leaked (never destroyed): packets captured in
  // static-storage objects may be released arbitrarily late at exit, and a
  // reachable pool is invisible to LeakSanitizer.
  static PacketPool& Current();

  // Installs `pool` as Current() (nullptr restores the process fallback);
  // returns the previously installed pool. Experiment scopes a fresh pool
  // per simulation this way, so pool counters are deterministic per run.
  // Release always routes through the deleter's own pool, so packets from a
  // previous install drain correctly regardless.
  static PacketPool* Install(PacketPool* pool);

  // Escape hatch (TAS_NO_POOL=1 env or runtime toggle): future Acquires
  // bypass the free list. Outstanding pooled packets are unaffected.
  static bool PoolingEnabled();
  static void SetPoolingEnabled(bool enabled);

  // --- Per-island pools (DESIGN.md §13) -------------------------------------
  // Thread-local pool override: while set, Current() resolves to it and
  // pooled releases route to it regardless of which pool the packet came
  // from, so each island's worker thread acquires and recycles packets on
  // its own free list with zero locking. Installed by the partition's
  // island-enter hook; nullptr restores the process-wide pool.
  static PacketPool* ThreadOverride();
  static void SetThreadOverride(PacketPool* pool);

  // Marks this pool as part of a pool group that exchanges packets across
  // member free lists (island pools). Cross-member traffic makes the
  // per-pool outstanding() count meaningless (it can even go "negative"),
  // so the destructor's leak check is skipped; the group owner (Experiment)
  // checks the aggregate across members instead.
  void set_grouped(bool grouped) { grouped_ = grouped; }
  bool grouped() const { return grouped_; }
  // Joins a pool group: marks this pool grouped and contributes its final
  // balance() to the shared cell when destroyed. The last member destroyed
  // (the one holding the cell's final reference) checks that the aggregate
  // is zero — the group-level analogue of the per-pool leak check.
  void set_group(std::shared_ptr<std::atomic<int64_t>> cell) {
    group_ = std::move(cell);
    grouped_ = true;
  }
  // Signed acquire-minus-release balance, summable across a pool group.
  int64_t balance() const {
    return static_cast<int64_t>(allocated_ + reused_) - static_cast<int64_t>(released_);
  }

 private:
  std::vector<Packet*> free_;
  size_t max_free_;
  bool grouped_ = false;
  std::shared_ptr<std::atomic<int64_t>> group_;
  uint64_t allocated_ = 0;
  uint64_t reused_ = 0;
  uint64_t released_ = 0;
  uint64_t unpooled_ = 0;
};

}  // namespace tas

#endif  // SRC_NET_PACKET_POOL_H_
