#include "src/net/switch.h"

#include <algorithm>

#include "src/trace/latency.h"

namespace tas {

// Adapter: receives packets from one link and hands them to the switch.
class Switch::Port : public NetDevice {
 public:
  Port(Switch* parent, LinkEnd end) : parent_(parent), end_(end) { end_.Attach(this); }

  void Receive(PacketPtr pkt) override { parent_->HandlePacket(std::move(pkt)); }
  void Send(PacketPtr pkt) { end_.Send(std::move(pkt)); }
  LinkEnd end() const { return end_; }

 private:
  Switch* parent_;
  LinkEnd end_;
};

Switch::Switch(Simulator* sim, std::string name, TimeNs forwarding_latency)
    : sim_(sim), name_(std::move(name)), forwarding_latency_(forwarding_latency) {}

Switch::~Switch() = default;

int Switch::AddPort(LinkEnd end) {
  ports_.push_back(std::make_unique<Port>(this, end));
  return static_cast<int>(ports_.size()) - 1;
}

LinkEnd Switch::port_end(int port) const {
  TAS_CHECK(port >= 0 && static_cast<size_t>(port) < ports_.size());
  return ports_[static_cast<size_t>(port)]->end();
}

void Switch::AddRoute(IpAddr dst, int port) {
  TAS_CHECK(port >= 0 && static_cast<size_t>(port) < ports_.size());
  routes_[dst].push_back(port);
}

void Switch::HandlePacket(PacketPtr pkt) {
  auto it = routes_.find(pkt->ip.dst);
  if (it == routes_.end() || it->second.empty()) {
    ++no_route_drops_;
    if (LatencyTracer* lt = LatencyTracer::Current()) {
      lt->Abandon(pkt->lat_id);
    }
    return;
  }
  const std::vector<int>& candidates = it->second;
  int port;
  if (candidates.size() == 1) {
    port = candidates[0];
  } else {
    const uint32_t h =
        FlowHash(pkt->ip.src, pkt->tcp.src_port, pkt->ip.dst, pkt->tcp.dst_port);
    port = candidates[h % candidates.size()];
  }
  ++forwarded_;
  // Arrivals are FIFO in time, so due times are monotone; the pending queue
  // owns the packets (sim teardown recycles them via the pool).
  pending_.push_back(Pending{sim_->Now() + forwarding_latency_, port, std::move(pkt)});
  pending_hw_ = std::max(pending_hw_, pending_.size());
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    sim_->After(forwarding_latency_, [this] { Flush(); });
  }
}

void Switch::Flush() {
  flush_scheduled_ = false;
  // Burst-admit per egress link so a forwarded wave leaves each port as one
  // serialized train (one delivery event) instead of frame-by-frame.
  touched_ports_.clear();
  LatencyTracer* lt = LatencyTracer::Current();
  while (!pending_.empty() && pending_.front().due <= sim_->Now()) {
    Pending p = std::move(pending_.front());
    pending_.pop_front();
    Port* port = ports_[static_cast<size_t>(p.port)].get();
    if (std::find(touched_ports_.begin(), touched_ports_.end(), p.port) ==
        touched_ports_.end()) {
      touched_ports_.push_back(p.port);
      port->end().BeginAdmit();
    }
    if (lt != nullptr) {
      // Forwarding-pipeline dwell ends here; the egress link charges its own
      // queue/wire stages next.
      lt->Stamp(p.pkt->lat_id, LatencyStage::kSwitchQueue, sim_->Now());
    }
    port->Send(std::move(p.pkt));
  }
  for (const int port : touched_ports_) {
    ports_[static_cast<size_t>(port)]->end().EndAdmit();
  }
  if (!pending_.empty()) {
    flush_scheduled_ = true;
    sim_->At(pending_.front().due, [this] { Flush(); });
  }
}

void Switch::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  registry->AddCounter(prefix + ".forwarded", &forwarded_);
  registry->AddCounter(prefix + ".no_route_drops", &no_route_drops_);
  registry->AddGauge(prefix + ".pending_hw",
                     [this] { return static_cast<double>(pending_hw_); });
  for (size_t p = 0; p < ports_.size(); ++p) {
    const LinkEnd end = ports_[p]->end();
    registry->AddGauge(prefix + ".port." + std::to_string(p) + ".queue_pkts", [end] {
      return static_cast<double>(end.link->QueueLen(end.side));
    });
  }
}

}  // namespace tas
