#include "src/net/switch.h"

namespace tas {

// Adapter: receives packets from one link and hands them to the switch.
class Switch::Port : public NetDevice {
 public:
  Port(Switch* parent, LinkEnd end) : parent_(parent), end_(end) { end_.Attach(this); }

  void Receive(PacketPtr pkt) override { parent_->HandlePacket(std::move(pkt)); }
  void Send(PacketPtr pkt) { end_.Send(std::move(pkt)); }
  LinkEnd end() const { return end_; }

 private:
  Switch* parent_;
  LinkEnd end_;
};

Switch::Switch(Simulator* sim, std::string name, TimeNs forwarding_latency)
    : sim_(sim), name_(std::move(name)), forwarding_latency_(forwarding_latency) {}

Switch::~Switch() = default;

int Switch::AddPort(LinkEnd end) {
  ports_.push_back(std::make_unique<Port>(this, end));
  return static_cast<int>(ports_.size()) - 1;
}

LinkEnd Switch::port_end(int port) const {
  TAS_CHECK(port >= 0 && static_cast<size_t>(port) < ports_.size());
  return ports_[static_cast<size_t>(port)]->end();
}

void Switch::AddRoute(IpAddr dst, int port) {
  TAS_CHECK(port >= 0 && static_cast<size_t>(port) < ports_.size());
  routes_[dst].push_back(port);
}

void Switch::HandlePacket(PacketPtr pkt) {
  auto it = routes_.find(pkt->ip.dst);
  if (it == routes_.end() || it->second.empty()) {
    ++no_route_drops_;
    return;
  }
  const std::vector<int>& candidates = it->second;
  int port;
  if (candidates.size() == 1) {
    port = candidates[0];
  } else {
    const uint32_t h =
        FlowHash(pkt->ip.src, pkt->tcp.src_port, pkt->ip.dst, pkt->tcp.dst_port);
    port = candidates[h % candidates.size()];
  }
  ++forwarded_;
  // The event node owns the packet; if the event never fires (sim teardown)
  // its destruction returns the packet to the pool.
  sim_->After(forwarding_latency_, [this, port, pkt = std::move(pkt)]() mutable {
    ports_[static_cast<size_t>(port)]->Send(std::move(pkt));
  });
}

void Switch::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  registry->AddCounter(prefix + ".forwarded", &forwarded_);
  registry->AddCounter(prefix + ".no_route_drops", &no_route_drops_);
  for (size_t p = 0; p < ports_.size(); ++p) {
    const LinkEnd end = ports_[p]->end();
    registry->AddGauge(prefix + ".port." + std::to_string(p) + ".queue_pkts", [end] {
      return static_cast<double>(end.link->QueueLen(end.side));
    });
  }
}

}  // namespace tas
