// Quickstart: two hosts on a simulated 10G link, the server accelerated by
// TAS, the client on the Linux-model stack — the simplest end-to-end use of
// the public API. Demonstrates:
//   1. building a topology and hosts (Experiment),
//   2. the Stack interface (Listen/Connect/Send/Recv + AppHandler callbacks),
//   3. TAS interoperating with a conventional TCP peer (paper Table 4),
//   4. reading TAS's fast-path statistics afterwards.
//
// Run: ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "src/harness/experiment.h"
#include "src/harness/table.h"

namespace {

using namespace tas;

// A tiny request/response server: upper-cases whatever it receives.
class UppercaseServer : public AppHandler {
 public:
  UppercaseServer(Stack* stack, uint16_t port) : stack_(stack), port_(port) {}

  void Start() {
    stack_->SetHandler(this);
    stack_->Listen(port_);
  }

  void OnAccepted(ConnId conn, uint16_t) override {
    std::printf("[server] accepted connection %llu\n",
                static_cast<unsigned long long>(conn));
  }

  void OnData(ConnId conn, size_t bytes) override {
    std::string buf(bytes, '\0');
    const size_t n = stack_->Recv(conn, reinterpret_cast<uint8_t*>(buf.data()), bytes);
    buf.resize(n);
    for (char& c : buf) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    stack_->Send(conn, reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  }

  void OnRemoteClosed(ConnId conn) override { stack_->Close(conn); }

 private:
  Stack* stack_;
  uint16_t port_;
};

class GreetingClient : public AppHandler {
 public:
  GreetingClient(Simulator* sim, Stack* stack, IpAddr server, uint16_t port)
      : sim_(sim), stack_(stack), server_(server), port_(port) {}

  void Start() {
    stack_->SetHandler(this);
    conn_ = stack_->Connect(server_, port_);
  }

  void OnConnected(ConnId conn, bool success) override {
    std::printf("[client] connected=%d after %.1f us\n", success, ToUs(sim_->Now()));
    if (success) {
      sent_at_ = sim_->Now();
      const std::string msg = "hello, tcp acceleration as a service!";
      stack_->Send(conn, reinterpret_cast<const uint8_t*>(msg.data()), msg.size());
    }
  }

  void OnData(ConnId conn, size_t bytes) override {
    std::string buf(bytes, '\0');
    stack_->Recv(conn, reinterpret_cast<uint8_t*>(buf.data()), bytes);
    std::printf("[client] reply after %.1f us RTT: %s\n", ToUs(sim_->Now() - sent_at_),
                buf.c_str());
    stack_->Close(conn);
    done_ = true;
  }

  bool done() const { return done_; }

 private:
  Simulator* sim_;
  Stack* stack_;
  IpAddr server_;
  uint16_t port_;
  ConnId conn_ = kInvalidConn;
  TimeNs sent_at_ = 0;
  bool done_ = false;
};

}  // namespace

int main() {
  using namespace tas;

  // Server: TAS with 2 application cores and 2 fast-path cores.
  HostSpec server_spec;
  server_spec.stack = StackKind::kTas;
  server_spec.app_cores = 2;
  server_spec.stack_cores = 2;

  // Client: the Linux-model stack — TAS is wire-compatible with normal TCP.
  HostSpec client_spec;
  client_spec.stack = StackKind::kLinux;

  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  auto exp = Experiment::PointToPoint(server_spec, client_spec, link);

  UppercaseServer server(exp->host(0).stack(), 4242);
  GreetingClient client(exp->host_sim(1), exp->host(1).stack(), exp->host(0).ip(), 4242);
  server.Start();
  client.Start();

  exp->sim().RunUntil(Sec(1));
  if (!client.done()) {
    std::printf("ERROR: request did not complete\n");
    return 1;
  }

  const TasStats& stats = exp->host(0).tas()->stats();
  std::printf("\nTAS server statistics:\n");
  std::printf("  connections established: %llu\n",
              static_cast<unsigned long long>(stats.connections_established));
  std::printf("  fast-path packets rx/tx: %llu/%llu\n",
              static_cast<unsigned long long>(stats.fastpath_rx_packets),
              static_cast<unsigned long long>(stats.fastpath_tx_packets));
  std::printf("  slow-path exceptions:    %llu (handshake + teardown only)\n",
              static_cast<unsigned long long>(stats.exceptions));
  std::printf("  sim events executed:     %llu\n",
              static_cast<unsigned long long>(exp->events_executed()));
  return 0;
}
