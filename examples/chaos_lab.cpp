// Chaos laboratory: a scripted fault timeline (src/fault) thrown at 16 bulk
// TAS flows on a 10G link — a link flap, a Gilbert-Elliott burst-loss window,
// a corruption window (caught by the modeled NIC checksum), and a reordering
// window — with per-10ms goodput so each impairment's dent and the recovery
// after it are visible. The run is fully deterministic: a fixed link RNG seed
// plus the schedule reproduce byte-identical stats every time.
//
// Run: ./build/examples/chaos_lab
#include <cstdio>

#include "src/app/bulk.h"
#include "src/harness/experiment.h"
#include "src/harness/table.h"

int main() {
  using namespace tas;

  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.app_cores = 4;

  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  link.rng_seed = 42;  // Byte-identical reruns.
  auto exp = Experiment::PointToPoint(spec, spec, link);
  Link* wire = exp->host_link(0);

  // The chaos timeline.
  FaultSchedule chaos;
  chaos.LinkFlap(Ms(20), Ms(5), wire)
      .ImpairmentWindowBoth(Ms(40), Ms(60), wire, GilbertElliottLoss(0.02, 0.3, 0.9))
      .ImpairmentWindowBoth(Ms(70), Ms(85), wire, Corruption(0.02))
      .ImpairmentWindowBoth(Ms(90), Ms(100), wire, Reordering(0.05, Us(20), Us(100)));
  exp->faults().Install(chaos);

  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), BulkReceiverConfig{});
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 16;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();

  std::printf("16 bulk TAS flows on one 10G link; scripted faults:\n");
  std::printf("  20-25 ms  link down (flap)\n");
  std::printf("  40-60 ms  Gilbert-Elliott burst loss (90%% in bursts of ~4)\n");
  std::printf("  70-85 ms  2%% frame corruption (NIC checksum discards)\n");
  std::printf("  90-100 ms 5%% reordering (+20-100 us)\n\n");

  TablePrinter table({"Window [ms]", "Goodput [Gbps]", "Faults active"});
  const char* labels[] = {"-",    "-",    "flap", "-",    "burst loss",
                          "burst loss", "-",    "corruption", "corruption",
                          "reordering", "-",    "-"};
  uint64_t last_bytes = 0;
  for (int bin = 0; bin < 12; ++bin) {
    exp->sim().RunUntil(Ms(10) * (bin + 1));
    const uint64_t bytes = rx.bytes_received();
    const double gbps = static_cast<double>(bytes - last_bytes) * 8 / Ms(10);
    last_bytes = bytes;
    table.AddRow(std::to_string(bin * 10) + "-" + std::to_string(bin * 10 + 10),
                 Fmt(gbps, 2), labels[bin]);
  }
  table.Print();

  std::printf("\nFault log (%zu events applied, %zu pending):\n",
              exp->faults().log().size(), exp->faults().pending());
  for (const FaultInjector::LogEntry& entry : exp->faults().log()) {
    std::printf("  %6.1f ms  %s\n", static_cast<double>(entry.at) / Ms(1),
                entry.description.c_str());
  }

  const LinkStats& data = wire->stats(1);  // Sender -> receiver direction.
  std::printf("\nLink (data direction): %llu pkts, %llu burst-loss drops, "
              "%llu down drops, %llu corrupted, %llu reordered\n",
              (unsigned long long)data.tx_packets, (unsigned long long)data.drops_induced,
              (unsigned long long)data.drops_down, (unsigned long long)data.corrupt_marked,
              (unsigned long long)data.reordered);
  const TasStats& stats = exp->host(1).tas()->stats();
  std::printf("Sender TAS: %llu fast retransmits, %llu timeout retransmits, "
              "%llu handshake retransmits\n",
              (unsigned long long)stats.fast_retransmits,
              (unsigned long long)stats.timeout_retransmits,
              (unsigned long long)stats.handshake_retransmits);
  std::printf("Receiver NIC: %llu checksum discards; receiver TAS: %llu ooo accepted\n",
              (unsigned long long)exp->host(0).tas()->nic()->rx_checksum_drops(),
              (unsigned long long)exp->host(0).tas()->stats().ooo_accepted);
  std::printf("\nSame seed + same schedule => byte-identical stats on every run.\n");
  return 0;
}
