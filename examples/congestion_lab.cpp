// Congestion-control laboratory: a dumbbell topology with an ECN-marking
// 10G bottleneck shared by bulk flows, comparing TAS's slow-path congestion
// policies (rate-based DCTCP vs TIMELY) and the window-based baselines
// (DCTCP, NewReno) — the framework of paper §3.2, where congestion control
// is policy in the slow path, swapped without touching the fast path.
//
// Run: ./build/examples/congestion_lab
#include <cstdio>

#include "src/app/bulk.h"
#include "src/harness/experiment.h"
#include "src/harness/table.h"

namespace {

using namespace tas;

struct LabResult {
  double gbps = 0;
  double avg_queue_pkts = 0;
  uint64_t marks = 0;
  uint64_t drops = 0;
};

LabResult RunLab(StackKind kind, CcAlgorithm algorithm) {
  constexpr size_t kFlows = 32;
  HostSpec spec;
  spec.stack = kind;
  spec.app_cores = 4;
  if (kind == StackKind::kTas) {
    spec.tas_overridden = true;
    spec.tas.max_fastpath_cores = 4;
    spec.tas.costs = &MinimalCostModel();
    spec.tas.cc_algorithm = algorithm;
    spec.tas.dctcp.initial_bps = 500e6;
  } else {
    spec.engine_overridden = true;
    spec.engine = IxStackConfig();
    spec.engine.costs = &MinimalCostModel();
    spec.engine.tcp.cc = algorithm;
  }

  LinkConfig host_link;
  host_link.gbps = 40.0;
  LinkConfig bottleneck;
  bottleneck.gbps = 10.0;
  bottleneck.ecn_threshold_pkts = 65;  // DCTCP-style marking.
  bottleneck.queue_limit_pkts = 256;
  bottleneck.propagation_delay = Us(10);

  auto exp = Experiment::Custom(
      [&](Simulator* sim, SimPartition* partition) {
        return MakeDumbbell(sim, 1, 1, host_link, bottleneck, partition);
      },
      {spec});

  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), BulkReceiverConfig{});
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = kFlows;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();

  exp->sim().RunUntil(Ms(50));
  rx.BeginMeasurement();
  exp->sim().RunUntil(Ms(150));

  // The dumbbell's bottleneck is the first link created (ConnectSwitches).
  Link* wire = exp->net()->links()[0].get();
  LabResult result;
  result.gbps = rx.ThroughputBps() / 1e9;
  // Direction 1 -> 0 carries the data (right switch to left switch).
  result.avg_queue_pkts = wire->stats(1).queue_pkts.mean();
  result.marks = wire->stats(1).ecn_marks;
  result.drops = wire->stats(1).drops_overflow;
  return result;
}

}  // namespace

int main() {
  using namespace tas;

  std::printf("Dumbbell: 32 bulk flows across a 10G ECN-marking bottleneck.\n\n");
  struct Config {
    const char* name;
    StackKind kind;
    CcAlgorithm algorithm;
  };
  const Config configs[] = {
      {"TAS + rate-based DCTCP", StackKind::kTas, CcAlgorithm::kDctcpRate},
      {"TAS + TIMELY", StackKind::kTas, CcAlgorithm::kTimely},
      {"window DCTCP (baseline)", StackKind::kIx, CcAlgorithm::kDctcpWindow},
      {"NewReno, no ECN (baseline)", StackKind::kIx, CcAlgorithm::kNewReno},
  };
  TablePrinter table({"Congestion control", "Goodput [Gbps]", "Avg queue [pkts]",
                      "ECN marks", "Drops"});
  for (const Config& config : configs) {
    const LabResult r = RunLab(config.kind, config.algorithm);
    table.AddRow(config.name, Fmt(r.gbps, 2), Fmt(r.avg_queue_pkts, 1), r.marks, r.drops);
  }
  table.Print();
  std::printf(
      "\nTAS enforces whichever policy the slow path runs; swapping DCTCP for\n"
      "TIMELY is a one-line configuration change (paper SS3.2). ECN-driven\n"
      "controllers hold short queues; NewReno fills the buffer until it drops.\n");
  return 0;
}
