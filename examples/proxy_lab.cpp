// Reverse-proxy lab: the src/proxy tier end to end on libTAS (DESIGN.md
// §11). A proxy host fronts an origin host; a client host drives zipf-
// popular GETs over churning keep-alive connections that half-close after
// their last request.
//
// The demo shows the cache warming up (hit rate per 50ms window), the three
// response paths (hit / miss-and-store / splice) diverging in the proxy's
// counters, the bounded origin pool absorbing thousands of client
// connections with a handful of upstream ones, and finishes with the
// proxy.* metric namespace as CI would scrape it.
//
// Run: ./build/examples/proxy_lab
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/harness/experiment.h"
#include "src/harness/table.h"
#include "src/proxy/origin_server.h"
#include "src/proxy/proxy_client.h"
#include "src/proxy/proxy_server.h"
#include "src/trace/metric_registry.h"

namespace {

using namespace tas;

HostSpec TasHost() {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  return spec;
}

}  // namespace

int main() {
  auto exp = Experiment::Star({TasHost(), TasHost(), TasHost()}, {LinkConfig{}});

  // Proxy on host 0: 256KB cache, bodies >= 8KB spliced client<-origin, at
  // most 8 pooled origin connections no matter how many clients arrive.
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 256 * 1024;
  proxy_cfg.splice_min_body = 8 * 1024;
  proxy_cfg.pool.max_conns = 8;
  proxy_cfg.pool.origin_ip = exp->host(1).ip();
  proxy_cfg.pool.origin_port = 8080;

  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 128;
  origin_cfg.body_spread = 16 * 1024;  // Mix of cacheable and splice-class.

  // 2000 short-lived clients, 64 alive at once, each half-closing right
  // after its 4th request and draining owed responses half-open.
  ProxyClientConfig client_cfg;
  client_cfg.proxy_ip = exp->host(0).ip();
  client_cfg.concurrency = 64;
  client_cfg.total_connections = 2000;
  client_cfg.requests_per_connection = 4;
  client_cfg.half_close = true;
  client_cfg.num_objects = 2000;
  client_cfg.zipf_skew = 0.9;
  client_cfg.min_body_bytes = origin_cfg.min_body_bytes;
  client_cfg.body_spread = origin_cfg.body_spread;

  ProxyServer proxy(exp->host_sim(0), exp->host(0).stack(), proxy_cfg);
  OriginServer origin(exp->host_sim(1), exp->host(1).stack(), origin_cfg);
  ProxyClientGen clients(exp->host_sim(2), exp->host(2).stack(), client_cfg);

  MetricRegistry registry;
  proxy.RegisterMetrics(registry);

  origin.Start();
  proxy.Start();
  clients.Start();
  clients.BeginMeasurement();  // Latency over the whole run.

  std::cout << "Cache warm-up (zipf 0.9 over 2000 objects, 256KB cache):\n";
  TablePrinter warmup({"window", "responses", "hit rate", "live clients", "pool conns"});
  uint64_t last_hits = 0;
  uint64_t last_accesses = 0;
  uint64_t last_responses = 0;
  const uint64_t target =
      client_cfg.total_connections * client_cfg.requests_per_connection;
  for (int w = 0; w < 40 && clients.completed() < target; ++w) {
    exp->sim().RunUntil(exp->sim().Now() + Ms(50));
    const HotObjectCacheStats& cs = proxy.cache().stats();
    const uint64_t accesses = cs.hits + cs.misses;
    const uint64_t d_hits = cs.hits - last_hits;
    const uint64_t d_acc = accesses - last_accesses;
    char label[32];
    std::snprintf(label, sizeof(label), "%d-%dms", w * 50, (w + 1) * 50);
    warmup.AddRow(label, proxy.responses() - last_responses,
                  d_acc == 0 ? std::string("-")
                             : Fmt(100.0 * static_cast<double>(d_hits) /
                                       static_cast<double>(d_acc),
                                   1) + "%",
                  proxy.live_clients(), proxy.pool().live_conns());
    last_hits = cs.hits;
    last_accesses = accesses;
    last_responses = proxy.responses();
  }
  warmup.Print();

  const HotObjectCacheStats& cs = proxy.cache().stats();
  const OriginPoolStats& ps = proxy.pool().stats();
  std::cout << "\nRun totals:\n";
  TablePrinter totals({"Metric", "Value"});
  totals.AddRow("client conns opened", clients.reconnects() + client_cfg.concurrency);
  totals.AddRow("requests completed", clients.completed());
  totals.AddRow("duplicates/mismatches/bad bodies",
                clients.duplicates() + clients.mismatches() + clients.bad_bodies());
  totals.AddRow("cache hits", cs.hits);
  totals.AddRow("cache misses", cs.misses);
  totals.AddRow("cache evictions", cs.evictions);
  totals.AddRow("cache bytes used", proxy.cache().bytes());
  totals.AddRow("spliced bytes (never copied)", proxy.spliced_bytes());
  totals.AddRow("origin conns opened", ps.opened);
  totals.AddRow("origin conns high-water", ps.conns_hw);
  totals.AddRow("origin requests pipelined onto live conns", ps.reused);
  totals.AddRow("idle origin conns reaped", ps.reaped);
  totals.AddRow("client p50 us", Fmt(clients.latency().Median() / 1000.0, 1));
  totals.AddRow("client p99 us", Fmt(clients.latency().Percentile(99) / 1000.0, 1));
  totals.Print();

  std::cout << "\nproxy.* metrics (MetricRegistry snapshot, JSONL):\n";
  registry.WriteJsonl(std::cout);
  return 0;
}
