// Trace laboratory: the unified observability layer (src/trace) pointed at a
// lossy bulk transfer. Four TAS flows push data through a 10G link with 1%
// induced loss while the tracer records, on both hosts:
//   * per-flow protocol events (handshake, data/ACK, dupacks, retransmits),
//   * CPU busy spans for every fast-path core + the slow path,
//   * time series (per-flow rate, bytes in flight, buffer occupancy,
//     per-core utilization) swept every 100 us,
//   * the always-on metric registry (TAS, NIC, simulator counters).
//
// The run dumps trace_lab.h0.* / trace_lab.h1.* bundles: three JSONL files
// plus a Chrome trace-event JSON — open trace_lab.h1.perfetto.json in
// https://ui.perfetto.dev to see retransmit instants sitting on the flow
// tracks right where the core spans stall.
//
// Run: ./build/examples/trace_lab
#include <cstdio>

#include "src/app/bulk.h"
#include "src/harness/experiment.h"

int main() {
  using namespace tas;

  TasConfig tas_config;
  tas_config.trace.flow_events = true;
  tas_config.trace.cpu_spans = true;
  tas_config.trace.sample_period = Us(100);
  tas_config.trace.sample_flows = true;

  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.app_cores = 2;
  spec.tas = tas_config;
  spec.tas_overridden = true;

  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 128;
  link.drop_rate = 0.01;  // The lossy part: 1% uniform loss, both directions.
  link.rng_seed = 7;      // Byte-identical reruns.
  auto exp = Experiment::PointToPoint(spec, spec, link);

  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), BulkReceiverConfig{});
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 4;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();

  exp->sim().RunUntil(Ms(50));

  // Host 1 is the sender: its trace shows data tx, dupacks and retransmits.
  for (int h = 0; h < 2; ++h) {
    TasService* tas = exp->host(static_cast<size_t>(h)).tas();
    const Tracer& tracer = tas->tracer();
    std::printf("host %d: %llu flow events (%llu overwritten), %zu cpu spans, "
                "%zu time series, %zu sweeps\n",
                h, (unsigned long long)tracer.flow_events().recorded(),
                (unsigned long long)tracer.flow_events().overwritten(),
                tracer.spans().spans().size(), tracer.sampler().series().size(),
                (size_t)tracer.sampler().sweeps());
  }
  const TasStats& stats = exp->host(1).tas()->stats();
  std::printf("sender: %llu data pkts, %llu fast rexmits, %llu timeout rexmits\n",
              (unsigned long long)stats.fastpath_tx_packets,
              (unsigned long long)stats.fast_retransmits,
              (unsigned long long)stats.timeout_retransmits);

  const size_t written = exp->WriteTraces("trace_lab");
  std::printf("\nwrote %zu trace bundles (trace_lab.h0.*, trace_lab.h1.*):\n", written);
  std::printf("  *.metrics.jsonl      one {\"name\",\"kind\",\"value\"} object per metric\n");
  std::printf("  *.flow_events.jsonl  one typed protocol event per line\n");
  std::printf("  *.timeseries.jsonl   one {\"name\",\"points\":[[t,v],...]} per series\n");
  std::printf("  *.perfetto.json      load in https://ui.perfetto.dev\n");
  std::printf("\nSame seed => byte-identical trace files on every run.\n");
  return 0;
}
