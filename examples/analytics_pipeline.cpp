// Real-time analytics pipeline demo (FlexStorm, paper §5.4): three nodes in
// a ring pass tuples spout -> demux -> workers -> mux -> next node over TCP.
// Runs the same pipeline on the Linux-model stack (with the 10ms output
// batching it needs) and on TAS (no batching) and prints the per-stage tuple
// latency breakdown — the paper's Table 8 in miniature.
//
// Run: ./build/examples/analytics_pipeline
#include <cstdio>

#include "src/app/flexstorm.h"
#include "src/harness/experiment.h"
#include "src/harness/table.h"

namespace {

using namespace tas;

struct PipelineResult {
  double mtuples_per_sec = 0;
  double input_us = 0;
  double processing_us = 0;
  double output_us = 0;
  double p99_total_us = 0;
};

PipelineResult RunPipeline(StackKind kind) {
  constexpr int kWorkers = 2;
  constexpr int kAppCores = kWorkers + 2;  // demux + workers + mux.

  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  for (int i = 0; i < 3; ++i) {
    HostSpec spec;
    spec.stack = kind;
    spec.app_cores = kAppCores;
    spec.stack_cores = 2;
    specs.push_back(spec);
    links.push_back(LinkConfig{});
  }
  auto exp = Experiment::Star(specs, links);

  FlexStormConfig config;
  config.num_workers = kWorkers;
  config.spout_rate_tps = 200000;  // Moderate load: latency, not saturation.
  if (kind == StackKind::kTas) {
    config.mux_batch_timeout = 0;  // TAS needs no batching.
  } else {
    config.mux_batch_timeout = Ms(10);
  }

  std::vector<std::unique_ptr<FlexStormNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    config.rng_seed = 21 + i;
    nodes.push_back(std::make_unique<FlexStormNode>(
        exp->host_sim(i), exp->host(i).stack(), exp->host(i).AppCorePtrs(), config));
  }
  for (int i = 0; i < 3; ++i) {
    nodes[i]->Start(exp->host((i + 1) % 3).ip());
  }

  exp->sim().RunUntil(Ms(40));
  for (auto& node : nodes) {
    node->BeginMeasurement();
  }
  exp->sim().RunUntil(Ms(140));

  PipelineResult result;
  RunningStats input;
  RunningStats processing;
  RunningStats output;
  LatencyRecorder total;
  for (auto& node : nodes) {
    result.mtuples_per_sec += node->Throughput() / 1e6;
    input.Merge(node->input_wait_us());
    processing.Merge(node->processing_us());
    output.Merge(node->output_wait_us());
  }
  result.input_us = input.mean();
  result.processing_us = processing.mean();
  result.output_us = output.mean();
  result.p99_total_us = nodes[0]->tuple_latency_us().Percentile(99);
  return result;
}

}  // namespace

int main() {
  using namespace tas;

  std::printf("FlexStorm pipeline: 3 nodes, tuples make 3 hops over TCP.\n\n");
  TablePrinter table({"Stack", "mtuples/s", "input wait", "processing", "output wait",
                      "p99 end-to-end"});
  for (StackKind kind : {StackKind::kLinux, StackKind::kTas}) {
    const PipelineResult r = RunPipeline(kind);
    auto us = [](double v) {
      return v >= 1000 ? Fmt(v / 1000, 2) + " ms" : Fmt(v, 2) + " us";
    };
    table.AddRow(StackKindName(kind), Fmt(r.mtuples_per_sec, 2), us(r.input_us),
                 us(r.processing_us), us(r.output_us), us(r.p99_total_us));
  }
  table.Print();
  std::printf(
      "\nThe Linux pipeline needs output batching (10 ms) to amortize its\n"
      "per-packet cost, which dominates tuple latency; TAS delivers the same\n"
      "pipeline with microsecond queueing (paper SS5.4).\n");
  return 0;
}
