// Key-value store cluster demo (the paper's flagship workload, §5.3): one
// TAS-accelerated KV server, several client machines issuing a zipf-skewed
// 90/10 GET/SET mix, first closed-loop to find peak throughput, then
// rate-limited to show the latency profile at moderate load.
//
// Run: ./build/examples/kv_cluster
#include <cstdio>

#include "src/app/kv_store.h"
#include "src/harness/experiment.h"
#include "src/harness/table.h"

int main() {
  using namespace tas;

  constexpr int kClientHosts = 3;
  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;

  HostSpec server_spec;
  server_spec.stack = StackKind::kTas;
  server_spec.app_cores = 2;
  server_spec.stack_cores = 2;
  specs.push_back(server_spec);
  LinkConfig server_link;
  server_link.gbps = 40.0;
  links.push_back(server_link);

  for (int i = 0; i < kClientHosts; ++i) {
    HostSpec client_spec;
    client_spec.stack = StackKind::kTas;
    client_spec.app_cores = 2;
    client_spec.stack_cores = 2;
    specs.push_back(client_spec);
    links.push_back(LinkConfig{});  // 10G default.
  }
  auto exp = Experiment::Star(specs, links);

  KvServerConfig server_config;
  server_config.num_keys = 100000;
  server_config.key_bytes = 32;
  server_config.value_bytes = 64;
  KvServer server(exp->host_sim(0), exp->host(0).stack(), server_config);
  server.Start();

  std::vector<std::unique_ptr<KvClient>> clients;
  for (int i = 0; i < kClientHosts; ++i) {
    KvClientConfig cc;
    cc.server_ip = exp->host(0).ip();
    cc.num_connections = 128;
    cc.connect_spread = Ms(20);  // Ramp connections gently past the slow path.
    cc.rng_seed = 7 + i;
    clients.push_back(
        std::make_unique<KvClient>(exp->host_sim(1 + i), exp->host(1 + i).stack(), cc));
    clients.back()->Start();
  }

  // Phase 1: closed loop at peak load.
  exp->sim().RunUntil(Ms(30));
  for (auto& client : clients) {
    client->BeginMeasurement();
  }
  exp->sim().RunUntil(Ms(60));

  double peak_mops = 0;
  for (auto& client : clients) {
    peak_mops += client->Throughput() / 1e6;
  }
  std::printf("Peak throughput (closed loop):  %.2f mOps\n", peak_mops);
  std::printf("GETs/SETs served: %llu/%llu (target mix 90/10)\n",
              static_cast<unsigned long long>(server.gets()),
              static_cast<unsigned long long>(server.sets()));

  // Phase 2: request latency at peak (closed-loop) load — includes the
  // queueing the saturated server induces.
  for (auto& client : clients) {
    client->BeginMeasurement();
  }
  exp->sim().RunUntil(Ms(120));
  const LatencyRecorder& latency = clients[0]->latency();
  TablePrinter table({"Percentile", "Latency [us]"});
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    table.AddRow(Fmt(p, 1), Fmt(latency.Percentile(p), 1));
  }
  std::printf("\nRequest latency at peak load:\n");
  table.Print();

  std::printf("\nTAS fast-path handled %llu packets; slow path saw %llu exceptions.\n",
              static_cast<unsigned long long>(
                  exp->host(0).tas()->stats().fastpath_rx_packets),
              static_cast<unsigned long long>(exp->host(0).tas()->stats().exceptions));
  return 0;
}
