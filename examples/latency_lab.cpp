// Latency laboratory: per-packet latency anatomy (src/trace/latency) pointed
// at an incast. Four client hosts fire pipelined 64B echoes at one TAS
// server, and every packet's lifetime is decomposed into stage intervals —
// context-queue wait, fast-path TX service, egress-buffer wait, wire time,
// switch queueing, NIC RX ring wait, and receive-side processing — stamped
// in a side ring as the packet crosses each seam (paper Table 1 / Fig 9).
//
// The run prints the per-stage percentile table (p50/p90/p99/p99.9), the
// queue-wait vs service split, and dumps latency_lab.h0.* trace bundles:
// latency_lab.h0.latency.json holds the same report machine-readably, and
// latency_lab.h0.perfetto.json carries per-stage p50/p99 counter tracks
// plus queue-depth high-water gauges next to the usual core spans — open it
// in https://ui.perfetto.dev and watch switch_queue wait dominate the tail
// as the incast fans in.
//
// Run: ./build/examples/latency_lab
#include <cstdio>
#include <memory>
#include <vector>

#include "src/app/rpc_echo.h"
#include "src/harness/experiment.h"
#include "src/trace/latency.h"

int main() {
  using namespace tas;

  constexpr size_t kClientHosts = 4;
  constexpr size_t kConnsPerHost = 8;
  const TimeNs warmup = Ms(10);
  const TimeNs measure = Ms(30);

  // Server: TAS with stage stamping + the periodic sweep (the sweep is what
  // turns the histograms into Perfetto counter tracks over time).
  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  HostSpec server_spec;
  server_spec.stack = StackKind::kTas;
  server_spec.app_cores = 1;
  server_spec.stack_cores = 2;
  server_spec.tas_overridden = true;
  server_spec.tas = TasConfig{};
  server_spec.tas.max_fastpath_cores = 2;
  server_spec.tas.trace.latency_stages = true;
  server_spec.tas.trace.cpu_spans = true;
  server_spec.tas.trace.sample_period = Us(100);
  specs.push_back(server_spec);
  LinkConfig server_link;
  server_link.gbps = 10.0;
  server_link.propagation_delay = Us(1);
  server_link.queue_limit_pkts = 512;
  links.push_back(server_link);

  // Clients: TAS too, so their TX-side stamps (ctx_queue, fp_tx) land in the
  // journey — the first-constructed host (the server) owns the global sink.
  for (size_t i = 0; i < kClientHosts; ++i) {
    HostSpec client_spec;
    client_spec.stack = StackKind::kTasLowLevel;
    client_spec.app_cores = 1;
    client_spec.stack_cores = 1;
    specs.push_back(client_spec);
    links.push_back(server_link);
  }
  auto exp = Experiment::Star(specs, links);

  EchoServerConfig server_config;
  server_config.app_cycles = 250;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), server_config);
  server.Start();

  std::vector<std::unique_ptr<EchoClient>> clients;
  for (size_t i = 0; i < kClientHosts; ++i) {
    EchoClientConfig cc;
    cc.server_ip = exp->host(0).ip();
    cc.num_connections = kConnsPerHost;
    cc.pipeline_depth = 8;  // 4 hosts x 8 conns x depth 8: incast pressure.
    cc.connect_spread = warmup / 2;
    clients.push_back(
        std::make_unique<EchoClient>(exp->host_sim(1 + i), exp->host(1 + i).stack(), cc));
    clients.back()->Start();
  }

  exp->sim().RunUntil(warmup + measure);

  uint64_t ops = 0;
  for (auto& client : clients) {
    ops += client->completed();
  }
  const LatencyTracer& lt = exp->host(0).tas()->tracer().latency();
  const LatencyReport report = lt.Report();
  std::printf("incast: %zu hosts x %zu conns, %llu echo ops in %lld ms\n\n",
              kClientHosts, kConnsPerHost, (unsigned long long)ops,
              (long long)((warmup + measure) / 1000000));
  std::printf("%s\n", report.ToTable().c_str());
  std::printf("records: %llu completed, %llu abandoned (drops), %llu ring-overwritten, "
              "%llu stale stamps, %llu partition mismatches\n",
              (unsigned long long)lt.completed(), (unsigned long long)lt.abandoned(),
              (unsigned long long)lt.overwritten(), (unsigned long long)lt.stale(),
              (unsigned long long)lt.partition_mismatches());

  const LatencyStageSummary* queue = report.Find("queue_wait");
  const LatencyStageSummary* e2e = report.Find("e2e");
  if (queue != nullptr && e2e != nullptr && e2e->mean_ns > 0) {
    std::printf("queue wait is %.0f%% of the mean end-to-end journey\n",
                100.0 * queue->mean_ns / e2e->mean_ns);
  }

  const size_t written = exp->WriteTraces("latency_lab");
  std::printf("\nwrote %zu trace bundles; the latency additions:\n", written);
  std::printf("  latency_lab.h0.latency.json    this report, one JSON object\n");
  std::printf("  latency_lab.h0.perfetto.json   latency.<stage>.p50_us/p99_us counter\n");
  std::printf("                                 tracks + queue high-water gauges\n");
  std::printf("\nSame seed => byte-identical reports on every run.\n");
  return 0;
}
