// Fig 14 + Fig 15 companion: workload proportionality — the number of TAS
// fast-path cores and the end-to-end throughput as key-value clients are
// added one by one and then removed (paper: every 10s; compressed here).
//
// Shape to reproduce: cores ramp 1 -> max as load grows, then shed as load
// falls; throughput follows the offered load throughout.
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

void Run() {
  PrintHeader("Fig 14: fast-path cores and throughput under changing load",
              "TAS paper Figure 14 (clients added then removed)");

  constexpr int kClientHosts = 5;
  const TimeNs step = ScalePick(60, 1000) * kNsPerMs;  // Paper: 10s per step.

  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  HostSpec server = ServerSpec(StackKind::kTas, 8, 10, 8 * 1024);
  server.tas.dynamic_cores = true;
  server.tas.monitor_interval = Ms(2);
  specs.push_back(server);
  links.push_back(ServerLink());
  for (int i = 0; i < kClientHosts; ++i) {
    specs.push_back(IdealClientSpec());
    links.push_back(ClientLink());
  }
  auto exp = Experiment::Star(specs, links);

  KvServerConfig server_config;
  KvServer kv(exp->host_sim(0), exp->host(0).stack(), server_config);
  kv.Start();

  // "Adding a client machine" = starting a closed-loop client on an idle
  // host; "removing" = detaching it from its stack and discarding it.
  std::vector<std::unique_ptr<KvClient>> active;
  auto start_client = [&](int host) {
    KvClientConfig cc;
    cc.server_ip = exp->host(0).ip();
    cc.num_connections = 256;
    cc.target_ops_per_sec = 2.5e6;  // Each machine offers ~2.5 mOps.
    cc.rng_seed = 200 + host;
    cc.connect_spread = Ms(10);
    active.push_back(
        std::make_unique<KvClient>(exp->host_sim(1 + host), exp->host(1 + host).stack(), cc));
    active.back()->Start();
  };

  TablePrinter table({"t [ms]", "clients", "fast-path cores", "throughput [mOps]"});
  TimeNs now = 0;
  uint64_t last_completed = 0;
  auto sample = [&](int active_clients) {
    exp->sim().RunUntil(now);
    uint64_t completed = 0;
    for (auto& client : active) {
      completed += client->completed();
    }
    const double mops =
        static_cast<double>(completed - last_completed) / ToSec(step) / 1e6;
    last_completed = completed;
    table.AddRow(Fmt(ToMs(now), 0), active_clients, exp->host(0).tas()->active_cores(),
                 Fmt(mops, 2));
  };

  int active_count = 0;
  for (int i = 0; i < kClientHosts; ++i) {
    start_client(i);
    ++active_count;
    now += step;
    sample(active_count);
  }
  // Remove clients one by one (highest host first): detach the handler so
  // in-flight events are dropped safely, then discard the client.
  for (int i = kClientHosts - 1; i >= 0; --i) {
    exp->host(1 + i).stack()->SetHandler(nullptr);
    last_completed -= active[i]->completed();  // Its counter leaves the sum.
    active.erase(active.begin() + i);
    --active_count;
    now += step;
    sample(active_count);
  }
  table.Print();

  std::cout << "\nCore transition trace (time ms -> active cores):\n";
  // The unified time-series path: TasService appends every transition to the
  // "tas.active_cores" series in its tracer's sampler.
  for (const auto& [t, cores] : exp->host(0).tas()->core_trace().points()) {
    std::cout << "  " << Fmt(ToMs(t), 1) << " ms -> " << static_cast<int>(cores)
              << " cores\n";
  }
  std::cout << "\nPaper: cores ramp 1 -> 9 as five client machines arrive, then shed\n"
               "back down; throughput tracks offered load throughout.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
