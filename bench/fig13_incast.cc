// Fig 13: fairness under incast — four sender machines bulk-transfer to one
// receiver at line rate; the receiver records per-connection bytes every
// 100ms. Median and 99th-percentile per-connection throughput versus the
// fair share, Linux (window DCTCP) vs TAS (rate-based DCTCP).
//
// Shape to reproduce: TAS's median sits at the fair share with a tight tail
// (paper: tail within 1.6x-2.8x of median); Linux fluctuates widely and
// starves some flows as connection counts grow.
#include "src/app/bulk.h"

#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

struct IncastResult {
  double median_mb_per_100ms = 0;
  double p1_mb = 0;   // 1st percentile: starvation indicator.
  double p99_mb = 0;
};

IncastResult RunPoint(StackKind kind, size_t total_connections) {
  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  LinkConfig receiver_link = ClientLink();
  receiver_link.ecn_threshold_pkts = 65;
  LinkConfig sender_link = ClientLink();
  sender_link.ecn_threshold_pkts = 65;

  specs.push_back(ServerSpec(kind, 2, 2, 32 * 1024));
  links.push_back(receiver_link);
  for (int i = 0; i < 4; ++i) {
    specs.push_back(ServerSpec(kind, 2, 2, 32 * 1024));
    links.push_back(sender_link);
  }
  auto exp = Experiment::Star(specs, links);

  BulkReceiverConfig rc;
  rc.sample_interval = Ms(100);
  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), rc);
  rx.Start();
  std::vector<std::unique_ptr<BulkSender>> senders;
  for (int i = 0; i < 4; ++i) {
    BulkSenderConfig sc;
    sc.server_ip = exp->host(0).ip();
    sc.num_flows = total_connections / 4;
    sc.chunk_bytes = 8 * 1024;
    senders.push_back(
        std::make_unique<BulkSender>(exp->host_sim(1 + i), exp->host(1 + i).stack(), sc));
    senders.back()->Start();
  }

  const TimeNs warmup = Ms(200);
  const TimeNs measure = ScalePick(600, 4000) * kNsPerMs;
  exp->sim().RunUntil(warmup);
  rx.BeginMeasurement();
  exp->sim().RunUntil(warmup + measure);

  LatencyRecorder samples;
  for (uint64_t bytes : rx.window_samples()) {
    samples.Add(static_cast<double>(bytes) / 1e6);  // MB per 100ms window.
  }
  IncastResult result;
  result.median_mb_per_100ms = samples.Median();
  result.p1_mb = samples.Percentile(1);
  result.p99_mb = samples.Percentile(99);
  return result;
}

void Run() {
  PrintHeader("Fig 13: per-connection throughput distribution under incast",
              "TAS paper Figure 13 (4 senders -> 1 receiver at 10G line rate)");
  std::vector<size_t> counts = {52, 100, 200, 500};
  if (FullScale()) {
    counts = {52, 100, 200, 500, 1000, 2000};
  }
  TablePrinter table({"# Connections", "Fair share [MB/100ms]", "Linux median",
                      "Linux p1", "TAS median", "TAS p1", "TAS p99"});
  for (size_t n : counts) {
    const double fair = 10e9 / 8 * 0.1 / static_cast<double>(n) / 1e6;
    const IncastResult linux = RunPoint(StackKind::kLinux, n);
    const IncastResult tas = RunPoint(StackKind::kTas, n);
    table.AddRow(n, Fmt(fair, 3), Fmt(linux.median_mb_per_100ms, 3), Fmt(linux.p1_mb, 3),
                 Fmt(tas.median_mb_per_100ms, 3), Fmt(tas.p1_mb, 3), Fmt(tas.p99_mb, 3));
  }
  table.Print();
  std::cout << "\nPaper: TAS median ~= fair share, tail within 1.6-2.8x of median;\n"
               "Linux fluctuates widely with significant starvation (low p1).\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
