// Fig 5: throughput with short-lived connections — 1,024 concurrent
// connections that are closed and re-established after N request/response
// exchanges, TAS vs Linux.
//
// Shape to reproduce: TAS loses below ~4 messages/connection (its
// heavyweight slow-path connection setup involves the slow path and the
// application several times), then wins increasingly as the fast path
// amortizes the setup.
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

double RunPoint(StackKind kind, size_t messages_per_connection) {
  EchoRunConfig config;
  config.server_stack = kind;
  config.server_app_cores = 1;
  // Paper: one app core, two TAS fast-path cores + partially used slow path.
  config.server_stack_cores = 2;
  config.connections = 1024;
  config.num_client_hosts = 4;
  config.messages_per_connection = messages_per_connection;
  config.request_bytes = 64;
  config.response_bytes = 64;
  config.warmup = Ms(30);
  config.measure = Ms(30);
  return RunEcho(config).mops;
}

void Run() {
  PrintHeader("Fig 5: throughput with short-lived connections",
              "TAS paper Figure 5 (1,024 concurrent connections; crossover ~4 msgs)");
  std::vector<size_t> messages = {1, 2, 4, 16, 64, 256};
  if (FullScale()) {
    messages = {1, 2, 4, 16, 64, 256, 1024, 4096};
  }
  TablePrinter table({"Messages/conn", "TAS mOps", "Linux mOps", "TAS/Linux"});
  for (size_t m : messages) {
    const double tas = RunPoint(StackKind::kTas, m);
    const double linux = RunPoint(StackKind::kLinux, m);
    table.AddRow(m, Fmt(tas, 3), Fmt(linux, 3),
                 linux > 0 ? Fmt(tas / linux, 2) : std::string("-"));
  }
  table.Print();
  std::cout << "\nPaper: TAS overtakes Linux at >= 4 RPCs per connection and reaches 95%\n"
               "bandwidth utilization at 256 RPCs per connection.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
