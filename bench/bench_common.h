// Shared setup for the paper-figure regenerators: star-topology clusters
// shaped like the paper's testbed (one server with a 40G link, client
// machines with 10G links), RPC-echo and KV run drivers, and reduced/full
// scale selection (TAS_SCALE=full).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <iostream>
#include <memory>
#include <vector>

#include "src/app/kv_store.h"
#include "src/app/rpc_echo.h"
#include "src/harness/experiment.h"
#include "src/harness/table.h"

namespace tas {
namespace bench {

inline LinkConfig ServerLink() {
  LinkConfig link;
  link.gbps = 40.0;  // Paper: Intel XL710 40G on the server.
  link.propagation_delay = Us(1);
  link.queue_limit_pkts = 6000;  // Arista 7050S-class shared buffer.
  return link;
}

inline LinkConfig ClientLink() {
  LinkConfig link;
  link.gbps = 10.0;  // Paper: X520 10G on the clients.
  link.propagation_delay = Us(1);
  link.queue_limit_pkts = 6000;
  return link;
}

// A client machine that is never the bottleneck: engine stack with
// near-zero per-op costs on several cores. Used where the paper saturates
// the server from "as many client machines as necessary".
inline HostSpec IdealClientSpec(int app_cores = 4) {
  HostSpec spec;
  spec.stack = StackKind::kIx;
  spec.app_cores = app_cores;
  spec.engine_overridden = true;
  spec.engine = IxStackConfig();
  spec.engine.costs = &MinimalCostModel();
  spec.engine.tcp.tx_buffer_bytes = 16 * 1024;
  spec.engine.tcp.rx_buffer_bytes = 16 * 1024;
  return spec;
}

// Server host spec for a given stack kind with small per-connection buffers
// (RPC workloads; keeps 64K-connection experiments within memory).
inline HostSpec ServerSpec(StackKind kind, int app_cores, int stack_cores,
                           uint32_t buffer_bytes = 8 * 1024) {
  HostSpec spec;
  spec.stack = kind;
  spec.app_cores = app_cores;
  spec.stack_cores = stack_cores;
  if (kind == StackKind::kTas || kind == StackKind::kTasLowLevel) {
    spec.tas_overridden = true;
    spec.tas = TasConfig{};
    spec.tas.max_fastpath_cores = stack_cores;
    spec.tas.rx_buffer_bytes = buffer_bytes;
    spec.tas.tx_buffer_bytes = buffer_bytes;
    if (kind == StackKind::kTasLowLevel) {
      spec.tas.costs = &TasLowLevelCostModel();
    }
  } else {
    spec.engine_overridden = true;
    spec.engine = kind == StackKind::kLinux  ? LinuxStackConfig()
                  : kind == StackKind::kIx   ? IxStackConfig()
                                             : MtcpStackConfig(stack_cores);
    spec.engine.tcp.tx_buffer_bytes = buffer_bytes;
    spec.engine.tcp.rx_buffer_bytes = buffer_bytes;
  }
  return spec;
}

// Flow-table occupancy / probe report, captured from a TAS host's service
// after a run. One measurement path shared by fig4_connscale (per-row
// columns) and bench/million_flow_churn (gated JSON), so the two benches can
// never drift apart on how probe length is measured.
struct FlowTableReport {
  bool valid = false;  // False for baseline stacks (no TAS service).
  size_t flows = 0;
  size_t capacity = 0;
  double load_factor = 0;
  double avg_probe_groups = 0;  // Mean 16-slot groups examined per Find.
  uint64_t probe_p50 = 0;
  uint64_t probe_p99 = 0;
  uint64_t max_probe = 0;
  uint64_t rehashes = 0;
  uint64_t drift_rebuilds = 0;
  uint64_t relocated = 0;
  uint64_t max_reloc_slots = 0;
  uint64_t forced_finishes = 0;
};

inline FlowTableReport CaptureFlowTableReport(TasService* tas) {
  FlowTableReport r;
  if (tas == nullptr) {
    return r;
  }
  const FlowTable& t = tas->flow_table();
  r.valid = true;
  r.flows = t.size();
  r.capacity = t.capacity();
  r.load_factor = t.LoadFactor();
  r.avg_probe_groups = t.AvgProbeLength();
  r.probe_p50 = t.probe_hist().ApproxPercentile(50);
  r.probe_p99 = t.probe_hist().ApproxPercentile(99);
  r.max_probe = t.stats().max_probe;
  r.rehashes = t.stats().rehashes;
  r.drift_rebuilds = t.stats().drift_rebuilds;
  r.relocated = t.stats().relocated;
  r.max_reloc_slots = t.stats().max_reloc_slots;
  r.forced_finishes = t.stats().forced_finishes;
  return r;
}

struct EchoRunConfig {
  StackKind server_stack = StackKind::kTas;
  int server_app_cores = 2;
  int server_stack_cores = 2;
  size_t connections = 256;
  size_t num_client_hosts = 4;
  size_t request_bytes = 64;
  size_t response_bytes = 64;
  size_t pipeline_depth = 1;
  size_t messages_per_connection = 0;
  uint64_t server_app_cycles = 680;
  EchoServerConfig::Mode mode = EchoServerConfig::Mode::kEcho;
  // Adaptive default: TAS handshakes run through the single slow-path core,
  // so large connection counts need a longer ramp (0 = auto).
  TimeNs warmup = 0;
  TimeNs measure = Ms(20);
  uint32_t buffer_bytes = 8 * 1024;
};

struct EchoRunResult {
  double mops = 0;
  double median_us = 0;
  double p99_us = 0;
  uint64_t server_requests = 0;
  uint64_t reconnects = 0;
  FlowTableReport server_flow_table;  // valid only for TAS servers.
};

inline EchoRunResult RunEcho(EchoRunConfig config) {
  if (config.warmup == 0) {
    // The TAS slow path accepts ~45k cycles/connection; ramp accordingly.
    config.warmup = Ms(10) + static_cast<TimeNs>(config.connections) * Us(30);
  }
  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  specs.push_back(ServerSpec(config.server_stack, config.server_app_cores,
                             config.server_stack_cores, config.buffer_bytes));
  links.push_back(ServerLink());
  for (size_t i = 0; i < config.num_client_hosts; ++i) {
    specs.push_back(IdealClientSpec());
    links.push_back(ClientLink());
  }
  auto exp = Experiment::Star(specs, links);

  EchoServerConfig server_config;
  server_config.request_bytes = config.request_bytes;
  server_config.response_bytes = config.response_bytes;
  server_config.app_cycles = config.server_app_cycles;
  server_config.mode = config.mode;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), server_config);
  server.Start();

  std::vector<std::unique_ptr<EchoClient>> clients;
  for (size_t i = 0; i < config.num_client_hosts; ++i) {
    EchoClientConfig client_config;
    client_config.server_ip = exp->host(0).ip();
    client_config.num_connections =
        config.connections / config.num_client_hosts +
        (i < config.connections % config.num_client_hosts ? 1 : 0);
    client_config.request_bytes = config.request_bytes;
    client_config.response_bytes = config.response_bytes;
    client_config.pipeline_depth = config.pipeline_depth;
    client_config.messages_per_connection = config.messages_per_connection;
    client_config.mode = config.mode;
    client_config.connect_spread = config.warmup * 3 / 4;
    // Pre-establish quietly; 2ms of traffic settles the closed loop before
    // measurement starts.
    client_config.first_request_at = config.warmup - Ms(2);
    clients.push_back(std::make_unique<EchoClient>(
        exp->host_sim(1 + i), exp->host(1 + i).stack(), client_config));
    clients.back()->Start();
  }

  exp->sim().RunUntil(config.warmup);
  for (auto& client : clients) {
    client->BeginMeasurement();
  }
  const uint64_t server_before = server.requests_served();
  exp->sim().RunUntil(config.warmup + config.measure);

  EchoRunResult result;
  double ops_per_sec = 0;
  for (auto& client : clients) {
    ops_per_sec += client->Throughput();
    result.reconnects += client->reconnects();
  }
  result.mops = ops_per_sec / 1e6;
  // Latency distribution from the first client host (load is uniform).
  result.median_us = clients[0]->latency().Median();
  result.p99_us = clients[0]->latency().Percentile(99);
  result.server_requests = server.requests_served() - server_before;
  result.server_flow_table = CaptureFlowTableReport(exp->host(0).tas());
  if (config.mode == EchoServerConfig::Mode::kRxOnly) {
    // One-directional RX runs are measured at the server.
    result.mops = static_cast<double>(result.server_requests) / ToSec(config.measure) / 1e6;
  }
  return result;
}

struct KvRunConfig {
  StackKind server_stack = StackKind::kTas;
  int server_app_cores = 1;
  int server_stack_cores = 1;
  size_t connections = 256;
  size_t num_client_hosts = 4;
  StackKind client_stack = StackKind::kTas;  // kIx => ideal (cost-free) client.
  bool ideal_clients = true;
  size_t num_keys = 100000;
  size_t key_bytes = 32;
  size_t value_bytes = 64;
  double target_ops_per_sec = 0;  // 0 = closed loop.
  uint64_t server_app_cycles = 680;
  bool contended = false;
  TimeNs warmup = 0;
  TimeNs measure = Ms(20);
  uint32_t buffer_bytes = 8 * 1024;
};

struct KvRunResult {
  double mops = 0;
  double median_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double max_us = 0;
  std::vector<std::pair<double, double>> latency_cdf;
};

inline KvRunResult RunKv(KvRunConfig config) {
  if (config.warmup == 0) {
    // The TAS slow path accepts ~45k cycles/connection; ramp accordingly.
    config.warmup = Ms(10) + static_cast<TimeNs>(config.connections) * Us(30);
  }
  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  specs.push_back(ServerSpec(config.server_stack, config.server_app_cores,
                             config.server_stack_cores, config.buffer_bytes));
  links.push_back(ServerLink());
  for (size_t i = 0; i < config.num_client_hosts; ++i) {
    if (config.ideal_clients) {
      specs.push_back(IdealClientSpec());
    } else {
      specs.push_back(ServerSpec(config.client_stack, 2, 2, config.buffer_bytes));
    }
    links.push_back(ClientLink());
  }
  auto exp = Experiment::Star(specs, links);

  KvServerConfig server_config;
  server_config.num_keys = config.num_keys;
  server_config.key_bytes = config.key_bytes;
  server_config.value_bytes = config.value_bytes;
  server_config.app_cycles_per_op = config.server_app_cycles;
  server_config.contended = config.contended;
  std::unique_ptr<Core> lock_core;
  if (config.contended) {
    // The lock lives on the server host's island (host 0 touches it).
    lock_core = std::make_unique<Core>(exp->host_sim(0), 9000, 2.1);
    server_config.lock_core = lock_core.get();
  }
  KvServer server(exp->host_sim(0), exp->host(0).stack(), server_config);
  server.Start();

  std::vector<std::unique_ptr<KvClient>> clients;
  for (size_t i = 0; i < config.num_client_hosts; ++i) {
    KvClientConfig cc;
    cc.server_ip = exp->host(0).ip();
    cc.num_connections = config.connections / config.num_client_hosts +
                         (i < config.connections % config.num_client_hosts ? 1 : 0);
    cc.num_keys = config.num_keys;
    cc.key_bytes = config.key_bytes;
    cc.value_bytes = config.value_bytes;
    cc.target_ops_per_sec = config.target_ops_per_sec / static_cast<double>(config.num_client_hosts);
    cc.rng_seed = 42 + i;
    cc.connect_spread = config.warmup * 3 / 4;
    cc.first_request_at = config.warmup - Ms(2);
    clients.push_back(
        std::make_unique<KvClient>(exp->host_sim(1 + i), exp->host(1 + i).stack(), cc));
    clients.back()->Start();
  }

  exp->sim().RunUntil(config.warmup);
  for (auto& client : clients) {
    client->BeginMeasurement();
  }
  exp->sim().RunUntil(config.warmup + config.measure);

  KvRunResult result;
  double ops = 0;
  for (auto& client : clients) {
    ops += client->Throughput();
  }
  result.mops = ops / 1e6;
  const LatencyRecorder& lat = clients[0]->latency();
  result.median_us = lat.Median();
  result.p90_us = lat.Percentile(90);
  result.p99_us = lat.Percentile(99);
  result.max_us = lat.Max();
  result.latency_cdf = lat.Cdf(100);
  return result;
}

// Marks the bench output so EXPERIMENTS.md can reference runs unambiguously.
inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::cout << "==============================================================\n"
            << experiment << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "Scale: " << (FullScale() ? "full (TAS_SCALE=full)" : "reduced (default)")
            << "\n"
            << "==============================================================\n";
}

}  // namespace bench
}  // namespace tas

#endif  // BENCH_BENCH_COMMON_H_
