// critical_path_gate: CI regression gate for per-class critical-path
// composition (DESIGN.md §12).
//
// Usage: critical_path_gate <baseline.json> <current.json> [tolerance]
//
// Both files hold a CriticalPathReport as emitted by proxy_cycles'
// PROXY_CRITPATH_JSON line (or a Tracer's <prefix>.critical_path.json dump).
// The gate fails (exit 1) when any (request class, edge) row — including the
// synthetic "e2e" row — regresses its mean or p99 beyond `tolerance`
// (fractional, default 0.25 = +25%) relative to the baseline, or when a
// whole request class present in the baseline disappears. Improvements
// always pass; rows with too few baseline samples are skipped (see
// CompareCriticalPathReports). The simulator is deterministic, so on an
// unchanged workload the reports are identical and the gate only trips on
// real changes to where requests spend their time — in which case the
// baseline should be re-recorded deliberately (see EXPERIMENTS.md).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/trace/causal.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream is(path);
  if (!is) {
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  // proxy_cycles output may be piped in whole; keep only the report line if
  // the file contains the PROXY_CRITPATH_JSON prefix.
  const std::string prefix = "PROXY_CRITPATH_JSON ";
  const size_t pos = out->find(prefix);
  if (pos != std::string::npos) {
    const size_t start = pos + prefix.size();
    const size_t end = out->find('\n', start);
    *out = out->substr(start, end == std::string::npos ? std::string::npos : end - start);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: critical_path_gate <baseline.json> <current.json> [tolerance]\n";
    return 2;
  }
  double tolerance = 0.25;
  if (argc == 4) {
    char* end = nullptr;
    tolerance = std::strtod(argv[3], &end);
    if (end == argv[3] || tolerance < 0) {
      std::cerr << "critical_path_gate: bad tolerance '" << argv[3] << "'\n";
      return 2;
    }
  }

  std::string baseline_json;
  std::string current_json;
  if (!ReadFile(argv[1], &baseline_json)) {
    std::cerr << "critical_path_gate: cannot read baseline " << argv[1] << "\n";
    return 2;
  }
  if (!ReadFile(argv[2], &current_json)) {
    std::cerr << "critical_path_gate: cannot read current " << argv[2] << "\n";
    return 2;
  }

  bool ok = false;
  const tas::CriticalPathReport baseline =
      tas::ParseCriticalPathReportJson(baseline_json, &ok);
  if (!ok) {
    std::cerr << "critical_path_gate: baseline is not a CriticalPathReport: " << argv[1]
              << "\n";
    return 2;
  }
  const tas::CriticalPathReport current = tas::ParseCriticalPathReportJson(current_json, &ok);
  if (!ok) {
    std::cerr << "critical_path_gate: current is not a CriticalPathReport: " << argv[2] << "\n";
    return 2;
  }

  const auto regressions = tas::CompareCriticalPathReports(baseline, current, tolerance);
  std::cout << "critical_path_gate: tolerance +" << static_cast<int>(tolerance * 100 + 0.5)
            << "%, " << baseline.classes.size() << " baseline classes, "
            << current.classes.size() << " current classes\n";
  std::cout << current.ToTable();
  if (regressions.empty()) {
    std::cout << "critical_path_gate: PASS (no class/edge regressed beyond tolerance)\n";
    return 0;
  }
  for (const auto& r : regressions) {
    std::printf(
        "critical_path_gate: REGRESSION %s/%s %s: baseline %.0f -> current %.0f (%.2fx)\n",
        r.request_class.c_str(), r.edge.c_str(), r.metric.c_str(), r.baseline, r.current,
        r.ratio);
  }
  std::cout << "critical_path_gate: FAIL (" << regressions.size() << " regression"
            << (regressions.size() == 1 ? "" : "s") << ")\n";
  return 1;
}
