// watchdog_chaos: self-gating chaos run for the flight recorder + SLO
// watchdog (DESIGN.md §15; EXPERIMENTS.md black-box postmortem recipe).
//
// Scenario: the chaos-suite total-loss window — a 100 Mbit/s link goes black
// in both directions over [2 ms, 12 ms] mid-transfer, forcing slow-path RTO
// retransmissions on the client host, which is armed with a retransmit-rate
// SLO. The watchdog must catch the sustained breach and serialize a
// diagnostic bundle whose evidence window covers the injected fault.
//
// Gates (exit nonzero on any failure):
//   - false negative: the faulted run MUST trigger, name the breached SLO
//     ("retransmit_rate"), attribute it to the armed host ("h1"), and write
//     a bundle whose evidence window overlaps the fault interval and whose
//     JSONL records include the in-window timeout retransmits.
//   - false positive: the identical run WITHOUT the fault must not trigger.
//   - determinism: a same-seed rerun of the faulted run must produce
//     byte-identical bundle files (.json/.jsonl/.perfetto.json).
//
// Emits one WATCHDOG_CHAOS_JSON line; CI archives the bundle files written
// under argv[1] (default "watchdog_chaos") as artifacts.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/injector.h"
#include "src/tas/watchdog.h"
#include "src/trace/flight_recorder.h"

namespace tas {
namespace bench {
namespace {

constexpr TimeNs kFaultFrom = Ms(2);
constexpr TimeNs kFaultTo = Ms(12);

// Minimal byte-stream pair (mirrors tests/chaos_test.cc).
class ByteSinkServer : public AppHandler {
 public:
  ByteSinkServer(Stack* stack, uint16_t port) : stack_(stack), port_(port) {}
  void Start() {
    stack_->SetHandler(this);
    stack_->Listen(port_);
  }
  void OnData(ConnId conn, size_t bytes) override {
    std::vector<uint8_t> buf(bytes);
    received_ += stack_->Recv(conn, buf.data(), bytes);
  }
  void OnRemoteClosed(ConnId conn) override { stack_->Close(conn); }

  Stack* stack_;
  uint16_t port_;
  size_t received_ = 0;
};

class ByteStreamClient : public AppHandler {
 public:
  ByteStreamClient(Stack* stack, IpAddr server, uint16_t port, size_t total)
      : stack_(stack), server_(server), port_(port), total_(total) {}
  void Start() {
    stack_->SetHandler(this);
    stack_->Connect(server_, port_);
  }
  void OnConnected(ConnId conn, bool success) override {
    if (success) {
      Pump(conn);
    }
  }
  void OnSendSpace(ConnId conn, size_t bytes) override {
    acked_ += bytes;
    Pump(conn);
    if (sent_ >= total_ && acked_ >= total_ && !closed_) {
      closed_ = true;
      stack_->Close(conn);
    }
  }
  void Pump(ConnId conn) {
    while (sent_ < total_) {
      uint8_t chunk[997];
      const size_t want = std::min(sizeof(chunk), total_ - sent_);
      for (size_t i = 0; i < want; ++i) {
        chunk[i] = static_cast<uint8_t>((sent_ + i) % 251);
      }
      const size_t n = stack_->Send(conn, chunk, want);
      sent_ += n;
      if (n < want) {
        break;
      }
    }
  }

  Stack* stack_;
  IpAddr server_;
  uint16_t port_;
  size_t total_;
  size_t sent_ = 0;
  size_t acked_ = 0;
  bool closed_ = false;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Fail(std::vector<std::string>& failures, const std::string& msg) {
  if (failures.size() < 16) {
    failures.push_back(msg);
  }
}

struct ChaosResult {
  std::vector<SloTrigger> triggers;
  int bundles_written = 0;
  uint64_t checks = 0;
  uint64_t recorded_flow = 0;
  uint64_t recorded_slo = 0;
  size_t received = 0;
  uint64_t timeout_retransmits = 0;
  std::string bundle_json;
  std::string bundle_jsonl;
  std::string bundle_perfetto;
};

ChaosResult RunScenario(const std::string& prefix, bool inject_fault) {
  LinkConfig slow;
  slow.gbps = 0.1;
  slow.propagation_delay = Us(2);
  slow.queue_limit_pkts = 256;

  HostSpec server_spec;
  server_spec.stack = StackKind::kTas;
  HostSpec client_spec;
  client_spec.stack = StackKind::kTas;
  client_spec.tas_overridden = true;
  client_spec.tas.watchdog.enabled = true;
  client_spec.tas.watchdog.check_interval = Ms(2);
  client_spec.tas.watchdog.recorder_window = Ms(20);
  client_spec.tas.watchdog.cooldown = Ms(50);
  client_spec.tas.watchdog.bundle_prefix = prefix;
  SloSpec slo;
  slo.name = "retransmit_rate";
  slo.kind = SloKind::kRetransmitRate;
  slo.threshold = 50.0;  // Retransmits per second, sustained over 2 checks.
  slo.burn_windows = 2;
  slo.min_count = 1;
  client_spec.tas.watchdog.slos.push_back(slo);

  auto exp = Experiment::PointToPoint(server_spec, client_spec, slow);
  if (inject_fault) {
    FaultSchedule chaos;
    chaos.ImpairmentWindowBoth(kFaultFrom, kFaultTo, exp->host_link(0),
                               BernoulliLoss(1.0));
    exp->faults().Install(chaos);
  }

  ByteSinkServer server(exp->host(0).stack(), 7000);
  ByteStreamClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, 120000);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ChaosResult r;
  FlightRecorder* recorder = exp->host(1).tas()->owned_recorder();
  r.triggers = recorder->triggers();
  r.bundles_written = recorder->bundles_written();
  r.checks = exp->host(1).tas()->watchdog()->checks();
  r.recorded_flow = recorder->recorded(RecorderStream::kFlow);
  r.recorded_slo = recorder->recorded(RecorderStream::kSlo);
  r.received = server.received_;
  r.timeout_retransmits = exp->host(1).tas()->stats().timeout_retransmits;
  if (r.bundles_written > 0) {
    r.bundle_json = ReadFile(prefix + ".bundle0.json");
    r.bundle_jsonl = ReadFile(prefix + ".bundle0.jsonl");
    r.bundle_perfetto = ReadFile(prefix + ".bundle0.perfetto.json");
  }
  return r;
}

// Scans the bundle JSONL for records of `type` and returns their timestamps.
std::vector<TimeNs> RecordTimes(const std::string& jsonl, const std::string& type) {
  std::vector<TimeNs> times;
  std::istringstream in(jsonl);
  std::string line;
  const std::string needle = "\"type\":\"" + type + "\"";
  while (std::getline(in, line)) {
    if (line.find(needle) == std::string::npos) {
      continue;
    }
    const size_t pos = line.find("\"t\":");
    if (pos != std::string::npos) {
      times.push_back(std::strtoll(line.c_str() + pos + 4, nullptr, 10));
    }
  }
  return times;
}

int Run(int argc, char** argv) {
  PrintHeader("watchdog_chaos: SLO watchdog vs an injected total-loss window",
              "DESIGN.md §15 flight recorder, chaos-suite fault classes");
  const std::string prefix = argc > 1 ? argv[1] : "watchdog_chaos";
  std::vector<std::string> failures;

  const ChaosResult faulted = RunScenario(prefix, /*inject_fault=*/true);
  const ChaosResult rerun = RunScenario(prefix + "_rerun", /*inject_fault=*/true);
  const ChaosResult clean = RunScenario(prefix + "_clean", /*inject_fault=*/false);

  // --- False-negative gate: the fault must be caught and explained. ----------
  if (faulted.triggers.empty()) {
    Fail(failures, "faulted run produced no watchdog trigger (false negative)");
  } else {
    const SloTrigger& t = faulted.triggers[0];
    if (t.slo != "retransmit_rate") {
      Fail(failures, "trigger named '" + t.slo + "', expected 'retransmit_rate'");
    }
    if (t.source != "h1") {
      Fail(failures, "trigger attributed to '" + t.source + "', expected 'h1'");
    }
    if (t.measured <= t.threshold) {
      Fail(failures, "trigger measured value does not exceed its threshold");
    }
    if (t.bundle != 0 || faulted.bundles_written < 1) {
      Fail(failures, "trigger was not serialized as bundle 0");
    }
    // Evidence window must overlap the injected fault interval.
    if (t.window_from > kFaultTo || t.window_to < kFaultFrom) {
      Fail(failures, "evidence window does not overlap the injected fault interval");
    }
    if (faulted.bundle_json.find("\"slo\":\"retransmit_rate\"") == std::string::npos) {
      Fail(failures, "bundle .json does not name the breached SLO");
    }
    // The window's flow events must contain the RTO firings the fault caused,
    // timestamped inside the evidence window.
    const std::vector<TimeNs> rto = RecordTimes(faulted.bundle_jsonl, "timeout_retransmit");
    if (rto.empty()) {
      Fail(failures, "bundle .jsonl has no timeout_retransmit evidence records");
    }
    for (const TimeNs at : rto) {
      if (at < t.window_from || at > t.window_to) {
        Fail(failures, "bundle record timestamp outside the evidence window");
        break;
      }
    }
    if (faulted.bundle_perfetto.find("\"slo-trigger\"") == std::string::npos) {
      Fail(failures, "bundle .perfetto.json lacks the trigger evidence span");
    }
  }
  if (faulted.timeout_retransmits == 0) {
    Fail(failures, "fault injection did not cause timeout retransmits (bad scenario)");
  }
  if (faulted.received != 120000u) {
    Fail(failures, "transfer did not complete despite recovery");
  }

  // --- False-positive gate: no fault, no trigger. ----------------------------
  if (clean.checks == 0) {
    Fail(failures, "clean run never ran a watchdog check");
  }
  if (!clean.triggers.empty() || clean.bundles_written != 0) {
    Fail(failures, "clean run triggered the watchdog (false positive)");
  }

  // --- Determinism gate: same seed => byte-identical bundles. ----------------
  if (faulted.triggers.size() != rerun.triggers.size()) {
    Fail(failures, "rerun produced a different trigger count");
  } else if (!faulted.triggers.empty() &&
             SloTriggerToJson(faulted.triggers[0]) != SloTriggerToJson(rerun.triggers[0])) {
    Fail(failures, "rerun trigger record differs");
  }
  if (faulted.bundle_json != rerun.bundle_json ||
      faulted.bundle_jsonl != rerun.bundle_jsonl ||
      faulted.bundle_perfetto != rerun.bundle_perfetto) {
    Fail(failures, "rerun bundle files are not byte-identical");
  }

  TablePrinter table({"Metric", "Value"});
  table.AddRow("faulted: triggers", faulted.triggers.size());
  table.AddRow("faulted: bundles written", faulted.bundles_written);
  table.AddRow("faulted: watchdog checks", faulted.checks);
  table.AddRow("faulted: timeout retransmits", faulted.timeout_retransmits);
  table.AddRow("faulted: flow records retained", faulted.recorded_flow);
  table.AddRow("faulted: slo records retained", faulted.recorded_slo);
  table.AddRow("clean: triggers", clean.triggers.size());
  table.AddRow("clean: watchdog checks", clean.checks);
  table.AddRow("rerun bundle identical",
               faulted.bundle_json == rerun.bundle_json ? "yes" : "NO");
  table.Print();

  std::cout << "WATCHDOG_CHAOS_JSON {"
            << "\"benchmark\":\"watchdog_chaos\""
            << ",\"fault_from_ns\":" << kFaultFrom << ",\"fault_to_ns\":" << kFaultTo
            << ",\"triggers\":" << faulted.triggers.size()
            << ",\"bundles_written\":" << faulted.bundles_written
            << ",\"checks\":" << faulted.checks
            << ",\"timeout_retransmits\":" << faulted.timeout_retransmits
            << ",\"recorded_flow\":" << faulted.recorded_flow
            << ",\"recorded_slo\":" << faulted.recorded_slo
            << ",\"clean_triggers\":" << clean.triggers.size()
            << ",\"deterministic\":"
            << (faulted.bundle_json == rerun.bundle_json &&
                        faulted.bundle_jsonl == rerun.bundle_jsonl
                    ? 1
                    : 0);
  if (!faulted.triggers.empty()) {
    std::cout << ",\"trigger\":" << SloTriggerToJson(faulted.triggers[0]);
  }
  std::cout << "}" << std::endl;

  if (failures.empty()) {
    std::cout << "WATCHDOG_CHAOS_GATES PASS\n";
    return 0;
  }
  for (const std::string& f : failures) {
    std::cout << "GATE FAIL: " << f << "\n";
  }
  std::cout << "WATCHDOG_CHAOS_GATES FAIL (" << failures.size() << ")\n";
  return 1;
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main(int argc, char** argv) { return tas::bench::Run(argc, argv); }
