// Table 4: peer compatibility between Linux and TAS. 100 bulk-transfer flows
// from one sending machine to one receiving machine over a 10G path, for all
// four sender/receiver stack combinations; line rate everywhere means the
// two independent TCP implementations interoperate.
#include "src/app/bulk.h"

#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

double RunCombo(StackKind receiver_kind, StackKind sender_kind) {
  HostSpec receiver = ServerSpec(receiver_kind, 6, 4, 64 * 1024);
  HostSpec sender = ServerSpec(sender_kind, 6, 4, 64 * 1024);
  LinkConfig link = ClientLink();  // 10G, as in the paper's table.
  link.ecn_threshold_pkts = 65;    // The testbed switch marks DCTCP-style.
  auto exp = Experiment::PointToPoint(receiver, sender, link);

  BulkReceiverConfig rc;
  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), rc);
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 100;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();

  const TimeNs warmup = Ms(80);  // Rate-based DCTCP converges in ~60ms.
  const TimeNs measure = ScalePick(60, 500) * kNsPerMs;
  exp->sim().RunUntil(warmup);
  rx.BeginMeasurement();
  exp->sim().RunUntil(warmup + measure);
  return rx.ThroughputBps() / 1e9;
}

void Run() {
  PrintHeader("Table 4: Linux/TAS sender-receiver compatibility matrix",
              "TAS paper Table 4 (100 bulk flows over 10G; paper: 9.4 Gbps everywhere)");
  TablePrinter table({"Receiver \\ Sender", "Linux", "TAS"});
  const StackKind kinds[] = {StackKind::kLinux, StackKind::kTas};
  for (StackKind receiver : kinds) {
    std::vector<double> row;
    for (StackKind sender : kinds) {
      row.push_back(RunCombo(receiver, sender));
    }
    table.AddRow(StackKindName(receiver), Fmt(row[0], 2) + " Gbps", Fmt(row[1], 2) + " Gbps");
  }
  table.Print();
  std::cout << "\nGoodput below the 10G line rate reflects header overhead (~5%).\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
