// Table 1 + Table 2 companion: CPU cycles per request by network stack
// module, measured from the simulation's cycle accounting while a KV-style
// RPC echo workload saturates the server (paper §2.2: 8 server cores, 32K
// connections, small requests).
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

struct Breakdown {
  double per_module[kNumCpuModules] = {};
  double total = 0;
};

Breakdown MeasureBreakdown(StackKind kind) {
  const size_t connections = ScalePick(2048, 32768);
  EchoRunConfig config;
  config.server_stack = kind;
  config.server_app_cores = 4;
  config.server_stack_cores = 4;  // 8 total "server cores" as in the paper.
  config.connections = connections;
  config.request_bytes = 64 + 32;  // 64 B keys, 32 B values.
  config.response_bytes = 32;
  config.warmup = Ms(10) + static_cast<TimeNs>(connections) * Us(30);
  config.measure = Ms(20);

  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  specs.push_back(ServerSpec(kind, config.server_app_cores, config.server_stack_cores,
                             4 * 1024));
  links.push_back(ServerLink());
  for (size_t i = 0; i < 4; ++i) {
    specs.push_back(IdealClientSpec());
    links.push_back(ClientLink());
  }
  auto exp = Experiment::Star(specs, links);

  EchoServerConfig server_config;
  server_config.request_bytes = config.request_bytes;
  server_config.response_bytes = config.response_bytes;
  server_config.app_cycles = 680;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), server_config);
  server.Start();
  std::vector<std::unique_ptr<EchoClient>> clients;
  for (size_t i = 0; i < 4; ++i) {
    EchoClientConfig cc;
    cc.server_ip = exp->host(0).ip();
    cc.num_connections = connections / 4;
    cc.request_bytes = config.request_bytes;
    cc.response_bytes = config.response_bytes;
    cc.connect_spread = config.warmup * 3 / 4;
    cc.first_request_at = config.warmup - Ms(2);
    clients.push_back(
        std::make_unique<EchoClient>(exp->host_sim(1 + i), exp->host(1 + i).stack(), cc));
    clients.back()->Start();
  }

  exp->sim().RunUntil(config.warmup);
  // Snapshot cycle counters after warmup, measure the delta.
  uint64_t before[kNumCpuModules];
  for (int m = 0; m < kNumCpuModules; ++m) {
    before[m] = exp->host(0).TotalCycles(static_cast<CpuModule>(m));
  }
  const uint64_t requests_before = server.requests_served();
  exp->sim().RunUntil(config.warmup + config.measure);

  Breakdown result;
  const uint64_t requests = server.requests_served() - requests_before;
  for (int m = 0; m < kNumCpuModules; ++m) {
    const uint64_t cycles =
        exp->host(0).TotalCycles(static_cast<CpuModule>(m)) - before[m];
    result.per_module[m] =
        requests == 0 ? 0 : static_cast<double>(cycles) / static_cast<double>(requests);
    result.total += result.per_module[m];
  }
  return result;
}

void Run() {
  PrintHeader("Table 1: CPU cycles per request by network stack module",
              "TAS paper Table 1 (kilocycles and % of total)");
  const StackKind kinds[] = {StackKind::kLinux, StackKind::kIx, StackKind::kTas};
  Breakdown results[3];
  for (int i = 0; i < 3; ++i) {
    results[i] = MeasureBreakdown(kinds[i]);
  }

  TablePrinter table({"Module", "Linux kc", "Linux %", "IX kc", "IX %", "TAS kc", "TAS %"});
  for (int m = 0; m < kNumCpuModules; ++m) {
    table.AddRow(CpuModuleName(static_cast<CpuModule>(m)),
                 Fmt(results[0].per_module[m] / 1000, 2),
                 Fmt(results[0].per_module[m] / results[0].total * 100, 0),
                 Fmt(results[1].per_module[m] / 1000, 2),
                 Fmt(results[1].per_module[m] / results[1].total * 100, 0),
                 Fmt(results[2].per_module[m] / 1000, 2),
                 Fmt(results[2].per_module[m] / results[2].total * 100, 0));
  }
  table.AddRow("Total", Fmt(results[0].total / 1000, 2), "100",
               Fmt(results[1].total / 1000, 2), "100", Fmt(results[2].total / 1000, 2),
               "100");
  table.Print();
  std::cout << "\nPaper totals: Linux 16.75 kc, IX 2.73 kc, TAS 2.57 kc per request.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
