// million_flow_churn: million-flow scale-out gate for the group-probed flow
// table and RSS flow-group steering (ROADMAP million-flow item; paper §3.1
// capacity claim + §3.4 scaling controller).
//
// Phase A drives the FlowTable directly: 1.2M live 4-tuples, zipf-skewed
// lookups, and erase+reinsert churn, plus a small-table exercise that forces
// tombstone-drift rebuilds. Phase B drives a full TasService: establish
// ScalePick(128K, 1M) flows, inject zipf-skewed pure-ACK traffic into the
// NIC with load-aware group migration enabled, churn connections each round
// (stale FlowIds must reject), and run the whole thing TWICE to assert
// same-seed byte-identical results via a state fingerprint.
//
// Self-gating: exits nonzero when an invariant fails (forced rehash
// finishes, relocation stride over one epoch, lost keys, fingerprint
// divergence, latency partition mismatches) or when probe-length p99 /
// events-per-packet regress past the optional baseline JSON (argv[1], the
// archived MILLION_FLOW_JSON of a good run). CI runs the reduced scale and
// archives the JSON next to perf_smoke's; see EXPERIMENTS.md.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/tas/fast_path.h"
#include "src/tas/steering.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/latency.h"
#include "src/util/zipf.h"

namespace tas {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

long PeakRssKb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

// Deterministic 4-tuple for table-key index i (unique for i < 15M).
FlowKey TableKey(uint64_t i) {
  FlowKey key;
  key.local_port = static_cast<uint16_t>(1024 + (i % 60000));
  const uint64_t g = i / 60000;
  key.peer_ip = MakeIp(10, static_cast<uint8_t>(g >> 8), static_cast<uint8_t>(g), 2);
  key.peer_port = 40000;
  return key;
}

FlowId IdOf(uint64_t i) {
  return MakeFlowId(static_cast<uint32_t>(i) & kFlowSlotMask,
                    static_cast<uint32_t>(i >> kFlowSlotBits));
}

void Fail(std::vector<std::string>& failures, const std::string& msg) {
  if (failures.size() < 16) {
    failures.push_back(msg);
  }
}

// --- Phase A: direct table churn at 1.2M live keys --------------------------

struct TableResult {
  size_t flows = 0;
  size_t zipf_lookups = 0;
  size_t churn_ops = 0;
  uint64_t lookup_hits = 0;
  size_t capacity = 0;
  double load_factor = 0;
  double avg_probe = 0;
  uint64_t probe_p50 = 0;
  uint64_t probe_p99 = 0;
  FlowTableStats stats;
  uint64_t drift_rebuilds_small = 0;
  double wall_sec = 0;
};

TableResult RunTableChurn(std::vector<std::string>& failures) {
  // The >= 1M-concurrent-flows gate runs at BOTH scales: the table-level
  // phase is cheap (tens of MB), so CI exercises the real capacity target.
  const size_t kFlows = 1'200'000;
  const size_t kLookups = ScalePick(1'000'000, 4'000'000);
  const size_t kChurn = ScalePick(400'000, 1'000'000);

  TableResult r;
  r.flows = kFlows;
  const auto start = Clock::now();

  FlowTable table;
  // keys[rank] = current key index occupying that rank slot (churn replaces).
  std::vector<uint64_t> keys(kFlows);
  for (uint64_t i = 0; i < kFlows; ++i) {
    keys[i] = i;
    table.Insert(TableKey(i), IdOf(i));
  }
  uint64_t next_key = kFlows;
  if (table.size() != kFlows) {
    Fail(failures, "phaseA: size after bulk insert != flow count");
  }

  // Zipf-skewed lookups (paper §5.3 uses s=0.9 for key popularity).
  ZipfGenerator zipf(kFlows, 0.9);
  Rng rng(0x5EED5);
  for (size_t l = 0; l < kLookups; ++l) {
    const size_t rank = zipf.Sample(rng);
    if (table.Find(TableKey(keys[rank])) == IdOf(keys[rank])) {
      ++r.lookup_hits;
    } else {
      Fail(failures, "phaseA: zipf lookup missed a live key");
    }
    if ((l & 0xF) == 0 && table.Find(TableKey(next_key + rank)) != kInvalidFlow) {
      Fail(failures, "phaseA: absent key reported present");
    }
  }
  r.zipf_lookups = kLookups;

  // Erase+reinsert churn with interleaved zipf reads (find-during-rehash).
  for (size_t op = 0; op < kChurn; ++op) {
    const size_t victim = static_cast<size_t>(rng.Next() % kFlows);
    if (!table.Erase(TableKey(keys[victim]))) {
      Fail(failures, "phaseA: churn erase lost a live key");
    }
    keys[victim] = next_key++;
    table.Insert(TableKey(keys[victim]), IdOf(keys[victim]));
    if ((op & 0x3) == 0) {
      const size_t rank = zipf.Sample(rng);
      if (table.Find(TableKey(keys[rank])) != IdOf(keys[rank])) {
        Fail(failures, "phaseA: lookup during churn returned wrong id");
      }
    }
  }
  r.churn_ops = kChurn;
  if (table.size() != kFlows) {
    Fail(failures, "phaseA: size drifted across churn");
  }

  r.capacity = table.capacity();
  r.load_factor = table.LoadFactor();
  r.avg_probe = table.AvgProbeLength();
  r.probe_p50 = table.probe_hist().ApproxPercentile(50);
  r.probe_p99 = table.probe_hist().ApproxPercentile(99);
  r.stats = table.stats();
  r.wall_sec = Seconds(start, Clock::now());

  // Hard invariants: incremental rehash never stalls the fast path for more
  // than one bounded stride, and never degenerates to a blocking rebuild.
  if (r.stats.forced_finishes != 0) {
    Fail(failures, "phaseA: rehash forced to finish synchronously");
  }
  if (r.stats.max_reloc_slots > FlowTable::kRehashStrideSlots) {
    Fail(failures, "phaseA: relocation step exceeded the per-op stride bound");
  }
  if (r.probe_p99 > 8) {
    Fail(failures, "phaseA: probe p99 over 8 groups at steady load");
  }
  return r;
}

// Tombstone-drift exercise on a small table: hold live count far below the
// drift bound while erase+insert churn accretes tombstones until occupancy
// trips the 7/8 check — the rebuild must keep capacity and keep every key.
uint64_t RunDriftExercise(std::vector<std::string>& failures) {
  FlowTable table(4096);
  const uint64_t kBase = 10'000'000;  // Distinct key range from phase A.
  uint64_t next = kBase;
  std::vector<uint64_t> live;
  // Fill to one below the growth trigger (occupancy 3583 of 4096*7/8).
  for (size_t i = 0; i < 3583; ++i) {
    live.push_back(next);
    table.Insert(TableKey(next), IdOf(next));
    ++next;
  }
  // Erase most: occupancy stays 3583 but is now mostly tombstones.
  size_t head = 0;
  while (live.size() - head > 783) {
    table.Erase(TableKey(live[head++]));
  }
  const size_t cap_before = table.capacity();
  // Churn at constant live count until an insert lands on an empty slot and
  // the next occupancy check trips as DRIFT (live 784 << 7/16 of capacity).
  size_t iters = 0;
  while (table.stats().drift_rebuilds == 0 && iters < 4000) {
    live.push_back(next);
    table.Insert(TableKey(next), IdOf(next));
    ++next;
    table.Erase(TableKey(live[head++]));
    ++iters;
  }
  if (table.stats().drift_rebuilds == 0) {
    Fail(failures, "drift: tombstone churn never triggered a drift rebuild");
  }
  if (table.capacity() != cap_before) {
    Fail(failures, "drift: rebuild changed capacity (expected same-size)");
  }
  for (size_t i = head; i < live.size(); ++i) {
    if (table.Find(TableKey(live[i])) != IdOf(live[i])) {
      Fail(failures, "drift: live key lost across drift rebuild");
    }
  }
  return table.stats().drift_rebuilds;
}

// --- Phase B: service-level churn with group migration ----------------------

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDull;
  return h ^ (h >> 33);
}

struct SvcResult {
  uint64_t fingerprint = 0;
  size_t flows = 0;
  uint64_t packets = 0;
  uint64_t events = 0;
  double events_per_packet = 0;
  uint64_t fastpath_rx = 0;
  uint64_t exceptions = 0;
  uint64_t group_moves = 0;
  uint64_t migrations = 0;
  uint64_t rebalances = 0;
  uint64_t deferred_items = 0;
  uint64_t partition_mismatches = 0;
  uint64_t churned = 0;
  uint64_t stale_rejected = 0;
  uint64_t watchdog_triggers = 0;  // Armed runs only.
  uint64_t recorder_records = 0;
  FlowTableReport table;
  double wall_sec = 0;
};

FlowKey SvcKey(uint64_t i) {
  FlowKey key;
  key.local_port = static_cast<uint16_t>(2000 + (i % 50000));
  const uint64_t g = i / 50000;
  key.peer_ip = MakeIp(172, static_cast<uint8_t>(16 + (g >> 8)), static_cast<uint8_t>(g), 9);
  key.peer_port = 50000;
  return key;
}

// `armed` runs the identical workload with the flight recorder + SLO
// watchdog on (default conservative SLOs, in-memory): the fingerprint
// compare against the unarmed run doubles as a timing-passivity gate at
// million-flow scale, and the conservative SLO set must stay silent.
SvcResult RunServiceChurn(std::vector<std::string>& failures, bool armed = false) {
  const size_t kFlows = ScalePick(131'072, 1'000'000);
  const size_t kRounds = ScalePick(64, 128);
  const size_t kPktsPerRound = ScalePick(256, 512);
  const size_t kChurnPerRound = 32;

  SvcResult r;
  r.flows = kFlows;
  const auto start = Clock::now();

  // TAS server with 4 fast-path cores, load-aware group migration on, and
  // latency stage stamping (the partition invariant must hold under
  // migration). Tiny payload buffers: the workload is pure-ACK, so the 1M
  // working set is flow state, not payload memory.
  HostSpec server = ServerSpec(StackKind::kTas, 1, 4, 64);
  server.tas.group_migration = true;
  server.tas.migrate_imbalance = 1.15;
  server.tas.monitor_interval = Ms(1);
  server.tas.trace.latency_stages = true;
  server.tas.watchdog.enabled = armed;
  HostSpec peer;  // Linux-stack placeholder; injected traffic never crosses.
  auto exp = Experiment::PointToPoint(server, peer, ServerLink());
  TasService* tas = exp->host(0).tas();
  SimNic* nic = tas->nic();

  std::vector<FlowId> ids(kFlows);
  uint64_t next_key = 0;
  for (size_t i = 0; i < kFlows; ++i) {
    ids[i] = tas->AllocateFlow(SvcKey(next_key++));
    tas->flow_by_id(ids[i])->cstate = ConnState::kEstablished;
  }

  // Zipf-skewed pure ACKs: seq/ack chosen so the fast path takes the
  // established-flow no-op path (no payload, nothing newly acked) — the run
  // isolates lookup + steering + batching cost at million-flow occupancy.
  ZipfGenerator zipf(kFlows, 1.0);
  Rng traffic_rng(0xACED1);
  uint64_t injected = 0;
  size_t churn_cursor = 0;
  const uint64_t events_before = exp->events_executed();
  // Absolute round deadlines: Now() after RunUntil is the last *executed*
  // event's time, so Now()-relative targets would let passive bookkeeping
  // events (e.g. the armed watchdog's checks) shift the injection schedule.
  TimeNs round_deadline = exp->sim().Now();
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t p = 0; p < kPktsPerRound; ++p) {
      const Flow* f = tas->flow_by_id(ids[zipf.Sample(traffic_rng)]);
      nic->Receive(MakeTcpPacket(f->fs.peer_ip, f->fs.peer_port, tas->local_ip(),
                                 f->fs.local_port, f->fs.ack, f->fs.tx_tail,
                                 TcpFlags::kAck));
      ++injected;
    }
    round_deadline += Us(200);
    exp->sim().RunUntil(round_deadline);
    // Connection churn: retire flows round-robin; their ids must go stale
    // (generation bump) before the slot's replacement flow reuses it.
    for (size_t c = 0; c < kChurnPerRound; ++c) {
      const size_t victim = churn_cursor++ % kFlows;
      const FlowId old_id = ids[victim];
      tas->FreeFlow(old_id);
      if (tas->flow_by_id(old_id) == nullptr) {
        ++r.stale_rejected;
      }
      ids[victim] = tas->AllocateFlow(SvcKey(next_key++));
      tas->flow_by_id(ids[victim])->cstate = ConnState::kEstablished;
      ++r.churned;
    }
  }
  exp->sim().RunUntil(round_deadline + Ms(2));  // Drain everything.

  r.packets = injected;
  r.events = exp->events_executed() - events_before;
  r.events_per_packet =
      injected > 0 ? static_cast<double>(r.events) / static_cast<double>(injected) : 0;
  const TasStats& stats = tas->stats();
  r.fastpath_rx = stats.fastpath_rx_packets;
  r.exceptions = stats.exceptions;
  FlowGroupSteering* steer = tas->steering();
  r.group_moves = steer->group_moves();
  r.migrations = steer->migrations();
  r.rebalances = steer->rebalances();
  r.deferred_items = steer->deferred_items();
  r.partition_mismatches = tas->tracer().latency().partition_mismatches();
  r.table = CaptureFlowTableReport(tas);
  if (armed) {
    FlightRecorder* recorder = tas->owned_recorder();
    r.watchdog_triggers = recorder->triggers().size();
    for (int s = 0; s < kNumRecorderStreams; ++s) {
      r.recorder_records += recorder->recorded(static_cast<RecorderStream>(s));
    }
  }

  // State fingerprint over everything steering could perturb: per-core
  // retirement counters, per-entry NIC hits, steering/stat counters, and a
  // sample of per-flow TCP state. Two same-seed runs must match bit-exactly —
  // including one armed run vs one unarmed run, which is why the fingerprint
  // covers workload state only: the armed watchdog adds periodic check
  // *events* (and Now() ends on the last executed event) without changing any
  // packet, flow, or counter below.
  uint64_t h = 0xCBF29CE484222325ull;
  for (int i = 0; i < tas->max_cores(); ++i) {
    h = Mix(h, tas->fastpath(i)->items_processed());
  }
  for (const uint64_t hits : nic->entry_hits()) {
    h = Mix(h, hits);
  }
  h = Mix(h, r.group_moves);
  h = Mix(h, r.migrations);
  h = Mix(h, r.rebalances);
  h = Mix(h, r.deferred_items);
  h = Mix(h, stats.fastpath_rx_packets);
  h = Mix(h, stats.cross_core_packets);
  h = Mix(h, stats.exceptions);
  h = Mix(h, r.table.probe_p99);
  h = Mix(h, tas->flow_table().stats().lookups);
  const size_t stride = kFlows / 64 == 0 ? 1 : kFlows / 64;
  for (size_t i = 0; i < kFlows; i += stride) {
    const Flow* f = tas->flow_by_id(ids[i]);
    h = Mix(h, f == nullptr ? 0 : (static_cast<uint64_t>(f->fs.ack) << 32) | f->fs.seq);
  }
  r.fingerprint = h;
  r.wall_sec = Seconds(start, Clock::now());

  if (r.stale_rejected != r.churned) {
    Fail(failures, "phaseB: a freed FlowId still resolved (stale id accepted)");
  }
  if (r.partition_mismatches != 0) {
    Fail(failures, "phaseB: latency partition mismatches under migration");
  }
  if (r.table.forced_finishes != 0 ||
      r.table.max_reloc_slots > FlowTable::kRehashStrideSlots) {
    Fail(failures, "phaseB: service flow table violated the rehash stride bound");
  }
  if (r.exceptions != 0) {
    Fail(failures, "phaseB: established-flow ACKs took the exception path");
  }
  return r;
}

// --- Baseline comparison -----------------------------------------------------

// Pulls "key":<number> out of an archived MILLION_FLOW_JSON line.
double JsonNumber(const std::string& text, const std::string& key, double fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return fallback;
  }
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

void GateAgainstBaseline(const std::string& path, const TableResult& t, const SvcResult& s,
                         std::vector<std::string>& failures) {
  std::ifstream in(path);
  if (!in) {
    Fail(failures, "baseline: cannot open " + path);
    return;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const double base_p99 = JsonNumber(text, "probe_p99", 0);
  const double base_epp = JsonNumber(text, "events_per_packet", 0);
  // probe_p99 is a log-bucket bound: a regression shows up as a bucket jump,
  // so allow 1.5x before failing. events-per-packet is continuous; 30%.
  if (base_p99 > 0 && static_cast<double>(t.probe_p99) > base_p99 * 1.5 + 1e-9) {
    Fail(failures, "baseline: probe p99 regressed vs " + path);
  }
  if (base_epp > 0 && s.events_per_packet > base_epp * 1.30) {
    Fail(failures, "baseline: events/packet regressed vs " + path);
  }
}

int Run(int argc, char** argv) {
  PrintHeader("million_flow_churn: flow-table + steering at 1M-flow scale",
              "paper §3.1 capacity / §3.4 scaling, ROADMAP million-flow item");
  std::vector<std::string> failures;

  const TableResult t = RunTableChurn(failures);
  const uint64_t drift = RunDriftExercise(failures);
  const SvcResult a = RunServiceChurn(failures);
  // Run B repeats the workload with the watchdog armed: the fingerprint
  // compare is both the same-seed determinism gate and the recorder's
  // timing-passivity gate at scale.
  const SvcResult b = RunServiceChurn(failures, /*armed=*/true);
  const bool deterministic = a.fingerprint == b.fingerprint;
  const double recorder_overhead = a.wall_sec > 0 ? b.wall_sec / a.wall_sec : 0;
  if (!deterministic) {
    Fail(failures, "phaseB: armed same-seed rerun diverged (recorder not passive)");
  }
  if (b.watchdog_triggers != 0) {
    Fail(failures, "phaseB: armed run triggered a default SLO (false positive)");
  }
  if (b.recorder_records == 0) {
    Fail(failures, "phaseB: armed run retained no recorder records");
  }
  if (a.rebalances == 0 || a.group_moves == 0) {
    Fail(failures, "phaseB: load-aware migration never fired under zipf skew");
  }

  TablePrinter table({"Metric", "Value"});
  table.AddRow("A: live flows", t.flows);
  table.AddRow("A: zipf lookups", t.zipf_lookups);
  table.AddRow("A: churn ops", t.churn_ops);
  table.AddRow("A: capacity / load", Fmt(static_cast<double>(t.capacity) / 1e6, 2) + "M / " +
                                         Fmt(t.load_factor, 2));
  table.AddRow("A: probe p50/p99 (groups)",
               std::to_string(t.probe_p50) + " / " + std::to_string(t.probe_p99));
  table.AddRow("A: avg probe", Fmt(t.avg_probe, 3));
  table.AddRow("A: rehashes (grow+drift)", t.stats.rehashes);
  table.AddRow("A: max reloc slots", t.stats.max_reloc_slots);
  table.AddRow("A: wall sec", Fmt(t.wall_sec, 2));
  table.AddRow("drift rebuilds (small table)", drift);
  table.AddRow("B: flows", a.flows);
  table.AddRow("B: packets injected", a.packets);
  table.AddRow("B: events/packet", Fmt(a.events_per_packet, 2));
  table.AddRow("B: fastpath rx / exceptions",
               std::to_string(a.fastpath_rx) + " / " + std::to_string(a.exceptions));
  table.AddRow("B: group moves / drains",
               std::to_string(a.group_moves) + " / " + std::to_string(a.migrations));
  table.AddRow("B: rebalances / deferred",
               std::to_string(a.rebalances) + " / " + std::to_string(a.deferred_items));
  table.AddRow("B: churned / stale rejected",
               std::to_string(a.churned) + " / " + std::to_string(a.stale_rejected));
  table.AddRow("B: partition mismatches", a.partition_mismatches);
  table.AddRow("B: table probe p99", a.table.probe_p99);
  table.AddRow("B: deterministic rerun", deterministic ? "yes" : "NO");
  table.AddRow("B: wall sec (each run)", Fmt(a.wall_sec, 2) + " / " + Fmt(b.wall_sec, 2));
  table.AddRow("B: recorder overhead (wall)", Fmt(recorder_overhead, 3) + "x (armed rerun)");
  table.AddRow("B: recorder records / triggers",
               std::to_string(b.recorder_records) + " / " +
                   std::to_string(b.watchdog_triggers));
  table.AddRow("peak RSS MiB", Fmt(static_cast<double>(PeakRssKb()) / 1024.0, 1));
  table.Print();

  std::cout << "MILLION_FLOW_JSON {"
            << "\"benchmark\":\"million_flow_churn\""
            << ",\"scale\":\"" << (FullScale() ? "full" : "reduced") << "\""
            << ",\"table_flows\":" << t.flows
            << ",\"zipf_lookups\":" << t.zipf_lookups
            << ",\"churn_ops\":" << t.churn_ops
            << ",\"capacity\":" << t.capacity
            << ",\"load_factor\":" << t.load_factor
            << ",\"avg_probe\":" << t.avg_probe
            << ",\"probe_p50\":" << t.probe_p50
            << ",\"probe_p99\":" << t.probe_p99
            << ",\"max_probe\":" << t.stats.max_probe
            << ",\"rehashes\":" << t.stats.rehashes
            << ",\"drift_rebuilds\":" << t.stats.drift_rebuilds
            << ",\"relocated\":" << t.stats.relocated
            << ",\"max_reloc_slots\":" << t.stats.max_reloc_slots
            << ",\"forced_finishes\":" << t.stats.forced_finishes
            << ",\"tombstones_reused\":" << t.stats.tombstones_reused
            << ",\"drift_rebuilds_small\":" << drift
            << ",\"table_wall_sec\":" << t.wall_sec
            << ",\"svc_flows\":" << a.flows
            << ",\"svc_packets\":" << a.packets
            << ",\"svc_events\":" << a.events
            << ",\"events_per_packet\":" << a.events_per_packet
            << ",\"svc_fastpath_rx\":" << a.fastpath_rx
            << ",\"svc_exceptions\":" << a.exceptions
            << ",\"group_moves\":" << a.group_moves
            << ",\"migrations\":" << a.migrations
            << ",\"rebalances\":" << a.rebalances
            << ",\"deferred_items\":" << a.deferred_items
            << ",\"partition_mismatches\":" << a.partition_mismatches
            << ",\"svc_churned\":" << a.churned
            << ",\"svc_stale_rejected\":" << a.stale_rejected
            << ",\"svc_probe_p99\":" << a.table.probe_p99
            << ",\"svc_load_factor\":" << a.table.load_factor
            << ",\"deterministic\":" << (deterministic ? 1 : 0)
            << ",\"fingerprint\":" << a.fingerprint
            << ",\"svc_wall_sec\":" << a.wall_sec
            << ",\"watchdog_triggers\":" << b.watchdog_triggers
            << ",\"recorder_records\":" << b.recorder_records
            << ",\"recorder_overhead_wall\":" << recorder_overhead
            << ",\"peak_rss_kb\":" << PeakRssKb() << "}" << std::endl;

  if (argc > 1) {
    GateAgainstBaseline(argv[1], t, a, failures);
  }
  if (failures.empty()) {
    std::cout << "MILLION_FLOW_GATES PASS\n";
    return 0;
  }
  for (const std::string& f : failures) {
    std::cout << "GATE FAIL: " << f << "\n";
  }
  std::cout << "MILLION_FLOW_GATES FAIL (" << failures.size() << ")\n";
  return 1;
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main(int argc, char** argv) { return tas::bench::Run(argc, argv); }
