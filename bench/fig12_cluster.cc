// Fig 12: large-cluster simulation — flow completion time CDFs for short
// (<= 50 packets) and long flows on a 3-level FatTree with 1:4
// oversubscription and on-off traffic at ~30% core utilization, comparing
// TCP (NewReno), DCTCP, and TAS (rate-based DCTCP, tau = 100us).
//
// The paper simulates 2560 servers / 112 switches in ns-3; the default here
// runs a k=4 FatTree with 1:4 oversubscription (32 hosts, 20 switches);
// TAS_SCALE=full runs k=8 (256 hosts, 80 switches). Shape to reproduce:
// TAS's FCT distribution tracks DCTCP's closely in both flow classes.
#include "bench/bench_common.h"
#include "src/harness/flowgen.h"

namespace tas {
namespace bench {
namespace {

constexpr uint16_t kPort = 9200;

HostSpec ProtocolHost(StackKind kind, CcAlgorithm algorithm) {
  HostSpec spec;
  spec.stack = kind;
  spec.app_cores = 2;
  if (kind == StackKind::kTas) {
    spec.tas_overridden = true;
    spec.tas.max_fastpath_cores = 2;
    spec.tas.costs = &MinimalCostModel();
    spec.tas.control_interval = Us(100);  // Paper: tau = 100us at scale.
    spec.tas.dctcp.initial_bps = 1e9;
    spec.tas.rx_buffer_bytes = 128 * 1024;
    spec.tas.tx_buffer_bytes = 128 * 1024;
  } else {
    spec.engine_overridden = true;
    spec.engine = IxStackConfig();
    spec.engine.costs = &MinimalCostModel();
    spec.engine.tcp.cc = algorithm;
  }
  return spec;
}

struct ClusterResult {
  std::vector<double> short_pcts;  // FCT [ms] at {50, 90, 99}.
  std::vector<double> long_pcts;
};

ClusterResult RunCluster(StackKind kind, CcAlgorithm algorithm) {
  FatTreeConfig topo;
  topo.k = FullScale() ? 8 : 4;
  topo.hosts_per_edge = 2 * topo.k;  // 1:4 oversubscription (k/2 uplinks).
  topo.host_link.gbps = 10.0;
  topo.host_link.propagation_delay = Us(1);
  topo.host_link.ecn_threshold_pkts = 65;
  topo.fabric_link = topo.host_link;

  auto exp = Experiment::Custom(
      [&topo](Simulator* sim, SimPartition* partition) {
        return MakeFatTree(sim, topo, partition);
      },
      {ProtocolHost(kind, algorithm)});

  // Destination pool: every host.
  std::vector<std::pair<IpAddr, uint16_t>> destinations;
  for (size_t i = 0; i < exp->num_hosts(); ++i) {
    destinations.emplace_back(exp->host(i).ip(), kPort);
  }

  std::vector<std::unique_ptr<FlowSource>> sources;
  for (size_t i = 0; i < exp->num_hosts(); ++i) {
    FlowGenConfig gen;
    gen.destinations = destinations;
    gen.rng_seed = 1000 + i;
    gen.pareto_min_bytes = 2 * 1448;
    gen.pareto_max_bytes = 1e6;
    gen.pareto_alpha = 1.05;
    BoundedPareto sizes(gen.pareto_min_bytes, gen.pareto_max_bytes, gen.pareto_alpha);
    // Host offered load such that core links run ~30%: hosts are 4:1
    // oversubscribed, so 0.3/4 of each host link fills the core to ~30%.
    const double host_load = 0.3 / 4;
    gen.mean_interarrival =
        static_cast<TimeNs>(sizes.Mean() * 8 / (10e9 * host_load) * 1e9);
    sources.push_back(
        std::make_unique<FlowSource>(exp->host_sim(i), exp->host(i).stack(), gen));
    sources.back()->Start();
    sources.back()->AlsoSink(kPort);
  }

  const TimeNs warmup = Ms(20);
  const TimeNs measure = ScalePick(50, 300) * kNsPerMs;
  exp->sim().RunUntil(warmup);
  for (auto& source : sources) {
    source->BeginMeasurement();
  }
  exp->sim().RunUntil(warmup + measure);

  // Merge percentiles across hosts by pooling each host's recorded values.
  LatencyRecorder short_all;
  LatencyRecorder long_all;
  for (auto& source : sources) {
    for (const auto& [value, frac] : source->fct_ms_short().Cdf(200)) {
      (void)frac;
      short_all.Add(value);
    }
    for (const auto& [value, frac] : source->fct_ms_long().Cdf(200)) {
      (void)frac;
      long_all.Add(value);
    }
  }
  ClusterResult result;
  for (double p : {50.0, 90.0, 99.0}) {
    result.short_pcts.push_back(short_all.Percentile(p));
    result.long_pcts.push_back(long_all.Percentile(p));
  }
  return result;
}

void Run() {
  PrintHeader("Fig 12: FatTree cluster — FCT distribution, short and long flows",
              "TAS paper Figure 12 (3-level FatTree, 1:4 oversubscription, ~30% load)");
  const ClusterResult tcp = RunCluster(StackKind::kIx, CcAlgorithm::kNewReno);
  const ClusterResult dctcp = RunCluster(StackKind::kIx, CcAlgorithm::kDctcpWindow);
  const ClusterResult tas = RunCluster(StackKind::kTas, CcAlgorithm::kDctcpRate);

  const char* rows[] = {"p50", "p90", "p99"};
  std::cout << "\nShort flows (<= 50 packets), FCT in ms:\n";
  TablePrinter short_table({"Percentile", "TCP", "DCTCP", "TAS"});
  for (int i = 0; i < 3; ++i) {
    short_table.AddRow(rows[i], Fmt(tcp.short_pcts[i], 3), Fmt(dctcp.short_pcts[i], 3),
                       Fmt(tas.short_pcts[i], 3));
  }
  short_table.Print();
  std::cout << "\nLong flows (> 50 packets), FCT in ms:\n";
  TablePrinter long_table({"Percentile", "TCP", "DCTCP", "TAS"});
  for (int i = 0; i < 3; ++i) {
    long_table.AddRow(rows[i], Fmt(tcp.long_pcts[i], 3), Fmt(dctcp.long_pcts[i], 3),
                      Fmt(tas.long_pcts[i], 3));
  }
  long_table.Print();
  std::cout << "\nPaper: TAS's FCT distributions are close to DCTCP's for both short and\n"
               "long flows; 100us is ample time for per-flow rate updates.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
