// Fig 4: connection scalability — RPC echo throughput versus number of
// client connections for TAS, IX, and Linux on a multi-core server.
//
// The paper's shape to reproduce: TAS and IX peak far above Linux; past
// saturation IX loses up to 60% and Linux 40% of peak as connections grow
// (per-connection state falls out of cache), while TAS stays within ~7%
// thanks to its 102-byte fast-path flow state.
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

void Run() {
  PrintHeader("Fig 4: RPC echo throughput vs number of connections",
              "TAS paper Figure 4 (20-core server; paper peak ~12-13 mOps)");

  std::vector<size_t> connection_counts;
  if (FullScale()) {
    connection_counts = {1000, 16000, 32000, 48000, 64000, 80000, 96000};
  } else {
    connection_counts = {1000, 8000, 32000, 64000};
  }

  // TAS columns beyond the paper figure: server flow-table occupancy, load
  // factor, and probe-length p99 (groups per Find) from the same measurement
  // path as bench/million_flow_churn (CaptureFlowTableReport), so connection
  // scaling and lookup cost are read off one table.
  TablePrinter table({"Connections", "TAS mOps", "IX mOps", "Linux mOps", "TAS flows",
                      "TAS load", "TAS probe p99"});
  for (size_t conns : connection_counts) {
    double mops[3];
    FlowTableReport tas_table;
    const StackKind kinds[] = {StackKind::kTas, StackKind::kIx, StackKind::kLinux};
    for (int i = 0; i < 3; ++i) {
      EchoRunConfig config;
      config.server_stack = kinds[i];
      // Paper: 20-core server. TAS: 8 app + 12 fast path; IX/Linux: 20 app
      // cores with the stack inline.
      config.server_app_cores = kinds[i] == StackKind::kTas ? 8 : 20;
      config.server_stack_cores = kinds[i] == StackKind::kTas ? 12 : 0;
      if (kinds[i] != StackKind::kTas) {
        config.server_stack_cores = 1;  // Unused by inline stacks.
      }
      config.connections = conns;
      config.num_client_hosts = 6;
      config.request_bytes = 64;
      config.response_bytes = 64;
      config.buffer_bytes = 2048;  // Keep 64K-connection memory bounded.
      config.measure = Ms(10);
      const EchoRunResult result = RunEcho(config);
      mops[i] = result.mops;
      if (kinds[i] == StackKind::kTas) {
        tas_table = result.server_flow_table;
      }
    }
    table.AddRow(conns, Fmt(mops[0], 2), Fmt(mops[1], 2), Fmt(mops[2], 2), tas_table.flows,
                 Fmt(tas_table.load_factor, 2), tas_table.probe_p99);
  }
  table.Print();
  std::cout << "\nPaper: at 1K conns TAS ~= 0.95x IX and 5.1x Linux; by 64K conns IX has\n"
               "lost up to 60% and Linux 40% of peak while TAS degrades <= 7%.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
