// Ablation: why 102 bytes of per-flow state matters (DESIGN.md §4).
//
// Sweeps the modeled per-connection state footprint of the TAS fast path
// and reports RPC throughput at a high connection count — demonstrating
// that TAS with IX-sized or Linux-sized connection state would fall off the
// same cache cliff Fig 4 shows for those systems. Also prints the measured
// sizeof(FlowState) and the per-core flow capacity claim from the paper
// ("more than 20,000 active flows per core" in 2 MB of cache).
#include "bench/bench_common.h"
#include "src/tas/flow_state.h"

namespace tas {
namespace bench {
namespace {

double RunWithStateBytes(double per_connection_bytes, double lines_per_packet,
                         size_t connections) {
  // Clone the TAS cost model with an inflated cache footprint.
  static StackCostModel model;  // Lives long enough for the run.
  model = TasSocketsCostModel();
  model.cache.per_connection_state_bytes = per_connection_bytes;
  model.cache.state_lines_per_packet = lines_per_packet;
  model.cache.effective_cache_bytes = 16.0 * 1024 * 1024;

  EchoRunConfig config;
  config.server_stack = StackKind::kTas;
  config.server_app_cores = 8;
  config.server_stack_cores = 8;
  config.connections = connections;
  config.num_client_hosts = 4;
  config.buffer_bytes = 2048;
  config.measure = Ms(10);
  // Route the custom model into the TAS service.
  HostSpec server = ServerSpec(StackKind::kTas, config.server_app_cores,
                               config.server_stack_cores, config.buffer_bytes);
  server.tas.costs = &model;

  std::vector<HostSpec> specs{server};
  std::vector<LinkConfig> links{ServerLink()};
  for (size_t i = 0; i < config.num_client_hosts; ++i) {
    specs.push_back(IdealClientSpec());
    links.push_back(ClientLink());
  }
  auto exp = Experiment::Star(specs, links);
  EchoServerConfig sc;
  EchoServer echo_server(exp->host_sim(0), exp->host(0).stack(), sc);
  echo_server.Start();
  std::vector<std::unique_ptr<EchoClient>> clients;
  const TimeNs warmup = Ms(10) + static_cast<TimeNs>(connections) * Us(30);
  for (size_t i = 0; i < config.num_client_hosts; ++i) {
    EchoClientConfig cc;
    cc.server_ip = exp->host(0).ip();
    cc.num_connections = connections / config.num_client_hosts;
    cc.connect_spread = warmup * 3 / 4;
    cc.first_request_at = warmup - Ms(2);
    clients.push_back(
        std::make_unique<EchoClient>(exp->host_sim(1 + i), exp->host(1 + i).stack(), cc));
    clients.back()->Start();
  }
  exp->sim().RunUntil(warmup);
  for (auto& client : clients) {
    client->BeginMeasurement();
  }
  exp->sim().RunUntil(warmup + config.measure);
  double mops = 0;
  for (auto& client : clients) {
    mops += client->Throughput() / 1e6;
  }
  return mops;
}

void Run() {
  PrintHeader("Ablation: fast-path per-flow state footprint",
              "DESIGN.md §4 / paper Table 3 (102 B) and §2 cache discussion");

  std::cout << "sizeof(FlowState) = " << sizeof(FlowState)
            << " bytes (paper Table 3: 102 B; ours packs dupack_cnt into a full byte)\n";
  const double per_core_cache = 2.0 * 1024 * 1024;
  std::cout << "Flows per 2 MB core cache: "
            << static_cast<uint64_t>(per_core_cache / sizeof(FlowState))
            << " (paper claims > 20,000)\n\n";

  const size_t connections = ScalePick(32000, 64000);
  struct Variant {
    const char* name;
    double state_bytes;
    double lines;
  };
  const Variant variants[] = {
      {"TAS (102 B state)", 256, 2},
      {"hypothetical 1 KB state (IX-like)", 1024, 28},
      {"hypothetical 2 KB state (Linux-like)", 2048, 40},
  };
  TablePrinter table({"Fast-path state variant", "mOps", "vs TAS"});
  double base = 0;
  for (const Variant& variant : variants) {
    const double mops = RunWithStateBytes(variant.state_bytes, variant.lines, connections);
    if (base == 0) {
      base = mops;
    }
    table.AddRow(variant.name, Fmt(mops, 2), Fmt(mops / base * 100, 0) + "%");
  }
  table.Print();
  std::cout << "\nWith bloated per-flow state the same TAS pipeline falls off the cache\n"
               "cliff at high connection counts — the quantitative argument for the\n"
               "paper's minimal fast-path state (Table 3).\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
