// Fig 7: throughput penalty under induced packet loss (0.1% - 5%) for 100
// bulk flows over a single 10G path: Linux (full SACK reassembly), TAS
// (single out-of-order interval), and TAS with simple go-back-N recovery.
//
// Shape to reproduce: TAS's penalty is small (<2% up to 1% loss, ~13% at 5%)
// but about 2x Linux's; disabling the out-of-order interval (go-back-N)
// roughly triples TAS's penalty.
#include "src/app/bulk.h"

#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

double RunPoint(StackKind kind, double drop_rate, bool go_back_n) {
  HostSpec receiver = ServerSpec(kind, 6, 4, 128 * 1024);
  HostSpec sender = ServerSpec(kind, 6, 4, 128 * 1024);
  if (go_back_n) {
    receiver.tas.ooo_mode = OooMode::kGoBackN;
    sender.tas.ooo_mode = OooMode::kGoBackN;
  }
  LinkConfig link = ClientLink();
  link.ecn_threshold_pkts = 65;
  if (drop_rate > 0) {
    link.faults.Add(BernoulliLoss(drop_rate));
  }
  auto exp = Experiment::PointToPoint(receiver, sender, link);

  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), BulkReceiverConfig{});
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 100;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();

  const TimeNs warmup = Ms(30);
  const TimeNs measure = ScalePick(50, 500) * kNsPerMs;
  exp->sim().RunUntil(warmup);
  rx.BeginMeasurement();
  exp->sim().RunUntil(warmup + measure);
  return rx.ThroughputBps();
}

void Run() {
  PrintHeader("Fig 7: throughput penalty vs induced packet loss rate",
              "TAS paper Figure 7 (100 flows, one 10G link)");
  const double rates[] = {0.001, 0.002, 0.005, 0.01, 0.02, 0.05};

  const double linux_base = RunPoint(StackKind::kLinux, 0, false);
  const double tas_base = RunPoint(StackKind::kTas, 0, false);
  const double gbn_base = RunPoint(StackKind::kTas, 0, true);

  TablePrinter table({"Loss rate", "Linux penalty %", "TAS penalty %",
                      "TAS go-back-N penalty %"});
  for (double rate : rates) {
    const double linux = RunPoint(StackKind::kLinux, rate, false);
    const double tas = RunPoint(StackKind::kTas, rate, false);
    const double gbn = RunPoint(StackKind::kTas, rate, true);
    table.AddRow(Fmt(rate * 100, 1) + "%", Fmt((1 - linux / linux_base) * 100, 1),
                 Fmt((1 - tas / tas_base) * 100, 1), Fmt((1 - gbn / gbn_base) * 100, 1));
  }
  table.Print();
  std::cout << "\nPaper: TAS <= 1.5% penalty up to 1% loss, ~13% at 5% loss (~2x Linux);\n"
               "without out-of-order processing the penalty grows ~3x.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
