// latency_gate: CI regression gate for per-stage latency percentiles.
//
// Usage: latency_gate <baseline.json> <current.json> [tolerance]
//
// Both files hold a LatencyReport as emitted by perf_smoke's
// PERF_LATENCY_JSON line (or a Tracer's <prefix>.latency.json dump). The
// gate fails (exit 1) when the current run's p99 or mean for any stage
// regresses beyond `tolerance` (fractional, default 0.25 = +25%) relative
// to the baseline. Improvements always pass; stages with too few samples
// for a stable p99 are skipped (see CompareLatencyReports). The simulator
// is deterministic, so on an unchanged workload the reports are identical
// and the generous default tolerance only trips on real cost-model or
// data-path changes — in which case the baseline should be re-recorded
// deliberately (see EXPERIMENTS.md).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/trace/latency.h"

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream is(path);
  if (!is) {
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  // perf_smoke output may be piped in whole; keep only the report line if
  // the file contains the PERF_LATENCY_JSON prefix.
  const std::string prefix = "PERF_LATENCY_JSON ";
  const size_t pos = out->find(prefix);
  if (pos != std::string::npos) {
    const size_t start = pos + prefix.size();
    const size_t end = out->find('\n', start);
    *out = out->substr(start, end == std::string::npos ? std::string::npos : end - start);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: latency_gate <baseline.json> <current.json> [tolerance]\n";
    return 2;
  }
  double tolerance = 0.25;
  if (argc == 4) {
    char* end = nullptr;
    tolerance = std::strtod(argv[3], &end);
    if (end == argv[3] || tolerance < 0) {
      std::cerr << "latency_gate: bad tolerance '" << argv[3] << "'\n";
      return 2;
    }
  }

  std::string baseline_json;
  std::string current_json;
  if (!ReadFile(argv[1], &baseline_json)) {
    std::cerr << "latency_gate: cannot read baseline " << argv[1] << "\n";
    return 2;
  }
  if (!ReadFile(argv[2], &current_json)) {
    std::cerr << "latency_gate: cannot read current " << argv[2] << "\n";
    return 2;
  }

  bool ok = false;
  const tas::LatencyReport baseline = tas::ParseLatencyReportJson(baseline_json, &ok);
  if (!ok) {
    std::cerr << "latency_gate: baseline is not a LatencyReport: " << argv[1] << "\n";
    return 2;
  }
  const tas::LatencyReport current = tas::ParseLatencyReportJson(current_json, &ok);
  if (!ok) {
    std::cerr << "latency_gate: current is not a LatencyReport: " << argv[2] << "\n";
    return 2;
  }

  const auto regressions = tas::CompareLatencyReports(baseline, current, tolerance);
  std::cout << "latency_gate: tolerance +" << static_cast<int>(tolerance * 100 + 0.5)
            << "%, " << baseline.stages.size() << " baseline stages, "
            << current.stages.size() << " current stages\n";
  std::cout << current.ToTable();
  if (regressions.empty()) {
    std::cout << "latency_gate: PASS (no stage regressed beyond tolerance)\n";
    return 0;
  }
  for (const auto& r : regressions) {
    std::printf("latency_gate: REGRESSION %s.%s: baseline %.0f ns -> current %.0f ns (%.2fx)\n",
                r.stage.c_str(), r.metric.c_str(), r.baseline, r.current, r.ratio);
  }
  std::cout << "latency_gate: FAIL (" << regressions.size() << " regression"
            << (regressions.size() == 1 ? "" : "s") << ")\n";
  return 1;
}
