// Fig 10 + Table 8: FlexStorm real-time analytics — average tuple
// throughput (raw and per-core) and the per-stage tuple latency breakdown
// (input queueing / processing / output queueing) on Linux, mTCP, and TAS.
//
// Shape to reproduce: mTCP ~2.1x Linux raw throughput (1.8x per-core); TAS
// +8% raw over mTCP (+26% per-core); output queueing dominated by the 10ms
// batching that Linux/mTCP require, which TAS drops entirely, cutting total
// tuple latency by >50% vs mTCP.
#include "src/app/flexstorm.h"

#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

struct FlexResult {
  double mtuples = 0;
  double per_core_mtuples = 0;
  double input_us = 0;
  double processing_us = 0;
  double output_us = 0;
  double total_ms = 0;
};

FlexResult RunConfig(StackKind kind) {
  // Three nodes in a ring over one switch (the paper deploys on 3 machines).
  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  const int workers = 2;
  const int app_cores = workers + 2;  // demux + workers + mux.
  for (int i = 0; i < 3; ++i) {
    specs.push_back(ServerSpec(kind, app_cores, 2, 256 * 1024));
    links.push_back(ClientLink());
  }
  auto exp = Experiment::Star(specs, links);

  FlexStormConfig config;
  config.num_workers = workers;
  config.spout_rate_tps = 1.5e6 / 3;  // Offered load above capacity per node.
  if (kind == StackKind::kTas) {
    config.mux_batch_timeout = 0;  // TAS: no batching (paper §5.4).
  } else {
    config.mux_batch_timeout = Ms(10);
    config.mux_batch_tuples = 100000;  // Effectively timeout-driven.
  }

  std::vector<std::unique_ptr<FlexStormNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    std::vector<Core*> cores = exp->host(i).AppCorePtrs();
    config.rng_seed = 7 + i;
    nodes.push_back(std::make_unique<FlexStormNode>(
        exp->host_sim(i), exp->host(i).stack(), cores, config));
  }
  for (int i = 0; i < 3; ++i) {
    nodes[i]->Start(exp->host((i + 1) % 3).ip());
  }

  const TimeNs warmup = Ms(50);
  const TimeNs measure = ScalePick(100, 1000) * kNsPerMs;
  exp->sim().RunUntil(warmup);
  for (auto& node : nodes) {
    node->BeginMeasurement();
  }
  exp->sim().RunUntil(warmup + measure);

  FlexResult result;
  RunningStats input;
  RunningStats proc;
  RunningStats output;
  LatencyRecorder total;
  for (auto& node : nodes) {
    result.mtuples += node->Throughput() / 1e6;
    input.Merge(node->input_wait_us());
    proc.Merge(node->processing_us());
    output.Merge(node->output_wait_us());
  }
  // Per-core: total cores across the deployment (app cores + stack cores).
  int total_cores = 3 * app_cores;
  if (kind == StackKind::kMtcp) {
    total_cores += 3;  // Dedicated mTCP stack cores.
  } else if (kind == StackKind::kTas) {
    total_cores += 3 * 2;  // Fast-path cores.
  }
  result.per_core_mtuples = result.mtuples / total_cores;
  result.input_us = input.mean();
  result.processing_us = proc.mean();
  result.output_us = output.mean();
  result.total_ms =
      (result.input_us + result.processing_us + result.output_us) / 1000.0;
  return result;
}

void Run() {
  PrintHeader("Fig 10 + Table 8: FlexStorm throughput and tuple latency",
              "TAS paper Figure 10 and Table 8 (3 nodes)");
  const StackKind kinds[] = {StackKind::kLinux, StackKind::kMtcp, StackKind::kTas};
  TablePrinter table({"Stack", "mtuples/s", "per-core ktuples/s", "Input", "Processing",
                      "Output", "Total"});
  for (StackKind kind : kinds) {
    const FlexResult r = RunConfig(kind);
    auto us = [](double v) { return Fmt(v, 2) + " us"; };
    auto stage = [&](double v) {
      return v >= 1000 ? Fmt(v / 1000, 2) + " ms" : us(v);
    };
    table.AddRow(StackKindName(kind), Fmt(r.mtuples, 2), Fmt(r.per_core_mtuples * 1000, 1),
                 stage(r.input_us), us(r.processing_us), stage(r.output_us),
                 stage(r.input_us + r.processing_us + r.output_us));
  }
  table.Print();
  std::cout << "\nPaper Table 8: Linux 6.96us/0.37us/20ms; mTCP 4ms/0.33us/14ms;\n"
               "TAS 7.47us/0.36us/8ms (input/processing/output). TAS needs no batching,\n"
               "so our TAS output queueing is microseconds (see EXPERIMENTS.md note).\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
