// Table 7: throughput for a non-scalable key-value workload — a single
// 4-byte key/value pair whose updates serialize on a lock — with varying
// total core counts.
//
// Shape to reproduce: TAS keeps scaling the stack while the app is stuck on
// one contended core (TAS LL 2.4 -> 4.6 mOps over 2-4 cores); IX tops out
// lower (2.8) and Linux far lower (0.8 at 4 cores).
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

double RunPoint(StackKind kind, int total_cores) {
  KvRunConfig config;
  config.server_stack = kind;
  config.contended = true;
  config.num_keys = 1;
  config.key_bytes = 4;
  config.value_bytes = 4;
  // 4-byte single-key ops are trivial: the stack, not the app, is the
  // bottleneck (which is exactly what lets TAS keep scaling, paper §5.3).
  config.server_app_cycles = 250;
  config.connections = 256;  // Paper: 256 connections.
  config.num_client_hosts = 4;
  if (kind == StackKind::kTas || kind == StackKind::kTasLowLevel) {
    // Paper: 1 application core plus 1-3 fast-path cores.
    config.server_app_cores = 1;
    config.server_stack_cores = total_cores - 1;
  } else {
    config.server_app_cores = total_cores;
    config.server_stack_cores = 1;
  }
  config.measure = Ms(15);
  return RunKv(config).mops;
}

void Run() {
  PrintHeader("Table 7: non-scalable KV workload (single contended 4B key)",
              "TAS paper Table 7 (throughput in mOps vs total cores)");
  TablePrinter table({"Total cores", "TAS LL", "TAS SO", "IX", "Linux"});
  const int max_cores = 4;
  for (int cores = 1; cores <= max_cores; ++cores) {
    std::string ll = cores >= 2 ? Fmt(RunPoint(StackKind::kTasLowLevel, cores), 2) : "-";
    std::string so = cores >= 2 ? Fmt(RunPoint(StackKind::kTas, cores), 2) : "-";
    table.AddRow(cores, ll, so, Fmt(RunPoint(StackKind::kIx, cores), 2),
                 Fmt(RunPoint(StackKind::kLinux, cores), 2));
  }
  table.Print();
  std::cout << "\nPaper: TAS LL 2.4/3.8/4.6 mOps at 2/3/4 cores; TAS SO 2.4/3.1/3.1;\n"
               "IX 1.5/2.5/2.8/2.8 at 1-4 cores; Linux 0.3/0.4/0.6/0.8.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
