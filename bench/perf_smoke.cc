// perf_smoke: macro benchmark for simulator-core overhead.
//
// Drives a fig6-style pipelined RPC run (single-threaded TAS server, ideal
// clients, pipeline depth 16) and reports how fast the simulator core chews
// through events: events/sec, wall ns/event, events per delivered packet,
// ops/sec of the workload, and peak RSS. Emits one machine-readable JSON
// line (prefixed PERF_SMOKE_JSON) so CI can archive the trajectory across
// PRs; see EXPERIMENTS.md.
#include <sys/resource.h>
#include <sys/time.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/latency.h"

namespace tas {
namespace bench {
namespace {

// TAS_LATENCY=1 enables per-packet stage stamping on the TAS server and
// emits a second machine-readable line (PERF_LATENCY_JSON) with the
// per-stage percentile report; bench/latency_gate.cc compares it against
// bench/baselines/perf_smoke_latency.json in CI. All values are sim-time
// derived, so the report is deterministic for a given seed and scale.
bool LatencyEnabled() {
  const char* env = std::getenv("TAS_LATENCY");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

// TAS_WATCHDOG_BENCH=1 runs the workload a second time with the flight
// recorder + SLO watchdog armed (default conservative SLOs, in-memory only)
// and emits the recorder-overhead column. Self-gating: the armed run must be
// workload-identical (ops/packets/bytes/retransmits/median — armed taps are
// timing-passive), must not trigger (false positive on a clean run), and the
// wall-clock overhead must stay under kMaxRecorderOverhead.
bool WatchdogBenchEnabled() {
  const char* env = std::getenv("TAS_WATCHDOG_BENCH");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

// Generous: the armed run's cost is a POD ring write per tap, but this gate
// also absorbs single-core CI wall-clock noise across two back-to-back runs.
constexpr double kMaxRecorderOverhead = 1.5;

// The same workload on the pre-pooling simulator core (std::function
// events + shared_ptr cancel flags + per-packet heap allocation),
// recorded by running this benchmark at commit ecc993c (Release, reduced
// scale) immediately before the zero-allocation hot path landed:
// 3,186,605 events dispatched at 2.9M events/sec, i.e. ~1.099 s of wall
// time.
constexpr double kPreChangeEventsPerSec = 2.9e6;
constexpr double kPreChangeEvents = 3186605;
constexpr double kPreChangeWallSec = kPreChangeEvents / kPreChangeEventsPerSec;

// Post-PR3 baseline (zero-allocation hot path, packet-serial fast path,
// unordered_map flow table), recorded by running this benchmark at commit
// bb6ebf5 (Release, reduced scale) immediately before batched fast-path
// processing landed. The batching PR compares against these: the workload
// (connections, bytes, pipeline depth) is identical, so events per
// delivered packet is the apples-to-apples overhead metric.
constexpr double kPostPr3Events = 2417014;
constexpr double kPostPr3WallSec = 0.454;
constexpr double kPostPr3Packets = 393801;
constexpr double kPostPr3EventsPerPacket = kPostPr3Events / kPostPr3Packets;
constexpr double kPostPr3Ops = 131650;
constexpr double kPostPr3Retransmits = 0;

struct SmokeResult {
  uint64_t events = 0;
  int sim_threads = 1;  // Resolved executor width (TAS_SIM_THREADS).
  double wall_sec = 0;
  double ops = 0;
  uint64_t ops_count = 0;     // Completed echo operations in the window.
  uint64_t packets = 0;       // Server NIC rx+tx packets in the window.
  uint64_t bytes_delivered = 0;
  uint64_t retransmits = 0;   // Fast + timeout + handshake, whole run.
  uint64_t retransmits_fast = 0;
  uint64_t retransmits_timeout = 0;
  uint64_t retransmits_handshake = 0;
  uint64_t server_rx_drops = 0;  // NIC ring overflow + flow buffer drops.
  double median_us = 0;
  uint64_t cancelled = 0;
  uint64_t cancelled_popped = 0;
  size_t max_pending = 0;
  size_t event_nodes = 0;
  PacketPoolStats pool;
  std::string latency_json;  // Empty unless TAS_LATENCY is set.
  uint64_t watchdog_triggers = 0;  // Armed runs only.
  uint64_t recorder_records = 0;   // Records retained across all streams.
};

// Inlined fig6-style pipelined echo run (see RunEcho in bench_common.h);
// inlined so the simulator's event counter can be read before teardown.
SmokeResult RunSmoke(bool armed = false) {
  const size_t kConnections = 100;
  const size_t kClientHosts = 4;
  const size_t kMessageBytes = 64;
  const TimeNs warmup = Ms(15);
  const TimeNs measure = FullScale() ? Ms(200) : Ms(60);

  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  specs.push_back(ServerSpec(StackKind::kTas, 1, 2, 64 * 1024));
  if (LatencyEnabled()) {
    specs.back().tas.trace.latency_stages = true;
  }
  if (armed) {
    specs.back().tas.watchdog.enabled = true;  // Default SLOs, in-memory only.
  }
  links.push_back(ServerLink());
  for (size_t i = 0; i < kClientHosts; ++i) {
    specs.push_back(IdealClientSpec());
    links.push_back(ClientLink());
  }
  auto exp = Experiment::Star(specs, links);

  EchoServerConfig server_config;
  server_config.request_bytes = kMessageBytes;
  server_config.response_bytes = kMessageBytes;
  server_config.app_cycles = 250;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), server_config);
  server.Start();

  std::vector<std::unique_ptr<EchoClient>> clients;
  for (size_t i = 0; i < kClientHosts; ++i) {
    EchoClientConfig cc;
    cc.server_ip = exp->host(0).ip();
    cc.num_connections = kConnections / kClientHosts;
    cc.request_bytes = kMessageBytes;
    cc.response_bytes = kMessageBytes;
    cc.pipeline_depth = 16;
    cc.connect_spread = warmup * 3 / 4;
    cc.first_request_at = warmup - Ms(2);
    clients.push_back(std::make_unique<EchoClient>(exp->host_sim(1 + i), exp->host(1 + i).stack(), cc));
    clients.back()->Start();
  }

  exp->sim().RunUntil(warmup);
  uint64_t ops_before = 0;
  for (auto& client : clients) {
    client->BeginMeasurement();
    ops_before += client->completed();
  }
  SimNic* server_nic = exp->host(0).tas()->nic();
  const uint64_t pkts_before = server_nic->rx_packets() + server_nic->tx_packets();
  const uint64_t events_before = exp->events_executed();
  const auto start = std::chrono::steady_clock::now();
  exp->sim().RunUntil(warmup + measure);
  const auto end = std::chrono::steady_clock::now();

  SmokeResult result;
  result.events = exp->events_executed() - events_before;
  result.sim_threads = exp->sim_threads();
  result.wall_sec = std::chrono::duration<double>(end - start).count();
  for (auto& client : clients) {
    result.ops += client->Throughput();
    result.ops_count += client->completed();
  }
  result.ops_count -= ops_before;
  result.packets = server_nic->rx_packets() + server_nic->tx_packets() - pkts_before;
  result.bytes_delivered = result.ops_count * 2 * kMessageBytes;
  const TasStats& stats = exp->host(0).tas()->stats();
  result.retransmits =
      stats.fast_retransmits + stats.timeout_retransmits + stats.handshake_retransmits;
  result.retransmits_fast = stats.fast_retransmits;
  result.retransmits_timeout = stats.timeout_retransmits;
  result.retransmits_handshake = stats.handshake_retransmits;
  result.server_rx_drops = server_nic->rx_drops() + stats.rx_buffer_drops;
  result.median_us = clients[0]->latency().Median();
  if (SimPartition* partition = exp->partition()) {
    result.cancelled = partition->cancelled_events();
    result.cancelled_popped = partition->cancelled_popped();
    result.max_pending = partition->max_pending_events();
    result.event_nodes = partition->event_nodes_total();
  } else {
    result.cancelled = exp->sim().cancelled_events();
    result.cancelled_popped = exp->sim().cancelled_popped();
    result.max_pending = exp->sim().max_pending_events();
    result.event_nodes = exp->sim().event_nodes_total();
  }
  result.pool = exp->pool_stats();
  if (LatencyEnabled()) {
    result.latency_json = exp->host(0).tas()->tracer().latency().Report().ToJson();
  }
  if (armed) {
    FlightRecorder* recorder = exp->host(0).tas()->owned_recorder();
    result.watchdog_triggers = recorder->triggers().size();
    for (int s = 0; s < kNumRecorderStreams; ++s) {
      result.recorder_records += recorder->recorded(static_cast<RecorderStream>(s));
    }
  }
  return result;
}

long PeakRssKb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

int Run() {
  PrintHeader("perf_smoke: simulator-core event throughput",
              "fig6-style pipelined RPC (64B, depth 16, TAS server)");

  const SmokeResult r = RunSmoke();
  const double events_per_sec = static_cast<double>(r.events) / r.wall_sec;
  const double ns_per_event =
      r.events > 0 ? r.wall_sec * 1e9 / static_cast<double>(r.events) : 0;
  const double events_per_packet =
      r.packets > 0 ? static_cast<double>(r.events) / static_cast<double>(r.packets) : 0;
  const double speedup = kPreChangeWallSec / r.wall_sec;
  const double speedup_pr3 = kPostPr3WallSec / r.wall_sec;
  const double epp_ratio_pr3 =
      events_per_packet > 0 ? kPostPr3EventsPerPacket / events_per_packet : 0;

  // Recorder-overhead column: the same workload with the watchdog armed.
  std::vector<std::string> gate_failures;
  SmokeResult armed;
  double recorder_overhead = 0;
  if (WatchdogBenchEnabled()) {
    armed = RunSmoke(/*armed=*/true);
    recorder_overhead = r.wall_sec > 0 ? armed.wall_sec / r.wall_sec : 0;
    // Timing passivity: every workload-facing result must be bit-identical.
    if (armed.ops_count != r.ops_count || armed.packets != r.packets ||
        armed.bytes_delivered != r.bytes_delivered ||
        armed.retransmits != r.retransmits || armed.median_us != r.median_us) {
      gate_failures.push_back("armed run changed workload results (not passive)");
    }
    if (armed.watchdog_triggers != 0) {
      gate_failures.push_back("armed run triggered a default SLO (false positive)");
    }
    if (armed.recorder_records == 0) {
      gate_failures.push_back("armed run retained no recorder records");
    }
    if (recorder_overhead > kMaxRecorderOverhead) {
      gate_failures.push_back("recorder wall-clock overhead exceeds the gate");
    }
  }

  TablePrinter table({"Metric", "Value"});
  table.AddRow("events dispatched", r.events);
  table.AddRow("sim threads", r.sim_threads);
  table.AddRow("wall seconds", Fmt(r.wall_sec, 3));
  table.AddRow("events/sec", Fmt(events_per_sec / 1e6, 2) + "M");
  table.AddRow("wall ns/event", Fmt(ns_per_event, 1));
  table.AddRow("server packets (rx+tx)", r.packets);
  table.AddRow("events/packet", Fmt(events_per_packet, 2));
  table.AddRow("workload Mops/sec", Fmt(r.ops / 1e6, 2));
  table.AddRow("ops completed", r.ops_count);
  table.AddRow("bytes delivered", r.bytes_delivered);
  table.AddRow("retransmits", r.retransmits);
  table.AddRow("median us", Fmt(r.median_us, 1));
  table.AddRow("peak RSS MiB", Fmt(static_cast<double>(PeakRssKb()) / 1024.0, 1));
  table.AddRow("speedup vs pre-pool", Fmt(speedup, 2) + "x (wall, same workload)");
  table.AddRow("speedup vs post-PR3", Fmt(speedup_pr3, 2) + "x (wall)");
  table.AddRow("events/pkt vs post-PR3", Fmt(epp_ratio_pr3, 2) + "x fewer");
  table.AddRow("max pending events", r.max_pending);
  table.AddRow("event nodes (slab)", r.event_nodes);
  table.AddRow("pkts allocated", r.pool.allocated);
  table.AddRow("pkts reused", r.pool.reused);
  if (WatchdogBenchEnabled()) {
    table.AddRow("armed wall seconds", Fmt(armed.wall_sec, 3));
    table.AddRow("recorder overhead (wall)", Fmt(recorder_overhead, 3) + "x");
    table.AddRow("recorder records", armed.recorder_records);
    table.AddRow("watchdog triggers", armed.watchdog_triggers);
  }
  table.Print();

  // One line, machine readable; CI greps for the prefix.
  std::cout << "PERF_SMOKE_JSON {"
            << "\"benchmark\":\"perf_smoke\""
            << ",\"workload\":\"fig6_pipelined_64b_d16\""
            << ",\"events\":" << r.events
            << ",\"sim_threads\":" << r.sim_threads
            << ",\"wall_sec\":" << r.wall_sec
            << ",\"wall_ns\":" << static_cast<uint64_t>(r.wall_sec * 1e9)
            << ",\"events_per_sec\":" << events_per_sec
            << ",\"wall_ns_per_event\":" << ns_per_event
            << ",\"server_packets\":" << r.packets
            << ",\"events_per_packet\":" << events_per_packet
            << ",\"workload_ops_per_sec\":" << r.ops
            << ",\"ops_completed\":" << r.ops_count
            << ",\"bytes_delivered\":" << r.bytes_delivered
            << ",\"retransmits\":" << r.retransmits
            << ",\"retransmits_fast\":" << r.retransmits_fast
            << ",\"retransmits_timeout\":" << r.retransmits_timeout
            << ",\"retransmits_handshake\":" << r.retransmits_handshake
            << ",\"server_rx_drops\":" << r.server_rx_drops
            << ",\"peak_rss_kb\":" << PeakRssKb()
            << ",\"baseline_events_per_sec_prechange\":" << kPreChangeEventsPerSec
            << ",\"baseline_events_prechange\":" << kPreChangeEvents
            << ",\"baseline_wall_sec_prechange\":" << kPreChangeWallSec
            << ",\"speedup_vs_prechange\":" << speedup
            << ",\"baseline_events_postpr3\":" << kPostPr3Events
            << ",\"baseline_wall_sec_postpr3\":" << kPostPr3WallSec
            << ",\"baseline_packets_postpr3\":" << kPostPr3Packets
            << ",\"baseline_events_per_packet_postpr3\":" << kPostPr3EventsPerPacket
            << ",\"baseline_ops_postpr3\":" << kPostPr3Ops
            << ",\"baseline_retransmits_postpr3\":" << kPostPr3Retransmits
            << ",\"speedup_vs_postpr3\":" << speedup_pr3
            << ",\"events_per_packet_ratio_vs_postpr3\":" << epp_ratio_pr3
            << ",\"cancelled_events\":" << r.cancelled
            << ",\"cancelled_popped\":" << r.cancelled_popped
            << ",\"max_pending_events\":" << r.max_pending
            << ",\"event_nodes\":" << r.event_nodes
            << ",\"pkt_pool_allocated\":" << r.pool.allocated
            << ",\"pkt_pool_reused\":" << r.pool.reused
            << ",\"watchdog_armed\":" << (WatchdogBenchEnabled() ? 1 : 0)
            << ",\"watchdog_triggers\":" << armed.watchdog_triggers
            << ",\"recorder_records\":" << armed.recorder_records
            << ",\"recorder_overhead_wall\":" << recorder_overhead
            << ",\"armed_wall_sec\":" << armed.wall_sec << "}" << std::endl;

  if (!r.latency_json.empty()) {
    const LatencyReport report = ParseLatencyReportJson(r.latency_json);
    std::cout << "\n" << report.ToTable();
    std::cout << "PERF_LATENCY_JSON " << r.latency_json << std::endl;
  }
  if (!gate_failures.empty()) {
    for (const std::string& f : gate_failures) {
      std::cout << "GATE FAIL: " << f << "\n";
    }
    std::cout << "PERF_SMOKE_GATES FAIL (" << gate_failures.size() << ")\n";
    return 1;
  }
  if (WatchdogBenchEnabled()) {
    std::cout << "PERF_SMOKE_GATES PASS\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { return tas::bench::Run(); }
