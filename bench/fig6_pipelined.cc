// Fig 6: pipelined RPC throughput for a single-threaded server, varying
// message size and per-RPC application processing (250 or 1000 cycles),
// split into receive-only and transmit-only directions, for TAS, mTCP, and
// Linux.
//
// Shape to reproduce: at small sizes TAS is several times Linux (RX ~4.5x,
// TX up to 12x) and ~1.5-2.6x mTCP; TAS reaches 40G line rate at 2KB with
// 250-cycle processing while Linux and mTCP stay near or below 10G.
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

double RunPoint(StackKind kind, EchoServerConfig::Mode mode, size_t bytes,
                uint64_t app_cycles) {
  EchoRunConfig config;
  config.server_stack = kind;
  config.server_app_cores = 1;  // Single-threaded server (paper).
  config.server_stack_cores = kind == StackKind::kMtcp ? 1 : 2;
  config.connections = 100;  // Paper: 100 connections over 4 client machines.
  config.num_client_hosts = 4;
  config.mode = mode;
  config.request_bytes = bytes;
  config.response_bytes = bytes;
  config.pipeline_depth = 16;
  config.server_app_cycles = app_cycles;
  config.buffer_bytes = 64 * 1024;
  config.warmup = Ms(15);
  config.measure = Ms(15);
  return RunEcho(config).mops;
}

void RunDirection(EchoServerConfig::Mode mode, const char* label) {
  const size_t sizes[] = {32, 128, 512, 2048};
  for (uint64_t cycles : {uint64_t{250}, uint64_t{1000}}) {
    std::cout << "\n--- " << label << ", " << cycles << " cycles/message ---\n";
    TablePrinter table({"Size [B]", "TAS mOps", "mTCP mOps", "Linux mOps", "TAS Gbps"});
    for (size_t size : sizes) {
      const double tas = RunPoint(StackKind::kTas, mode, size, cycles);
      const double mtcp = RunPoint(StackKind::kMtcp, mode, size, cycles);
      const double linux = RunPoint(StackKind::kLinux, mode, size, cycles);
      table.AddRow(size, Fmt(tas, 2), Fmt(mtcp, 2), Fmt(linux, 2),
                   Fmt(tas * 1e6 * static_cast<double>(size) * 8 / 1e9, 2));
    }
    table.Print();
  }
}

void Run() {
  PrintHeader("Fig 6: pipelined RPC throughput (one-directional)",
              "TAS paper Figure 6 (single-threaded server, 100 connections)");
  RunDirection(EchoServerConfig::Mode::kRxOnly, "RX: server only receives");
  RunDirection(EchoServerConfig::Mode::kTxOnly, "TX: server only transmits");
  std::cout << "\nPaper: RX small RPCs TAS ~4.5x Linux; TX small RPCs TAS up to 12.4x Linux\n"
               "and ~1.5x mTCP; TAS hits 40G at 2KB/250cyc, Linux/mTCP stay ~10G.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
