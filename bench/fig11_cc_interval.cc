// Fig 11: congestion-control fidelity on a single 10Gbps link with 100us
// RTT at 75% utilization, Pareto flow sizes — average flow completion time
// and average queue length as a function of the TAS slow-path control
// interval tau, against window-based TCP (NewReno) and DCTCP baselines.
//
// Shape to reproduce: TAS FCT matches DCTCP once tau exceeds the RTT; very
// small tau causes rate fluctuation and longer FCTs; queue length grows
// slowly with tau but stays near DCTCP's.
#include "bench/bench_common.h"
#include "src/harness/flowgen.h"

namespace tas {
namespace bench {
namespace {

constexpr double kLinkGbps = 10.0;
constexpr TimeNs kOneWay = Us(25);  // ~100us RTT incl. reverse path.
constexpr uint16_t kPort = 9100;

struct CcResult {
  double avg_fct_ms = 0;
  double avg_queue_pkts = 0;
};

HostSpec ProtocolHost(StackKind kind, CcAlgorithm algorithm, TimeNs tau) {
  HostSpec spec;
  spec.stack = kind;
  spec.app_cores = 4;
  if (kind == StackKind::kTas) {
    spec.tas_overridden = true;
    spec.tas.max_fastpath_cores = 4;
    spec.tas.costs = &MinimalCostModel();
    spec.tas.control_interval = tau;
    spec.tas.rx_buffer_bytes = 256 * 1024;
    spec.tas.tx_buffer_bytes = 256 * 1024;
    spec.tas.dctcp.min_bps = 5e6;
    // Comparable starting point to the window baselines (10 segments/RTT).
    spec.tas.dctcp.initial_bps = 1e9;
  } else {
    spec.engine_overridden = true;
    spec.engine = IxStackConfig();
    spec.engine.costs = &MinimalCostModel();
    spec.engine.tcp.cc = algorithm;
    spec.engine.tcp.tx_buffer_bytes = 256 * 1024;
    spec.engine.tcp.rx_buffer_bytes = 256 * 1024;
  }
  return spec;
}

CcResult RunPoint(StackKind kind, CcAlgorithm algorithm, TimeNs tau) {
  LinkConfig link;
  link.gbps = kLinkGbps;
  link.propagation_delay = kOneWay;
  link.queue_limit_pkts = 512;
  link.ecn_threshold_pkts = 65;  // Paper's DCTCP marking threshold.
  HostSpec sink_spec = ProtocolHost(kind, algorithm, tau);
  HostSpec source_spec = ProtocolHost(kind, algorithm, tau);
  auto exp = Experiment::PointToPoint(sink_spec, source_spec, link);

  FlowSink sink(exp->host_sim(0), exp->host(0).stack(), kPort);
  sink.Start();

  FlowGenConfig gen;
  gen.destinations = {{exp->host(0).ip(), kPort}};
  gen.pareto_min_bytes = 2 * 1448;
  gen.pareto_max_bytes = 1e6;
  gen.pareto_alpha = 1.05;
  BoundedPareto sizes(gen.pareto_min_bytes, gen.pareto_max_bytes, gen.pareto_alpha);
  const double load = 0.75;
  gen.mean_interarrival = static_cast<TimeNs>(sizes.Mean() * 8 / (kLinkGbps * 1e9 * load) * 1e9);
  FlowSource source(exp->host_sim(1), exp->host(1).stack(), gen);
  source.Start();

  Link* wire = exp->net()->links()[0].get();
  const TimeNs warmup = Ms(30);
  const TimeNs measure = ScalePick(100, 1000) * kNsPerMs;
  exp->sim().RunUntil(warmup);
  source.BeginMeasurement();
  exp->sim().RunUntil(warmup + measure);

  CcResult result;
  result.avg_fct_ms = source.fct_ms_all().Mean();
  result.avg_queue_pkts = wire->stats(1).queue_pkts.mean();
  return result;
}

void Run() {
  PrintHeader("Fig 11: single 10G link — FCT and queue vs control interval tau",
              "TAS paper Figure 11 (75% load, 100us RTT, Pareto flows)");
  const CcResult tcp = RunPoint(StackKind::kIx, CcAlgorithm::kNewReno, 0);
  const CcResult dctcp = RunPoint(StackKind::kIx, CcAlgorithm::kDctcpWindow, 0);

  std::vector<TimeNs> taus = {Us(50), Us(100), Us(200), Us(500), Ms(1)};
  if (FullScale()) {
    taus = {Us(25), Us(50), Us(100), Us(200), Us(400), Us(600), Us(800), Ms(1)};
  }
  TablePrinter table({"tau [us]", "TAS FCT [ms]", "TAS queue [pkts]", "DCTCP FCT [ms]",
                      "DCTCP queue", "TCP FCT [ms]", "TCP queue"});
  for (TimeNs tau : taus) {
    const CcResult tas = RunPoint(StackKind::kTas, CcAlgorithm::kDctcpRate, tau);
    table.AddRow(ToUs(tau), Fmt(tas.avg_fct_ms, 3), Fmt(tas.avg_queue_pkts, 1),
                 Fmt(dctcp.avg_fct_ms, 3), Fmt(dctcp.avg_queue_pkts, 1),
                 Fmt(tcp.avg_fct_ms, 3), Fmt(tcp.avg_queue_pkts, 1));
  }
  table.Print();
  std::cout << "\nPaper: TAS FCT ~= DCTCP for tau > RTT; too-small tau slows convergence;\n"
               "TCP (no ECN) holds much longer queues than both DCTCP and TAS.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
