// Fig 15: end-to-end request latency while TAS acquires additional fast-path
// cores in response to rising load — the latency spike during the
// transition should be brief and bounded (paper: ~15us / ~30% for a moment).
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

void Run() {
  PrintHeader("Fig 15: request latency across a fast-path core transition",
              "TAS paper Figure 15 (latency sampled in windows around scale-up)");

  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  HostSpec server = ServerSpec(StackKind::kTas, 4, 6, 8 * 1024);
  server.tas.dynamic_cores = true;
  server.tas.monitor_interval = Ms(2);
  specs.push_back(server);
  links.push_back(ServerLink());
  for (int i = 0; i < 2; ++i) {
    specs.push_back(IdealClientSpec());
    links.push_back(ClientLink());
  }
  auto exp = Experiment::Star(specs, links);

  KvServerConfig sc;
  KvServer kv(exp->host_sim(0), exp->host(0).stack(), sc);
  kv.Start();

  // Client 1: steady moderate load from t=0.
  KvClientConfig base;
  base.server_ip = exp->host(0).ip();
  base.num_connections = 64;
  base.target_ops_per_sec = 300000;
  base.rng_seed = 11;
  KvClient steady(exp->host_sim(1), exp->host(1).stack(), base);
  steady.Start();

  // Client 2: arrives mid-run and pushes the fast path past one core.
  KvClientConfig surge_config = base;
  // Triples the offered load: enough to need more fast-path cores, below
  // the app cores' capacity so queues drain once the cores arrive.
  surge_config.target_ops_per_sec = 2.2e6;
  surge_config.num_connections = 256;
  surge_config.rng_seed = 12;
  std::unique_ptr<KvClient> surge;

  const TimeNs window = Ms(5);
  const TimeNs surge_at = Ms(60);
  const TimeNs end = Ms(140);

  TablePrinter table({"t [ms]", "cores", "steady-client median [us]", "p99 [us]"});
  TimeNs now = 0;
  while (now < end) {
    if (surge == nullptr && now >= surge_at) {
      surge = std::make_unique<KvClient>(exp->host_sim(2), exp->host(2).stack(), surge_config);
      surge->Start();
    }
    steady.BeginMeasurement();
    now += window;
    exp->sim().RunUntil(now);
    table.AddRow(Fmt(ToMs(now), 0), exp->host(0).tas()->active_cores(),
                 Fmt(steady.latency().Median(), 1), Fmt(steady.latency().Percentile(99), 1));
  }
  table.Print();
  std::cout << "\nPaper: during the 7->9 core transition latency spikes ~15us (~30%) and\n"
               "returns to its previous level within a couple of control periods.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
