// proxy_cycles: per-request CPU cost of the reverse-proxy tier, split by
// response path (cache hit / miss-and-store / splice), Table-1 style: the
// proxy host's cycle accounting per CpuModule divided by responses served.
//
// Three single-path rigs isolate the costs (tiny hot universe for pure hits;
// zero-byte cache for pure store misses; splice_min_body=1 for pure splice),
// then a churn scenario drives 10k short-lived half-closing clients through
// a <=64-connection origin pool across a zipf-alpha sweep with per-packet
// latency stage stamping enabled.
//
// The run self-gates (exit 1) on:
//   - non-distinct path costs (hit must undercut store; all three pairwise
//     distinct — splice skips the per-byte copy charge, so its proxy cost
//     must differ from the buffered store path),
//   - same-seed determinism (the hit rig runs twice; every reported number
//     must be byte-identical),
//   - churn correctness (every request answered exactly once, pool bound
//     respected) and the latency partition invariant
//     (partition_mismatches == 0 while stage stamping is on).
//
// Emits one machine-readable line (PROXY_CYCLES_JSON) so CI can archive the
// trajectory next to PERF_SMOKE_JSON; see EXPERIMENTS.md.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/proxy/origin_server.h"
#include "src/proxy/proxy_client.h"
#include "src/proxy/proxy_server.h"

namespace tas {
namespace bench {
namespace {

// All three path rigs serve the same body distribution (~4-8 KiB) so the
// per-request costs are comparable: the store/splice gap is then purely the
// per-byte copy charge the splice path avoids.
constexpr uint32_t kMinBody = 4096;
constexpr uint32_t kBodySpread = 4096;

LinkConfig ProxyLink() {
  LinkConfig link = ServerLink();
  link.rng_seed = 42;  // Fixed so same-seed runs are byte-identical.
  return link;
}

LinkConfig EdgeLink() {
  LinkConfig link = ClientLink();
  link.rng_seed = 43;
  return link;
}

HostSpec ProxyHostSpec(bool latency_stages, bool causal) {
  HostSpec spec = ServerSpec(StackKind::kTas, 1, 2, 64 * 1024);
  spec.tas.trace.latency_stages = latency_stages;
  // Request-level causal tracing (DESIGN.md §12). Queued requests can
  // outlive thousands of newer trace mints under overflow-queue pressure, so
  // give the churn run a 16k-slot ring to stay drop-free.
  spec.tas.trace.causal = causal;
  spec.tas.trace.causal_trace_capacity = 1u << 14;
  return spec;
}

struct Rig {
  std::unique_ptr<Experiment> exp;
  std::unique_ptr<ProxyServer> proxy;
  std::unique_ptr<OriginServer> origin;
  std::unique_ptr<ProxyClientGen> clients;
};

// host 0 = proxy (measured), host 1 = origin, host 2 = clients.
Rig MakeRig(ProxyServerConfig proxy_cfg, OriginServerConfig origin_cfg,
            ProxyClientConfig client_cfg, bool latency_stages = false, bool causal = false) {
  Rig rig;
  rig.exp = Experiment::Star(
      {ProxyHostSpec(latency_stages, causal), ServerSpec(StackKind::kTas, 1, 2, 64 * 1024),
       ServerSpec(StackKind::kTas, 1, 2, 64 * 1024)},
      {ProxyLink(), EdgeLink(), EdgeLink()});
  proxy_cfg.pool.origin_ip = rig.exp->host(1).ip();
  proxy_cfg.pool.origin_port = origin_cfg.port;
  client_cfg.proxy_ip = rig.exp->host(0).ip();
  client_cfg.proxy_port = proxy_cfg.listen_port;
  client_cfg.min_body_bytes = origin_cfg.min_body_bytes;
  client_cfg.body_spread = origin_cfg.body_spread;
  rig.proxy = std::make_unique<ProxyServer>(rig.exp->host_sim(0), rig.exp->host(0).stack(), proxy_cfg);
  rig.origin =
      std::make_unique<OriginServer>(rig.exp->host_sim(1), rig.exp->host(1).stack(), origin_cfg);
  rig.clients =
      std::make_unique<ProxyClientGen>(rig.exp->host_sim(2), rig.exp->host(2).stack(), client_cfg);
  rig.origin->Start();
  rig.proxy->Start();
  rig.clients->Start();
  return rig;
}

struct PathResult {
  double per_module[kNumCpuModules] = {};
  double total = 0;        // Proxy-host cycles per response, all modules.
  uint64_t responses = 0;  // Responses in the measure window.
  uint64_t hits = 0;       // Cache hits in the window.
  uint64_t misses = 0;     // Cache misses in the window.
  uint64_t spliced_bytes = 0;
  double median_us = 0;
};

// Steady-state cost of one response path: warm up the rig (fills or bypasses
// the cache as configured), then charge the proxy host's cycle-counter delta
// to the responses completed in the measure window.
PathResult MeasurePath(ProxyServerConfig proxy_cfg, ProxyClientConfig client_cfg) {
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = kMinBody;
  origin_cfg.body_spread = kBodySpread;
  Rig rig = MakeRig(std::move(proxy_cfg), origin_cfg, std::move(client_cfg));

  const TimeNs warmup = Ms(20);
  const TimeNs measure = FullScale() ? Ms(100) : Ms(30);
  rig.exp->sim().RunUntil(warmup);

  rig.clients->BeginMeasurement();
  uint64_t before[kNumCpuModules];
  for (int m = 0; m < kNumCpuModules; ++m) {
    before[m] = rig.exp->host(0).TotalCycles(static_cast<CpuModule>(m));
  }
  const uint64_t responses_before = rig.proxy->responses();
  const HotObjectCacheStats cache_before = rig.proxy->cache().stats();
  const uint64_t spliced_before = rig.proxy->spliced_bytes();
  rig.exp->sim().RunUntil(warmup + measure);

  PathResult result;
  result.responses = rig.proxy->responses() - responses_before;
  result.hits = rig.proxy->cache().stats().hits - cache_before.hits;
  result.misses = rig.proxy->cache().stats().misses - cache_before.misses;
  result.spliced_bytes = rig.proxy->spliced_bytes() - spliced_before;
  result.median_us = rig.clients->latency().Median() / 1000.0;
  for (int m = 0; m < kNumCpuModules; ++m) {
    const uint64_t cycles = rig.exp->host(0).TotalCycles(static_cast<CpuModule>(m)) - before[m];
    result.per_module[m] = result.responses == 0
                               ? 0
                               : static_cast<double>(cycles) / static_cast<double>(result.responses);
    result.total += result.per_module[m];
  }
  return result;
}

ProxyClientConfig KeepAliveClients() {
  ProxyClientConfig cc;
  cc.concurrency = 16;
  cc.total_connections = 0;  // Keep-alive forever; steady state.
  cc.pipeline_depth = 4;
  cc.connect_spread = Ms(5);
  cc.first_request_at = Ms(8);
  return cc;
}

// Pure cache hits: a hot universe small enough that the warmup fills the
// cache completely; every measured request is then answered from memory.
PathResult MeasureHits() {
  ProxyServerConfig pc;
  pc.cache_bytes = 1 << 20;
  pc.splice_min_body = 0xFFFFFFFFu;
  ProxyClientConfig cc = KeepAliveClients();
  cc.num_objects = 16;
  return MeasurePath(pc, cc);
}

// Pure miss-and-store: a zero-byte cache rejects every insert, so each
// request crosses the pool and its body is copied through the proxy.
PathResult MeasureStores() {
  ProxyServerConfig pc;
  pc.cache_bytes = 0;
  pc.splice_min_body = 0xFFFFFFFFu;
  ProxyClientConfig cc = KeepAliveClients();
  cc.num_objects = 4096;
  cc.zipf_skew = 0.01;  // Near-uniform: no accidental single-flight coalescing.
  return MeasurePath(pc, cc);
}

// Pure splice: every body is forwarded client<-origin inside the stack;
// the proxy never touches the payload bytes.
PathResult MeasureSplices() {
  ProxyServerConfig pc;
  pc.cache_bytes = 0;
  pc.splice_min_body = 1;
  ProxyClientConfig cc = KeepAliveClients();
  cc.num_objects = 4096;
  cc.zipf_skew = 0.01;
  return MeasurePath(pc, cc);
}

struct ChurnResult {
  double alpha = 0;
  uint64_t target = 0;
  uint64_t completed = 0;
  uint64_t issued = 0;
  uint64_t duplicates = 0;
  uint64_t mismatches = 0;
  uint64_t bad_bodies = 0;
  uint64_t retries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t coalesced = 0;  // (from pool reuse; see stats below)
  uint64_t pool_opened = 0;
  uint64_t pool_conns_hw = 0;
  uint64_t spliced_bytes = 0;
  uint64_t latency_records = 0;
  uint64_t partition_mismatches = 0;
  // Request-level causal tracing health (DESIGN.md §12).
  uint64_t causal_completed = 0;
  uint64_t causal_mismatches = 0;
  uint64_t causal_dropped = 0;
  uint64_t causal_truncated = 0;
  uint64_t trace_mismatches = 0;  // Responses whose trace id did not echo.
  std::string critpath_json;      // CriticalPathReport::ToJson().
  std::string critpath_table;     // CriticalPathReport::ToTable().
  std::vector<std::string> classes_seen;
  double hit_rate = 0;
  double p50_us = 0;
  double p99_us = 0;
  TimeNs finished_at = 0;
  uint64_t wall_ns = 0;  // Host wall clock spent in the churn loop.
  int sim_threads = 1;   // Resolved executor width (TAS_SIM_THREADS).
  bool drained = false;
};

// The ISSUE scenario: 10k short-lived clients (half-close after their last
// request) funneled through a <=64-connection origin pool, with per-packet
// latency stage stamping on the proxy host. The latency partition invariant
// (stage intervals sum exactly to end-to-end time) must survive the churn.
ChurnResult RunChurn(double alpha) {
  ProxyServerConfig pc;
  pc.cache_bytes = 256 * 1024;
  // Low enough that the body spread (64..2112) produces all three response
  // paths — the per-class critical-path report needs splice traffic too.
  pc.splice_min_body = 1024;
  pc.pool.max_conns = 64;
  OriginServerConfig oc;
  oc.min_body_bytes = 64;
  oc.body_spread = 2048;
  ProxyClientConfig cc;
  cc.concurrency = 256;
  cc.total_connections = 10000;
  cc.requests_per_connection = FullScale() ? 6 : 2;
  cc.half_close = true;
  cc.pipeline_depth = 2;
  cc.num_objects = 4096;
  cc.zipf_skew = alpha;
  cc.connect_spread = Ms(10);
  Rig rig = MakeRig(pc, oc, cc, /*latency_stages=*/true, /*causal=*/true);
  rig.clients->BeginMeasurement();  // Record latency for the whole run.

  ChurnResult result;
  result.alpha = alpha;
  result.target = cc.total_connections * cc.requests_per_connection;
  const TimeNs deadline = Sec(300);
  const auto wall_start = std::chrono::steady_clock::now();
  while (rig.exp->sim().Now() < deadline && rig.clients->completed() < result.target) {
    rig.exp->sim().RunUntil(rig.exp->sim().Now() + Ms(10));
  }
  result.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  result.sim_threads = rig.exp->sim_threads();
  result.drained = rig.clients->completed() >= result.target;
  result.completed = rig.clients->completed();
  result.issued = rig.clients->issued();
  result.duplicates = rig.clients->duplicates();
  result.mismatches = rig.clients->mismatches();
  result.bad_bodies = rig.clients->bad_bodies();
  result.retries = rig.clients->retries();
  result.cache_hits = rig.proxy->cache().stats().hits;
  result.cache_misses = rig.proxy->cache().stats().misses;
  result.pool_opened = rig.proxy->pool().stats().opened;
  result.pool_conns_hw = rig.proxy->pool().stats().conns_hw;
  result.spliced_bytes = rig.proxy->spliced_bytes();
  const uint64_t accesses = result.cache_hits + result.cache_misses;
  result.hit_rate =
      accesses == 0 ? 0 : static_cast<double>(result.cache_hits) / static_cast<double>(accesses);
  result.p50_us = rig.clients->latency().Median() / 1000.0;
  result.p99_us = rig.clients->latency().Percentile(99) / 1000.0;
  result.finished_at = rig.exp->sim().Now();
  const LatencyTracer& lat = rig.exp->host(0).tas()->tracer().latency();
  result.latency_records = lat.completed();
  result.partition_mismatches = lat.partition_mismatches();
  const CausalTracer& ct = rig.exp->host(0).tas()->tracer().causal();
  result.causal_completed = ct.completed();
  result.causal_mismatches = ct.critical_path_mismatches();
  result.causal_dropped = ct.dropped();
  result.causal_truncated = ct.truncated();
  result.trace_mismatches = rig.clients->trace_mismatches();
  const CriticalPathReport report = ct.Report();
  result.critpath_json = report.ToJson();
  result.critpath_table = report.ToTable();
  for (const CriticalPathClassSummary& cls : report.classes) {
    result.classes_seen.push_back(cls.request_class);
  }
  return result;
}

std::string Fingerprint(const PathResult& r) {
  std::ostringstream os;
  os << r.responses << '|' << r.hits << '|' << r.misses << '|' << r.spliced_bytes << '|'
     << r.median_us;
  for (int m = 0; m < kNumCpuModules; ++m) {
    os << '|' << r.per_module[m];
  }
  return os.str();
}

bool Distinct(double a, double b) {
  const double hi = std::max(a, b);
  return hi > 0 && std::abs(a - b) / hi > 0.02;  // >2% apart.
}

int Run() {
  PrintHeader("proxy_cycles: reverse-proxy per-request cycle anatomy",
              "TAS paper Table 1 method applied to the src/proxy tier");

  const PathResult hit = MeasureHits();
  const PathResult store = MeasureStores();
  const PathResult splice = MeasureSplices();
  // Same-seed determinism: the whole breakdown must be byte-identical.
  const PathResult hit2 = MeasureHits();
  const bool deterministic = Fingerprint(hit) == Fingerprint(hit2);

  TablePrinter table({"Module", "hit c/req", "store c/req", "splice c/req"});
  for (int m = 0; m < kNumCpuModules; ++m) {
    table.AddRow(CpuModuleName(static_cast<CpuModule>(m)), Fmt(hit.per_module[m], 1),
                 Fmt(store.per_module[m], 1), Fmt(splice.per_module[m], 1));
  }
  table.AddRow("Total", Fmt(hit.total, 1), Fmt(store.total, 1), Fmt(splice.total, 1));
  table.AddRow("responses", hit.responses, store.responses, splice.responses);
  table.AddRow("median us", Fmt(hit.median_us, 1), Fmt(store.median_us, 1),
               Fmt(splice.median_us, 1));
  table.Print();

  std::cout << "\nChurn: 10k half-closing clients, <=64 origin conns, zipf sweep\n";
  const double alphas[] = {0.6, 0.9, 1.2};
  std::vector<ChurnResult> churn;
  for (double alpha : alphas) {
    churn.push_back(RunChurn(alpha));
  }
  TablePrinter churn_table({"alpha", "completed", "hit rate", "pool hw", "p50 us", "p99 us",
                            "partition mm", "critpath mm"});
  for (const ChurnResult& c : churn) {
    churn_table.AddRow(Fmt(c.alpha, 1), c.completed, Fmt(c.hit_rate * 100, 1) + "%",
                       c.pool_conns_hw, Fmt(c.p50_us, 1), Fmt(c.p99_us, 1),
                       c.partition_mismatches, c.causal_mismatches);
  }
  churn_table.Print();

  // Per-class critical-path anatomy of the middle (alpha=0.9) run — the
  // breakdown the PROXY_CRITPATH_JSON gate baseline is recorded from.
  std::cout << "\nCritical-path breakdown (alpha=0.9 churn):\n"
            << churn[1].critpath_table;

  // --- Gates ---
  std::vector<std::string> failures;
  if (hit.responses == 0 || store.responses == 0 || splice.responses == 0) {
    failures.push_back("a path rig completed zero responses");
  }
  if (hit.misses != 0) {
    failures.push_back("hit rig was not pure (cache misses in measure window)");
  }
  if (store.hits != 0 || splice.spliced_bytes == 0) {
    failures.push_back("store/splice rigs were not pure");
  }
  if (!(hit.total < store.total)) {
    failures.push_back("cache hit is not cheaper than miss-and-store");
  }
  if (!Distinct(hit.total, store.total) || !Distinct(store.total, splice.total) ||
      !Distinct(hit.total, splice.total)) {
    failures.push_back("hit/store/splice per-request costs are not distinct");
  }
  if (!deterministic) {
    failures.push_back("same-seed re-run changed the breakdown: " + Fingerprint(hit) +
                       " vs " + Fingerprint(hit2));
  }
  for (const ChurnResult& c : churn) {
    std::ostringstream tag;
    tag << "churn alpha=" << c.alpha << ": ";
    if (!c.drained || c.completed != c.target || c.issued != c.target) {
      failures.push_back(tag.str() + "lost requests (completed " +
                         std::to_string(c.completed) + "/" + std::to_string(c.target) + ")");
    }
    if (c.duplicates != 0 || c.mismatches != 0 || c.bad_bodies != 0) {
      failures.push_back(tag.str() + "exactly-once violated");
    }
    if (c.pool_conns_hw > 64) {
      failures.push_back(tag.str() + "origin pool exceeded its 64-conn bound");
    }
    if (c.latency_records == 0 || c.partition_mismatches != 0) {
      failures.push_back(tag.str() + "latency partition check failed (" +
                         std::to_string(c.partition_mismatches) + " mismatches over " +
                         std::to_string(c.latency_records) + " records)");
    }
    if (c.causal_completed == 0 || c.causal_mismatches != 0) {
      failures.push_back(tag.str() + "critical-path partition check failed (" +
                         std::to_string(c.causal_mismatches) + " mismatches over " +
                         std::to_string(c.causal_completed) + " traces)");
    }
    if (c.causal_dropped != 0 || c.causal_truncated != 0) {
      failures.push_back(tag.str() + "causal ring overflowed (dropped " +
                         std::to_string(c.causal_dropped) + ", truncated " +
                         std::to_string(c.causal_truncated) + ")");
    }
    if (c.trace_mismatches != 0) {
      failures.push_back(tag.str() + "responses failed to echo their trace id");
    }
  }
  // The gate baseline needs every request class; the alpha=0.9 workload is
  // sized to produce all four.
  for (const char* want : {"hit", "store", "splice", "coalesced"}) {
    if (std::find(churn[1].classes_seen.begin(), churn[1].classes_seen.end(), want) ==
        churn[1].classes_seen.end()) {
      failures.push_back(std::string("churn alpha=0.9 produced no '") + want +
                         "' class traffic");
    }
  }

  // One line, machine readable; CI greps for the prefix and archives it.
  std::ostringstream json;
  uint64_t total_wall_ns = 0;
  for (const ChurnResult& c : churn) {
    total_wall_ns += c.wall_ns;
  }
  json << "PROXY_CYCLES_JSON {"
       << "\"benchmark\":\"proxy_cycles\""
       << ",\"sim_threads\":" << churn[0].sim_threads
       << ",\"wall_ns\":" << total_wall_ns
       << ",\"body_min\":" << kMinBody << ",\"body_spread\":" << kBodySpread
       << ",\"deterministic\":" << (deterministic ? "true" : "false");
  const PathResult* paths[] = {&hit, &store, &splice};
  const char* names[] = {"hit", "store", "splice"};
  for (int p = 0; p < 3; ++p) {
    json << ",\"" << names[p] << "\":{"
         << "\"cycles_per_request\":" << paths[p]->total
         << ",\"responses\":" << paths[p]->responses
         << ",\"median_us\":" << paths[p]->median_us << ",\"modules\":{";
    for (int m = 0; m < kNumCpuModules; ++m) {
      json << (m == 0 ? "" : ",") << "\"" << CpuModuleName(static_cast<CpuModule>(m))
           << "\":" << paths[p]->per_module[m];
    }
    json << "}}";
  }
  json << ",\"churn\":[";
  for (size_t i = 0; i < churn.size(); ++i) {
    const ChurnResult& c = churn[i];
    json << (i == 0 ? "" : ",") << "{\"alpha\":" << c.alpha << ",\"target\":" << c.target
         << ",\"completed\":" << c.completed << ",\"duplicates\":" << c.duplicates
         << ",\"mismatches\":" << c.mismatches << ",\"bad_bodies\":" << c.bad_bodies
         << ",\"retries\":" << c.retries << ",\"cache_hit_rate\":" << c.hit_rate
         << ",\"pool_opened\":" << c.pool_opened << ",\"pool_conns_hw\":" << c.pool_conns_hw
         << ",\"spliced_bytes\":" << c.spliced_bytes << ",\"p50_us\":" << c.p50_us
         << ",\"p99_us\":" << c.p99_us << ",\"latency_records\":" << c.latency_records
         << ",\"partition_mismatches\":" << c.partition_mismatches
         << ",\"causal_completed\":" << c.causal_completed
         << ",\"causal_mismatches\":" << c.causal_mismatches
         << ",\"wall_ns\":" << c.wall_ns
         << ",\"sim_ms\":" << c.finished_at / 1000000 << "}";
  }
  json << "],\"gates_failed\":" << failures.size() << "}";
  std::cout << json.str() << std::endl;

  // The alpha=0.9 per-class critical-path report on its own line: CI archives
  // it and critical_path_gate compares it against the checked-in baseline.
  std::cout << "PROXY_CRITPATH_JSON " << churn[1].critpath_json << std::endl;

  if (!failures.empty()) {
    for (const std::string& f : failures) {
      std::cerr << "PROXY_CYCLES_GATE_FAIL: " << f << "\n";
    }
    return 1;
  }
  std::cout << "proxy_cycles: all gates passed\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { return tas::bench::Run(); }
