// Fig 9 + Table 5: key-value store request latency distributions at 15%
// load (one app core), for server/client stack combinations.
//
// Shape to reproduce (paper Table 5, TAS clients): Linux median 97us / 99th
// 177us / max 1319us; IX median 20us / 99th 30us / max 280us; TAS median
// 17us / 99th 30us / max 122us — TAS beats IX between median and 99th and
// has a much shorter extreme tail than both.
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

KvRunResult RunCombo(StackKind server, StackKind client) {
  KvRunConfig config;
  config.server_stack = server;
  config.server_app_cores = 1;
  config.server_stack_cores = server == StackKind::kTas ? 1 : 1;
  config.connections = 128;
  config.num_client_hosts = 4;
  config.ideal_clients = false;
  config.client_stack = client;
  // 15% utilization: low enough that no stack (incl. single-core Linux at
  // ~0.12 mOps) saturates, so queues do not build (paper's criterion).
  config.target_ops_per_sec = 60000;
  config.warmup = Ms(20);
  config.measure = ScalePick(40, 400) * kNsPerMs;
  return RunKv(config);
}

void Run() {
  PrintHeader("Fig 9 + Table 5: KV request latency at 15% load",
              "TAS paper Figure 9 and Table 5 (microseconds)");
  struct Combo {
    const char* name;
    StackKind server;
    StackKind client;
  };
  const Combo combos[] = {
      {"TAS/TAS", StackKind::kTas, StackKind::kTas},
      {"IX/TAS", StackKind::kIx, StackKind::kTas},
      {"TAS/Linux", StackKind::kTas, StackKind::kLinux},
      {"IX/Linux", StackKind::kIx, StackKind::kLinux},
      {"Linux/TAS", StackKind::kLinux, StackKind::kTas},
      {"Linux/Linux", StackKind::kLinux, StackKind::kLinux},
  };

  TablePrinter table({"Server/Client", "Median us", "90th us", "99th us", "Max us"});
  std::vector<std::pair<std::string, KvRunResult>> results;
  for (const Combo& combo : combos) {
    KvRunResult r = RunCombo(combo.server, combo.client);
    results.emplace_back(combo.name, r);
    table.AddRow(combo.name, Fmt(r.median_us, 1), Fmt(r.p90_us, 1), Fmt(r.p99_us, 1),
                 Fmt(r.max_us, 1));
  }
  table.Print();

  std::cout << "\nLatency CDF (TAS/TAS vs Linux/Linux), fraction of requests:\n";
  TablePrinter cdf({"Percentile", "TAS/TAS us", "Linux/Linux us"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    auto pct = [&](const KvRunResult& r) {
      // Reconstruct from stored CDF points.
      for (const auto& [value, frac] : r.latency_cdf) {
        if (frac * 100 >= p) {
          return value;
        }
      }
      return r.max_us;
    };
    cdf.AddRow(Fmt(p, 1), Fmt(pct(results[0].second), 1), Fmt(pct(results[5].second), 1));
  }
  cdf.Print();
  std::cout << "\nPaper (TAS clients): Linux 97/129/177/1319; IX 20/27/30/280;\n"
               "TAS 17/20/30/122 (median/90th/99th/max us).\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
