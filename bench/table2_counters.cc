// Table 2: per-request application/stack overheads. Our substrate does not
// execute x86 instructions, so instructions/CPI/top-down rows are derived
// from the measured cycle split using the paper's calibrated CPI per stack
// (Linux 1.32, IX 0.82, TAS 0.66) and the paper's measured cycle-category
// shares. The app/stack cycle split itself is simulation-measured.
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

struct Overheads {
  double app_cycles = 0;
  double stack_cycles = 0;
};

Overheads Measure(StackKind kind) {
  EchoRunConfig config;
  config.server_stack = kind;
  config.server_app_cores = 4;
  config.server_stack_cores = 4;
  config.connections = ScalePick(2048, 32768);
  config.request_bytes = 96;
  config.response_bytes = 32;

  std::vector<HostSpec> specs{
      ServerSpec(kind, config.server_app_cores, config.server_stack_cores, 4096)};
  std::vector<LinkConfig> links{ServerLink()};
  for (int i = 0; i < 4; ++i) {
    specs.push_back(IdealClientSpec());
    links.push_back(ClientLink());
  }
  auto exp = Experiment::Star(specs, links);
  EchoServerConfig sc;
  sc.request_bytes = config.request_bytes;
  sc.response_bytes = config.response_bytes;
  sc.app_cycles = 680;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), sc);
  server.Start();
  std::vector<std::unique_ptr<EchoClient>> clients;
  for (int i = 0; i < 4; ++i) {
    EchoClientConfig cc;
    cc.server_ip = exp->host(0).ip();
    cc.num_connections = config.connections / 4;
    cc.request_bytes = config.request_bytes;
    cc.response_bytes = config.response_bytes;
    cc.connect_spread = config.warmup > 0 ? config.warmup / 2 : Ms(20);
    cc.first_request_at = Ms(10) + static_cast<TimeNs>(config.connections) * Us(30) - Ms(2);
    clients.push_back(
        std::make_unique<EchoClient>(exp->host_sim(1 + i), exp->host(1 + i).stack(), cc));
    clients.back()->Start();
  }
  const TimeNs warmup = Ms(10) + static_cast<TimeNs>(config.connections) * Us(30);
  exp->sim().RunUntil(warmup);
  uint64_t app_before = exp->host(0).TotalCycles(CpuModule::kApp);
  uint64_t total_before = exp->host(0).TotalCycles();
  const uint64_t req_before = server.requests_served();
  exp->sim().RunUntil(warmup + Ms(20));
  const uint64_t requests = server.requests_served() - req_before;

  Overheads result;
  if (requests > 0) {
    result.app_cycles = static_cast<double>(exp->host(0).TotalCycles(CpuModule::kApp) -
                                            app_before) /
                        static_cast<double>(requests);
    result.stack_cycles = static_cast<double>(exp->host(0).TotalCycles() - total_before) /
                              static_cast<double>(requests) -
                          result.app_cycles;
  }
  return result;
}

void Run() {
  PrintHeader("Table 2: per-request app/stack overheads",
              "TAS paper Table 2 (cycles measured; instr/CPI derived)");
  const StackKind kinds[] = {StackKind::kLinux, StackKind::kIx, StackKind::kTas};
  const double cpi[] = {1.32, 0.82, 0.66};  // Paper-measured CPI.
  // Paper-measured cycle category shares of stack cycles (retiring /
  // frontend / backend / bad speculation), used to decompose our totals.
  const double shares[3][4] = {{0.229, 0.166, 0.577, 0.033},
                               {0.379, 0.088, 0.506, 0.026},
                               {0.444, 0.130, 0.358, 0.068}};

  Overheads results[3];
  for (int i = 0; i < 3; ++i) {
    results[i] = Measure(kinds[i]);
  }

  TablePrinter table({"Counter", "Linux", "IX", "TAS"});
  auto split = [](double app, double stack) {
    return Fmt(app, 0) + "/" + Fmt(stack, 0);
  };
  table.AddRow("CPU cycles (app/stack)", split(results[0].app_cycles, results[0].stack_cycles),
               split(results[1].app_cycles, results[1].stack_cycles),
               split(results[2].app_cycles, results[2].stack_cycles));
  for (int i = 0; i < 3; ++i) {
    const double total = results[i].app_cycles + results[i].stack_cycles;
    (void)total;
  }
  auto instr = [&](int i) {
    return Fmt((results[i].app_cycles + results[i].stack_cycles) / cpi[i] / 1000, 1) + "k";
  };
  table.AddRow("Instructions (derived)", instr(0), instr(1), instr(2));
  table.AddRow("CPI (paper-calibrated)", Fmt(cpi[0], 2), Fmt(cpi[1], 2), Fmt(cpi[2], 2));
  const char* categories[] = {"Retiring (stack cycles)", "Frontend bound", "Backend bound",
                              "Bad speculation"};
  for (int cat = 0; cat < 4; ++cat) {
    table.AddRow(categories[cat], Fmt(results[0].stack_cycles * shares[0][cat], 0),
                 Fmt(results[1].stack_cycles * shares[1][cat], 0),
                 Fmt(results[2].stack_cycles * shares[2][cat], 0));
  }
  table.Print();
  std::cout << "\nPaper: cycles 1.1k/15.7k (Linux), 0.8k/1.9k (IX), 0.7k/1.9k (TAS).\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
