// Fig 8 + Table 6: key-value store throughput scalability with total server
// cores, for TAS with the low-level API (TAS LL), TAS with POSIX sockets
// (TAS SO), IX, and Linux, including the app/fast-path core split TAS uses
// at each size.
//
// Shape to reproduce: TAS LL up to ~1.9x IX and ~9.6x Linux; TAS SO ~1.3x IX
// and ~7x Linux; sockets cost TAS up to 2 extra stack cores (Table 6).
#include "bench/bench_common.h"

namespace tas {
namespace bench {
namespace {

struct CoreSplit {
  int app = 0;
  int stack = 0;
};

// Paper Table 6: how TAS splits N total cores between app and TCP stack.
CoreSplit TasSocketsSplit(int total) {
  switch (total) {
    case 2:
      return {1, 1};
    case 4:
      return {2, 2};
    case 8:
      return {5, 3};
    case 12:
      return {7, 5};
    default:
      return {9, 7};  // 16.
  }
}

CoreSplit TasLowLevelSplit(int total) { return {total / 2, total / 2}; }

double RunPoint(StackKind kind, int total_cores, size_t connections) {
  KvRunConfig config;
  config.server_stack = kind;
  if (kind == StackKind::kTas) {
    const CoreSplit split = TasSocketsSplit(total_cores);
    config.server_app_cores = split.app;
    config.server_stack_cores = split.stack;
  } else if (kind == StackKind::kTasLowLevel) {
    const CoreSplit split = TasLowLevelSplit(total_cores);
    config.server_app_cores = split.app;
    config.server_stack_cores = split.stack;
  } else {
    config.server_app_cores = total_cores;  // Stack inline on app cores.
    config.server_stack_cores = 1;
  }
  config.connections = connections;
  config.num_client_hosts = 5;
  config.measure = Ms(10);
  return RunKv(config).mops;
}

void Run() {
  PrintHeader("Fig 8 + Table 6: KV store throughput vs total server cores",
              "TAS paper Figure 8 and Table 6 (zipf 0.9, 90% GET)");
  const size_t connections = ScalePick(2048, 32768);
  std::vector<int> core_counts = {2, 4, 8};
  if (FullScale()) {
    core_counts = {2, 4, 8, 12, 16};
  }

  TablePrinter table({"Total cores", "TAS LL mOps", "TAS SO mOps", "IX mOps",
                      "Linux mOps", "TAS SO split (app+fp)"});
  for (int cores : core_counts) {
    const double ll = RunPoint(StackKind::kTasLowLevel, cores, connections);
    const double so = RunPoint(StackKind::kTas, cores, connections);
    const double ix = RunPoint(StackKind::kIx, cores, connections);
    const double lx = RunPoint(StackKind::kLinux, cores, connections);
    const CoreSplit split = TasSocketsSplit(cores);
    table.AddRow(cores, Fmt(ll, 2), Fmt(so, 2), Fmt(ix, 2), Fmt(lx, 2),
                 std::to_string(split.app) + "+" + std::to_string(split.stack));
  }
  table.Print();
  std::cout << "\nPaper: TAS LL up to 9.6x Linux / 1.9x IX; TAS SO up to 7.0x Linux /\n"
               "1.3x IX. Table 6: sockets need up to 2 more TAS cores than low-level.\n";
}

}  // namespace
}  // namespace bench
}  // namespace tas

int main() { tas::bench::Run(); }
