// google-benchmark microbenchmarks of the real data structures on the TAS
// hot paths: SPSC context queues, the circular payload buffer, packet wire
// serialization/parsing, reassembly, and raw simulator event throughput.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/tas/flow_table.h"
#include "src/tcp/reassembly.h"
#include "src/util/ring_buffer.h"
#include "src/util/rng.h"
#include "src/util/spsc_queue.h"

namespace tas {
namespace {

struct AppEventLike {
  uint64_t opaque;
  uint32_t bytes;
};

void BM_SpscPushPop(benchmark::State& state) {
  SpscQueue<AppEventLike> queue(1024);
  for (auto _ : state) {
    queue.Push(AppEventLike{1, 2});
    benchmark::DoNotOptimize(queue.Pop());
  }
}

void BM_ByteRingWriteRead(benchmark::State& state) {
  const size_t chunk = static_cast<size_t>(state.range(0));
  ByteRing ring(64 * 1024);
  std::vector<uint8_t> buf(chunk, 0xAB);
  for (auto _ : state) {
    ring.Write(buf.data(), chunk);
    ring.Read(buf.data(), chunk);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * chunk));
}

void BM_PacketSerialize(benchmark::State& state) {
  auto pkt = MakeTcpPacket(MakeIp(10, 0, 0, 1), 1000, MakeIp(10, 0, 0, 2), 2000, 1, 2,
                           TcpFlags::kAck | TcpFlags::kPsh,
                           std::vector<uint8_t>(static_cast<size_t>(state.range(0))));
  pkt->tcp.has_timestamps = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Serialize(*pkt));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

void BM_PacketParse(benchmark::State& state) {
  auto pkt = MakeTcpPacket(MakeIp(10, 0, 0, 1), 1000, MakeIp(10, 0, 0, 2), 2000, 1, 2,
                           TcpFlags::kAck,
                           std::vector<uint8_t>(static_cast<size_t>(state.range(0))));
  const auto bytes = Serialize(*pkt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Parse(bytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}

void BM_ReassemblyInOrder(benchmark::State& state) {
  ReassemblyBuffer buf;
  uint64_t next = 0;
  for (auto _ : state) {
    next += buf.Insert(next, next, 1448).advanced;
  }
}

void BM_ReassemblyOutOfOrder(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    ReassemblyBuffer buf;
    state.ResumeTiming();
    uint64_t next = 0;
    // 64 segments arriving in random order.
    std::vector<uint64_t> offsets;
    for (uint64_t i = 0; i < 64; ++i) {
      offsets.push_back(i * 1448);
    }
    for (size_t i = offsets.size(); i > 1; --i) {
      std::swap(offsets[i - 1], offsets[rng.NextUint64(i)]);
    }
    for (uint64_t offset : offsets) {
      next += buf.Insert(next, offset, 1448).advanced;
    }
    benchmark::DoNotOptimize(next);
  }
}

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    state.ResumeTiming();
    constexpr int kEvents = 10000;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      sim.At(i, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}

void BM_FlowHash(benchmark::State& state) {
  uint32_t port = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymmetricFlowHash(MakeIp(10, 0, 0, 1),
                                               static_cast<uint16_t>(port++),
                                               MakeIp(10, 0, 0, 2), 80));
  }
}

// The flow-table lookup the fast path performs per packet: the flat
// open-addressing table vs the unordered_map it replaced, at the paper's
// flow counts (Table 3 argues state for thousands of flows stays
// cache-resident; the flat layout is what makes that claim real here).
FlowKey BenchKey(uint32_t i) {
  FlowKey key;
  key.local_port = static_cast<uint16_t>(1000 + (i % 50000));
  key.peer_ip = 0x0A000000u + (i << 5);
  key.peer_port = static_cast<uint16_t>(2000 + (i % 60000));
  return key;
}

void BM_FlowTableLookup(benchmark::State& state) {
  const uint32_t flows = static_cast<uint32_t>(state.range(0));
  FlowTable table;
  for (uint32_t i = 0; i < flows; ++i) {
    table.Insert(BenchKey(i), MakeFlowId(i & kFlowSlotMask, 0));
  }
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(BenchKey(static_cast<uint32_t>(rng.Next()) % flows)));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlowTableLookupUnorderedMap(benchmark::State& state) {
  const uint32_t flows = static_cast<uint32_t>(state.range(0));
  std::unordered_map<FlowKey, FlowId, FlowKeyHash> table;
  for (uint32_t i = 0; i < flows; ++i) {
    table[BenchKey(i)] = MakeFlowId(i & kFlowSlotMask, 0);
  }
  Rng rng(7);
  for (auto _ : state) {
    auto it = table.find(BenchKey(static_cast<uint32_t>(rng.Next()) % flows));
    benchmark::DoNotOptimize(it == table.end() ? kInvalidFlow : it->second);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SpscPushPop);
BENCHMARK(BM_ByteRingWriteRead)->Arg(64)->Arg(1448)->Arg(16384);
BENCHMARK(BM_PacketSerialize)->Arg(64)->Arg(1448);
BENCHMARK(BM_PacketParse)->Arg(64)->Arg(1448);
BENCHMARK(BM_ReassemblyInOrder);
BENCHMARK(BM_ReassemblyOutOfOrder);
BENCHMARK(BM_SimulatorEventThroughput);
BENCHMARK(BM_FlowHash);
BENCHMARK(BM_FlowTableLookup)->Arg(128)->Arg(4096)->Arg(65536);
BENCHMARK(BM_FlowTableLookupUnorderedMap)->Arg(128)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace tas

BENCHMARK_MAIN();
